//! The repository's keystone invariant, end to end: for every benchmark
//! and a spread of architectures across the design space, the scheduled
//! VLIW code — executed cycle-accurately with clustered register files,
//! functional-unit latencies, non-pipelined memory ports, and explicit
//! inter-cluster moves — computes exactly what the golden Rust reference
//! computes.

use custom_fit::kernels::golden;
use custom_fit::prelude::*;

fn check(bench: Benchmark, spec: &ArchSpec, unroll: u32, n: u64) {
    let workload = bench.workload(n, 0xfeed + u64::from(unroll));
    let mut kernel = workload.kernel.clone();
    custom_fit::opt::optimize_budgeted(&mut kernel, (spec.regs / 2) as usize);
    let kernel = custom_fit::opt::unroll::unroll(&kernel, unroll);
    let machine = MachineResources::from_spec(spec);
    let result = compile(&kernel, &machine);

    let mut mem = workload.image();
    simulate(&kernel, &result, &machine, &mut mem, n / u64::from(unroll))
        .unwrap_or_else(|e| panic!("{bench} on {spec} x{unroll}: {e}"));

    let mut gold = workload.image();
    golden::run(bench, &mut gold, n);
    for i in workload.observable_arrays() {
        assert_eq!(
            mem.array(i),
            gold.array(i),
            "{bench} on {spec} x{unroll}: array {i} ({})",
            workload.kernel.arrays[i].name
        );
    }
}

/// Architectures spanning the corners of the space: the baseline, a wide
/// single cluster, a port-starved many-cluster machine, and a fast-memory
/// clustered machine.
fn spread() -> Vec<ArchSpec> {
    [
        (1, 1, 64, 1, 8, 1),
        (8, 4, 256, 2, 4, 1),
        (16, 4, 128, 1, 4, 8),
        (16, 8, 512, 4, 2, 4),
    ]
    .into_iter()
    .map(|(a, m, r, p2, l2, c)| ArchSpec::new(a, m, r, p2, l2, c).expect("valid"))
    .collect()
}

#[test]
fn every_benchmark_simulates_correctly_across_the_space() {
    for bench in Benchmark::ALL {
        for spec in spread() {
            check(bench, &spec, 1, 4);
        }
    }
}

#[test]
fn unrolled_schedules_simulate_correctly() {
    let spec = ArchSpec::new(8, 4, 512, 2, 4, 2).expect("valid");
    for bench in [Benchmark::A, Benchmark::F, Benchmark::H, Benchmark::D] {
        check(bench, &spec, 4, 8);
    }
}

/// The batched simulator over the same corner spread: one shared input
/// image, all four architectures in one call. Each entry's verdict and
/// memory image must equal a scalar `simulate` on a fresh image — and
/// the memory must still match the golden reference.
#[test]
fn batched_simulation_matches_scalar_across_the_spread() {
    for bench in [Benchmark::A, Benchmark::D, Benchmark::H] {
        let workload = bench.workload(4, 0xfeed_0b47);
        let mut kernel = workload.kernel.clone();
        custom_fit::opt::optimize(&mut kernel);
        let machines: Vec<MachineResources> =
            spread().iter().map(MachineResources::from_spec).collect();
        let results: Vec<_> = machines.iter().map(|m| compile(&kernel, m)).collect();
        let entries: Vec<_> = results.iter().zip(&machines).collect();

        let base = workload.image();
        let batch = simulate_batch(&kernel, &entries, &base, 4);

        let mut gold = workload.image();
        golden::run(bench, &mut gold, 4);
        for (e, (verdict, mem)) in entries.iter().zip(&batch) {
            let mut scalar_mem = base.clone();
            let scalar = simulate(&kernel, e.0, e.1, &mut scalar_mem, 4);
            assert_eq!(&scalar, verdict, "{bench}: batch verdict diverged");
            assert_eq!(&scalar_mem, mem, "{bench}: batch memory diverged");
            verdict
                .as_ref()
                .unwrap_or_else(|e| panic!("{bench}: batched simulation failed: {e}"));
            for i in workload.observable_arrays() {
                assert_eq!(mem.array(i), gold.array(i), "{bench}: array {i}");
            }
        }
    }
}

#[test]
fn clustered_idct_simulates_correctly() {
    // C is the heaviest dataflow (promoted 8x8 block): exercise it on a
    // 4-cluster machine with unrolling.
    check(
        Benchmark::C,
        &ArchSpec::new(16, 8, 512, 4, 4, 4).expect("valid"),
        2,
        4,
    );
}
