//! Every malformed request the daemon can reject, rejected over a live
//! socket — and every rejection round-tripped: the wire response parses
//! back into the exact [`RequestError`] the server constructed, and
//! re-serializes to the exact line the server sent.
//!
//! The errors name the offending field *and* its byte offset, in the
//! style of the line-numbered CSV errors in `cfp_dse::io` — several
//! cases below pin the offset to the byte the client can see.

mod common;

use common::serve::{state_dir, Client};
use custom_fit::serve::json::{self, Json};
use custom_fit::serve::{RequestError, ServeConfig, Server};

/// One rejection case: a request line and the expected error kind.
struct Case {
    line: String,
    kind: &'static str,
    /// Substring of the line whose byte offset the error must carry
    /// (`None` for errors whose offset is the whole-document 0 or not
    /// tied to a visible token).
    offset_of: Option<&'static str>,
    /// Substring the `field` must equal, for field-carrying kinds.
    field: Option<&'static str>,
}

fn case(line: &str, kind: &'static str) -> Case {
    Case {
        line: line.to_string(),
        kind,
        offset_of: None,
        field: None,
    }
}

fn field_case(
    line: &str,
    kind: &'static str,
    offset_of: &'static str,
    field: &'static str,
) -> Case {
    Case {
        line: line.to_string(),
        kind,
        offset_of: Some(offset_of),
        field: Some(field),
    }
}

/// Every rejection variant of the protocol, one (or more) live cases
/// each: `too_long`, `syntax`, `not_an_object`, `unknown_op`,
/// `missing_field`, `bad_field`.
fn cases() -> Vec<Case> {
    let mut cases = vec![
        // too_long: a syntactically fine request padded past MAX_LINE.
        case(
            &format!(
                r#"{{"op":"ping","pad":"{}"}}"#,
                "x".repeat(custom_fit::serve::proto::MAX_LINE)
            ),
            "too_long",
        ),
        // syntax: truncated document, unknown escape, trailing garbage.
        case(r#"{"op":"#, "syntax"),
        case(r#"{"op":"ping"} extra"#, "syntax"),
        case(r#"{"op":"pi\qng"}"#, "syntax"),
        // not_an_object at the root.
        case("[1,2,3]", "not_an_object"),
        case(r#""ping""#, "not_an_object"),
        // unknown_op.
        case(r#"{"op":"frobnicate"}"#, "unknown_op"),
        // missing_field, at several depths.
        case(r#"{"no_op":true}"#, "missing_field"),
        case(r#"{"op":"status"}"#, "missing_field"),
        case(r#"{"op":"submit"}"#, "missing_field"),
        field_case(
            r#"{"op":"submit","job":{"preset":"smoke"}}"#,
            "missing_field",
            r#"{"preset"#,
            "job.benches",
        ),
        field_case(
            r#"{"op":"submit","job":{"benches":["D"]}}"#,
            "missing_field",
            r#"{"benches"#,
            "job.archs",
        ),
        field_case(
            r#"{"op":"submit","job":{"benches":["D"],"preset":"smoke","fault":{"kind":"stall","seed":1,"denominator":1}}}"#,
            "missing_field",
            r#"{"kind"#,
            "job.fault.millis",
        ),
    ];
    // bad_field: the error's offset points at the offending value.
    for (line, offset_of, field) in [
        (
            r#"{"op":"submit","job":{"benches":["D","Q"],"preset":"smoke"}}"#,
            r#""Q""#,
            "job.benches",
        ),
        (
            r#"{"op":"submit","job":{"benches":["D"],"archs":["(1 1 64 1 8 1)"],"preset":"smoke"}}"#,
            r#""smoke""#,
            "job.preset",
        ),
        (
            r#"{"op":"submit","job":{"benches":["D"],"preset":"nope"}}"#,
            r#""nope""#,
            "job.preset",
        ),
        (
            r#"{"op":"submit","job":{"benches":["D"],"archs":["(0 0 0)"]}}"#,
            r#""(0 0 0)""#,
            "job.archs",
        ),
        (
            r#"{"op":"submit","job":{"benches":["D"],"preset":"smoke","threads":0}}"#,
            "0}",
            "job.threads",
        ),
        (
            r#"{"op":"submit","job":{"benches":["D"],"preset":"smoke","deadline_ms":0}}"#,
            "0}",
            "job.deadline_ms",
        ),
        (
            r#"{"op":"submit","job":{"benches":["D"],"preset":"smoke","max_cost":-1}}"#,
            "-1}",
            "job.max_cost",
        ),
        (
            r#"{"op":"submit","job":{"benches":["D"],"preset":"smoke","reuse":"yes"}}"#,
            r#""yes""#,
            "job.reuse",
        ),
        (
            r#"{"op":"submit","job":{"benches":["D"],"preset":"smoke","frobs":1}}"#,
            r#""frobs""#,
            "job.frobs",
        ),
        (
            r#"{"op":"submit","job":{"benches":["D"],"preset":"smoke","fault":{"kind":"drop","seed":1,"denominator":1}}}"#,
            r#""drop""#,
            "job.fault.kind",
        ),
        (r#"{"op":"result","id":7}"#, "7}", "id"),
        (
            r#"{"op":"result","id":"job-000000","wait":"no"}"#,
            r#""no""#,
            "wait",
        ),
    ] {
        cases.push(field_case(line, "bad_field", offset_of, field));
    }
    cases
}

#[test]
fn every_rejection_variant_round_trips_over_a_live_socket() {
    let dir = state_dir("protocol");
    let server = Server::start(ServeConfig::new(&dir)).expect("start daemon");
    let mut client = Client::connect(server.addr());

    for case in cases() {
        let response = client.request_raw(&case.line);
        let v = json::parse(&response)
            .unwrap_or_else(|e| panic!("unparseable rejection {response:?}: {e:?}"));
        assert_eq!(
            v.get("ok").and_then(Json::as_bool),
            Some(false),
            "{response}"
        );
        assert_eq!(
            v.get("error").and_then(Json::as_str),
            Some("bad_request"),
            "{response}"
        );
        assert_eq!(
            v.get("kind").and_then(Json::as_str),
            Some(case.kind),
            "for request {}: {response}",
            case.line
        );

        // Round trip: wire JSON → RequestError → identical wire JSON.
        let err = RequestError::from_json(&v)
            .unwrap_or_else(|| panic!("rejection does not parse back: {response}"));
        assert_eq!(err.kind(), case.kind);
        assert_eq!(err.to_json(), response, "round trip not a fixed point");

        // The offset names a byte of the offending line the client can
        // check for itself.
        if let Some(token) = case.offset_of {
            let expected = case
                .line
                .find(token)
                .unwrap_or_else(|| panic!("token {token:?} not in {}", case.line));
            let offset = v
                .get("offset")
                .and_then(Json::as_u64)
                .unwrap_or_else(|| panic!("no offset in {response}"));
            assert_eq!(
                offset as usize, expected,
                "offset should point at {token:?} in {}",
                case.line
            );
        }
        if let Some(field) = case.field {
            assert_eq!(
                v.get("field").and_then(Json::as_str),
                Some(field),
                "{response}"
            );
        }
    }

    // The connection survived every rejection: a good request still works.
    let pong = client.request(r#"{"op":"ping"}"#);
    assert_eq!(pong.get("op").and_then(Json::as_str), Some("pong"));

    server.shutdown();
    let _ = std::fs::remove_dir_all(&dir);
}

/// A `Display` for every rejection leads with the byte offset, the way
/// the CSV layer's errors lead with the line number.
#[test]
fn rejection_display_names_the_byte() {
    let err = custom_fit::serve::parse_request(r#"{"op":"status"}"#)
        .expect_err("status without id must be rejected");
    let text = err.to_string();
    assert!(text.starts_with("byte "), "{text}");
    assert!(text.contains("id"), "{text}");
}
