//! Property tests for the VLIW instruction-word encoder: on random
//! kernels and random architectures, encoding is total for anything that
//! fits the register files, decode inverts encode, and the layout
//! invariants hold.

mod common;

use cfp_testkit::cases;
use common::{arch, build, recipe};
use custom_fit::prelude::*;
use custom_fit::sched::{decode, encode, EncodeError};

#[test]
fn encode_decode_roundtrip() {
    cases(0xe2c0_0001, 32, |rng| {
        let r = recipe(rng);
        let spec = arch(rng);
        let kernel = build(&r);
        let machine = MachineResources::from_spec(&spec);
        let result = compile(&kernel, &machine);

        match encode(&result.assignment, &result.schedule, &machine) {
            Ok(program) => {
                assert!(result.fits(), "encoding succeeded despite spilling");
                // One word per cycle, every op present exactly once.
                assert_eq!(program.words.len(), result.schedule.length as usize);
                let encoded: usize = program.words.iter().map(|w| w.ops.len()).sum();
                assert_eq!(encoded, result.assignment.code.ops.len());

                let decoded = decode(&program);
                assert_eq!(decoded.len(), program.words.len());
                for (word, dec) in program.words.iter().zip(&decoded) {
                    assert_eq!(word.mask.count_ones() as usize, dec.len());
                    for (slot, op) in dec {
                        assert!(*slot < 64, "slot index sane");
                        assert!(*slot < program.slots_per_word, "slot in range");
                        assert!((1..=30).contains(&op.opcode), "valid opcode");
                        // Register fields fit the banks.
                        for f in [op.src1, op.src2, op.src3] {
                            if let custom_fit::sched::encode::SrcField::Reg(r) = f {
                                assert!(u32::from(r) < spec.regs);
                            }
                            if let custom_fit::sched::encode::SrcField::Imm(i) = f {
                                assert!((i as usize) < word.imms.len());
                            }
                        }
                    }
                }
                // Compression never loses to the raw layout by more than
                // the per-word mask overhead.
                assert!(
                    program.compressed_bytes() <= program.raw_bytes() + 8 * program.words.len()
                );
            }
            Err(EncodeError::Alloc(_)) => {
                assert!(
                    !result.fits(),
                    "allocation failed though pressure fits: {:?}",
                    result.pressure
                );
            }
            Err(e) => panic!("unexpected encode error: {e}"),
        }
    });
}

#[test]
fn every_benchmark_encodes_on_a_roomy_machine() {
    let spec = ArchSpec::new(8, 4, 512, 2, 4, 2).expect("valid");
    let machine = MachineResources::from_spec(&spec);
    for b in Benchmark::ALL {
        let mut k = b.kernel();
        custom_fit::opt::optimize(&mut k);
        let result = compile(&k, &machine);
        assert!(result.fits(), "{b}");
        let program = encode(&result.assignment, &result.schedule, &machine)
            .unwrap_or_else(|e| panic!("{b}: {e}"));
        assert!(program.compressed_bytes() > 0);
        let decoded_ops: usize = decode(&program).iter().map(Vec::len).sum();
        assert_eq!(decoded_ops, result.assignment.code.ops.len(), "{b}");
    }
}
