//! End-to-end tests of the `cfpc` compiler driver binary.

use std::process::Command;

fn cfpc(args: &[&str]) -> (String, String, bool) {
    let out = Command::new(env!("CARGO_BIN_EXE_cfpc"))
        .args(args)
        .output()
        .expect("cfpc runs");
    (
        String::from_utf8_lossy(&out.stdout).into_owned(),
        String::from_utf8_lossy(&out.stderr).into_owned(),
        out.status.success(),
    )
}

fn write_kernel(name: &str, body: &str) -> std::path::PathBuf {
    let path = std::env::temp_dir().join(name);
    std::fs::write(&path, body).expect("writable temp dir");
    path
}

const KERNEL: &str = "kernel blend(in u8 a[], in u8 b[], out u8 d[], const w) {
    loop i { d[i] = u8((a[i]*w + b[i]*(8 - w)) >> 3); }
}";

#[test]
fn stats_run_reports_the_machine_and_schedule() {
    let path = write_kernel("cfpc_stats.cfk", KERNEL);
    let (stdout, stderr, ok) = cfpc(&[
        path.to_str().unwrap(),
        "--const",
        "w=5",
        "--arch",
        "(4 2 128 2 4 1)",
    ]);
    assert!(ok, "stderr: {stderr}");
    assert!(stdout.contains("machine    : (4 2 128 2 4 1)"), "{stdout}");
    assert!(stdout.contains("schedule   :"), "{stdout}");
    assert!(stdout.contains("registers  :"), "{stdout}");
}

#[test]
fn emit_modes_produce_their_artifacts() {
    let path = write_kernel("cfpc_emit.cfk", KERNEL);
    let p = path.to_str().unwrap();
    let (ir, _, ok) = cfpc(&[p, "--const", "w=5", "--emit", "ir"]);
    assert!(ok && ir.contains("kernel blend {"), "{ir}");
    let (sched, _, ok) = cfpc(&[p, "--const", "w=5", "--emit", "schedule", "--unroll", "2"]);
    assert!(ok && sched.contains("br loop"), "{sched}");
    let (enc, _, ok) = cfpc(&[p, "--const", "w=5", "--emit", "encoding"]);
    assert!(ok && enc.contains("bytes raw"), "{enc}");
}

#[test]
fn diagnostics_point_at_the_source() {
    let path = write_kernel(
        "cfpc_bad.cfk",
        "kernel k(out u8 d[]) { loop i { d[i] = undefined_name; } }",
    );
    let (_, stderr, ok) = cfpc(&[path.to_str().unwrap()]);
    assert!(!ok);
    assert!(stderr.contains("undefined name"), "{stderr}");
    assert!(stderr.contains('^'), "caret rendering: {stderr}");
}

#[test]
fn bad_usage_fails_with_help() {
    let (_, stderr, ok) = cfpc(&["--emit"]);
    assert!(!ok);
    assert!(stderr.contains("usage: cfpc"), "{stderr}");
    let (_, stderr, ok) = cfpc(&["nosuchfile.cfk"]);
    assert!(!ok);
    assert!(stderr.contains("cannot read"), "{stderr}");
}
