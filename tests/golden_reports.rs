//! Golden-file tests for the human-facing surfaces: the Tables 8–10
//! renderer, the run-accounting table, the trace summary, and the JSONL
//! trace schema. A formatting or model drift shows up here as a diff
//! against a checked-in artifact instead of a silently changed report.
//!
//! Regenerate after an intentional change with
//! `UPDATE_GOLDEN=1 cargo test --test golden_reports`, then review the
//! diff like any other code change.

use custom_fit::dse::explore::{Exploration, ExploreConfig, RunStats};
use custom_fit::dse::report::run_stats_table;
use custom_fit::dse::{paper_ranges, render, speedup_table};
use custom_fit::machine::ArchSpec;
use custom_fit::obs::summary::TraceSummary;
use custom_fit::obs::JsonlRecorder;
use custom_fit::prelude::Benchmark;
use std::time::Duration;

fn golden(name: &str, actual: &str) {
    let path = format!("{}/tests/golden/{name}", env!("CARGO_MANIFEST_DIR"));
    if std::env::var_os("UPDATE_GOLDEN").is_some() {
        std::fs::write(&path, actual).expect("write golden");
        return;
    }
    let expected = std::fs::read_to_string(&path).unwrap_or_else(|e| {
        panic!("missing golden `{name}` ({e}); regenerate with UPDATE_GOLDEN=1")
    });
    assert_eq!(
        expected, actual,
        "`{name}` drifted; if intentional, regenerate with UPDATE_GOLDEN=1 and review the diff"
    );
}

/// The accounting table, rendered from a fixed synthetic [`RunStats`]:
/// wall-clock rows format real durations, so the fixture pins them to
/// exact values a live run never produces.
#[test]
fn run_stats_table_renders_the_golden_layout() {
    let stats = RunStats {
        compilations: 5730,
        cache_hits: 4011,
        unique_schedules: 1719,
        unique_plans: 60,
        architectures: 191,
        failed_units: 3,
        fuel_exhausted: 2,
        resumed_units: 764,
        ii_attempts: 765,
        plan_wall: Duration::from_millis(1_250),
        eval_wall: Duration::from_millis(41_003),
        wall: Duration::from_millis(42_337),
    };
    let table = run_stats_table(&stats);
    golden(
        "run_stats_table.txt",
        &format!("{table}\n--- csv ---\n{}", table.to_csv()),
    );
}

/// Tables 8–10 over the smoke space: the COST 5/10/15 selections with
/// the paper's RANGE ladder, exactly as `exhibits` prints them. Pins the
/// selection rule, the tie-breaks, and the renderer's layout at once.
#[test]
fn speedup_tables_match_the_golden_renderings() {
    let ex = Exploration::run(&ExploreConfig::smoke());
    let mut out = String::new();
    for bound in [5.0, 10.0, 15.0] {
        let table = speedup_table(&ex, bound, &paper_ranges(bound));
        out.push_str(&render(&table, &ex));
        out.push('\n');
    }
    golden("speedup_tables_smoke.txt", &out);
}

/// The aggregated trace summary of a single-threaded smoke run under the
/// deterministic clock: per-stage latency histograms and the per-
/// architecture attribution table. Everything in it — event counts,
/// stage totals, verdicts — is a pure function of the sweep.
#[test]
fn trace_summary_matches_the_golden_rendering() {
    let mut cfg = ExploreConfig::smoke();
    cfg.threads = 1;
    let rec = JsonlRecorder::deterministic();
    let _ex = Exploration::try_run_traced(&cfg, &rec).expect("smoke run");
    let summary = TraceSummary::from_events(&rec.events());
    golden("trace_summary_smoke.txt", &summary.render());
}

fn trimmed() -> ExploreConfig {
    // Pairwise-distinct L2 latencies, deliberately: the sweep's compile
    // memo shares machine-independent lowerings across architectures
    // behind a `(plan, l2_latency)` key, and the *trace* honestly
    // attributes each lowering to the unit that computed it. Give two
    // parallel units the same latency and content-equal plans, and which
    // one records the `prepare` span becomes a race. Distinct latencies
    // keep every shared class singleton inside the sweep (classes the
    // sequentially-evaluated baseline seeds are deterministic either
    // way), making the whole trace a pure function of the config.
    ExploreConfig {
        archs: vec![
            ArchSpec::new(2, 1, 64, 1, 4, 1).expect("valid spec"),
            ArchSpec::new(4, 2, 128, 1, 2, 1).expect("valid spec"),
            ArchSpec::new(8, 4, 256, 2, 8, 2).expect("valid spec"),
        ],
        benches: vec![Benchmark::A, Benchmark::D],
        ..ExploreConfig::default()
    }
}

fn trace_of(cfg: &ExploreConfig) -> String {
    let rec = JsonlRecorder::deterministic();
    let _ex = Exploration::try_run_traced(cfg, &rec).expect("traced run");
    rec.to_jsonl()
}

/// The JSONL schema itself, byte for byte, under the deterministic
/// clock — and its independence from the worker-thread count. The
/// drained stream sorts by `(unit, seq)` and every timestamp is a
/// per-unit counter, so the same exploration must serialize to the same
/// bytes whether one worker ran it or four.
#[test]
fn deterministic_traces_are_byte_stable_across_runs_and_thread_counts() {
    let base = trimmed();
    // Fixture premise, checked: distinct L2 latencies imply distinct
    // scheduling signatures, so both memo layers (`prepared` and the
    // signature-keyed cores) keep one deterministic owner per entry.
    let lats: Vec<u32> = base.archs.iter().map(|s| s.l2_latency).collect();
    for (i, a) in lats.iter().enumerate() {
        for b in &lats[i + 1..] {
            assert_ne!(a, b, "fixture premise: L2 latencies must be distinct");
        }
    }

    let mut one = base.clone();
    one.threads = 1;
    let jsonl = trace_of(&one);
    assert_eq!(jsonl, trace_of(&one), "same config, same bytes");
    for threads in [2, 4] {
        let mut n = base.clone();
        n.threads = threads;
        assert_eq!(
            jsonl,
            trace_of(&n),
            "the trace changed under {threads} worker threads"
        );
    }
    golden("trace_trimmed.jsonl", &jsonl);
}

/// What thread-count stability does NOT promise, pinned so nobody
/// "fixes" a flaky golden by accident: on the full smoke space several
/// architectures share an L2 latency, so a machine-independent lowering
/// is computed by whichever of their units gets there first and the
/// `prepare` spans move between units with the interleaving. The
/// *results* stay bit-identical (see `tests/trace_equivalence.rs`); only
/// the work attribution is scheduling-dependent. Single-threaded runs
/// have one interleaving, so their traces must still be stable.
#[test]
fn single_threaded_smoke_traces_are_stable_even_with_shared_latencies() {
    let mut one = ExploreConfig::smoke();
    one.threads = 1;
    assert_eq!(trace_of(&one), trace_of(&one));
}
