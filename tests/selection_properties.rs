//! Properties of the analysis layers over exploration results: the
//! COST/RANGE selection rule (`cfp_dse::select`, Tables 8–10) and the
//! scatter/frontier construction (`cfp_dse::pareto`, Figures 3–4).
//!
//! Two kinds of evidence:
//! * **Real explorations** — the smoke space, including the paper's
//!   pathological register-starved A-on-wide-machine case, pinned as a
//!   fixture: RANGE back-off must recover the roomy machine.
//! * **Synthetic explorations** — SplitMix64-generated result tables
//!   (random costs, speedups, quarantined units) exercise the frontier
//!   and selection invariants far outside the smoke space's shapes,
//!   including NaN rows real sweeps only produce under fault injection.

use cfp_testkit::{cases, Rng};
use custom_fit::dse::explore::{ArchEval, Exploration, ExploreConfig, RunStats};
use custom_fit::dse::pareto::{frontier, scatter, ScatterPoint};
use custom_fit::dse::select::{select, Range};
use custom_fit::dse::{EvalOutcome, FailKind, FailReason, Measurement};
use custom_fit::machine::ArchSpec;
use custom_fit::prelude::Benchmark;

// ---------------------------------------------------------------------
// RANGE back-off on real explorations.

fn smoke_ah() -> Exploration {
    let mut cfg = ExploreConfig::smoke();
    cfg.benches = vec![Benchmark::A, Benchmark::H];
    Exploration::run(&cfg)
}

/// Backing off by up to RANGE of the target's best speedup never
/// decreases the suite's harmonic-mean speedup: the candidate sets nest
/// as the fraction widens, so the maximum over them is monotone. The
/// selection's own `su` field must follow, and every winner must honor
/// the range contract on its target column.
#[test]
fn widening_the_back_off_never_decreases_the_suite_average() {
    let ex = smoke_ah();
    let fractions = [0.0, 0.02, 0.05, 0.10, 0.25, 0.50, 1.0];
    for target in 0..ex.benches.len() {
        for bound in [3.0, 5.0, 10.0, 20.0] {
            let best_affordable = (0..ex.archs.len())
                .filter(|&a| {
                    ex.archs[a].cost <= bound
                        && Exploration::harmonic_mean(&ex.speedup_row(a)).is_finite()
                })
                .map(|a| ex.speedup(a, target))
                .fold(f64::NEG_INFINITY, f64::max);
            let mut last: Option<f64> = None;
            for f in fractions {
                let Some(sel) = select(&ex, target, bound, Range::Fraction(f)) else {
                    assert!(
                        select(&ex, target, bound, Range::Fraction(0.0)).is_none(),
                        "a selection vanished as the range widened"
                    );
                    continue;
                };
                if let Some(prev) = last {
                    assert!(
                        sel.su >= prev - 1e-9,
                        "target {target} bound {bound} fraction {f}: su {} < {prev}",
                        sel.su
                    );
                }
                last = Some(sel.su);
                assert!(
                    sel.speedups[target] >= best_affordable * (1.0 - f) - 1e-9,
                    "target {target} bound {bound} fraction {f}: winner gave up too much"
                );
            }
            // The infinite range caps the ladder.
            if let (Some(prev), Some(sinf)) = (last, select(&ex, target, bound, Range::Infinite)) {
                assert!(sinf.su >= prev - 1e-9, "Range::Infinite lost to a fraction");
            }
        }
    }
}

/// The paper's pathological case, pinned: on a 16-ALU 8-cluster machine
/// with 128 registers benchmark A cannot unroll at all (every deeper
/// plan spills), so the machine loses its width and barely beats the
/// baseline; the same datapath with 512 registers unrolls 16 deep and
/// runs A five times as fast. The registers-for-bandwidth trade is the
/// whole machine here, not a tuning detail.
#[test]
fn a_on_a_wide_machine_is_register_starved() {
    let starved = ArchSpec::new(16, 4, 128, 1, 4, 8).expect("valid spec");
    let roomy = ArchSpec::new(16, 4, 512, 1, 4, 8).expect("valid spec");
    let cfg = ExploreConfig {
        archs: vec![starved, roomy],
        benches: vec![Benchmark::A, Benchmark::H],
        ..ExploreConfig::default()
    };
    let ex = Exploration::run(&cfg);
    let (si, ri) = (0, 1);

    let m = |arch: usize, bench: usize| {
        ex.archs[arch].outcomes[bench]
            .measurement()
            .copied()
            .expect("healthy unit")
    };
    assert_eq!(m(si, 0).unroll, 1, "starved A should not unroll");
    assert!(m(ri, 0).unroll >= 4, "roomy A should unroll deep");
    assert!(
        m(ri, 0).cycles_per_output * 2.0 < m(si, 0).cycles_per_output,
        "the register-starved A should be at least 2x slower"
    );
    // The starved machine's A barely reaches the baseline, so its suite
    // harmonic mean collapses; every selection — A-targeted, H-targeted
    // at any range, suite-wide — lands on the roomy twin.
    assert!(ex.speedup(si, 0) < 1.5 && ex.speedup(ri, 0) > 3.0);
    let bound = ex.archs[si].cost.max(ex.archs[ri].cost) + 1.0;
    for target in [0, 1] {
        for range in [Range::Fraction(0.0), Range::Fraction(0.10), Range::Infinite] {
            let sel = select(&ex, target, bound, range).expect("affordable");
            assert_eq!(sel.spec, roomy, "target {target} range {range}");
        }
    }
}

/// RANGE back-off becoming decisive, pinned end to end. In a space of
/// three machines, the H-best is a low-latency 8-multiplier datapath
/// whose 128 registers cap A's unroll (A at 3.3x where roomy machines
/// reach 5x); a cheaper 512-register machine sits about 12% behind on H
/// but leads the suite. RANGE 0 and 10% pick the H-best; widening to
/// 25% (or ignoring the target) trades that H margin for the suite —
/// exactly the designer's knob from Tables 8–10.
#[test]
fn range_back_off_trades_the_target_for_the_suite() {
    let h_best = ArchSpec::new(16, 8, 128, 1, 2, 8).expect("valid spec");
    let suite_best = ArchSpec::new(8, 4, 512, 1, 4, 4).expect("valid spec");
    let cfg = ExploreConfig {
        archs: vec![
            ArchSpec::new(16, 4, 128, 1, 4, 8).expect("valid spec"),
            h_best,
            suite_best,
        ],
        benches: vec![Benchmark::A, Benchmark::H],
        ..ExploreConfig::default()
    };
    let ex = Exploration::run(&cfg);
    let h = 1;

    // Fixture premises, checked so a drift in the cost or cycle models
    // fails here with a story instead of in the selections below.
    assert!(
        ex.speedup(1, h) > ex.speedup(2, h),
        "the 8-mul machine no longer leads on H"
    );
    assert!(
        ex.speedup(2, h) >= 0.75 * ex.speedup(1, h),
        "the suite machine fell out of the 25% range on H"
    );
    assert!(
        ex.speedup(2, h) < 0.90 * ex.speedup(1, h),
        "the suite machine entered the 10% range; the back-off is no longer decisive"
    );
    let su = |a: usize| Exploration::harmonic_mean(&ex.speedup_row(a));
    assert!(
        su(2) > su(1),
        "the 512-register machine no longer leads the suite"
    );

    let tight = select(&ex, h, 20.0, Range::Fraction(0.0)).expect("affordable");
    let ten = select(&ex, h, 20.0, Range::Fraction(0.10)).expect("affordable");
    let wide = select(&ex, h, 20.0, Range::Fraction(0.25)).expect("affordable");
    let all = select(&ex, h, 20.0, Range::Infinite).expect("affordable");
    assert_eq!(tight.spec, h_best);
    assert_eq!(
        ten.spec, h_best,
        "10% should not yet reach the suite machine"
    );
    assert_eq!(
        wide.spec, suite_best,
        "25% should recover the suite machine"
    );
    assert_eq!(all.spec, suite_best);
    // The trade is real in both directions: the wide selection gave up
    // target speedup and gained suite speedup.
    assert!(wide.speedups[h] < tight.speedups[h]);
    assert!(wide.su > tight.su);
}

// ---------------------------------------------------------------------
// Synthetic explorations: property tests over random result tables.

/// A random but well-formed exploration: random specs (duplicates
/// allowed — the scatter must collapse them), random costs and derates,
/// and a controllable share of quarantined units whose speedups are NaN.
fn synthetic(rng: &mut Rng, fail_percent: u64) -> Exploration {
    let benches = vec![Benchmark::A, Benchmark::D, Benchmark::H];
    let alus = [1_u32, 2, 4, 8, 16];
    let muls = [1_u32, 2, 4, 8];
    let regs = [64_u32, 128, 256, 512];
    let ports = [1_u32, 2, 4];
    let lats = [2_u32, 4, 8];
    let clusters = [1_u32, 2, 4];
    let random_spec = |rng: &mut Rng| loop {
        if let Ok(s) = ArchSpec::new(
            *rng.pick(&alus),
            *rng.pick(&muls),
            *rng.pick(&regs),
            *rng.pick(&ports),
            *rng.pick(&lats),
            *rng.pick(&clusters),
        ) {
            return s;
        }
    };
    let outcome = |rng: &mut Rng| {
        if rng.below(100) < fail_percent {
            EvalOutcome::Failed {
                reason: FailReason {
                    kind: *rng.pick(&[FailKind::Panic, FailKind::FuelExhausted, FailKind::Error]),
                    message: "synthetic quarantine".to_owned(),
                },
            }
        } else {
            EvalOutcome::Done(Measurement {
                // 5.0 ..= 204.75 cycles per output, always positive.
                cycles_per_output: 5.0 + rng.below(800) as f64 / 4.0,
                unroll: 1 << rng.below(4),
                spilled: rng.gen_bool(),
                compilations: rng.range_u32(1..=5),
            })
        }
    };
    let n = 4 + rng.index(16);
    let archs: Vec<ArchEval> = (0..n)
        .map(|_| {
            let spec = random_spec(rng);
            ArchEval {
                spec,
                cost: 1.0 + rng.below(200) as f64 / 10.0,
                derate: 1.0 + rng.below(50) as f64 / 100.0,
                outcomes: (0..benches.len()).map(|_| outcome(rng)).collect(),
            }
        })
        .collect();
    let baseline = ArchEval {
        spec: ArchSpec::baseline(),
        cost: 1.0,
        derate: 1.0,
        outcomes: benches
            .iter()
            .map(|_| {
                EvalOutcome::Done(Measurement {
                    cycles_per_output: 50.0 + rng.below(400) as f64 / 4.0,
                    unroll: 1,
                    spilled: false,
                    compilations: 1,
                })
            })
            .collect(),
    };
    Exploration {
        benches,
        archs,
        baseline,
        stats: RunStats::default(),
    }
}

/// Strict two-dimensional Pareto domination (cheaper AND faster).
fn dominates(x: &ScatterPoint, y: &ScatterPoint) -> bool {
    x.cost < y.cost - 1e-12 && x.speedup > y.speedup + 1e-12
}

#[test]
fn frontier_points_are_mutually_non_dominated() {
    cases(0x5E1E_C700, 64, |rng| {
        let ex = synthetic(rng, 15);
        for bench in 0..ex.benches.len() {
            let pts = scatter(&ex, bench);
            let f = frontier(&pts);
            for &i in &f {
                for &j in &f {
                    assert!(
                        i == j || !dominates(&pts[i], &pts[j]),
                        "frontier point {j} is dominated by frontier point {i}"
                    );
                }
            }
        }
    });
}

#[test]
fn every_off_frontier_point_is_weakly_dominated_by_the_frontier() {
    cases(0x5E1E_C701, 64, |rng| {
        let ex = synthetic(rng, 15);
        for bench in 0..ex.benches.len() {
            let pts = scatter(&ex, bench);
            let f = frontier(&pts);
            let on: std::collections::HashSet<usize> = f.iter().copied().collect();
            for (i, p) in pts.iter().enumerate() {
                if on.contains(&i) {
                    continue;
                }
                assert!(
                    f.iter().any(|&q| {
                        pts[q].cost <= p.cost + 1e-12 && pts[q].speedup >= p.speedup - 1e-12
                    }),
                    "off-frontier point {i} (cost {}, speedup {}) beats the whole frontier",
                    p.cost,
                    p.speedup
                );
            }
        }
    });
}

#[test]
fn quarantined_units_never_reach_the_scatter_or_the_frontier() {
    // A high failure share so every case has NaN rows to tempt the
    // scatter with.
    cases(0x5E1E_C702, 64, |rng| {
        let ex = synthetic(rng, 40);
        for bench in 0..ex.benches.len() {
            let pts = scatter(&ex, bench);
            for p in &pts {
                assert!(
                    p.speedup.is_finite(),
                    "a non-finite speedup entered the scatter"
                );
            }
            // Exactly the base points with at least one finite
            // arrangement appear — quarantined arrangements neither
            // enter nor block their base point.
            let finite_bases: std::collections::HashSet<_> = ex
                .archs
                .iter()
                .enumerate()
                .filter(|&(a, _)| ex.speedup(a, bench).is_finite())
                .map(|(_, arch)| {
                    let s = arch.spec;
                    (s.alus, s.muls, s.regs, s.l2_ports, s.l2_latency)
                })
                .collect();
            assert_eq!(pts.len(), finite_bases.len());
            for &i in &frontier(&pts) {
                assert!(pts[i].speedup.is_finite());
            }
        }
    });
}

#[test]
fn selection_is_sound_on_synthetic_explorations() {
    cases(0x5E1E_C703, 64, |rng| {
        let ex = synthetic(rng, 25);
        let target = rng.index(ex.benches.len());
        let bound = 1.0 + rng.below(200) as f64 / 10.0;
        let f1 = rng.below(50) as f64 / 100.0;
        let f2 = f1 + rng.below(50) as f64 / 100.0;
        let s1 = select(&ex, target, bound, Range::Fraction(f1));
        let s2 = select(&ex, target, bound, Range::Fraction(f2));
        for sel in [&s1, &s2].into_iter().flatten() {
            assert!(sel.cost <= bound, "selection ignored the cost bound");
            assert!(
                sel.speedups.iter().all(|s| s.is_finite()),
                "a quarantined (NaN) row won a selection"
            );
            assert!(sel.su.is_finite());
            assert_eq!(sel.spec, ex.archs[sel.arch_index].spec);
        }
        // Nested candidate sets: the wider fraction never does worse,
        // and a selection never vanishes as the range widens.
        match (&s1, &s2) {
            (Some(a), Some(b)) => assert!(b.su >= a.su - 1e-9),
            (Some(_), None) => panic!("the selection vanished as the range widened"),
            _ => {}
        }
    });
}
