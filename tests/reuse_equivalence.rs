//! The compilation-reuse layer must be invisible: every result it hands
//! out has to be bit-identical to what a from-scratch compile produces.
//! Three layers of evidence, innermost first:
//!
//! 1. the phase split (`prepare` → `compile_core` → `finish`) equals the
//!    one-shot `compile`, and the core really is independent of the
//!    register-file size — the invariant the memo keys encode;
//! 2. `evaluate_cached` through a shared [`CompileCache`] equals the
//!    direct `evaluate` on random architectures;
//! 3. a whole `Exploration::run` with reuse on reproduces the
//!    cache-disabled run exactly (speedups, costs, derates, unrolls,
//!    logical compilation counts).

mod common;

use cfp_testkit::cases;
use custom_fit::dse::checkpoint::Checkpoint;
use custom_fit::dse::explore::{Exploration, ExploreConfig};
use custom_fit::dse::{evaluate, evaluate_cached, CompileCache, PlanCache};
use custom_fit::prelude::*;
use custom_fit::sched::{compile, compile_core, finish, prepare};

#[test]
fn memoized_phases_reproduce_direct_compiles_bit_for_bit() {
    cases(0x2e05_0001, 20, |rng| {
        let kernel = common::build(&common::recipe(rng));
        let spec = common::arch(rng);
        let machine = MachineResources::from_spec(&spec);

        let direct = compile(&kernel, &machine);
        let prepared = prepare(&kernel, &machine);
        let core = compile_core(&prepared, &machine);
        assert_eq!(finish(&core, &machine), direct, "{spec}");

        // Every sibling differing only in register-file size must share
        // the prepared form and the scheduled core bit for bit — the
        // invariant that makes (plan, signature) a sound memo key.
        for regs in [64_u32, 128, 256, 512] {
            if regs == spec.regs {
                continue;
            }
            let sib = ArchSpec::new(
                spec.alus,
                spec.muls,
                regs,
                spec.l2_ports,
                spec.l2_latency,
                spec.clusters,
            )
            .expect("register sizes divide every cluster count here");
            assert_eq!(sib.sched_signature(), spec.sched_signature());
            let m2 = MachineResources::from_spec(&sib);
            assert_eq!(prepare(&kernel, &m2), prepared, "{spec} vs {sib}");
            assert_eq!(compile_core(&prepared, &m2), core, "{spec} vs {sib}");
            // Serving the sibling from the shared core equals compiling
            // it from scratch.
            assert_eq!(finish(&core, &m2), compile(&kernel, &m2), "{sib}");
        }
    });
}

#[test]
fn cached_evaluation_matches_direct_evaluation() {
    let benches = [Benchmark::A, Benchmark::D, Benchmark::G];
    let plans = PlanCache::build(&benches, &[64, 128, 256, 512], &[1, 2, 4]);
    let memo = CompileCache::new();
    cases(0x2e05_0002, 40, |rng| {
        let spec = common::arch(rng);
        let bench = *rng.pick(&benches);
        let cached = evaluate_cached(&spec, bench, &plans, &memo);
        let direct = evaluate(&spec, bench, &plans);
        assert_eq!(cached, direct, "{spec} on {bench}");
    });
    // 40 evaluations over a small space must have revisited signatures.
    assert!(memo.core_hits() > 0);
}

#[test]
fn exploration_is_identical_with_reuse_on_and_off() {
    let on = ExploreConfig::smoke();
    let mut off = on.clone();
    off.reuse = false;
    let e_on = Exploration::run(&on);
    let e_off = Exploration::run(&off);

    assert_eq!(e_on.benches, e_off.benches);
    assert_eq!(e_on.baseline.outcomes, e_off.baseline.outcomes);
    for a in 0..e_on.archs.len() {
        let (x, y) = (&e_on.archs[a], &e_off.archs[a]);
        assert_eq!(x.spec, y.spec);
        assert_eq!(x.cost.to_bits(), y.cost.to_bits(), "{}", x.spec);
        assert_eq!(x.derate.to_bits(), y.derate.to_bits(), "{}", x.spec);
        assert_eq!(x.outcomes, y.outcomes, "{}", x.spec);
        let (su_on, su_off) = (e_on.speedup_row(a), e_off.speedup_row(a));
        let on_bits: Vec<u64> = su_on.iter().map(|s| s.to_bits()).collect();
        let off_bits: Vec<u64> = su_off.iter().map(|s| s.to_bits()).collect();
        assert_eq!(on_bits, off_bits, "{}", x.spec);
    }
    // Same logical work, different physical work.
    assert_eq!(e_on.stats.compilations, e_off.stats.compilations);
    assert!(e_on.stats.cache_hits > 0);
    assert_eq!(e_off.stats.cache_hits, 0);
    assert_eq!(e_off.stats.unique_schedules, 0);
    assert!(
        e_on.stats.unique_schedules < e_on.stats.compilations,
        "reuse saved nothing: {} schedules for {} compilations",
        e_on.stats.unique_schedules,
        e_on.stats.compilations
    );

    // And checkpointing is equally invisible: journaling every unit to
    // disk as it lands must not change a single bit of the results.
    let path = std::env::temp_dir().join(format!(
        "cfp_reuse_equivalence_{}.journal",
        std::process::id()
    ));
    let _ = std::fs::remove_file(&path);
    let mut ck = on.clone();
    ck.checkpoint = Some(Checkpoint::new(&path));
    let e_ck = Exploration::run(&ck);
    assert_eq!(e_ck.stats.resumed_units, 0);
    assert_eq!(e_on.baseline.outcomes, e_ck.baseline.outcomes);
    for (x, y) in e_on.archs.iter().zip(&e_ck.archs) {
        assert_eq!(x.outcomes, y.outcomes, "{}", x.spec);
    }
    assert_eq!(e_on.stats.compilations, e_ck.stats.compilations);
    let _ = std::fs::remove_file(&path);
}
