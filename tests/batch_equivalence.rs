//! The batch evaluation core is behavior-preserving: every column of
//! [`EvalBatch`], every scatter point, frontier index, and selection
//! produced by the SoA consumers is bit-identical to the scalar path
//! (`Exploration` accessors, `pareto::scatter`/`frontier`,
//! `select::select`) — on the recorded full paper space, on a live
//! paper-space sweep across 1/2/N worker threads, and on a live
//! extended-space sweep with injected quarantines (NaN rows must never
//! enter a scatter, a frontier, or a selection).
//!
//! The pinned digests were captured from the *scalar* surfaces at the
//! commit that introduced the batch core; one flipped bit anywhere in a
//! cost, derate, speedup, fail verdict, scatter point, frontier index,
//! or selection changes them. This binary installs a process-global
//! panic hook (like `fault_injection.rs`) to keep injected panics quiet.

use cfp_testkit::{FaultInjector, INJECTED_FAULT};
use custom_fit::dse::batch::{spec_fingerprint, EvalBatch};
use custom_fit::dse::checkpoint::fingerprint;
use custom_fit::dse::explore::{Exploration, ExploreConfig};
use custom_fit::dse::pareto;
use custom_fit::dse::select::{select, select_batch, Range};
use custom_fit::machine::DesignSpace;
use custom_fit::prelude::*;
use std::sync::Once;

/// Column digest of the recorded full-paper-space run
/// (`results/exploration.csv`, 600 architectures x 10 benchmarks).
const RECORDED_PAPER_COLUMNS: u64 = 0x1480_c48b_a4d9_4404;
/// Scatter/frontier/selection surface digest of the recorded run.
const RECORDED_PAPER_SURFACE: u64 = 0xd073_c49c_3af2_6088;
/// Column digest of the live paper-sample sweep (86 archs, A/D/G).
const LIVE_PAPER_COLUMNS: u64 = 0xa9e5_8773_10d8_a7f6;
/// Column digest of the live extended sweep (384 base points, D/H,
/// injected quarantines).
const LIVE_EXTENDED_COLUMNS: u64 = 0x2497_e1c3_6b0f_f29e;
/// Surface digest of the live extended sweep.
const LIVE_EXTENDED_SURFACE: u64 = 0x0f9c_e667_a932_cd41;
/// Checkpoint fingerprint of the paper-sample configuration.
const PAPER_SAMPLE_FINGERPRINT: u64 = 0x5691_b469_ed2a_b11a;
/// Checkpoint fingerprint of the extended configuration.
const EXTENDED_FINGERPRINT: u64 = 0x2972_acef_a901_baa4;

fn quiet_injected_panics() {
    static HOOK: Once = Once::new();
    HOOK.call_once(|| {
        let default = std::panic::take_hook();
        std::panic::set_hook(Box::new(move |info| {
            let injected = info
                .payload()
                .downcast_ref::<String>()
                .is_some_and(|m| m.contains(INJECTED_FAULT));
            if !injected {
                default(info);
            }
        }));
    });
}

fn eat(h: &mut u64, x: u64) {
    for b in x.to_le_bytes() {
        *h ^= u64::from(b);
        *h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
}

/// Fold an `f64` by exact bits, mapping every non-finite value to one
/// marker so the digest never depends on NaN payload bits.
fn eat_f(h: &mut u64, x: f64) {
    eat(
        h,
        if x.is_finite() {
            x.to_bits()
        } else {
            u64::MAX - 1
        },
    );
}

/// FNV digest of every batch column: fingerprints, costs, derates,
/// harmonic means, the full speedup plane, and the fail codes.
fn column_digest(batch: &EvalBatch) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    eat(&mut h, batch.len() as u64);
    eat(&mut h, batch.benches() as u64);
    for &f in batch.fingerprints() {
        eat(&mut h, f);
    }
    for &c in batch.costs() {
        eat_f(&mut h, c);
    }
    for &d in batch.derates() {
        eat_f(&mut h, d);
    }
    for &s in batch.sus() {
        eat_f(&mut h, s);
    }
    for &s in batch.speedups() {
        eat_f(&mut h, s);
    }
    for &k in batch.fails() {
        eat(&mut h, u64::from(k));
    }
    h
}

/// The analysis surfaces, digested from the *batch* consumers: every
/// benchmark's scatter and frontier, and a selection grid over targets,
/// bounds, and ranges.
fn surface_digest(batch: &EvalBatch) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in 0..batch.benches() {
        let pts = batch.scatter(b);
        eat(&mut h, pts.len() as u64);
        for p in &pts {
            eat(&mut h, spec_fingerprint(&p.spec));
            eat_f(&mut h, p.cost);
            eat_f(&mut h, p.speedup);
        }
        for i in pareto::frontier(&pts) {
            eat(&mut h, i as u64);
        }
    }
    for target in 0..batch.benches() {
        for bound in [2.0, 5.0, 10.0, 30.0, 1e9] {
            for range in [Range::Fraction(0.0), Range::Fraction(0.10), Range::Infinite] {
                match select_batch(batch, target, bound, range) {
                    Some(sel) => {
                        eat(&mut h, sel.arch_index as u64);
                        eat_f(&mut h, sel.su);
                    }
                    None => eat(&mut h, u64::MAX),
                }
            }
        }
    }
    h
}

/// The heart of the PR's guarantee: every batch column and every batch
/// consumer agrees with the scalar path bit for bit, and no quarantined
/// (non-finite) unit reaches a scatter, a frontier, or a selection.
fn assert_bit_identical(ex: &Exploration) {
    let batch = ex.batch();
    assert_eq!(batch.len(), ex.archs.len());
    assert_eq!(batch.benches(), ex.benches.len());

    // Columns mirror the scalar accessors.
    for (a, arch) in ex.archs.iter().enumerate() {
        assert_eq!(batch.specs()[a], arch.spec);
        assert_eq!(batch.fingerprints()[a], spec_fingerprint(&arch.spec));
        assert_eq!(
            batch.costs()[a].to_bits(),
            arch.cost.to_bits(),
            "{}",
            arch.spec
        );
        assert_eq!(batch.derates()[a].to_bits(), arch.derate.to_bits());
        let row = ex.speedup_row(a);
        let su = Exploration::harmonic_mean(&row);
        assert!(
            batch.sus()[a].to_bits() == su.to_bits() || (batch.sus()[a].is_nan() && su.is_nan())
        );
        for b in 0..ex.benches.len() {
            let scalar = ex.speedup(a, b);
            let batched = batch.speedup_row(a)[b];
            assert!(
                scalar.to_bits() == batched.to_bits() || (scalar.is_nan() && batched.is_nan()),
                "unit ({a}, {b}): {scalar} vs {batched}"
            );
            let kind = arch.outcomes[b].failure().map(|r| r.kind);
            assert_eq!(batch.fail(a, b), kind, "unit ({a}, {b})");
            assert_eq!(
                batch.fail(a, b).is_some(),
                !batched.is_finite(),
                "fail code and NaN speedup must coincide at ({a}, {b})"
            );
        }
    }

    // Scatter and frontier: same points, same order, same bits, and no
    // quarantined unit slips in.
    for b in 0..ex.benches.len() {
        let scalar = pareto::scatter(ex, b);
        let batched = batch.scatter(b);
        assert_eq!(scalar.len(), batched.len(), "bench {b}");
        for (s, t) in scalar.iter().zip(&batched) {
            assert_eq!(s.spec, t.spec);
            assert_eq!(s.cost.to_bits(), t.cost.to_bits());
            assert_eq!(s.speedup.to_bits(), t.speedup.to_bits());
            assert!(t.speedup.is_finite(), "a NaN entered the scatter");
        }
        assert_eq!(pareto::frontier(&scalar), pareto::frontier(&batched));
    }

    // Selection: the batch rule picks the same winner everywhere, and
    // never a poisoned row.
    for target in 0..ex.benches.len() {
        for bound in [2.0, 5.0, 10.0, 30.0, 1e9] {
            for range in [Range::Fraction(0.0), Range::Fraction(0.10), Range::Infinite] {
                let s = select(ex, target, bound, range);
                let t = select_batch(&batch, target, bound, range);
                match (s, t) {
                    (None, None) => {}
                    (Some(s), Some(t)) => {
                        assert_eq!(s.arch_index, t.arch_index, "target {target} bound {bound}");
                        assert_eq!(s.su.to_bits(), t.su.to_bits());
                        assert!(t.su.is_finite(), "a quarantined row won a selection");
                        assert!(t.speedups.iter().all(|x| x.is_finite()));
                        let sb: Vec<u64> = s.speedups.iter().map(|x| x.to_bits()).collect();
                        let tb: Vec<u64> = t.speedups.iter().map(|x| x.to_bits()).collect();
                        assert_eq!(sb, tb);
                    }
                    (s, t) => panic!(
                        "target {target} bound {bound} {range}: scalar Some={} batch Some={}",
                        s.is_some(),
                        t.is_some()
                    ),
                }
            }
        }
    }
}

// ---------------------------------------------------------------------
// The recorded full paper space (600 architectures x 10 benchmarks).

#[test]
fn recorded_paper_space_is_bit_identical_and_pinned() {
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/results/exploration.csv");
    let Ok(text) = std::fs::read_to_string(path) else {
        eprintln!("results/exploration.csv absent; skipping");
        return;
    };
    let ex = custom_fit::dse::from_csv(&text).expect("recorded artifact parses");
    assert!(
        ex.archs.len() >= 550,
        "not the full space: {}",
        ex.archs.len()
    );
    assert_eq!(ex.benches.len(), 10);
    assert_bit_identical(&ex);
    let batch = ex.batch();
    let cols = column_digest(&batch);
    let surf = surface_digest(&batch);
    assert_eq!(
        cols, RECORDED_PAPER_COLUMNS,
        "columns drifted: {cols:#018x}"
    );
    assert_eq!(
        surf, RECORDED_PAPER_SURFACE,
        "surface drifted: {surf:#018x}"
    );
}

// ---------------------------------------------------------------------
// Live sweeps.

/// Every 7th arrangement of the paper space: the same 86-architecture
/// corpus `mdes_equivalence.rs` pins.
fn paper_sample() -> ExploreConfig {
    ExploreConfig {
        archs: DesignSpace::paper()
            .all_arrangements()
            .into_iter()
            .step_by(7)
            .collect(),
        benches: vec![Benchmark::A, Benchmark::D, Benchmark::G],
        ..ExploreConfig::default()
    }
}

/// One cluster arrangement per *base point* of the extended space: all
/// 384 points present, the arrangement axis collapsed.
fn extended_one_per_base() -> ExploreConfig {
    let mut seen = std::collections::HashSet::new();
    let archs: Vec<ArchSpec> = DesignSpace::extended()
        .all_arrangements()
        .into_iter()
        .filter(|s| {
            // The six-axis key: `l2_pipelined` is the axis the extended
            // space adds, so it stays in (unlike the scatter's key,
            // which deliberately collapses pipelined siblings).
            seen.insert((
                s.alus,
                s.muls,
                s.regs,
                s.l2_ports,
                s.l2_latency,
                s.l2_pipelined,
            ))
        })
        .collect();
    assert_eq!(archs.len(), 384, "extended space changed size");
    ExploreConfig {
        archs,
        benches: vec![Benchmark::D, Benchmark::H],
        // Dooms a seed-determined ~quarter of the units: the NaN
        // exclusion paths run against real quarantines, not synthetics.
        fault: Some(FaultInjector::one_in(0xba7c_4e11, 4)),
        ..ExploreConfig::default()
    }
}

#[test]
fn live_paper_sample_is_thread_independent_and_pinned() {
    let mut digests = Vec::new();
    for threads in [1, 2, ExploreConfig::default().threads] {
        let mut cfg = paper_sample();
        cfg.threads = threads;
        let ex = Exploration::run(&cfg);
        if digests.is_empty() {
            // The full scalar-vs-batch sweep once; digests carry the
            // cross-thread claim.
            assert_bit_identical(&ex);
        }
        digests.push(column_digest(&ex.batch()));
    }
    assert!(
        digests.windows(2).all(|w| w[0] == w[1]),
        "thread count changed the batch: {digests:#018x?}"
    );
    assert_eq!(
        digests[0], LIVE_PAPER_COLUMNS,
        "live paper columns drifted: {:#018x}",
        digests[0]
    );
}

#[test]
fn live_extended_space_with_quarantines_is_bit_identical_and_pinned() {
    quiet_injected_panics();
    let cfg = extended_one_per_base();
    let ex = Exploration::run(&cfg);
    assert!(
        ex.stats.failed_units > 0,
        "the injector doomed nothing; the NaN paths went untested"
    );
    assert_bit_identical(&ex);
    let batch = ex.batch();
    // The quarantine shows up in the fail plane exactly as often as the
    // stats report.
    let failed = batch.fails().iter().filter(|&&k| k != 0).count() as u64;
    assert_eq!(failed, ex.stats.failed_units);
    let cols = column_digest(&batch);
    let surf = surface_digest(&batch);
    assert_eq!(cols, LIVE_EXTENDED_COLUMNS, "columns drifted: {cols:#018x}");
    assert_eq!(surf, LIVE_EXTENDED_SURFACE, "surface drifted: {surf:#018x}");
}

#[test]
fn checkpoint_fingerprints_are_pinned_and_thread_blind() {
    let paper = paper_sample();
    let extended = extended_one_per_base();
    let fa = fingerprint(&paper);
    let fb = fingerprint(&extended);
    assert_eq!(
        fa, PAPER_SAMPLE_FINGERPRINT,
        "paper fingerprint: {fa:#018x}"
    );
    assert_eq!(fb, EXTENDED_FINGERPRINT, "extended fingerprint: {fb:#018x}");
    // The fingerprint names the *work*, not the machine running it: a
    // resumed checkpoint must match across thread counts.
    let mut other = paper_sample();
    other.threads = 1;
    assert_eq!(fingerprint(&other), fa);
}
