//! The machine-description refactor is behavior-preserving: every
//! scheduler decision, fuel verdict, and checkpoint fingerprint is
//! bit-identical to the pre-`Mdes` implementation.
//!
//! The pinned digests below were captured by running the *pre-refactor*
//! tree (commit `ec90063`) over a deterministic corpus: every 7th
//! arrangement of the paper's 192-point design space (86 architectures),
//! benchmarks A, D, and G, at unroll 1 and 2, with fuel-boundary
//! verdicts on every 5th unit and modulo scheduling on every 3rd spec.
//! The same loop re-run against the `Mdes`-backed scheduler must produce
//! the same 64-bit FNV digest — one flipped placement, fuel count, II
//! attempt, or register peak anywhere in the corpus changes it.

use custom_fit::dse::checkpoint::fingerprint;
use custom_fit::dse::explore::ExploreConfig;
use custom_fit::machine::{ArchSpec, DesignSpace, MachineResources, OpClass, UnitClass};
use custom_fit::prelude::Benchmark;
use custom_fit::sched::{
    prepare, try_compile_core_in, try_modulo_schedule_in, Ddg, Fuel, SchedScratch,
};

/// Digest of the scheduling corpus under the pre-refactor scheduler.
const PRE_MDES_CORPUS_DIGEST: u64 = 0xf1b4_6bfc_b9ab_dd97;
/// `fingerprint` of the sample sweep (A/D/G, unlimited fuel) pre-refactor.
const PRE_MDES_FINGERPRINT_A: u64 = 0x5691_b469_ed2a_b11a;
/// `fingerprint` of the sample sweep (table columns, fuel 9999) pre-refactor.
const PRE_MDES_FINGERPRINT_B: u64 = 0x3340_0a5f_ee5c_d5b2;

fn eat(h: &mut u64, x: u64) {
    for b in x.to_le_bytes() {
        *h ^= u64::from(b);
        *h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
}

fn sample_specs() -> Vec<ArchSpec> {
    DesignSpace::paper()
        .all_arrangements()
        .into_iter()
        .step_by(7)
        .collect()
}

#[test]
fn corpus_digest_matches_the_pre_mdes_oracle() {
    let specs = sample_specs();
    assert_eq!(specs.len(), 86, "the pinned corpus is exactly this sample");
    let benches = [Benchmark::A, Benchmark::D, Benchmark::G];
    let mut scratch = SchedScratch::new();
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    let mut unit = 0_u64;
    for bench in benches {
        let mut k = bench.kernel();
        custom_fit::opt::optimize(&mut k);
        let k2 = custom_fit::opt::unroll::unroll(&k, 2);
        for spec in &specs {
            let machine = MachineResources::from_spec(spec);
            for kernel in [&k, &k2] {
                let prepared = prepare(kernel, &machine);
                let mut fuel = Fuel::unlimited();
                let core = try_compile_core_in(&prepared, &machine, &mut fuel, &mut scratch)
                    .expect("unlimited fuel");
                eat(&mut h, core.steps);
                eat(&mut h, u64::from(core.length));
                eat(&mut h, core.move_count as u64);
                eat(&mut h, u64::from(core.critical_path));
                for p in &core.schedule.placements {
                    eat(&mut h, (u64::from(p.cycle) << 32) | u64::from(p.cluster));
                }
                for &p in &core.peak {
                    eat(&mut h, u64::from(p));
                }
                // Fuel verdicts at the exact boundary, on a subset.
                if unit % 5 == 0 && core.steps > 1 {
                    let ok = try_compile_core_in(
                        &prepared,
                        &machine,
                        &mut Fuel::limited(core.steps),
                        &mut scratch,
                    )
                    .is_ok();
                    let under = try_compile_core_in(
                        &prepared,
                        &machine,
                        &mut Fuel::limited(core.steps - 1),
                        &mut scratch,
                    )
                    .is_err();
                    eat(&mut h, u64::from(ok));
                    eat(&mut h, u64::from(under));
                }
                unit += 1;
            }
            // Modulo on the un-unrolled body, every 3rd spec.
            if unit % 3 == 0 {
                let prepared = prepare(&k, &machine);
                let mut fuel = Fuel::unlimited();
                let core = try_compile_core_in(&prepared, &machine, &mut fuel, &mut scratch)
                    .expect("unlimited fuel");
                let ddg = Ddg::build_in(&core.assignment.code, &mut scratch);
                let mut mfuel = Fuel::unlimited();
                let ms = try_modulo_schedule_in(
                    &core.assignment,
                    &ddg,
                    &machine,
                    core.length,
                    &mut mfuel,
                    &mut scratch,
                )
                .expect("unlimited fuel");
                eat(&mut h, mfuel.spent());
                match ms {
                    Some(ms) => {
                        eat(&mut h, u64::from(ms.ii));
                        eat(&mut h, u64::from(ms.mii));
                        eat(&mut h, u64::from(ms.ii_attempts));
                        for &s in &ms.slots {
                            eat(&mut h, u64::from(s));
                        }
                    }
                    None => eat(&mut h, u64::MAX),
                }
            }
        }
    }
    assert_eq!(
        h, PRE_MDES_CORPUS_DIGEST,
        "a scheduler decision, step count, or register peak changed"
    );
}

#[test]
fn checkpoint_fingerprints_are_unchanged() {
    let cfg_a = ExploreConfig {
        archs: sample_specs(),
        benches: vec![Benchmark::A, Benchmark::D, Benchmark::G],
        fuel: None,
        ..ExploreConfig::default()
    };
    let cfg_b = ExploreConfig {
        archs: sample_specs(),
        benches: Benchmark::TABLE_COLUMNS.to_vec(),
        fuel: Some(9999),
        ..ExploreConfig::default()
    };
    assert_eq!(fingerprint(&cfg_a), PRE_MDES_FINGERPRINT_A);
    assert_eq!(fingerprint(&cfg_b), PRE_MDES_FINGERPRINT_B);
}

/// The tables the refactor retired, transcribed from the pre-`Mdes`
/// scheduler sources, checked live against the derived description over
/// the whole paper space.
#[test]
fn derived_tables_match_the_retired_hardcoded_ones() {
    for spec in DesignSpace::paper().all_arrangements() {
        let machine = MachineResources::from_spec(&spec);
        // loopcode.rs `latency_of`: ALU 1, IMUL 2, L1 3, L2 from the
        // spec, branch 1.
        assert_eq!(machine.latency(OpClass::Alu), 1);
        assert_eq!(machine.latency(OpClass::Mul), 2);
        assert_eq!(machine.latency(OpClass::MemL1), 3);
        assert_eq!(machine.latency(OpClass::MemL2), spec.l2_latency);
        assert_eq!(machine.latency(OpClass::Branch), 1);
        // list.rs issue scan: memory ports stayed busy for the full
        // latency (non-pipelined), every other unit re-issued each cycle.
        for class in OpClass::ALL {
            let expect = if class.is_mem() {
                machine.latency(class)
            } else {
                1
            };
            assert_eq!(machine.reserved_cycles(class), expect, "{spec} {class:?}");
            assert_eq!(
                machine.mdes.packed_meta(class),
                (expect << 3) | class.code(),
                "{spec} {class:?}"
            );
        }
        // Unit counts agree with the spec's round-robin cluster dealing.
        for (j, sh) in spec.cluster_shapes().enumerate() {
            assert_eq!(machine.mdes.units(j, UnitClass::Alu), sh.alus);
            assert_eq!(machine.mdes.units(j, UnitClass::Mul), sh.muls);
            assert_eq!(machine.mdes.units(j, UnitClass::L1Port), sh.l1_ports);
            assert_eq!(machine.mdes.units(j, UnitClass::L2Port), sh.l2_ports);
            assert_eq!(
                machine.mdes.units(j, UnitClass::Branch),
                u32::from(sh.has_branch)
            );
        }
    }
}

/// The worked example from DESIGN.md, pinned byte for byte: `exhibits
/// --mdes-dump "(4 2 256 2 8 2)"` prints this rendering under a
/// one-line header. Regenerate the golden file from that command if the
/// dump format deliberately changes.
#[test]
fn golden_mdes_dump_for_the_worked_example() {
    let spec = ArchSpec::parse("(4 2 256 2 8 2)").expect("valid spec");
    let rendered = custom_fit::machine::Mdes::from_spec(&spec).render();
    assert_eq!(rendered, include_str!("golden/mdes_4_2_256_2_8_2.txt"));
}

/// The extended axis end to end: flipping `l2_pipelined` reaches the
/// scheduler purely through the derived description — no scheduler code
/// special-cases it — and a Level-2-bound kernel gets faster, never
/// slower.
#[test]
fn pipelined_l2_ports_change_only_the_description_and_help() {
    let base = ArchSpec::new(4, 2, 256, 1, 8, 1).expect("valid spec");
    let piped = base.with_pipelined_l2();
    assert_ne!(base.sched_signature(), piped.sched_signature());

    let mb = MachineResources::from_spec(&base);
    let mp = MachineResources::from_spec(&piped);
    // The description differs exactly in the Level-2 reservation window.
    assert_eq!(mp.latency(OpClass::MemL2), mb.latency(OpClass::MemL2));
    assert_eq!(
        mb.reserved_cycles(OpClass::MemL2),
        mb.latency(OpClass::MemL2)
    );
    assert_eq!(mp.reserved_cycles(OpClass::MemL2), 1);
    for class in OpClass::ALL {
        if class != OpClass::MemL2 {
            assert_eq!(mb.reserved_cycles(class), mp.reserved_cycles(class));
        }
    }

    let mut scratch = SchedScratch::new();
    let mut k = Benchmark::D.kernel();
    custom_fit::opt::optimize(&mut k);
    let k = custom_fit::opt::unroll::unroll(&k, 4);
    let schedule = |machine: &MachineResources, scratch: &mut SchedScratch| {
        let prepared = prepare(&k, machine);
        try_compile_core_in(&prepared, machine, &mut Fuel::unlimited(), scratch)
            .expect("unlimited fuel")
            .length
    };
    let lb = schedule(&mb, &mut scratch);
    let lp = schedule(&mp, &mut scratch);
    assert!(
        lp < lb,
        "one non-pipelined L2 port serializes benchmark D's loads: {lp} vs {lb}"
    );
}
