//! Regression checks on the recorded full-experiment artifact
//! (`results/exploration.csv`). These assert the *data-level* claims
//! EXPERIMENTS.md makes, against the very run it cites — and skip
//! cleanly if the artifact has been deleted.

use custom_fit::dse;
use custom_fit::prelude::*;

fn recorded() -> Option<Exploration> {
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/results/exploration.csv");
    let text = std::fs::read_to_string(path).ok()?;
    Some(dse::from_csv(&text).expect("recorded artifact parses"))
}

#[test]
fn recorded_run_supports_the_experiments_md_claims() {
    let Some(ex) = recorded() else {
        eprintln!("results/exploration.csv absent; skipping");
        return;
    };

    // Scale: the full space, all arrangements.
    assert_eq!(ex.benches.len(), 10);
    assert!(ex.archs.len() >= 550, "{}", ex.archs.len());

    let a_col = ex.bench_index(Benchmark::A).expect("A present");

    // 1. Speedups span roughly the paper's range.
    let mut max_su = f64::NEG_INFINITY;
    let mut min_su = f64::INFINITY;
    for a in 0..ex.archs.len() {
        for b in 0..ex.benches.len() {
            let s = ex.speedup(a, b);
            max_su = max_su.max(s);
            min_su = min_su.min(s);
        }
    }
    assert!(max_su > 10.0, "top speedup {max_su:.2}");
    assert!(min_su < 1.0, "pathologies exist: min {min_su:.2}");

    // 2. The A pathology: some architecture that is within 30% of some
    //    other benchmark's cost-10 best runs A at less than half of A's
    //    own cost-10 best.
    let affordable: Vec<usize> = (0..ex.archs.len())
        .filter(|&i| ex.archs[i].cost <= 10.0)
        .collect();
    let best_a = affordable
        .iter()
        .map(|&i| ex.speedup(i, a_col))
        .fold(f64::NEG_INFINITY, f64::max);
    let danger = (0..ex.benches.len())
        .filter(|&t| t != a_col)
        .map(|t| {
            let best_t = affordable
                .iter()
                .map(|&i| ex.speedup(i, t))
                .fold(f64::NEG_INFINITY, f64::max);
            affordable
                .iter()
                .filter(|&&i| ex.speedup(i, t) >= 0.7 * best_t)
                .map(|&i| ex.speedup(i, a_col))
                .fold(f64::INFINITY, f64::min)
        })
        .fold(f64::INFINITY, f64::min);
    assert!(
        danger * 2.0 < best_a,
        "worst A on a reasonable machine {danger:.2} vs best {best_a:.2}"
    );

    // 3. RANGE monotonicity on the real data, at every cost bound.
    for bound in [5.0, 10.0, 15.0] {
        for t in 0..ex.benches.len() {
            let s0 = select(&ex, t, bound, Range::Fraction(0.0)).expect("feasible");
            let s10 = select(&ex, t, bound, Range::Fraction(0.10)).expect("feasible");
            let sinf = select(&ex, t, bound, Range::Infinite).expect("feasible");
            assert!(s10.su >= s0.su - 1e-9, "{bound}/{t}");
            assert!(sinf.su >= s10.su - 1e-9, "{bound}/{t}");
            assert!(s0.cost <= bound && s10.cost <= bound && sinf.cost <= bound);
        }
    }

    // 4. Frontiers are non-trivial for every benchmark.
    for b in 0..ex.benches.len() {
        let pts = dse::scatter(&ex, b);
        assert_eq!(pts.len(), 192, "one point per base configuration");
        assert!(dse::frontier(&pts).len() >= 4, "{}", ex.benches[b]);
    }

    // 5. Search study on the real oracle: exhaustive is optimal and
    //    hill-climbing is close while touching a fraction of the space.
    let rows = dse::search::study(&ex, 10.0, &[1, 2, 3]);
    assert!((rows[0].2 - 1.0).abs() < 1e-12, "exhaustive quality 1");
    let hill = rows
        .iter()
        .find(|(s, ..)| matches!(s, dse::Strategy::HillClimb { .. }))
        .expect("hill climbing in the study");
    assert!(hill.2 > 0.85, "hill-climb quality {:.3}", hill.2);
    assert!(
        hill.1 < ex.archs.len() as f64 / 3.0,
        "hill-climb evaluations {:.0}",
        hill.1
    );
}
