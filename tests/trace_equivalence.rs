//! The observability layer is free: recording every span changes no
//! result, and the default [`custom_fit::obs::NullRecorder`] keeps the
//! sweep's steady-state path allocation-free.
//!
//! Two contracts, both from `cfp_obs`'s design:
//! * **Results-identical** — an exploration run under a live
//!   [`JsonlRecorder`] produces bit-identical speedups, outcomes, fuel
//!   verdicts, and checkpoint journals to the same run under the null
//!   recorder (which is what `Exploration::try_run` uses).
//! * **Zero-allocation off** — with a disabled trace, a warm worker's
//!   cached evaluation allocates nothing: the spans' field lists live
//!   on the stack and every string render is guarded by `trace.on()`.
//!   Proven here with a counting global allocator, not by inspection.

use custom_fit::dse::explore::{Exploration, ExploreConfig};
use custom_fit::dse::{
    try_evaluate_cached_in, try_evaluate_cached_traced_in, Checkpoint, CompileCache, EvalScratch,
    PlanCache,
};
use custom_fit::machine::ArchSpec;
use custom_fit::obs::{JsonlRecorder, UnitTrace};
use custom_fit::prelude::Benchmark;
use std::alloc::{GlobalAlloc, Layout, System};
use std::cell::Cell;

// ---------------------------------------------------------------------
// A counting allocator: the System allocator plus a per-thread tally of
// allocation calls. Per-thread, so the parallel test harness and other
// tests in this binary cannot disturb a measurement.

struct CountingAlloc;

thread_local! {
    static ALLOCS: Cell<u64> = const { Cell::new(0) };
}

// SAFETY: defers entirely to `System`; the tally is a thread-local
// counter bump (`try_with`, so a late allocation during thread teardown
// is simply not counted rather than panicking).
unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        let _ = ALLOCS.try_with(|c| c.set(c.get() + 1));
        System.alloc(layout)
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        let _ = ALLOCS.try_with(|c| c.set(c.get() + 1));
        System.realloc(ptr, layout, new_size)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }
}

#[global_allocator]
static ALLOCATOR: CountingAlloc = CountingAlloc;

fn allocs() -> u64 {
    ALLOCS.try_with(Cell::get).unwrap_or(0)
}

// ---------------------------------------------------------------------
// Results-identical: traced and untraced runs agree bit for bit.

/// Every observable result, compared bitwise. Outcome equality covers
/// measurements (cycles-per-output, unroll, spill flag, compilation
/// counts) and quarantine records (kind and message); speedup rows are
/// additionally compared through `to_bits` so `-0.0`/`0.0` or NaN
/// payload drift could not hide behind float `==`.
fn assert_results_identical(plain: &Exploration, traced: &Exploration) {
    assert_eq!(plain.benches, traced.benches);
    assert_eq!(plain.baseline.outcomes, traced.baseline.outcomes);
    assert_eq!(plain.archs.len(), traced.archs.len());
    for (a, (p, t)) in plain.archs.iter().zip(&traced.archs).enumerate() {
        assert_eq!(p.spec, t.spec);
        assert_eq!(p.cost.to_bits(), t.cost.to_bits(), "{}", p.spec);
        assert_eq!(p.outcomes, t.outcomes, "{}", p.spec);
        let pr: Vec<u64> = plain.speedup_row(a).iter().map(|s| s.to_bits()).collect();
        let tr: Vec<u64> = traced.speedup_row(a).iter().map(|s| s.to_bits()).collect();
        assert_eq!(pr, tr, "{}", p.spec);
    }
    assert_eq!(plain.stats.compilations, traced.stats.compilations);
    assert_eq!(plain.stats.cache_hits, traced.stats.cache_hits);
    assert_eq!(plain.stats.unique_schedules, traced.stats.unique_schedules);
    assert_eq!(plain.stats.unique_plans, traced.stats.unique_plans);
    assert_eq!(plain.stats.failed_units, traced.stats.failed_units);
    assert_eq!(plain.stats.fuel_exhausted, traced.stats.fuel_exhausted);
}

#[test]
fn traced_exploration_is_bit_identical_to_untraced() {
    let cfg = ExploreConfig::smoke();
    let plain = Exploration::try_run(&cfg).expect("smoke run");
    let rec = JsonlRecorder::new();
    let traced = Exploration::try_run_traced(&cfg, &rec).expect("traced smoke run");
    assert_results_identical(&plain, &traced);
    // The trace really recorded the sweep (one unit span per pair plus
    // per-stage compile spans), it did not just stay out of the way.
    let units = cfg.archs.len() * cfg.benches.len() + cfg.benches.len();
    assert!(
        rec.len() > units,
        "expected more than {units} spans, got {}",
        rec.len()
    );
}

#[test]
fn traced_fuel_verdicts_are_bit_identical_to_untraced() {
    // A budget wide enough for the baseline but too tight for some
    // deep-unroll compilations on the big machines (the same shape as
    // `explore`'s own budgeted test): the traced run must cut exactly
    // the same sweeps at exactly the same unrolls, and quarantine
    // exactly the same units — fuel verdicts are step counts, and
    // tracing must not add or leak steps.
    let mut cfg = ExploreConfig::smoke();
    cfg.benches = vec![Benchmark::D, Benchmark::G];
    cfg.fuel = Some(2_000);
    let plain = Exploration::try_run(&cfg).expect("fuel-budget run");
    let rec = JsonlRecorder::new();
    let traced = Exploration::try_run_traced(&cfg, &rec).expect("traced fuel-budget run");
    assert_results_identical(&plain, &traced);
    // Prove the budget was binding — an unlimited run measures at least
    // one unit differently — so the equivalence above really compared
    // fuel-shaped results, not an untouched sweep.
    let mut unlimited_cfg = ExploreConfig::smoke();
    unlimited_cfg.benches = cfg.benches.clone();
    let unlimited = Exploration::try_run(&unlimited_cfg).expect("unlimited run");
    assert!(
        plain
            .archs
            .iter()
            .zip(&unlimited.archs)
            .any(|(p, u)| p.outcomes != u.outcomes),
        "fuel budget {:?} changed nothing; the verdict equivalence is vacuous",
        cfg.fuel
    );
}

#[test]
fn checkpoint_journals_are_byte_identical_with_tracing_on() {
    // Identical fingerprints are necessary but not sufficient; the whole
    // journal — header, unit order, serialized outcomes — must match, so
    // a journal written under tracing resumes a run without it (and vice
    // versa). Single-threaded so unit completion order is defined.
    let dir = std::env::temp_dir();
    let plain_path = dir.join(format!("cfp_trace_eq_plain_{}.journal", std::process::id()));
    let traced_path = dir.join(format!(
        "cfp_trace_eq_traced_{}.journal",
        std::process::id()
    ));
    let config = |ck: Checkpoint| {
        let mut cfg = ExploreConfig::smoke();
        cfg.threads = 1;
        cfg.checkpoint = Some(ck);
        cfg
    };

    let plain_cfg = config(Checkpoint::new(&plain_path));
    let plain = Exploration::try_run(&plain_cfg).expect("plain checkpointed run");
    let rec = JsonlRecorder::new();
    let traced_cfg = config(Checkpoint::new(&traced_path));
    let traced = Exploration::try_run_traced(&traced_cfg, &rec).expect("traced checkpointed run");

    let plain_journal = std::fs::read_to_string(&plain_path).expect("read plain journal");
    let traced_journal = std::fs::read_to_string(&traced_path).expect("read traced journal");
    let _ = std::fs::remove_file(&plain_path);
    let _ = std::fs::remove_file(&traced_path);

    assert_results_identical(&plain, &traced);
    assert_eq!(
        plain_journal, traced_journal,
        "checkpoint journals diverged under tracing"
    );
    // Both runs journaled under the same fingerprint (the recorder is
    // not an input to it), which the byte equality already implies; the
    // explicit check documents the contract.
    assert_eq!(
        custom_fit::dse::checkpoint::fingerprint(&plain_cfg),
        custom_fit::dse::checkpoint::fingerprint(&traced_cfg),
    );
}

// ---------------------------------------------------------------------
// Zero-allocation off: the null path costs nothing on a warm worker.

#[test]
fn the_allocation_counter_itself_works() {
    let before = allocs();
    let v: Vec<u64> = Vec::with_capacity(512);
    assert!(allocs() > before, "the counting allocator is not wired in");
    drop(v);
}

#[test]
fn null_recorder_steady_state_allocates_nothing() {
    let benches = [Benchmark::A, Benchmark::D];
    let spec = ArchSpec::new(8, 4, 256, 2, 4, 2).expect("valid spec");
    let cache = PlanCache::build(&benches, &[spec.regs], &[1, 2, 4, 8]);
    let memo = CompileCache::new();
    let mut scratch = EvalScratch::new();

    // Warm-up: populate the compile memo and grow the scratch arena to
    // its steady-state size, exactly as a sweep worker's first units do.
    let mut warm = Vec::new();
    for &b in &benches {
        warm.push(
            try_evaluate_cached_in(&spec, b, &cache, &memo, None, &mut scratch)
                .expect("warm-up evaluation"),
        );
    }

    // Steady state: the same units again, through the *traced* entry
    // point with a disabled trace — the exact path `try_evaluate_cached_in`
    // and the sweep take under the null recorder.
    let before = allocs();
    for round in 0..3 {
        for (wi, &b) in benches.iter().enumerate() {
            let m = try_evaluate_cached_in(&spec, b, &cache, &memo, None, &mut scratch)
                .expect("steady-state evaluation");
            assert_eq!(
                m, warm[wi],
                "round {round}: steady state changed the result"
            );
            let t = try_evaluate_cached_traced_in(
                &spec,
                b,
                &cache,
                &memo,
                None,
                &mut scratch,
                &mut UnitTrace::disabled(),
            )
            .expect("steady-state traced evaluation");
            assert_eq!(
                t, warm[wi],
                "round {round}: disabled trace changed the result"
            );
        }
    }
    let allocated = allocs() - before;
    assert_eq!(
        allocated, 0,
        "the warm cached-evaluation path allocated {allocated} times under a disabled trace"
    );
}
