//! Panic isolation under deterministic fault injection.
//!
//! [`FaultInjector`] dooms a seed-determined subset of `(architecture,
//! benchmark)` unit indices; the sweep must quarantine exactly those
//! units (as [`FailKind::Panic`] with the injected message), leave every
//! other unit bit-identical to a fault-free run, and never touch the
//! baseline. This lives in its own test binary because it installs a
//! process-global panic hook to keep the injected panics out of the test
//! output.

use cfp_testkit::{FaultInjector, INJECTED_FAULT};
use custom_fit::dse::error::FailKind;
use custom_fit::dse::explore::{Exploration, ExploreConfig};
use custom_fit::prelude::*;
use std::sync::Once;

/// Silence the default panic report for injected faults only; real
/// panics still print. Installed once for the whole test binary.
fn quiet_injected_panics() {
    static HOOK: Once = Once::new();
    HOOK.call_once(|| {
        let default = std::panic::take_hook();
        std::panic::set_hook(Box::new(move |info| {
            let injected = info
                .payload()
                .downcast_ref::<String>()
                .is_some_and(|m| m.contains(INJECTED_FAULT));
            if !injected {
                default(info);
            }
        }));
    });
}

fn config() -> ExploreConfig {
    let mut cfg = ExploreConfig::smoke();
    cfg.benches = vec![Benchmark::D, Benchmark::G];
    cfg
}

#[test]
fn quarantine_catches_exactly_the_doomed_units() {
    quiet_injected_panics();
    let clean_cfg = config();
    let clean = Exploration::run(&clean_cfg);

    let injector = FaultInjector::one_in(0xfa17, 4);
    let mut cfg = config();
    cfg.fault = Some(injector);
    let faulty = Exploration::run(&cfg);

    let nb = cfg.benches.len();
    let units = (cfg.archs.len() * nb) as u64;
    let doomed = injector.tripped_among(units);
    assert!(
        !doomed.is_empty() && (doomed.len() as u64) < units,
        "seed must doom some but not all of {units} units (got {})",
        doomed.len()
    );

    // The baseline is keyed off the unit space and never injected.
    assert_eq!(clean.baseline.outcomes, faulty.baseline.outcomes);

    let mut failed = 0_u64;
    for (i, (c, f)) in clean
        .archs
        .iter()
        .flat_map(|a| &a.outcomes)
        .zip(faulty.archs.iter().flat_map(|a| &a.outcomes))
        .enumerate()
    {
        if doomed.contains(&(i as u64)) {
            failed += 1;
            let reason = f
                .failure()
                .unwrap_or_else(|| panic!("doomed unit {i} was not quarantined: {f:?}"));
            assert_eq!(reason.kind, FailKind::Panic, "unit {i}");
            assert!(
                reason.message.contains(INJECTED_FAULT),
                "unit {i}: {}",
                reason.message
            );
        } else {
            assert_eq!(c, f, "survivor unit {i} must be bit-identical");
        }
    }
    assert_eq!(faulty.stats.failed_units, failed);
    assert_eq!(faulty.stats.failed_units, doomed.len() as u64);
    assert_eq!(faulty.stats.fuel_exhausted, 0);

    // Determinism: the same seed dooms the same units again.
    let again = Exploration::run(&cfg);
    for (x, y) in faulty.archs.iter().zip(&again.archs) {
        assert_eq!(x.outcomes, y.outcomes, "{}", x.spec);
    }
}

#[test]
fn failed_rows_lose_selection_and_survive_csv() {
    quiet_injected_panics();
    let injector = FaultInjector::one_in(0xfa17, 4);
    let mut cfg = config();
    cfg.fault = Some(injector);
    let ex = Exploration::run(&cfg);

    // Any architecture with a quarantined unit has a NaN harmonic mean
    // and must never be selected.
    for t in 0..ex.benches.len() {
        if let Some(sel) = custom_fit::dse::select(&ex, t, 1e9, custom_fit::dse::Range::Infinite) {
            assert!(
                ex.archs[sel.arch_index]
                    .outcomes
                    .iter()
                    .all(|o| o.is_done()),
                "selected {} with a quarantined unit",
                sel.spec
            );
        }
    }

    // The CSV round trip preserves quarantine records exactly.
    let back = custom_fit::dse::from_csv(&custom_fit::dse::to_csv(&ex)).expect("parses");
    assert_eq!(back.stats.failed_units, ex.stats.failed_units);
    for (x, y) in ex.archs.iter().zip(&back.archs) {
        assert_eq!(x.outcomes, y.outcomes, "{}", x.spec);
    }
}
