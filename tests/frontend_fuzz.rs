//! Robustness fuzzing of the DSL front end: on arbitrary input the
//! compiler must return a diagnostic, never panic — and diagnostics must
//! always point inside the source. Mutations of valid kernels exercise
//! the interesting near-miss space.

mod common;

use custom_fit::frontend::compile_kernel;
use proptest::prelude::*;

fn check_total(src: &str) {
    match compile_kernel(src, &[("k", 3), ("w", 2)]) {
        Ok(kernel) => {
            custom_fit::ir::verify(&kernel).expect("accepted kernels verify");
        }
        Err(e) => {
            let span = e.span();
            assert!(span.start <= span.end);
            assert!(span.end <= src.len() + 1, "span escapes the source");
            // Rendering must be total too.
            let _ = e.render(src);
            let _ = e.to_string();
        }
    }
}

const SEEDS: &[&str] = &[
    "kernel k(in u8 s[], out u8 d[], const k) { loop i { d[i] = u8(s[i] * k); } }",
    "kernel k(in i32 s[], out i32 d[]) {
        var acc = 7;
        loop i {
            for t in 0..3 { acc = acc + s[i + t]; }
            if acc > 100 { acc = acc - 100; } else { acc = acc + 1; }
            d[i] = acc;
        }
    }",
    "kernel k(inout i16 e[], out u8 d[]) {
        local i32 t[4];
        loop i produces 2 {
            t[0] = e[2*i] >>> 1;
            t[1] = t[0] ? 3 : ~4;
            e[2*i + 1] = i16(t[1] && t[0] || 0);
            d[2*i] = u8(max(0, min(255, t[1])));
            d[2*i + 1] = u8(abs(t[0]) ^ 0x7f);
        }
    }",
];

proptest! {
    #![proptest_config(ProptestConfig { cases: 64, ..ProptestConfig::default() })]

    /// Arbitrary bytes: the compiler is total.
    #[test]
    fn compiler_is_total_on_arbitrary_text(src in "\\PC{0,300}") {
        check_total(&src);
    }

    /// Structured soup from the DSL's own vocabulary: much deeper
    /// penetration into the parser.
    #[test]
    fn compiler_is_total_on_token_soup(
        words in proptest::collection::vec(
            prop_oneof![
                Just("kernel"), Just("loop"), Just("for"), Just("if"), Just("else"),
                Just("var"), Just("local"), Just("in"), Just("out"), Just("inout"),
                Just("const"), Just("u8"), Just("i16"), Just("i32"), Just("l1"),
                Just("l2"), Just("produces"), Just("min"), Just("i"), Just("x"),
                Just("s"), Just("d"), Just("0"), Just("1"), Just("255"), Just("+"),
                Just("-"), Just("*"), Just(">>"), Just("<<"), Just("?"), Just(":"),
                Just("("), Just(")"), Just("{"), Just("}"), Just("["), Just("]"),
                Just(";"), Just(","), Just("="), Just("=="), Just(".."),
            ],
            0..60,
        )
    ) {
        check_total(&words.join(" "));
    }

    /// Single-byte mutations of valid kernels.
    #[test]
    fn compiler_is_total_on_mutated_kernels(
        seed in 0..SEEDS.len(),
        pos in 0_usize..200,
        byte in 0_u8..=127,
    ) {
        let mut src = SEEDS[seed].to_owned();
        if !src.is_empty() {
            let pos = pos % src.len();
            if src.is_char_boundary(pos) && src.is_char_boundary(pos + 1) {
                src.replace_range(pos..pos + 1, &char::from(byte).to_string());
            }
        }
        check_total(&src);
    }

    /// Deleting a random slice of a valid kernel.
    #[test]
    fn compiler_is_total_on_truncated_kernels(
        seed in 0..SEEDS.len(),
        a in 0_usize..200,
        b in 0_usize..200,
    ) {
        let src = SEEDS[seed];
        let (lo, hi) = (a.min(b) % src.len(), a.max(b) % src.len());
        if src.is_char_boundary(lo) && src.is_char_boundary(hi) {
            let mut s = String::new();
            s.push_str(&src[..lo]);
            s.push_str(&src[hi..]);
            check_total(&s);
        }
    }
}

#[test]
fn the_seeds_themselves_compile() {
    for s in SEEDS {
        compile_kernel(s, &[("k", 3)])
            .or_else(|_| compile_kernel(s, &[]))
            .unwrap_or_else(|e| panic!("seed failed: {}\n{}", e.render(s), s));
    }
}
