//! Robustness fuzzing of the DSL front end: on arbitrary input the
//! compiler must return a diagnostic, never panic — and diagnostics must
//! always point inside the source. Mutations of valid kernels exercise
//! the interesting near-miss space.

mod common;

use cfp_testkit::{cases, Rng};
use custom_fit::frontend::compile_kernel;

fn check_total(src: &str) {
    match compile_kernel(src, &[("k", 3), ("w", 2)]) {
        Ok(kernel) => {
            custom_fit::ir::verify(&kernel).expect("accepted kernels verify");
        }
        Err(e) => {
            let span = e.span();
            assert!(span.start <= span.end);
            assert!(span.end <= src.len() + 1, "span escapes the source");
            // Rendering must be total too.
            let _ = e.render(src);
            let _ = e.to_string();
        }
    }
}

const SEEDS: &[&str] = &[
    "kernel k(in u8 s[], out u8 d[], const k) { loop i { d[i] = u8(s[i] * k); } }",
    "kernel k(in i32 s[], out i32 d[]) {
        var acc = 7;
        loop i {
            for t in 0..3 { acc = acc + s[i + t]; }
            if acc > 100 { acc = acc - 100; } else { acc = acc + 1; }
            d[i] = acc;
        }
    }",
    "kernel k(inout i16 e[], out u8 d[]) {
        local i32 t[4];
        loop i produces 2 {
            t[0] = e[2*i] >>> 1;
            t[1] = t[0] ? 3 : ~4;
            e[2*i + 1] = i16(t[1] && t[0] || 0);
            d[2*i] = u8(max(0, min(255, t[1])));
            d[2*i + 1] = u8(abs(t[0]) ^ 0x7f);
        }
    }",
];

/// Arbitrary printable-ish text of up to `max` chars.
fn arbitrary_text(rng: &mut Rng, max: usize) -> String {
    let len = rng.index(max + 1);
    (0..len)
        .map(|_| {
            // Mostly ASCII with occasional multibyte chars, like \PC.
            match rng.index(20) {
                0 => '\u{00e9}',
                1 => '\u{4e16}',
                2 => '\t',
                _ => char::from(rng.range_u32(0x20..=0x7e) as u8),
            }
        })
        .collect()
}

/// Arbitrary bytes: the compiler is total.
#[test]
fn compiler_is_total_on_arbitrary_text() {
    cases(0xf022_0001, 64, |rng| {
        check_total(&arbitrary_text(rng, 300));
    });
}

/// Structured soup from the DSL's own vocabulary: much deeper
/// penetration into the parser.
#[test]
fn compiler_is_total_on_token_soup() {
    const WORDS: &[&str] = &[
        "kernel", "loop", "for", "if", "else", "var", "local", "in", "out", "inout", "const", "u8",
        "i16", "i32", "l1", "l2", "produces", "min", "i", "x", "s", "d", "0", "1", "255", "+", "-",
        "*", ">>", "<<", "?", ":", "(", ")", "{", "}", "[", "]", ";", ",", "=", "==", "..",
    ];
    cases(0xf022_0002, 64, |rng| {
        let n = rng.index(60);
        let soup = rng.vec_of(n, |r| *r.pick(WORDS)).join(" ");
        check_total(&soup);
    });
}

/// Single-byte mutations of valid kernels.
#[test]
fn compiler_is_total_on_mutated_kernels() {
    cases(0xf022_0003, 64, |rng| {
        let mut src = rng.pick(SEEDS).to_string();
        if !src.is_empty() {
            let pos = rng.index(src.len());
            let byte = rng.range_u32(0..=127) as u8;
            if src.is_char_boundary(pos) && src.is_char_boundary(pos + 1) {
                src.replace_range(pos..pos + 1, &char::from(byte).to_string());
            }
        }
        check_total(&src);
    });
}

/// Deleting a random slice of a valid kernel.
#[test]
fn compiler_is_total_on_truncated_kernels() {
    cases(0xf022_0004, 64, |rng| {
        let src = *rng.pick(SEEDS);
        let (a, b) = (rng.index(src.len()), rng.index(src.len()));
        let (lo, hi) = (a.min(b), a.max(b));
        if src.is_char_boundary(lo) && src.is_char_boundary(hi) {
            let mut s = String::new();
            s.push_str(&src[..lo]);
            s.push_str(&src[hi..]);
            check_total(&s);
        }
    });
}

#[test]
fn the_seeds_themselves_compile() {
    for s in SEEDS {
        compile_kernel(s, &[("k", 3)])
            .or_else(|_| compile_kernel(s, &[]))
            .unwrap_or_else(|e| panic!("seed failed: {}\n{}", e.render(s), s));
    }
}
