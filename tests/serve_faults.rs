//! Failure injection against a live daemon: the retry ladder retries
//! exactly the transient set, the wall-clock watchdog kills stalled
//! jobs without poisoning the worker pool, per-unit panics stay
//! quarantined inside their job, and client connection drops never
//! touch admitted work.

mod common;

use cfp_testkit::FaultInjector;
use common::serve::{state_dir, str_field, submit, u64_field, wait_result, Client};
use custom_fit::serve::json::Json;
use custom_fit::serve::{parse_request, Request, RetryPolicy, ServeConfig, Server};
use std::io::Write;
use std::net::TcpStream;

const JOB: &str = r#"{"op":"submit","job":{"benches":["D","G"],"preset":"smoke"}}"#;

fn small_retry() -> RetryPolicy {
    RetryPolicy {
        max_attempts: 3,
        base_ms: 1,
        cap_ms: 5,
    }
}

/// A corrupt checkpoint journal is the transient failure whose retry
/// needs cleanup: the daemon removes the journal and the next attempt
/// runs the job cold — `attempts: 2`, state `done`.
#[test]
fn a_corrupt_journal_is_retried_once_after_cleanup() {
    let dir = state_dir("faults-corrupt");
    let jobs_dir = dir.join("jobs");
    std::fs::create_dir_all(&jobs_dir).expect("jobs dir");

    // Journal an accepted job by hand (its canonical line), with a
    // checkpoint journal no parser will accept.
    let Ok(Request::Submit(spec)) = parse_request(JOB) else {
        panic!("the test job must parse");
    };
    std::fs::write(jobs_dir.join("job-000000.job"), spec.submit_line() + "\n")
        .expect("write job journal");
    std::fs::write(jobs_dir.join("job-000000.ck"), "garbage, not a journal\n")
        .expect("write corrupt checkpoint");

    let mut cfg = ServeConfig::new(&dir);
    cfg.retry = small_retry();
    let server = Server::start(cfg).expect("start daemon");
    assert_eq!(server.recovered(), 1, "the journaled job must be re-queued");

    let mut client = Client::connect(server.addr());
    let result = wait_result(&mut client, "job-000000");
    assert_eq!(
        result.get("state").and_then(Json::as_str),
        Some("done"),
        "{result:?}"
    );
    assert_eq!(
        u64_field(&result, "attempts"),
        2,
        "exactly one retry: first attempt hits the corrupt journal, \
         the cleanup retry completes"
    );
    let stats = client.request(r#"{"op":"stats"}"#);
    assert_eq!(u64_field(&stats, "retries"), 1);

    server.shutdown();
    let _ = std::fs::remove_dir_all(&dir);
}

/// Deterministic failures fail fast: a fuel-starved job reproduces its
/// failure on every attempt, so the ladder must not retry it.
#[test]
fn fuel_exhaustion_fails_fast_with_no_retry() {
    let dir = state_dir("faults-fuel");
    let mut cfg = ServeConfig::new(&dir);
    cfg.retry = small_retry();
    let server = Server::start(cfg).expect("start daemon");
    let mut client = Client::connect(server.addr());

    let id = submit(
        &mut client,
        r#"{"op":"submit","job":{"benches":["D"],"preset":"smoke","fuel":10}}"#,
    );
    let result = wait_result(&mut client, &id);
    assert_eq!(
        result.get("state").and_then(Json::as_str),
        Some("failed"),
        "{result:?}"
    );
    assert_eq!(
        str_field(&result, "error"),
        "baseline_failed",
        "10 fuel steps cannot schedule the baseline"
    );
    assert_eq!(
        u64_field(&result, "attempts"),
        1,
        "deterministic failures are never retried"
    );
    let stats = client.request(r#"{"op":"stats"}"#);
    assert_eq!(u64_field(&stats, "retries"), 0);
    assert_eq!(u64_field(&stats, "failed"), 1);

    server.shutdown();
    let _ = std::fs::remove_dir_all(&dir);
}

/// The watchdog kills a stalled job at its deadline — typed `deadline`
/// failure, no retry (the deadline derives from the job's own budget) —
/// and the worker that armed it goes straight back to serving jobs.
#[test]
fn the_deadline_watchdog_kills_stalls_without_poisoning_the_pool() {
    let dir = state_dir("faults-deadline");
    let mut cfg = ServeConfig::new(&dir);
    cfg.workers = 1; // the one worker must survive the kill
    cfg.retry = small_retry();
    let server = Server::start(cfg).expect("start daemon");
    let mut client = Client::connect(server.addr());

    // Every unit stalls 1 s; the deadline fires long before the first
    // unit finishes.
    let stalled = submit(
        &mut client,
        r#"{"op":"submit","job":{"benches":["D"],"preset":"smoke","deadline_ms":200,"fault":{"kind":"stall","millis":1000,"seed":1,"denominator":1}}}"#,
    );
    let result = wait_result(&mut client, &stalled);
    assert_eq!(
        result.get("state").and_then(Json::as_str),
        Some("failed"),
        "{result:?}"
    );
    assert_eq!(str_field(&result, "error"), "deadline");
    assert_eq!(
        u64_field(&result, "attempts"),
        1,
        "deadlines are not retried"
    );

    // The same — only — worker then runs a normal job to completion.
    let healthy = submit(&mut client, JOB);
    let result = wait_result(&mut client, &healthy);
    assert_eq!(
        result.get("state").and_then(Json::as_str),
        Some("done"),
        "the pool must stay healthy after a watchdog kill: {result:?}"
    );
    let stats = client.request(r#"{"op":"stats"}"#);
    assert_eq!(u64_field(&stats, "deadline_kills"), 1);
    assert_eq!(u64_field(&stats, "retries"), 0);

    server.shutdown();
    let _ = std::fs::remove_dir_all(&dir);
}

/// Latency faults are latency-only: a job whose every unit stalls (but
/// meets its deadline) returns the bit-identical digest of the
/// unstalled job.
#[test]
fn stalls_within_the_deadline_do_not_change_results() {
    let dir = state_dir("faults-stall-identity");
    let server = Server::start(ServeConfig::new(&dir)).expect("start daemon");
    let mut client = Client::connect(server.addr());

    let plain = submit(&mut client, JOB);
    let stalled = submit(
        &mut client,
        r#"{"op":"submit","job":{"benches":["D","G"],"preset":"smoke","fault":{"kind":"stall","millis":5,"seed":1,"denominator":1}}}"#,
    );
    let plain = wait_result(&mut client, &plain);
    let stalled = wait_result(&mut client, &stalled);
    assert_eq!(plain.get("state").and_then(Json::as_str), Some("done"));
    assert_eq!(stalled.get("state").and_then(Json::as_str), Some("done"));
    assert_eq!(str_field(&plain, "digest"), str_field(&stalled, "digest"));

    server.shutdown();
    let _ = std::fs::remove_dir_all(&dir);
}

/// A per-unit panic fault stays quarantined inside its job: the job
/// reports the failed units and completes; the daemon and its pool
/// never notice.
#[test]
fn unit_panics_stay_quarantined_inside_their_job() {
    let dir = state_dir("faults-panic");
    let server = Server::start(ServeConfig::new(&dir)).expect("start daemon");
    let mut client = Client::connect(server.addr());

    // Sweep-unit panics (seed 1, one unit in 3). If the doomed set ever
    // included the baseline the job would fail `baseline_failed`, which
    // the assertion below would surface — with this seed it does not.
    let id = submit(
        &mut client,
        r#"{"op":"submit","job":{"benches":["D","G"],"preset":"smoke","fault":{"kind":"panic","seed":1,"denominator":3}}}"#,
    );
    let result = wait_result(&mut client, &id);
    assert_eq!(
        result.get("state").and_then(Json::as_str),
        Some("done"),
        "{result:?}"
    );
    assert!(
        u64_field(&result, "failed_units") > 0,
        "the injector must actually fire: {result:?}"
    );

    // The daemon is untouched: a clean job still runs clean.
    let clean = submit(&mut client, JOB);
    let clean = wait_result(&mut client, &clean);
    assert_eq!(clean.get("state").and_then(Json::as_str), Some("done"));
    assert_eq!(u64_field(&clean, "failed_units"), 0);

    server.shutdown();
    let _ = std::fs::remove_dir_all(&dir);
}

/// Client connections dropping mid-exchange — after the submit line,
/// before reading the response — never touch the admitted jobs. The
/// testkit injector picks which connections die.
#[test]
fn connection_drops_never_touch_admitted_jobs() {
    let dir = state_dir("faults-drop");
    let server = Server::start(ServeConfig::new(&dir)).expect("start daemon");
    let injector = FaultInjector::dropping(42, 2);

    let mut dropped = 0;
    for conn in 0..6_u64 {
        if injector.drops(conn) {
            // Fire-and-hang-up: send the submit, close the socket
            // without reading the acknowledgement.
            let mut stream = TcpStream::connect(server.addr()).expect("connect");
            stream.set_nodelay(true).expect("nodelay");
            writeln!(stream, "{JOB}").expect("send");
            stream.flush().expect("flush");
            drop(stream);
            dropped += 1;
        } else {
            let mut client = Client::connect(server.addr());
            submit(&mut client, JOB);
        }
    }
    assert!(dropped > 0, "the injector must actually drop connections");

    // Every submit — acknowledged or orphaned — was admitted, ran, and
    // agrees with the others.
    let mut client = Client::connect(server.addr());
    let mut digests = Vec::new();
    for i in 0..6 {
        let result = wait_result(&mut client, &format!("job-{i:06}"));
        assert_eq!(
            result.get("state").and_then(Json::as_str),
            Some("done"),
            "job {i}: {result:?}"
        );
        digests.push(str_field(&result, "digest"));
    }
    assert!(digests.windows(2).all(|w| w[0] == w[1]));
    let stats = client.request(r#"{"op":"stats"}"#);
    assert_eq!(u64_field(&stats, "submitted"), 6);
    assert_eq!(u64_field(&stats, "completed"), 6);

    server.shutdown();
    let _ = std::fs::remove_dir_all(&dir);
}

/// A watcher hanging up mid-stream is the watcher's problem: the
/// watched job completes untouched.
#[test]
fn a_dropped_watcher_does_not_touch_the_job() {
    let dir = state_dir("faults-watch-drop");
    let mut cfg = ServeConfig::new(&dir);
    cfg.progress_every = 1;
    let server = Server::start(cfg).expect("start daemon");
    let mut client = Client::connect(server.addr());

    let id = submit(
        &mut client,
        r#"{"op":"submit","job":{"benches":["D","G"],"preset":"smoke","fault":{"kind":"stall","millis":20,"seed":1,"denominator":1}}}"#,
    );
    let mut watcher = Client::connect(server.addr());
    watcher.send(&format!(r#"{{"op":"watch","id":"{id}"}}"#));
    let first = watcher.recv_line();
    assert!(first.contains("\"event\""), "{first}");
    drop(watcher); // hang up mid-stream

    let result = wait_result(&mut client, &id);
    assert_eq!(
        result.get("state").and_then(Json::as_str),
        Some("done"),
        "{result:?}"
    );

    server.shutdown();
    let _ = std::fs::remove_dir_all(&dir);
}
