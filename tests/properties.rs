//! Property-based tests over randomized kernels and architectures.
//!
//! The generators build arbitrary (but well-formed) kernels directly with
//! the IR builder — random dataflow over two input arrays, an inout
//! array, carried accumulators, compares and selects — then check the
//! system's core invariants:
//!
//! * the optimizer and unroller preserve interpreter semantics;
//! * for any valid architecture, the compiled schedule simulates to the
//!   same memory image as the interpreter;
//! * the cost and cycle models are monotone in every resource.

mod common;

use common::{arch_strategy, bind_inputs, build, recipe, N_ITERS};
use custom_fit::prelude::*;
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig { cases: 24, ..ProptestConfig::default() })]

    #[test]
    fn optimizer_and_unroller_preserve_semantics(r in recipe(), unroll in 1_u32..=4) {
        let unroll = if N_ITERS % u64::from(unroll) == 0 { unroll } else { 1 };
        let kernel = build(&r);
        let mut mem_ref = bind_inputs(&kernel);
        Interpreter::new().run(&kernel, &mut mem_ref, N_ITERS).expect("reference runs");

        let mut opt = kernel.clone();
        custom_fit::opt::optimize(&mut opt);
        let opt = custom_fit::opt::unroll::unroll(&opt, unroll);
        custom_fit::ir::verify(&opt).expect("optimized kernel verifies");
        let mut mem_opt = bind_inputs(&kernel);
        Interpreter::new()
            .run(&opt, &mut mem_opt, N_ITERS / u64::from(unroll))
            .expect("optimized runs");
        for i in 0..4 {
            prop_assert_eq!(mem_ref.array(i), mem_opt.array(i), "array {}", i);
        }
    }

    #[test]
    fn schedules_simulate_like_the_interpreter(r in recipe(), spec in arch_strategy()) {
        let kernel = build(&r);
        let machine = MachineResources::from_spec(&spec);
        let result = compile(&kernel, &machine);

        let mut mem_ref = bind_inputs(&kernel);
        Interpreter::new().run(&kernel, &mut mem_ref, N_ITERS).expect("reference runs");
        let mut mem_sim = bind_inputs(&kernel);
        simulate(&kernel, &result, &machine, &mut mem_sim, N_ITERS)
            .map_err(|e| TestCaseError::fail(format!("{spec}: {e}")))?;
        for i in 0..4 {
            prop_assert_eq!(mem_ref.array(i), mem_sim.array(i), "array {}", i);
        }
        // Structural sanity alongside: the schedule respects the
        // dependence-graph lower bound.
        prop_assert!(result.length >= result.critical_path);
    }

    #[test]
    fn cost_and_cycle_models_are_monotone(spec in arch_strategy()) {
        let cost = CostModel::paper_calibrated();
        let cycle = CycleModel::paper_calibrated();
        let c0 = cost.cost(&spec);
        prop_assert!(c0.is_finite() && c0 > 0.0);
        // Grow each resource in turn; cost must not drop.
        let grow = [
            ArchSpec { alus: spec.alus * 2, muls: spec.muls * 2, ..spec },
            ArchSpec { regs: spec.regs * 2, ..spec },
            ArchSpec { l2_ports: spec.l2_ports + 1, ..spec },
        ];
        for g in grow {
            if g.validate().is_ok() {
                prop_assert!(cost.cost(&g) >= c0 - 1e-12, "{} vs {}", g, spec);
            }
        }
        // Cycle time never improves when ALUs per cluster grow.
        let wider = ArchSpec { alus: spec.alus * 2, muls: spec.muls, ..spec };
        if wider.validate().is_ok() {
            prop_assert!(cycle.derate(&wider) >= cycle.derate(&spec) - 1e-12);
        }
    }
}
