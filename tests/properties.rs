//! Property-based tests over randomized kernels and architectures.
//!
//! The generators build arbitrary (but well-formed) kernels directly with
//! the IR builder — random dataflow over two input arrays, an inout
//! array, carried accumulators, compares and selects — then check the
//! system's core invariants:
//!
//! * the optimizer and unroller preserve interpreter semantics;
//! * for any valid architecture, the compiled schedule simulates to the
//!   same memory image as the interpreter;
//! * the cost and cycle models are monotone in every resource;
//! * the paper design space is exactly the cross product of the axes the
//!   paper states, with no duplicates and every point valid.

mod common;

use cfp_testkit::cases;
use common::{arch, bind_inputs, build, recipe, N_ITERS};
use custom_fit::machine::DesignSpace;
use custom_fit::prelude::*;

#[test]
fn optimizer_and_unroller_preserve_semantics() {
    cases(0x5eed_0001, 24, |rng| {
        let r = recipe(rng);
        let unroll = rng.range_u32(1..=4);
        let unroll = if N_ITERS % u64::from(unroll) == 0 {
            unroll
        } else {
            1
        };
        let kernel = build(&r);
        let mut mem_ref = bind_inputs(&kernel);
        Interpreter::new()
            .run(&kernel, &mut mem_ref, N_ITERS)
            .expect("reference runs");

        let mut opt = kernel.clone();
        custom_fit::opt::optimize(&mut opt);
        let opt = custom_fit::opt::unroll::unroll(&opt, unroll);
        custom_fit::ir::verify(&opt).expect("optimized kernel verifies");
        let mut mem_opt = bind_inputs(&kernel);
        Interpreter::new()
            .run(&opt, &mut mem_opt, N_ITERS / u64::from(unroll))
            .expect("optimized runs");
        for i in 0..4 {
            assert_eq!(mem_ref.array(i), mem_opt.array(i), "array {i}");
        }
    });
}

#[test]
fn schedules_simulate_like_the_interpreter() {
    cases(0x5eed_0002, 24, |rng| {
        let r = recipe(rng);
        let spec = arch(rng);
        let kernel = build(&r);
        let machine = MachineResources::from_spec(&spec);
        let result = compile(&kernel, &machine);

        let mut mem_ref = bind_inputs(&kernel);
        Interpreter::new()
            .run(&kernel, &mut mem_ref, N_ITERS)
            .expect("reference runs");
        let mut mem_sim = bind_inputs(&kernel);
        simulate(&kernel, &result, &machine, &mut mem_sim, N_ITERS)
            .unwrap_or_else(|e| panic!("{spec}: {e}"));
        for i in 0..4 {
            assert_eq!(mem_ref.array(i), mem_sim.array(i), "array {i}");
        }
        // Structural sanity alongside: the schedule respects the
        // dependence-graph lower bound.
        assert!(result.length >= result.critical_path);
    });
}

#[test]
fn cost_and_cycle_models_are_monotone() {
    cases(0x5eed_0003, 32, |rng| {
        let spec = arch(rng);
        let cost = CostModel::paper_calibrated();
        let cycle = CycleModel::paper_calibrated();
        let c0 = cost.cost(&spec);
        assert!(c0.is_finite() && c0 > 0.0);
        // Grow each resource in turn; cost must not drop.
        let grow = [
            ArchSpec {
                alus: spec.alus * 2,
                muls: spec.muls * 2,
                ..spec
            },
            ArchSpec {
                regs: spec.regs * 2,
                ..spec
            },
            ArchSpec {
                l2_ports: spec.l2_ports + 1,
                ..spec
            },
        ];
        for g in grow {
            if g.validate().is_ok() {
                assert!(cost.cost(&g) >= c0 - 1e-12, "{g} vs {spec}");
            }
        }
        // Cycle time never improves when ALUs per cluster grow.
        let wider = ArchSpec {
            alus: spec.alus * 2,
            muls: spec.muls,
            ..spec
        };
        if wider.validate().is_ok() {
            assert!(cycle.derate(&wider) >= cycle.derate(&spec) - 1e-12);
        }
    });
}

#[test]
fn paper_space_is_the_stated_cross_product() {
    // Rebuild the space independently from the axes §2.2 states: ALUs,
    // IMUL fraction in {1/4, 1/2} (at least one), registers, L2 ports,
    // L2 latency. 8 (a, m) pairs × 4 × 3 × 2 = 192 base points — one
    // more than the paper's reported 191; the paper never spells out its
    // enumeration, and EXPERIMENTS.md documents the discrepancy.
    let mut expected = std::collections::HashSet::new();
    for a in [1_u32, 2, 4, 8, 16] {
        for m in [(a / 4).max(1), (a / 2).max(1)] {
            for r in [64_u32, 128, 256, 512] {
                for p2 in [1_u32, 2, 4] {
                    for l2 in [4_u32, 8] {
                        expected.insert(ArchSpec::new(a, m, r, p2, l2, 1).expect("valid"));
                    }
                }
            }
        }
    }
    assert_eq!(expected.len(), 192);

    let space = DesignSpace::paper();
    assert_eq!(space.len(), 192, "one more than the paper's 191");
    let mut seen = std::collections::HashSet::new();
    for p in space.base_points() {
        assert!(p.validate().is_ok(), "{p}");
        assert!(!p.l2_pipelined, "the paper space is non-pipelined: {p}");
        assert!(seen.insert(*p), "duplicate base point {p}");
        assert!(expected.contains(p), "{p} is outside the stated axes");
    }
    // Every cluster arrangement is valid and derives a machine
    // description that agrees with its spec (the layer everything
    // downstream of the space consumes).
    for s in space.all_arrangements() {
        assert!(s.validate().is_ok(), "{s}");
        let mdes = custom_fit::machine::Mdes::from_spec(&s);
        assert_eq!(mdes.cluster_count(), s.clusters as usize, "{s}");
        assert_eq!(s.sched_signature().mdes_hash, mdes.content_hash(), "{s}");
    }
}
