//! Qualitative reproduction checks on a reduced design space: the
//! paper's headline phenomena must hold in shape (who wins, roughly by
//! how much, and what specialization costs), even though absolute
//! numbers come from our simulator rather than the authors' testbed.

use custom_fit::dse;
use custom_fit::prelude::*;

/// A curated slice of the space holding the A-versus-H tension: ALUs vs
/// registers at comparable cost.
fn slice() -> Vec<ArchSpec> {
    let mut archs = Vec::new();
    for (a, m) in [(2_u32, 1_u32), (4, 2), (8, 4), (16, 4)] {
        for r in [128_u32, 256, 512] {
            for c in [1_u32, 2, 4, 8] {
                for p2 in [1_u32, 2, 4] {
                    if let Ok(s) = ArchSpec::new(a, m, r, p2, 4, c) {
                        if r / c >= 16 {
                            archs.push(s);
                        }
                    }
                }
            }
        }
    }
    archs
}

fn explore() -> Exploration {
    // One exploration shared by every check in this file.
    let config = ExploreConfig {
        archs: slice(),
        benches: vec![Benchmark::A, Benchmark::D, Benchmark::H],
        ..ExploreConfig::default()
    };
    Exploration::run(&config)
}

#[test]
fn paper_shapes_hold_on_the_reduced_space() {
    let ex = explore();
    let a_col = ex.bench_index(Benchmark::A).unwrap();
    let h_col = ex.bench_index(Benchmark::H).unwrap();

    // 1. Specialization matters: every benchmark's best machine beats the
    //    baseline clearly.
    for col in 0..ex.benches.len() {
        let best = (0..ex.archs.len())
            .map(|a| ex.speedup(a, col))
            .fold(f64::NEG_INFINITY, f64::max);
        assert!(best > 2.0, "{}: best {best:.2}", ex.benches[col]);
    }

    // 2. Specialization danger (the paper's §4.2 headline): for at least
    //    one of the lean benchmarks, the set of machines that are
    //    perfectly reasonable for it (within 30% of its best under cost
    //    10) contains one that is *pathological* for A — at least 2x
    //    worse than A's own best, because its register files are too
    //    small to unroll the 7x7 window. (In the full space the paper's
    //    exact actors appear; on this slice the conflicting target can be
    //    D or H depending on tie-breaks, so we assert existence.)
    let affordable: Vec<usize> = (0..ex.archs.len())
        .filter(|&i| ex.archs[i].cost <= 10.0)
        .collect();
    let best_a = affordable
        .iter()
        .map(|&i| ex.speedup(i, a_col))
        .fold(f64::NEG_INFINITY, f64::max);
    let danger = [ex.bench_index(Benchmark::D).unwrap(), h_col]
        .into_iter()
        .map(|t_col| {
            let best_t = affordable
                .iter()
                .map(|&i| ex.speedup(i, t_col))
                .fold(f64::NEG_INFINITY, f64::max);
            affordable
                .iter()
                .filter(|&&i| ex.speedup(i, t_col) >= 0.7 * best_t)
                .map(|&i| ex.speedup(i, a_col))
                .fold(f64::INFINITY, f64::min)
        })
        .fold(f64::INFINITY, f64::min);
    assert!(
        danger * 2.0 < best_a,
        "no specialization danger: worst A on a reasonable lean machine \
         {danger:.2}, best A {best_a:.2}"
    );

    // 3. H is ALU-hungry and A is register-hungry in their choices.
    let for_a = select(&ex, a_col, 10.0, Range::Fraction(0.0)).unwrap();
    let for_h = select(&ex, h_col, 10.0, Range::Fraction(0.0)).unwrap();
    assert!(for_h.spec.alus >= 8, "H chose {}", for_h.spec);
    assert!(for_a.spec.regs >= 256, "A chose {}", for_a.spec);

    // 4. The RANGE mechanism: allowing a back-off never hurts the suite,
    //    and the infinite-range architecture is common to all targets.
    for t in 0..ex.benches.len() {
        let s0 = select(&ex, t, 10.0, Range::Fraction(0.0)).unwrap();
        let s50 = select(&ex, t, 10.0, Range::Fraction(0.5)).unwrap();
        assert!(s50.su >= s0.su - 1e-9);
    }
    let all0 = select(&ex, 0, 10.0, Range::Infinite).unwrap();
    let all1 = select(&ex, 1, 10.0, Range::Infinite).unwrap();
    assert_eq!(all0.spec, all1.spec);

    // 5. Frontier shape: every benchmark's best-alternative frontier has
    //    several plateaus (multiple points, increasing cost and speedup).
    for col in 0..ex.benches.len() {
        let pts = dse::scatter(&ex, col);
        let front = dse::frontier(&pts);
        assert!(
            front.len() >= 3,
            "{}: frontier {:?}",
            ex.benches[col],
            front.len()
        );
    }

    // 6. Cheap machines exist on every frontier start: the cheapest point
    //    costs little more than the baseline.
    let pts = dse::scatter(&ex, a_col);
    assert!(pts.first().unwrap().cost < 4.0);
}
