//! The scheduler's data-structure engineering must be invisible: the
//! CSR dependence graph, the sorted packed-key ready list, the bitmask
//! reservation rows, and the modulo scheduler's II-skip bound are all
//! pure representation changes. This suite pins them to the
//! straightforward implementations they replaced:
//!
//! 1. an in-test *oracle* list scheduler — the original `Vec`-based
//!    ready list, per-port free-at vectors, and counter-based issue
//!    slots, transcribed verbatim — must produce the same schedule AND
//!    the same fuel trace (`Fuel::spent`, exhaustion verdicts at tight
//!    budgets, `SchedCore::steps`) as the production path on real
//!    kernels across a stratified architecture sample;
//! 2. an oracle modulo scheduler running the original full II search
//!    (no infeasible-II skipping) must reach the same `(ii, slots, mii)`
//!    — evidence the capacity bound only ever skips IIs that could not
//!    have been scheduled anyway;
//! 3. the CSR graph round-trips through its flat edge list on seeded
//!    random DAGs, and both adjacency views agree edge for edge.

mod common;

use cfp_testkit::cases;
use custom_fit::machine::{ArchSpec, MachineResources};
use custom_fit::prelude::Benchmark;
use custom_fit::sched::cluster::assign;
use custom_fit::sched::{
    omega_deps, prepare, rec_mii, res_mii, try_compile_core_in, try_modulo_schedule_in,
    try_schedule_in, Assignment, Ddg, Dep, DepKind, FuClass, Fuel, OmegaDep, Placement, Priority,
    SOp, SchedError, SchedScratch, Schedule,
};

/// The old scheduler's hard cycle cap (unchanged in the rewrite).
const MAX_CYCLES: u32 = 1 << 20;

/// The original list scheduler, transcribed from the pre-rewrite source:
/// one flat ready list re-sorted every cycle, per-cluster counter issue
/// slots, per-port free-at vectors, and the re-scan-until-quiescent
/// inner loop whose scans price the fuel. Only the dependence-graph
/// accessors changed spelling (`ddg.preds[i]` → `ddg.pred_count(i)`).
fn oracle_schedule_with_fuel(
    assignment: &Assignment,
    ddg: &Ddg,
    machine: &MachineResources,
    priority: Priority,
    fuel: &mut Fuel,
) -> Result<Schedule, SchedError> {
    let code = &assignment.code;
    let n = code.ops.len();
    let branch = code.branch_index();

    let mut pending: Vec<usize> = (0..n).map(|i| ddg.pred_count(i) as usize).collect();
    let mut earliest = vec![0_u32; n];
    let mut issue = vec![u32::MAX; n];

    let nc = machine.cluster_count();
    let mut l1_ports: Vec<Vec<u32>> = (0..nc)
        .map(|c| vec![0; machine.clusters[c].l1_ports as usize])
        .collect();
    let mut l2_ports: Vec<Vec<u32>> = (0..nc)
        .map(|c| vec![0; machine.clusters[c].l2_ports as usize])
        .collect();

    let mut ready: Vec<usize> = (0..n).filter(|&i| pending[i] == 0 && i != branch).collect();
    let mut scheduled = 0_usize;
    let total_non_branch = n - 1;

    let mut t = 0_u32;
    while scheduled < total_non_branch {
        if t >= MAX_CYCLES {
            return Err(SchedError::CycleCapExceeded { cap: MAX_CYCLES });
        }
        match priority {
            Priority::CriticalPath => {
                ready.sort_by(|&a, &b| ddg.height[b].cmp(&ddg.height[a]).then(a.cmp(&b)));
            }
            Priority::SourceOrder => ready.sort_unstable(),
        }
        let mut alu_used = vec![0_u32; nc];
        let mut mul_used = vec![0_u32; nc];
        let mut issued_any = true;
        while issued_any {
            issued_any = false;
            fuel.spend(1 + ready.len() as u64)?;
            let mut next_ready = Vec::with_capacity(ready.len());
            for &i in &ready {
                if issue[i] != u32::MAX {
                    continue;
                }
                if earliest[i] > t {
                    next_ready.push(i);
                    continue;
                }
                let c = assignment.cluster_of_op[i] as usize;
                let ok = match code.ops[i].class {
                    FuClass::Alu => {
                        if alu_used[c] < machine.clusters[c].alus {
                            alu_used[c] += 1;
                            true
                        } else {
                            false
                        }
                    }
                    FuClass::Mul => {
                        if alu_used[c] < machine.clusters[c].alus
                            && mul_used[c] < machine.clusters[c].mul_capable
                        {
                            alu_used[c] += 1;
                            mul_used[c] += 1;
                            true
                        } else {
                            false
                        }
                    }
                    FuClass::MemL1 | FuClass::MemL2 => {
                        let ports = if code.ops[i].class == FuClass::MemL2 {
                            &mut l2_ports[c]
                        } else {
                            &mut l1_ports[c]
                        };
                        match ports.iter_mut().find(|free_at| **free_at <= t) {
                            Some(slot) => {
                                *slot = t + code.ops[i].latency;
                                true
                            }
                            None => false,
                        }
                    }
                    FuClass::Branch => false,
                };
                if ok {
                    issue[i] = t;
                    scheduled += 1;
                    issued_any = true;
                    for d in ddg.succs(i) {
                        let to = d.to as usize;
                        pending[to] -= 1;
                        earliest[to] = earliest[to].max(t + d.lat);
                        if pending[to] == 0 && to != branch {
                            next_ready.push(to);
                        }
                    }
                } else {
                    next_ready.push(i);
                }
            }
            ready = next_ready;
        }
        t += 1;
    }

    let last_issue = issue
        .iter()
        .enumerate()
        .filter(|&(i, _)| i != branch)
        .map(|(_, &v)| v)
        .max()
        .unwrap_or(0);
    issue[branch] = last_issue.max(earliest[branch]);

    let mut length = issue[branch] + 1;
    for (i, op) in code.ops.iter().enumerate() {
        length = length.max(issue[i] + op.latency.max(1));
    }

    let placements = (0..n)
        .map(|i| Placement {
            cycle: issue[i],
            cluster: assignment.cluster_of_op[i],
        })
        .collect();
    Ok(Schedule { placements, length })
}

/// The original two-heuristic portfolio.
fn oracle_try_schedule(
    assignment: &Assignment,
    ddg: &Ddg,
    machine: &MachineResources,
    fuel: &mut Fuel,
) -> Result<Schedule, SchedError> {
    let cp = oracle_schedule_with_fuel(assignment, ddg, machine, Priority::CriticalPath, fuel)?;
    let so = oracle_schedule_with_fuel(assignment, ddg, machine, Priority::SourceOrder, fuel)?;
    Ok(if so.length < cp.length { so } else { cp })
}

/// The equivalence corpus: every table benchmark (optimized) on a
/// stratified spread of machines, plus the unroll-2 bodies on two of
/// them (bigger ready lists, same invariants). Debug-build friendly.
fn corpus() -> (Vec<custom_fit::ir::Kernel>, Vec<ArchSpec>) {
    let kernels: Vec<_> = Benchmark::ALL
        .iter()
        .map(|b| {
            let mut k = b.kernel();
            custom_fit::opt::optimize(&mut k);
            k
        })
        .collect();
    let specs = [
        (1_u32, 1_u32, 64_u32, 1_u32, 8_u32, 1_u32),
        (2, 1, 64, 1, 4, 1),
        (4, 2, 128, 1, 4, 2),
        (8, 4, 256, 2, 4, 2),
        (16, 4, 128, 1, 4, 8),
        (16, 8, 512, 4, 2, 4),
    ];
    let specs = specs
        .into_iter()
        .filter_map(|(a, m, r, p2, l2, c)| ArchSpec::new(a, m, r, p2, l2, c).ok())
        .collect();
    (kernels, specs)
}

#[test]
fn list_scheduler_matches_the_oracle_in_schedule_and_fuel() {
    let (kernels, specs) = corpus();
    let mut scratch = SchedScratch::new();
    let mut checked = 0;
    for spec in &specs {
        let machine = MachineResources::from_spec(spec);
        for (ki, kernel) in kernels.iter().enumerate() {
            for unroll in [1_u32, 2] {
                if unroll == 2 && checked % 3 != 0 {
                    continue; // unroll-2 on a third of the units: slower, same logic
                }
                let k = if unroll == 1 {
                    kernel.clone()
                } else {
                    custom_fit::opt::unroll::unroll(kernel, 2)
                };
                let prepared = prepare(&k, &machine);
                let assignment = assign(&prepared.code, &prepared.ddg, &machine);
                let ddg = Ddg::build(&assignment.code);

                let mut oracle_fuel = Fuel::unlimited();
                let oracle = oracle_try_schedule(&assignment, &ddg, &machine, &mut oracle_fuel)
                    .expect("unlimited fuel");
                let mut new_fuel = Fuel::unlimited();
                let new = try_schedule_in(&assignment, &ddg, &machine, &mut new_fuel, &mut scratch)
                    .expect("unlimited fuel");

                assert_eq!(new, oracle, "{spec} kernel {ki} x{unroll}");
                assert_eq!(
                    new_fuel.spent(),
                    oracle_fuel.spent(),
                    "{spec} kernel {ki} x{unroll}: fuel must price the same semantic events"
                );

                // `SchedCore::steps` is exactly the list scheduler's fuel.
                let core =
                    try_compile_core_in(&prepared, &machine, &mut Fuel::unlimited(), &mut scratch)
                        .expect("unlimited fuel");
                assert_eq!(core.steps, new_fuel.spent(), "{spec} kernel {ki} x{unroll}");
                checked += 1;
            }
        }
    }
    assert!(checked > 40, "corpus unexpectedly small ({checked} units)");
}

#[test]
fn fuel_exhaustion_verdicts_are_identical_at_tight_budgets() {
    let (kernels, specs) = corpus();
    let mut scratch = SchedScratch::new();
    for spec in specs.iter().take(3) {
        let machine = MachineResources::from_spec(spec);
        for (ki, kernel) in kernels.iter().enumerate() {
            let prepared = prepare(kernel, &machine);
            let assignment = assign(&prepared.code, &prepared.ddg, &machine);
            let ddg = Ddg::build(&assignment.code);
            let mut full = Fuel::unlimited();
            let reference = try_schedule_in(&assignment, &ddg, &machine, &mut full, &mut scratch)
                .expect("unlimited fuel");
            let spent = full.spent();

            for budget in [1, spent / 2, spent - 1, spent] {
                let mut of = Fuel::limited(budget);
                let o = oracle_try_schedule(&assignment, &ddg, &machine, &mut of);
                let mut nf = Fuel::limited(budget);
                let n = try_schedule_in(&assignment, &ddg, &machine, &mut nf, &mut scratch);
                assert_eq!(o, n, "{spec} kernel {ki} budget {budget}/{spent}");
                assert_eq!(
                    of.spent(),
                    nf.spent(),
                    "{spec} kernel {ki} budget {budget}/{spent}"
                );
                if budget == spent {
                    assert_eq!(n.expect("exact budget suffices"), reference);
                }
            }
        }
    }
}

/// The original modulo scheduler's full II search, transcribed from the
/// pre-rewrite source: nested-`Vec` reservation tables and no
/// infeasible-II skipping — every II from the lower bound up is
/// attempted. Returns what the rewrite must reproduce.
fn oracle_modulo(
    assignment: &Assignment,
    ddg: &Ddg,
    machine: &MachineResources,
    list_length: u32,
) -> Option<(u32, Vec<u32>, u32)> {
    struct Table {
        ii: u32,
        alu: Vec<Vec<u32>>,
        mul: Vec<Vec<u32>>,
        mem: Vec<[Vec<u32>; 2]>,
        branch: Vec<u32>,
    }
    impl Table {
        fn fits(&self, op: &SOp, cluster: usize, slot: u32, m: &MachineResources) -> bool {
            let s = (slot % self.ii) as usize;
            let cl = &m.clusters[cluster];
            match op.class {
                FuClass::Alu => self.alu[cluster][s] < cl.alus,
                FuClass::Mul => {
                    self.alu[cluster][s] < cl.alus && self.mul[cluster][s] < cl.mul_capable
                }
                FuClass::Branch => self.branch[s] < u32::from(cl.has_branch),
                FuClass::MemL1 | FuClass::MemL2 => {
                    if op.latency > self.ii {
                        return false;
                    }
                    let li = usize::from(op.class == FuClass::MemL2);
                    let ports = if li == 0 { cl.l1_ports } else { cl.l2_ports };
                    (0..op.latency)
                        .all(|dt| self.mem[cluster][li][((slot + dt) % self.ii) as usize] < ports)
                }
            }
        }
        fn take(&mut self, op: &SOp, cluster: usize, slot: u32) {
            let s = (slot % self.ii) as usize;
            match op.class {
                FuClass::Alu => self.alu[cluster][s] += 1,
                FuClass::Mul => {
                    self.alu[cluster][s] += 1;
                    self.mul[cluster][s] += 1;
                }
                FuClass::Branch => self.branch[s] += 1,
                FuClass::MemL1 | FuClass::MemL2 => {
                    let li = usize::from(op.class == FuClass::MemL2);
                    for dt in 0..op.latency {
                        self.mem[cluster][li][((slot + dt) % self.ii) as usize] += 1;
                    }
                }
            }
        }
    }

    let code = &assignment.code;
    let n = code.ops.len();
    let deps = omega_deps(code, ddg);
    let max_lat = code.ops.iter().map(|o| o.latency).max().unwrap_or(1);
    let mii = res_mii(code, assignment, machine)
        .max(rec_mii(n, &deps, list_length))
        .max(max_lat);

    let intra_preds: Vec<Vec<&OmegaDep>> = {
        let mut v: Vec<Vec<&OmegaDep>> = vec![Vec::new(); n];
        for d in &deps {
            if d.omega == 0 {
                v[d.to].push(d);
            }
        }
        v
    };

    'outer: for ii in mii..=(4 * list_length.max(mii)) {
        let z = vec![0_u32; ii as usize];
        let nc = machine.cluster_count();
        let mut table = Table {
            ii,
            alu: vec![z.clone(); nc],
            mul: vec![z.clone(); nc],
            mem: (0..nc).map(|_| [z.clone(), z.clone()]).collect(),
            branch: z,
        };
        let mut slots = vec![u32::MAX; n];
        for (i, op) in code.ops.iter().enumerate() {
            let cluster = assignment.cluster_of_op[i] as usize;
            let est = intra_preds[i]
                .iter()
                .map(|d| slots[d.from].saturating_add(d.lat))
                .max()
                .unwrap_or(0);
            let mut placed = false;
            // `est` saturates at `u32::MAX` when an intra predecessor
            // with a higher index (an inserted move) is unplaced; the
            // empty range fails the II, as the original did in release.
            for slot in est..est.saturating_add(ii) {
                if table.fits(op, cluster, slot, machine) {
                    table.take(op, cluster, slot);
                    slots[i] = slot;
                    placed = true;
                    break;
                }
            }
            if !placed {
                continue 'outer;
            }
        }
        let ok = deps.iter().all(|d| {
            i64::from(slots[d.to])
                >= i64::from(slots[d.from]) + i64::from(d.lat) - i64::from(ii) * i64::from(d.omega)
        });
        if !ok {
            continue;
        }
        return Some((ii, slots, mii));
    }
    None
}

#[test]
fn modulo_ii_skipping_reaches_the_oracles_exact_schedule() {
    let (kernels, specs) = corpus();
    let mut scratch = SchedScratch::new();
    let mut pipelined = 0;
    for spec in &specs {
        let machine = MachineResources::from_spec(spec);
        for (ki, kernel) in kernels.iter().enumerate() {
            let prepared = prepare(kernel, &machine);
            let core =
                try_compile_core_in(&prepared, &machine, &mut Fuel::unlimited(), &mut scratch)
                    .expect("unlimited fuel");
            let ddg = Ddg::build_in(&core.assignment.code, &mut scratch);
            let new = try_modulo_schedule_in(
                &core.assignment,
                &ddg,
                &machine,
                core.length,
                &mut Fuel::unlimited(),
                &mut scratch,
            )
            .expect("unlimited fuel");
            let oracle = oracle_modulo(&core.assignment, &ddg, &machine, core.length);
            match (new, oracle) {
                (Some(ms), Some((ii, slots, mii))) => {
                    assert_eq!(ms.ii, ii, "{spec} kernel {ki}");
                    assert_eq!(ms.slots, slots, "{spec} kernel {ki}");
                    assert_eq!(ms.mii, mii, "{spec} kernel {ki}");
                    // Skipping can only shrink the attempt count, never
                    // change which II succeeds.
                    assert!(
                        ms.ii_attempts >= 1 && ms.mii + ms.ii_attempts > ms.ii,
                        "{spec} kernel {ki}: {} attempts cannot reach II {} from {}",
                        ms.ii_attempts,
                        ms.ii,
                        ms.mii
                    );
                    pipelined += 1;
                }
                (None, None) => {}
                (new, oracle) => panic!(
                    "{spec} kernel {ki}: feasibility disagrees (new {:?}, oracle {:?})",
                    new.map(|m| m.ii),
                    oracle.map(|o| o.0)
                ),
            }
        }
    }
    assert!(pipelined > 5, "too few pipelined units ({pipelined})");
}

#[test]
fn csr_ddg_round_trips_through_its_edge_list() {
    cases(0xDD60_0001, 60, |rng| {
        let n = 2 + rng.index(30);
        let latencies: Vec<u32> = (0..n).map(|_| rng.range_u32(1..=8)).collect();
        let kinds = [
            DepKind::RegRaw,
            DepKind::MemRaw,
            DepKind::MemWar,
            DepKind::MemWaw,
        ];
        // Forward edges only, so the random graph is a DAG by
        // construction.
        let mut edges = Vec::new();
        for from in 0..n {
            for to in (from + 1)..n {
                if rng.below(4) == 0 {
                    edges.push(Dep {
                        from: from as u32,
                        to: to as u32,
                        lat: rng.range_u32(1..=8),
                        kind: *rng.pick(&kinds),
                    });
                }
            }
        }
        let g = Ddg::from_edges(&latencies, &edges);
        assert_eq!(g.op_count(), n);

        // Round trip: the flat edge list rebuilds the identical graph.
        let again = Ddg::from_edges(&latencies, g.edges());
        assert_eq!(g, again);

        // Both adjacency views hold every edge exactly once, and the
        // pred view groups them by consumer in input order (the order
        // the old nested-`Vec` representation flattened to).
        assert_eq!(g.edges().len(), edges.len());
        let mut expected = edges.clone();
        expected.sort_by_key(|d| d.to); // stable: input order within a group
        assert_eq!(g.edges(), expected.as_slice());
        let mut from_succs: Vec<Dep> = (0..n).flat_map(|i| g.succs(i).iter().copied()).collect();
        let mut all = edges.clone();
        let key = |d: &Dep| (d.from, d.to, d.lat);
        from_succs.sort_by_key(key);
        all.sort_by_key(key);
        assert_eq!(from_succs, all);
        for i in 0..n {
            assert_eq!(g.pred_count(i) as usize, g.preds(i).len());
            for d in g.preds(i) {
                assert_eq!(d.to as usize, i);
            }
            for d in g.succs(i) {
                assert_eq!(d.from as usize, i);
            }
        }
    });
}
