//! Checkpoint/resume must be invisible in the results: a run that is
//! interrupted after N units and resumed from its journal produces an
//! [`Exploration`] bit-identical to one that never stopped — across
//! thread counts, because units are independent and the journal stores
//! exact `f64` bit patterns.

use custom_fit::dse::checkpoint::Checkpoint;
use custom_fit::dse::error::{CheckpointError, ExploreError};
use custom_fit::dse::explore::{Exploration, ExploreConfig};
use custom_fit::prelude::*;
use std::path::PathBuf;

/// A per-test journal path in the system temp directory (no tempfile
/// crate in the no-registry build), cleaned up before use.
fn journal_path(tag: &str) -> PathBuf {
    let p = std::env::temp_dir().join(format!("cfp_ckpt_{tag}_{}.journal", std::process::id()));
    let _ = std::fs::remove_file(&p);
    p
}

fn config() -> ExploreConfig {
    let mut cfg = ExploreConfig::smoke();
    cfg.benches = vec![Benchmark::D, Benchmark::G];
    cfg.threads = 2;
    cfg
}

fn assert_bit_identical(a: &Exploration, b: &Exploration) {
    assert_eq!(a.benches, b.benches);
    assert_eq!(a.baseline.outcomes, b.baseline.outcomes);
    assert_eq!(a.archs.len(), b.archs.len());
    for (x, y) in a.archs.iter().zip(&b.archs) {
        assert_eq!(x.spec, y.spec);
        assert_eq!(x.outcomes, y.outcomes, "{}", x.spec);
    }
    for i in 0..a.archs.len() {
        let xa: Vec<u64> = a.speedup_row(i).iter().map(|s| s.to_bits()).collect();
        let xb: Vec<u64> = b.speedup_row(i).iter().map(|s| s.to_bits()).collect();
        assert_eq!(xa, xb, "{}", a.archs[i].spec);
    }
}

#[test]
fn interrupted_run_resumes_bit_identically() {
    let cfg = config();
    let units = cfg.archs.len() * cfg.benches.len();

    // The reference: no checkpointing at all.
    let reference = Exploration::run(&cfg);

    // A full checkpointed run, to obtain a complete journal.
    let path = journal_path("resume");
    let mut ck_cfg = cfg.clone();
    ck_cfg.checkpoint = Some(Checkpoint::new(&path));
    let full = Exploration::run(&ck_cfg);
    assert_bit_identical(&reference, &full);
    assert_eq!(full.stats.resumed_units, 0);

    // Simulate a crash: truncate the journal to the header plus the
    // first N completed units (append order, whatever it was).
    let kept = 5;
    let text = std::fs::read_to_string(&path).expect("journal exists");
    let truncated: Vec<&str> = text.lines().take(1 + kept).collect();
    assert!(
        text.lines().count() > 1 + kept,
        "run is big enough to truncate"
    );
    std::fs::write(&path, format!("{}\n", truncated.join("\n"))).expect("truncate");

    // Resume on a different thread count; replayed + fresh must equal
    // the uninterrupted run exactly.
    let mut resume_cfg = cfg.clone();
    resume_cfg.threads = 1;
    resume_cfg.checkpoint = Some(Checkpoint::resume(&path));
    let resumed = Exploration::run(&resume_cfg);
    assert_eq!(resumed.stats.resumed_units, kept as u64);
    assert_bit_identical(&reference, &resumed);

    // The journal is now complete again: resuming once more replays
    // every unit and evaluates nothing.
    let mut replay_cfg = cfg.clone();
    replay_cfg.checkpoint = Some(Checkpoint::resume(&path));
    let replayed = Exploration::run(&replay_cfg);
    assert_eq!(replayed.stats.resumed_units, units as u64);
    assert_bit_identical(&reference, &replayed);

    let _ = std::fs::remove_file(&path);
}

#[test]
fn an_existing_journal_is_never_silently_clobbered() {
    let path = journal_path("clobber");
    let mut cfg = config();
    cfg.checkpoint = Some(Checkpoint::new(&path));
    let _ = Exploration::run(&cfg);

    // Same path without `resume` must refuse, not overwrite.
    let err = Exploration::try_run(&cfg).expect_err("journal exists");
    assert!(
        matches!(err, ExploreError::Checkpoint(CheckpointError::Exists(_))),
        "{err}"
    );

    let _ = std::fs::remove_file(&path);
}

#[test]
fn resuming_under_a_different_configuration_is_refused() {
    let path = journal_path("mismatch");
    let mut cfg = config();
    cfg.checkpoint = Some(Checkpoint::new(&path));
    let _ = Exploration::run(&cfg);

    // Different benchmark set → different fingerprint → refused.
    let mut other = config();
    other.benches = vec![Benchmark::A];
    other.checkpoint = Some(Checkpoint::resume(&path));
    let err = Exploration::try_run(&other).expect_err("wrong config");
    assert!(
        matches!(
            err,
            ExploreError::Checkpoint(CheckpointError::Mismatch { .. })
        ),
        "{err}"
    );

    // A corrupted journal is named by line, not panicked over.
    let text = std::fs::read_to_string(&path).expect("journal exists");
    let mut lines: Vec<String> = text.lines().map(str::to_owned).collect();
    lines[1] = "garbage,entry".to_owned();
    std::fs::write(&path, lines.join("\n")).expect("corrupt");
    let mut again = config();
    again.checkpoint = Some(Checkpoint::resume(&path));
    let err = Exploration::try_run(&again).expect_err("corrupt journal");
    assert!(
        matches!(
            err,
            ExploreError::Checkpoint(CheckpointError::Corrupt { line: 2, .. })
        ),
        "{err}"
    );

    let _ = std::fs::remove_file(&path);
}

#[test]
fn resume_on_a_missing_journal_starts_fresh() {
    let path = journal_path("fresh");
    let mut cfg = config();
    cfg.checkpoint = Some(Checkpoint::resume(&path));
    let ex = Exploration::run(&cfg);
    assert_eq!(ex.stats.resumed_units, 0);
    assert_bit_identical(&Exploration::run(&config()), &ex);
    assert!(path.exists(), "journal was created");
    let _ = std::fs::remove_file(&path);
}
