//! The crash-recovery proof: SIGKILL a real `cfpd` process mid-sweep,
//! restart it on the same state directory, and the job resumes from its
//! checkpoint journal and finishes **bit-identically** — the resumed
//! result's FNV digest equals the digest of an uninterrupted in-process
//! run of the same spec.

mod common;

use common::serve::{str_field, u64_field, Client};
use custom_fit::serve::json::Json;
use custom_fit::serve::{parse_request, Request};
use std::io::{BufRead, BufReader};
use std::net::SocketAddr;
use std::process::{Child, Command, Stdio};
use std::time::{Duration, Instant};

/// The killed job: every unit stalls 50 ms, so the full run takes
/// ~800 ms — long enough that the kill below reliably lands mid-sweep,
/// short enough that resuming is quick. Stalls are latency-only, so the
/// digest must match the unstalled spec's.
const SLOW_JOB: &str = r#"{"op":"submit","job":{"benches":["D","G"],"preset":"smoke","fault":{"kind":"stall","millis":50,"seed":1,"denominator":1}}}"#;

struct Daemon {
    child: Child,
    addr: SocketAddr,
    stdout: BufReader<std::process::ChildStdout>,
}

/// Start the real `cfpd` binary on `state` and scrape its listen
/// address from stdout.
fn start_cfpd(state: &std::path::Path) -> Daemon {
    let mut child = Command::new(env!("CARGO_BIN_EXE_cfpd"))
        .args(["--state", &state.display().to_string(), "--workers", "1"])
        .stdout(Stdio::piped())
        .stderr(Stdio::inherit())
        .spawn()
        .expect("spawn cfpd");
    let mut stdout = BufReader::new(child.stdout.take().expect("cfpd stdout"));
    let mut line = String::new();
    stdout.read_line(&mut line).expect("read listen line");
    let addr = line
        .trim_end()
        .strip_prefix("cfpd listening on ")
        .unwrap_or_else(|| panic!("unexpected cfpd banner: {line:?}"))
        .parse()
        .expect("listen address");
    Daemon {
        child,
        addr,
        stdout,
    }
}

#[test]
fn a_sigkilled_daemon_resumes_the_job_bit_identically() {
    let state = common::serve::state_dir("recovery");

    // ---- First life: accept the job, make progress, die. ------------
    let mut daemon = start_cfpd(&state);
    let mut client = Client::connect(daemon.addr);
    let accepted = client.request(SLOW_JOB);
    assert_eq!(
        accepted.get("ok").and_then(Json::as_bool),
        Some(true),
        "{accepted:?}"
    );
    let id = str_field(&accepted, "id");
    assert_eq!(id, "job-000000");

    // Wait until the run is demonstrably mid-sweep: some units done,
    // with ≥ 500 ms of stalled units still ahead when we pull the plug.
    let deadline = Instant::now() + Duration::from_secs(30);
    loop {
        let status = client.request(&format!(r#"{{"op":"status","id":"{id}"}}"#));
        let state_token = str_field(&status, "state");
        let units = u64_field(&status, "units_done");
        if state_token == "running" && (3..=8).contains(&units) {
            break;
        }
        assert_ne!(state_token, "done", "job finished before the kill");
        assert!(Instant::now() < deadline, "no mid-sweep window observed");
        std::thread::sleep(Duration::from_millis(10));
    }
    daemon.child.kill().expect("SIGKILL cfpd"); // kill(2), not a shutdown
    daemon.child.wait().expect("reap cfpd");
    drop(client);

    // The job was journaled but never finished: canonical line and
    // checkpoint journal on disk, no result.
    let jobs = state.join("jobs");
    assert!(jobs.join("job-000000.job").exists());
    assert!(jobs.join("job-000000.ck").exists());
    assert!(
        !jobs.join("job-000000.result").exists(),
        "the kill must land before completion"
    );

    // ---- Second life: recover, resume, finish. ----------------------
    let mut daemon = start_cfpd(&state);
    let mut banner = String::new();
    daemon.stdout.read_line(&mut banner).expect("recovery line");
    assert_eq!(banner.trim_end(), "cfpd recovered 1 incomplete job(s)");

    let mut client = Client::connect(daemon.addr);
    let result = client.request(&format!(r#"{{"op":"result","id":"{id}"}}"#));
    assert_eq!(
        result.get("state").and_then(Json::as_str),
        Some("done"),
        "{result:?}"
    );
    assert_eq!(u64_field(&result, "attempts"), 1, "a resume is not a retry");
    assert!(
        u64_field(&result, "resumed_units") > 0,
        "the second life must replay journaled units, not recompute them: {result:?}"
    );

    // Bit-identity: the resumed digest equals an uninterrupted run's.
    // (Computed in-process with the stall disabled — stalls are sleeps,
    // not semantics, which this equality also re-proves.)
    let Ok(Request::Submit(spec)) = parse_request(SLOW_JOB) else {
        panic!("the test job must parse");
    };
    let ck = state.join("uninterrupted.ck");
    let mut config = custom_fit::serve::job::explore_config(&spec, &ck);
    config.fault = None;
    let ex = custom_fit::dse::Exploration::try_run(&config).expect("uninterrupted run");
    let expected = format!("{:016x}", custom_fit::serve::job::result_digest(&ex));
    assert_eq!(
        str_field(&result, "digest"),
        expected,
        "kill-and-resume must be invisible in the result surface"
    );

    // Clean exit this time: the protocol shutdown op.
    let bye = client.request(r#"{"op":"shutdown"}"#);
    assert_eq!(bye.get("ok").and_then(Json::as_bool), Some(true));
    let exit = daemon.child.wait().expect("cfpd exits");
    assert!(exit.success(), "{exit:?}");

    let _ = std::fs::remove_dir_all(&state);
}
