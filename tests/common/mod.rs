//! Shared generators for the workspace property tests: random (but
//! well-formed) kernels and random valid architectures, driven by the
//! std-only `cfp_testkit::Rng`.
#![allow(dead_code)] // each test binary uses a subset

use cfp_testkit::Rng;
use custom_fit::ir::{CarriedInit, KernelBuilder, MemSpace, Operand, Pred, Ty, Vreg};
use custom_fit::prelude::*;

pub mod serve;

/// A recipe for one random kernel: a list of op codes interpreted
/// against the values produced so far.
#[derive(Debug, Clone)]
pub struct KernelRecipe {
    pub ops: Vec<(u8, u8, u8, i64)>,
    pub carried_seed: bool,
}

/// Draw a random recipe: 1..40 ops, each `(opcode, src1, src2, imm)`.
pub fn recipe(rng: &mut Rng) -> KernelRecipe {
    let len = rng.index(39) + 1;
    let ops = rng.vec_of(len, |r| {
        (
            r.range_u32(0..=7) as u8,
            r.next_u32() as u8,
            r.next_u32() as u8,
            r.range_i64(-64..=63),
        )
    });
    KernelRecipe {
        ops,
        carried_seed: rng.gen_bool(),
    }
}

/// Materialize a recipe into a verified kernel. All values stay small
/// (inputs are bytes, immediates |k| < 64, and every op result feeds
/// shifts/masks often enough to stay bounded) so plain and wrapping
/// arithmetic agree.
pub fn build(recipe: &KernelRecipe) -> Kernel {
    let mut b = KernelBuilder::new("random");
    let src_a = b.array_in("a", Ty::U8, MemSpace::L2);
    let src_b = b.array_in("b", Ty::U8, MemSpace::L1);
    let buf = b.array_inout("buf", Ty::I16, MemSpace::L2);
    let dst = b.array_out("dst", Ty::I32, MemSpace::L2);

    let mut vals: Vec<Vreg> = Vec::new();
    let x0 = b.load(src_a, 1, 0, Ty::U8);
    vals.push(x0);

    let acc_in = b.fresh();
    let mut acc_cur: Vreg = acc_in;

    for &(op, s1, s2, imm) in &recipe.ops {
        let pick = |s: u8, vals: &[Vreg]| vals[s as usize % vals.len()];
        let v = match op {
            0 => {
                let a = pick(s1, &vals);
                b.add(a, Operand::Imm(imm))
            }
            1 => {
                let a = pick(s1, &vals);
                let c = pick(s2, &vals);
                b.sub(a, c)
            }
            2 => {
                let a = pick(s1, &vals);
                b.mul(a, Operand::Imm(imm & 15))
            }
            3 => {
                let a = pick(s1, &vals);
                b.bin(custom_fit::ir::BinOp::And, a, Operand::Imm(255))
            }
            4 => {
                let a = pick(s1, &vals);
                b.ashr(a, Operand::Imm(i64::from(s2 % 5)))
            }
            5 => {
                // A fresh load at a varying offset.
                b.load(src_a, 1, i64::from(s2 % 8), Ty::U8)
            }
            6 => {
                let a = pick(s1, &vals);
                let c = pick(s2, &vals);
                let t = b.cmp(Pred::Lt, a, c);
                b.sel(t, a, c)
            }
            _ => {
                // Accumulate into the carried value.
                let a = pick(s1, &vals);
                let masked = b.bin(custom_fit::ir::BinOp::And, a, Operand::Imm(1023));
                let next = b.add(acc_cur, masked);
                acc_cur = next;
                next
            }
        };
        vals.push(v);
    }
    // Keep the L1 array and the inout array exercised.
    let t = b.load(src_b, 0, 2, Ty::U8);
    let last = *vals.last().expect("at least one value");
    let mixed = b.add(last, t);
    let narrowed = b.bin(custom_fit::ir::BinOp::And, mixed, Operand::Imm(0x7fff));
    let old = b.load(buf, 1, 1, Ty::I16);
    b.store(buf, 1, 0, narrowed, Ty::I16);
    let summed = b.add(narrowed, old);
    b.store(dst, 1, 0, summed, Ty::I32);

    if recipe.carried_seed {
        b.carry_into(acc_in, acc_cur, CarriedInit::Const(5));
    } else {
        // Keep the accumulator chain but seed it from the preamble.
        let mut k = b;
        k.in_preamble(true);
        let seed = k.mov(9_i64);
        k.in_preamble(false);
        k.carry_into(acc_in, acc_cur, CarriedInit::Preamble(seed));
        let kernel = k.finish();
        custom_fit::ir::verify(&kernel).expect("generated kernel verifies");
        return kernel;
    }
    let kernel = b.finish();
    custom_fit::ir::verify(&kernel).expect("generated kernel verifies");
    kernel
}

/// Draw a random valid architecture covering the experiment's axes.
pub fn arch(rng: &mut Rng) -> ArchSpec {
    loop {
        let a = *rng.pick(&[1_u32, 2, 4, 8, 16]);
        let r = *rng.pick(&[64_u32, 128, 256, 512]);
        let p2 = rng.range_u32(1..=4);
        let l2 = rng.range_u32(2..=8);
        let c = *rng.pick(&[1_u32, 2, 4, 8]);
        let m = (a / 2).max(1);
        if let Ok(spec) = ArchSpec::new(a, m, r, p2, l2, c) {
            return spec;
        }
    }
}

/// Iterations the shared workloads run for.
pub const N_ITERS: u64 = 8;

/// Deterministic inputs for a recipe-built kernel.
pub fn bind_inputs(kernel: &Kernel) -> MemImage {
    let mut mem = MemImage::for_kernel(kernel);
    let len = usize::try_from(N_ITERS).expect("small") + 16;
    mem.bind(0, (0..len).map(|i| ((i * 37 + 11) % 256) as i64).collect());
    mem.bind(1, (0..len).map(|i| ((i * 53 + 7) % 256) as i64).collect());
    mem.bind(2, (0..len).map(|i| ((i * 29) % 100) as i64 - 50).collect());
    mem.bind(3, vec![0; len]);
    mem
}
