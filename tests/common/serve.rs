//! Shared client-side plumbing for the `cfp-serve` integration tests:
//! a one-line-request/one-line-response protocol client and unique
//! state directories.
#![allow(dead_code)] // each test binary uses a subset

use custom_fit::serve::json::{self, Json};
use std::io::{BufRead, BufReader, Write};
use std::net::{SocketAddr, TcpStream};
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};

/// A unique, empty state directory for one test.
pub fn state_dir(tag: &str) -> PathBuf {
    static SERIAL: AtomicU64 = AtomicU64::new(0);
    let dir = std::env::temp_dir().join(format!(
        "cfp-serve-{tag}-{}-{}",
        std::process::id(),
        SERIAL.fetch_add(1, Ordering::Relaxed)
    ));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// One protocol connection to a daemon.
pub struct Client {
    reader: BufReader<TcpStream>,
    writer: TcpStream,
}

impl Client {
    pub fn connect(addr: SocketAddr) -> Client {
        let stream = TcpStream::connect(addr).expect("connect to daemon");
        stream.set_nodelay(true).expect("nodelay");
        let reader = BufReader::new(stream.try_clone().expect("clone stream"));
        Client {
            reader,
            writer: stream,
        }
    }

    /// Send one request line (without newline).
    pub fn send(&mut self, line: &str) {
        writeln!(self.writer, "{line}").expect("send request");
        self.writer.flush().expect("flush request");
    }

    /// Read one raw response line.
    pub fn recv_line(&mut self) -> String {
        let mut response = String::new();
        let n = self.reader.read_line(&mut response).expect("read response");
        assert!(n > 0, "daemon closed the connection");
        response.trim_end().to_string()
    }

    /// Send a line, read a line, parse it.
    pub fn request(&mut self, line: &str) -> Json {
        self.send(line);
        let response = self.recv_line();
        json::parse(&response).unwrap_or_else(|e| panic!("bad response {response:?}: {e:?}"))
    }

    /// Send a line, read a line, return it raw (for exact round-trip
    /// assertions).
    pub fn request_raw(&mut self, line: &str) -> String {
        self.send(line);
        self.recv_line()
    }
}

/// `v[name]` as a string, panicking with the full response on absence.
pub fn str_field(v: &Json, name: &str) -> String {
    v.get(name)
        .and_then(Json::as_str)
        .unwrap_or_else(|| panic!("response field '{name}' missing in {v:?}"))
        .to_string()
}

/// `v[name]` as a u64, panicking with the full response on absence.
pub fn u64_field(v: &Json, name: &str) -> u64 {
    v.get(name)
        .and_then(Json::as_u64)
        .unwrap_or_else(|| panic!("response field '{name}' missing in {v:?}"))
}

/// Submit `job_line`, assert acceptance, return the job id.
pub fn submit(client: &mut Client, job_line: &str) -> String {
    let resp = client.request(job_line);
    assert_eq!(
        resp.get("ok").and_then(Json::as_bool),
        Some(true),
        "submit rejected: {resp:?}"
    );
    str_field(&resp, "id")
}

/// Block until `id` is terminal and return its result response.
pub fn wait_result(client: &mut Client, id: &str) -> Json {
    client.request(&format!(r#"{{"op":"result","id":"{id}"}}"#))
}
