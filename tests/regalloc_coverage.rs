//! Register-allocation coverage: the spill onset along the paper's
//! register axis, and an oracle tying `cfp_sched::regalloc`'s two halves
//! together — the pressure report's fits/spills verdict must agree with
//! actual linear-scan allocation, and no allocation may ever hand out a
//! register number beyond the architecture's bank.

use custom_fit::dse::eval::residency_budget;
use custom_fit::dse::{try_evaluate_in, EvalScratch, ExploreConfig, PlanCache};
use custom_fit::ir::Vreg;
use custom_fit::machine::{ArchSpec, MachineResources};
use custom_fit::prelude::Benchmark;
use custom_fit::sched::{allocate, prepare, pressure, try_compile_core_in, Fuel, SchedScratch};

// ---------------------------------------------------------------------
// Spill onset along the register axis.

/// Benchmark A on the paper's pathological 16-ALU, 8-cluster datapath,
/// swept along the register axis. The onset is monotone: once a bank
/// size lets the chosen unroll fit, every larger bank does too, and the
/// chosen unroll factor never shrinks as registers grow. The smallest
/// bank is pinned to the paper's story (stuck at unroll 1), the largest
/// to the full sweep depth.
#[test]
fn the_spill_onset_moves_monotonically_along_the_register_axis() {
    let reg_sizes = [64_u32, 128, 256, 512];
    let cache = PlanCache::build(&[Benchmark::A], &reg_sizes, &[1, 2, 4, 8, 16]);
    let mut scratch = EvalScratch::new();
    let mut rows = Vec::new();
    for &r in &reg_sizes {
        let spec = ArchSpec::new(16, 4, r, 1, 4, 8).expect("valid spec");
        let m =
            try_evaluate_in(&spec, Benchmark::A, &cache, None, &mut scratch).expect("evaluation");
        rows.push((r, m));
    }
    for w in rows.windows(2) {
        let ((r0, a), (r1, b)) = (&w[0], &w[1]);
        assert!(
            b.unroll >= a.unroll,
            "unroll shrank from {} to {} between {r0} and {r1} registers",
            a.unroll,
            b.unroll
        );
        if !a.spilled {
            assert!(
                !b.spilled,
                "a fitting kernel at {r0} registers spilled at {r1}"
            );
        }
        assert!(
            b.cycles_per_output <= a.cycles_per_output + 1e-9,
            "more registers made A slower ({r0}: {}, {r1}: {})",
            a.cycles_per_output,
            b.cycles_per_output
        );
    }
    // The endpoints of the paper's story.
    let starved = &rows.iter().find(|(r, _)| *r == 128).expect("row").1;
    assert_eq!(starved.unroll, 1, "128 registers should pin A at unroll 1");
    let roomy = &rows.last().expect("row").1;
    assert!(roomy.unroll >= 8, "512 registers should unroll A deep");
    assert!(!roomy.spilled);
}

// ---------------------------------------------------------------------
// The pressure/allocation oracle.

/// For every smoke architecture, a spread of benchmarks, and two unroll
/// depths: compile the kernel, then check that
/// * `pressure(..).fits()` and `allocate(..)` agree exactly;
/// * a successful allocation never assigns a physical register at or
///   beyond the cluster's bank size, and covers every value the
///   schedule defines;
/// * a failed allocation names a cluster the pressure report shows as
///   over capacity.
#[test]
fn allocation_succeeds_exactly_when_the_pressure_report_fits() {
    let benches = [Benchmark::A, Benchmark::D, Benchmark::H];
    let smoke = ExploreConfig::smoke().archs;
    let mut sched_scratch = SchedScratch::new();
    let mut checked_ok = 0_u32;
    let mut checked_err = 0_u32;
    for spec in &smoke {
        let machine = MachineResources::from_spec(spec);
        for &bench in &benches {
            let base = bench.kernel();
            for unroll in [1_u32, 2] {
                let mut opt = base.clone();
                let budget = residency_budget(spec.regs);
                cfp_opt::optimize_budgeted(&mut opt, budget);
                let mut unrolled = cfp_opt::unroll::unroll(&opt, unroll);
                cfp_opt::optimize_budgeted(&mut unrolled, budget);
                let prepared = prepare(&unrolled, &machine);
                let core = try_compile_core_in(
                    &prepared,
                    &machine,
                    &mut Fuel::unlimited(),
                    &mut sched_scratch,
                )
                .expect("compilation under unlimited fuel");
                let report = pressure(&core.assignment, &core.schedule, &machine);
                let ctx = format!("{spec} {bench:?} unroll {unroll}");
                match allocate(&core.assignment, &core.schedule, &machine) {
                    Ok(phys) => {
                        checked_ok += 1;
                        assert!(
                            report.fits(),
                            "{ctx}: allocation fit but pressure says spill"
                        );
                        assert!(
                            !phys.is_empty(),
                            "{ctx}: a scheduled kernel maps no registers"
                        );
                        let mut seen = 0_usize;
                        for v in 0..core.assignment.code.vreg_limit {
                            for (c, cl) in machine.clusters.iter().enumerate() {
                                if let Some(r) = phys.get(Vreg(v), u32::try_from(c).expect("small"))
                                {
                                    seen += 1;
                                    assert!(
                                        u32::from(r) < cl.regs,
                                        "{ctx}: vreg {v} got register {r} in a {}-register bank",
                                        cl.regs
                                    );
                                }
                            }
                        }
                        assert_eq!(
                            seen,
                            phys.len(),
                            "{ctx}: the map holds keys outside the code's vreg range"
                        );
                    }
                    Err(e) => {
                        checked_err += 1;
                        assert!(!report.fits(), "{ctx}: pressure fit but allocation failed");
                        let c = e.cluster as usize;
                        assert!(
                            report.peak[c] > report.capacity[c],
                            "{ctx}: allocation blamed cluster {c}, which the report shows \
                             under capacity (peak {} of {})",
                            report.peak[c],
                            report.capacity[c]
                        );
                    }
                }
            }
        }
    }
    // The oracle saw both sides of the verdict, or it proved nothing.
    assert!(checked_ok > 0, "no kernel fit anywhere");
    assert!(
        checked_err > 0,
        "no kernel spilled anywhere; add a tighter configuration"
    );
}
