//! End-to-end tests of a live `cfp-serve` daemon: the happy protocol
//! path, warm-vs-cold bit-identity across the shared caches, progress
//! watching, and admission-control shedding.

mod common;

use common::serve::{state_dir, str_field, submit, u64_field, wait_result, Client};
use custom_fit::serve::json::{self, Json};
use custom_fit::serve::{parse_request, Request, ServeConfig, Server};

const JOB: &str = r#"{"op":"submit","job":{"benches":["D","G"],"preset":"smoke"}}"#;

/// A stalled variant of [`JOB`] (20 ms per unit, every unit) for tests
/// that need jobs to occupy a worker long enough to observe.
const SLOW_JOB: &str = r#"{"op":"submit","job":{"benches":["D","G"],"preset":"smoke","fault":{"kind":"stall","millis":20,"seed":1,"denominator":1}}}"#;

#[test]
fn the_daemon_serves_the_happy_path() {
    let dir = state_dir("daemon-smoke");
    let server = Server::start(ServeConfig::new(&dir)).expect("start daemon");
    let mut client = Client::connect(server.addr());

    let pong = client.request(r#"{"op":"ping"}"#);
    assert_eq!(pong.get("op").and_then(Json::as_str), Some("pong"));

    let id = submit(&mut client, JOB);
    assert_eq!(id, "job-000000");

    let result = wait_result(&mut client, &id);
    assert_eq!(result.get("state").and_then(Json::as_str), Some("done"));
    assert_eq!(u64_field(&result, "attempts"), 1);
    assert!(u64_field(&result, "architectures") > 0);
    assert!(result.get("best").is_some(), "{result:?}");
    let digest = str_field(&result, "digest");
    assert_eq!(digest.len(), 16, "fixed-width hex digest");

    // A terminal job's status is terminal, and asking again returns the
    // same persisted line.
    let status = client.request(&format!(r#"{{"op":"status","id":"{id}"}}"#));
    assert_eq!(status.get("state").and_then(Json::as_str), Some("done"));
    let again = wait_result(&mut client, &id);
    assert_eq!(str_field(&again, "digest"), digest);

    // Unknown ids are typed errors, not hangs.
    let missing = client.request(r#"{"op":"status","id":"job-999999"}"#);
    assert_eq!(
        missing.get("error").and_then(Json::as_str),
        Some("unknown_job")
    );
    // A non-waiting result poll on an unfinished job says so. (Submit a
    // stalled job so it is still running when we poll.)
    let slow = submit(&mut client, SLOW_JOB);
    let poll = client.request(&format!(r#"{{"op":"result","id":"{slow}","wait":false}}"#));
    assert_eq!(
        poll.get("error").and_then(Json::as_str),
        Some("not_finished"),
        "{poll:?}"
    );
    let finished = wait_result(&mut client, &slow);
    assert_eq!(finished.get("state").and_then(Json::as_str), Some("done"));

    server.shutdown();
    let _ = std::fs::remove_dir_all(&dir);
}

/// The tentpole guarantee of the shared-cache design: a job against
/// warm caches returns the bit-identical result surface of the same job
/// against cold caches — and actually hits the caches. The digest is
/// also compared against an in-process run of the identical spec
/// through the plain (non-daemon) exploration path.
#[test]
fn warm_cache_results_are_bit_identical_to_cold_and_actually_hit() {
    let dir = state_dir("daemon-warm");
    let server = Server::start(ServeConfig::new(&dir)).expect("start daemon");
    let mut client = Client::connect(server.addr());

    let cold_id = submit(&mut client, JOB);
    let cold = wait_result(&mut client, &cold_id);
    assert_eq!(cold.get("state").and_then(Json::as_str), Some("done"));
    let stats_before = client.request(r#"{"op":"stats"}"#);

    let warm_id = submit(&mut client, JOB);
    let warm = wait_result(&mut client, &warm_id);
    assert_eq!(warm.get("state").and_then(Json::as_str), Some("done"));
    let stats_after = client.request(r#"{"op":"stats"}"#);

    assert_eq!(
        str_field(&cold, "digest"),
        str_field(&warm, "digest"),
        "warm caches must not change results"
    );
    // The warm job compiled nothing new and hit the plan cache.
    assert_eq!(u64_field(&warm, "unique_schedules"), 0, "{warm:?}");
    assert!(u64_field(&warm, "cache_hits") > 0, "{warm:?}");
    assert!(
        u64_field(&stats_after, "plan_hits") > u64_field(&stats_before, "plan_hits"),
        "the second job must hit the shared plan store"
    );
    assert!(
        u64_field(&stats_after, "core_hits") > 0,
        "cross-job compile cache hit rate must be > 0"
    );

    // The same job through the plain exploration path digests the same:
    // the daemon adds availability, not new semantics.
    let Ok(Request::Submit(spec)) = parse_request(JOB) else {
        panic!("the test job must parse");
    };
    let ck = dir.join("inproc.ck");
    let config = custom_fit::serve::job::explore_config(&spec, &ck);
    let ex = custom_fit::dse::Exploration::try_run(&config).expect("in-process run");
    let expected = format!("{:016x}", custom_fit::serve::job::result_digest(&ex));
    assert_eq!(str_field(&cold, "digest"), expected);

    server.shutdown();
    let _ = std::fs::remove_dir_all(&dir);
}

/// `watch` streams unit progress events and terminates with the result
/// line.
#[test]
fn watch_streams_progress_then_the_result() {
    let dir = state_dir("daemon-watch");
    let mut cfg = ServeConfig::new(&dir);
    cfg.progress_every = 1; // every unit, so the stream is non-trivial
    let server = Server::start(cfg).expect("start daemon");
    let mut client = Client::connect(server.addr());

    let id = submit(&mut client, SLOW_JOB);
    let mut watcher = Client::connect(server.addr());
    watcher.send(&format!(r#"{{"op":"watch","id":"{id}"}}"#));
    let mut events = 0;
    let result = loop {
        let line = watcher.recv_line();
        let v = json::parse(&line).unwrap_or_else(|e| panic!("bad stream line {line:?}: {e:?}"));
        if v.get("event").and_then(Json::as_str) == Some("unit") {
            events += 1;
            assert!(v.get("n").and_then(Json::as_u64).is_some(), "{line}");
            continue;
        }
        break v;
    };
    assert!(events > 0, "a watched run must stream unit events");
    assert_eq!(result.get("state").and_then(Json::as_str), Some("done"));
    assert_eq!(str_field(&result, "id"), id);

    server.shutdown();
    let _ = std::fs::remove_dir_all(&dir);
}

/// Admission control: a burst beyond the high-water mark is shed with a
/// typed `overloaded` response, and every job that *was* accepted still
/// completes correctly.
#[test]
fn overload_sheds_typed_and_accepted_jobs_still_finish() {
    let dir = state_dir("daemon-shed");
    let mut cfg = ServeConfig::new(&dir);
    cfg.workers = 1;
    cfg.queue_high_water = 2;
    let server = Server::start(cfg).expect("start daemon");
    let mut client = Client::connect(server.addr());

    let mut accepted = Vec::new();
    let mut shed = 0;
    for _ in 0..12 {
        let resp = client.request(SLOW_JOB);
        if resp.get("ok").and_then(Json::as_bool) == Some(true) {
            accepted.push(str_field(&resp, "id"));
        } else {
            assert_eq!(
                resp.get("error").and_then(Json::as_str),
                Some("overloaded"),
                "shedding must be the typed overload error: {resp:?}"
            );
            assert_eq!(u64_field(&resp, "high_water"), 2);
            shed += 1;
        }
    }
    assert!(shed > 0, "a 12-deep burst over high-water 2 must shed");
    assert!(!accepted.is_empty(), "the first submits must be admitted");

    // Shed submits leave no trace in the state directory: only accepted
    // jobs are journaled.
    let journals = std::fs::read_dir(dir.join("jobs"))
        .expect("jobs dir")
        .flatten()
        .filter(|e| e.path().extension().is_some_and(|x| x == "job"))
        .count();
    assert_eq!(journals, accepted.len());

    let mut digests = Vec::new();
    for id in &accepted {
        let result = wait_result(&mut client, id);
        assert_eq!(
            result.get("state").and_then(Json::as_str),
            Some("done"),
            "{result:?}"
        );
        digests.push(str_field(&result, "digest"));
    }
    assert!(
        digests.windows(2).all(|w| w[0] == w[1]),
        "identical jobs, identical results — under load too"
    );
    let stats = client.request(r#"{"op":"stats"}"#);
    assert_eq!(u64_field(&stats, "shed"), shed);
    assert_eq!(u64_field(&stats, "completed") as usize, accepted.len());

    server.shutdown();
    let _ = std::fs::remove_dir_all(&dir);
}
