//! Run a real media pipeline end to end: the jammed DHEF benchmark
//! (RGB→YCbCr, 3×3 median, YCbCr→RGB, Floyd–Steinberg halftone) on a
//! custom-fit machine, executed cycle-accurately and verified against
//! the golden reference — plus the loop-jamming payoff the paper's
//! Table 2 is about.
//!
//! ```sh
//! cargo run --release --example media_pipeline
//! ```

use custom_fit::kernels::{data, golden};
use custom_fit::prelude::*;

fn eval_cycles(bench: Benchmark, spec: &ArchSpec) -> f64 {
    let cache = custom_fit::dse::PlanCache::build(&[bench], &[spec.regs], &[1, 2, 4]);
    custom_fit::dse::evaluate(spec, bench, &cache).cycles_per_output
}

fn main() {
    let spec = ArchSpec::new(8, 4, 256, 2, 4, 2).expect("valid spec");
    let machine = MachineResources::from_spec(&spec);
    println!("machine: {spec}");

    // Compile the jammed pipeline (lightly unrolled) and execute it
    // cycle-accurately on generated pixel rows.
    let workload: data::Workload = Benchmark::DHEF.workload(16, 2026);
    let mut kernel = workload.kernel.clone();
    custom_fit::opt::optimize_budgeted(&mut kernel, 128);
    let result = compile(&kernel, &machine);
    println!(
        "DHEF schedule: {} cycles per 8-pixel block ({} ops, {} inter-cluster moves, fits: {})",
        result.cycles_per_iter(),
        result.assignment.code.ops.len(),
        result.move_count,
        result.fits(),
    );

    let mut mem = workload.image();
    let stats = simulate(&kernel, &result, &machine, &mut mem, workload.iters)
        .expect("schedule executes cleanly");
    println!(
        "simulated {} cycles for {} blocks",
        stats.cycles, workload.iters
    );

    let mut gold = workload.image();
    golden::run(Benchmark::DHEF, &mut gold, workload.iters);
    for i in workload.observable_arrays() {
        assert_eq!(mem.array(i), gold.array(i), "array {i} diverged");
    }
    println!("output matches the golden reference");

    // First halftone bytes of the run (one bit per pixel, per channel).
    let out = mem.array(4);
    print!("halftone bytes: ");
    for trip in out.chunks(3).take(6) {
        print!("{:02x}{:02x}{:02x} ", trip[0], trip[1], trip[2]);
    }
    println!();

    // Why jamming: GF in one loop versus G then F through memory.
    let jammed = eval_cycles(Benchmark::GF, &spec);
    let separate = eval_cycles(Benchmark::G, &spec) + eval_cycles(Benchmark::F, &spec);
    println!(
        "loop jamming: GF fused {jammed:.1} cycles/pixel vs G+F separate \
         {separate:.1} (saves {:.0}%)",
        (1.0 - jammed / separate) * 100.0
    );
}
