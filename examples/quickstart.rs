//! Quickstart: compile one kernel for two machines and compare.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use custom_fit::prelude::*;

fn main() {
    // A small sharpening kernel written in the DSL.
    let source = "
        kernel sharpen(in u8 src[], out u8 dst[]) {
            loop i {
                var center = src[i + 1];
                var edge = src[i] + src[i + 2];
                dst[i] = u8(min(255, max(0, (center * 6 - edge * 2) >> 1)));
            }
        }";
    let mut kernel = compile_kernel(source, &[]).expect("kernel compiles");
    custom_fit::opt::optimize(&mut kernel);

    println!("== IR ==\n{}\n", custom_fit::ir::pretty::Listing(&kernel));

    // The paper's baseline versus a modest custom-fit machine.
    let baseline = ArchSpec::baseline();
    let custom = ArchSpec::new(4, 2, 128, 2, 4, 1).expect("valid spec");

    let cost = CostModel::paper_calibrated();
    let cycle = CycleModel::paper_calibrated();

    let base = custom_fit::compile_for(&kernel, &baseline);
    let tuned = custom_fit::compile_for(&kernel, &custom);

    println!("== schedule on {custom} ==");
    println!(
        "{}",
        custom_fit::sched::render(&tuned.schedule, &tuned.assignment)
    );

    let base_time = f64::from(base.cycles_per_iter()); // derate 1.0 by definition
    let tuned_time = f64::from(tuned.cycles_per_iter()) * cycle.derate(&custom);
    println!(
        "baseline {}: {} cycles/iter (cost {:.1})",
        baseline,
        base.cycles_per_iter(),
        cost.cost(&baseline)
    );
    println!(
        "custom   {}: {} cycles/iter, derate {:.2} (cost {:.1})",
        custom,
        tuned.cycles_per_iter(),
        cycle.derate(&custom),
        cost.cost(&custom)
    );
    println!("speedup: {:.2}x", base_time / tuned_time);

    // Prove the tuned schedule computes the right thing: execute it
    // cycle-accurately and compare with the reference interpreter.
    let machine = MachineResources::from_spec(&custom);
    let mut mem_sim = MemImage::for_kernel(&kernel);
    let mut mem_ref = MemImage::for_kernel(&kernel);
    let input: Vec<i64> = (0..34).map(|x| (x * 29 + 5) % 256).collect();
    mem_sim.bind(0, input.clone());
    mem_sim.bind(1, vec![0; 32]);
    mem_ref.bind(0, input);
    mem_ref.bind(1, vec![0; 32]);
    simulate(&kernel, &tuned, &machine, &mut mem_sim, 32).expect("simulation is clean");
    Interpreter::new()
        .run(&kernel, &mut mem_ref, 32)
        .expect("interpretation runs");
    assert_eq!(mem_sim.array(1), mem_ref.array(1));
    println!("schedule verified against the interpreter on 32 pixels");
}
