//! "Design for one algorithm, run another" (paper §4.2): specialize a
//! processor for one benchmark, then measure how the *other* benchmarks
//! fare on it — and how a small RANGE back-off repairs the damage.
//!
//! ```sh
//! cargo run --release --example design_for_one_run_another
//! ```

use custom_fit::dse::report::TextTable;
use custom_fit::prelude::*;

fn main() {
    // A reduced slice of the space that still contains both "lots of
    // ALUs, few registers" and "few ALUs, lots of registers" corners —
    // the axis the A-versus-H conflict lives on.
    let mut archs = Vec::new();
    for (a, m) in [(2, 1), (4, 2), (8, 4), (16, 4)] {
        for r in [128_u32, 256, 512] {
            for c in [1_u32, 2, 4, 8] {
                for p2 in [1_u32, 2, 4] {
                    if let Ok(spec) = ArchSpec::new(a, m, r, p2, 4, c) {
                        if r / c >= 16 {
                            archs.push(spec);
                        }
                    }
                }
            }
        }
    }
    let benches = vec![Benchmark::A, Benchmark::D, Benchmark::G, Benchmark::H];
    let config = ExploreConfig {
        archs,
        benches: benches.clone(),
        ..ExploreConfig::default()
    };
    println!(
        "exploring {} architectures x {} benchmarks...",
        config.archs.len(),
        benches.len()
    );
    let ex = Exploration::run(&config);
    println!("done in {:.1?}\n", ex.stats.wall);

    let budget = 10.0;
    for range in [Range::Fraction(0.0), Range::Fraction(0.10), Range::Infinite] {
        println!("== cost < {budget}, RANGE {range} ==");
        let mut table = TextTable::new(
            std::iter::once("designed for".to_owned())
                .chain(std::iter::once("arch".to_owned()))
                .chain(benches.iter().map(|b| format!("{b}")))
                .chain(std::iter::once("su".to_owned())),
        );
        let rows: Vec<usize> = match range {
            Range::Infinite => vec![0],
            Range::Fraction(_) => (0..benches.len()).collect(),
        };
        for t in rows {
            let sel = select(&ex, t, budget, range).expect("budget is feasible");
            let label = if matches!(range, Range::Infinite) {
                "all".to_owned()
            } else {
                benches[t].to_string()
            };
            let mut cells = vec![label, sel.spec.to_string()];
            cells.extend(sel.speedups.iter().map(|s| format!("{s:.2}")));
            cells.push(format!("{:.2}", sel.su));
            table.row(cells);
        }
        println!("{table}");
    }

    // The headline number: among machines that look perfectly reasonable
    // for some *other* benchmark (within 30% of its best), how badly can
    // A fare? This is the paper's "specialization is dangerous".
    let a_col = ex.bench_index(Benchmark::A).expect("A explored");
    let affordable: Vec<usize> = (0..ex.archs.len())
        .filter(|&i| ex.archs[i].cost <= budget)
        .collect();
    let best_a = affordable
        .iter()
        .map(|&i| ex.speedup(i, a_col))
        .fold(f64::NEG_INFINITY, f64::max);
    let mut worst = (f64::INFINITY, 0_usize, a_col);
    for t_col in 0..ex.benches.len() {
        if t_col == a_col {
            continue;
        }
        let best_t = affordable
            .iter()
            .map(|&i| ex.speedup(i, t_col))
            .fold(f64::NEG_INFINITY, f64::max);
        for &i in &affordable {
            if ex.speedup(i, t_col) >= 0.7 * best_t && ex.speedup(i, a_col) < worst.0 {
                worst = (ex.speedup(i, a_col), i, t_col);
            }
        }
    }
    println!(
        "specialization danger on A: best machine gives {best_a:.2}x, but {} — a \
         perfectly reasonable choice for {} — gives only {:.2}x ({:.1}x apart)",
        ex.archs[worst.1].spec,
        ex.benches[worst.2],
        worst.0,
        best_a / worst.0
    );
}
