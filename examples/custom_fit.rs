//! Custom-fit a processor to one application — the paper's core loop on
//! a reduced design space (so it runs in seconds; the full 192-point
//! experiment lives in `cargo run -p cfp-bench --bin exhibits`).
//!
//! ```sh
//! cargo run --release --example custom_fit [BENCH] [COST]
//! ```
//!
//! `BENCH` is a paper benchmark letter (default `H`); `COST` a budget
//! (default 10).

use custom_fit::dse;
use custom_fit::prelude::*;

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let bench = args.get(1).map_or(Benchmark::H, |s| {
        Benchmark::ALL
            .into_iter()
            .find(|b| b.letter().eq_ignore_ascii_case(s))
            .unwrap_or_else(|| panic!("unknown benchmark `{s}`"))
    });
    let budget: f64 = args
        .get(2)
        .map_or(10.0, |s| s.parse().expect("numeric cost"));

    // A reduced but representative slice of the paper's space: vary ALUs,
    // registers, memory ports, and clustering.
    let mut archs = Vec::new();
    for (a, m) in [(1, 1), (2, 1), (4, 2), (8, 4), (16, 8)] {
        for r in [64_u32, 128, 256] {
            for p2 in [1_u32, 2] {
                for c in [1_u32, 2, 4] {
                    if let Ok(spec) = ArchSpec::new(a, m, r, p2, 4, c) {
                        if r / c >= 16 {
                            archs.push(spec);
                        }
                    }
                }
            }
        }
    }
    let config = ExploreConfig {
        archs,
        benches: vec![bench],
        ..ExploreConfig::default()
    };
    println!(
        "exploring {} architectures for benchmark {bench} ({})",
        config.archs.len(),
        bench.description()
    );
    let ex = Exploration::run(&config);
    println!(
        "{} compilations in {:.1?}\n",
        ex.stats.compilations, ex.stats.wall
    );

    // The scatter and its best-alternatives frontier (paper Figure 3).
    let points = dse::scatter(&ex, 0);
    let front = dse::frontier(&points);
    println!("{}", dse::report::ascii_scatter(&points, &front, 64, 20));

    println!("best cost/performance alternatives:");
    for &i in &front {
        let p = &points[i];
        println!(
            "  {}  cost {:6.2}  speedup {:5.2}",
            p.spec, p.cost, p.speedup
        );
    }

    match select(&ex, 0, budget, Range::Fraction(0.0)) {
        Some(sel) => println!(
            "\ncustom-fit processor for {bench} under cost {budget}: {} \
             (cost {:.1}, speedup {:.2})",
            sel.spec, sel.cost, sel.speedups[0]
        ),
        None => println!("\nno architecture fits cost {budget}"),
    }
}
