//! How effective are search methods at finding the right architecture?
//! (the paper's §1.1 open question) — run the strategy study on a
//! reduced space and print the evaluations/quality trade-off.
//!
//! ```sh
//! cargo run --release --example search_strategies
//! ```

use custom_fit::dse::report::TextTable;
use custom_fit::dse::search::{self, Strategy};
use custom_fit::prelude::*;

fn main() {
    // A mid-sized slice: enough structure for local search to matter.
    let mut archs = Vec::new();
    for (a, m) in [(1_u32, 1_u32), (2, 1), (4, 2), (8, 4), (16, 8)] {
        for r in [64_u32, 128, 256, 512] {
            for p2 in [1_u32, 2, 4] {
                for c in [1_u32, 2, 4] {
                    if let Ok(s) = ArchSpec::new(a, m, r, p2, 4, c) {
                        if r / c >= 16 {
                            archs.push(s);
                        }
                    }
                }
            }
        }
    }
    let config = ExploreConfig {
        archs,
        benches: vec![Benchmark::D, Benchmark::G, Benchmark::H],
        ..ExploreConfig::default()
    };
    println!(
        "exploring {} architectures x {} benchmarks (the oracle)...",
        config.archs.len(),
        config.benches.len()
    );
    let ex = Exploration::run(&config);
    println!("done in {:.1?}\n", ex.stats.wall);

    let mut table = TextTable::new(["strategy", "evaluations", "% of space", "quality"]);
    for (strategy, evals, quality) in search::study(&ex, 10.0, &[1, 2, 3, 4, 5]) {
        table.row([
            strategy.to_string(),
            format!("{evals:.0}"),
            format!("{:.1}%", evals / ex.archs.len() as f64 * 100.0),
            format!("{quality:.3}"),
        ]);
    }
    println!("{table}");

    // One concrete trajectory, for the curious.
    let report = search::run(&ex, 2, 10.0, Strategy::HillClimb { restarts: 2 }, 7);
    println!(
        "hill-climb for {} found {} (speedup {:.2}, {:.0}% of optimal) after {} evaluations",
        ex.benches[2],
        report
            .best
            .map_or_else(|| "nothing".to_owned(), |s| s.to_string()),
        report.best_speedup,
        report.quality * 100.0,
        report.evaluations
    );
}
