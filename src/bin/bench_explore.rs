//! Wall-clock benchmark of the exploration's compilation-reuse layer.
//!
//! Runs a representative multi-register-size slice of the design space
//! twice — compile reuse disabled, then enabled — and writes the
//! timings, the speedup, and the cache accounting to
//! `BENCH_explore.json`. Std-only on purpose: it runs under the tier-1
//! offline build, unlike the criterion benches in `crates/bench`.
//!
//! Usage: `cargo run --release --bin bench_explore [-- <out.json>]
//!         [--checkpoint FILE [--resume]]`
//!
//! With `--checkpoint` the reuse-enabled exploration journals its
//! completed units to FILE (and `--resume` picks an interrupted journal
//! back up). Checkpointing forces a single repetition and replayed units
//! cost no compute, so the reported wall-clock speedup is only
//! meaningful for a run that started from an empty journal.

use custom_fit::dse::checkpoint::Checkpoint;
use custom_fit::dse::explore::{Exploration, ExploreConfig, RunStats};
use custom_fit::prelude::*;
use std::time::Instant;

/// Reuse-on single-thread evaluation wall time of this same slice
/// measured on the pre-`Mdes` tree (commit `ec90063`), on the reference
/// machine. The report compares the current measurement against it so a
/// scheduler-cost regression from the machine-description layer shows up
/// in the JSON; `tests/mdes_equivalence.rs` separately proves the
/// *results* are bit-identical.
const PRE_MDES_EVAL_WALL_S: f64 = 0.4559;

/// The benchmark space: every `r ∈ {64, 128, 256, 512}` variant of a
/// spread of datapaths. The register axis is exactly what the reuse
/// layer collapses, so this is the representative case the cache is
/// built for — every architecture appears in four register sizes that
/// schedule identically. The kernels are the ones whose unroll sweeps
/// are not register-starved (D/E/G unroll fully even at r = 64), so the
/// deep — and expensive — unroll plans really are requested at all four
/// register sizes; register-starved kernels like C stop their sweep
/// early at small r and leave the deep plans with fewer sharers.
fn slice() -> Vec<ArchSpec> {
    let mut archs = Vec::new();
    for (a, m) in [(2_u32, 1_u32), (4, 2), (8, 4), (16, 8)] {
        for c in [1_u32, 2, 4] {
            for p2 in [1_u32, 2] {
                for l2 in [2_u32, 4] {
                    for r in [64_u32, 128, 256, 512] {
                        if let Ok(s) = ArchSpec::new(a, m, r, p2, l2, c) {
                            archs.push(s);
                        }
                    }
                }
            }
        }
    }
    archs
}

/// Timed repetitions; the fastest is kept (the runs are deterministic,
/// so they differ only in OS noise).
const REPS: usize = 3;

/// The benchmarked configuration.
fn config(reuse: bool, checkpoint: Option<Checkpoint>, threads: usize) -> ExploreConfig {
    ExploreConfig {
        archs: slice(),
        benches: vec![
            Benchmark::A,
            Benchmark::D,
            Benchmark::E,
            Benchmark::G,
            Benchmark::H,
        ],
        threads,
        reuse,
        checkpoint,
        ..ExploreConfig::default()
    }
}

/// Run the exploration `REPS` times and keep the fastest wall time. With
/// a checkpoint attached there is exactly one rep: re-running against a
/// now-complete journal would only measure the replay.
fn run(reuse: bool, checkpoint: Option<Checkpoint>, threads: usize) -> (Exploration, f64) {
    let reps = if checkpoint.is_some() { 1 } else { REPS };
    let cfg = config(reuse, checkpoint, threads);
    let mut best: Option<(Exploration, f64)> = None;
    for _ in 0..reps {
        let t = Instant::now();
        let ex = match Exploration::try_run(&cfg) {
            Ok(ex) => ex,
            Err(e) => {
                eprintln!("error: {e}");
                std::process::exit(1);
            }
        };
        let s = t.elapsed().as_secs_f64();
        if best.as_ref().is_none_or(|(_, b)| s < *b) {
            best = Some((ex, s));
        }
    }
    best.expect("at least one rep")
}

/// The reuse-on single-thread run again, but with a live
/// [`custom_fit::obs::JsonlRecorder`] draining every span. Returns the
/// fastest-rep exploration and wall time plus the event count of one
/// run — the overhead this buys is the `trace_overhead` row.
fn run_traced() -> (Exploration, f64, usize) {
    let cfg = config(true, None, 1);
    let mut best: Option<(Exploration, f64, usize)> = None;
    for _ in 0..REPS {
        let rec = custom_fit::obs::JsonlRecorder::new();
        let t = Instant::now();
        let ex = match Exploration::try_run_traced(&cfg, &rec) {
            Ok(ex) => ex,
            Err(e) => {
                eprintln!("error: {e}");
                std::process::exit(1);
            }
        };
        let s = t.elapsed().as_secs_f64();
        if best.as_ref().is_none_or(|(_, b, _)| s < *b) {
            best = Some((ex, s, rec.len()));
        }
    }
    best.expect("at least one rep")
}

fn stats_json(s: &RunStats) -> String {
    format!(
        "{{\"compilations\": {}, \"cache_hits\": {}, \"unique_schedules\": {}, \
         \"unique_plans\": {}, \"architectures\": {}, \"failed_units\": {}, \
         \"fuel_exhausted\": {}, \"resumed_units\": {}, \"ii_attempts\": {}, \
         \"plan_wall_s\": {:.4}, \"eval_wall_s\": {:.4}, \"wall_s\": {:.4}}}",
        s.compilations,
        s.cache_hits,
        s.unique_schedules,
        s.unique_plans,
        s.architectures,
        s.failed_units,
        s.fuel_exhausted,
        s.resumed_units,
        s.ii_attempts,
        s.plan_wall.as_secs_f64(),
        s.eval_wall.as_secs_f64(),
        s.wall.as_secs_f64()
    )
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let resume = args.iter().any(|a| a == "--resume");
    let checkpoint = args
        .iter()
        .position(|a| a == "--checkpoint")
        .and_then(|i| args.get(i + 1).cloned())
        .map(|path| {
            if resume {
                Checkpoint::resume(path)
            } else {
                Checkpoint::new(path)
            }
        });
    if resume && checkpoint.is_none() {
        eprintln!("error: --resume needs --checkpoint FILE");
        std::process::exit(2);
    }
    let mut skip_next = false;
    let out = args
        .iter()
        .find(|a| {
            if skip_next {
                skip_next = false;
                return false;
            }
            if *a == "--checkpoint" {
                skip_next = true;
                return false;
            }
            !a.starts_with("--")
        })
        .cloned()
        .unwrap_or_else(|| "BENCH_explore.json".to_string());

    // Warm-up: touch every plan once so neither timed run pays lazy OS
    // costs (page cache, thread pool spin-up) the other doesn't.
    {
        let mut warm = ExploreConfig::smoke();
        warm.benches.truncate(1);
        warm.archs.truncate(2);
        let _ = Exploration::run(&warm);
    }

    // The comparable rows are measured single-threaded: wall-clock on
    // one worker is exactly the scheduling work done, so the reuse
    // speedup is not confounded by core count or scheduler contention.
    eprintln!("running exploration with compile reuse disabled (1 thread)...");
    let (off, off_s) = run(false, None, 1);
    eprintln!("  {:.2}s ({} compilations)", off_s, off.stats.compilations);
    eprintln!("running the same exploration with compile reuse enabled (1 thread)...");
    // The journal (if any) is attached to the reuse-on run only. The
    // fingerprint deliberately ignores `reuse` (it cannot change
    // results), so one journal would satisfy both runs — and the second
    // would silently replay instead of measuring anything.
    let (on, on_s) = run(true, checkpoint, 1);
    eprintln!(
        "  {:.2}s ({} compilations, {} cache hits, {} unique schedules)",
        on_s, on.stats.compilations, on.stats.cache_hits, on.stats.unique_schedules
    );
    // One more reuse-on row at the machine's full parallelism, so the
    // report also shows what the thread pool adds on this hardware.
    let par_threads = std::thread::available_parallelism().map_or(1, |n| n.get());
    eprintln!("running the reuse-enabled exploration on {par_threads} threads...");
    let (par, par_s) = run(true, None, par_threads);
    eprintln!("  {par_s:.2}s");
    // And the reuse-on single-thread run once more with every span
    // recorded, to price the observability layer. The comparable row is
    // `on` (same config, NullRecorder — whose cost is one predicted
    // branch per span, i.e. unmeasurable).
    eprintln!("running the same exploration with JSONL tracing (1 thread)...");
    let (traced, traced_s, trace_events) = run_traced();
    eprintln!("  {traced_s:.2}s ({trace_events} events)");
    if on.stats.resumed_units > 0 {
        eprintln!(
            "  ({} units replayed from the checkpoint journal — wall-clock \
             speedup below is not a clean measurement)",
            on.stats.resumed_units
        );
    }

    // All three runs must agree exactly — the cache is pure reuse, and
    // threading only changes who computes what first.
    assert_eq!(off.stats.compilations, on.stats.compilations);
    assert_eq!(off.stats.compilations, par.stats.compilations);
    assert_eq!(off.stats.compilations, traced.stats.compilations);
    for a in 0..off.archs.len() {
        assert_eq!(
            off.speedup_row(a),
            on.speedup_row(a),
            "{}",
            off.archs[a].spec
        );
        assert_eq!(
            off.speedup_row(a),
            par.speedup_row(a),
            "{} (parallel)",
            off.archs[a].spec
        );
        assert_eq!(
            off.speedup_row(a),
            traced.speedup_row(a),
            "{} (traced)",
            off.archs[a].spec
        );
    }

    let speedup = off_s / on_s;
    let eval_speedup = off.stats.eval_wall.as_secs_f64() / on.stats.eval_wall.as_secs_f64();
    let mdes_eval = on.stats.eval_wall.as_secs_f64();
    let traced_eval = traced.stats.eval_wall.as_secs_f64();
    let json = format!(
        "{{\n  \"benchmark\": \"multi-register-size exploration ({} architectures x {} benchmarks)\",\n  \
           \"threads\": 1,\n  \
           \"reuse_off\": {},\n  \"reuse_on\": {},\n  \
           \"wall_speedup\": {:.2},\n  \"eval_speedup\": {:.2},\n  \
           \"threads_parallel\": {},\n  \"reuse_on_parallel\": {},\n  \
           \"mdes_refactor\": {{\"pre_mdes_eval_wall_s\": {PRE_MDES_EVAL_WALL_S:.4}, \
           \"post_mdes_eval_wall_s\": {mdes_eval:.4}, \"ratio\": {:.2}, \
           \"results_identical\": true}},\n  \
           \"trace_overhead\": {{\"recorder\": \"jsonl\", \"events\": {trace_events}, \
           \"eval_wall_s\": {traced_eval:.4}, \"null_eval_wall_s\": {mdes_eval:.4}, \
           \"eval_ratio\": {:.3}, \"results_identical\": true}},\n  \
           \"results_identical\": true\n}}\n",
        off.stats.architectures,
        off.benches.len(),
        stats_json(&off.stats),
        stats_json(&on.stats),
        speedup,
        eval_speedup,
        par_threads,
        stats_json(&par.stats),
        mdes_eval / PRE_MDES_EVAL_WALL_S,
        traced_eval / mdes_eval,
    );
    std::fs::write(&out, &json).expect("write benchmark report");
    println!("wall-clock speedup from compile reuse: {speedup:.2}x (evaluation phase: {eval_speedup:.2}x)");
    println!("wrote {out}");
}
