//! `cfpc` — the custom-fit kernel compiler driver.
//!
//! Compile a kernel DSL file for a chosen architecture and inspect every
//! stage of the toolchain:
//!
//! ```sh
//! cfpc kernel.cfk                                  # baseline machine
//! cfpc kernel.cfk --arch "(8 4 256 2 4 4)"         # custom machine
//! cfpc kernel.cfk --unroll 4 --emit schedule
//! cfpc kernel.cfk --emit ir|schedule|stats|encoding
//! cfpc kernel.cfk --const W=512 --const f=2
//! ```

use custom_fit::machine::{ArchSpec, CostModel, CycleModel, MachineResources};

const USAGE: &str = "\
usage: cfpc <file.cfk> [options]
  --arch \"(a m r p2 l2 c)\"   target architecture (default: baseline)
  --unroll N                 unroll the loop N times (default 1)
  --const NAME=VALUE         bind a const parameter (repeatable)
  --no-opt                   skip the optimizer
  --emit ir|schedule|stats|encoding   what to print (default stats)";

struct Options {
    file: String,
    arch: ArchSpec,
    unroll: u32,
    consts: Vec<(String, i64)>,
    optimize: bool,
    emit: String,
}

fn parse_args() -> Result<Options, String> {
    let mut args = std::env::args().skip(1);
    let mut opts = Options {
        file: String::new(),
        arch: ArchSpec::baseline(),
        unroll: 1,
        consts: Vec::new(),
        optimize: true,
        emit: "stats".to_owned(),
    };
    while let Some(a) = args.next() {
        match a.as_str() {
            "--arch" => {
                let v = args.next().ok_or("--arch needs a value")?;
                opts.arch = ArchSpec::parse(&v)?;
            }
            "--unroll" => {
                let v = args.next().ok_or("--unroll needs a value")?;
                opts.unroll = v.parse().map_err(|e| format!("bad unroll: {e}"))?;
            }
            "--const" => {
                let v = args.next().ok_or("--const needs NAME=VALUE")?;
                let (name, value) = v.split_once('=').ok_or("expected NAME=VALUE")?;
                opts.consts.push((
                    name.to_owned(),
                    value.parse().map_err(|e| format!("bad const value: {e}"))?,
                ));
            }
            "--no-opt" => opts.optimize = false,
            "--emit" => {
                opts.emit = args.next().ok_or("--emit needs a value")?;
                if !["ir", "schedule", "stats", "encoding"].contains(&opts.emit.as_str()) {
                    return Err(format!("unknown emit kind `{}`", opts.emit));
                }
            }
            "-h" | "--help" => return Err(String::new()),
            other if opts.file.is_empty() && !other.starts_with('-') => {
                opts.file = other.to_owned();
            }
            other => return Err(format!("unknown argument `{other}`")),
        }
    }
    if opts.file.is_empty() {
        return Err("no input file".to_owned());
    }
    Ok(opts)
}

fn main() {
    let opts = match parse_args() {
        Ok(o) => o,
        Err(msg) => {
            if !msg.is_empty() {
                eprintln!("error: {msg}\n");
            }
            eprintln!("{USAGE}");
            std::process::exit(if msg.is_empty() { 0 } else { 2 });
        }
    };

    let source = match std::fs::read_to_string(&opts.file) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("error: cannot read `{}`: {e}", opts.file);
            std::process::exit(1);
        }
    };
    let consts: Vec<(&str, i64)> = opts.consts.iter().map(|(n, v)| (n.as_str(), *v)).collect();
    let mut kernel = match custom_fit::frontend::compile_kernel(&source, &consts) {
        Ok(k) => k,
        Err(e) => {
            eprintln!("{}", e.render(&source));
            std::process::exit(1);
        }
    };

    if opts.optimize {
        custom_fit::opt::optimize_budgeted(&mut kernel, (opts.arch.regs / 2) as usize);
    }
    let kernel = custom_fit::opt::unroll::unroll(&kernel, opts.unroll.max(1));

    let machine = MachineResources::from_spec(&opts.arch);
    let result = custom_fit::sched::compile(&kernel, &machine);

    match opts.emit.as_str() {
        "ir" => println!("{}", custom_fit::ir::pretty::Listing(&kernel)),
        "schedule" => {
            println!(
                "{}",
                custom_fit::sched::render(&result.schedule, &result.assignment)
            );
        }
        "encoding" => {
            match custom_fit::sched::encode(&result.assignment, &result.schedule, &machine) {
                Ok(prog) => {
                    println!(
                        "{} words x {} slots; {} bytes raw, {} compressed",
                        prog.words.len(),
                        prog.slots_per_word,
                        prog.raw_bytes(),
                        prog.compressed_bytes()
                    );
                    for (t, word) in prog.words.iter().enumerate() {
                        print!("{t:4}: mask={:0w$b} ", word.mask, w = prog.slots_per_word);
                        for op in &word.ops {
                            print!("{op:012x} ");
                        }
                        if !word.imms.is_empty() {
                            print!("| pool {:?}", word.imms);
                        }
                        println!();
                    }
                }
                Err(e) => {
                    eprintln!("error: cannot encode: {e}");
                    std::process::exit(1);
                }
            }
        }
        _ => {
            let cost = CostModel::paper_calibrated();
            let cycle = CycleModel::paper_calibrated();
            println!(
                "kernel     : {} (unroll x{})",
                kernel.name,
                opts.unroll.max(1)
            );
            println!("machine    : {}", opts.arch);
            println!(
                "cost       : {:.2} (baseline-relative)",
                cost.cost(&opts.arch)
            );
            println!("cycle time : {:.2}x baseline", cycle.derate(&opts.arch));
            println!(
                "ops        : {} ({} moves)",
                result.assignment.code.ops.len(),
                result.move_count
            );
            println!(
                "schedule   : {} cycles/iter (critical path {}, {:.2} cycles/output)",
                result.length,
                result.critical_path,
                f64::from(result.cycles_per_iter()) / f64::from(kernel.outputs_per_iter)
            );
            println!(
                "registers  : peak {:?} of {:?}{}",
                result.pressure.peak,
                result.pressure.capacity,
                if result.fits() {
                    String::new()
                } else {
                    format!(
                        " — SPILLS ({} over, +{} cycles)",
                        result.pressure.spill_excess(),
                        result.spill_penalty
                    )
                }
            );
        }
    }
}
