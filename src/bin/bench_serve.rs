//! Service-level benchmark of the `cfpd` exploration daemon.
//!
//! Two phases against in-process servers, all through the real TCP
//! protocol:
//!
//! 1. **Throughput** — a stream of identical jobs against a warm-cache
//!    daemon: jobs/s, client-observed p50/p99 latency, the cold first
//!    job vs. the warm rest, and the cross-job cache hit rate (the
//!    whole point of a daemon holding shared warm state — every job
//!    after the first should hit the plan and compile caches).
//! 2. **Shedding** — a burst into a deliberately tiny daemon (1 worker,
//!    high-water 2): how many submits get the typed `overloaded`
//!    response instead of queueing without bound.
//!
//! Writes `BENCH_serve.json`. Std-only on purpose: it runs under the
//! tier-1 offline build, like the other `bench_*` binaries.
//!
//! Usage: `cargo run --release --bin bench_serve [-- <out.json>]`

use custom_fit::serve::json::Json;
use custom_fit::serve::{json, ServeConfig, Server};
use std::io::{BufRead, BufReader, Write};
use std::net::TcpStream;
use std::time::Instant;

/// One protocol connection: send a line, read a line.
struct Client {
    reader: BufReader<TcpStream>,
    writer: TcpStream,
}

impl Client {
    fn connect(addr: std::net::SocketAddr) -> Client {
        let stream = TcpStream::connect(addr).expect("connect to daemon");
        stream.set_nodelay(true).expect("nodelay");
        let reader = BufReader::new(stream.try_clone().expect("clone stream"));
        Client {
            reader,
            writer: stream,
        }
    }

    fn request(&mut self, line: &str) -> Json {
        writeln!(self.writer, "{line}").expect("send request");
        self.writer.flush().expect("flush request");
        let mut response = String::new();
        self.reader.read_line(&mut response).expect("read response");
        json::parse(response.trim_end()).expect("daemon speaks JSON")
    }
}

fn field_u64(v: &Json, name: &str) -> u64 {
    v.get(name)
        .and_then(Json::as_u64)
        .unwrap_or_else(|| panic!("response field '{name}': {v:?}"))
}

fn field_str(v: &Json, name: &str) -> String {
    v.get(name)
        .and_then(Json::as_str)
        .unwrap_or_else(|| panic!("response field '{name}': {v:?}"))
        .to_string()
}

/// The benchmarked job: the smoke-preset design space over two
/// benchmarks — small enough that a job is milliseconds warm, large
/// enough that the cold/warm gap and the cache accounting are real.
const JOB: &str = r#"{"op":"submit","job":{"benches":["D","G"],"preset":"smoke"}}"#;

/// The shedding-phase job: the same space, with a deterministic 20 ms
/// stall injected into every unit so each job occupies the lone worker
/// for hundreds of milliseconds whatever the machine speed — the burst
/// below must outrun the drain for the high-water mark to matter.
const SLOW_JOB: &str = r#"{"op":"submit","job":{"benches":["D","G"],"preset":"smoke","fault":{"kind":"stall","millis":20,"seed":1,"denominator":1}}}"#;

/// Jobs in the throughput phase.
const JOBS: usize = 24;
/// Submits in the shedding burst.
const BURST: usize = 20;

fn percentile(sorted_ms: &[f64], p: f64) -> f64 {
    let idx = ((sorted_ms.len() - 1) as f64 * p).round() as usize;
    sorted_ms[idx]
}

fn main() {
    let out_path = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "BENCH_serve.json".to_string());
    let state_root = std::env::temp_dir().join(format!("cfp-bench-serve-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&state_root);

    // ---- Phase 1: throughput against a warm daemon ------------------
    let workers = std::thread::available_parallelism()
        .map_or(2, |n| n.get())
        .min(4);
    let mut cfg = ServeConfig::new(state_root.join("throughput"));
    cfg.workers = workers;
    cfg.queue_high_water = JOBS + 8; // never shed in this phase
    let server = Server::start(cfg).expect("start daemon");
    let addr = server.addr();
    eprintln!("throughput phase: {JOBS} identical jobs on {workers} workers at {addr}");

    let mut client = Client::connect(addr);
    let t0 = Instant::now();
    let mut submits: Vec<(String, Instant)> = Vec::with_capacity(JOBS);
    for _ in 0..JOBS {
        let resp = client.request(JOB);
        assert_eq!(
            resp.get("ok").and_then(Json::as_bool),
            Some(true),
            "{resp:?}"
        );
        submits.push((field_str(&resp, "id"), Instant::now()));
    }
    let mut latencies_ms: Vec<f64> = Vec::with_capacity(JOBS);
    let mut digests: Vec<String> = Vec::with_capacity(JOBS);
    for (id, submitted) in &submits {
        let resp = client.request(&format!(r#"{{"op":"result","id":"{id}"}}"#));
        assert_eq!(
            resp.get("state").and_then(Json::as_str),
            Some("done"),
            "{resp:?}"
        );
        latencies_ms.push(submitted.elapsed().as_secs_f64() * 1e3);
        digests.push(field_str(&resp, "digest"));
    }
    let total_s = t0.elapsed().as_secs_f64();

    // Identical jobs must produce identical result surfaces, cold or
    // warm, whatever the interleaving.
    assert!(
        digests.windows(2).all(|w| w[0] == w[1]),
        "digests diverged across identical jobs: {digests:?}"
    );

    let stats = client.request(r#"{"op":"stats"}"#);
    let core_hits = field_u64(&stats, "core_hits");
    let core_misses = field_u64(&stats, "core_misses");
    let plan_hits = field_u64(&stats, "plan_hits");
    let plan_misses = field_u64(&stats, "plan_misses");
    let hit_rate = core_hits as f64 / (core_hits + core_misses).max(1) as f64;
    assert!(
        hit_rate > 0.0,
        "repeated identical jobs must hit the shared caches"
    );
    drop(client);
    server.shutdown();

    let first_job_ms = latencies_ms[0];
    let mut sorted = latencies_ms.clone();
    sorted.sort_by(f64::total_cmp);
    let p50 = percentile(&sorted, 0.50);
    let p99 = percentile(&sorted, 0.99);
    let jobs_per_s = JOBS as f64 / total_s;
    eprintln!(
        "  {jobs_per_s:.1} jobs/s, p50 {p50:.1} ms, p99 {p99:.1} ms \
         (cold first job {first_job_ms:.1} ms), cache hit rate {:.1}%",
        hit_rate * 1e2
    );

    // ---- Phase 2: shedding under a burst ----------------------------
    let mut cfg = ServeConfig::new(state_root.join("shed"));
    cfg.workers = 1;
    cfg.queue_high_water = 2;
    let server = Server::start(cfg).expect("start tiny daemon");
    eprintln!("shedding phase: burst of {BURST} submits into 1 worker, high-water 2");
    let mut client = Client::connect(server.addr());
    let mut shed = 0_usize;
    for _ in 0..BURST {
        let resp = client.request(SLOW_JOB);
        if resp.get("error").and_then(Json::as_str) == Some("overloaded") {
            shed += 1;
        }
    }
    let shed_rate = shed as f64 / BURST as f64;
    assert!(shed > 0, "a 20-deep burst over high-water 2 must shed");
    eprintln!("  shed {shed}/{BURST} ({:.0}%)", shed_rate * 1e2);
    drop(client);
    server.shutdown();
    let _ = std::fs::remove_dir_all(&state_root);

    let json = format!(
        "{{\n  \"benchmark\": \"cfpd exploration service ({JOBS} identical smoke-preset jobs)\",\n  \
           \"workers\": {workers},\n  \
           \"jobs\": {JOBS},\n  \
           \"jobs_per_s\": {jobs_per_s:.2},\n  \
           \"p50_ms\": {p50:.2},\n  \
           \"p99_ms\": {p99:.2},\n  \
           \"cold_first_job_ms\": {first_job_ms:.2},\n  \
           \"cross_job_cache\": {{\"core_hits\": {core_hits}, \"core_misses\": {core_misses}, \
           \"hit_rate\": {hit_rate:.4}, \"plan_hits\": {plan_hits}, \"plan_misses\": {plan_misses}}},\n  \
           \"digests_identical\": true,\n  \
           \"shed\": {{\"burst\": {BURST}, \"workers\": 1, \"high_water\": 2, \
           \"shed\": {shed}, \"rate\": {shed_rate:.2}}}\n}}\n"
    );
    std::fs::write(&out_path, &json).expect("write benchmark report");
    println!(
        "{jobs_per_s:.1} jobs/s; p50 {p50:.1} ms, p99 {p99:.1} ms; \
         cache hit rate {:.1}%; shed rate {:.0}%",
        hit_rate * 1e2,
        shed_rate * 1e2
    );
    println!("wrote {out_path}");
}
