//! Wall-clock and step-count microbenchmark of the scheduler core.
//!
//! Times the hot path the exploration spends its life in —
//! [`cfp_sched::try_compile_core_in`] (cluster assignment, CSR DDG
//! build, sorted-ready-list scheduling, pressure analysis) with a reused
//! [`cfp_sched::SchedScratch`] — plus the modulo scheduler, over the
//! full kernel corpus crossed with a stratified + seeded-random sample
//! of architectures. Std-only on purpose (no criterion): it runs under
//! the tier-1 offline build, and the random extras come from
//! `cfp_testkit`'s SplitMix64 so the unit set is identical everywhere.
//!
//! Usage:
//!   `cargo run --release --bin bench_sched [-- <out.json>]` — time the
//!   corpus (keep-fastest of 3 reps) and write `BENCH_sched.json`.
//!
//!   `cargo run --release --bin bench_sched -- --check` — no timing:
//!   recompute the deterministic step totals and fail (exit 1) if they
//!   exceed the budgets committed in `results/sched_step_budget.json`.
//!   Scheduler steps are semantic events (placements and ready-list
//!   scans), bit-identical on every platform, so this is a perf
//!   regression guard CI can enforce without ever reading a clock.

use custom_fit::machine::{ArchSpec, MachineResources};
use custom_fit::obs::UnitTrace;
use custom_fit::prelude::Benchmark;
use custom_fit::sched::{
    prepare, try_compile_core_in, try_compile_core_traced_in, try_modulo_schedule_traced_in, Ddg,
    Fuel, Prepared, SchedScratch,
};
use std::time::Instant;

/// Where the `--check` budgets live.
const BUDGET_FILE: &str = "results/sched_step_budget.json";

/// Timed repetitions; the fastest is reported (the work is
/// deterministic, reps differ only in OS noise).
const REPS: usize = 3;

/// Stratified architecture sample: every datapath width class, cluster
/// counts 1/2/4/8, both port widths, both Level-2 latencies, the full
/// register range. Small enough to run in seconds, wide enough that the
/// scheduler's resource logic (bitmask rows, port masks, cluster moves)
/// all get exercised.
fn stratified() -> Vec<ArchSpec> {
    let specs = [
        (1_u32, 1_u32, 64_u32, 1_u32, 8_u32, 1_u32),
        (2, 1, 64, 1, 4, 1),
        (4, 2, 128, 1, 4, 1),
        (4, 2, 256, 2, 4, 1),
        (8, 2, 128, 1, 4, 4),
        (8, 4, 256, 2, 4, 2),
        (16, 4, 128, 1, 4, 8),
        (16, 8, 512, 4, 2, 4),
    ];
    specs
        .into_iter()
        .filter_map(|(a, m, r, p2, l2, c)| ArchSpec::new(a, m, r, p2, l2, c).ok())
        .collect()
}

/// Seeded-random extras on top of the stratified sample: SplitMix64
/// draws over the axis values, kept when they form a valid spec. Fixed
/// seed, fixed count — the corpus is part of the benchmark's identity.
fn random_extras(n: usize) -> Vec<ArchSpec> {
    let mut rng = cfp_testkit::Rng::new(0xC0DE_5EED);
    let alus = [2_u32, 4, 8, 16];
    let muls = [1_u32, 2, 4, 8];
    let regs = [64_u32, 128, 256, 512];
    let ports = [1_u32, 2, 4];
    let lats = [2_u32, 4, 8];
    let clusters = [1_u32, 2, 4];
    let mut out = Vec::with_capacity(n);
    while out.len() < n {
        let spec = ArchSpec::new(
            *rng.pick(&alus),
            *rng.pick(&muls),
            *rng.pick(&regs),
            *rng.pick(&ports),
            *rng.pick(&lats),
            *rng.pick(&clusters),
        );
        if let Ok(s) = spec {
            out.push(s);
        }
    }
    out
}

/// The kernel corpus: every table benchmark, optimized, at unroll 1 and
/// 2 (unroll 2 doubles the body and is where the ready list earns its
/// keep; deeper unrolls belong to `bench_explore`'s end-to-end run).
fn kernels() -> Vec<(String, custom_fit::ir::Kernel)> {
    let mut out = Vec::new();
    for b in Benchmark::ALL {
        let mut k = b.kernel();
        custom_fit::opt::optimize(&mut k);
        out.push((format!("{b}x1"), k.clone()));
        out.push((format!("{b}x2"), custom_fit::opt::unroll::unroll(&k, 2)));
    }
    out
}

/// One full pass over the corpus: list-schedule every
/// `(kernel, architecture)` unit through the reused scratch, then
/// modulo-schedule the un-unrolled units. Returns the deterministic
/// totals; `prepared` is the pre-lowered corpus so the timed region is
/// the scheduler core, not the frontend.
struct PassTotals {
    units: u64,
    list_steps: u64,
    modulo_units: u64,
    modulo_scheduled: u64,
    modulo_steps: u64,
    ii_attempts: u64,
}

fn run_pass(
    corpus: &[(String, custom_fit::ir::Kernel)],
    machines: &[(ArchSpec, MachineResources)],
    prepared: &[Vec<Prepared>],
    scratch: &mut SchedScratch,
) -> PassTotals {
    let mut t = PassTotals {
        units: 0,
        list_steps: 0,
        modulo_units: 0,
        modulo_scheduled: 0,
        modulo_steps: 0,
        ii_attempts: 0,
    };
    // The pass goes through the traced entry points with a disabled
    // trace (the NullRecorder), so the step budgets below also guard
    // the span bookkeeping: if tracing ever leaked steps or changed a
    // schedule, `--check` would fail.
    let mut trace = UnitTrace::disabled();
    for (ki, (name, _)) in corpus.iter().enumerate() {
        for (mi, (_, machine)) in machines.iter().enumerate() {
            let mut fuel = Fuel::unlimited();
            let core = match try_compile_core_traced_in(
                &prepared[ki][mi],
                machine,
                &mut fuel,
                scratch,
                &mut trace,
            ) {
                Ok(core) => core,
                Err(e) => unreachable!("unlimited fuel cannot exhaust ({name}): {e}"),
            };
            t.units += 1;
            t.list_steps += core.steps;
            // Modulo scheduling overlaps loop iterations; it only makes
            // sense (and only terminates quickly) on un-unrolled bodies,
            // mirroring the pipelining exhibit.
            if name.ends_with("x1") {
                let ddg = Ddg::build_in(&core.assignment.code, scratch);
                let mut mfuel = Fuel::unlimited();
                let ms = match try_modulo_schedule_traced_in(
                    &core.assignment,
                    &ddg,
                    machine,
                    core.length,
                    &mut mfuel,
                    scratch,
                    &mut trace,
                ) {
                    Ok(ms) => ms,
                    Err(e) => unreachable!("unlimited fuel cannot exhaust ({name}): {e}"),
                };
                t.modulo_units += 1;
                t.modulo_steps += mfuel.spent();
                if let Some(ms) = ms {
                    t.modulo_scheduled += 1;
                    t.ii_attempts += u64::from(ms.ii_attempts);
                }
            }
        }
    }
    t
}

/// Pull `"key": <integer>` out of a flat JSON object without a JSON
/// dependency. Good enough for the budget file this binary itself
/// writes.
fn json_u64(text: &str, key: &str) -> Option<u64> {
    let needle = format!("\"{key}\"");
    let at = text.find(&needle)? + needle.len();
    let rest = text[at..].trim_start().strip_prefix(':')?.trim_start();
    let end = rest
        .find(|c: char| !c.is_ascii_digit())
        .unwrap_or(rest.len());
    rest[..end].parse().ok()
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let check = args.iter().any(|a| a == "--check");
    let out = args
        .iter()
        .find(|a| !a.starts_with("--"))
        .cloned()
        .unwrap_or_else(|| "BENCH_sched.json".to_string());

    let corpus = kernels();
    let mut machines: Vec<(ArchSpec, MachineResources)> = Vec::new();
    for spec in stratified().into_iter().chain(random_extras(4)) {
        machines.push((spec, MachineResources::from_spec(&spec)));
    }
    // Lowering is the cacheable `prepare` phase; do it once outside the
    // timed region so the measurement is the scheduler core alone.
    let prepared: Vec<Vec<Prepared>> = corpus
        .iter()
        .map(|(_, k)| machines.iter().map(|(_, m)| prepare(k, m)).collect())
        .collect();
    let mut scratch = SchedScratch::new();

    if check {
        let totals = run_pass(&corpus, &machines, &prepared, &mut scratch);
        let budget = match std::fs::read_to_string(BUDGET_FILE) {
            Ok(text) => text,
            Err(e) => {
                eprintln!("error: cannot read {BUDGET_FILE}: {e}");
                std::process::exit(2);
            }
        };
        let (Some(max_steps), Some(max_attempts)) = (
            json_u64(&budget, "max_list_steps"),
            json_u64(&budget, "max_ii_attempts"),
        ) else {
            eprintln!("error: {BUDGET_FILE} is missing max_list_steps/max_ii_attempts");
            std::process::exit(2);
        };
        println!(
            "list steps {} (budget {max_steps}), modulo II attempts {} (budget {max_attempts})",
            totals.list_steps, totals.ii_attempts
        );
        if totals.list_steps > max_steps || totals.ii_attempts > max_attempts {
            eprintln!("error: scheduler step budget exceeded — the core regressed");
            std::process::exit(1);
        }
        println!("within budget");
        return;
    }

    let mut best_list = f64::INFINITY;
    let mut best_total = f64::INFINITY;
    let mut totals = None;
    for _ in 0..REPS {
        let t0 = Instant::now();
        let pass = run_pass(&corpus, &machines, &prepared, &mut scratch);
        let total_s = t0.elapsed().as_secs_f64();
        // A second, list-only pass isolates the list scheduler from the
        // modulo ablation share of the wall time.
        let t1 = Instant::now();
        for row in &prepared {
            for (mi, (_, machine)) in machines.iter().enumerate() {
                let mut fuel = Fuel::unlimited();
                let _ = try_compile_core_in(&row[mi], machine, &mut fuel, &mut scratch);
            }
        }
        let list_s = t1.elapsed().as_secs_f64();
        best_list = best_list.min(list_s);
        best_total = best_total.min(total_s);
        totals = Some(pass);
    }
    let t = totals.expect("REPS >= 1");

    let json = format!(
        "{{\n  \"benchmark\": \"scheduler core ({} kernels x {} architectures)\",\n  \
           \"reps\": {REPS},\n  \"units\": {},\n  \
           \"list_wall_s\": {:.4},\n  \"list_units_per_s\": {:.0},\n  \
           \"list_steps\": {},\n  \
           \"modulo\": {{\"units\": {}, \"scheduled\": {}, \"steps\": {}, \
           \"ii_attempts\": {}}},\n  \
           \"full_pass_wall_s\": {:.4},\n  \"budget_file\": \"{BUDGET_FILE}\"\n}}\n",
        corpus.len(),
        machines.len(),
        t.units,
        best_list,
        t.units as f64 / best_list,
        t.list_steps,
        t.modulo_units,
        t.modulo_scheduled,
        t.modulo_steps,
        t.ii_attempts,
        best_total,
    );
    std::fs::write(&out, &json).expect("write benchmark report");
    println!(
        "{} list-scheduled units in {:.3}s ({:.0}/s), {} scheduler steps; \
         modulo pipelined {}/{} units with {} II attempts",
        t.units,
        best_list,
        t.units as f64 / best_list,
        t.list_steps,
        t.modulo_scheduled,
        t.modulo_units,
        t.ii_attempts
    );
    println!("wrote {out}");
}
