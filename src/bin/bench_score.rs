//! Wall-clock microbenchmark of the post-schedule scoring + selection
//! pipeline — everything that happens *after* the simulator has measured
//! cycles: cost/derate model evaluation, scatter folding, frontier
//! extraction, and the full selection grid.
//!
//! Two implementations of the same pipeline run over one live
//! exploration of the extended (384-base-point, 1200-arrangement)
//! design space:
//!
//!   * **scalar** — a transcription of the pre-batch code paths: a
//!     machine description rebuilt per cost/derate call, the
//!     HashMap-folded scatter, the in-order frontier scan, and the
//!     closure-based selector that recomputes harmonic means inside
//!     its comparison sort.
//!   * **batch** — the SoA core: [`CostModel::cost_batch`] /
//!     [`CycleModel::derate_batch`] slice passes, one [`EvalBatch`]
//!     build, `EvalBatch::scatter` + [`frontier`], and [`select_batch`]
//!     over the precomputed `su` column.
//!
//! Every output of both passes is folded into an FNV-1a digest; the two
//! digests must be equal (`results_identical`) or the binary exits
//! non-zero. Std-only on purpose (no criterion): it runs under the
//! tier-1 offline build.
//!
//! Usage:
//!   `cargo run --release --bin bench_score [-- <out.json>]` — time both
//!   passes (keep-fastest of 5 reps, 20 pipeline iterations each), write
//!   `BENCH_score.json`, and refresh the `batch_core` row of
//!   `BENCH_explore.json`.
//!
//!   `cargo run --release --bin bench_score -- --check` — no timing:
//!   recompute the scoring-surface digest and fail (exit 1) if it drifts
//!   from `results/score_budget.json` or if the scalar and batch
//!   pipelines ever disagree bit-for-bit. The digest is deterministic on
//!   every platform and thread count, so CI can enforce it without
//!   reading a clock.

use custom_fit::dse::{
    frontier, select_batch, spec_fingerprint, Exploration, ExploreConfig, Range, ScatterPoint,
    Selection,
};
use custom_fit::machine::{ArchSpec, CostModel, CycleModel, DesignSpace};
use custom_fit::prelude::Benchmark;
use std::time::Instant;

/// Where the `--check` digests live.
const BUDGET_FILE: &str = "results/score_budget.json";

/// Timed repetitions; the fastest is reported (the work is
/// deterministic, reps differ only in OS noise).
const REPS: usize = 5;

/// Pipeline iterations inside one timed rep: a single scoring pass is
/// milliseconds, so each rep times a block and reports the per-pass
/// mean.
const ITERS: usize = 20;

/// Cost bounds of the selection grid (baseline-relative, spanning cheap
/// to effectively-unbounded).
const BOUNDS: [f64; 5] = [2.0, 5.0, 10.0, 30.0, 1e9];

/// RANGE back-offs of the selection grid.
const RANGES: [Range; 3] = [Range::Fraction(0.0), Range::Fraction(0.10), Range::Infinite];

/// FNV-1a over every pipeline output, so "same digest" means "same
/// scatter, same frontier, same selections, bit for bit".
struct Digest(u64);

impl Digest {
    fn new() -> Self {
        Digest(0xcbf2_9ce4_8422_2325)
    }
    fn u(&mut self, v: u64) {
        for byte in v.to_le_bytes() {
            self.0 ^= u64::from(byte);
            self.0 = self.0.wrapping_mul(0x0000_0100_0000_01b3);
        }
    }
    fn f(&mut self, v: f64) {
        // Non-finite values collapse to one marker so the digest does
        // not depend on NaN payload bits.
        self.u(if v.is_finite() {
            v.to_bits()
        } else {
            u64::MAX - 1
        });
    }
    fn points(&mut self, pts: &[ScatterPoint]) {
        for p in pts {
            self.u(spec_fingerprint(&p.spec));
            self.f(p.cost);
            self.f(p.speedup);
        }
    }
    fn selection(&mut self, sel: Option<&Selection>) {
        match sel {
            Some(s) => {
                self.u(s.arch_index as u64);
                self.f(s.cost);
                self.f(s.su);
            }
            None => self.u(u64::MAX),
        }
    }
}

/// Transcriptions of the pre-batch scalar code paths, kept verbatim so
/// the benchmark measures what the SoA core actually replaced.
mod oracle {
    use custom_fit::dse::{Exploration, Range, ScatterPoint, Selection};
    use custom_fit::machine::{ArchSpec, CostModel, CycleModel, Mdes, UnitClass};

    /// The old models: same fitted coefficients, but a full machine
    /// description rebuilt on every call, exactly as `CostModel::cost`
    /// and `CycleModel::derate` did before the slice entry points.
    pub struct ScalarModels {
        k: (f64, f64, f64, f64, f64),
        cost_base: f64,
        ab: (f64, f64),
        derate_base: f64,
    }

    impl ScalarModels {
        pub fn new(cost: &CostModel, cycle: &CycleModel) -> Self {
            let mut m = ScalarModels {
                k: cost.coefficients(),
                cost_base: 1.0,
                ab: cycle.coefficients(),
                derate_base: 1.0,
            };
            // The production models normalize by the baseline's raw
            // value computed once at fit time; replicate that here so
            // the per-call work is the per-spec part only.
            m.cost_base = m.raw_cost(&ArchSpec::baseline());
            m.derate_base = m.raw_derate(&ArchSpec::baseline());
            m
        }

        fn raw_cost(&self, spec: &ArchSpec) -> f64 {
            let (k2, k3, k4, k5, k6) = self.k;
            let mdes = Mdes::from_spec(spec);
            let mut total = 0.0;
            for cl in mdes.clusters() {
                let p = f64::from(cl.regfile_ports());
                let y_reg = f64::from(cl.regs) * (k2 * p + k3);
                let y_alu = k4 * f64::from(cl.count(UnitClass::Alu));
                let y_mul = k5 * f64::from(cl.count(UnitClass::Mul));
                total += p * (y_reg + y_alu + y_mul);
            }
            total + k6 * f64::from(spec.clusters - 1)
        }

        pub fn cost(&self, spec: &ArchSpec) -> f64 {
            self.raw_cost(spec) / self.cost_base
        }

        fn raw_derate(&self, spec: &ArchSpec) -> f64 {
            let p = f64::from(Mdes::from_spec(spec).cycle_ports());
            self.ab.0 + self.ab.1 * p * p
        }

        pub fn derate(&self, spec: &ArchSpec) -> f64 {
            self.raw_derate(spec) / self.derate_base
        }
    }

    /// The HashMap-folded scatter (one best arrangement per base
    /// point), as `pareto::scatter` computed it before the SoA rewrite.
    pub fn scatter(exploration: &Exploration, bench: usize) -> Vec<ScatterPoint> {
        use std::collections::HashMap;
        let mut best: HashMap<(u32, u32, u32, u32, u32), ScatterPoint> = HashMap::new();
        for (i, arch) in exploration.archs.iter().enumerate() {
            let s = arch.spec;
            let key = (s.alus, s.muls, s.regs, s.l2_ports, s.l2_latency);
            let p = ScatterPoint {
                spec: s,
                cost: arch.cost,
                speedup: exploration.speedup(i, bench),
            };
            if !p.speedup.is_finite() {
                continue;
            }
            best.entry(key)
                .and_modify(|cur| {
                    let better = p.speedup > cur.speedup + 1e-12
                        || ((p.speedup - cur.speedup).abs() <= 1e-12 && p.cost < cur.cost);
                    if better {
                        *cur = p;
                    }
                })
                .or_insert(p);
        }
        let mut points: Vec<ScatterPoint> = best.into_values().collect();
        points.sort_by(|a, b| a.cost.total_cmp(&b.cost).then(a.spec.cmp(&b.spec)));
        points
    }

    /// The in-order frontier scan over cost-sorted scatter points.
    pub fn frontier(points: &[ScatterPoint]) -> Vec<usize> {
        let mut out = Vec::new();
        let mut best = f64::NEG_INFINITY;
        for (i, p) in points.iter().enumerate() {
            if p.speedup > best + 1e-12 {
                best = p.speedup;
                out.push(i);
            }
        }
        out
    }

    /// The closure-based selector, harmonic means recomputed inside the
    /// comparison sort, as `select` worked before the column rewrite.
    pub fn select(
        exploration: &Exploration,
        target: usize,
        cost_bound: f64,
        range: Range,
    ) -> Option<Selection> {
        let target_su = |a: usize| exploration.speedup(a, target);
        let overall = |a: usize| Exploration::harmonic_mean(&exploration.speedup_row(a));
        let affordable: Vec<usize> = (0..exploration.archs.len())
            .filter(|&a| exploration.archs[a].cost <= cost_bound && overall(a).is_finite())
            .collect();
        if affordable.is_empty() {
            return None;
        }

        let candidates: Vec<usize> = match range {
            Range::Infinite => affordable.clone(),
            Range::Fraction(f) => {
                let best = affordable
                    .iter()
                    .map(|&a| target_su(a))
                    .fold(f64::NEG_INFINITY, f64::max);
                affordable
                    .iter()
                    .copied()
                    .filter(|&a| target_su(a) >= best * (1.0 - f) - 1e-12)
                    .collect()
            }
        };

        let winner = candidates.into_iter().min_by(|&x, &y| {
            overall(y)
                .total_cmp(&overall(x))
                .then(
                    exploration.archs[x]
                        .cost
                        .total_cmp(&exploration.archs[y].cost),
                )
                .then(exploration.archs[x].spec.cmp(&exploration.archs[y].spec))
        })?;

        let speedups = exploration.speedup_row(winner);
        Some(Selection {
            arch_index: winner,
            spec: exploration.archs[winner].spec,
            cost: exploration.archs[winner].cost,
            su: Exploration::harmonic_mean(&speedups),
            speedups,
        })
    }
}

/// One full scalar scoring pass: per-spec model calls, scatter +
/// frontier per benchmark, the whole selection grid. Returns the digest
/// of everything it computed.
fn scalar_pass(ex: &Exploration, specs: &[ArchSpec], models: &oracle::ScalarModels) -> u64 {
    let mut d = Digest::new();
    for s in specs {
        d.f(models.cost(s));
    }
    for s in specs {
        d.f(models.derate(s));
    }
    for b in 0..ex.benches.len() {
        let pts = oracle::scatter(ex, b);
        d.points(&pts);
        for i in oracle::frontier(&pts) {
            d.u(i as u64);
        }
    }
    for target in 0..ex.benches.len() {
        for &bound in &BOUNDS {
            for &range in &RANGES {
                d.selection(oracle::select(ex, target, bound, range).as_ref());
            }
        }
    }
    d.0
}

/// The same pass through the SoA core: slice model entry points, one
/// `EvalBatch` build, column scatter/frontier, `select_batch` grid.
fn batch_pass(ex: &Exploration, specs: &[ArchSpec], cost: &CostModel, cycle: &CycleModel) -> u64 {
    let mut d = Digest::new();
    let mut costs = vec![0.0; specs.len()];
    let mut derates = vec![0.0; specs.len()];
    cost.cost_batch(specs, &mut costs);
    cycle.derate_batch(specs, &mut derates);
    for &c in &costs {
        d.f(c);
    }
    for &v in &derates {
        d.f(v);
    }
    let batch = ex.batch();
    for b in 0..batch.benches() {
        let pts = batch.scatter(b);
        d.points(&pts);
        for i in frontier(&pts) {
            d.u(i as u64);
        }
    }
    for target in 0..batch.benches() {
        for &bound in &BOUNDS {
            for &range in &RANGES {
                d.selection(select_batch(&batch, target, bound, range).as_ref());
            }
        }
    }
    d.0
}

/// The live input: the whole extended space (every cluster arrangement)
/// on three spread benchmarks. Deterministic, thread-count blind.
fn build_exploration() -> Exploration {
    let config = ExploreConfig {
        archs: DesignSpace::extended().all_arrangements(),
        benches: vec![Benchmark::A, Benchmark::D, Benchmark::H],
        ..ExploreConfig::default()
    };
    Exploration::run(&config)
}

/// Pull `"key": <integer>` out of a flat JSON object without a JSON
/// dependency. Good enough for the budget file this binary itself
/// writes (digests are stored as decimal u64).
fn json_u64(text: &str, key: &str) -> Option<u64> {
    let needle = format!("\"{key}\"");
    let at = text.find(&needle)? + needle.len();
    let rest = text[at..].trim_start().strip_prefix(':')?.trim_start();
    let end = rest
        .find(|c: char| !c.is_ascii_digit())
        .unwrap_or(rest.len());
    rest[..end].parse().ok()
}

/// Refresh (or insert) the `batch_core` row of `BENCH_explore.json` so
/// the exploration benchmark report carries the scoring-core numbers
/// alongside the reuse and MDES rows.
fn patch_explore_row(row: &str) {
    let path = "BENCH_explore.json";
    let Ok(text) = std::fs::read_to_string(path) else {
        return; // no report yet — bench_explore has not run here
    };
    let mut out = String::new();
    for line in text.lines() {
        if !line.trim_start().starts_with("\"batch_core\"") {
            out.push_str(line);
            out.push('\n');
        }
    }
    let needle = "  \"results_identical\"";
    if let Some(at) = out.find(needle) {
        out.insert_str(at, &format!("  \"batch_core\": {row},\n"));
        if std::fs::write(path, out).is_ok() {
            println!("updated {path} (batch_core row)");
        }
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let check = args.iter().any(|a| a == "--check");
    let out = args
        .iter()
        .find(|a| !a.starts_with("--"))
        .cloned()
        .unwrap_or_else(|| "BENCH_score.json".to_string());

    let cost = CostModel::paper_calibrated();
    let cycle = CycleModel::paper_calibrated();
    let models = oracle::ScalarModels::new(&cost, &cycle);

    let t0 = Instant::now();
    let ex = build_exploration();
    let eval_s = t0.elapsed().as_secs_f64();
    let specs: Vec<ArchSpec> = ex.archs.iter().map(|a| a.spec).collect();
    let cells = ex.benches.len() * BOUNDS.len() * RANGES.len();

    let scalar_digest = scalar_pass(&ex, &specs, &models);
    let batch_digest = batch_pass(&ex, &specs, &cost, &cycle);
    if scalar_digest != batch_digest {
        eprintln!(
            "error: batch scoring diverged from the scalar pipeline \
             (scalar {scalar_digest:#018x}, batch {batch_digest:#018x})"
        );
        std::process::exit(1);
    }

    if check {
        let budget = match std::fs::read_to_string(BUDGET_FILE) {
            Ok(text) => text,
            Err(e) => {
                eprintln!("error: cannot read {BUDGET_FILE}: {e}");
                std::process::exit(2);
            }
        };
        let (Some(want_digest), Some(want_archs)) = (
            json_u64(&budget, "surface_digest"),
            json_u64(&budget, "archs"),
        ) else {
            eprintln!("error: {BUDGET_FILE} is missing surface_digest/archs");
            std::process::exit(2);
        };
        println!(
            "scoring surface digest {batch_digest} over {} architectures \
             (pinned {want_digest} over {want_archs})",
            specs.len()
        );
        if batch_digest != want_digest || specs.len() as u64 != want_archs {
            eprintln!("error: scoring surface drifted from {BUDGET_FILE}");
            std::process::exit(1);
        }
        println!("scalar and batch pipelines identical; surface matches the pinned digest");
        return;
    }

    let mut best_scalar = f64::INFINITY;
    let mut best_batch = f64::INFINITY;
    for _ in 0..REPS {
        let t = Instant::now();
        for _ in 0..ITERS {
            std::hint::black_box(scalar_pass(&ex, &specs, &models));
        }
        best_scalar = best_scalar.min(t.elapsed().as_secs_f64() / ITERS as f64);
        let t = Instant::now();
        for _ in 0..ITERS {
            std::hint::black_box(batch_pass(&ex, &specs, &cost, &cycle));
        }
        best_batch = best_batch.min(t.elapsed().as_secs_f64() / ITERS as f64);
    }
    let speedup = best_scalar / best_batch;

    let json = format!(
        "{{\n  \"benchmark\": \"post-schedule scoring + selection \
           ({} architectures x {} benchmarks, {cells} selection cells)\",\n  \
           \"reps\": {REPS},\n  \"iters_per_rep\": {ITERS},\n  \
           \"eval_wall_s\": {eval_s:.4},\n  \
           \"scalar_score_wall_s\": {best_scalar:.6},\n  \
           \"batch_score_wall_s\": {best_batch:.6},\n  \
           \"speedup\": {speedup:.2},\n  \
           \"results_identical\": true,\n  \
           \"archs\": {},\n  \"surface_digest\": {batch_digest},\n  \
           \"budget_file\": \"{BUDGET_FILE}\"\n}}\n",
        specs.len(),
        ex.benches.len(),
        specs.len(),
    );
    std::fs::write(&out, &json).expect("write benchmark report");
    println!(
        "scored {} architectures x {} benchmarks: scalar {:.3} ms, batch {:.3} ms \
         ({speedup:.2}x), results identical",
        specs.len(),
        ex.benches.len(),
        best_scalar * 1e3,
        best_batch * 1e3,
    );
    patch_explore_row(&format!(
        "{{\"scalar_score_wall_s\": {best_scalar:.6}, \"batch_score_wall_s\": {best_batch:.6}, \
         \"speedup\": {speedup:.2}, \"results_identical\": true}}"
    ));
    println!("wrote {out}");
}
