//! `cfpd` — the exploration daemon.
//!
//! Serves design-space exploration jobs over a line-delimited JSON
//! protocol on TCP, with a bounded worker pool, shared warm plan and
//! compile caches, per-job deadlines and retries, load shedding, and
//! crash recovery from its state directory. See `cfp-serve` for the
//! protocol and DESIGN.md §15 for the architecture.
//!
//! Usage:
//!   cfpd [--state DIR] [--addr HOST:PORT] [--workers N]
//!        [--high-water N] [--deadline-ms N]
//!
//! Defaults: state `./cfpd-state`, addr `127.0.0.1:0` (ephemeral port —
//! the bound address is printed on stdout), 2 workers, high-water 16,
//! 60000 ms default deadline. Stop it with the `{"op":"shutdown"}`
//! request; a SIGKILLed daemon loses nothing — accepted jobs are
//! journaled and resume on the next start.

use custom_fit::serve::{ServeConfig, Server};
use std::io::Write;

fn usage() -> ! {
    eprintln!(
        "usage: cfpd [--state DIR] [--addr HOST:PORT] [--workers N] \
         [--high-water N] [--deadline-ms N]"
    );
    std::process::exit(2);
}

fn main() {
    let mut cfg = ServeConfig::new("cfpd-state");
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut i = 0;
    while i < args.len() {
        let Some(value) = args.get(i + 1) else {
            usage()
        };
        match args[i].as_str() {
            "--state" => cfg.state_dir = value.into(),
            "--addr" => cfg.addr = value.clone(),
            "--workers" => match value.parse() {
                Ok(n) => cfg.workers = n,
                Err(_) => usage(),
            },
            "--high-water" => match value.parse() {
                Ok(n) => cfg.queue_high_water = n,
                Err(_) => usage(),
            },
            "--deadline-ms" => match value.parse() {
                Ok(n) => cfg.default_deadline_ms = n,
                Err(_) => usage(),
            },
            _ => usage(),
        }
        i += 2;
    }

    let server = match Server::start(cfg) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("cfpd: {e}");
            std::process::exit(1);
        }
    };
    // The recovery test scrapes this line for the ephemeral port, so it
    // must be flushed before any job runs.
    println!("cfpd listening on {}", server.addr());
    if server.recovered() > 0 {
        println!("cfpd recovered {} incomplete job(s)", server.recovered());
    }
    let _ = std::io::stdout().flush();
    server.run();
}
