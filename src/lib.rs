//! # custom-fit — Custom-Fit Processors in Rust
//!
//! A full reproduction of *Custom-Fit Processors: Letting Applications
//! Define Architectures* (Fisher, Faraboschi, Desoli — HP Labs Cambridge,
//! MICRO-29, 1996): an automatic hardware/software codesign loop that
//! searches a space of clustered-VLIW architectures for the one that runs
//! a given application best under a datapath-cost budget.
//!
//! This facade re-exports the whole toolchain:
//!
//! | module | crate | what it is |
//! |---|---|---|
//! | [`ir`] | `cfp-ir` | loop-level IR, interpreter, verifier |
//! | [`frontend`] | `cfp-frontend` | the kernel DSL (lexer → parser → lowering) |
//! | [`opt`] | `cfp-opt` | optimizer (fold, CSE, LICM, mem2reg, DCE, unrolling) |
//! | [`machine`] | `cfp-machine` | architecture specs, cost & cycle-time models, design space |
//! | [`sched`] | `cfp-sched` | VLIW back end: DDG, clustering, list scheduling, pressure, simulator |
//! | [`kernels`] | `cfp-kernels` | the paper's benchmarks (DSL + golden references + data) |
//! | [`dse`] | `cfp-dse` | the exploration, selection, and reporting layer |
//! | [`obs`] | `cfp-obs` | structured observability: recorders, spans, trace summaries |
//! | [`serve`] | `cfp-serve` | the `cfpd` exploration daemon: jobs over TCP, retries, crash recovery |
//!
//! ## Quick start
//!
//! ```
//! use custom_fit::prelude::*;
//!
//! // Compile a kernel for the paper's baseline machine and a custom one.
//! let kernel = compile_kernel(
//!     "kernel scale(in u8 s[], out u8 d[]) { loop i { d[i] = u8((s[i]*3) >> 2); } }",
//!     &[],
//! ).unwrap();
//! let custom = ArchSpec::new(4, 2, 128, 2, 4, 1).unwrap();
//!
//! let base = compile_for(&kernel, &ArchSpec::baseline());
//! let tuned = compile_for(&kernel, &custom);
//! assert!(tuned.cycles_per_iter() < base.cycles_per_iter());
//! ```
//!
//! See `examples/` for end-to-end walkthroughs and `crates/bench` for the
//! binaries that regenerate every table and figure of the paper.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub use cfp_dse as dse;
pub use cfp_frontend as frontend;
pub use cfp_ir as ir;
pub use cfp_kernels as kernels;
pub use cfp_machine as machine;
pub use cfp_obs as obs;
pub use cfp_opt as opt;
pub use cfp_sched as sched;
pub use cfp_serve as serve;

/// Compile a kernel for an architecture (optimizer defaults, no
/// unrolling): the facade's one-call version of the back-end pipeline.
#[must_use]
pub fn compile_for(
    kernel: &cfp_ir::Kernel,
    spec: &cfp_machine::ArchSpec,
) -> cfp_sched::CompileResult {
    let machine = cfp_machine::MachineResources::from_spec(spec);
    cfp_sched::compile(kernel, &machine)
}

/// The most common imports, for examples and quick experiments.
pub mod prelude {
    pub use crate::compile_for;
    pub use cfp_dse::{select, speedup_table, Exploration, ExploreConfig, Range, Selection};
    pub use cfp_frontend::compile_kernel;
    pub use cfp_ir::{Interpreter, Kernel, MemImage};
    pub use cfp_kernels::Benchmark;
    pub use cfp_machine::{ArchSpec, CostModel, CycleModel, DesignSpace, MachineResources};
    pub use cfp_sched::{compile, simulate, simulate_batch};
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn facade_pipeline_works() {
        let k = compile_kernel(
            "kernel k(in u8 s[], out u8 d[]) { loop i { d[i] = u8(s[i] ^ 255); } }",
            &[],
        )
        .unwrap();
        let r = crate::compile_for(&k, &ArchSpec::baseline());
        assert!(r.fits());
    }
}
