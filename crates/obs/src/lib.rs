//! # cfp-obs — std-only structured observability
//!
//! The exploration compiles thousands of `(architecture, benchmark,
//! unroll)` units; when one is slow, fuel-exhausted, or cache-missed,
//! coarse `RunStats` totals cannot say *which* one or *why*. This crate
//! is the tracing layer threaded through the whole stack — frontend,
//! optimizer, scheduler, and sweep — without pulling in tokio or
//! `tracing` (tier-1 stays fully offline):
//!
//! * [`Recorder`] — the sink trait. Instrumented code is generic over
//!   it through [`UnitTrace`] handles; the default [`NullRecorder`]
//!   costs one predicted branch per stage boundary and **zero heap
//!   allocation**, so the sweep's allocation-free steady state survives
//!   instrumentation (proven by `tests/trace_equivalence.rs`).
//! * [`JsonlRecorder`](jsonl::JsonlRecorder) — a lock-sharded in-memory
//!   sink that serializes to JSON Lines. Under its deterministic clock
//!   ([`jsonl::JsonlRecorder::deterministic`]) timestamps are per-unit
//!   monotonic counters, so a trace is byte-stable across runs *and
//!   thread counts* — worker interleaving cannot reorder or re-stamp
//!   anything (the drain sorts by `(unit, seq)`).
//! * [`summary::TraceSummary`] — post-hoc aggregation: per-stage
//!   latency histograms and a per-architecture "why it lost"
//!   attribution table, surfaced by `exhibits --trace-summary` and the
//!   `bench_explore` report.
//!
//! Events are flat spans: one record per completed stage, carrying a
//! start/end stamp and a small field list. Instrumented code keeps
//! fields on the stack (`&[(&str, Value)]`) and formats strings only
//! behind [`UnitTrace::on`] guards, which is what keeps the disabled
//! path allocation-free.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod jsonl;
pub mod summary;

pub use jsonl::JsonlRecorder;

/// One pipeline or sweep stage a span can describe.
///
/// The taxonomy follows the compilation pipeline (parse → lower → opt
/// passes → assign → ddg → list/modulo schedule → regalloc → encode →
/// simulate) plus the sweep's own units (plan build, per-unroll
/// compile, per-`(arch, bench)` unit).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
#[non_exhaustive]
pub enum Stage {
    /// Lexing + parsing DSL source.
    Parse,
    /// Lowering the AST to kernel IR.
    Lower,
    /// One machine-independent optimizer pass (named by a `pass` field).
    Opt,
    /// Building the sweep's optimized/unrolled plan cache.
    PlanBuild,
    /// Lowering a kernel to schedulable loop code (+ pre-assignment DDG).
    Prepare,
    /// BUG-style cluster assignment.
    Assign,
    /// Building the post-assignment data-dependence graph.
    Ddg,
    /// Resource-constrained list scheduling.
    List,
    /// Modulo (software-pipelining) scheduling.
    Modulo,
    /// Register-pressure analysis / allocation.
    Regalloc,
    /// Encoding a schedule into long-instruction words.
    Encode,
    /// Cycle-accurate simulation of a schedule.
    Simulate,
    /// One unroll factor's compilation inside an evaluation sweep.
    Compile,
    /// One `(architecture, benchmark)` evaluation unit.
    Unit,
}

impl Stage {
    /// The stable lowercase token used in the JSONL schema.
    #[must_use]
    pub fn as_str(self) -> &'static str {
        match self {
            Stage::Parse => "parse",
            Stage::Lower => "lower",
            Stage::Opt => "opt",
            Stage::PlanBuild => "plan_build",
            Stage::Prepare => "prepare",
            Stage::Assign => "assign",
            Stage::Ddg => "ddg",
            Stage::List => "list",
            Stage::Modulo => "modulo",
            Stage::Regalloc => "regalloc",
            Stage::Encode => "encode",
            Stage::Simulate => "simulate",
            Stage::Compile => "compile",
            Stage::Unit => "unit",
        }
    }
}

/// A field value. `Copy` except for the borrowed string, so field lists
/// can live on the caller's stack and cost nothing when tracing is off.
#[derive(Debug, Clone, Copy)]
pub enum Value<'a> {
    /// Unsigned counter (steps, cycles, counts).
    U64(u64),
    /// Signed quantity.
    I64(i64),
    /// Floating measurement (serialized with full round-trip precision).
    F64(f64),
    /// Boolean flag.
    Bool(bool),
    /// Borrowed string (format only behind an [`UnitTrace::on`] guard).
    Str(&'a str),
}

/// One completed span, borrowed from the instrumented call site.
#[derive(Debug, Clone, Copy)]
pub struct Event<'a> {
    /// The trace unit this span belongs to (see [`unit`]).
    pub unit: u64,
    /// 1-based sequence number within the unit — with [`Event::unit`],
    /// the deterministic total order of a trace.
    pub seq: u32,
    /// Start stamp (wall nanoseconds, or the unit's tick counter under
    /// the deterministic clock).
    pub start: u64,
    /// End stamp, same clock as [`Event::start`].
    pub end: u64,
    /// What ran.
    pub stage: Stage,
    /// Stage-specific payload, in recording order.
    pub fields: &'a [(&'static str, Value<'a>)],
}

/// A span sink. Implementations must be shareable across worker threads.
pub trait Recorder: Sync {
    /// Whether spans are being kept. Instrumented code checks this
    /// before formatting anything heap-allocating.
    fn enabled(&self) -> bool;
    /// A timestamp. `tick` is the calling unit's own monotonic event
    /// counter; a wall-clock recorder ignores it, the deterministic
    /// clock returns it verbatim (making stamps independent of thread
    /// count and machine speed).
    fn now(&self, tick: u64) -> u64;
    /// Record one completed span.
    fn record(&self, event: &Event<'_>);
}

/// The zero-cost default sink: drops everything.
#[derive(Debug, Clone, Copy, Default)]
pub struct NullRecorder;

impl Recorder for NullRecorder {
    fn enabled(&self) -> bool {
        false
    }
    fn now(&self, _tick: u64) -> u64 {
        0
    }
    fn record(&self, _event: &Event<'_>) {}
}

/// The shared null sink [`UnitTrace::disabled`] borrows from.
pub static NULL: NullRecorder = NullRecorder;

/// A per-unit tracing handle: a recorder reference plus this unit's
/// sequence and tick counters.
///
/// One `UnitTrace` is created per trace unit (a sweep `(arch, bench)`
/// pair, a baseline evaluation, the plan build) and threaded by `&mut`
/// through the pipeline. Because the counters are *per unit*, stamps
/// and sequence numbers never depend on what other threads are doing —
/// that is what makes deterministic traces byte-stable across thread
/// counts.
pub struct UnitTrace<'r> {
    rec: &'r dyn Recorder,
    unit: u64,
    seq: u32,
    ticks: u64,
}

impl std::fmt::Debug for UnitTrace<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("UnitTrace")
            .field("unit", &self.unit)
            .field("seq", &self.seq)
            .field("ticks", &self.ticks)
            .field("on", &self.on())
            .finish()
    }
}

impl<'r> UnitTrace<'r> {
    /// A handle for `unit` recording into `rec`.
    #[must_use]
    pub fn new(rec: &'r dyn Recorder, unit: u64) -> Self {
        UnitTrace {
            rec,
            unit,
            seq: 0,
            ticks: 0,
        }
    }

    /// A handle that records nothing (borrows the shared [`NULL`] sink).
    /// This is what every untraced entry point passes down.
    #[must_use]
    pub fn disabled() -> UnitTrace<'static> {
        UnitTrace::new(&NULL, 0)
    }

    /// Whether the sink keeps spans. Guard any heap-allocating field
    /// preparation (string formatting, joins) behind this.
    #[must_use]
    pub fn on(&self) -> bool {
        self.rec.enabled()
    }

    /// The unit id this handle records under.
    #[must_use]
    pub fn unit(&self) -> u64 {
        self.unit
    }

    /// Take a start stamp for a stage about to run. Returns 0 (and
    /// advances nothing) when tracing is off.
    #[must_use]
    pub fn start(&mut self) -> u64 {
        if !self.on() {
            return 0;
        }
        self.ticks += 1;
        self.rec.now(self.ticks)
    }

    /// Record a completed stage that began at `start` (from
    /// [`UnitTrace::start`]). No-op when tracing is off — the field
    /// slice is stack-built by the caller, so the disabled path
    /// allocates nothing.
    pub fn stage(&mut self, stage: Stage, start: u64, fields: &[(&'static str, Value<'_>)]) {
        if !self.on() {
            return;
        }
        self.ticks += 1;
        let end = self.rec.now(self.ticks);
        self.seq += 1;
        self.rec.record(&Event {
            unit: self.unit,
            seq: self.seq,
            start,
            end,
            stage,
            fields,
        });
    }
}

/// The trace-unit id scheme shared by the exploration and the readers.
///
/// Sweep units come first (their id is the flat `(arch, bench)` index),
/// then baseline evaluations, then the plan build — so a drained trace
/// sorted by `(unit, seq)` reads in sweep order.
pub mod unit {
    /// Bit marking a baseline evaluation unit.
    pub const BASELINE_BIT: u64 = 1 << 61;
    /// The plan-build pseudo-unit.
    pub const PLAN: u64 = 1 << 62;

    /// The id of sweep unit `i` (flat `arch * benches + bench` index).
    #[must_use]
    pub fn sweep(i: usize) -> u64 {
        i as u64
    }

    /// The id of the baseline evaluation of benchmark column `b`.
    #[must_use]
    pub fn baseline(b: usize) -> u64 {
        BASELINE_BIT | b as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Mutex;

    /// The parts of an [`Event`] a contract test compares.
    type EventRow = (u64, u32, u64, u64, Stage, usize);

    /// A sink that counts calls, for contract tests.
    #[derive(Default)]
    struct Counting {
        events: Mutex<Vec<EventRow>>,
    }

    impl Recorder for Counting {
        fn enabled(&self) -> bool {
            true
        }
        fn now(&self, tick: u64) -> u64 {
            tick
        }
        fn record(&self, e: &Event<'_>) {
            self.events.lock().unwrap().push((
                e.unit,
                e.seq,
                e.start,
                e.end,
                e.stage,
                e.fields.len(),
            ));
        }
    }

    #[test]
    fn disabled_trace_is_inert() {
        let mut tr = UnitTrace::disabled();
        assert!(!tr.on());
        assert_eq!(tr.start(), 0);
        tr.stage(Stage::List, 0, &[("steps", Value::U64(9))]);
        // Nothing observable happened; the counters never advanced.
        assert_eq!(tr.seq, 0);
        assert_eq!(tr.ticks, 0);
    }

    #[test]
    fn seq_and_ticks_advance_per_unit() {
        let rec = Counting::default();
        let mut tr = UnitTrace::new(&rec, 7);
        let t0 = tr.start();
        tr.stage(Stage::Assign, t0, &[]);
        let t1 = tr.start();
        tr.stage(Stage::List, t1, &[("steps", Value::U64(1))]);
        let events = rec.events.lock().unwrap();
        assert_eq!(
            *events,
            vec![(7, 1, 1, 2, Stage::Assign, 0), (7, 2, 3, 4, Stage::List, 1),]
        );
    }

    #[test]
    fn stage_tokens_are_unique() {
        let all = [
            Stage::Parse,
            Stage::Lower,
            Stage::Opt,
            Stage::PlanBuild,
            Stage::Prepare,
            Stage::Assign,
            Stage::Ddg,
            Stage::List,
            Stage::Modulo,
            Stage::Regalloc,
            Stage::Encode,
            Stage::Simulate,
            Stage::Compile,
            Stage::Unit,
        ];
        let mut tokens: Vec<&str> = all.iter().map(|s| s.as_str()).collect();
        tokens.sort_unstable();
        tokens.dedup();
        assert_eq!(tokens.len(), all.len());
    }

    #[test]
    fn unit_id_ranges_do_not_collide() {
        assert!(unit::sweep(usize::MAX >> 4) < unit::baseline(0));
        assert!(unit::baseline(1 << 20) < unit::PLAN);
    }
}
