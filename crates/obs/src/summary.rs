//! Post-hoc trace aggregation: per-stage latency histograms and the
//! per-architecture "why it lost" attribution table.
//!
//! A raw trace answers "what did unit 317 do"; this module answers the
//! two questions the sweep's operators actually ask — *where does the
//! time go* (per-stage histograms over every span) and *why did this
//! architecture lose* (per-arch rollup of failures, fuel exhaustion,
//! spills, and unroll limits). Both tables render deterministically:
//! rows sort by key, so two summaries of the same trace are identical
//! text.

use crate::jsonl::{OwnedEvent, OwnedValue};
use crate::Stage;
use std::collections::BTreeMap;
use std::fmt::Write;

/// Histogram bucket count: log2 buckets 0..=14, plus a tail bucket.
pub const BUCKETS: usize = 16;

/// Latency statistics of one stage across a trace.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StageStats {
    /// The stage token (see [`Stage::as_str`]).
    pub stage: &'static str,
    /// Spans recorded.
    pub count: u64,
    /// Sum of span durations, in the trace's clock units.
    pub total: u64,
    /// Longest single span.
    pub max: u64,
    /// Log2-bucketed duration histogram: bucket `b` holds spans with
    /// `floor(log2(duration)) == b - 1` (bucket 0 is duration 0); the
    /// last bucket absorbs the tail.
    pub hist: [u64; BUCKETS],
}

impl StageStats {
    fn new(stage: &'static str) -> Self {
        StageStats {
            stage,
            count: 0,
            total: 0,
            max: 0,
            hist: [0; BUCKETS],
        }
    }

    fn add(&mut self, duration: u64) {
        self.count += 1;
        self.total += duration;
        self.max = self.max.max(duration);
        let bucket = if duration == 0 {
            0
        } else {
            ((64 - duration.leading_zeros()) as usize).min(BUCKETS - 1)
        };
        self.hist[bucket] += 1;
    }
}

/// One architecture's rollup across its `(arch, benchmark)` units.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ArchRow {
    /// The architecture, rendered as its spec string.
    pub arch: String,
    /// Units attributed to this architecture.
    pub units: u64,
    /// Units that produced a measurement.
    pub done: u64,
    /// Units quarantined.
    pub failed: u64,
    /// The subset of `failed` that exhausted its fuel budget.
    pub fuel_exhausted: u64,
    /// Done units whose un-unrolled kernel already spilled.
    pub spilled: u64,
    /// Largest unroll factor any unit settled on.
    pub max_unroll: u64,
    /// Compile lookups served from the cross-unit cache.
    pub cache_hits: u64,
    /// Scheduler steps charged to this architecture's units.
    pub steps: u64,
    /// The one-line attribution: why this architecture lost (or did
    /// not).
    pub verdict: &'static str,
}

/// The aggregated view of one trace.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TraceSummary {
    /// Per-stage latency statistics, sorted by stage token.
    pub stages: Vec<StageStats>,
    /// Per-architecture attribution, sorted by spec string.
    pub archs: Vec<ArchRow>,
}

/// Mutable accumulation state behind one [`ArchRow`].
#[derive(Debug, Default)]
struct ArchAcc {
    units: u64,
    done: u64,
    failed: u64,
    fuel_exhausted: u64,
    spilled: u64,
    stuck_at_u1: u64,
    max_unroll: u64,
    cache_hits: u64,
    steps: u64,
}

impl ArchAcc {
    fn verdict(&self) -> &'static str {
        if self.failed > 0 {
            if self.fuel_exhausted == self.failed {
                "fuel-exhausted"
            } else {
                "quarantined"
            }
        } else if self.spilled > 0 {
            "register-starved"
        } else if self.done > 0 && self.stuck_at_u1 == self.done {
            "unroll-limited"
        } else {
            "healthy"
        }
    }
}

impl TraceSummary {
    /// Aggregate a drained trace (any order; events are keyed by unit).
    #[must_use]
    pub fn from_events(events: &[OwnedEvent]) -> Self {
        let mut stages: BTreeMap<&'static str, StageStats> = BTreeMap::new();
        for e in events {
            stages
                .entry(e.stage.as_str())
                .or_insert_with(|| StageStats::new(e.stage.as_str()))
                .add(e.duration());
        }

        // Unit events name the architecture; everything else is
        // attributed through its unit id.
        let mut unit_arch: BTreeMap<u64, String> = BTreeMap::new();
        for e in events {
            if e.stage == Stage::Unit {
                if let Some(arch) = e.field("arch").and_then(OwnedValue::as_str) {
                    unit_arch.insert(e.unit, arch.to_owned());
                }
            }
        }

        let mut accs: BTreeMap<String, ArchAcc> = BTreeMap::new();
        for e in events {
            let Some(arch) = unit_arch.get(&e.unit) else {
                continue;
            };
            let acc = accs.entry(arch.clone()).or_default();
            match e.stage {
                Stage::Unit => {
                    acc.units += 1;
                    let outcome = e.field("outcome").and_then(OwnedValue::as_str);
                    if outcome == Some("done") {
                        acc.done += 1;
                        let unroll = e.field("unroll").and_then(OwnedValue::as_u64).unwrap_or(1);
                        acc.max_unroll = acc.max_unroll.max(unroll);
                        if e.field("spilled").and_then(OwnedValue::as_bool) == Some(true) {
                            acc.spilled += 1;
                        }
                        if unroll == 1 {
                            acc.stuck_at_u1 += 1;
                        }
                    } else {
                        acc.failed += 1;
                        if e.field("fail").and_then(OwnedValue::as_str) == Some("fuel") {
                            acc.fuel_exhausted += 1;
                        }
                    }
                }
                Stage::Compile => {
                    if e.field("cache").and_then(OwnedValue::as_str) == Some("hit") {
                        acc.cache_hits += 1;
                    }
                    acc.steps += e.field("steps").and_then(OwnedValue::as_u64).unwrap_or(0);
                }
                _ => {}
            }
        }

        TraceSummary {
            stages: stages.into_values().collect(),
            archs: accs
                .into_iter()
                .map(|(arch, acc)| ArchRow {
                    verdict: acc.verdict(),
                    arch,
                    units: acc.units,
                    done: acc.done,
                    failed: acc.failed,
                    fuel_exhausted: acc.fuel_exhausted,
                    spilled: acc.spilled,
                    max_unroll: acc.max_unroll,
                    cache_hits: acc.cache_hits,
                    steps: acc.steps,
                })
                .collect(),
        }
    }

    /// Render both tables as deterministic plain text.
    #[must_use]
    pub fn render(&self) -> String {
        let mut out = String::new();
        out.push_str("Per-stage latency (trace clock units)\n");
        let mut rows: Vec<Vec<String>> = Vec::new();
        for s in &self.stages {
            rows.push(vec![
                s.stage.to_owned(),
                s.count.to_string(),
                s.total.to_string(),
                s.max.to_string(),
                hist_cells(&s.hist),
            ]);
        }
        render_table(
            &mut out,
            &["stage", "count", "total", "max", "hist(log2 buckets)"],
            &rows,
        );
        out.push('\n');
        out.push_str("Per-architecture attribution (why it lost)\n");
        let mut rows: Vec<Vec<String>> = Vec::new();
        for a in &self.archs {
            rows.push(vec![
                a.arch.clone(),
                a.units.to_string(),
                a.done.to_string(),
                a.failed.to_string(),
                a.fuel_exhausted.to_string(),
                a.spilled.to_string(),
                a.max_unroll.to_string(),
                a.cache_hits.to_string(),
                a.steps.to_string(),
                a.verdict.to_owned(),
            ]);
        }
        render_table(
            &mut out,
            &[
                "arch", "units", "done", "fail", "fuel", "spill", "maxu", "hits", "steps",
                "verdict",
            ],
            &rows,
        );
        out
    }
}

/// Nonzero histogram buckets as `bucket:count` pairs.
fn hist_cells(hist: &[u64; BUCKETS]) -> String {
    let mut s = String::new();
    for (b, &n) in hist.iter().enumerate() {
        if n > 0 {
            if !s.is_empty() {
                s.push(' ');
            }
            let _ = write!(s, "{b}:{n}");
        }
    }
    s
}

/// Column-aligned plain text: first column left-aligned, the rest
/// right-aligned, except a final non-numeric column which stays left.
fn render_table(out: &mut String, headers: &[&str], rows: &[Vec<String>]) {
    let cols = headers.len();
    let mut widths: Vec<usize> = headers.iter().map(|h| h.len()).collect();
    for row in rows {
        for (c, cell) in row.iter().enumerate() {
            widths[c] = widths[c].max(cell.len());
        }
    }
    let mut line = |cells: Vec<&str>| {
        for (c, cell) in cells.iter().enumerate() {
            if c > 0 {
                out.push_str("  ");
            }
            if c == 0 || c == cols - 1 {
                // Left-aligned; no trailing padding on the last column.
                if c == cols - 1 {
                    out.push_str(cell);
                } else {
                    let _ = write!(out, "{cell:<width$}", width = widths[c]);
                }
            } else {
                let _ = write!(out, "{cell:>width$}", width = widths[c]);
            }
        }
        out.push('\n');
    };
    line(headers.to_vec());
    for row in rows {
        line(row.iter().map(String::as_str).collect());
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::jsonl::JsonlRecorder;
    use crate::{Stage, UnitTrace, Value};

    fn demo_trace() -> JsonlRecorder {
        let rec = JsonlRecorder::deterministic();
        // Unit 0: healthy on arch X, unroll 4, one cache hit.
        let mut tr = UnitTrace::new(&rec, 0);
        let t = tr.start();
        tr.stage(
            Stage::Compile,
            t,
            &[
                ("unroll", Value::U64(1)),
                ("cache", Value::Str("miss")),
                ("steps", Value::U64(100)),
            ],
        );
        let t = tr.start();
        tr.stage(
            Stage::Compile,
            t,
            &[
                ("unroll", Value::U64(4)),
                ("cache", Value::Str("hit")),
                ("steps", Value::U64(300)),
            ],
        );
        let t = tr.start();
        tr.stage(
            Stage::Unit,
            t,
            &[
                ("arch", Value::Str("(4 2 128 1 4 1)")),
                ("outcome", Value::Str("done")),
                ("unroll", Value::U64(4)),
                ("spilled", Value::Bool(false)),
            ],
        );
        // Unit 1: fuel-exhausted on arch Y.
        let mut tr = UnitTrace::new(&rec, 1);
        let t = tr.start();
        tr.stage(
            Stage::Unit,
            t,
            &[
                ("arch", Value::Str("(16 4 128 1 4 8)")),
                ("outcome", Value::Str("failed")),
                ("fail", Value::Str("fuel")),
            ],
        );
        rec
    }

    #[test]
    fn attribution_rolls_up_by_architecture() {
        let rec = demo_trace();
        let sum = TraceSummary::from_events(&rec.events());
        assert_eq!(sum.archs.len(), 2);
        let healthy = &sum.archs[0];
        assert_eq!(healthy.arch, "(16 4 128 1 4 8)");
        assert_eq!(healthy.verdict, "fuel-exhausted");
        let ok = &sum.archs[1];
        assert_eq!(ok.arch, "(4 2 128 1 4 1)");
        assert_eq!(ok.verdict, "healthy");
        assert_eq!(ok.cache_hits, 1);
        assert_eq!(ok.steps, 400);
        assert_eq!(ok.max_unroll, 4);
    }

    #[test]
    fn stage_histograms_count_every_span() {
        let rec = demo_trace();
        let sum = TraceSummary::from_events(&rec.events());
        let compile = sum.stages.iter().find(|s| s.stage == "compile").unwrap();
        assert_eq!(compile.count, 2);
        assert_eq!(compile.hist.iter().sum::<u64>(), 2);
        let unit = sum.stages.iter().find(|s| s.stage == "unit").unwrap();
        assert_eq!(unit.count, 2);
    }

    #[test]
    fn render_is_deterministic() {
        let rec = demo_trace();
        let events = rec.events();
        let a = TraceSummary::from_events(&events).render();
        let b = TraceSummary::from_events(&events).render();
        assert_eq!(a, b);
        assert!(a.contains("why it lost"));
        assert!(a.contains("fuel-exhausted"));
        // No trailing whitespace anywhere (byte-stable goldens depend
        // on it).
        for line in a.lines() {
            assert_eq!(line, line.trim_end());
        }
    }

    #[test]
    fn histogram_buckets_are_log2() {
        let mut s = StageStats::new("x");
        s.add(0);
        s.add(1);
        s.add(2);
        s.add(3);
        s.add(1 << 40);
        assert_eq!(s.hist[0], 1);
        assert_eq!(s.hist[1], 1, "duration 1 -> bucket 1");
        assert_eq!(s.hist[2], 2, "durations 2..=3 -> bucket 2");
        assert_eq!(s.hist[BUCKETS - 1], 1, "tail bucket absorbs the rest");
        assert_eq!(s.max, 1 << 40);
    }

    #[test]
    fn events_without_a_unit_event_are_unattributed() {
        let rec = JsonlRecorder::deterministic();
        let mut tr = UnitTrace::new(&rec, 9);
        let t = tr.start();
        tr.stage(Stage::List, t, &[("steps", Value::U64(5))]);
        let sum = TraceSummary::from_events(&rec.events());
        assert!(sum.archs.is_empty());
        assert_eq!(sum.stages.len(), 1);
    }
}
