//! The JSON Lines trace sink.
//!
//! [`JsonlRecorder`] buffers owned copies of every span in a small set
//! of mutex shards (sharded by unit id, so concurrent workers rarely
//! contend) and serializes on demand. The drain sorts by `(unit, seq)`
//! — the per-unit deterministic order — so the serialized trace does
//! not depend on which worker recorded what first.
//!
//! Two clocks:
//! * **wall** ([`JsonlRecorder::new`]) — nanoseconds since the recorder
//!   was created; the real-profiling mode.
//! * **deterministic** ([`JsonlRecorder::deterministic`]) — the calling
//!   unit's own event counter. Stamps are then a pure function of the
//!   unit's work, so a trace is byte-stable across runs and thread
//!   counts (pinned by a golden-file test).

use crate::{Event, Recorder, Stage, Value};
use std::sync::{Mutex, PoisonError};
use std::time::Instant;

/// Number of buffer shards. Units hash by id, so neighbouring sweep
/// units land in different shards and workers rarely share a lock.
const SHARDS: usize = 16;

#[derive(Debug)]
enum Clock {
    Wall(Instant),
    Deterministic,
}

/// An owned field value (see [`Value`] for the borrowed form).
#[derive(Debug, Clone, PartialEq)]
pub enum OwnedValue {
    /// Unsigned counter.
    U64(u64),
    /// Signed quantity.
    I64(i64),
    /// Floating measurement.
    F64(f64),
    /// Boolean flag.
    Bool(bool),
    /// Owned string.
    Str(String),
}

impl OwnedValue {
    fn from_value(v: &Value<'_>) -> Self {
        match *v {
            Value::U64(x) => OwnedValue::U64(x),
            Value::I64(x) => OwnedValue::I64(x),
            Value::F64(x) => OwnedValue::F64(x),
            Value::Bool(x) => OwnedValue::Bool(x),
            Value::Str(s) => OwnedValue::Str(s.to_owned()),
        }
    }

    /// The string payload, if this is a string field.
    #[must_use]
    pub fn as_str(&self) -> Option<&str> {
        match self {
            OwnedValue::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The value as a u64, if it is an unsigned counter.
    #[must_use]
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            OwnedValue::U64(x) => Some(*x),
            _ => None,
        }
    }

    /// The value as a bool, if it is a flag.
    #[must_use]
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            OwnedValue::Bool(x) => Some(*x),
            _ => None,
        }
    }
}

/// One buffered span, owned by the recorder.
#[derive(Debug, Clone, PartialEq)]
pub struct OwnedEvent {
    /// Trace unit id.
    pub unit: u64,
    /// Sequence number within the unit.
    pub seq: u32,
    /// Start stamp.
    pub start: u64,
    /// End stamp.
    pub end: u64,
    /// The stage that ran.
    pub stage: Stage,
    /// Payload fields, recording order.
    pub fields: Vec<(&'static str, OwnedValue)>,
}

impl OwnedEvent {
    /// Look up a field by name.
    #[must_use]
    pub fn field(&self, name: &str) -> Option<&OwnedValue> {
        self.fields.iter().find(|(n, _)| *n == name).map(|(_, v)| v)
    }

    /// The span's duration in its clock's units.
    #[must_use]
    pub fn duration(&self) -> u64 {
        self.end.saturating_sub(self.start)
    }
}

/// A lock-sharded, in-memory JSON Lines sink.
#[derive(Debug)]
pub struct JsonlRecorder {
    clock: Clock,
    shards: Vec<Mutex<Vec<OwnedEvent>>>,
}

impl Default for JsonlRecorder {
    fn default() -> Self {
        Self::new()
    }
}

impl JsonlRecorder {
    /// A recorder stamping wall nanoseconds since creation.
    #[must_use]
    pub fn new() -> Self {
        Self::with_clock(Clock::Wall(Instant::now()))
    }

    /// A recorder stamping each unit's own event counter: traces are
    /// then byte-stable across runs and thread counts.
    #[must_use]
    pub fn deterministic() -> Self {
        Self::with_clock(Clock::Deterministic)
    }

    fn with_clock(clock: Clock) -> Self {
        JsonlRecorder {
            clock,
            shards: (0..SHARDS).map(|_| Mutex::new(Vec::new())).collect(),
        }
    }

    /// Total spans buffered so far.
    #[must_use]
    pub fn len(&self) -> usize {
        self.shards
            .iter()
            .map(|s| s.lock().unwrap_or_else(PoisonError::into_inner).len())
            .sum()
    }

    /// Whether nothing has been recorded.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Snapshot every buffered span, sorted by `(unit, seq)` — the
    /// deterministic per-unit order, independent of recording
    /// interleaving.
    #[must_use]
    pub fn events(&self) -> Vec<OwnedEvent> {
        let mut all: Vec<OwnedEvent> = self
            .shards
            .iter()
            .flat_map(|s| {
                s.lock()
                    .unwrap_or_else(PoisonError::into_inner)
                    .iter()
                    .cloned()
                    .collect::<Vec<_>>()
            })
            .collect();
        all.sort_by_key(|e| (e.unit, e.seq));
        all
    }

    /// Serialize the sorted trace to JSON Lines.
    #[must_use]
    pub fn to_jsonl(&self) -> String {
        let mut out = String::new();
        for e in self.events() {
            write_event(&mut out, &e);
            out.push('\n');
        }
        out
    }
}

impl Recorder for JsonlRecorder {
    fn enabled(&self) -> bool {
        true
    }

    fn now(&self, tick: u64) -> u64 {
        match &self.clock {
            Clock::Wall(anchor) => u64::try_from(anchor.elapsed().as_nanos()).unwrap_or(u64::MAX),
            Clock::Deterministic => tick,
        }
    }

    fn record(&self, event: &Event<'_>) {
        let owned = OwnedEvent {
            unit: event.unit,
            seq: event.seq,
            start: event.start,
            end: event.end,
            stage: event.stage,
            fields: event
                .fields
                .iter()
                .map(|(n, v)| (*n, OwnedValue::from_value(v)))
                .collect(),
        };
        let shard = (event.unit as usize) % SHARDS;
        self.shards[shard]
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .push(owned);
    }
}

/// Serialize one event as a single JSON object. The schema is flat:
/// the fixed keys `unit`, `seq`, `stage`, `t0`, `t1`, then the span's
/// fields inline, in recording order.
fn write_event(out: &mut String, e: &OwnedEvent) {
    use std::fmt::Write;
    let _ = write!(
        out,
        "{{\"unit\":{},\"seq\":{},\"stage\":\"{}\",\"t0\":{},\"t1\":{}",
        e.unit,
        e.seq,
        e.stage.as_str(),
        e.start,
        e.end
    );
    for (name, value) in &e.fields {
        let _ = write!(out, ",\"{name}\":");
        match value {
            OwnedValue::U64(x) => {
                let _ = write!(out, "{x}");
            }
            OwnedValue::I64(x) => {
                let _ = write!(out, "{x}");
            }
            OwnedValue::F64(x) => {
                // `{:?}` is shortest-round-trip and keeps a decimal
                // point, so readers see a float; non-finite values are
                // not JSON numbers and become null.
                if x.is_finite() {
                    let _ = write!(out, "{x:?}");
                } else {
                    out.push_str("null");
                }
            }
            OwnedValue::Bool(x) => {
                out.push_str(if *x { "true" } else { "false" });
            }
            OwnedValue::Str(s) => {
                out.push('"');
                escape_into(out, s);
                out.push('"');
            }
        }
    }
    out.push('}');
}

/// Minimal JSON string escaping (quotes, backslashes, control chars).
fn escape_into(out: &mut String, s: &str) {
    use std::fmt::Write;
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::UnitTrace;

    #[test]
    fn schema_is_flat_and_stable_under_the_deterministic_clock() {
        let rec = JsonlRecorder::deterministic();
        let mut tr = UnitTrace::new(&rec, 3);
        let t0 = tr.start();
        tr.stage(
            Stage::Compile,
            t0,
            &[
                ("unroll", Value::U64(4)),
                ("cache", Value::Str("miss")),
                ("fits", Value::Bool(true)),
                ("cpo", Value::F64(2.5)),
                ("delta", Value::I64(-3)),
            ],
        );
        assert_eq!(
            rec.to_jsonl(),
            "{\"unit\":3,\"seq\":1,\"stage\":\"compile\",\"t0\":1,\"t1\":2,\
             \"unroll\":4,\"cache\":\"miss\",\"fits\":true,\"cpo\":2.5,\"delta\":-3}\n"
        );
    }

    #[test]
    fn drain_order_is_unit_then_seq_regardless_of_recording_order() {
        let rec = JsonlRecorder::deterministic();
        // Record units out of order, as racing workers would.
        let mut b = UnitTrace::new(&rec, 17);
        let t = b.start();
        b.stage(Stage::List, t, &[]);
        let mut a = UnitTrace::new(&rec, 2);
        let t = a.start();
        a.stage(Stage::List, t, &[]);
        let t = a.start();
        a.stage(Stage::Regalloc, t, &[]);
        let events = rec.events();
        let keys: Vec<(u64, u32)> = events.iter().map(|e| (e.unit, e.seq)).collect();
        assert_eq!(keys, vec![(2, 1), (2, 2), (17, 1)]);
    }

    #[test]
    fn non_finite_floats_become_null() {
        let rec = JsonlRecorder::deterministic();
        let mut tr = UnitTrace::new(&rec, 0);
        let t0 = tr.start();
        tr.stage(Stage::Unit, t0, &[("cpo", Value::F64(f64::NAN))]);
        assert!(rec.to_jsonl().contains("\"cpo\":null"));
    }

    #[test]
    fn strings_are_escaped() {
        let mut s = String::new();
        escape_into(&mut s, "a\"b\\c\nd\u{1}");
        assert_eq!(s, "a\\\"b\\\\c\\nd\\u0001");
    }

    #[test]
    fn wall_clock_stamps_are_monotonic() {
        let rec = JsonlRecorder::new();
        let mut tr = UnitTrace::new(&rec, 0);
        let t0 = tr.start();
        tr.stage(Stage::Parse, t0, &[]);
        let e = &rec.events()[0];
        assert!(e.end >= e.start);
    }

    #[test]
    fn field_lookup_and_duration() {
        let rec = JsonlRecorder::deterministic();
        let mut tr = UnitTrace::new(&rec, 0);
        let t0 = tr.start();
        tr.stage(Stage::List, t0, &[("steps", Value::U64(42))]);
        let e = &rec.events()[0];
        assert_eq!(e.field("steps").and_then(OwnedValue::as_u64), Some(42));
        assert_eq!(e.field("missing"), None);
        assert_eq!(e.duration(), 1);
    }
}
