//! The typed error layer of the exploration service, in the taxonomy
//! style of `cfp_dse::error`.
//!
//! Two families, split by blast radius:
//!
//! * [`JobError`] — one job failing. This is the type the retry ladder
//!   classifies: [`JobError::is_transient`] names the exact set of
//!   causes worth retrying (infrastructure wobble — a lost worker, an
//!   unreadable or corrupt journal), and everything else fails fast,
//!   because a deterministic failure retried is the same failure paid
//!   for twice.
//! * [`ServeError`] — the daemon itself being unable to serve (bind
//!   failure, unusable state directory). These abort startup; nothing
//!   retries them.

use cfp_dse::{CheckpointError, ExploreError, FailReason};
use std::error::Error;
use std::fmt;
use std::path::PathBuf;

/// Why one accepted job produced no result.
#[derive(Debug)]
pub enum JobError {
    /// The exploration run itself failed (empty config, failed
    /// baseline, unusable checkpoint journal, lost worker).
    Explore(ExploreError),
    /// The job's thread panicked outside the unit quarantine and was
    /// caught at the job boundary — the job's own blast radius, never
    /// the daemon's.
    Panicked(FailReason),
    /// The wall-clock watchdog fired before the job finished. The
    /// job's thread is abandoned, not joined — see the server docs for
    /// why that leaves the worker pool healthy.
    DeadlineExceeded {
        /// The deadline that was exceeded.
        ms: u64,
    },
}

impl JobError {
    /// Whether the retry ladder should try this job again.
    ///
    /// Transient means the *infrastructure* failed, so a retry can
    /// legitimately see different conditions: a worker thread lost
    /// outside the quarantine, or a checkpoint journal that could not
    /// be read (`Io`) or parsed (`Corrupt` — the retry path removes the
    /// bad journal first). Everything deterministic — fuel exhaustion
    /// surfacing as a failed baseline, a panic quarantine, a config
    /// fingerprint mismatch, a deadline computed from the job's own
    /// budget — reproduces identically on every retry and fails fast.
    #[must_use]
    pub fn is_transient(&self) -> bool {
        matches!(
            self,
            JobError::Explore(ExploreError::WorkerLost)
                | JobError::Explore(ExploreError::Checkpoint(
                    CheckpointError::Io { .. } | CheckpointError::Corrupt { .. }
                ))
        )
    }

    /// Whether the failure is a corrupt checkpoint journal — the one
    /// transient cause whose retry needs cleanup (remove the journal)
    /// rather than just another attempt.
    #[must_use]
    pub fn is_corrupt_checkpoint(&self) -> bool {
        matches!(
            self,
            JobError::Explore(ExploreError::Checkpoint(CheckpointError::Corrupt { .. }))
        )
    }

    /// Stable one-word class token for the wire and the journals.
    #[must_use]
    pub fn token(&self) -> &'static str {
        match self {
            JobError::Explore(ExploreError::EmptyConfig) => "empty_config",
            JobError::Explore(ExploreError::BaselineFailed(_)) => "baseline_failed",
            JobError::Explore(ExploreError::WorkerLost) => "worker_lost",
            JobError::Explore(ExploreError::Checkpoint(e)) => match e {
                CheckpointError::Io { .. } => "checkpoint_io",
                CheckpointError::Corrupt { .. } => "checkpoint_corrupt",
                CheckpointError::Mismatch { .. } => "checkpoint_mismatch",
                CheckpointError::Exists(_) => "checkpoint_exists",
            },
            JobError::Panicked(_) => "panic",
            JobError::DeadlineExceeded { .. } => "deadline",
        }
    }
}

impl fmt::Display for JobError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            JobError::Explore(e) => write!(f, "{e}"),
            JobError::Panicked(r) => write!(f, "job panicked: {}", r.message),
            JobError::DeadlineExceeded { ms } => {
                write!(f, "job exceeded its {ms} ms deadline")
            }
        }
    }
}

impl Error for JobError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            JobError::Explore(e) => Some(e),
            _ => None,
        }
    }
}

impl From<ExploreError> for JobError {
    fn from(e: ExploreError) -> Self {
        JobError::Explore(e)
    }
}

/// The daemon being unable to serve at all.
#[derive(Debug)]
pub enum ServeError {
    /// Binding or accepting on the listen socket failed.
    Listen {
        /// The address that was requested.
        addr: String,
        /// The underlying I/O error.
        source: std::io::Error,
    },
    /// The state directory could not be created, scanned, or written.
    State {
        /// The path that failed.
        path: PathBuf,
        /// The underlying I/O error.
        source: std::io::Error,
    },
}

impl fmt::Display for ServeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ServeError::Listen { addr, source } => {
                write!(f, "cannot listen on {addr}: {source}")
            }
            ServeError::State { path, source } => {
                write!(f, "state directory {}: {source}", path.display())
            }
        }
    }
}

impl Error for ServeError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            ServeError::Listen { source, .. } | ServeError::State { source, .. } => Some(source),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cfp_dse::FailKind;

    #[test]
    fn the_transient_set_is_exactly_infrastructure() {
        let transient = [
            JobError::Explore(ExploreError::WorkerLost),
            JobError::Explore(ExploreError::Checkpoint(CheckpointError::Io {
                path: PathBuf::from("/x"),
                source: std::io::Error::other("disk"),
            })),
            JobError::Explore(ExploreError::Checkpoint(CheckpointError::Corrupt {
                line: 3,
                message: "bad line".into(),
            })),
        ];
        for e in &transient {
            assert!(e.is_transient(), "{e}");
        }
        let deterministic = [
            JobError::Explore(ExploreError::EmptyConfig),
            JobError::Explore(ExploreError::BaselineFailed(FailReason {
                kind: FailKind::FuelExhausted,
                message: "starved".into(),
            })),
            JobError::Explore(ExploreError::Checkpoint(CheckpointError::Mismatch {
                expected: 1,
                found: 2,
            })),
            JobError::Explore(ExploreError::Checkpoint(CheckpointError::Exists(
                PathBuf::from("/x"),
            ))),
            JobError::Panicked(FailReason {
                kind: FailKind::Panic,
                message: "boom".into(),
            }),
            JobError::DeadlineExceeded { ms: 10 },
        ];
        for e in &deterministic {
            assert!(!e.is_transient(), "{e}");
        }
    }

    #[test]
    fn only_corrupt_checkpoints_need_cleanup() {
        let corrupt = JobError::Explore(ExploreError::Checkpoint(CheckpointError::Corrupt {
            line: 1,
            message: "x".into(),
        }));
        assert!(corrupt.is_corrupt_checkpoint());
        assert!(!JobError::Explore(ExploreError::WorkerLost).is_corrupt_checkpoint());
    }

    #[test]
    fn tokens_are_distinct_per_class() {
        let all = [
            JobError::Explore(ExploreError::EmptyConfig).token(),
            JobError::Explore(ExploreError::WorkerLost).token(),
            JobError::DeadlineExceeded { ms: 1 }.token(),
            JobError::Panicked(FailReason {
                kind: FailKind::Panic,
                message: String::new(),
            })
            .token(),
        ];
        let mut dedup = all.to_vec();
        dedup.sort_unstable();
        dedup.dedup();
        assert_eq!(dedup.len(), all.len());
    }
}
