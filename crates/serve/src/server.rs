//! The exploration daemon: admission, a bounded worker pool over shared
//! warm caches, per-job deadlines and retries, and crash recovery.
//!
//! ## Lifecycle of a job
//!
//! 1. **Admission.** A `submit` request is parsed ([`crate::proto`]),
//!    its cost budget applied, and — if the queue is below the
//!    high-water mark — the job's *canonical* form is journaled to
//!    `<state>/jobs/<id>.job` (write-temp-then-rename) **before** the
//!    submit is acknowledged. Accepted and journaled are the same
//!    event: any job the client believes exists survives a crash.
//!    Beyond the high-water mark the request is shed with a typed
//!    `overloaded` response instead of degrading admitted work.
//! 2. **Execution.** A pool worker claims the job and runs it via
//!    [`cfp_dse::Exploration::try_run_shared`] against the daemon's
//!    shared [`cfp_dse::PlanStore`] and [`cfp_dse::CompileCache`],
//!    journaling completed units to `<id>.ck` through the checkpoint
//!    layer. The attempt runs on its own thread; the worker arms a
//!    wall-clock watchdog (`recv_timeout`) for the job's deadline.
//! 3. **Deadline.** If the watchdog fires, the attempt thread is
//!    *abandoned*, never joined: it finishes (or stalls forever) off
//!    the pool, its eventual sends land in a closed channel, and its
//!    cache writes are completed pure values other jobs may reuse.
//!    The worker itself — the bounded resource — returns to the pool
//!    immediately, unpoisoned.
//! 4. **Retry.** Failures classified transient by
//!    [`JobError::is_transient`] are retried with capped exponential
//!    backoff (a corrupt checkpoint journal is removed first);
//!    deterministic failures fail fast with the reason attached.
//! 5. **Terminal.** The result (or failure) JSON is journaled to
//!    `<id>.result` atomically, then served to any waiter.
//!
//! ## Restart recovery
//!
//! On start the daemon scans `<state>/jobs`: entries with a `.result`
//! are re-served from it; entries without one are re-queued from their
//! canonical `.job` line. A re-queued job resumes from its `.ck`
//! journal, replaying completed units — by the checkpoint layer's
//! fingerprint discipline the resumed result is bit-identical to an
//! uninterrupted run, which the recovery test proves by SIGKILLing a
//! daemon mid-sweep and comparing FNV digests.

use crate::error::{JobError, ServeError};
use crate::job;
use crate::json;
use crate::proto::{self, JobSpec, Request, RequestError};
use cfp_dse::{CompileCache, Exploration, ExploreError, FailReason, PlanStore};
use cfp_obs::{Event, Recorder, Stage, Value};
use std::collections::{HashMap, VecDeque};
use std::io::{BufRead, BufReader, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::mpsc::{self, RecvTimeoutError};
use std::sync::{Arc, Condvar, Mutex, MutexGuard, PoisonError};
use std::time::{Duration, Instant};

/// Retry ladder shape: how many attempts, and the capped exponential
/// backoff between them.
#[derive(Debug, Clone, Copy)]
pub struct RetryPolicy {
    /// Total attempts (1 = never retry).
    pub max_attempts: u32,
    /// Backoff before the second attempt, milliseconds.
    pub base_ms: u64,
    /// Backoff ceiling, milliseconds.
    pub cap_ms: u64,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy {
            max_attempts: 3,
            base_ms: 10,
            cap_ms: 200,
        }
    }
}

impl RetryPolicy {
    /// Backoff after failed attempt `attempt` (1-based):
    /// `min(base << (attempt - 1), cap)`.
    #[must_use]
    pub fn backoff_ms(&self, attempt: u32) -> u64 {
        let shifted = self
            .base_ms
            .checked_shl(attempt.saturating_sub(1))
            .unwrap_or(self.cap_ms);
        shifted.min(self.cap_ms)
    }
}

/// Daemon configuration.
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Listen address; port 0 picks an ephemeral port (the bound
    /// address is [`Server::addr`]).
    pub addr: String,
    /// State directory: job journals, checkpoints, results.
    pub state_dir: PathBuf,
    /// Worker pool size — the concurrency bound.
    pub workers: usize,
    /// Admission high-water mark: submits beyond this many queued jobs
    /// are shed.
    pub queue_high_water: usize,
    /// Retry ladder for transient failures.
    pub retry: RetryPolicy,
    /// Deadline for jobs that do not set one, milliseconds.
    pub default_deadline_ms: u64,
    /// Stream every Nth unit event to watchers (1 = every unit).
    pub progress_every: u64,
    /// Bound the shared compile cache to roughly this many scheduled
    /// cores (`None` = unbounded). See `cfp_dse::CompileCache::bounded`.
    pub core_cache_cap: Option<usize>,
    /// Bound the shared plan store's plan map (`None` = unbounded).
    pub plan_cache_cap: Option<usize>,
}

impl ServeConfig {
    /// A config serving `state_dir` on an ephemeral localhost port with
    /// production defaults.
    #[must_use]
    pub fn new(state_dir: impl Into<PathBuf>) -> Self {
        ServeConfig {
            addr: "127.0.0.1:0".to_string(),
            state_dir: state_dir.into(),
            workers: 2,
            queue_high_water: 16,
            retry: RetryPolicy::default(),
            default_deadline_ms: 60_000,
            progress_every: 5,
            core_cache_cap: None,
            plan_cache_cap: None,
        }
    }
}

/// Where a job is in its lifecycle.
#[derive(Debug)]
enum JobState {
    Queued,
    Running {
        attempt: u32,
    },
    /// Terminal; the line is the persisted result JSON.
    Done {
        line: String,
    },
    /// Terminal failure; the line is the persisted failure JSON.
    Failed {
        line: String,
    },
}

impl JobState {
    fn token(&self) -> &'static str {
        match self {
            JobState::Queued => "queued",
            JobState::Running { .. } => "running",
            JobState::Done { .. } => "done",
            JobState::Failed { .. } => "failed",
        }
    }

    fn terminal_line(&self) -> Option<&str> {
        match self {
            JobState::Done { line } | JobState::Failed { line } => Some(line),
            _ => None,
        }
    }
}

/// Per-job progress stream: a bounded ring of serialized unit events
/// plus counters. Disabled for recovered jobs (no client is attached to
/// a daemon that restarted; tracing off means zero overhead).
#[derive(Debug)]
struct Progress {
    enabled: bool,
    units_done: AtomicU64,
    next_seq: AtomicU64,
    events: Mutex<VecDeque<(u64, String)>>,
}

const PROGRESS_RING: usize = 1024;

impl Progress {
    fn new(enabled: bool) -> Self {
        Progress {
            enabled,
            units_done: AtomicU64::new(0),
            next_seq: AtomicU64::new(0),
            events: Mutex::new(VecDeque::new()),
        }
    }

    fn push(&self, line: String) {
        let seq = self.next_seq.fetch_add(1, Ordering::Relaxed);
        let mut ring = self.events.lock().unwrap_or_else(PoisonError::into_inner);
        if ring.len() >= PROGRESS_RING {
            ring.pop_front();
        }
        ring.push_back((seq, line));
    }

    /// Events with sequence number >= `cursor`; returns the next cursor.
    fn drain_from(&self, cursor: u64, out: &mut Vec<String>) -> u64 {
        let ring = self.events.lock().unwrap_or_else(PoisonError::into_inner);
        let mut next = cursor;
        for (seq, line) in ring.iter() {
            if *seq >= cursor {
                out.push(line.clone());
                next = seq + 1;
            }
        }
        next
    }
}

/// The [`Recorder`] handed to a job's exploration: counts units, and
/// serializes every Nth `unit` span into the job's progress ring.
struct ProgressRecorder {
    progress: Arc<Progress>,
    every: u64,
}

impl Recorder for ProgressRecorder {
    fn enabled(&self) -> bool {
        self.progress.enabled
    }

    fn now(&self, tick: u64) -> u64 {
        tick
    }

    fn record(&self, event: &Event<'_>) {
        if event.stage != Stage::Unit {
            return;
        }
        let n = self.progress.units_done.fetch_add(1, Ordering::Relaxed) + 1;
        if self.every > 1 && n % self.every != 1 {
            return;
        }
        let mut line = format!(r#"{{"event":"unit","n":{n},"unit":{}"#, event.unit);
        for (name, value) in event.fields {
            line.push(',');
            json::write_str(&mut line, name);
            line.push(':');
            match value {
                Value::U64(v) => line.push_str(&v.to_string()),
                Value::I64(v) => line.push_str(&v.to_string()),
                Value::F64(v) => line.push_str(&format!("{v}")),
                Value::Bool(v) => line.push_str(if *v { "true" } else { "false" }),
                Value::Str(v) => json::write_str(&mut line, v),
            }
        }
        line.push('}');
        self.progress.push(line);
    }
}

#[derive(Debug)]
struct JobEntry {
    spec: JobSpec,
    state: JobState,
    progress: Arc<Progress>,
}

#[derive(Debug, Default)]
struct Inner {
    queue: VecDeque<String>,
    jobs: HashMap<String, JobEntry>,
    next_id: u64,
    shutdown: bool,
}

#[derive(Debug, Default)]
struct Counters {
    submitted: AtomicU64,
    completed: AtomicU64,
    failed: AtomicU64,
    shed: AtomicU64,
    retries: AtomicU64,
    recovered: AtomicU64,
    deadline_kills: AtomicU64,
}

struct State {
    cfg: ServeConfig,
    jobs_dir: PathBuf,
    inner: Mutex<Inner>,
    work_cv: Condvar,
    done_cv: Condvar,
    store: PlanStore,
    memo: CompileCache,
    counters: Counters,
    accepting: AtomicBool,
}

impl State {
    fn lock(&self) -> MutexGuard<'_, Inner> {
        self.inner.lock().unwrap_or_else(PoisonError::into_inner)
    }

    fn begin_shutdown(&self) {
        self.lock().shutdown = true;
        self.work_cv.notify_all();
        self.done_cv.notify_all();
    }

    fn is_shutdown(&self) -> bool {
        self.lock().shutdown
    }
}

/// A running daemon. Dropping the handle does not stop it; call
/// [`Server::shutdown`] (or send the `shutdown` op) for a clean stop.
pub struct Server {
    state: Arc<State>,
    addr: SocketAddr,
    acceptor: Option<std::thread::JoinHandle<()>>,
    workers: Vec<std::thread::JoinHandle<()>>,
    conns: Arc<Mutex<Vec<std::thread::JoinHandle<()>>>>,
}

impl Server {
    /// Create the state directory, recover journaled jobs, bind, and
    /// start the pool.
    ///
    /// # Errors
    /// [`ServeError`] when the state directory or the listen socket is
    /// unusable. Individual unreadable job journals are skipped (their
    /// files are left for inspection), never fatal.
    pub fn start(cfg: ServeConfig) -> Result<Self, ServeError> {
        let jobs_dir = cfg.state_dir.join("jobs");
        std::fs::create_dir_all(&jobs_dir).map_err(|source| ServeError::State {
            path: jobs_dir.clone(),
            source,
        })?;

        let listener = TcpListener::bind(&cfg.addr).map_err(|source| ServeError::Listen {
            addr: cfg.addr.clone(),
            source,
        })?;
        let addr = listener.local_addr().map_err(|source| ServeError::Listen {
            addr: cfg.addr.clone(),
            source,
        })?;

        let memo = match cfg.core_cache_cap {
            Some(cap) => CompileCache::bounded(cap),
            None => CompileCache::new(),
        };
        let store = match cfg.plan_cache_cap {
            Some(cap) => PlanStore::bounded(cap),
            None => PlanStore::new(),
        };
        let workers = cfg.workers.max(1);
        let state = Arc::new(State {
            cfg,
            jobs_dir,
            inner: Mutex::new(Inner::default()),
            work_cv: Condvar::new(),
            done_cv: Condvar::new(),
            store,
            memo,
            counters: Counters::default(),
            accepting: AtomicBool::new(true),
        });

        recover(&state)?;

        let mut worker_handles = Vec::with_capacity(workers);
        for _ in 0..workers {
            let st = Arc::clone(&state);
            worker_handles.push(std::thread::spawn(move || worker_loop(&st)));
        }

        let conns: Arc<Mutex<Vec<std::thread::JoinHandle<()>>>> = Arc::new(Mutex::new(Vec::new()));
        let st = Arc::clone(&state);
        let conns_for_acceptor = Arc::clone(&conns);
        let acceptor = std::thread::spawn(move || {
            for stream in listener.incoming() {
                if st.is_shutdown() {
                    break;
                }
                let Ok(stream) = stream else { continue };
                let conn_state = Arc::clone(&st);
                let handle = std::thread::spawn(move || handle_connection(&conn_state, stream));
                conns_for_acceptor
                    .lock()
                    .unwrap_or_else(PoisonError::into_inner)
                    .push(handle);
            }
        });

        Ok(Server {
            state,
            addr,
            acceptor: Some(acceptor),
            workers: worker_handles,
            conns,
        })
    }

    /// The bound listen address.
    #[must_use]
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Jobs re-queued from journals at startup.
    #[must_use]
    pub fn recovered(&self) -> u64 {
        self.state.counters.recovered.load(Ordering::Relaxed)
    }

    /// Block until a `shutdown` request arrives, then stop cleanly.
    pub fn run(mut self) {
        while !self.state.is_shutdown() {
            std::thread::sleep(Duration::from_millis(100));
        }
        self.join();
    }

    /// Stop accepting, wake everything, and join all threads. Queued
    /// jobs stay journaled and run on the next start.
    pub fn shutdown(mut self) {
        self.state.begin_shutdown();
        self.join();
    }

    fn join(&mut self) {
        self.state.begin_shutdown();
        // Unblock the acceptor's blocking `accept` with a throwaway
        // connection; if that fails the listener is already dead.
        let _ = TcpStream::connect(self.addr);
        if let Some(acceptor) = self.acceptor.take() {
            let _ = acceptor.join();
        }
        let conns = std::mem::take(&mut *self.conns.lock().unwrap_or_else(PoisonError::into_inner));
        for handle in conns {
            let _ = handle.join();
        }
        for handle in self.workers.drain(..) {
            let _ = handle.join();
        }
    }
}

/// Atomically write `content` to `path` via a temp sibling + rename —
/// the PR 2 checkpoint discipline: a reader (including a recovering
/// daemon) sees the old content or the new, never a torn write.
fn write_atomic(path: &Path, content: &str) -> std::io::Result<()> {
    let tmp = path.with_extension("tmp");
    std::fs::write(&tmp, content)?;
    std::fs::rename(&tmp, path)
}

/// Scan the jobs directory: load terminal results, re-queue incomplete
/// jobs (progress disabled — no client is attached after a restart).
fn recover(state: &Arc<State>) -> Result<(), ServeError> {
    let entries = std::fs::read_dir(&state.jobs_dir).map_err(|source| ServeError::State {
        path: state.jobs_dir.clone(),
        source,
    })?;
    let mut ids: Vec<String> = Vec::new();
    for entry in entries.flatten() {
        let name = entry.file_name();
        let Some(name) = name.to_str() else { continue };
        if let Some(id) = name.strip_suffix(".job") {
            ids.push(id.to_string());
        }
    }
    ids.sort_unstable();

    let mut inner = state.lock();
    for id in ids {
        // Track the numeric suffix so new ids never collide with
        // recovered ones.
        if let Some(n) = id.strip_prefix("job-").and_then(|n| n.parse::<u64>().ok()) {
            inner.next_id = inner.next_id.max(n + 1);
        }
        let job_path = state.jobs_dir.join(format!("{id}.job"));
        let Ok(line) = std::fs::read_to_string(&job_path) else {
            continue; // unreadable journal: leave the file, skip the job
        };
        let Ok(Request::Submit(spec)) = proto::parse_request(line.trim_end()) else {
            continue; // not a canonical submit: leave for inspection
        };
        let result_path = state.jobs_dir.join(format!("{id}.result"));
        let entry = match std::fs::read_to_string(&result_path) {
            Ok(result_line) => {
                let result_line = result_line.trim_end().to_string();
                let state_token = json::parse(&result_line)
                    .ok()
                    .and_then(|v| v.get("state").and_then(|s| s.as_str().map(str::to_owned)));
                let state = if state_token.as_deref() == Some("done") {
                    JobState::Done { line: result_line }
                } else {
                    JobState::Failed { line: result_line }
                };
                JobEntry {
                    spec: *spec,
                    state,
                    progress: Arc::new(Progress::new(false)),
                }
            }
            Err(_) => {
                state.counters.recovered.fetch_add(1, Ordering::Relaxed);
                inner.queue.push_back(id.clone());
                JobEntry {
                    spec: *spec,
                    state: JobState::Queued,
                    progress: Arc::new(Progress::new(false)),
                }
            }
        };
        inner.jobs.insert(id, entry);
    }
    Ok(())
}

fn worker_loop(state: &Arc<State>) {
    loop {
        let id = {
            let mut inner = state.lock();
            loop {
                if let Some(id) = inner.queue.pop_front() {
                    if let Some(entry) = inner.jobs.get_mut(&id) {
                        entry.state = JobState::Running { attempt: 1 };
                    }
                    break id;
                }
                if inner.shutdown {
                    return;
                }
                inner = state
                    .work_cv
                    .wait(inner)
                    .unwrap_or_else(PoisonError::into_inner);
            }
        };
        run_job(state, &id);
    }
}

/// The retry ladder around one job.
fn run_job(state: &Arc<State>, id: &str) {
    let (spec, progress) = {
        let inner = state.lock();
        let Some(entry) = inner.jobs.get(id) else {
            return;
        };
        (entry.spec.clone(), Arc::clone(&entry.progress))
    };
    let deadline_ms = spec.deadline_ms.unwrap_or(state.cfg.default_deadline_ms);
    let ck_path = state.jobs_dir.join(format!("{id}.ck"));
    let started = Instant::now();
    let max_attempts = state.cfg.retry.max_attempts.max(1);

    let mut attempt = 1;
    let terminal = loop {
        {
            let mut inner = state.lock();
            if let Some(entry) = inner.jobs.get_mut(id) {
                entry.state = JobState::Running { attempt };
            }
        }
        match run_attempt(state, &spec, &ck_path, deadline_ms, &progress) {
            Ok(ex) => {
                let wall_ms = u64::try_from(started.elapsed().as_millis()).unwrap_or(u64::MAX);
                state.counters.completed.fetch_add(1, Ordering::Relaxed);
                break JobState::Done {
                    line: job::result_json(id, &ex, attempt, wall_ms),
                };
            }
            Err(e) if e.is_transient() && attempt < max_attempts => {
                state.counters.retries.fetch_add(1, Ordering::Relaxed);
                if e.is_corrupt_checkpoint() {
                    // The journal cannot be replayed; a retry starts the
                    // job cold rather than refusing it forever.
                    let _ = std::fs::remove_file(&ck_path);
                }
                std::thread::sleep(Duration::from_millis(state.cfg.retry.backoff_ms(attempt)));
                attempt += 1;
            }
            Err(e) => {
                state.counters.failed.fetch_add(1, Ordering::Relaxed);
                break JobState::Failed {
                    line: job::failure_json(id, &e, attempt),
                };
            }
        }
    };

    if let Some(line) = terminal.terminal_line() {
        // Persist before publishing: a crash between the two re-runs the
        // job (idempotent — it resumes from its checkpoint), while the
        // reverse order could acknowledge a result a restart forgets.
        let result_path = state.jobs_dir.join(format!("{id}.result"));
        let mut persisted = String::with_capacity(line.len() + 1);
        persisted.push_str(line);
        persisted.push('\n');
        let _ = write_atomic(&result_path, &persisted);
    }
    {
        let mut inner = state.lock();
        if let Some(entry) = inner.jobs.get_mut(id) {
            entry.state = terminal;
        }
    }
    state.done_cv.notify_all();
}

/// One attempt on its own thread, under the wall-clock watchdog.
fn run_attempt(
    state: &Arc<State>,
    spec: &JobSpec,
    ck_path: &Path,
    deadline_ms: u64,
    progress: &Arc<Progress>,
) -> Result<Exploration, JobError> {
    let config = job::explore_config(spec, ck_path);
    let (tx, rx) = mpsc::channel();
    let st = Arc::clone(state);
    let prog = Arc::clone(progress);
    std::thread::spawn(move || {
        let rec = ProgressRecorder {
            progress: prog,
            every: st.cfg.progress_every.max(1),
        };
        let out = catch_unwind(AssertUnwindSafe(|| {
            Exploration::try_run_shared(&config, &st.store, &st.memo, &rec)
        }));
        // The receiver is gone when the watchdog fired; nothing to do —
        // this thread was already written off.
        let _ = tx.send(out);
    });
    match rx.recv_timeout(Duration::from_millis(deadline_ms)) {
        Ok(Ok(Ok(ex))) => Ok(ex),
        Ok(Ok(Err(e))) => Err(JobError::Explore(e)),
        Ok(Err(payload)) => Err(JobError::Panicked(FailReason::from_panic(payload.as_ref()))),
        Err(RecvTimeoutError::Timeout) => {
            state
                .counters
                .deadline_kills
                .fetch_add(1, Ordering::Relaxed);
            Err(JobError::DeadlineExceeded { ms: deadline_ms })
        }
        // The attempt thread died without sending — lost outside every
        // quarantine, the definition of transient.
        Err(RecvTimeoutError::Disconnected) => Err(JobError::Explore(ExploreError::WorkerLost)),
    }
}

// ---------------------------------------------------------------------
// Protocol surface
// ---------------------------------------------------------------------

fn ok_line(op: &str, rest: &str) -> String {
    if rest.is_empty() {
        format!(r#"{{"ok":true,"op":"{op}"}}"#)
    } else {
        format!(r#"{{"ok":true,"op":"{op}",{rest}}}"#)
    }
}

fn submit(state: &Arc<State>, mut spec: JobSpec) -> String {
    job::apply_cost_budget(&mut spec);
    let mut inner = state.lock();
    if inner.shutdown {
        return r#"{"ok":false,"error":"shutting_down"}"#.to_string();
    }
    if inner.queue.len() >= state.cfg.queue_high_water {
        state.counters.shed.fetch_add(1, Ordering::Relaxed);
        return format!(
            r#"{{"ok":false,"error":"overloaded","queued":{},"high_water":{}}}"#,
            inner.queue.len(),
            state.cfg.queue_high_water
        );
    }
    let id = format!("job-{:06}", inner.next_id);
    inner.next_id += 1;
    // Journal before acknowledging: accepted == journaled.
    let job_path = state.jobs_dir.join(format!("{id}.job"));
    let mut line = spec.submit_line();
    line.push('\n');
    if let Err(e) = write_atomic(&job_path, &line) {
        let mut out = String::from(r#"{"ok":false,"error":"state_io","message":"#);
        json::write_str(&mut out, &e.to_string());
        out.push('}');
        return out;
    }
    inner.jobs.insert(
        id.clone(),
        JobEntry {
            spec,
            state: JobState::Queued,
            progress: Arc::new(Progress::new(true)),
        },
    );
    inner.queue.push_back(id.clone());
    let queued = inner.queue.len();
    drop(inner);
    state.counters.submitted.fetch_add(1, Ordering::Relaxed);
    state.work_cv.notify_one();
    ok_line("submit", &format!(r#""id":"{id}","queued":{queued}"#))
}

fn unknown_job(id: &str) -> String {
    let mut out = String::from(r#"{"ok":false,"error":"unknown_job","id":"#);
    json::write_str(&mut out, id);
    out.push('}');
    out
}

fn status(state: &Arc<State>, id: &str) -> String {
    let inner = state.lock();
    let Some(entry) = inner.jobs.get(id) else {
        return unknown_job(id);
    };
    let attempt = match &entry.state {
        JobState::Running { attempt } => *attempt,
        _ => 0,
    };
    let units = entry.progress.units_done.load(Ordering::Relaxed);
    ok_line(
        "status",
        &format!(
            r#""id":"{id}","state":"{}","attempt":{attempt},"units_done":{units}"#,
            entry.state.token()
        ),
    )
}

fn result(state: &Arc<State>, id: &str, wait: bool) -> String {
    let mut inner = state.lock();
    loop {
        let Some(entry) = inner.jobs.get(id) else {
            return unknown_job(id);
        };
        if let Some(line) = entry.state.terminal_line() {
            return line.to_string();
        }
        if !wait {
            return format!(
                r#"{{"ok":false,"error":"not_finished","id":"{id}","state":"{}"}}"#,
                entry.state.token()
            );
        }
        if inner.shutdown {
            return r#"{"ok":false,"error":"shutting_down"}"#.to_string();
        }
        let (guard, _timeout) = state
            .done_cv
            .wait_timeout(inner, Duration::from_millis(200))
            .unwrap_or_else(PoisonError::into_inner);
        inner = guard;
    }
}

fn stats(state: &Arc<State>) -> String {
    let (queued, running) = {
        let inner = state.lock();
        let running = inner
            .jobs
            .values()
            .filter(|e| matches!(e.state, JobState::Running { .. }))
            .count();
        (inner.queue.len(), running)
    };
    let c = &state.counters;
    ok_line(
        "stats",
        &format!(
            r#""submitted":{},"completed":{},"failed":{},"shed":{},"retries":{},"recovered":{},"deadline_kills":{},"queued":{queued},"running":{running},"core_hits":{},"core_misses":{},"core_evictions":{},"unique_cores":{},"plan_hits":{},"plan_misses":{},"plan_evictions":{},"unique_kernels":{}"#,
            c.submitted.load(Ordering::Relaxed),
            c.completed.load(Ordering::Relaxed),
            c.failed.load(Ordering::Relaxed),
            c.shed.load(Ordering::Relaxed),
            c.retries.load(Ordering::Relaxed),
            c.recovered.load(Ordering::Relaxed),
            c.deadline_kills.load(Ordering::Relaxed),
            state.memo.core_hits(),
            state.memo.core_misses(),
            state.memo.core_evictions(),
            state.memo.unique_cores(),
            state.store.plan_hits(),
            state.store.plan_misses(),
            state.store.plan_evictions(),
            state.store.unique_kernels(),
        ),
    )
}

/// Stream progress events for `id` until it is terminal, then its
/// result line. Returns `Err` when the client went away.
fn watch(state: &Arc<State>, id: &str, out: &mut TcpStream) -> std::io::Result<()> {
    let progress = {
        let inner = state.lock();
        match inner.jobs.get(id) {
            Some(entry) => Arc::clone(&entry.progress),
            None => {
                writeln!(out, "{}", unknown_job(id))?;
                return out.flush();
            }
        }
    };
    let mut cursor = 0_u64;
    let mut batch = Vec::new();
    loop {
        batch.clear();
        cursor = progress.drain_from(cursor, &mut batch);
        for line in &batch {
            writeln!(out, "{line}")?;
        }
        if !batch.is_empty() {
            out.flush()?;
        }
        let terminal = {
            let inner = state.lock();
            inner
                .jobs
                .get(id)
                .and_then(|e| e.state.terminal_line().map(str::to_owned))
        };
        if let Some(line) = terminal {
            // Any events recorded after the last drain still precede the
            // result line in the stream.
            batch.clear();
            progress.drain_from(cursor, &mut batch);
            for event in &batch {
                writeln!(out, "{event}")?;
            }
            writeln!(out, "{line}")?;
            return out.flush();
        }
        if state.is_shutdown() {
            writeln!(out, r#"{{"ok":false,"error":"shutting_down"}}"#)?;
            return out.flush();
        }
        std::thread::sleep(Duration::from_millis(25));
    }
}

fn handle_connection(state: &Arc<State>, stream: TcpStream) {
    // One-line requests and responses are exactly the small-write
    // pattern Nagle + delayed ACK turns into ~40 ms round trips.
    let _ = stream.set_nodelay(true);
    let Ok(read_half) = stream.try_clone() else {
        return;
    };
    let mut write_half = stream;
    // Short read timeouts turn the blocking read loop into a poll of the
    // shutdown flag.
    let _ = read_half.set_read_timeout(Some(Duration::from_millis(200)));
    let mut reader = BufReader::new(read_half);
    let mut buf: Vec<u8> = Vec::new();
    loop {
        match reader.read_until(b'\n', &mut buf) {
            Ok(0) => return, // client closed
            Ok(_) => {
                let line = String::from_utf8_lossy(&buf).trim_end().to_string();
                buf.clear();
                if line.is_empty() {
                    continue;
                }
                let response = match proto::parse_request(&line) {
                    Err(e) => e.to_json(),
                    Ok(Request::Ping) => ok_line("pong", ""),
                    Ok(Request::Stats) => stats(state),
                    Ok(Request::Submit(spec)) => submit(state, *spec),
                    Ok(Request::Status { id }) => status(state, &id),
                    Ok(Request::Result { id, wait }) => result(state, &id, wait),
                    Ok(Request::Watch { id }) => {
                        if watch(state, &id, &mut write_half).is_err() {
                            return;
                        }
                        continue;
                    }
                    Ok(Request::Shutdown) => {
                        let _ = writeln!(write_half, r#"{{"ok":true,"op":"shutdown"}}"#);
                        let _ = write_half.flush();
                        state.accepting.store(false, Ordering::Relaxed);
                        state.begin_shutdown();
                        return;
                    }
                };
                if writeln!(write_half, "{response}").is_err() || write_half.flush().is_err() {
                    return;
                }
            }
            Err(e)
                if e.kind() == std::io::ErrorKind::WouldBlock
                    || e.kind() == std::io::ErrorKind::TimedOut =>
            {
                if state.is_shutdown() {
                    return;
                }
                if buf.len() > proto::MAX_LINE {
                    // An unterminated oversized line cannot be resynced;
                    // reject and drop the connection.
                    let reject = RequestError::TooLong {
                        length: buf.len(),
                        limit: proto::MAX_LINE,
                    };
                    let _ = writeln!(write_half, "{}", reject.to_json());
                    let _ = write_half.flush();
                    return;
                }
            }
            Err(_) => return,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn backoff_is_capped_exponential() {
        let retry = RetryPolicy {
            max_attempts: 10,
            base_ms: 10,
            cap_ms: 200,
        };
        assert_eq!(retry.backoff_ms(1), 10);
        assert_eq!(retry.backoff_ms(2), 20);
        assert_eq!(retry.backoff_ms(3), 40);
        assert_eq!(retry.backoff_ms(5), 160);
        assert_eq!(retry.backoff_ms(6), 200, "capped");
        assert_eq!(retry.backoff_ms(60), 200, "shift overflow capped");
    }

    #[test]
    fn progress_ring_is_bounded_and_ordered() {
        let p = Progress::new(true);
        for i in 0..(PROGRESS_RING + 10) {
            p.push(format!("e{i}"));
        }
        let mut out = Vec::new();
        let next = p.drain_from(0, &mut out);
        assert_eq!(out.len(), PROGRESS_RING);
        assert_eq!(out.first().map(String::as_str), Some("e10"));
        assert_eq!(next, (PROGRESS_RING + 10) as u64);
        // A cursor past the ring sees nothing new.
        out.clear();
        assert_eq!(p.drain_from(next, &mut out), next);
        assert!(out.is_empty());
    }
}
