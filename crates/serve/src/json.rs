//! A minimal byte-offset-tracking JSON reader and writer.
//!
//! The service protocol is line-delimited JSON, and its rejection
//! contract (DESIGN.md §15) is that a malformed request names the
//! offending *field* and the *byte offset* where things went wrong —
//! the protocol analogue of the line-numbered CSV errors in
//! `cfp_dse::io`. No available dependency provides that, and the
//! protocol needs only a small subset of JSON, so this is a hand-rolled
//! recursive-descent parser in which every parsed value remembers where
//! in the request line it started.
//!
//! Numbers keep their source text: the protocol carries `u64` seeds and
//! fingerprints that would be silently rounded through an `f64`, so
//! conversion happens at the access site ([`Json::as_u64`] /
//! [`Json::as_f64`]) where the caller knows which domain it wants.

use std::fmt;

/// Nesting depth cap: the protocol needs 3 levels; 16 tolerates growth
/// while keeping hostile deeply-nested input from recursing the stack.
const MAX_DEPTH: usize = 16;

/// One parsed JSON value plus the byte offset where it started.
#[derive(Debug, Clone, PartialEq)]
pub struct Json {
    /// Byte offset of the value's first character in the source line.
    pub offset: usize,
    /// The value.
    pub kind: Kind,
}

/// The value forms the protocol uses.
#[derive(Debug, Clone, PartialEq)]
pub enum Kind {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// A number, kept as source text (see module docs).
    Num(String),
    /// A string, unescaped.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object: key, key's byte offset, value — in source order,
    /// duplicates kept (lookups take the first, mirroring what a
    /// streaming reader would act on).
    Obj(Vec<(String, usize, Json)>),
}

/// A syntax error: where, and what was wrong.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SyntaxError {
    /// Byte offset of the offending character.
    pub offset: usize,
    /// What the parser expected or found.
    pub message: String,
}

impl fmt::Display for SyntaxError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "byte {}: {}", self.offset, self.message)
    }
}

impl std::error::Error for SyntaxError {}

impl Json {
    /// The string value, if this is a string.
    #[must_use]
    pub fn as_str(&self) -> Option<&str> {
        match &self.kind {
            Kind::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The boolean value, if this is a boolean.
    #[must_use]
    pub fn as_bool(&self) -> Option<bool> {
        match &self.kind {
            Kind::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The value as a non-negative integer, if it parses as one (no
    /// sign, no fraction, no exponent — the protocol's counters and
    /// seeds are plain decimal).
    #[must_use]
    pub fn as_u64(&self) -> Option<u64> {
        match &self.kind {
            Kind::Num(text) => text.parse().ok(),
            _ => None,
        }
    }

    /// The value as a float, if this is a number.
    #[must_use]
    pub fn as_f64(&self) -> Option<f64> {
        match &self.kind {
            Kind::Num(text) => text.parse().ok(),
            _ => None,
        }
    }

    /// The elements, if this is an array.
    #[must_use]
    pub fn as_arr(&self) -> Option<&[Json]> {
        match &self.kind {
            Kind::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// The entries, if this is an object.
    #[must_use]
    pub fn as_obj(&self) -> Option<&[(String, usize, Json)]> {
        match &self.kind {
            Kind::Obj(entries) => Some(entries),
            _ => None,
        }
    }

    /// First value under `key`, if this is an object containing it.
    #[must_use]
    pub fn get(&self, key: &str) -> Option<&Json> {
        self.as_obj()?
            .iter()
            .find(|(k, _, _)| k == key)
            .map(|(_, _, v)| v)
    }

    /// A short name for the value's form, for error messages.
    #[must_use]
    pub fn type_name(&self) -> &'static str {
        match &self.kind {
            Kind::Null => "null",
            Kind::Bool(_) => "boolean",
            Kind::Num(_) => "number",
            Kind::Str(_) => "string",
            Kind::Arr(_) => "array",
            Kind::Obj(_) => "object",
        }
    }
}

/// Parse one JSON value spanning the whole input.
///
/// # Errors
/// A [`SyntaxError`] naming the byte offset of the first problem.
pub fn parse(input: &str) -> Result<Json, SyntaxError> {
    let bytes = input.as_bytes();
    let mut pos = 0;
    let value = parse_value(bytes, &mut pos, 0)?;
    skip_ws(bytes, &mut pos);
    if pos != bytes.len() {
        return Err(SyntaxError {
            offset: pos,
            message: "trailing characters after value".to_string(),
        });
    }
    Ok(value)
}

fn skip_ws(bytes: &[u8], pos: &mut usize) {
    while *pos < bytes.len() && matches!(bytes[*pos], b' ' | b'\t' | b'\r' | b'\n') {
        *pos += 1;
    }
}

fn err(offset: usize, message: impl Into<String>) -> SyntaxError {
    SyntaxError {
        offset,
        message: message.into(),
    }
}

fn expect(bytes: &[u8], pos: &mut usize, ch: u8) -> Result<(), SyntaxError> {
    if bytes.get(*pos) == Some(&ch) {
        *pos += 1;
        Ok(())
    } else {
        Err(err(*pos, format!("expected '{}'", char::from(ch))))
    }
}

fn parse_value(bytes: &[u8], pos: &mut usize, depth: usize) -> Result<Json, SyntaxError> {
    if depth > MAX_DEPTH {
        return Err(err(*pos, format!("nesting deeper than {MAX_DEPTH}")));
    }
    skip_ws(bytes, pos);
    let offset = *pos;
    let Some(&b) = bytes.get(*pos) else {
        return Err(err(offset, "unexpected end of input"));
    };
    let kind = match b {
        b'n' => parse_keyword(bytes, pos, "null", Kind::Null)?,
        b't' => parse_keyword(bytes, pos, "true", Kind::Bool(true))?,
        b'f' => parse_keyword(bytes, pos, "false", Kind::Bool(false))?,
        b'"' => Kind::Str(parse_string(bytes, pos)?),
        b'[' => {
            *pos += 1;
            let mut items = Vec::new();
            skip_ws(bytes, pos);
            if bytes.get(*pos) == Some(&b']') {
                *pos += 1;
            } else {
                loop {
                    items.push(parse_value(bytes, pos, depth + 1)?);
                    skip_ws(bytes, pos);
                    match bytes.get(*pos) {
                        Some(b',') => *pos += 1,
                        Some(b']') => {
                            *pos += 1;
                            break;
                        }
                        _ => return Err(err(*pos, "expected ',' or ']' in array")),
                    }
                }
            }
            Kind::Arr(items)
        }
        b'{' => {
            *pos += 1;
            let mut entries = Vec::new();
            skip_ws(bytes, pos);
            if bytes.get(*pos) == Some(&b'}') {
                *pos += 1;
            } else {
                loop {
                    skip_ws(bytes, pos);
                    let key_offset = *pos;
                    if bytes.get(*pos) != Some(&b'"') {
                        return Err(err(*pos, "expected string key in object"));
                    }
                    let key = parse_string(bytes, pos)?;
                    skip_ws(bytes, pos);
                    expect(bytes, pos, b':')?;
                    let value = parse_value(bytes, pos, depth + 1)?;
                    entries.push((key, key_offset, value));
                    skip_ws(bytes, pos);
                    match bytes.get(*pos) {
                        Some(b',') => *pos += 1,
                        Some(b'}') => {
                            *pos += 1;
                            break;
                        }
                        _ => return Err(err(*pos, "expected ',' or '}' in object")),
                    }
                }
            }
            Kind::Obj(entries)
        }
        b'-' | b'0'..=b'9' => parse_number(bytes, pos)?,
        other => {
            return Err(err(
                offset,
                format!("unexpected character '{}'", char::from(other)),
            ))
        }
    };
    Ok(Json { offset, kind })
}

fn parse_keyword(
    bytes: &[u8],
    pos: &mut usize,
    word: &str,
    kind: Kind,
) -> Result<Kind, SyntaxError> {
    if bytes[*pos..].starts_with(word.as_bytes()) {
        *pos += word.len();
        Ok(kind)
    } else {
        Err(err(*pos, format!("expected '{word}'")))
    }
}

fn parse_number(bytes: &[u8], pos: &mut usize) -> Result<Kind, SyntaxError> {
    let start = *pos;
    if bytes.get(*pos) == Some(&b'-') {
        *pos += 1;
    }
    let digits_from = *pos;
    while matches!(bytes.get(*pos), Some(b'0'..=b'9')) {
        *pos += 1;
    }
    if *pos == digits_from {
        return Err(err(*pos, "expected digits"));
    }
    if bytes.get(*pos) == Some(&b'.') {
        *pos += 1;
        let frac_from = *pos;
        while matches!(bytes.get(*pos), Some(b'0'..=b'9')) {
            *pos += 1;
        }
        if *pos == frac_from {
            return Err(err(*pos, "expected digits after '.'"));
        }
    }
    if matches!(bytes.get(*pos), Some(b'e' | b'E')) {
        *pos += 1;
        if matches!(bytes.get(*pos), Some(b'+' | b'-')) {
            *pos += 1;
        }
        let exp_from = *pos;
        while matches!(bytes.get(*pos), Some(b'0'..=b'9')) {
            *pos += 1;
        }
        if *pos == exp_from {
            return Err(err(*pos, "expected digits in exponent"));
        }
    }
    // The slice is ASCII by construction.
    Ok(Kind::Num(
        String::from_utf8_lossy(&bytes[start..*pos]).into_owned(),
    ))
}

fn parse_string(bytes: &[u8], pos: &mut usize) -> Result<String, SyntaxError> {
    expect(bytes, pos, b'"')?;
    let mut out = String::new();
    loop {
        let Some(&b) = bytes.get(*pos) else {
            return Err(err(*pos, "unterminated string"));
        };
        *pos += 1;
        match b {
            b'"' => return Ok(out),
            b'\\' => {
                let Some(&esc) = bytes.get(*pos) else {
                    return Err(err(*pos, "unterminated escape"));
                };
                *pos += 1;
                match esc {
                    b'"' => out.push('"'),
                    b'\\' => out.push('\\'),
                    b'/' => out.push('/'),
                    b'n' => out.push('\n'),
                    b't' => out.push('\t'),
                    b'r' => out.push('\r'),
                    b'b' => out.push('\u{8}'),
                    b'f' => out.push('\u{c}'),
                    b'u' => {
                        let hex = bytes
                            .get(*pos..*pos + 4)
                            .and_then(|h| std::str::from_utf8(h).ok())
                            .and_then(|h| u32::from_str_radix(h, 16).ok())
                            .ok_or_else(|| err(*pos, "expected 4 hex digits after \\u"))?;
                        // Surrogates are out of protocol scope; reject
                        // rather than emit invalid scalars.
                        let ch = char::from_u32(hex)
                            .ok_or_else(|| err(*pos, "escape is not a scalar value"))?;
                        out.push(ch);
                        *pos += 4;
                    }
                    other => {
                        return Err(err(
                            *pos - 1,
                            format!("unknown escape '\\{}'", char::from(other)),
                        ))
                    }
                }
            }
            // Multi-byte UTF-8: copy the raw bytes of the code point.
            _ if b >= 0x80 => {
                let start = *pos - 1;
                while matches!(bytes.get(*pos), Some(&c) if c & 0xC0 == 0x80) {
                    *pos += 1;
                }
                match std::str::from_utf8(&bytes[start..*pos]) {
                    Ok(s) => out.push_str(s),
                    Err(_) => return Err(err(start, "invalid UTF-8 in string")),
                }
            }
            _ if b < 0x20 => return Err(err(*pos - 1, "raw control character in string")),
            _ => out.push(char::from(b)),
        }
    }
}

/// Append `s` to `out` as a JSON string literal (quoted, escaped).
pub fn write_str(out: &mut String, s: &str) {
    out.push('"');
    for ch in s.chars() {
        match ch {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_the_protocol_shapes() {
        let v = parse(r#"{"op":"submit","job":{"benches":["A","GF"],"fuel":18446744073709551615,"reuse":true,"x":null,"f":-1.5e3}}"#).expect("parses");
        assert_eq!(v.get("op").and_then(Json::as_str), Some("submit"));
        let job = v.get("job").expect("job");
        let benches = job.get("benches").and_then(Json::as_arr).expect("arr");
        assert_eq!(benches[1].as_str(), Some("GF"));
        // u64::MAX survives — no f64 round-trip.
        assert_eq!(job.get("fuel").and_then(Json::as_u64), Some(u64::MAX));
        assert_eq!(job.get("reuse").and_then(Json::as_bool), Some(true));
        assert_eq!(job.get("f").and_then(Json::as_f64), Some(-1500.0));
        assert_eq!(job.get("x").map(|x| x.type_name()), Some("null"));
    }

    #[test]
    fn offsets_point_at_values_and_keys() {
        let src = r#"{"op": "status", "id": 7}"#;
        let v = parse(src).expect("parses");
        let op = v.get("op").expect("op");
        assert_eq!(&src[op.offset..op.offset + 8], "\"status\"");
        let entries = v.as_obj().expect("obj");
        let (key, key_offset, id) = &entries[1];
        assert_eq!(key, "id");
        assert_eq!(&src[*key_offset..key_offset + 4], "\"id\"");
        assert_eq!(id.as_u64(), Some(7));
        assert_eq!(&src[id.offset..], "7}");
    }

    #[test]
    fn syntax_errors_carry_the_failing_offset() {
        let e = parse(r#"{"a": }"#).expect_err("bad");
        assert_eq!(e.offset, 6);
        let e = parse("{\"a\": 1").expect_err("unclosed");
        assert_eq!(e.offset, 7);
        let e = parse("[1, 2,]").expect_err("trailing comma");
        assert_eq!(e.offset, 6);
        let e = parse("nul").expect_err("bad keyword");
        assert_eq!(e.offset, 0);
        let e = parse("{} x").expect_err("trailing");
        assert_eq!(e.offset, 3);
    }

    #[test]
    fn depth_is_bounded() {
        let deep = "[".repeat(40) + &"]".repeat(40);
        let e = parse(&deep).expect_err("too deep");
        assert!(e.message.contains("nesting"), "{e}");
        let ok = "[".repeat(10) + "1" + &"]".repeat(10);
        assert!(parse(&ok).is_ok());
    }

    #[test]
    fn string_escapes_round_trip_through_the_writer() {
        let original = "a\"b\\c\nd\te\u{1}f≥";
        let mut line = String::new();
        write_str(&mut line, original);
        let back = parse(&line).expect("parses");
        assert_eq!(back.as_str(), Some(original));
    }
}
