//! # cfp-serve — exploration as a service
//!
//! A crash-safe daemon wrapping the design-space exploration engine
//! (`cfp-dse`) behind a line-delimited JSON protocol on a TCP socket.
//! One daemon process holds the warm state every job benefits from — a
//! shared [`cfp_dse::PlanStore`] of optimized/unrolled kernel plans and
//! a shared [`cfp_dse::CompileCache`] of scheduled cores — so repeated
//! or overlapping explorations pay for compilation once.
//!
//! The robustness envelope, in one place:
//!
//! * **Typed errors** ([`JobError`], [`ServeError`]) in the
//!   `cfp_dse::error` taxonomy style; every wire rejection names the
//!   offending field *and byte offset* ([`RequestError`]).
//! * **Deadlines** — deterministic step-fuel inside the engine, plus a
//!   wall-clock watchdog per attempt in the daemon.
//! * **Retries** — capped exponential backoff, and only for the exact
//!   transient set ([`JobError::is_transient`]); deterministic failures
//!   fail fast with the reason attached.
//! * **Load shedding** — a bounded admission queue; submits beyond the
//!   high-water mark get a typed `overloaded` response immediately
//!   instead of degrading admitted work.
//! * **Crash recovery** — every accepted job is journaled
//!   (write-temp-then-rename) before it is acknowledged; a killed and
//!   restarted daemon resumes incomplete jobs from their checkpoint
//!   journals bit-identically.
//!
//! Protocol quickstart (each request and response is one JSON line):
//!
//! ```text
//! → {"op":"submit","benches":["D","G"],"preset":"smoke","fuel":200000}
//! ← {"ok":true,"op":"submit","id":"job-000000","queued":1}
//! → {"op":"result","id":"job-000000"}
//! ← {"ok":true,"op":"result","state":"done","id":"job-000000","digest":"…",…}
//! ```
//!
//! See `DESIGN.md` §15 for the full protocol and failure-injection
//! surface, and the `cfpd` / `bench_serve` binaries for the shipped
//! entry points.

#![cfg_attr(not(test), warn(clippy::unwrap_used, clippy::expect_used))]

pub mod error;
pub mod job;
pub mod json;
pub mod proto;
pub mod server;

pub use error::{JobError, ServeError};
pub use proto::{parse_request, FaultSpec, JobSpec, Request, RequestError};
pub use server::{RetryPolicy, ServeConfig, Server};
