//! The service's wire protocol: line-delimited JSON requests, typed
//! rejections that name the offending field *and* byte offset, and the
//! canonical job form the daemon journals for crash recovery.
//!
//! Every request is one JSON object on one line. Parsing is strict —
//! unknown job fields, wrong types, unknown benchmarks, malformed
//! architecture specs are all rejected with a [`RequestError`] that
//! points into the request line (the protocol analogue of the
//! line-numbered CSV errors in `cfp_dse::io`), so a client can fix its
//! request without guessing. Rejections themselves round-trip through
//! JSON ([`RequestError::to_json`] / [`RequestError::from_json`]): what
//! the daemon sends back is exactly what the client libraries (and the
//! protocol tests) can reconstruct.
//!
//! [`JobSpec::submit_line`] renders a job back to a *canonical* submit
//! request with every default baked in and every preset expanded to
//! explicit architecture specs. That line is what the daemon writes to
//! its job journal at admission, which makes restart recovery
//! self-contained: re-parsing the journal re-creates the job bit for
//! bit, with no dependency on the defaults or presets of the daemon
//! version that accepted it.

use crate::json::{self, Json};
use cfp_kernels::Benchmark;
use cfp_machine::{ArchSpec, DesignSpace};
use cfp_testkit::FaultInjector;
use std::fmt;

/// Longest accepted request line, in bytes. A line beyond this is
/// rejected before parsing — admission control for memory, not just for
/// the queue.
pub const MAX_LINE: usize = 1 << 20;

/// Ceiling on a job's worker threads (the daemon runs many jobs; one
/// job monopolizing the host is an admission failure, not a tuning
/// knob).
pub const MAX_JOB_THREADS: u64 = 16;

/// One parsed request.
#[derive(Debug, Clone, PartialEq)]
pub enum Request {
    /// Liveness probe.
    Ping,
    /// Submit a job for execution.
    Submit(Box<JobSpec>),
    /// One-shot state of a job.
    Status {
        /// The job id.
        id: String,
    },
    /// The terminal result of a job; with `wait`, blocks until the job
    /// reaches one.
    Result {
        /// The job id.
        id: String,
        /// Block until the job is terminal (default true).
        wait: bool,
    },
    /// Stream progress events until the job is terminal.
    Watch {
        /// The job id.
        id: String,
    },
    /// Daemon-level counters.
    Stats,
    /// Graceful shutdown.
    Shutdown,
}

/// How a job wants faults injected, for robustness tests. Mirrors
/// [`cfp_testkit::FaultInjector`]; connection-level drops are a client
/// affair and deliberately not spellable here.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FaultSpec {
    /// What happens on a tripped unit: a panic (quarantined) or a
    /// wall-clock stall of `millis` (what the deadline watchdog is
    /// for).
    pub stall_millis: Option<u64>,
    /// Injector seed.
    pub seed: u64,
    /// Roughly one in this many units trips.
    pub denominator: u64,
}

impl FaultSpec {
    /// The injector this spec describes.
    #[must_use]
    pub fn injector(&self) -> FaultInjector {
        match self.stall_millis {
            Some(ms) => FaultInjector::stalling(self.seed, self.denominator, ms),
            None => FaultInjector::one_in(self.seed, self.denominator),
        }
    }
}

/// One fully-resolved exploration job: what to run and under which
/// budgets. Presets and defaults are resolved at parse time, so two
/// equal `JobSpec`s mean the same work regardless of which daemon
/// version admitted them.
#[derive(Debug, Clone, PartialEq)]
pub struct JobSpec {
    /// Benchmarks to evaluate.
    pub benches: Vec<Benchmark>,
    /// Candidate architectures.
    pub archs: Vec<ArchSpec>,
    /// Per-compilation deterministic step budget.
    pub fuel: Option<u64>,
    /// Wall-clock deadline per attempt, milliseconds. `None` uses the
    /// daemon's default.
    pub deadline_ms: Option<u64>,
    /// Worker threads inside this job's sweep.
    pub threads: usize,
    /// Share compile work through the daemon's warm cache.
    pub reuse: bool,
    /// Drop candidate architectures whose datapath cost exceeds this
    /// (the job's cost budget), before the sweep.
    pub max_cost: Option<f64>,
    /// Deterministic fault injection, tests only.
    pub fault: Option<FaultSpec>,
}

impl Default for JobSpec {
    fn default() -> Self {
        JobSpec {
            benches: Vec::new(),
            archs: Vec::new(),
            fuel: None,
            deadline_ms: None,
            threads: 1,
            reuse: true,
            max_cost: None,
            fault: None,
        }
    }
}

impl JobSpec {
    /// The canonical submit line for this job (see the module docs).
    #[must_use]
    pub fn submit_line(&self) -> String {
        let mut out = String::from(r#"{"op":"submit","job":{"benches":["#);
        for (i, b) in self.benches.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            json::write_str(&mut out, b.letter());
        }
        out.push_str(r#"],"archs":["#);
        for (i, a) in self.archs.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            json::write_str(&mut out, &a.to_string());
        }
        out.push(']');
        if let Some(fuel) = self.fuel {
            out.push_str(&format!(r#","fuel":{fuel}"#));
        }
        if let Some(ms) = self.deadline_ms {
            out.push_str(&format!(r#","deadline_ms":{ms}"#));
        }
        out.push_str(&format!(
            r#","threads":{},"reuse":{}"#,
            self.threads, self.reuse
        ));
        if let Some(c) = self.max_cost {
            out.push_str(&format!(r#","max_cost":{c}"#));
        }
        if let Some(f) = &self.fault {
            out.push_str(&format!(
                r#","fault":{{"seed":{},"denominator":{}"#,
                f.seed, f.denominator
            ));
            match f.stall_millis {
                Some(ms) => out.push_str(&format!(r#","kind":"stall","millis":{ms}}}"#)),
                None => out.push_str(r#","kind":"panic"}"#),
            }
        }
        out.push_str("}}");
        out
    }
}

/// Why a request line was rejected. Every variant names the byte offset
/// in the request line it is about; field-level variants name the field
/// too.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RequestError {
    /// The line exceeds [`MAX_LINE`].
    TooLong {
        /// Received length in bytes.
        length: usize,
        /// The limit it exceeded.
        limit: usize,
    },
    /// The line is not valid JSON.
    Syntax {
        /// Byte offset of the first bad character.
        offset: usize,
        /// What the parser expected.
        message: String,
    },
    /// The line parses but is not a JSON object.
    NotAnObject {
        /// Byte offset of the value.
        offset: usize,
        /// What it was instead.
        found: String,
    },
    /// The `op` is not one the daemon knows.
    UnknownOp {
        /// Byte offset of the op value.
        offset: usize,
        /// The unknown op.
        op: String,
    },
    /// A required field is absent.
    MissingField {
        /// Byte offset of the object the field is missing from.
        offset: usize,
        /// Dotted path of the missing field.
        field: String,
    },
    /// A field is present but unusable: wrong type, unknown value,
    /// out-of-range number, unknown benchmark letter, malformed
    /// architecture spec, or a field the protocol does not define.
    BadField {
        /// Byte offset of the offending value (or key, for unknown
        /// fields).
        offset: usize,
        /// Dotted path of the field.
        field: String,
        /// What is wrong with it.
        message: String,
    },
}

impl RequestError {
    /// Stable kind token, the wire discriminant.
    #[must_use]
    pub fn kind(&self) -> &'static str {
        match self {
            RequestError::TooLong { .. } => "too_long",
            RequestError::Syntax { .. } => "syntax",
            RequestError::NotAnObject { .. } => "not_an_object",
            RequestError::UnknownOp { .. } => "unknown_op",
            RequestError::MissingField { .. } => "missing_field",
            RequestError::BadField { .. } => "bad_field",
        }
    }

    /// The rejection as a one-line JSON response.
    #[must_use]
    pub fn to_json(&self) -> String {
        let mut out = format!(
            r#"{{"ok":false,"error":"bad_request","kind":"{}""#,
            self.kind()
        );
        match self {
            RequestError::TooLong { length, limit } => {
                out.push_str(&format!(r#","length":{length},"limit":{limit}"#));
            }
            RequestError::Syntax { offset, message } => {
                out.push_str(&format!(r#","offset":{offset},"message":"#));
                json::write_str(&mut out, message);
            }
            RequestError::NotAnObject { offset, found } => {
                out.push_str(&format!(r#","offset":{offset},"found":"#));
                json::write_str(&mut out, found);
            }
            RequestError::UnknownOp { offset, op } => {
                out.push_str(&format!(r#","offset":{offset},"op":"#));
                json::write_str(&mut out, op);
            }
            RequestError::MissingField { offset, field } => {
                out.push_str(&format!(r#","offset":{offset},"field":"#));
                json::write_str(&mut out, field);
            }
            RequestError::BadField {
                offset,
                field,
                message,
            } => {
                out.push_str(&format!(r#","offset":{offset},"field":"#));
                json::write_str(&mut out, field);
                out.push_str(r#","message":"#);
                json::write_str(&mut out, message);
            }
        }
        out.push('}');
        out
    }

    /// Reconstruct a rejection from its [`Self::to_json`] form. `None`
    /// if the value is not a rejection response.
    #[must_use]
    pub fn from_json(v: &Json) -> Option<Self> {
        if v.get("error")?.as_str()? != "bad_request" {
            return None;
        }
        let offset = || v.get("offset")?.as_u64().map(|o| o as usize);
        let text = |key: &str| v.get(key)?.as_str().map(str::to_owned);
        match v.get("kind")?.as_str()? {
            "too_long" => Some(RequestError::TooLong {
                length: v.get("length")?.as_u64()? as usize,
                limit: v.get("limit")?.as_u64()? as usize,
            }),
            "syntax" => Some(RequestError::Syntax {
                offset: offset()?,
                message: text("message")?,
            }),
            "not_an_object" => Some(RequestError::NotAnObject {
                offset: offset()?,
                found: text("found")?,
            }),
            "unknown_op" => Some(RequestError::UnknownOp {
                offset: offset()?,
                op: text("op")?,
            }),
            "missing_field" => Some(RequestError::MissingField {
                offset: offset()?,
                field: text("field")?,
            }),
            "bad_field" => Some(RequestError::BadField {
                offset: offset()?,
                field: text("field")?,
                message: text("message")?,
            }),
            _ => None,
        }
    }
}

impl fmt::Display for RequestError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RequestError::TooLong { length, limit } => {
                write!(
                    f,
                    "request of {length} bytes exceeds the {limit}-byte limit"
                )
            }
            RequestError::Syntax { offset, message } => {
                write!(f, "byte {offset}: {message}")
            }
            RequestError::NotAnObject { offset, found } => {
                write!(f, "byte {offset}: expected an object, found {found}")
            }
            RequestError::UnknownOp { offset, op } => {
                write!(f, "byte {offset}: unknown op '{op}'")
            }
            RequestError::MissingField { offset, field } => {
                write!(f, "byte {offset}: missing required field '{field}'")
            }
            RequestError::BadField {
                offset,
                field,
                message,
            } => write!(f, "byte {offset}: field '{field}': {message}"),
        }
    }
}

impl std::error::Error for RequestError {}

fn bad(offset: usize, field: impl Into<String>, message: impl Into<String>) -> RequestError {
    RequestError::BadField {
        offset,
        field: field.into(),
        message: message.into(),
    }
}

fn bench_from_letter(s: &str) -> Option<Benchmark> {
    Benchmark::ALL.into_iter().find(|b| b.letter() == s)
}

fn req_str(obj: &Json, field: &str) -> Result<String, RequestError> {
    match obj.get(field) {
        None => Err(RequestError::MissingField {
            offset: obj.offset,
            field: field.to_string(),
        }),
        Some(v) => v.as_str().map(str::to_owned).ok_or_else(|| {
            bad(
                v.offset,
                field,
                format!("expected a string, found {}", v.type_name()),
            )
        }),
    }
}

fn opt_u64(obj: &Json, field: &str, path: &str) -> Result<Option<u64>, RequestError> {
    match obj.get(field) {
        None => Ok(None),
        Some(v) => v.as_u64().map(Some).ok_or_else(|| {
            bad(
                v.offset,
                path,
                format!("expected a non-negative integer, found {}", v.type_name()),
            )
        }),
    }
}

/// Parse one request line.
///
/// # Errors
/// A [`RequestError`] naming the first problem, its field, and its byte
/// offset.
pub fn parse_request(line: &str) -> Result<Request, RequestError> {
    if line.len() > MAX_LINE {
        return Err(RequestError::TooLong {
            length: line.len(),
            limit: MAX_LINE,
        });
    }
    let root = json::parse(line).map_err(|e| RequestError::Syntax {
        offset: e.offset,
        message: e.message,
    })?;
    if root.as_obj().is_none() {
        return Err(RequestError::NotAnObject {
            offset: root.offset,
            found: root.type_name().to_string(),
        });
    }
    let op_value = root.get("op").ok_or(RequestError::MissingField {
        offset: root.offset,
        field: "op".to_string(),
    })?;
    let op = op_value.as_str().ok_or_else(|| {
        bad(
            op_value.offset,
            "op",
            format!("expected a string, found {}", op_value.type_name()),
        )
    })?;
    match op {
        "ping" => Ok(Request::Ping),
        "stats" => Ok(Request::Stats),
        "shutdown" => Ok(Request::Shutdown),
        "status" => Ok(Request::Status {
            id: req_str(&root, "id")?,
        }),
        "watch" => Ok(Request::Watch {
            id: req_str(&root, "id")?,
        }),
        "result" => {
            let wait = match root.get("wait") {
                None => true,
                Some(v) => v.as_bool().ok_or_else(|| {
                    bad(
                        v.offset,
                        "wait",
                        format!("expected a boolean, found {}", v.type_name()),
                    )
                })?,
            };
            Ok(Request::Result {
                id: req_str(&root, "id")?,
                wait,
            })
        }
        "submit" => {
            let job = root.get("job").ok_or(RequestError::MissingField {
                offset: root.offset,
                field: "job".to_string(),
            })?;
            if job.as_obj().is_none() {
                return Err(bad(
                    job.offset,
                    "job",
                    format!("expected an object, found {}", job.type_name()),
                ));
            }
            Ok(Request::Submit(Box::new(parse_job(job)?)))
        }
        other => Err(RequestError::UnknownOp {
            offset: op_value.offset,
            op: other.to_string(),
        }),
    }
}

fn parse_job(job: &Json) -> Result<JobSpec, RequestError> {
    const KNOWN: [&str; 9] = [
        "benches",
        "archs",
        "preset",
        "fuel",
        "deadline_ms",
        "threads",
        "reuse",
        "max_cost",
        "fault",
    ];
    // Strictness first: an unknown field is more likely a typo'd budget
    // than an extension, and a budget silently ignored is the worst
    // failure mode a budgeted service can have.
    for (key, key_offset, _) in job.as_obj().unwrap_or(&[]) {
        if !KNOWN.contains(&key.as_str()) {
            return Err(bad(
                *key_offset,
                format!("job.{key}"),
                "unknown field".to_string(),
            ));
        }
    }

    let benches_value = job.get("benches").ok_or(RequestError::MissingField {
        offset: job.offset,
        field: "job.benches".to_string(),
    })?;
    let bench_items = benches_value.as_arr().ok_or_else(|| {
        bad(
            benches_value.offset,
            "job.benches",
            format!("expected an array, found {}", benches_value.type_name()),
        )
    })?;
    if bench_items.is_empty() {
        return Err(bad(
            benches_value.offset,
            "job.benches",
            "at least one benchmark is required",
        ));
    }
    let mut benches = Vec::with_capacity(bench_items.len());
    for item in bench_items {
        let letter = item.as_str().ok_or_else(|| {
            bad(
                item.offset,
                "job.benches",
                format!("expected a benchmark letter, found {}", item.type_name()),
            )
        })?;
        let b = bench_from_letter(letter).ok_or_else(|| {
            bad(
                item.offset,
                "job.benches",
                format!("unknown benchmark '{letter}' (know A C D E F G H GF GEF DH DHEF)"),
            )
        })?;
        benches.push(b);
    }

    let archs = parse_space(job)?;

    let fuel = opt_u64(job, "fuel", "job.fuel")?;
    let deadline_ms = match opt_u64(job, "deadline_ms", "job.deadline_ms")? {
        Some(0) => {
            // Zero would deadline every job before it starts; the field's
            // offset is re-derived for the error. `get` cannot fail here.
            let v = job.get("deadline_ms").map_or(job.offset, |v| v.offset);
            return Err(bad(v, "job.deadline_ms", "deadline must be at least 1 ms"));
        }
        other => other,
    };
    let threads = match opt_u64(job, "threads", "job.threads")? {
        None => 1,
        Some(0) => {
            let v = job.get("threads").map_or(job.offset, |v| v.offset);
            return Err(bad(v, "job.threads", "at least one thread is required"));
        }
        Some(n) if n > MAX_JOB_THREADS => {
            let v = job.get("threads").map_or(job.offset, |v| v.offset);
            return Err(bad(
                v,
                "job.threads",
                format!("at most {MAX_JOB_THREADS} threads per job"),
            ));
        }
        Some(n) => n as usize,
    };
    let reuse = match job.get("reuse") {
        None => true,
        Some(v) => v.as_bool().ok_or_else(|| {
            bad(
                v.offset,
                "job.reuse",
                format!("expected a boolean, found {}", v.type_name()),
            )
        })?,
    };
    let max_cost = match job.get("max_cost") {
        None => None,
        Some(v) => {
            let c = v.as_f64().ok_or_else(|| {
                bad(
                    v.offset,
                    "job.max_cost",
                    format!("expected a number, found {}", v.type_name()),
                )
            })?;
            if c.partial_cmp(&0.0) != Some(std::cmp::Ordering::Greater) {
                return Err(bad(
                    v.offset,
                    "job.max_cost",
                    "cost budget must be positive",
                ));
            }
            Some(c)
        }
    };
    let fault = match job.get("fault") {
        None => None,
        Some(v) => Some(parse_fault(v)?),
    };

    Ok(JobSpec {
        benches,
        archs,
        fuel,
        deadline_ms,
        threads,
        reuse,
        max_cost,
        fault,
    })
}

fn parse_space(job: &Json) -> Result<Vec<ArchSpec>, RequestError> {
    let archs_value = job.get("archs");
    let preset_value = job.get("preset");
    match (archs_value, preset_value) {
        (Some(_), Some(p)) => Err(bad(
            p.offset,
            "job.preset",
            "give either 'archs' or 'preset', not both",
        )),
        (None, None) => Err(RequestError::MissingField {
            offset: job.offset,
            field: "job.archs".to_string(),
        }),
        (None, Some(p)) => {
            let name = p.as_str().ok_or_else(|| {
                bad(
                    p.offset,
                    "job.preset",
                    format!("expected a string, found {}", p.type_name()),
                )
            })?;
            match name {
                "paper" => Ok(DesignSpace::paper().all_arrangements()),
                "extended" => Ok(DesignSpace::extended().all_arrangements()),
                "smoke" => Ok(cfp_dse::ExploreConfig::smoke().archs),
                other => Err(bad(
                    p.offset,
                    "job.preset",
                    format!("unknown preset '{other}' (know paper, extended, smoke)"),
                )),
            }
        }
        (Some(a), None) => {
            let items = a.as_arr().ok_or_else(|| {
                bad(
                    a.offset,
                    "job.archs",
                    format!("expected an array, found {}", a.type_name()),
                )
            })?;
            if items.is_empty() {
                return Err(bad(
                    a.offset,
                    "job.archs",
                    "at least one architecture is required",
                ));
            }
            let mut archs = Vec::with_capacity(items.len());
            for item in items {
                let text = item.as_str().ok_or_else(|| {
                    bad(
                        item.offset,
                        "job.archs",
                        format!("expected a spec string, found {}", item.type_name()),
                    )
                })?;
                let spec = ArchSpec::parse(text).map_err(|e| bad(item.offset, "job.archs", e))?;
                archs.push(spec);
            }
            Ok(archs)
        }
    }
}

fn parse_fault(v: &Json) -> Result<FaultSpec, RequestError> {
    if v.as_obj().is_none() {
        return Err(bad(
            v.offset,
            "job.fault",
            format!("expected an object, found {}", v.type_name()),
        ));
    }
    let kind_value = v.get("kind").ok_or(RequestError::MissingField {
        offset: v.offset,
        field: "job.fault.kind".to_string(),
    })?;
    let kind = kind_value.as_str().ok_or_else(|| {
        bad(
            kind_value.offset,
            "job.fault.kind",
            format!("expected a string, found {}", kind_value.type_name()),
        )
    })?;
    let seed = opt_u64(v, "seed", "job.fault.seed")?.ok_or(RequestError::MissingField {
        offset: v.offset,
        field: "job.fault.seed".to_string(),
    })?;
    let denominator =
        opt_u64(v, "denominator", "job.fault.denominator")?.ok_or(RequestError::MissingField {
            offset: v.offset,
            field: "job.fault.denominator".to_string(),
        })?;
    if denominator == 0 {
        let d = v.get("denominator").map_or(v.offset, |d| d.offset);
        return Err(bad(
            d,
            "job.fault.denominator",
            "denominator must be at least 1",
        ));
    }
    let millis = opt_u64(v, "millis", "job.fault.millis")?;
    match kind {
        "panic" => {
            if millis.is_some() {
                let m = v.get("millis").map_or(v.offset, |m| m.offset);
                return Err(bad(
                    m,
                    "job.fault.millis",
                    "millis only applies to stall faults",
                ));
            }
            Ok(FaultSpec {
                stall_millis: None,
                seed,
                denominator,
            })
        }
        "stall" => {
            let ms = millis.ok_or(RequestError::MissingField {
                offset: v.offset,
                field: "job.fault.millis".to_string(),
            })?;
            Ok(FaultSpec {
                stall_millis: Some(ms),
                seed,
                denominator,
            })
        }
        "drop" => Err(bad(
            kind_value.offset,
            "job.fault.kind",
            "connection drops are injected client-side, not per job",
        )),
        other => Err(bad(
            kind_value.offset,
            "job.fault.kind",
            format!("unknown fault kind '{other}' (know panic, stall)"),
        )),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn a_full_submit_parses_and_round_trips_canonically() {
        let line = r#"{"op":"submit","job":{"benches":["A","DH"],"archs":["(4 2 128 2 4 1)","(8 4 256 2 4 2)"],"fuel":5000,"deadline_ms":800,"threads":2,"reuse":false,"max_cost":3.5,"fault":{"kind":"stall","seed":7,"denominator":9,"millis":50}}}"#;
        let req = parse_request(line).expect("parses");
        let Request::Submit(job) = req else {
            panic!("not a submit: {req:?}")
        };
        assert_eq!(job.benches, vec![Benchmark::A, Benchmark::DH]);
        assert_eq!(job.archs.len(), 2);
        assert_eq!(job.fuel, Some(5000));
        assert_eq!(job.threads, 2);
        assert!(!job.reuse);
        assert_eq!(job.max_cost, Some(3.5));
        assert_eq!(
            job.fault,
            Some(FaultSpec {
                stall_millis: Some(50),
                seed: 7,
                denominator: 9
            })
        );
        // The canonical line re-parses to the same job (fixed point).
        let canon = job.submit_line();
        let Request::Submit(again) = parse_request(&canon).expect("canonical parses") else {
            panic!("canonical not a submit")
        };
        assert_eq!(*job, *again);
        assert_eq!(again.submit_line(), canon);
    }

    #[test]
    fn presets_resolve_to_explicit_archs() {
        let line = r#"{"op":"submit","job":{"benches":["D"],"preset":"smoke"}}"#;
        let Request::Submit(job) = parse_request(line).expect("parses") else {
            panic!()
        };
        assert_eq!(job.archs, cfp_dse::ExploreConfig::smoke().archs);
        // The canonical form has no preset left in it.
        assert!(!job.submit_line().contains("preset"));
    }

    #[test]
    fn simple_ops_parse() {
        assert_eq!(parse_request(r#"{"op":"ping"}"#), Ok(Request::Ping));
        assert_eq!(parse_request(r#"{"op":"stats"}"#), Ok(Request::Stats));
        assert_eq!(parse_request(r#"{"op":"shutdown"}"#), Ok(Request::Shutdown));
        assert_eq!(
            parse_request(r#"{"op":"status","id":"job-000001"}"#),
            Ok(Request::Status {
                id: "job-000001".to_string()
            })
        );
        assert_eq!(
            parse_request(r#"{"op":"result","id":"j","wait":false}"#),
            Ok(Request::Result {
                id: "j".to_string(),
                wait: false
            })
        );
    }

    #[test]
    fn rejections_name_field_and_offset() {
        let line = r#"{"op":"submit","job":{"benches":["A","Q"],"archs":["(4 2 128 2 4 1)"]}}"#;
        let e = parse_request(line).expect_err("unknown benchmark");
        let RequestError::BadField {
            offset,
            field,
            message,
        } = &e
        else {
            panic!("{e:?}")
        };
        assert_eq!(field, "job.benches");
        assert_eq!(&line[*offset..*offset + 3], "\"Q\"");
        assert!(message.contains('Q'));
    }
}
