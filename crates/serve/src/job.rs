//! From an admitted [`JobSpec`] to an exploration run and back: config
//! materialization, the result-surface digest, and the terminal result
//! JSON the daemon persists and serves.

use crate::json;
use crate::proto::JobSpec;
use cfp_dse::{ArchEval, Checkpoint, EvalOutcome, Exploration, ExploreConfig};
use cfp_machine::CostModel;
use std::path::Path;

/// The [`ExploreConfig`] a job runs as, journaling to `ck_path`.
///
/// The checkpoint always opens in resume mode: a fresh job finds no
/// journal and starts cold, a retried or recovered job replays what its
/// earlier attempt completed — one code path, and the bit-identity
/// guarantee is the checkpoint layer's, not this function's.
#[must_use]
pub fn explore_config(spec: &JobSpec, ck_path: &Path) -> ExploreConfig {
    ExploreConfig {
        archs: spec.archs.clone(),
        benches: spec.benches.clone(),
        threads: spec.threads,
        progress: false,
        reuse: spec.reuse,
        fuel: spec.fuel,
        checkpoint: Some(Checkpoint::resume(ck_path)),
        fault: spec.fault.as_ref().map(crate::proto::FaultSpec::injector),
    }
}

/// Drop candidates over the job's cost budget, in place. Runs at
/// admission so the journaled canonical job already reflects the
/// filter — a recovered job must not depend on re-running it.
pub fn apply_cost_budget(spec: &mut JobSpec) {
    let Some(max_cost) = spec.max_cost else {
        return;
    };
    let cost = CostModel::paper_calibrated();
    spec.archs.retain(|a| cost.cost(a) <= max_cost);
    spec.max_cost = None;
}

/// FNV-1a, the repo's standard result-surface digest (same constants as
/// the checkpoint fingerprint and the bench exhibits).
struct Digest(u64);

impl Digest {
    fn new() -> Self {
        Digest(0xcbf2_9ce4_8422_2325)
    }

    fn eat(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.0 ^= u64::from(b);
            self.0 = self.0.wrapping_mul(0x0000_0100_0000_01b3);
        }
        self.eat_byte(0x1f);
    }

    fn eat_byte(&mut self, b: u8) {
        self.0 ^= u64::from(b);
        self.0 = self.0.wrapping_mul(0x0000_0100_0000_01b3);
    }

    fn eat_u64(&mut self, v: u64) {
        self.eat(&v.to_le_bytes());
    }

    fn eat_arch(&mut self, arch: &ArchEval) {
        self.eat(arch.spec.to_string().as_bytes());
        self.eat_u64(arch.cost.to_bits());
        self.eat_u64(arch.derate.to_bits());
        for out in &arch.outcomes {
            match out {
                EvalOutcome::Done(m) => {
                    self.eat(b"done");
                    self.eat_u64(m.cycles_per_output.to_bits());
                    self.eat_u64(u64::from(m.unroll));
                    self.eat_byte(u8::from(m.spilled));
                    self.eat_u64(u64::from(m.compilations));
                }
                EvalOutcome::Failed { reason } => {
                    self.eat(b"failed");
                    self.eat(reason.kind.token().as_bytes());
                }
            }
        }
    }
}

/// FNV-1a digest of a run's full result surface: every architecture's
/// spec, cost, derate, and per-benchmark outcome (exact `f64` bit
/// patterns), plus the baseline. Two runs of the same job are
/// bit-identical exactly when their digests match — this is the value
/// the kill-and-resume recovery test compares.
#[must_use]
pub fn result_digest(ex: &Exploration) -> u64 {
    let mut d = Digest::new();
    for b in &ex.benches {
        d.eat(b.letter().as_bytes());
    }
    d.eat_arch(&ex.baseline);
    for arch in &ex.archs {
        d.eat_arch(arch);
    }
    d.0
}

/// The best architecture of a run by harmonic-mean speedup, skipping
/// rows poisoned by quarantined units. `None` when nothing measured.
#[must_use]
pub fn best_arch(ex: &Exploration) -> Option<(usize, f64)> {
    let mut best: Option<(usize, f64)> = None;
    for a in 0..ex.archs.len() {
        let su = Exploration::harmonic_mean(&ex.speedup_row(a));
        if su.is_finite() && best.is_none_or(|(_, b)| su > b) {
            best = Some((a, su));
        }
    }
    best
}

/// The terminal result JSON for a completed run: identity, digest,
/// stats, and the winning architecture. One line; this is both the wire
/// response and the `.result` file's content.
#[must_use]
pub fn result_json(id: &str, ex: &Exploration, attempts: u32, wall_ms: u64) -> String {
    let digest = result_digest(ex);
    let mut out = String::from(r#"{"ok":true,"op":"result","state":"done","id":"#);
    json::write_str(&mut out, id);
    out.push_str(&format!(
        r#","digest":"{digest:016x}","attempts":{attempts},"wall_ms":{wall_ms}"#
    ));
    let s = &ex.stats;
    out.push_str(&format!(
        r#","architectures":{},"compilations":{},"cache_hits":{},"unique_schedules":{},"failed_units":{},"fuel_exhausted":{},"resumed_units":{}"#,
        s.architectures,
        s.compilations,
        s.cache_hits,
        s.unique_schedules,
        s.failed_units,
        s.fuel_exhausted,
        s.resumed_units
    ));
    if let Some((a, su)) = best_arch(ex) {
        out.push_str(r#","best":{"arch":"#);
        json::write_str(&mut out, &ex.archs[a].spec.to_string());
        out.push_str(&format!(r#","su":{su},"cost":{}}}"#, ex.archs[a].cost));
    }
    out.push('}');
    out
}

/// The terminal result JSON for a failed job. Same envelope as
/// [`result_json`], `state: "failed"`, with the error's class token and
/// rendering.
#[must_use]
pub fn failure_json(id: &str, err: &crate::error::JobError, attempts: u32) -> String {
    let mut out = String::from(r#"{"ok":false,"op":"result","state":"failed","id":"#);
    json::write_str(&mut out, id);
    out.push_str(&format!(r#","attempts":{attempts},"error":"#));
    json::write_str(&mut out, err.token());
    out.push_str(r#","message":"#);
    json::write_str(&mut out, &err.to_string());
    out.push('}');
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use cfp_kernels::Benchmark;
    use cfp_machine::ArchSpec;

    fn tiny_job() -> JobSpec {
        JobSpec {
            benches: vec![Benchmark::D],
            archs: vec![
                ArchSpec::baseline(),
                ArchSpec::new(4, 2, 128, 1, 4, 1).expect("valid"),
            ],
            ..JobSpec::default()
        }
    }

    #[test]
    fn digests_are_stable_and_sensitive() {
        let spec = tiny_job();
        let dir = std::env::temp_dir().join(format!("cfp-serve-job-test-{}", std::process::id()));
        std::fs::create_dir_all(&dir).expect("tmp dir");
        let ck = dir.join("digest.ck");
        let _ = std::fs::remove_file(&ck);
        let cfg = explore_config(&spec, &ck);
        let e1 = Exploration::try_run(&cfg).expect("runs");
        let _ = std::fs::remove_file(&ck);
        let e2 = Exploration::try_run(&cfg).expect("runs");
        assert_eq!(result_digest(&e1), result_digest(&e2));
        // A different space digests differently.
        let mut other = spec.clone();
        other.archs.pop();
        let ck2 = dir.join("digest2.ck");
        let _ = std::fs::remove_file(&ck2);
        let e3 = Exploration::try_run(&explore_config(&other, &ck2)).expect("runs");
        assert_ne!(result_digest(&e1), result_digest(&e3));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn cost_budget_filters_at_admission_and_clears_itself() {
        let mut spec = tiny_job();
        spec.max_cost = Some(1.5);
        let before = spec.archs.len();
        apply_cost_budget(&mut spec);
        assert!(spec.archs.len() < before, "the 4-ALU machine costs > 1.5");
        assert_eq!(spec.archs, vec![ArchSpec::baseline()]);
        assert_eq!(spec.max_cost, None, "baked in, not re-applied on recovery");
    }

    #[test]
    fn result_json_is_parseable_and_complete() {
        let spec = tiny_job();
        let dir = std::env::temp_dir().join(format!("cfp-serve-json-test-{}", std::process::id()));
        std::fs::create_dir_all(&dir).expect("tmp dir");
        let ck = dir.join("result.ck");
        let _ = std::fs::remove_file(&ck);
        let ex = Exploration::try_run(&explore_config(&spec, &ck)).expect("runs");
        let line = result_json("job-000007", &ex, 1, 42);
        let v = crate::json::parse(&line).expect("valid JSON");
        assert_eq!(
            v.get("id").and_then(crate::json::Json::as_str),
            Some("job-000007")
        );
        assert_eq!(
            v.get("state").and_then(crate::json::Json::as_str),
            Some("done")
        );
        let digest = v
            .get("digest")
            .and_then(crate::json::Json::as_str)
            .expect("digest");
        assert_eq!(
            u64::from_str_radix(digest, 16).expect("hex"),
            result_digest(&ex)
        );
        assert!(v.get("best").is_some());
        let _ = std::fs::remove_dir_all(&dir);
    }
}
