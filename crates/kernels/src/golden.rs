//! Golden reference implementations.
//!
//! Plain-Rust mirrors of each DSL kernel, statement for statement. Input
//! ranges (see [`crate::data`]) keep every intermediate inside the i32
//! range, so ordinary `i64` arithmetic here equals the IR's 32-bit
//! wrapping arithmetic; casts (`u8(…)`, `i16(…)`) are applied exactly
//! where the DSL applies them.

use crate::data::FIR_STRIDE;
use crate::Benchmark;
use cfp_ir::{MemImage, Ty};

/// Run the reference implementation of `b` for `n` iterations against
/// `mem` (same binding layout as the compiled kernel expects).
///
/// # Panics
/// Panics if `mem` was not produced by the matching
/// [`Workload`](crate::data::Workload).
pub fn run(b: Benchmark, mem: &mut MemImage, n: u64) {
    match b {
        Benchmark::A => fir7x7(mem, n),
        Benchmark::C => idct_aan(mem, n),
        Benchmark::D => rgb2ycc(mem, n),
        Benchmark::E => ycc2rgb(mem, n),
        Benchmark::F => halftone_fs(mem, n),
        Benchmark::G => scale_bilinear(mem, n),
        Benchmark::H => median3x3(mem, n),
        Benchmark::GF => jam_gf(mem, n),
        Benchmark::GEF => jam_gef(mem, n),
        Benchmark::DH => jam_dh(mem, n),
        Benchmark::DHEF => jam_dhef(mem, n),
    }
}

fn clamp255(x: i64) -> i64 {
    // min(255, max(0, x))
    x.clamp(0, 255)
}

/// `(y, cb, cr)` of benchmark D, before clamping.
fn d_convert(r: i64, g: i64, b: i64) -> (i64, i64, i64) {
    (
        (77 * r + 150 * g + 29 * b + 128) >> 8,
        ((128 * b - 43 * r - 85 * g + 128) >> 8) + 128,
        ((128 * r - 107 * g - 21 * b + 128) >> 8) + 128,
    )
}

/// `(r, g, b)` of benchmark E, before clamping (`cb`/`cr` pre-biased).
fn e_convert(y: i64, cb: i64, cr: i64) -> (i64, i64, i64) {
    (
        y + ((359 * cr + 128) >> 8),
        y - ((88 * cb + 183 * cr + 128) >> 8),
        y + ((454 * cb + 128) >> 8),
    )
}

/// The 19-step compare-exchange network of benchmark H; median in `p[4]`.
fn med9(p: &mut [i64; 9]) -> i64 {
    let ce = |a: usize, b: usize, p: &mut [i64; 9]| {
        if p[a] > p[b] {
            p.swap(a, b);
        }
    };
    ce(1, 2, p);
    ce(4, 5, p);
    ce(7, 8, p);
    ce(0, 1, p);
    ce(3, 4, p);
    ce(6, 7, p);
    ce(1, 2, p);
    ce(4, 5, p);
    ce(7, 8, p);
    ce(0, 3, p);
    ce(5, 8, p);
    ce(4, 7, p);
    ce(3, 6, p);
    ce(1, 4, p);
    ce(2, 5, p);
    ce(4, 7, p);
    ce(4, 2, p);
    ce(6, 4, p);
    ce(4, 2, p);
    p[4]
}

/// Floyd–Steinberg state: running error and one-ahead errTemp, per
/// channel (the `est[0..3]`/`est[3..6]` scalars of the DSL kernels).
#[derive(Default)]
struct FsState {
    e: [i64; 3],
    et: [i64; 3],
}

impl FsState {
    /// Diffuse one pixel (`v` per channel) at block position `b`; `base`
    /// is the element index of the pixel triple in `err`.
    fn pixel(&mut self, v: [i64; 3], err: &mut [i64], base: usize, ob: &mut [i64; 3], b: u32) {
        for k in 0..3 {
            let mut etoff = self.et[k];
            self.et[k] = err[base + 3 + k];
            let old = self.e[k];
            self.e[k] = self.et[k] + ((self.e[k] * 7 + 8) >> 4) + (v[k] << 3);
            let hit = self.e[k] > 1024;
            if hit {
                ob[k] |= 128 >> b;
                self.e[k] -= 2040;
            }
            etoff += (self.e[k] * 3 + 8) >> 4;
            self.et[k] = (self.e[k] * 5 + old + 8) >> 4;
            err[base + k] = Ty::I16.truncate(etoff);
        }
    }
}

fn fir7x7(mem: &mut MemImage, n: u64) {
    let src = mem.array(0).to_vec();
    let coef = mem.array(1).to_vec();
    let stride = usize::try_from(FIR_STRIDE).expect("small");
    let dst = mem.array_mut(2);
    for i in 0..usize::try_from(n).expect("small") {
        let mut acc = 0_i64;
        for r in 0..4_usize {
            for c in 0..4_usize {
                let mut s = src[r * stride + i + c];
                if c != 3 {
                    s += src[r * stride + i + 6 - c];
                }
                if r != 3 {
                    s += src[(6 - r) * stride + i + c];
                    if c != 3 {
                        s += src[(6 - r) * stride + i + 6 - c];
                    }
                }
                acc += s * coef[4 * r + c];
            }
        }
        dst[i] = Ty::U8.truncate(clamp255((acc + 2048) >> 12));
    }
}

/// One AAN 8-point pass (fixed-point, 12-bit constants); mirrors the DSL
/// butterfly exactly. Output order: `[o0, o1, …, o7]` by index.
fn aan8(x: [i64; 8]) -> [i64; 8] {
    let tmp10 = x[0] + x[4];
    let tmp11 = x[0] - x[4];
    let tmp13 = x[2] + x[6];
    let tmp12 = (((x[2] - x[6]) * 5793) >> 12) - tmp13;
    let e0 = tmp10 + tmp13;
    let e3 = tmp10 - tmp13;
    let e1 = tmp11 + tmp12;
    let e2 = tmp11 - tmp12;

    let z13 = x[5] + x[3];
    let z10 = x[5] - x[3];
    let z11 = x[1] + x[7];
    let z12 = x[1] - x[7];
    let o7 = z11 + z13;
    let t11 = ((z11 - z13) * 5793) >> 12;
    let z5 = ((z10 + z12) * 7568) >> 12;
    let t10 = ((z12 * 4433) >> 12) - z5;
    let t12 = z5 - ((z10 * 10703) >> 12);
    let o6 = t12 - o7;
    let o5 = t11 - o6;
    let o4 = t10 + o5;

    [
        e0 + o7,
        e1 + o6,
        e2 + o5,
        e3 - o4,
        e3 + o4,
        e2 - o5,
        e1 - o6,
        e0 - o7,
    ]
}

fn idct_aan(mem: &mut MemImage, n: u64) {
    let blk = mem.array(0).to_vec();
    let qt = mem.array(1).to_vec();
    let dst = mem.array_mut(2);
    for i in 0..usize::try_from(n).expect("small") {
        let mut t = [0_i64; 64];
        for r in 0..8 {
            let x: [i64; 8] = std::array::from_fn(|c| blk[64 * i + 8 * r + c] * qt[8 * r + c]);
            let o = aan8(x);
            for (c, v) in o.into_iter().enumerate() {
                t[8 * r + c] = v;
            }
        }
        for c in 0..8 {
            let x: [i64; 8] = std::array::from_fn(|k| t[c + 8 * k]);
            let o = aan8(x);
            for (k, v) in o.into_iter().enumerate() {
                dst[64 * i + 8 * k + c] = Ty::U8.truncate(clamp255((v >> 6) + 128));
            }
        }
    }
}

fn rgb2ycc(mem: &mut MemImage, n: u64) {
    let src = mem.array(0).to_vec();
    let dst = mem.array_mut(1);
    for i in 0..usize::try_from(n).expect("small") {
        let (y, cb, cr) = d_convert(src[3 * i], src[3 * i + 1], src[3 * i + 2]);
        dst[3 * i] = Ty::U8.truncate(clamp255(y));
        dst[3 * i + 1] = Ty::U8.truncate(clamp255(cb));
        dst[3 * i + 2] = Ty::U8.truncate(clamp255(cr));
    }
}

fn ycc2rgb(mem: &mut MemImage, n: u64) {
    let src = mem.array(0).to_vec();
    let dst = mem.array_mut(1);
    for i in 0..usize::try_from(n).expect("small") {
        let (r, g, b) = e_convert(src[3 * i], src[3 * i + 1] - 128, src[3 * i + 2] - 128);
        dst[3 * i] = Ty::U8.truncate(clamp255(r));
        dst[3 * i + 1] = Ty::U8.truncate(clamp255(g));
        dst[3 * i + 2] = Ty::U8.truncate(clamp255(b));
    }
}

fn halftone_fs(mem: &mut MemImage, n: u64) {
    let src = mem.array(0).to_vec();
    let mut err = mem.array(1).to_vec();
    let mut st = FsState::default();
    {
        let dst = mem.array_mut(2);
        for i in 0..usize::try_from(n).expect("small") {
            let mut ob = [0_i64; 3];
            for b in 0..8_u32 {
                let base = 24 * i + 3 * b as usize;
                let v: [i64; 3] = std::array::from_fn(|k| src[base + k]);
                st.pixel(v, &mut err, base, &mut ob, b);
            }
            for k in 0..3 {
                dst[3 * i + k] = Ty::U8.truncate(ob[k]);
            }
        }
    }
    mem.array_mut(1).copy_from_slice(&err);
}

fn scale_bilinear(mem: &mut MemImage, n: u64) {
    let rowa = mem.array(0).to_vec();
    let rowb = mem.array(1).to_vec();
    let dst = mem.array_mut(2);
    for i in 0..usize::try_from(n).expect("small") {
        for k in 0..3 {
            dst[3 * i + k] = Ty::U8.truncate((rowa[3 * i + k] * 3 + rowb[3 * i + k]) >> 2);
        }
    }
}

fn median3x3(mem: &mut MemImage, n: u64) {
    let r0 = mem.array(0).to_vec();
    let r1 = mem.array(1).to_vec();
    let r2 = mem.array(2).to_vec();
    let dst = mem.array_mut(3);
    for i in 0..usize::try_from(n).expect("small") {
        for k in 0..3 {
            let mut p = [0_i64; 9];
            for x in 0..3 {
                p[x] = r0[3 * (i + x) + k];
                p[3 + x] = r1[3 * (i + x) + k];
                p[6 + x] = r2[3 * (i + x) + k];
            }
            dst[3 * i + k] = Ty::U8.truncate(med9(&mut p));
        }
    }
}

fn jam_gf(mem: &mut MemImage, n: u64) {
    let rowa = mem.array(0).to_vec();
    let rowb = mem.array(1).to_vec();
    let mut err = mem.array(2).to_vec();
    let mut st = FsState::default();
    {
        let dst = mem.array_mut(3);
        for i in 0..usize::try_from(n).expect("small") {
            let mut ob = [0_i64; 3];
            for b in 0..8_u32 {
                let base = 24 * i + 3 * b as usize;
                let v: [i64; 3] =
                    std::array::from_fn(|k| (rowa[base + k] * 3 + rowb[base + k]) >> 2);
                st.pixel(v, &mut err, base, &mut ob, b);
            }
            for k in 0..3 {
                dst[3 * i + k] = Ty::U8.truncate(ob[k]);
            }
        }
    }
    mem.array_mut(2).copy_from_slice(&err);
}

fn jam_gef(mem: &mut MemImage, n: u64) {
    let rowa = mem.array(0).to_vec();
    let rowb = mem.array(1).to_vec();
    let mut err = mem.array(2).to_vec();
    let mut st = FsState::default();
    {
        let dst = mem.array_mut(3);
        for i in 0..usize::try_from(n).expect("small") {
            let mut ob = [0_i64; 3];
            for b in 0..8_u32 {
                let base = 24 * i + 3 * b as usize;
                let y = (rowa[base] * 3 + rowb[base]) >> 2;
                let cb = ((rowa[base + 1] * 3 + rowb[base + 1]) >> 2) - 128;
                let cr = ((rowa[base + 2] * 3 + rowb[base + 2]) >> 2) - 128;
                let (r, g, bch) = e_convert(y, cb, cr);
                let v = [clamp255(r), clamp255(g), clamp255(bch)];
                st.pixel(v, &mut err, base, &mut ob, b);
            }
            for k in 0..3 {
                dst[3 * i + k] = Ty::U8.truncate(ob[k]);
            }
        }
    }
    mem.array_mut(2).copy_from_slice(&err);
}

/// Converted 3×3 neighborhood of pixel column `col` (rows `s0..s2`),
/// laid out like the DSL's `cv[27]`.
fn dh_neighborhood(s: [&[i64]; 3], col: usize) -> [i64; 27] {
    let mut cv = [0_i64; 27];
    for (r, row) in s.iter().enumerate() {
        for x in 0..3 {
            let rr = row[3 * (col + x)];
            let gg = row[3 * (col + x) + 1];
            let bb = row[3 * (col + x) + 2];
            let (y, cb, cr) = d_convert(rr, gg, bb);
            cv[9 * r + 3 * x] = clamp255(y);
            cv[9 * r + 3 * x + 1] = clamp255(cb);
            cv[9 * r + 3 * x + 2] = clamp255(cr);
        }
    }
    cv
}

fn jam_dh(mem: &mut MemImage, n: u64) {
    let s0 = mem.array(0).to_vec();
    let s1 = mem.array(1).to_vec();
    let s2 = mem.array(2).to_vec();
    let dst = mem.array_mut(3);
    for i in 0..usize::try_from(n).expect("small") {
        let cv = dh_neighborhood([&s0, &s1, &s2], i);
        for k in 0..3 {
            let mut p = [0_i64; 9];
            for r in 0..3 {
                for x in 0..3 {
                    p[3 * r + x] = cv[9 * r + 3 * x + k];
                }
            }
            dst[3 * i + k] = Ty::U8.truncate(med9(&mut p));
        }
    }
}

fn jam_dhef(mem: &mut MemImage, n: u64) {
    let s0 = mem.array(0).to_vec();
    let s1 = mem.array(1).to_vec();
    let s2 = mem.array(2).to_vec();
    let mut err = mem.array(3).to_vec();
    let mut st = FsState::default();
    {
        let dst = mem.array_mut(4);
        for i in 0..usize::try_from(n).expect("small") {
            let mut ob = [0_i64; 3];
            for b in 0..8_u32 {
                let col = 8 * i + b as usize;
                let cv = dh_neighborhood([&s0, &s1, &s2], col);
                let mut med = [0_i64; 3];
                for (k, m) in med.iter_mut().enumerate() {
                    let mut p = [0_i64; 9];
                    for r in 0..3 {
                        for x in 0..3 {
                            p[3 * r + x] = cv[9 * r + 3 * x + k];
                        }
                    }
                    *m = med9(&mut p);
                }
                let (r, g, bch) = e_convert(med[0], med[1] - 128, med[2] - 128);
                let v = [clamp255(r), clamp255(g), clamp255(bch)];
                let base = 24 * i + 3 * b as usize;
                st.pixel(v, &mut err, base, &mut ob, b);
            }
            for k in 0..3 {
                dst[3 * i + k] = Ty::U8.truncate(ob[k]);
            }
        }
    }
    mem.array_mut(3).copy_from_slice(&err);
}

#[cfg(test)]
mod tests {
    use super::*;
    use cfp_ir::Interpreter;

    /// The keystone test: for every benchmark, interpreter(DSL) ==
    /// golden Rust, element for element on every observable array.
    #[test]
    fn interpreter_matches_golden_on_every_benchmark() {
        for b in Benchmark::ALL {
            for seed in [1_u64, 99] {
                let w = b.workload(6, seed);
                let mut m_interp = w.image();
                let mut m_gold = w.image();
                Interpreter::new()
                    .run(&w.kernel, &mut m_interp, w.iters)
                    .unwrap_or_else(|e| panic!("{b}: {e}"));
                run(b, &mut m_gold, w.iters);
                for i in w.observable_arrays() {
                    assert_eq!(
                        m_interp.array(i),
                        m_gold.array(i),
                        "{b} seed {seed}: array {i} ({})",
                        w.kernel.arrays[i].name
                    );
                }
            }
        }
    }

    /// Same keystone, but with the optimizer and unrolling applied.
    #[test]
    fn optimized_unrolled_kernels_still_match_golden() {
        for b in Benchmark::ALL {
            let w = b.workload(8, 3);
            for unroll in [1_u32, 2, 4] {
                let mut k = w.kernel.clone();
                cfp_opt::optimize(&mut k);
                let k = cfp_opt::unroll::unroll(&k, unroll);
                let mut m = w.image();
                Interpreter::new()
                    .run(&k, &mut m, w.iters / u64::from(unroll))
                    .unwrap_or_else(|e| panic!("{b} x{unroll}: {e}"));
                let mut gold = w.image();
                run(b, &mut gold, w.iters);
                for i in w.observable_arrays() {
                    assert_eq!(m.array(i), gold.array(i), "{b} x{unroll} array {i}");
                }
            }
        }
    }

    #[test]
    fn median_network_is_a_median() {
        // Cross-check the CE network against a sort, on many inputs.
        let mut rng = cfp_testkit::Rng::new(5);
        for _ in 0..500 {
            let mut p: [i64; 9] = std::array::from_fn(|_| rng.range_i64(0..=255));
            let mut sorted = p;
            sorted.sort_unstable();
            assert_eq!(med9(&mut p), sorted[4]);
        }
    }
}
