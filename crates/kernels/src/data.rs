//! Deterministic workload generation.
//!
//! The paper's inputs were rows of a full-color RGB image; the closest
//! synthetic equivalent that exercises the same code paths is seeded
//! uniform pixel data (the kernels are data-independent except for the
//! if-converted selects, which uniform data exercises on both arms). All
//! generators are deterministic in `(benchmark, n, seed)`.
//!
//! Value ranges are chosen so every intermediate of every kernel fits a
//! 32-bit register (documented per kernel in `golden.rs`), keeping plain
//! and wrapping arithmetic identical.

use crate::Benchmark;
use cfp_ir::{ArrayKind, Kernel, MemImage};
use cfp_testkit::Rng;

/// Row pitch of benchmark A's 7-row input window (a compile-time
/// constant of the kernel; inputs must keep `n + 6 <= FIR_STRIDE`).
pub const FIR_STRIDE: i64 = 512;

/// A ready-to-run problem instance: the compiled kernel, the iteration
/// count, and per-array input data (`None` for local scratch).
#[derive(Debug, Clone)]
pub struct Workload {
    /// The compiled (unoptimized) kernel.
    pub kernel: Kernel,
    /// Outer-loop iterations to run.
    pub iters: u64,
    /// Initial contents per declared array; `None` for locals.
    pub inputs: Vec<Option<Vec<i64>>>,
}

impl Workload {
    /// Build a bound memory image (locals allocated, inputs copied in).
    ///
    /// # Panics
    /// Panics if the workload's shapes do not match the kernel — a
    /// construction invariant of [`Benchmark::workload`].
    #[must_use]
    pub fn image(&self) -> MemImage {
        let mut mem = MemImage::for_kernel(&self.kernel);
        for (i, data) in self.inputs.iter().enumerate() {
            match (&self.kernel.arrays[i].kind, data) {
                (ArrayKind::Local(_), None) => {}
                (ArrayKind::Local(_), Some(_)) => panic!("local array bound with data"),
                (_, Some(d)) => {
                    mem.bind(i, d.clone());
                }
                (_, None) => panic!("non-local array missing data"),
            }
        }
        mem
    }

    /// Indices of arrays whose final contents are observable outputs
    /// (everything except local scratch).
    #[must_use]
    pub fn observable_arrays(&self) -> Vec<usize> {
        self.kernel
            .arrays
            .iter()
            .enumerate()
            .filter(|(_, a)| !matches!(a.kind, ArrayKind::Local(_)))
            .map(|(i, _)| i)
            .collect()
    }
}

fn u8s(rng: &mut Rng, len: usize) -> Vec<i64> {
    (0..len).map(|_| rng.range_i64(0..=255)).collect()
}

fn i16s(rng: &mut Rng, len: usize, lo: i64, hi: i64) -> Vec<i64> {
    (0..len).map(|_| rng.range_i64(lo..=hi)).collect()
}

fn zeros(len: usize) -> Vec<i64> {
    vec![0; len]
}

impl Benchmark {
    /// Generate a workload of `n` iterations from `seed`.
    ///
    /// # Panics
    /// Panics for benchmark A if `n + 6 > FIR_STRIDE`.
    #[must_use]
    pub fn workload(self, n: u64, seed: u64) -> Workload {
        let mut rng = Rng::new(seed ^ 0xc0ff_ee00 ^ (n << 32));
        let n_us = usize::try_from(n).expect("n fits usize");
        let stride = usize::try_from(FIR_STRIDE).expect("small");
        let inputs: Vec<Option<Vec<i64>>> = match self {
            Benchmark::A => {
                assert!(
                    n_us + 6 <= stride,
                    "benchmark A requires n + 6 <= FIR_STRIDE"
                );
                // Binomial 7-tap quadrant: w = [1, 6, 15, 20].
                let w = [1_i64, 6, 15, 20];
                let mut coef = Vec::with_capacity(16);
                for r in 0..4 {
                    for c in 0..4 {
                        coef.push(w[r] * w[c]);
                    }
                }
                vec![
                    Some(u8s(&mut rng, 6 * stride + n_us + 7)),
                    Some(coef),
                    Some(zeros(n_us)),
                ]
            }
            Benchmark::C => vec![
                Some(i16s(&mut rng, 64 * n_us, -128, 127)),
                Some(i16s(&mut rng, 64, 1, 16)),
                Some(zeros(64 * n_us)),
                None, // local t
            ],
            Benchmark::D | Benchmark::E => {
                vec![Some(u8s(&mut rng, 3 * n_us)), Some(zeros(3 * n_us))]
            }
            Benchmark::F => vec![
                Some(u8s(&mut rng, 24 * n_us)),
                Some(i16s(&mut rng, 24 * n_us + 8, -64, 64)),
                Some(zeros(3 * n_us)),
                None, // est
                None, // ob
            ],
            Benchmark::G => vec![
                Some(u8s(&mut rng, 3 * n_us)),
                Some(u8s(&mut rng, 3 * n_us)),
                Some(zeros(3 * n_us)),
            ],
            Benchmark::H => vec![
                Some(u8s(&mut rng, 3 * (n_us + 2))),
                Some(u8s(&mut rng, 3 * (n_us + 2))),
                Some(u8s(&mut rng, 3 * (n_us + 2))),
                Some(zeros(3 * n_us)),
                None, // p
            ],
            Benchmark::GF => vec![
                Some(u8s(&mut rng, 24 * n_us)),
                Some(u8s(&mut rng, 24 * n_us)),
                Some(i16s(&mut rng, 24 * n_us + 8, -64, 64)),
                Some(zeros(3 * n_us)),
                None, // est
                None, // ob
            ],
            Benchmark::GEF => vec![
                Some(u8s(&mut rng, 24 * n_us)),
                Some(u8s(&mut rng, 24 * n_us)),
                Some(i16s(&mut rng, 24 * n_us + 8, -64, 64)),
                Some(zeros(3 * n_us)),
                None, // est
                None, // ob
                None, // px
            ],
            Benchmark::DH => vec![
                Some(u8s(&mut rng, 3 * (n_us + 2))),
                Some(u8s(&mut rng, 3 * (n_us + 2))),
                Some(u8s(&mut rng, 3 * (n_us + 2))),
                Some(zeros(3 * n_us)),
                None, // cv
                None, // p
            ],
            Benchmark::DHEF => vec![
                Some(u8s(&mut rng, 3 * (8 * n_us + 2))),
                Some(u8s(&mut rng, 3 * (8 * n_us + 2))),
                Some(u8s(&mut rng, 3 * (8 * n_us + 2))),
                Some(i16s(&mut rng, 24 * n_us + 8, -64, 64)),
                Some(zeros(3 * n_us)),
                None, // cv
                None, // p
                None, // med
                None, // est
                None, // ob
            ],
        };
        let kernel = self.kernel();
        assert_eq!(
            inputs.len(),
            kernel.arrays.len(),
            "{self}: workload shape drifted from the kernel's arrays"
        );
        Workload {
            kernel,
            iters: n,
            inputs,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cfp_ir::Interpreter;

    #[test]
    fn workloads_bind_and_run_in_bounds() {
        for b in Benchmark::ALL {
            let w = b.workload(4, 7);
            let mut mem = w.image();
            Interpreter::new()
                .run(&w.kernel, &mut mem, w.iters)
                .unwrap_or_else(|e| panic!("{b}: {e}"));
        }
    }

    #[test]
    fn workloads_are_deterministic() {
        for b in [Benchmark::A, Benchmark::F, Benchmark::DHEF] {
            let w1 = b.workload(3, 42);
            let w2 = b.workload(3, 42);
            assert_eq!(w1.inputs, w2.inputs);
            let w3 = b.workload(3, 43);
            assert_ne!(w1.inputs, w3.inputs, "{b}: seed must matter");
        }
    }

    #[test]
    fn observable_arrays_exclude_locals() {
        let w = Benchmark::DHEF.workload(2, 1);
        assert_eq!(w.observable_arrays().len(), 5);
    }
}
