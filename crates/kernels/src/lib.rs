//! # cfp-kernels — the paper's benchmark suite
//!
//! The seven individual color/image-processing kernels of the paper's
//! Table 1 (A–H) and the four jammed combinations of Table 2 (GF, GEF,
//! DH, DHEF), each provided three ways:
//!
//! * as **DSL source** (`src/dsl/*.cfk`) compiled by `cfp-frontend`;
//! * as a **golden Rust reference** ([`golden`]) mirroring the DSL
//!   computation exactly (32-bit wrapping arithmetic);
//! * with a **workload generator** ([`data`]) producing deterministic
//!   seeded inputs of the right shapes.
//!
//! The invariant the whole repository rests on: for every benchmark,
//! `interpreter(kernel) == golden == cycle-accurate simulation of the
//! scheduled code`, on every architecture (see the crate tests and
//! `tests/` at the workspace root).
//!
//! ```
//! use cfp_kernels::Benchmark;
//!
//! let k = Benchmark::D.kernel();
//! assert_eq!(k.name, "rgb2ycc");
//! assert_eq!(Benchmark::ALL.len(), 11);
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod data;
pub mod golden;

use cfp_ir::Kernel;

/// One benchmark of the paper's suite.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Benchmark {
    /// FIR symmetrical filter, 7×7 convolution kernel.
    A,
    /// Inverse DCT (AAN) with dequantization.
    C,
    /// RGB → YCbCr color conversion (JPEG).
    D,
    /// YCbCr → RGB color conversion (JPEG).
    E,
    /// Floyd–Steinberg error-diffusion halftoning.
    F,
    /// 1D bilinear scaling by integral factors along columns.
    G,
    /// 3×3 median filter, standard algorithm.
    H,
    /// Jam: G followed by F.
    GF,
    /// Jam: G, then E, then F.
    GEF,
    /// Jam: D followed by H.
    DH,
    /// Jam: D, H, E, then F.
    DHEF,
}

impl Benchmark {
    /// Every benchmark, tables order.
    pub const ALL: [Benchmark; 11] = [
        Benchmark::A,
        Benchmark::C,
        Benchmark::D,
        Benchmark::E,
        Benchmark::F,
        Benchmark::G,
        Benchmark::H,
        Benchmark::GF,
        Benchmark::GEF,
        Benchmark::DH,
        Benchmark::DHEF,
    ];

    /// The individual benchmarks plotted in the paper's Figure 3.
    pub const INDIVIDUAL: [Benchmark; 6] = [
        Benchmark::A,
        Benchmark::C,
        Benchmark::D,
        Benchmark::F,
        Benchmark::G,
        Benchmark::H,
    ];

    /// The jammed benchmarks plotted in the paper's Figure 4.
    pub const JAMMED: [Benchmark; 4] = [
        Benchmark::GF,
        Benchmark::GEF,
        Benchmark::DH,
        Benchmark::DHEF,
    ];

    /// The ten benchmarks of the paper's Tables 8–10 (E only appears
    /// inside jams there).
    pub const TABLE_COLUMNS: [Benchmark; 10] = [
        Benchmark::A,
        Benchmark::C,
        Benchmark::D,
        Benchmark::F,
        Benchmark::G,
        Benchmark::H,
        Benchmark::GF,
        Benchmark::GEF,
        Benchmark::DH,
        Benchmark::DHEF,
    ];

    /// The paper's letter name.
    #[must_use]
    pub fn letter(self) -> &'static str {
        match self {
            Benchmark::A => "A",
            Benchmark::C => "C",
            Benchmark::D => "D",
            Benchmark::E => "E",
            Benchmark::F => "F",
            Benchmark::G => "G",
            Benchmark::H => "H",
            Benchmark::GF => "GF",
            Benchmark::GEF => "GEF",
            Benchmark::DH => "DH",
            Benchmark::DHEF => "DHEF",
        }
    }

    /// The paper's one-line description (Tables 1 and 2).
    #[must_use]
    pub fn description(self) -> &'static str {
        match self {
            Benchmark::A => "FIR symmetrical filter implemented using a 7x7 convolution kernel",
            Benchmark::C => {
                "Inverse DCT transform with dequantization of the DCT coefficients (AAN)"
            }
            Benchmark::D => "Color conversion from the RGB to the YCbCr color space (JPEG)",
            Benchmark::E => "Color conversion from the YCbCr to the RGB color space (JPEG)",
            Benchmark::F => "Halftoning via standard Floyd-Steinberg error diffusion",
            Benchmark::G => "1D bilinear scaling by integral factors along columns",
            Benchmark::H => "3x3 median filter using the standard algorithm",
            Benchmark::GF => "1D bilinear scaling followed by Floyd-Steinberg halftoning",
            Benchmark::GEF => {
                "1D bilinear scaling followed by E (YCbCr->RGB), followed by halftoning"
            }
            Benchmark::DH => "RGB->YCbCr color space conversion followed by a 3x3 median filter",
            Benchmark::DHEF => "RGB->YCbCr conversion, 3x3 median, E (YCbCr->RGB), then halftoning",
        }
    }

    /// The DSL source text.
    #[must_use]
    pub fn source(self) -> &'static str {
        match self {
            Benchmark::A => include_str!("dsl/fir7x7.cfk"),
            Benchmark::C => include_str!("dsl/idct_aan.cfk"),
            Benchmark::D => include_str!("dsl/rgb2ycc.cfk"),
            Benchmark::E => include_str!("dsl/ycc2rgb.cfk"),
            Benchmark::F => include_str!("dsl/halftone_fs.cfk"),
            Benchmark::G => include_str!("dsl/scale_bilinear.cfk"),
            Benchmark::H => include_str!("dsl/median3x3.cfk"),
            Benchmark::GF => include_str!("dsl/jam_gf.cfk"),
            Benchmark::GEF => include_str!("dsl/jam_gef.cfk"),
            Benchmark::DH => include_str!("dsl/jam_dh.cfk"),
            Benchmark::DHEF => include_str!("dsl/jam_dhef.cfk"),
        }
    }

    /// The compile-time constant bindings this benchmark is specialized
    /// with (scale weights, row strides).
    #[must_use]
    pub fn consts(self) -> &'static [(&'static str, i64)] {
        match self {
            Benchmark::A => &[("stride", data::FIR_STRIDE)],
            Benchmark::G | Benchmark::GF | Benchmark::GEF => &[("w0", 3), ("w1", 1), ("sh", 2)],
            _ => &[],
        }
    }

    /// Compile the DSL source (unoptimized, un-unrolled).
    ///
    /// # Panics
    /// Panics if the bundled source fails to compile — a build-level
    /// invariant covered by tests.
    #[must_use]
    pub fn kernel(self) -> Kernel {
        cfp_frontend::compile_kernel(self.source(), self.consts())
            .unwrap_or_else(|e| panic!("bundled kernel {self:?} failed to compile: {e}"))
    }
}

impl std::fmt::Display for Benchmark {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.letter())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_sources_compile_and_verify() {
        for b in Benchmark::ALL {
            let k = b.kernel();
            cfp_ir::verify(&k).unwrap_or_else(|e| panic!("{b}: {e}"));
            assert!(!k.body.is_empty(), "{b}");
        }
    }

    #[test]
    fn suite_partitions_match_the_paper() {
        assert_eq!(Benchmark::INDIVIDUAL.len(), 6);
        assert_eq!(Benchmark::JAMMED.len(), 4);
        assert_eq!(Benchmark::TABLE_COLUMNS.len(), 10);
        for b in Benchmark::ALL {
            assert!(!b.description().is_empty());
        }
    }

    #[test]
    fn outputs_per_iter_match_the_blocking() {
        assert_eq!(Benchmark::C.kernel().outputs_per_iter, 64);
        assert_eq!(Benchmark::F.kernel().outputs_per_iter, 8);
        assert_eq!(Benchmark::D.kernel().outputs_per_iter, 1);
        assert_eq!(Benchmark::DHEF.kernel().outputs_per_iter, 8);
    }

    #[test]
    fn mul_mix_is_plausible() {
        // H is pure compare/select; D and C are multiply-heavy.
        assert_eq!(Benchmark::H.kernel().mul_count(), 0);
        assert!(Benchmark::D.kernel().mul_count() >= 5);
        assert!(Benchmark::C.kernel().mul_count() >= 64);
        assert_eq!(Benchmark::A.kernel().mul_count(), 16);
    }
}
