//! Edge-value workloads: the uniform generators exercise typical paths;
//! these force the extremes — saturated pixels, zero pixels, extreme
//! error-buffer contents, negative-maximum DCT coefficients — and
//! require interpreter/golden agreement there too (clamps, casts, and
//! sign handling live on these paths).

use cfp_ir::{ArrayKind, Interpreter, Ty};
use cfp_kernels::{data::Workload, golden, Benchmark};

/// Overwrite every input array with a constant (respecting its type's
/// range by truncation).
fn flood(w: &mut Workload, value: i64) {
    for (i, slot) in w.inputs.iter_mut().enumerate() {
        if let Some(data) = slot {
            let ty = w.kernel.arrays[i].ty;
            for v in data.iter_mut() {
                *v = ty.truncate(value);
            }
        }
    }
    // Outputs start zeroed regardless.
    for (i, slot) in w.inputs.iter_mut().enumerate() {
        if matches!(w.kernel.arrays[i].kind, ArrayKind::Out) {
            if let Some(data) = slot {
                data.fill(0);
            }
        }
    }
}

fn agree(bench: Benchmark, w: &Workload) {
    let mut mi = w.image();
    let mut mg = w.image();
    Interpreter::new()
        .run(&w.kernel, &mut mi, w.iters)
        .unwrap_or_else(|e| panic!("{bench}: {e}"));
    golden::run(bench, &mut mg, w.iters);
    for i in w.observable_arrays() {
        assert_eq!(
            mi.array(i),
            mg.array(i),
            "{bench}: array {i} ({})",
            w.kernel.arrays[i].name
        );
    }
}

#[test]
fn all_black_and_all_white_inputs_agree() {
    for bench in Benchmark::ALL {
        for value in [0_i64, 255] {
            let mut w = bench.workload(4, 11);
            flood(&mut w, value);
            agree(bench, &w);
        }
    }
}

#[test]
fn extreme_error_buffers_agree() {
    // The Floyd–Steinberg family reads and writes the i16 error line;
    // saturate it both ways.
    for bench in [Benchmark::F, Benchmark::GF, Benchmark::GEF, Benchmark::DHEF] {
        for err_val in [-6000_i64, 6000] {
            let mut w = bench.workload(4, 13);
            // The error array is the `inout i16` one.
            for (i, slot) in w.inputs.iter_mut().enumerate() {
                if matches!(w.kernel.arrays[i].kind, ArrayKind::InOut) {
                    if let Some(data) = slot {
                        data.fill(Ty::I16.truncate(err_val));
                    }
                }
            }
            agree(bench, &w);
        }
    }
}

#[test]
fn extreme_dct_coefficients_agree() {
    for (blk_val, qt_val) in [(-128_i64, 16_i64), (127, 16), (-128, 1)] {
        let mut w = Benchmark::C.workload(3, 17);
        if let Some(blk) = &mut w.inputs[0] {
            blk.fill(blk_val);
        }
        if let Some(qt) = &mut w.inputs[1] {
            qt.fill(qt_val);
        }
        agree(Benchmark::C, &w);
    }
}

#[test]
fn alternating_extremes_exercise_both_select_arms() {
    for bench in [Benchmark::F, Benchmark::H, Benchmark::DH] {
        let mut w = bench.workload(4, 19);
        for slot in w.inputs.iter_mut().flatten() {
            for (j, v) in slot.iter_mut().enumerate() {
                *v = if j % 2 == 0 { 0 } else { 255 };
            }
        }
        // Re-zero outputs.
        for (i, slot) in w.inputs.iter_mut().enumerate() {
            if matches!(w.kernel.arrays[i].kind, ArrayKind::Out) {
                if let Some(data) = slot {
                    data.fill(0);
                }
            }
        }
        agree(bench, &w);
    }
}
