//! Common-subexpression and redundant-load elimination.
//!
//! Value numbering within each section (preamble and body are numbered
//! separately; cross-section redundancy is handled by LICM + a second
//! pipeline round). Loads participate with a per-array *store epoch*: two
//! loads of the same access function merge only when no store to that
//! array sits between them. Arrays never alias each other (the DSL
//! guarantees it), so a store only bumps its own array's epoch.
//!
//! After unrolling, this pass is what turns a stencil's overlapping
//! window loads into register reuse — the main reason unrolled kernels
//! demand both registers *and* fewer memory ports.

use cfp_ir::{BinOp, Inst, Kernel, MemRef, Operand, Pred, Ty, UnOp, Vreg};
use std::collections::HashMap;

#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
enum Key {
    Bin(BinOp, Operand, Operand),
    Un(UnOp, Operand),
    Cmp(Pred, Operand, Operand),
    Sel(Operand, Operand, Operand),
    Ld(MemRef, Ty, u64),
}

/// Run CSE over the kernel.
pub fn eliminate(kernel: &mut Kernel) {
    let subst_pre = number_section(&mut kernel.preamble, kernel.arrays.len());
    let mut subst_body = number_section(&mut kernel.body, kernel.arrays.len());
    for (k, v) in subst_pre {
        subst_body.insert(k, v);
    }
    if subst_body.is_empty() {
        return;
    }
    crate::substitute(kernel, &|o| match o {
        Operand::Reg(v) => Operand::Reg(resolve(&subst_body, v)),
        imm => imm,
    });
}

fn resolve(subst: &HashMap<Vreg, Vreg>, mut v: Vreg) -> Vreg {
    while let Some(&n) = subst.get(&v) {
        v = n;
    }
    v
}

fn number_section(insts: &mut Vec<Inst>, n_arrays: usize) -> HashMap<Vreg, Vreg> {
    let mut table: HashMap<Key, Vreg> = HashMap::new();
    let mut subst: HashMap<Vreg, Vreg> = HashMap::new();
    let mut epoch = vec![0_u64; n_arrays];
    let mut kept = Vec::with_capacity(insts.len());
    for mut inst in insts.drain(..) {
        inst.map_operands(|o| match o {
            Operand::Reg(v) => Operand::Reg(resolve(&subst, v)),
            imm => imm,
        });
        if let Inst::St { mem, .. } = &inst {
            epoch[mem.array.index()] += 1;
            kept.push(inst);
            continue;
        }
        let Some(key) = key_of(&inst, &epoch) else {
            kept.push(inst);
            continue;
        };
        if let Some(&existing) = table.get(&key) {
            let dst = inst.def().expect("keyed insts define");
            subst.insert(dst, existing);
        } else {
            table.insert(key, inst.def().expect("keyed insts define"));
            kept.push(inst);
        }
    }
    *insts = kept;
    subst
}

fn key_of(inst: &Inst, epoch: &[u64]) -> Option<Key> {
    Some(match *inst {
        Inst::Bin { op, a, b, .. } => {
            let (a, b) = if op.is_commutative() {
                canonical_pair(a, b)
            } else {
                (a, b)
            };
            Key::Bin(op, a, b)
        }
        Inst::Un { op, a, .. } => Key::Un(op, a),
        Inst::Cmp { pred, a, b, .. } => {
            // `a < b` and `b > a` share a key via predicate swapping.
            let (ca, cb) = canonical_pair(a, b);
            if (ca, cb) == (a, b) {
                Key::Cmp(pred, a, b)
            } else {
                Key::Cmp(pred.swapped(), ca, cb)
            }
        }
        Inst::Sel {
            cond,
            on_true,
            on_false,
            ..
        } => Key::Sel(cond, on_true, on_false),
        Inst::Ld { mem, ty, .. } => Key::Ld(mem, ty, epoch[mem.array.index()]),
        Inst::St { .. } => return None,
    })
}

fn canonical_pair(a: Operand, b: Operand) -> (Operand, Operand) {
    if rank(a) <= rank(b) {
        (a, b)
    } else {
        (b, a)
    }
}

fn rank(o: Operand) -> (u8, i64) {
    match o {
        Operand::Imm(i) => (0, i),
        Operand::Reg(Vreg(n)) => (1, i64::from(n)),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cfp_ir::{KernelBuilder, MemSpace};

    #[test]
    fn merges_identical_loads() {
        let mut b = KernelBuilder::new("t");
        let s = b.array_in("s", Ty::I32, MemSpace::L2);
        let d = b.array_out("d", Ty::I32, MemSpace::L2);
        let x = b.load(s, 1, 0, Ty::I32);
        let y = b.load(s, 1, 0, Ty::I32);
        let z = b.add(x, y);
        b.store(d, 1, 0, z, Ty::I32);
        let mut k = b.finish();
        eliminate(&mut k);
        let loads = k
            .body
            .iter()
            .filter(|i| matches!(i, Inst::Ld { .. }))
            .count();
        assert_eq!(loads, 1);
        // The add now reads the surviving load twice.
        let Inst::Bin { a, b: bb, .. } = k.body[1] else {
            panic!()
        };
        assert_eq!(a, bb);
    }

    #[test]
    fn store_blocks_load_merging_for_that_array_only() {
        let mut b = KernelBuilder::new("t");
        let buf = b.array_inout("buf", Ty::I32, MemSpace::L2);
        let other = b.array_in("o", Ty::I32, MemSpace::L2);
        let d = b.array_out("d", Ty::I32, MemSpace::L2);
        let x1 = b.load(buf, 1, 0, Ty::I32);
        let o1 = b.load(other, 1, 0, Ty::I32);
        b.store(buf, 1, 0, 99_i64, Ty::I32);
        let x2 = b.load(buf, 1, 0, Ty::I32);
        let o2 = b.load(other, 1, 0, Ty::I32);
        let s1 = b.add(x1, x2);
        let s2 = b.add(o1, o2);
        let s = b.add(s1, s2);
        b.store(d, 1, 0, s, Ty::I32);
        let mut k = b.finish();
        eliminate(&mut k);
        let buf_loads = k
            .body
            .iter()
            .filter(|i| matches!(i, Inst::Ld { mem, .. } if mem.array == buf))
            .count();
        let other_loads = k
            .body
            .iter()
            .filter(|i| matches!(i, Inst::Ld { mem, .. } if mem.array == other))
            .count();
        assert_eq!(buf_loads, 2, "store to buf blocks merging");
        assert_eq!(other_loads, 1, "other array is unaffected");
    }

    #[test]
    fn commutative_ops_share_a_key() {
        let mut b = KernelBuilder::new("t");
        let s = b.array_in("s", Ty::I32, MemSpace::L2);
        let d = b.array_out("d", Ty::I32, MemSpace::L2);
        let x = b.load(s, 1, 0, Ty::I32);
        let y = b.load(s, 1, 1, Ty::I32);
        let p = b.add(x, y);
        let q = b.add(y, x);
        let z = b.mul(p, q);
        b.store(d, 1, 0, z, Ty::I32);
        let mut k = b.finish();
        eliminate(&mut k);
        let adds = k
            .body
            .iter()
            .filter(|i| matches!(i, Inst::Bin { op: BinOp::Add, .. }))
            .count();
        assert_eq!(adds, 1);
    }

    #[test]
    fn swapped_compares_share_a_key() {
        let mut b = KernelBuilder::new("t");
        let s = b.array_in("s", Ty::I32, MemSpace::L2);
        let d = b.array_out("d", Ty::I32, MemSpace::L2);
        let x = b.load(s, 1, 0, Ty::I32);
        let y = b.load(s, 1, 1, Ty::I32);
        let c1 = b.cmp(Pred::Lt, x, y);
        let c2 = b.cmp(Pred::Gt, y, x);
        let z = b.add(c1, c2);
        b.store(d, 1, 0, z, Ty::I32);
        let mut k = b.finish();
        eliminate(&mut k);
        let cmps = k
            .body
            .iter()
            .filter(|i| matches!(i, Inst::Cmp { .. }))
            .count();
        assert_eq!(cmps, 1);
    }

    #[test]
    fn subtraction_is_not_commuted() {
        let mut b = KernelBuilder::new("t");
        let s = b.array_in("s", Ty::I32, MemSpace::L2);
        let d = b.array_out("d", Ty::I32, MemSpace::L2);
        let x = b.load(s, 1, 0, Ty::I32);
        let y = b.load(s, 1, 1, Ty::I32);
        let p = b.sub(x, y);
        let q = b.sub(y, x);
        let z = b.add(p, q);
        b.store(d, 1, 0, z, Ty::I32);
        let mut k = b.finish();
        eliminate(&mut k);
        let subs = k
            .body
            .iter()
            .filter(|i| matches!(i, Inst::Bin { op: BinOp::Sub, .. }))
            .count();
        assert_eq!(subs, 2);
    }

    #[test]
    fn chains_of_duplicates_collapse_transitively() {
        let mut b = KernelBuilder::new("t");
        let s = b.array_in("s", Ty::I32, MemSpace::L2);
        let d = b.array_out("d", Ty::I32, MemSpace::L2);
        let x1 = b.load(s, 1, 0, Ty::I32);
        let x2 = b.load(s, 1, 0, Ty::I32);
        let a1 = b.add(x1, 1_i64);
        let a2 = b.add(x2, 1_i64); // dup only after load merge
        let z = b.mul(a1, a2);
        b.store(d, 1, 0, z, Ty::I32);
        let mut k = b.finish();
        eliminate(&mut k);
        assert_eq!(k.body.len(), 4, "load + add + mul + store, {:#?}", k.body);
    }
}
