//! Outer-loop unrolling.
//!
//! Replicates the body `factor` times inside one iteration: copy `u`'s
//! affine accesses shift by `coeff·u` elements and the overall stride
//! becomes `coeff·factor`; loop-carried values chain through the copies
//! and only the last copy's value is carried out. This is the knob the
//! experiment sweeps — "running the compilation … for different unrolling
//! factors. When the compiler started spilling register contents for a
//! given unrolling, we stopped considering that unrolling factor and all
//! larger ones" (§2.4).

use cfp_ir::{Carried, Inst, Kernel, Operand, Vreg};
use std::collections::HashMap;

/// Unroll `kernel` by `factor` (≥ 1). The result performs `factor`
/// original iterations per new iteration, so run it for `n / factor`
/// iterations.
///
/// # Panics
/// Panics if `factor == 0`.
#[must_use]
pub fn unroll(kernel: &Kernel, factor: u32) -> Kernel {
    assert!(factor >= 1, "unroll factor must be at least 1");
    if factor == 1 {
        return kernel.clone();
    }
    let carry_of: HashMap<Vreg, usize> = kernel
        .carried
        .iter()
        .enumerate()
        .map(|(i, c)| (c.input, i))
        .collect();

    let mut out = Kernel {
        name: kernel.name.clone(),
        arrays: kernel.arrays.clone(),
        preamble: kernel.preamble.clone(),
        body: Vec::with_capacity(kernel.body.len() * factor as usize),
        carried: Vec::new(),
        outputs_per_iter: kernel.outputs_per_iter * factor,
    };
    let mut next_vreg = kernel.vreg_count();
    let mut fresh = || {
        let v = Vreg(next_vreg);
        next_vreg += 1;
        v
    };

    // The register currently holding each carry's value entering copy u.
    let mut cur_in: Vec<Vreg> = kernel.carried.iter().map(|c| c.input).collect();

    for u in 0..factor {
        // Number the copy's registers in instruction order: the output
        // must be a pure function of the input so that identical plans
        // stay identical (content-addressed plan interning depends on it).
        let remap: HashMap<Vreg, Vreg> = kernel
            .body
            .iter()
            .filter_map(Inst::def)
            .map(|v| (v, fresh()))
            .collect();
        for inst in &kernel.body {
            let mut ni = *inst;
            ni.map_def(|d| remap[&d]);
            ni.map_operands(|o| match o {
                Operand::Reg(v) => {
                    if let Some(&n) = remap.get(&v) {
                        Operand::Reg(n)
                    } else if let Some(&ci) = carry_of.get(&v) {
                        Operand::Reg(cur_in[ci])
                    } else {
                        o
                    }
                }
                imm => imm,
            });
            if let Some(m) = ni.mem_mut() {
                m.offset += m.coeff * i64::from(u);
                m.coeff *= i64::from(factor);
            }
            out.body.push(ni);
        }
        for (ci, c) in kernel.carried.iter().enumerate() {
            if c.output != c.input {
                cur_in[ci] = remap[&c.output];
            }
            // Pass-through carries keep flowing the incoming value.
        }
    }

    out.carried = kernel
        .carried
        .iter()
        .zip(&cur_in)
        .map(|(c, &last)| Carried {
            input: c.input,
            output: last,
            init: c.init,
        })
        .collect();
    debug_assert_eq!(cfp_ir::verify(&out), Ok(()), "unrolling broke IR");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testutil::check_same_results;
    use cfp_frontend::compile_kernel;

    fn sample() -> Kernel {
        compile_kernel(
            "kernel s(in u8 src[], out i32 dst[]) {
                var acc = 0;
                loop i {
                    acc = acc + src[i];
                    dst[i] = acc;
                }
            }",
            &[],
        )
        .unwrap()
    }

    #[test]
    fn factor_one_is_identity() {
        let k = sample();
        assert_eq!(unroll(&k, 1), k);
    }

    #[test]
    fn body_and_outputs_scale() {
        let k = sample();
        let k4 = unroll(&k, 4);
        assert_eq!(k4.body.len(), k.body.len() * 4);
        assert_eq!(k4.outputs_per_iter, 4);
        assert_eq!(k4.carried.len(), k.carried.len());
    }

    #[test]
    fn memrefs_shift_and_scale() {
        let k = compile_kernel(
            "kernel s(in u8 src[], out u8 dst[]) { loop i { dst[3*i+1] = src[3*i]; } }",
            &[],
        )
        .unwrap();
        let k2 = unroll(&k, 2);
        let refs: Vec<(i64, i64)> = k2
            .body
            .iter()
            .filter_map(|i| i.mem().map(|m| (m.coeff, m.offset)))
            .collect();
        assert_eq!(refs, vec![(6, 0), (6, 1), (6, 3), (6, 4)]);
    }

    #[test]
    fn carried_chain_threads_through_copies() {
        for f in [2_u64, 4, 8] {
            check_same_results(
                "kernel s(in u8 src[], out i32 dst[]) {
                    var acc = 7;
                    loop i {
                        acc = acc + src[i];
                        dst[i] = acc;
                    }
                }",
                &[],
                |k| unroll(k, u32::try_from(f).unwrap()),
                f,
            );
        }
    }

    #[test]
    fn pass_through_carries_survive() {
        // `first` is captured on the first iteration and then only read.
        check_same_results(
            "kernel s(in i32 src[], out i32 dst[]) {
                var first = -1;
                loop i {
                    if first < 0 { first = src[i]; }
                    dst[i] = first;
                }
            }",
            &[],
            |k| unroll(k, 2),
            2,
        );
    }

    #[test]
    fn inout_error_diffusion_style_kernel_unrolls_correctly() {
        // Loop-carried memory traffic (store in iteration u, load in
        // iteration u+1 reads the *old* value at a different offset).
        check_same_results(
            "kernel fs(in u8 src[], inout i16 err[], out u8 dst[]) {
                var e = 0;
                loop i {
                    var t = err[i + 1];
                    e = (t + ((e * 7 + 8) >> 4) + src[i]);
                    err[i] = i16((e * 3 + 8) >> 4);
                    dst[i] = u8(e > 128 ? 255 : 0);
                }
            }",
            &[],
            |k| unroll(k, 4),
            4,
        );
    }
}
