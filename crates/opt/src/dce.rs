//! Dead-code and dead-carry elimination.
//!
//! An instruction is live when its value reaches a store or a *useful*
//! loop-carried value; a carry is useful when its carried-in value feeds
//! a store or another useful carry. The two fixed points are computed
//! together.

use cfp_ir::{CarriedInit, Kernel, Vreg};
use std::collections::HashSet;

/// Remove dead instructions (preamble + body) and useless carries.
pub fn eliminate(kernel: &mut Kernel) {
    // Fixed point over the set of useful carries.
    let mut useful: Vec<bool> = vec![false; kernel.carried.len()];
    let closure = loop {
        let mut targets: Vec<Vreg> = Vec::new();
        for inst in kernel.body.iter().filter(|i| i.is_store()) {
            targets.extend(inst.uses());
        }
        for (c, u) in kernel.carried.iter().zip(&useful) {
            if *u {
                targets.push(c.output);
                if let CarriedInit::Preamble(v) = c.init {
                    targets.push(v);
                }
            }
        }
        let closure = backward_closure(kernel, &targets);
        let mut changed = false;
        for (i, c) in kernel.carried.iter().enumerate() {
            if !useful[i] && closure.contains(&c.input) {
                useful[i] = true;
                changed = true;
            }
        }
        if !changed {
            break closure;
        }
    };

    kernel
        .body
        .retain(|inst| inst.is_store() || inst.def().is_some_and(|d| closure.contains(&d)));
    kernel
        .preamble
        .retain(|inst| inst.def().is_some_and(|d| closure.contains(&d)));
    let mut keep = useful.iter();
    kernel.carried.retain(|_| *keep.next().expect("aligned"));
}

/// All vregs that (transitively) feed the target set, walking both
/// sections backwards.
fn backward_closure(kernel: &Kernel, targets: &[Vreg]) -> HashSet<Vreg> {
    let mut live: HashSet<Vreg> = targets.iter().copied().collect();
    // Iterate to a fixed point; section order does not matter because we
    // re-scan until stable.
    loop {
        let mut changed = false;
        for inst in kernel.body.iter().chain(&kernel.preamble) {
            if let Some(d) = inst.def() {
                if live.contains(&d) {
                    for u in inst.uses() {
                        changed |= live.insert(u);
                    }
                }
            }
        }
        if !changed {
            return live;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cfp_frontend::compile_kernel;
    use cfp_ir::{KernelBuilder, MemSpace, Ty};

    #[test]
    fn removes_unused_computation() {
        let mut b = KernelBuilder::new("t");
        let s = b.array_in("s", Ty::I32, MemSpace::L2);
        let d = b.array_out("d", Ty::I32, MemSpace::L2);
        let x = b.load(s, 1, 0, Ty::I32);
        let _dead = b.mul(x, 7_i64);
        let y = b.add(x, 1_i64);
        b.store(d, 1, 0, y, Ty::I32);
        let mut k = b.finish();
        eliminate(&mut k);
        assert_eq!(k.body.len(), 3);
        assert!(k.body.iter().all(|i| !i.needs_mul_unit()));
    }

    #[test]
    fn removes_dead_preamble_values() {
        let mut b = KernelBuilder::new("t");
        let d = b.array_out("d", Ty::I32, MemSpace::L2);
        b.in_preamble(true);
        let used = b.mov(3_i64);
        let _dead = b.mov(4_i64);
        b.in_preamble(false);
        let y = b.add(used, 1_i64);
        b.store(d, 1, 0, y, Ty::I32);
        let mut k = b.finish();
        eliminate(&mut k);
        assert_eq!(k.preamble.len(), 1);
    }

    #[test]
    fn keeps_store_feeding_chains_only() {
        let mut k = compile_kernel(
            "kernel t(in i32 s[], out i32 d[]) {
                loop i {
                    var a = s[i] * 3;
                    var unused = a * a + 17;
                    d[i] = a;
                }
            }",
            &[],
        )
        .unwrap();
        eliminate(&mut k);
        cfp_ir::verify(&k).unwrap();
        assert_eq!(k.mul_count(), 1, "only the store-feeding multiply stays");
    }

    #[test]
    fn drops_useless_carries_keeps_useful_ones() {
        let mut k = compile_kernel(
            "kernel t(in i32 s[], out i32 d[]) {
                var keep = 0;
                var drop_me = 0;
                loop i {
                    keep = keep + s[i];
                    drop_me = drop_me + 1;
                    d[i] = keep;
                }
            }",
            &[],
        )
        .unwrap();
        assert_eq!(k.carried.len(), 2);
        eliminate(&mut k);
        cfp_ir::verify(&k).unwrap();
        assert_eq!(k.carried.len(), 1, "the unread accumulator dies");
    }

    #[test]
    fn carry_chains_resolve_to_the_minimal_useful_set() {
        // `a` is recomputed from `b` every iteration, so only `b`'s carry
        // is genuinely loop-carried; `a`'s carry is useless and dies.
        let mut k = compile_kernel(
            "kernel t(in i32 s[], out i32 d[]) {
                var a = 0;
                var b = 0;
                loop i {
                    a = b + s[i];
                    b = a;
                    d[i] = a;
                }
            }",
            &[],
        )
        .unwrap();
        eliminate(&mut k);
        cfp_ir::verify(&k).unwrap();
        assert_eq!(k.carried.len(), 1);
    }

    #[test]
    fn dce_preserves_semantics() {
        crate::testutil::check_same_results(
            "kernel t(in i32 s[], out i32 d[]) {
                var junk = 5;
                loop i {
                    var dead = s[i] * 99;
                    junk = junk + dead;
                    d[i] = s[i] + 1;
                }
            }",
            &[],
            |k| {
                let mut o = k.clone();
                eliminate(&mut o);
                o
            },
            1,
        );
    }
}
