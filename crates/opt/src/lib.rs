//! # cfp-opt — machine-independent optimizer
//!
//! Classic scalar optimizations over `cfp_ir::Kernel`s, applied between
//! the front end and the VLIW back end:
//!
//! * [`fold::constant_fold`] — constant propagation and folding;
//! * [`algebraic::simplify`] — identities (`x+0`, `x*1`, …) and
//!   power-of-two multiply strength reduction;
//! * [`copyprop::propagate`] — copy propagation (so simplification
//!   residue never occupies an issue slot);
//! * [`cse::eliminate`] — common-subexpression elimination, including
//!   redundant-load elimination with per-array store epochs (this is the
//!   pass that turns an unrolled stencil's overlapping loads into a
//!   register window);
//! * [`licm::hoist`] — loop-invariant code motion into the preamble
//!   (hoisted values then occupy registers for the whole loop, which is
//!   exactly the register-pressure trade-off the paper's experiment
//!   exercises);
//! * [`scalarize::promote_locals`] — scalar promotion (mem2reg) of
//!   constant-indexed local scratch arrays;
//! * [`dce::eliminate`] — dead-code and dead-carry elimination;
//! * [`unroll::unroll`] — outer-loop unrolling by a given factor (the
//!   factor the experiment sweeps until spilling starts).
//!
//! [`optimize`] runs the standard pipeline to a fixed point. All passes
//! preserve interpreter semantics — property-tested in
//! `tests/semantics.rs`.
//!
//! ```
//! use cfp_frontend::compile_kernel;
//! use cfp_opt::{optimize, unroll::unroll};
//!
//! let mut k = compile_kernel(
//!     "kernel k(in u8 s[], out u8 d[]) { loop i { d[i] = u8(s[i] * 8 + 0); } }",
//!     &[],
//! ).unwrap();
//! optimize(&mut k);
//! // *8 became <<3 and the +0 disappeared.
//! assert_eq!(k.mul_count(), 0);
//! let k4 = cfp_opt::unroll::unroll(&k, 4);
//! assert_eq!(k4.outputs_per_iter, 4);
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod algebraic;
pub mod copyprop;
pub mod cse;
pub mod dce;
pub mod fold;
pub mod licm;
pub mod scalarize;
pub mod unroll;

use cfp_ir::Kernel;

/// Run the standard pipeline (scalar promotion, then fold → algebraic →
/// CSE → LICM → DCE to a fixed point, bounded by a small iteration cap)
/// with no limit on loop-resident values.
pub fn optimize(kernel: &mut Kernel) {
    optimize_budgeted(kernel, usize::MAX);
}

/// Like [`optimize`], but LICM keeps the number of loop-resident values
/// at or below `max_resident` — the knob the design-space exploration
/// derives from each candidate architecture's register file.
pub fn optimize_budgeted(kernel: &mut Kernel, max_resident: usize) {
    optimize_budgeted_traced(kernel, max_resident, &mut cfp_obs::UnitTrace::disabled());
}

/// [`optimize_budgeted`] recording one `opt` span per pass invocation
/// (named by a `pass` field, with the fixpoint iteration and the body
/// size after the pass). With a disabled trace this is exactly
/// [`optimize_budgeted`] — the span bookkeeping costs one predicted
/// branch per pass and never allocates.
pub fn optimize_budgeted_traced(
    kernel: &mut Kernel,
    max_resident: usize,
    trace: &mut cfp_obs::UnitTrace<'_>,
) {
    use cfp_obs::{Stage, Value};
    let pass = |kernel: &mut Kernel,
                trace: &mut cfp_obs::UnitTrace<'_>,
                iter: u64,
                name: &'static str,
                f: &dyn Fn(&mut Kernel)| {
        let t0 = trace.start();
        f(kernel);
        trace.stage(
            Stage::Opt,
            t0,
            &[
                ("pass", Value::Str(name)),
                ("iter", Value::U64(iter)),
                ("body_ops", Value::U64(kernel.body.len() as u64)),
            ],
        );
    };
    pass(kernel, trace, 0, "scalarize", &|k| {
        scalarize::promote_locals(k);
    });
    for iter in 1..=8_u64 {
        let before = kernel.clone();
        pass(kernel, trace, iter, "fold", &fold::constant_fold);
        pass(kernel, trace, iter, "algebraic", &algebraic::simplify);
        pass(kernel, trace, iter, "copyprop", &copyprop::propagate);
        pass(kernel, trace, iter, "cse", &cse::eliminate);
        pass(kernel, trace, iter, "licm", &|k| {
            licm::hoist_budgeted(k, max_resident);
        });
        pass(kernel, trace, iter, "dce", &dce::eliminate);
        if *kernel == before {
            break;
        }
    }
    debug_assert_eq!(cfp_ir::verify(kernel), Ok(()), "optimizer broke IR");
}

/// Rewrite every operand of every instruction (preamble + body) and every
/// carried/init register through a substitution. Shared plumbing for the
/// passes.
pub(crate) fn substitute(kernel: &mut Kernel, map: &dyn Fn(cfp_ir::Operand) -> cfp_ir::Operand) {
    for inst in kernel.preamble.iter_mut().chain(kernel.body.iter_mut()) {
        inst.map_operands(map);
    }
    for c in &mut kernel.carried {
        if let cfp_ir::Operand::Reg(v) = map(cfp_ir::Operand::Reg(c.output)) {
            c.output = v;
        }
        if let cfp_ir::CarriedInit::Preamble(p) = c.init {
            if let cfp_ir::Operand::Reg(v) = map(cfp_ir::Operand::Reg(p)) {
                c.init = cfp_ir::CarriedInit::Preamble(v);
            }
        }
    }
}

#[cfg(test)]
pub(crate) mod testutil {
    use cfp_frontend::compile_kernel;
    use cfp_ir::{Interpreter, MemImage};

    /// Compile, transform with `f`, run both versions on the same inputs
    /// (`n_iters` base iterations = `n_iters / speedup` transformed
    /// iterations), and require identical memory images.
    pub fn check_same_results(
        src: &str,
        consts: &[(&str, i64)],
        f: impl Fn(&cfp_ir::Kernel) -> cfp_ir::Kernel,
        iter_ratio: u64,
    ) {
        let base = compile_kernel(src, consts).unwrap();
        let xformed = f(&base);
        cfp_ir::verify(&xformed).expect("transformed kernel verifies");

        let n_iters = 8_u64;
        let mut mem_a = MemImage::for_kernel(&base);
        let mut mem_b = MemImage::for_kernel(&xformed);
        for (i, a) in base.arrays.iter().enumerate() {
            if !matches!(a.kind, cfp_ir::ArrayKind::Local(_)) {
                let data: Vec<i64> = (0..64).map(|k| (k * 37 + 11) % 251).collect();
                mem_a.bind(i, data.clone());
                mem_b.bind(i, data);
            }
        }
        Interpreter::new().run(&base, &mut mem_a, n_iters).unwrap();
        Interpreter::new()
            .run(&xformed, &mut mem_b, n_iters / iter_ratio)
            .unwrap();
        for i in 0..base.arrays.len() {
            // Local arrays are scratch, not observable outputs — scalar
            // promotion legitimately stops materializing them.
            if matches!(base.arrays[i].kind, cfp_ir::ArrayKind::Local(_)) {
                continue;
            }
            assert_eq!(mem_a.array(i), mem_b.array(i), "array {i} diverged");
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testutil::check_same_results;
    use cfp_frontend::compile_kernel;

    #[test]
    fn pipeline_preserves_semantics_on_representative_kernels() {
        let stencil = "kernel st(in u8 s[], out i32 d[]) {
            loop i {
                var acc = 0;
                for t in 0..5 { acc = acc + s[i + t] * (t + 1); }
                d[i] = acc >> 2;
            }
        }";
        let carried = "kernel c(in i32 s[], out i32 d[]) {
            var e = 3;
            loop i {
                e = (e * 7 + s[i]) >> 1;
                if e > 100 { e = e - 100; }
                d[i] = e;
            }
        }";
        for src in [stencil, carried] {
            for u in [1_u64, 2, 4] {
                check_same_results(
                    src,
                    &[],
                    |k| {
                        let mut o = k.clone();
                        optimize(&mut o);
                        unroll::unroll(&o, u32::try_from(u).unwrap())
                    },
                    u,
                );
            }
        }
    }

    #[test]
    fn optimize_reaches_fixed_point() {
        let mut k = compile_kernel(
            "kernel k(in i32 s[], out i32 d[]) { loop i { d[i] = (s[i] + 0) * 1 + (2 + 3); } }",
            &[],
        )
        .unwrap();
        optimize(&mut k);
        let snapshot = k.clone();
        optimize(&mut k);
        assert_eq!(k, snapshot, "second run must be a no-op");
    }
}
