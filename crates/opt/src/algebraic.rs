//! Algebraic simplification.
//!
//! Identity/absorption rewrites plus one deliberate strength reduction:
//! multiply by a power of two becomes a shift. Arbitrary multiply-by-
//! constant decomposition into shift/add sequences is *not* performed —
//! the paper's machines pay for IMUL units and its benchmarks exercise
//! them; decomposing every constant multiply would silently change which
//! architectures win (see DESIGN.md §4).

use cfp_ir::{BinOp, Inst, Operand};

/// Apply local rewrites to every instruction.
pub fn simplify(kernel: &mut cfp_ir::Kernel) {
    for inst in kernel.preamble.iter_mut().chain(kernel.body.iter_mut()) {
        if let Some(better) = rewrite(inst) {
            *inst = better;
        }
    }
}

fn rewrite(inst: &Inst) -> Option<Inst> {
    match *inst {
        Inst::Bin { dst, op, a, b } => rewrite_bin(dst, op, a, b),
        Inst::Sel {
            dst,
            on_true,
            on_false,
            ..
        } if on_true == on_false => Some(Inst::mov(dst, on_true)),
        Inst::Cmp { dst, pred, a, b } if a == b && a.reg().is_some() => {
            Some(Inst::mov(dst, pred.eval(0, 0)))
        }
        _ => None,
    }
}

fn rewrite_bin(dst: cfp_ir::Vreg, op: BinOp, a: Operand, b: Operand) -> Option<Inst> {
    use Operand::Imm;
    let mov = |o: Operand| Some(Inst::mov(dst, o));
    match (op, a, b) {
        // Additive identities.
        (BinOp::Add, x, Imm(0)) | (BinOp::Add, Imm(0), x) | (BinOp::Sub, x, Imm(0)) => mov(x),
        (BinOp::Sub, x, y) if x == y && x.reg().is_some() => mov(Imm(0)),
        // Multiplicative identities, absorption, and power-of-two shifts.
        (BinOp::Mul, x, Imm(1)) | (BinOp::Mul, Imm(1), x) => mov(x),
        (BinOp::Mul, _, Imm(0)) | (BinOp::Mul, Imm(0), _) => mov(Imm(0)),
        (BinOp::Mul, x, Imm(k)) | (BinOp::Mul, Imm(k), x) if k > 1 && (k & (k - 1)) == 0 => {
            Some(Inst::Bin {
                dst,
                op: BinOp::Shl,
                a: x,
                b: Imm(i64::from(k.trailing_zeros())),
            })
        }
        // Bitwise identities.
        (BinOp::And, x, Imm(-1)) | (BinOp::And, Imm(-1), x) => mov(x),
        (BinOp::And, _, Imm(0)) | (BinOp::And, Imm(0), _) => mov(Imm(0)),
        (BinOp::Or, x, Imm(0))
        | (BinOp::Or, Imm(0), x)
        | (BinOp::Xor, x, Imm(0))
        | (BinOp::Xor, Imm(0), x) => mov(x),
        (BinOp::And | BinOp::Or, x, y) if x == y && x.reg().is_some() => mov(x),
        (BinOp::Xor, x, y) if x == y && x.reg().is_some() => mov(Imm(0)),
        // Shift identities.
        (BinOp::Shl | BinOp::AShr | BinOp::LShr, x, Imm(0)) => mov(x),
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cfp_ir::{KernelBuilder, MemSpace, Pred, Ty, UnOp, Vreg};

    fn body_of(f: impl FnOnce(&mut KernelBuilder, Vreg)) -> Vec<Inst> {
        let mut b = KernelBuilder::new("t");
        let src = b.array_in("s", Ty::I32, MemSpace::L2);
        let x = b.load(src, 1, 0, Ty::I32);
        f(&mut b, x);
        let mut k = b.finish();
        simplify(&mut k);
        k.body
    }

    #[test]
    fn additive_and_multiplicative_identities() {
        let body = body_of(|b, x| {
            let _ = b.add(x, 0_i64);
            let _ = b.mul(x, 1_i64);
            let _ = b.mul(x, 0_i64);
            let _ = b.sub(x, x);
        });
        assert!(
            matches!(body[1], Inst::Un { op: UnOp::Copy, a, .. } if a == Operand::Reg(Vreg(0)))
        );
        assert!(matches!(body[2], Inst::Un { op: UnOp::Copy, .. }));
        assert!(matches!(
            body[3],
            Inst::Un {
                op: UnOp::Copy,
                a: Operand::Imm(0),
                ..
            }
        ));
        assert!(matches!(
            body[4],
            Inst::Un {
                op: UnOp::Copy,
                a: Operand::Imm(0),
                ..
            }
        ));
    }

    #[test]
    fn power_of_two_mul_becomes_shift() {
        let body = body_of(|b, x| {
            let _ = b.mul(x, 8_i64);
        });
        assert!(
            matches!(
                body[1],
                Inst::Bin {
                    op: BinOp::Shl,
                    b: Operand::Imm(3),
                    ..
                }
            ),
            "{:?}",
            body[1]
        );
    }

    #[test]
    fn non_power_of_two_mul_stays() {
        let body = body_of(|b, x| {
            let _ = b.mul(x, 7_i64);
        });
        assert!(matches!(body[1], Inst::Bin { op: BinOp::Mul, .. }));
    }

    #[test]
    fn select_same_arms_collapses() {
        let body = body_of(|b, x| {
            let c = b.cmp(Pred::Lt, x, 3_i64);
            let _ = b.sel(c, x, x);
        });
        assert!(matches!(body[2], Inst::Un { op: UnOp::Copy, .. }));
    }

    #[test]
    fn cmp_same_reg_folds_by_predicate() {
        let body = body_of(|b, x| {
            let _ = b.cmp(Pred::Le, x, x);
            let _ = b.cmp(Pred::Ne, x, x);
        });
        assert!(matches!(
            body[1],
            Inst::Un {
                op: UnOp::Copy,
                a: Operand::Imm(1),
                ..
            }
        ));
        assert!(matches!(
            body[2],
            Inst::Un {
                op: UnOp::Copy,
                a: Operand::Imm(0),
                ..
            }
        ));
    }
}
