//! Constant propagation and folding.

use cfp_ir::{Inst, Kernel, Operand, Vreg};
use std::collections::HashMap;

/// Propagate known constants through operands and fold fully-constant
/// instructions into `mov dst, #imm` (removed later by DCE when unused).
pub fn constant_fold(kernel: &mut Kernel) {
    let mut known: HashMap<Vreg, i64> = HashMap::new();
    let (pre, body) = (&mut kernel.preamble, &mut kernel.body);
    for inst in pre.iter_mut().chain(body.iter_mut()) {
        inst.map_operands(|o| match o {
            Operand::Reg(v) => known.get(&v).map_or(o, |&c| Operand::Imm(c)),
            imm => imm,
        });
        if let Some((dst, value)) = fold_inst(inst) {
            known.insert(dst, value);
            *inst = Inst::mov(dst, value);
        } else if let Some((dst, copied)) = fold_select(inst) {
            *inst = Inst::mov(dst, copied);
        }
    }
}

/// If the instruction computes a compile-time constant, return it.
fn fold_inst(inst: &Inst) -> Option<(Vreg, i64)> {
    match *inst {
        Inst::Bin {
            dst,
            op,
            a: Operand::Imm(x),
            b: Operand::Imm(y),
        } => Some((dst, op.eval(x, y))),
        Inst::Un {
            dst,
            op,
            a: Operand::Imm(x),
        } => Some((dst, op.eval(x))),
        Inst::Cmp {
            dst,
            pred,
            a: Operand::Imm(x),
            b: Operand::Imm(y),
        } => Some((dst, pred.eval(x, y))),
        Inst::Sel {
            dst,
            cond: Operand::Imm(c),
            on_true: Operand::Imm(t),
            on_false: Operand::Imm(f),
        } => Some((dst, if c != 0 { t } else { f })),
        _ => None,
    }
}

/// A select with a constant condition collapses to a copy of the chosen
/// arm even when that arm is a register.
fn fold_select(inst: &Inst) -> Option<(Vreg, Operand)> {
    if let Inst::Sel {
        dst,
        cond: Operand::Imm(c),
        on_true,
        on_false,
    } = *inst
    {
        Some((dst, if c != 0 { on_true } else { on_false }))
    } else {
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cfp_ir::{BinOp, KernelBuilder, MemSpace, Pred, Ty};

    #[test]
    fn folds_chains_of_constants() {
        let mut b = KernelBuilder::new("t");
        let dst = b.array_out("d", Ty::I32, MemSpace::L2);
        let x = b.mov(3_i64);
        let y = b.mul(x, 4_i64);
        let z = b.add(y, 1_i64);
        b.store(dst, 1, 0, z, Ty::I32);
        let mut k = b.finish();
        constant_fold(&mut k);
        assert_eq!(k.body[2], Inst::mov(z, 13_i64));
        // The store's operand becomes an immediate on the next round.
        constant_fold(&mut k);
        let Inst::St { value, .. } = k.body[3] else {
            panic!()
        };
        assert_eq!(value, Operand::Imm(13));
    }

    #[test]
    fn folds_cmp_and_sel() {
        let mut b = KernelBuilder::new("t");
        let c = b.cmp(Pred::Lt, 2_i64, 5_i64);
        let s = b.sel(c, 10_i64, 20_i64);
        let mut k = b.finish();
        constant_fold(&mut k);
        constant_fold(&mut k);
        assert_eq!(k.body[1], Inst::mov(s, 10_i64));
    }

    #[test]
    fn select_with_const_cond_and_reg_arm_becomes_copy() {
        let mut b = KernelBuilder::new("t");
        let src = b.array_in("s", Ty::I32, MemSpace::L2);
        let x = b.load(src, 1, 0, Ty::I32);
        let s = b.sel(1_i64, x, 99_i64);
        let mut k = b.finish();
        constant_fold(&mut k);
        assert_eq!(k.body[1], Inst::mov(s, x));
    }

    #[test]
    fn does_not_fold_through_carried_inputs() {
        let mut b = KernelBuilder::new("t");
        let inp = b.fresh();
        let out = b.add(inp, 1_i64);
        b.carry_into(inp, out, cfp_ir::CarriedInit::Const(0));
        let mut k = b.finish();
        let before = k.clone();
        constant_fold(&mut k);
        assert_eq!(k, before, "carried input is not a constant");
    }

    #[test]
    fn wrapping_is_respected() {
        let mut b = KernelBuilder::new("t");
        let x = b.bin(BinOp::Shl, 1_i64, 31_i64);
        let mut k = b.finish();
        constant_fold(&mut k);
        assert_eq!(k.body[0], Inst::mov(x, i64::from(i32::MIN)));
    }
}
