//! Copy propagation.
//!
//! Folding and algebraic simplification leave `mov dst, src` chains
//! behind; without this pass every one of them would occupy a real ALU
//! slot in the schedule. Uses of a copied value are rewritten to the
//! copy's source (transitively), after which DCE deletes the dead moves.
//!
//! Carried values constrain the rewrite: a carried *output* must remain
//! a body-defined register, so an output that is a copy is retargeted to
//! the copy's source only when that source is itself body-defined.

use cfp_ir::{CarriedInit, Inst, Kernel, Operand, UnOp, Vreg};
use std::collections::{HashMap, HashSet};

/// Propagate copies through the kernel. Follow with DCE to remove the
/// dead moves.
pub fn propagate(kernel: &mut Kernel) {
    let mut copy_of: HashMap<Vreg, Operand> = HashMap::new();
    for inst in kernel.preamble.iter().chain(&kernel.body) {
        if let Inst::Un {
            dst,
            op: UnOp::Copy,
            a,
        } = inst
        {
            copy_of.insert(*dst, *a);
        }
    }
    if copy_of.is_empty() {
        return;
    }
    let resolve = |mut o: Operand| {
        // Transitive, with a hop cap as a cycle guard (copies cannot form
        // cycles under single assignment, but stay defensive).
        for _ in 0..copy_of.len() + 1 {
            match o {
                Operand::Reg(v) => match copy_of.get(&v) {
                    Some(&next) => o = next,
                    None => return o,
                },
                imm => return imm,
            }
        }
        o
    };

    for inst in kernel.preamble.iter_mut().chain(kernel.body.iter_mut()) {
        inst.map_operands(resolve);
    }

    // Carried plumbing.
    let body_defs: HashSet<Vreg> = kernel.body.iter().filter_map(Inst::def).collect();
    let preamble_defs: HashSet<Vreg> = kernel.preamble.iter().filter_map(Inst::def).collect();
    for c in &mut kernel.carried {
        if let Operand::Reg(v) = resolve(Operand::Reg(c.output)) {
            if v == c.input || body_defs.contains(&v) {
                c.output = v;
            }
        }
        if let CarriedInit::Preamble(p) = c.init {
            match resolve(Operand::Reg(p)) {
                Operand::Reg(v) if preamble_defs.contains(&v) => {
                    c.init = CarriedInit::Preamble(v);
                }
                Operand::Imm(k) => c.init = CarriedInit::Const(k),
                _ => {}
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testutil::check_same_results;
    use cfp_frontend::compile_kernel;
    use cfp_ir::{KernelBuilder, MemSpace, Ty};

    #[test]
    fn consumers_bypass_copy_chains() {
        let mut b = KernelBuilder::new("t");
        let s = b.array_in("s", Ty::I32, MemSpace::L2);
        let d = b.array_out("d", Ty::I32, MemSpace::L2);
        let x = b.load(s, 1, 0, Ty::I32);
        let c1 = b.mov(x);
        let c2 = b.mov(c1);
        let y = b.add(c2, 1_i64);
        b.store(d, 1, 0, y, Ty::I32);
        let mut k = b.finish();
        propagate(&mut k);
        crate::dce::eliminate(&mut k);
        cfp_ir::verify(&k).unwrap();
        assert_eq!(k.body.len(), 3, "load + add + store: {:#?}", k.body);
        let Inst::Bin { a, .. } = k.body[1] else {
            panic!()
        };
        assert_eq!(a, Operand::Reg(x));
    }

    #[test]
    fn immediate_copies_fold_into_operands() {
        let mut b = KernelBuilder::new("t");
        let d = b.array_out("d", Ty::I32, MemSpace::L2);
        let c = b.mov(41_i64);
        let y = b.add(c, 1_i64);
        b.store(d, 1, 0, y, Ty::I32);
        let mut k = b.finish();
        propagate(&mut k);
        crate::dce::eliminate(&mut k);
        let Inst::Bin { a, .. } = k.body[0] else {
            panic!()
        };
        assert_eq!(a, Operand::Imm(41));
    }

    #[test]
    fn carried_output_retargets_only_to_body_defs() {
        // The carried output is a copy of a preamble constant: the mov
        // must survive (outputs must be body-defined).
        let mut b = KernelBuilder::new("t");
        b.in_preamble(true);
        let k0 = b.mov(7_i64);
        b.in_preamble(false);
        let out = b.mov(k0);
        let inp = b.carry(out, cfp_ir::CarriedInit::Const(0));
        let d = b.array_out("d", Ty::I32, MemSpace::L2);
        b.store(d, 1, 0, inp, Ty::I32);
        let mut k = b.finish();
        propagate(&mut k);
        crate::dce::eliminate(&mut k);
        cfp_ir::verify(&k).expect("carried output still body-defined");
    }

    #[test]
    fn full_pipeline_removes_simplification_movs() {
        let mut k = compile_kernel(
            "kernel t(in i32 s[], out i32 d[]) {
                loop i { d[i] = (s[i] * 1 + 0) * 4; }
            }",
            &[],
        )
        .unwrap();
        crate::optimize(&mut k);
        // *1 and +0 vanish entirely; *4 became a shift; no copies left.
        let copies = k
            .body
            .iter()
            .filter(|i| matches!(i, Inst::Un { op: UnOp::Copy, .. }))
            .count();
        assert_eq!(copies, 0, "{:#?}", k.body);
        assert_eq!(k.body.len(), 3);
    }

    #[test]
    fn propagation_preserves_semantics() {
        check_same_results(
            "kernel t(in i32 s[], out i32 d[]) {
                var acc = 0;
                loop i {
                    var x = s[i] * 1;
                    var y = x + 0;
                    acc = acc + y;
                    d[i] = acc;
                }
            }",
            &[],
            |k| {
                let mut o = k.clone();
                crate::optimize(&mut o);
                o
            },
            1,
        );
    }
}
