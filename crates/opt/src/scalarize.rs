//! Scalar promotion of local scratch arrays (mem2reg).
//!
//! A kernel-local array whose every access uses a compile-time constant
//! element index is really a bundle of scalars; this pass promotes each
//! element to virtual registers, turning stores into copies and loads
//! into uses. Elements that are read before their first store in an
//! iteration carry their value from the previous iteration (local memory
//! persists), so the pass introduces loop-carried pairs for them —
//! initialized to 0, matching zeroed local memory.
//!
//! This is what lets the IDCT and median kernels be written naturally
//! with `local` scratch and still compile to pure register dataflow, as
//! the paper's compiler would.

use cfp_ir::{ArrayKind, Carried, CarriedInit, Inst, Kernel, Operand, Vreg};
use std::collections::HashMap;

/// Promote every eligible local array. Returns how many arrays were
/// promoted.
pub fn promote_locals(kernel: &mut Kernel) -> usize {
    let eligible: Vec<u32> = kernel
        .arrays
        .iter()
        .enumerate()
        .filter(|(idx, a)| {
            matches!(a.kind, ArrayKind::Local(_)) && all_accesses_constant(kernel, *idx)
        })
        .map(|(idx, _)| u32::try_from(idx).expect("few arrays"))
        .collect();
    for &a in &eligible {
        promote_one(kernel, a);
    }
    eligible.len()
}

fn all_accesses_constant(kernel: &Kernel, array_idx: usize) -> bool {
    let mut touched = false;
    for inst in kernel.preamble.iter().chain(&kernel.body) {
        if let Some(m) = inst.mem() {
            if m.array.index() == array_idx {
                touched = true;
                if m.coeff != 0 || m.dyn_index.is_some() || m.offset < 0 {
                    return false;
                }
                let ArrayKind::Local(len) = kernel.arrays[array_idx].kind else {
                    return false;
                };
                if m.offset >= i64::from(len) {
                    return false;
                }
            }
        }
    }
    touched
}

fn promote_one(kernel: &mut Kernel, array_idx: u32) {
    let mut next = kernel.vreg_count();
    let mut fresh = || {
        let v = Vreg(next);
        next += 1;
        v
    };

    // Current register for each element; elements read before any store
    // in the body get a carried input.
    let mut current: HashMap<i64, Vreg> = HashMap::new();
    let mut carried_in: HashMap<i64, Vreg> = HashMap::new();

    let mut new_body = Vec::with_capacity(kernel.body.len());
    for inst in kernel.body.drain(..) {
        match inst {
            Inst::Ld { dst, mem, ty: lty } if mem.array.0 == array_idx => {
                let src = *current.entry(mem.offset).or_insert_with(|| {
                    let v = fresh();
                    carried_in.insert(mem.offset, v);
                    v
                });
                // Loads re-apply the element type's narrowing; a stored
                // value was already truncated, so the pair of casts is
                // what memory would have done.
                let _ = lty;
                new_body.push(Inst::mov(dst, src));
            }
            Inst::St {
                mem,
                value,
                ty: sty,
            } if mem.array.0 == array_idx => {
                // Narrow exactly like a store of this element type.
                let v = fresh();
                new_body.push(narrowing_inst(v, value, sty));
                current.insert(mem.offset, v);
            }
            other => new_body.push(other),
        }
    }
    kernel.body = new_body;

    // Elements read before written carry across iterations. Sort for
    // deterministic output.
    let mut carried_in: Vec<(i64, Vreg)> = carried_in.into_iter().collect();
    carried_in.sort_unstable_by_key(|&(o, _)| o);
    for (offset, input) in carried_in {
        let output = current.get(&offset).copied().unwrap_or(input);
        kernel.carried.push(Carried {
            input,
            output,
            init: CarriedInit::Const(0),
        });
    }
}

/// An instruction computing `dst = truncate_ty(value)`.
fn narrowing_inst(dst: Vreg, value: Operand, ty: cfp_ir::Ty) -> Inst {
    use cfp_ir::{Ty, UnOp};
    let op = match ty {
        Ty::U8 => UnOp::Zext8,
        Ty::I8 => UnOp::Sext8,
        Ty::U16 => UnOp::Zext16,
        Ty::I16 => UnOp::Sext16,
        Ty::I32 => UnOp::Copy,
    };
    Inst::Un { dst, op, a: value }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testutil::check_same_results;
    use cfp_frontend::compile_kernel;

    #[test]
    fn promotes_constant_indexed_scratch() {
        let mut k = compile_kernel(
            "kernel p(in i32 s[], out i32 d[]) {
                local i32 t[4];
                loop i {
                    t[0] = s[i];
                    t[1] = t[0] * 3;
                    t[2] = t[1] + t[0];
                    d[i] = t[2];
                }
            }",
            &[],
        )
        .unwrap();
        assert_eq!(promote_locals(&mut k), 1);
        cfp_ir::verify(&k).unwrap();
        assert_eq!(
            k.mem_counts(),
            (0, 2),
            "only the real load and store remain"
        );
    }

    #[test]
    fn read_before_write_becomes_carried() {
        let mut k = compile_kernel(
            "kernel p(in i32 s[], out i32 d[]) {
                local i32 t[1];
                loop i {
                    d[i] = t[0];
                    t[0] = s[i];
                }
            }",
            &[],
        )
        .unwrap();
        let carries_before = k.carried.len();
        assert_eq!(promote_locals(&mut k), 1);
        cfp_ir::verify(&k).unwrap();
        assert_eq!(k.carried.len(), carries_before + 1);
    }

    #[test]
    fn dynamic_index_blocks_promotion() {
        let mut k = compile_kernel(
            "kernel p(in i32 s[], out i32 d[]) {
                local i32 t[4];
                loop i {
                    t[s[i] & 3] = i32(1);
                    d[i] = t[0];
                }
            }",
            &[],
        )
        .unwrap();
        assert_eq!(promote_locals(&mut k), 0);
    }

    #[test]
    fn promotion_preserves_semantics_including_narrowing() {
        check_same_results(
            "kernel p(in i32 s[], out i32 d[]) {
                local u8 t[2];
                loop i {
                    t[0] = s[i];          // truncates to u8
                    t[1] = t[0] + 300;    // truncates again
                    d[i] = t[1] + t[0];
                }
            }",
            &[],
            |k| {
                let mut o = k.clone();
                assert_eq!(promote_locals(&mut o), 1);
                o
            },
            1,
        );
    }

    #[test]
    fn cross_iteration_scratch_preserves_semantics() {
        check_same_results(
            "kernel p(in i32 s[], out i32 d[]) {
                local i32 win[2];
                loop i {
                    d[i] = win[0] + win[1];
                    win[0] = win[1];
                    win[1] = s[i];
                }
            }",
            &[],
            |k| {
                let mut o = k.clone();
                assert_eq!(promote_locals(&mut o), 1);
                o
            },
            1,
        );
    }
}
