//! Loop-invariant code motion.
//!
//! Moves body instructions whose value cannot change across iterations
//! into the preamble: pure ops over invariant operands, and
//! iteration-invariant loads (`coeff == 0`) from arrays the body never
//! stores to. Hoisted values become *resident* — they occupy a register
//! for the entire loop — so LICM trades issue slots for register
//! pressure, one of the tensions the paper's experiment measures.

use cfp_ir::{Inst, Kernel, Operand, Vreg};
use std::collections::HashSet;

/// Hoist loop-invariant body instructions into the preamble, without a
/// register budget (see [`hoist_budgeted`]).
pub fn hoist(kernel: &mut Kernel) {
    hoist_budgeted(kernel, usize::MAX);
}

/// Hoist loop-invariant body instructions into the preamble, keeping the
/// total count of loop-resident values (existing preamble values read by
/// the body plus newly hoisted ones) at or below `max_resident`.
///
/// Real compilers make this decision against the target's register file;
/// the design-space exploration calls the optimizer with a budget derived
/// from each candidate architecture, so register-poor machines hoist
/// fewer table loads — and pay for the reloads in memory traffic instead.
pub fn hoist_budgeted(kernel: &mut Kernel, max_resident: usize) {
    let stored: HashSet<u32> = kernel
        .body
        .iter()
        .filter(|i| i.is_store())
        .filter_map(|i| i.mem().map(|m| m.array.0))
        .collect();
    let carried_outputs: HashSet<Vreg> = kernel.carried.iter().map(|c| c.output).collect();
    let carried_inputs: HashSet<Vreg> = kernel.carried.iter().map(|c| c.input).collect();

    let mut invariant: HashSet<Vreg> = kernel.preamble.iter().filter_map(Inst::def).collect();
    let mut hoist_flags = vec![false; kernel.body.len()];

    // Values already resident: preamble defs the body actually reads.
    let mut resident_count = {
        let mut body_reads: HashSet<Vreg> = HashSet::new();
        for inst in &kernel.body {
            for u in inst.uses() {
                body_reads.insert(u);
            }
        }
        invariant.iter().filter(|v| body_reads.contains(v)).count()
    };

    // Grow the invariant set to a fixed point (bounded by body length),
    // stopping when the residency budget is exhausted.
    loop {
        let mut changed = false;
        for (idx, inst) in kernel.body.iter().enumerate() {
            if resident_count >= max_resident {
                break;
            }
            if hoist_flags[idx] {
                continue;
            }
            if !hoistable(inst, &invariant, &carried_inputs, &stored) {
                continue;
            }
            let Some(dst) = inst.def() else { continue };
            if carried_outputs.contains(&dst) {
                continue; // must stay body-defined
            }
            hoist_flags[idx] = true;
            invariant.insert(dst);
            resident_count += 1;
            changed = true;
        }
        if !changed || resident_count >= max_resident {
            break;
        }
    }

    if hoist_flags.iter().any(|&f| f) {
        let mut remaining = Vec::with_capacity(kernel.body.len());
        for (idx, inst) in kernel.body.drain(..).enumerate() {
            if hoist_flags[idx] {
                kernel.preamble.push(inst);
            } else {
                remaining.push(inst);
            }
        }
        kernel.body = remaining;
    }
}

fn hoistable(
    inst: &Inst,
    invariant: &HashSet<Vreg>,
    carried_inputs: &HashSet<Vreg>,
    stored: &HashSet<u32>,
) -> bool {
    if inst.is_store() {
        return false;
    }
    if let Some(m) = inst.mem() {
        if m.coeff != 0 || stored.contains(&m.array.0) {
            return false;
        }
    }
    let mut ok = true;
    inst.for_each_operand(|o| {
        if let Operand::Reg(v) = o {
            if carried_inputs.contains(&v) || !invariant.contains(&v) {
                ok = false;
            }
        }
    });
    ok
}

#[cfg(test)]
mod tests {
    use super::*;
    use cfp_frontend::compile_kernel;

    #[test]
    fn hoists_invariant_loads_and_arithmetic() {
        let mut k = compile_kernel(
            "kernel h(in l1 i16 t[], in u8 s[], out i32 d[]) {
                loop i {
                    var c = t[3] * 2 + 1;
                    d[i] = s[i] * c;
                }
            }",
            &[],
        )
        .unwrap();
        let body_before = k.body.len();
        hoist(&mut k);
        cfp_ir::verify(&k).unwrap();
        assert!(k.body.len() < body_before);
        // The invariant load and its arithmetic moved out; only the
        // varying load, multiply, and store remain.
        assert_eq!(k.body.len(), 3, "{:#?}", k.body);
        assert_eq!(k.mem_counts(), (0, 2), "varying load + store, both L2");
    }

    #[test]
    fn does_not_hoist_loads_from_stored_arrays() {
        let mut k = compile_kernel(
            "kernel h(inout i32 buf[], out i32 d[]) {
                loop i {
                    var x = buf[0];
                    buf[0] = x + 1;
                    d[i] = x;
                }
            }",
            &[],
        )
        .unwrap();
        let before = k.clone();
        hoist(&mut k);
        assert_eq!(k, before, "buf[0] varies via the store");
    }

    #[test]
    fn does_not_hoist_carried_dependent_values() {
        let mut k = compile_kernel(
            "kernel h(out i32 d[]) {
                var e = 1;
                loop i {
                    e = e * 3;
                    d[i] = e;
                }
            }",
            &[],
        )
        .unwrap();
        let before = k.clone();
        hoist(&mut k);
        assert_eq!(k, before);
    }

    #[test]
    fn hoisting_preserves_semantics() {
        crate::testutil::check_same_results(
            "kernel h(in l1 i16 t[], in u8 s[], out i32 d[]) {
                loop i {
                    var c = t[5] * t[6];
                    d[i] = s[i] + c;
                }
            }",
            &[],
            |k| {
                let mut o = k.clone();
                hoist(&mut o);
                o
            },
            1,
        );
    }
}
