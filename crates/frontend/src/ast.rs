//! Abstract syntax tree of the kernel DSL.
//!
//! The surface language is a tiny C-like kernel language. One file
//! declares one kernel; its body may contain at most one `loop` statement
//! (the surviving outer loop over output units), any number of
//! constant-bound `for` loops (fully unrolled at lowering), and `if`s
//! (if-converted to selects). See `crates/kernels/src/dsl/` for the real
//! benchmark sources.

use crate::token::Span;
use cfp_ir::{MemSpace, Ty};

/// A parsed kernel.
#[derive(Debug, Clone, PartialEq)]
pub struct KernelAst {
    /// Kernel name.
    pub name: String,
    /// Parameter list.
    pub params: Vec<Param>,
    /// Top-level statements (setup plus the single `loop`).
    pub body: Vec<Stmt>,
    /// Location of the header.
    pub span: Span,
}

/// Array binding direction.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Dir {
    /// Read-only.
    In,
    /// Write-only.
    Out,
    /// Read-write.
    InOut,
}

/// One kernel parameter.
#[derive(Debug, Clone, PartialEq)]
pub enum Param {
    /// An array parameter, e.g. `in l2 u8 src[]`.
    Array {
        /// Name.
        name: String,
        /// Direction.
        dir: Dir,
        /// Memory level (defaults to L2).
        space: MemSpace,
        /// Element type.
        ty: Ty,
        /// Location.
        span: Span,
    },
    /// A compile-time constant, e.g. `const factor` (value supplied when
    /// the kernel is compiled — the paper specializes kernels per
    /// configuration, as embedded codesign does).
    Const {
        /// Name.
        name: String,
        /// Location.
        span: Span,
    },
}

/// A statement.
#[derive(Debug, Clone, PartialEq)]
pub enum Stmt {
    /// `var x = e;` — declare a mutable i32 scalar.
    Var {
        /// Name.
        name: String,
        /// Initializer (defaults to 0).
        init: Option<Expr>,
        /// Location.
        span: Span,
    },
    /// `local l2 i16 buf[64];` — kernel-local scratch array.
    LocalArray {
        /// Name.
        name: String,
        /// Memory level.
        space: MemSpace,
        /// Element type.
        ty: Ty,
        /// Constant element count.
        len: Expr,
        /// Location.
        span: Span,
    },
    /// `x = e;`
    Assign {
        /// Scalar name.
        name: String,
        /// New value.
        value: Expr,
        /// Location.
        span: Span,
    },
    /// `arr[idx] = e;`
    Store {
        /// Array name.
        array: String,
        /// Element index.
        index: Expr,
        /// Value.
        value: Expr,
        /// Location.
        span: Span,
    },
    /// `for v in lo..hi { … }` — constant bounds, fully unrolled.
    For {
        /// Loop variable (a constant within each unrolled copy).
        var: String,
        /// Inclusive lower bound (constant expression).
        start: Expr,
        /// Exclusive upper bound (constant expression).
        end: Expr,
        /// Body.
        body: Vec<Stmt>,
        /// Location.
        span: Span,
    },
    /// `loop i { … }` or `loop i produces K { … }` — the outer loop.
    Loop {
        /// Iteration variable (usable only in affine index positions).
        var: String,
        /// Output units produced per iteration (defaults to 1).
        produces: Option<Expr>,
        /// Body.
        body: Vec<Stmt>,
        /// Location.
        span: Span,
    },
    /// `if c { … } else { … }` — if-converted; stores are not allowed
    /// inside.
    If {
        /// Condition.
        cond: Expr,
        /// Then branch.
        then_body: Vec<Stmt>,
        /// Else branch (may be empty).
        else_body: Vec<Stmt>,
        /// Location.
        span: Span,
    },
}

/// Unary operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum UnaryOp {
    /// `-e`
    Neg,
    /// `~e`
    Not,
    /// `!e` (logical: 1 if zero, else 0)
    LNot,
}

/// Binary operators (C semantics on 32-bit ints; `>>` is arithmetic,
/// `>>>` logical).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BinaryOp {
    /// `+`
    Add,
    /// `-`
    Sub,
    /// `*`
    Mul,
    /// `&`
    And,
    /// `|`
    Or,
    /// `^`
    Xor,
    /// `<<`
    Shl,
    /// `>>`
    AShr,
    /// `>>>`
    LShr,
    /// `==`
    Eq,
    /// `!=`
    Ne,
    /// `<`
    Lt,
    /// `<=`
    Le,
    /// `>`
    Gt,
    /// `>=`
    Ge,
    /// `&&` (logical, non-short-circuit — the target is if-converted)
    LAnd,
    /// `||`
    LOr,
}

/// An expression.
#[derive(Debug, Clone, PartialEq)]
pub enum Expr {
    /// Integer literal.
    Int(i64, Span),
    /// Scalar variable, const parameter, or loop variable.
    Var(String, Span),
    /// Array element read `arr[idx]`.
    Index {
        /// Array name.
        array: String,
        /// Element index.
        index: Box<Expr>,
        /// Location.
        span: Span,
    },
    /// Unary operation.
    Unary {
        /// Operator.
        op: UnaryOp,
        /// Operand.
        expr: Box<Expr>,
        /// Location.
        span: Span,
    },
    /// Binary operation.
    Binary {
        /// Operator.
        op: BinaryOp,
        /// Left operand.
        lhs: Box<Expr>,
        /// Right operand.
        rhs: Box<Expr>,
        /// Location.
        span: Span,
    },
    /// `c ? t : f`.
    Ternary {
        /// Condition.
        cond: Box<Expr>,
        /// Value if non-zero.
        then_expr: Box<Expr>,
        /// Value if zero.
        else_expr: Box<Expr>,
        /// Location.
        span: Span,
    },
    /// Builtin call: `min`, `max`, `abs`, or a cast (`u8(x)`, `i16(x)`, …).
    Call {
        /// Builtin name.
        func: String,
        /// Arguments.
        args: Vec<Expr>,
        /// Location.
        span: Span,
    },
}

impl Expr {
    /// The source location of this expression.
    #[must_use]
    pub fn span(&self) -> Span {
        match self {
            Expr::Int(_, s) | Expr::Var(_, s) => *s,
            Expr::Index { span, .. }
            | Expr::Unary { span, .. }
            | Expr::Binary { span, .. }
            | Expr::Ternary { span, .. }
            | Expr::Call { span, .. } => *span,
        }
    }
}
