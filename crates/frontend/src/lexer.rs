//! Hand-written lexer for the kernel DSL.

use crate::diag::CompileError;
use crate::token::{Span, Tok, Token};

/// Tokenize `src` fully.
///
/// # Errors
/// Returns [`CompileError`] on an unrecognized character or malformed
/// integer literal.
pub fn lex(src: &str) -> Result<Vec<Token>, CompileError> {
    let bytes = src.as_bytes();
    let mut out = Vec::new();
    let mut i = 0;
    while i < bytes.len() {
        let start = i;
        let c = bytes[i] as char;
        match c {
            ' ' | '\t' | '\r' | '\n' => {
                i += 1;
            }
            '/' if bytes.get(i + 1) == Some(&b'/') => {
                while i < bytes.len() && bytes[i] != b'\n' {
                    i += 1;
                }
            }
            '/' if bytes.get(i + 1) == Some(&b'*') => {
                let open = i;
                i += 2;
                loop {
                    if i + 1 >= bytes.len() {
                        return Err(CompileError::new(
                            "unterminated block comment",
                            Span::new(open, open + 2),
                        ));
                    }
                    if bytes[i] == b'*' && bytes[i + 1] == b'/' {
                        i += 2;
                        break;
                    }
                    i += 1;
                }
            }
            '0'..='9' => {
                let (tok, next) = lex_number(src, i)?;
                out.push(Token {
                    tok,
                    span: Span::new(start, next),
                });
                i = next;
            }
            'a'..='z' | 'A'..='Z' | '_' => {
                let mut j = i + 1;
                while j < bytes.len() && (bytes[j].is_ascii_alphanumeric() || bytes[j] == b'_') {
                    j += 1;
                }
                let word = &src[i..j];
                out.push(Token {
                    tok: keyword_or_ident(word),
                    span: Span::new(i, j),
                });
                i = j;
            }
            _ => {
                let (tok, len) = lex_operator(bytes, i).ok_or_else(|| {
                    CompileError::new(format!("unrecognized character `{c}`"), Span::new(i, i + 1))
                })?;
                out.push(Token {
                    tok,
                    span: Span::new(i, i + len),
                });
                i += len;
            }
        }
    }
    out.push(Token {
        tok: Tok::Eof,
        span: Span::new(bytes.len(), bytes.len()),
    });
    Ok(out)
}

fn lex_number(src: &str, start: usize) -> Result<(Tok, usize), CompileError> {
    let bytes = src.as_bytes();
    let (radix, digits_start) =
        if bytes[start] == b'0' && matches!(bytes.get(start + 1), Some(b'x' | b'X')) {
            (16, start + 2)
        } else {
            (10, start)
        };
    let mut j = digits_start;
    while j < bytes.len() && (bytes[j].is_ascii_alphanumeric() || bytes[j] == b'_') {
        j += 1;
    }
    let text: String = src[digits_start..j].chars().filter(|&c| c != '_').collect();
    let value = i64::from_str_radix(&text, radix).map_err(|e| {
        CompileError::new(
            format!("malformed integer literal: {e}"),
            Span::new(start, j),
        )
    })?;
    Ok((Tok::Int(value), j))
}

fn keyword_or_ident(word: &str) -> Tok {
    match word {
        "kernel" => Tok::Kernel,
        "in" => Tok::In,
        "out" => Tok::Out,
        "inout" => Tok::Inout,
        "const" => Tok::Const,
        "var" => Tok::Var,
        "local" => Tok::Local,
        "loop" => Tok::Loop,
        "for" => Tok::For,
        "if" => Tok::If,
        "else" => Tok::Else,
        "produces" => Tok::Produces,
        "l1" => Tok::L1,
        "l2" => Tok::L2,
        "u8" => Tok::U8,
        "i8" => Tok::I8,
        "u16" => Tok::U16,
        "i16" => Tok::I16,
        "i32" => Tok::I32,
        _ => Tok::Ident(word.to_owned()),
    }
}

fn lex_operator(bytes: &[u8], i: usize) -> Option<(Tok, usize)> {
    let pair = |o: usize| bytes.get(i + o).copied();
    let tok3 = match (bytes[i], pair(1), pair(2)) {
        (b'>', Some(b'>'), Some(b'>')) => Some(Tok::Ushr),
        _ => None,
    };
    if let Some(t) = tok3 {
        return Some((t, 3));
    }
    let tok2 = match (bytes[i], pair(1)) {
        (b'<', Some(b'<')) => Some(Tok::Shl),
        (b'>', Some(b'>')) => Some(Tok::Shr),
        (b'=', Some(b'=')) => Some(Tok::EqEq),
        (b'!', Some(b'=')) => Some(Tok::NotEq),
        (b'<', Some(b'=')) => Some(Tok::Le),
        (b'>', Some(b'=')) => Some(Tok::Ge),
        (b'&', Some(b'&')) => Some(Tok::AndAnd),
        (b'|', Some(b'|')) => Some(Tok::OrOr),
        (b'.', Some(b'.')) => Some(Tok::DotDot),
        _ => None,
    };
    if let Some(t) = tok2 {
        return Some((t, 2));
    }
    let tok1 = match bytes[i] {
        b'(' => Tok::LParen,
        b')' => Tok::RParen,
        b'{' => Tok::LBrace,
        b'}' => Tok::RBrace,
        b'[' => Tok::LBracket,
        b']' => Tok::RBracket,
        b',' => Tok::Comma,
        b';' => Tok::Semi,
        b':' => Tok::Colon,
        b'?' => Tok::Question,
        b'=' => Tok::Assign,
        b'+' => Tok::Plus,
        b'-' => Tok::Minus,
        b'*' => Tok::Star,
        b'&' => Tok::Amp,
        b'|' => Tok::Pipe,
        b'^' => Tok::Caret,
        b'~' => Tok::Tilde,
        b'!' => Tok::Bang,
        b'<' => Tok::Lt,
        b'>' => Tok::Gt,
        _ => return None,
    };
    Some((tok1, 1))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(src: &str) -> Vec<Tok> {
        lex(src).unwrap().into_iter().map(|t| t.tok).collect()
    }

    #[test]
    fn lexes_a_kernel_header() {
        let toks = kinds("kernel f(in l2 u8 src[], out u8 dst[]) {}");
        assert_eq!(toks[0], Tok::Kernel);
        assert_eq!(toks[1], Tok::Ident("f".into()));
        assert!(toks.contains(&Tok::LBracket));
        assert_eq!(*toks.last().unwrap(), Tok::Eof);
    }

    #[test]
    fn lexes_numbers() {
        assert_eq!(kinds("42")[0], Tok::Int(42));
        assert_eq!(kinds("0x80")[0], Tok::Int(128));
        assert_eq!(kinds("1_000")[0], Tok::Int(1000));
    }

    #[test]
    fn lexes_operators_greedily() {
        assert_eq!(
            kinds("a >>> b >> c >= d > e"),
            vec![
                Tok::Ident("a".into()),
                Tok::Ushr,
                Tok::Ident("b".into()),
                Tok::Shr,
                Tok::Ident("c".into()),
                Tok::Ge,
                Tok::Ident("d".into()),
                Tok::Gt,
                Tok::Ident("e".into()),
                Tok::Eof
            ]
        );
        assert_eq!(kinds("0..7")[1], Tok::DotDot);
        assert_eq!(kinds("a && b")[1], Tok::AndAnd);
    }

    #[test]
    fn skips_comments() {
        let toks = kinds("a // line\nb /* block\nstill */ c");
        assert_eq!(
            toks,
            vec![
                Tok::Ident("a".into()),
                Tok::Ident("b".into()),
                Tok::Ident("c".into()),
                Tok::Eof
            ]
        );
    }

    #[test]
    fn rejects_garbage() {
        assert!(lex("a $ b").is_err());
        assert!(lex("/* unterminated").is_err());
        assert!(lex("0xzz").is_err());
    }

    #[test]
    fn spans_point_at_source() {
        let toks = lex("ab cd").unwrap();
        assert_eq!(toks[1].span, Span::new(3, 5));
    }
}
