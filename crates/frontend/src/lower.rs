//! Lowering: AST → `cfp_ir::Kernel`.
//!
//! This stage performs, in one walk, the source-level transformations the
//! paper applies to every benchmark before scheduling ("proper source
//! code transformations have been applied … to expose ILP — loop
//! transformations, if-conversion, etc.", §2.3):
//!
//! * **full unrolling** of constant-bound `for` loops (each copy binds
//!   the loop variable to a constant, so indices fold);
//! * **if-conversion**: both branches of an `if` are lowered
//!   speculatively and every scalar they disagree on is merged with a
//!   select; stores under an `if` are rejected (the machine has no
//!   predicated stores);
//! * **loop-invariant hoisting**: everything outside the single `loop`
//!   statement lowers into the kernel preamble and stays in registers for
//!   the whole loop;
//! * **carried-scalar discovery**: scalars declared before the `loop`
//!   and assigned inside it become explicit loop-carried values;
//! * **affine index tracking**: index expressions are evaluated
//!   symbolically as `c0 + c1·i`, producing exact affine [`MemRef`]s for
//!   the scheduler's dependence test; a non-affine index falls back to a
//!   dynamic register index (with conservative dependences).

use crate::ast::{BinaryOp, Dir, Expr, KernelAst, Param, Stmt, UnaryOp};
use crate::diag::CompileError;
use crate::token::Span;
use cfp_ir::{
    ArrayDecl, ArrayId, ArrayKind, Carried, CarriedInit, Inst, Kernel, MemRef, Operand, Pred, Ty,
    UnOp, Vreg,
};
use std::collections::HashMap;

/// Lower a parsed kernel, binding each `const` parameter to a value.
///
/// # Errors
/// Returns a [`CompileError`] for semantic violations: undefined or
/// doubly-defined names, missing/extra const bindings, non-constant
/// bounds, stores under `if`, non-affine use of the loop variable,
/// multiple or non-top-level `loop` statements, and the like.
pub fn lower(ast: &KernelAst, consts: &[(&str, i64)]) -> Result<Kernel, CompileError> {
    let mut lw = Lowerer::new(ast.name.clone());
    lw.declare_params(ast, consts)?;
    let mut saw_loop = false;
    for stmt in &ast.body {
        if saw_loop {
            return Err(CompileError::new(
                "statements after the `loop` are not supported",
                stmt_span(stmt),
            ));
        }
        saw_loop = matches!(stmt, Stmt::Loop { .. });
        lw.stmt(stmt)?;
    }
    let kernel = lw.finish();
    debug_assert_eq!(
        cfp_ir::verify(&kernel),
        Ok(()),
        "lowering broke IR invariants"
    );
    Ok(kernel)
}

fn stmt_span(s: &Stmt) -> Span {
    match s {
        Stmt::Var { span, .. }
        | Stmt::LocalArray { span, .. }
        | Stmt::Assign { span, .. }
        | Stmt::Store { span, .. }
        | Stmt::For { span, .. }
        | Stmt::Loop { span, .. }
        | Stmt::If { span, .. } => *span,
    }
}

/// A symbolic value during lowering.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Sym {
    /// Compile-time constant.
    Const(i64),
    /// `c0 + c1·i` where `i` is the loop variable (`c1 != 0`).
    Affine { c0: i64, c1: i64 },
    /// A runtime value in a register.
    Reg(Vreg),
}

#[derive(Debug, Clone, Copy)]
struct Binding {
    sym: Sym,
    mutable: bool,
}

struct Lowerer {
    kernel: Kernel,
    next_vreg: u32,
    arrays: HashMap<String, ArrayId>,
    /// Scope stack; lookup walks from the innermost scope outward.
    scopes: Vec<HashMap<String, Binding>>,
    loop_var: Option<String>,
    in_loop: bool,
    if_depth: u32,
    seen_loop: bool,
}

impl Lowerer {
    fn new(name: String) -> Self {
        Lowerer {
            kernel: Kernel::new(name),
            next_vreg: 0,
            arrays: HashMap::new(),
            scopes: vec![HashMap::new()],
            loop_var: None,
            in_loop: false,
            if_depth: 0,
            seen_loop: false,
        }
    }

    fn fresh(&mut self) -> Vreg {
        let v = Vreg(self.next_vreg);
        self.next_vreg += 1;
        v
    }

    fn emit(&mut self, inst: Inst) {
        if self.in_loop {
            self.kernel.body.push(inst);
        } else {
            self.kernel.preamble.push(inst);
        }
    }

    fn finish(self) -> Kernel {
        self.kernel
    }

    // ---- name management -------------------------------------------------

    fn name_in_use(&self, name: &str) -> bool {
        self.arrays.contains_key(name)
            || self.scopes.iter().any(|s| s.contains_key(name))
            || self.loop_var.as_deref() == Some(name)
    }

    fn declare(&mut self, name: &str, b: Binding, span: Span) -> Result<(), CompileError> {
        if self.name_in_use(name) {
            return Err(CompileError::new(
                format!("name `{name}` is already defined (shadowing is not allowed)"),
                span,
            ));
        }
        self.scopes
            .last_mut()
            .expect("scope stack never empty")
            .insert(name.to_owned(), b);
        Ok(())
    }

    fn lookup(&self, name: &str) -> Option<Binding> {
        for scope in self.scopes.iter().rev() {
            if let Some(b) = scope.get(name) {
                return Some(*b);
            }
        }
        None
    }

    fn set(&mut self, name: &str, sym: Sym, span: Span) -> Result<(), CompileError> {
        for scope in self.scopes.iter_mut().rev() {
            if let Some(b) = scope.get_mut(name) {
                if !b.mutable {
                    return Err(CompileError::new(
                        format!("`{name}` is not assignable"),
                        span,
                    ));
                }
                b.sym = sym;
                return Ok(());
            }
        }
        Err(CompileError::new(
            format!("assignment to undefined variable `{name}`"),
            span,
        ))
    }

    // ---- declarations ----------------------------------------------------

    fn declare_params(
        &mut self,
        ast: &KernelAst,
        consts: &[(&str, i64)],
    ) -> Result<(), CompileError> {
        let mut unused: HashMap<&str, i64> = consts.iter().copied().collect();
        if unused.len() != consts.len() {
            return Err(CompileError::new(
                "duplicate const binding supplied",
                ast.span,
            ));
        }
        for p in &ast.params {
            match p {
                Param::Array {
                    name,
                    dir,
                    space,
                    ty,
                    span,
                } => {
                    if self.name_in_use(name) {
                        return Err(CompileError::new(
                            format!("parameter `{name}` duplicates another name"),
                            *span,
                        ));
                    }
                    let id = ArrayId(u32::try_from(self.kernel.arrays.len()).expect("few arrays"));
                    self.kernel.arrays.push(ArrayDecl {
                        name: name.clone(),
                        ty: *ty,
                        space: *space,
                        kind: match dir {
                            Dir::In => ArrayKind::In,
                            Dir::Out => ArrayKind::Out,
                            Dir::InOut => ArrayKind::InOut,
                        },
                    });
                    self.arrays.insert(name.clone(), id);
                }
                Param::Const { name, span } => {
                    let Some(v) = unused.remove(name.as_str()) else {
                        return Err(CompileError::new(
                            format!("no value supplied for const parameter `{name}`"),
                            *span,
                        ));
                    };
                    self.declare(
                        name,
                        Binding {
                            sym: Sym::Const(v),
                            mutable: false,
                        },
                        *span,
                    )?;
                }
            }
        }
        if let Some((name, _)) = unused.into_iter().next() {
            return Err(CompileError::new(
                format!("const binding `{name}` does not match any parameter"),
                ast.span,
            ));
        }
        Ok(())
    }

    // ---- constant evaluation (no code emission) ----------------------------

    fn const_eval(&self, e: &Expr) -> Result<i64, CompileError> {
        match e {
            Expr::Int(v, _) => Ok(*v),
            Expr::Var(name, span) => match self.lookup(name) {
                Some(Binding {
                    sym: Sym::Const(v), ..
                }) => Ok(v),
                Some(_) => Err(CompileError::new(
                    format!("`{name}` is not a compile-time constant"),
                    *span,
                )),
                None => Err(CompileError::new(format!("undefined name `{name}`"), *span)),
            },
            Expr::Unary { op, expr, .. } => {
                let v = self.const_eval(expr)?;
                Ok(match op {
                    UnaryOp::Neg => cfp_ir::wrap32(v.wrapping_neg()),
                    UnaryOp::Not => cfp_ir::wrap32(!v),
                    UnaryOp::LNot => i64::from(v == 0),
                })
            }
            Expr::Binary { op, lhs, rhs, .. } => {
                let a = self.const_eval(lhs)?;
                let b = self.const_eval(rhs)?;
                fold_binary(*op, a, b)
                    .ok_or_else(|| CompileError::new("unsupported constant operation", e.span()))
            }
            Expr::Ternary {
                cond,
                then_expr,
                else_expr,
                ..
            } => {
                if self.const_eval(cond)? != 0 {
                    self.const_eval(then_expr)
                } else {
                    self.const_eval(else_expr)
                }
            }
            Expr::Call { func, args, span } => {
                let vals: Vec<i64> = args
                    .iter()
                    .map(|a| self.const_eval(a))
                    .collect::<Result<_, _>>()?;
                fold_call(func, &vals).ok_or_else(|| {
                    CompileError::new(
                        format!("`{func}` is not usable in a constant context here"),
                        *span,
                    )
                })
            }
            Expr::Index { span, .. } => Err(CompileError::new(
                "array loads are not compile-time constants",
                *span,
            )),
        }
    }

    // ---- expression lowering ----------------------------------------------

    fn materialize(&mut self, sym: Sym, span: Span) -> Result<Operand, CompileError> {
        match sym {
            Sym::Const(v) => Ok(Operand::Imm(v)),
            Sym::Reg(v) => Ok(Operand::Reg(v)),
            Sym::Affine { .. } => Err(CompileError::new(
                "the loop variable may only be used in affine array-index arithmetic",
                span,
            )),
        }
    }

    fn eval(&mut self, e: &Expr) -> Result<Sym, CompileError> {
        match e {
            Expr::Int(v, _) => Ok(Sym::Const(*v)),
            Expr::Var(name, span) => {
                if self.loop_var.as_deref() == Some(name) {
                    return Ok(Sym::Affine { c0: 0, c1: 1 });
                }
                self.lookup(name)
                    .map(|b| b.sym)
                    .ok_or_else(|| CompileError::new(format!("undefined name `{name}`"), *span))
            }
            Expr::Index { array, index, span } => {
                let id = *self.arrays.get(array).ok_or_else(|| {
                    CompileError::new(format!("undefined array `{array}`"), *span)
                })?;
                if !self.kernel.arrays[id.index()].kind.readable() {
                    return Err(CompileError::new(
                        format!("array `{array}` is write-only (`out`)"),
                        *span,
                    ));
                }
                let mem = self.mem_ref(id, index)?;
                let ty = self.kernel.arrays[id.index()].ty;
                let dst = self.fresh();
                self.emit(Inst::Ld { dst, mem, ty });
                Ok(Sym::Reg(dst))
            }
            Expr::Unary { op, expr, span } => {
                let a = self.eval(expr)?;
                match (op, a) {
                    (UnaryOp::Neg, Sym::Const(v)) => {
                        Ok(Sym::Const(cfp_ir::wrap32(v.wrapping_neg())))
                    }
                    (UnaryOp::Neg, Sym::Affine { c0, c1 }) => Ok(Sym::Affine { c0: -c0, c1: -c1 }),
                    (UnaryOp::Not, Sym::Const(v)) => Ok(Sym::Const(cfp_ir::wrap32(!v))),
                    (UnaryOp::LNot, Sym::Const(v)) => Ok(Sym::Const(i64::from(v == 0))),
                    (UnaryOp::Neg | UnaryOp::Not, _) => {
                        let o = self.materialize(a, *span)?;
                        let dst = self.fresh();
                        let un = if *op == UnaryOp::Neg {
                            UnOp::Neg
                        } else {
                            UnOp::Not
                        };
                        self.emit(Inst::Un { dst, op: un, a: o });
                        Ok(Sym::Reg(dst))
                    }
                    (UnaryOp::LNot, _) => {
                        let o = self.materialize(a, *span)?;
                        let dst = self.fresh();
                        self.emit(Inst::Cmp {
                            dst,
                            pred: Pred::Eq,
                            a: o,
                            b: Operand::Imm(0),
                        });
                        Ok(Sym::Reg(dst))
                    }
                }
            }
            Expr::Binary { op, lhs, rhs, span } => {
                let a = self.eval(lhs)?;
                let b = self.eval(rhs)?;
                self.binary(*op, a, b, *span)
            }
            Expr::Ternary {
                cond,
                then_expr,
                else_expr,
                ..
            } => {
                let c = self.eval(cond)?;
                let t = self.eval(then_expr)?;
                let f = self.eval(else_expr)?;
                if let Sym::Const(cv) = c {
                    return Ok(if cv != 0 { t } else { f });
                }
                let co = self.materialize(c, cond.span())?;
                let to = self.materialize(t, then_expr.span())?;
                let fo = self.materialize(f, else_expr.span())?;
                let dst = self.fresh();
                self.emit(Inst::Sel {
                    dst,
                    cond: co,
                    on_true: to,
                    on_false: fo,
                });
                Ok(Sym::Reg(dst))
            }
            Expr::Call { func, args, span } => self.call(func, args, *span),
        }
    }

    fn binary(&mut self, op: BinaryOp, a: Sym, b: Sym, span: Span) -> Result<Sym, CompileError> {
        use Sym::{Affine, Const};
        // Constant folding and affine arithmetic first.
        if let (Const(x), Const(y)) = (a, b) {
            if let Some(v) = fold_binary(op, x, y) {
                return Ok(Const(v));
            }
        }
        let as_affine = |s: Sym| match s {
            Const(v) => Some((v, 0_i64)),
            Affine { c0, c1 } => Some((c0, c1)),
            Sym::Reg(_) => None,
        };
        match op {
            BinaryOp::Add | BinaryOp::Sub => {
                if let (Some((a0, a1)), Some((b0, b1))) = (as_affine(a), as_affine(b)) {
                    let (c0, c1) = if op == BinaryOp::Add {
                        (a0 + b0, a1 + b1)
                    } else {
                        (a0 - b0, a1 - b1)
                    };
                    return Ok(if c1 == 0 {
                        Const(c0)
                    } else {
                        Affine { c0, c1 }
                    });
                }
            }
            BinaryOp::Mul => {
                if let (Some((a0, a1)), Some((b0, b1))) = (as_affine(a), as_affine(b)) {
                    if a1 == 0 || b1 == 0 {
                        let (k, (c0, c1)) = if a1 == 0 {
                            (a0, (b0, b1))
                        } else {
                            (b0, (a0, a1))
                        };
                        let (c0, c1) = (k * c0, k * c1);
                        return Ok(if c1 == 0 {
                            Const(c0)
                        } else {
                            Affine { c0, c1 }
                        });
                    }
                    return Err(CompileError::new(
                        "the loop variable may not be multiplied by itself",
                        span,
                    ));
                }
            }
            BinaryOp::Shl => {
                if let (Some((c0, c1)), Some((k, 0))) = (as_affine(a), as_affine(b)) {
                    if c1 != 0 && (0..31).contains(&k) {
                        return Ok(Affine {
                            c0: c0 << k,
                            c1: c1 << k,
                        });
                    }
                }
            }
            _ => {}
        }
        // Logical operators normalize both sides to 0/1.
        if matches!(op, BinaryOp::LAnd | BinaryOp::LOr) {
            let na = self.lower_bool(a, span)?;
            let nb = self.lower_bool(b, span)?;
            let bin = if op == BinaryOp::LAnd {
                cfp_ir::BinOp::And
            } else {
                cfp_ir::BinOp::Or
            };
            return self.emit_bin(bin, na, nb);
        }
        // Comparison → Cmp instruction.
        if let Some(pred) = pred_of(op) {
            let ao = self.materialize(a, span)?;
            let bo = self.materialize(b, span)?;
            let dst = self.fresh();
            self.emit(Inst::Cmp {
                dst,
                pred,
                a: ao,
                b: bo,
            });
            return Ok(Sym::Reg(dst));
        }
        // Plain ALU op.
        let bin = match op {
            BinaryOp::Add => cfp_ir::BinOp::Add,
            BinaryOp::Sub => cfp_ir::BinOp::Sub,
            BinaryOp::Mul => cfp_ir::BinOp::Mul,
            BinaryOp::And => cfp_ir::BinOp::And,
            BinaryOp::Or => cfp_ir::BinOp::Or,
            BinaryOp::Xor => cfp_ir::BinOp::Xor,
            BinaryOp::Shl => cfp_ir::BinOp::Shl,
            BinaryOp::AShr => cfp_ir::BinOp::AShr,
            BinaryOp::LShr => cfp_ir::BinOp::LShr,
            _ => unreachable!("comparisons and logicals handled above"),
        };
        let ao = self.materialize(a, span)?;
        let bo = self.materialize(b, span)?;
        self.emit_bin(bin, ao, bo)
    }

    fn emit_bin(&mut self, op: cfp_ir::BinOp, a: Operand, b: Operand) -> Result<Sym, CompileError> {
        let dst = self.fresh();
        self.emit(Inst::Bin { dst, op, a, b });
        Ok(Sym::Reg(dst))
    }

    fn lower_bool(&mut self, s: Sym, span: Span) -> Result<Operand, CompileError> {
        match s {
            Sym::Const(v) => Ok(Operand::Imm(i64::from(v != 0))),
            _ => {
                let o = self.materialize(s, span)?;
                let dst = self.fresh();
                self.emit(Inst::Cmp {
                    dst,
                    pred: Pred::Ne,
                    a: o,
                    b: Operand::Imm(0),
                });
                Ok(Operand::Reg(dst))
            }
        }
    }

    fn call(&mut self, func: &str, args: &[Expr], span: Span) -> Result<Sym, CompileError> {
        let syms: Vec<Sym> = args
            .iter()
            .map(|a| self.eval(a))
            .collect::<Result<_, _>>()?;
        // Fully constant calls fold.
        if let Some(consts) = syms
            .iter()
            .map(|s| match s {
                Sym::Const(v) => Some(*v),
                _ => None,
            })
            .collect::<Option<Vec<i64>>>()
        {
            if let Some(v) = fold_call(func, &consts) {
                return Ok(Sym::Const(v));
            }
        }
        let arity = |n: usize| -> Result<(), CompileError> {
            if syms.len() == n {
                Ok(())
            } else {
                Err(CompileError::new(
                    format!("`{func}` expects {n} argument(s), got {}", syms.len()),
                    span,
                ))
            }
        };
        match func {
            "min" | "max" => {
                arity(2)?;
                let a = self.materialize(syms[0], span)?;
                let b = self.materialize(syms[1], span)?;
                let pred = if func == "min" { Pred::Lt } else { Pred::Gt };
                let c = self.fresh();
                self.emit(Inst::Cmp { dst: c, pred, a, b });
                let dst = self.fresh();
                self.emit(Inst::Sel {
                    dst,
                    cond: Operand::Reg(c),
                    on_true: a,
                    on_false: b,
                });
                Ok(Sym::Reg(dst))
            }
            "abs" => {
                arity(1)?;
                let a = self.materialize(syms[0], span)?;
                let n = self.fresh();
                self.emit(Inst::Un {
                    dst: n,
                    op: UnOp::Neg,
                    a,
                });
                let c = self.fresh();
                self.emit(Inst::Cmp {
                    dst: c,
                    pred: Pred::Lt,
                    a,
                    b: Operand::Imm(0),
                });
                let dst = self.fresh();
                self.emit(Inst::Sel {
                    dst,
                    cond: Operand::Reg(c),
                    on_true: Operand::Reg(n),
                    on_false: a,
                });
                Ok(Sym::Reg(dst))
            }
            "u8" | "i8" | "u16" | "i16" | "i32" => {
                arity(1)?;
                if func == "i32" {
                    return Ok(syms[0]); // registers are already 32-bit
                }
                let a = self.materialize(syms[0], span)?;
                let op = match func {
                    "u8" => UnOp::Zext8,
                    "i8" => UnOp::Sext8,
                    "u16" => UnOp::Zext16,
                    _ => UnOp::Sext16,
                };
                let dst = self.fresh();
                self.emit(Inst::Un { dst, op, a });
                Ok(Sym::Reg(dst))
            }
            _ => Err(CompileError::new(format!("unknown builtin `{func}`"), span)),
        }
    }

    fn mem_ref(&mut self, array: ArrayId, index: &Expr) -> Result<MemRef, CompileError> {
        let sym = self.eval(index)?;
        Ok(match sym {
            Sym::Const(c) => MemRef::affine(array, 0, c),
            Sym::Affine { c0, c1 } => MemRef::affine(array, c1, c0),
            Sym::Reg(v) => MemRef {
                array,
                coeff: 0,
                offset: 0,
                dyn_index: Some(Operand::Reg(v)),
            },
        })
    }

    // ---- statements --------------------------------------------------------

    fn stmt(&mut self, s: &Stmt) -> Result<(), CompileError> {
        match s {
            Stmt::Var { name, init, span } => {
                let sym = match init {
                    Some(e) => self.eval(e)?,
                    None => Sym::Const(0),
                };
                self.declare(name, Binding { sym, mutable: true }, *span)
            }
            Stmt::LocalArray {
                name,
                space,
                ty,
                len,
                span,
            } => {
                if self.in_loop || self.if_depth > 0 {
                    return Err(CompileError::new(
                        "local arrays must be declared at the top level, before the `loop`",
                        *span,
                    ));
                }
                if self.name_in_use(name) {
                    return Err(CompileError::new(
                        format!("name `{name}` is already defined"),
                        *span,
                    ));
                }
                let n = self.const_eval(len)?;
                let n = u32::try_from(n).map_err(|_| {
                    CompileError::new("local array length must be non-negative", *span)
                })?;
                let id = ArrayId(u32::try_from(self.kernel.arrays.len()).expect("few arrays"));
                self.kernel.arrays.push(ArrayDecl {
                    name: name.clone(),
                    ty: *ty,
                    space: *space,
                    kind: ArrayKind::Local(n),
                });
                self.arrays.insert(name.clone(), id);
                Ok(())
            }
            Stmt::Assign { name, value, span } => {
                let sym = self.eval(value)?;
                self.set(name, sym, *span)
            }
            Stmt::Store {
                array,
                index,
                value,
                span,
            } => {
                if self.if_depth > 0 {
                    return Err(CompileError::new(
                        "stores are not allowed under `if` (no predicated stores); \
                         compute the value with `?:` and store unconditionally",
                        *span,
                    ));
                }
                let id = *self.arrays.get(array).ok_or_else(|| {
                    CompileError::new(format!("undefined array `{array}`"), *span)
                })?;
                if !self.kernel.arrays[id.index()].kind.writable() {
                    return Err(CompileError::new(
                        format!("array `{array}` is read-only (`in`)"),
                        *span,
                    ));
                }
                if !self.in_loop {
                    return Err(CompileError::new(
                        "stores are only allowed inside the `loop`",
                        *span,
                    ));
                }
                let mem = self.mem_ref(id, index)?;
                let v = self.eval(value)?;
                let vo = self.materialize(v, value.span())?;
                let ty = self.kernel.arrays[id.index()].ty;
                self.emit(Inst::St { mem, value: vo, ty });
                Ok(())
            }
            Stmt::For {
                var,
                start,
                end,
                body,
                span,
            } => {
                let lo = self.const_eval(start)?;
                let hi = self.const_eval(end)?;
                if hi - lo > 4096 {
                    return Err(CompileError::new(
                        format!("`for` trip count {} is unreasonably large", hi - lo),
                        *span,
                    ));
                }
                for k in lo..hi {
                    self.scopes.push(HashMap::new());
                    self.declare(
                        var,
                        Binding {
                            sym: Sym::Const(k),
                            mutable: false,
                        },
                        *span,
                    )?;
                    for st in body {
                        self.stmt(st)?;
                    }
                    self.scopes.pop();
                }
                Ok(())
            }
            Stmt::Loop {
                var,
                produces,
                body,
                span,
            } => self.lower_loop(var, produces.as_ref(), body, *span),
            Stmt::If {
                cond,
                then_body,
                else_body,
                ..
            } => self.lower_if(cond, then_body, else_body),
        }
    }

    fn lower_loop(
        &mut self,
        var: &str,
        produces: Option<&Expr>,
        body: &[Stmt],
        span: Span,
    ) -> Result<(), CompileError> {
        if self.seen_loop {
            return Err(CompileError::new("only one `loop` is allowed", span));
        }
        if self.if_depth > 0 || self.scopes.len() != 1 {
            return Err(CompileError::new(
                "`loop` must appear at the top level of the kernel",
                span,
            ));
        }
        if self.name_in_use(var) {
            return Err(CompileError::new(
                format!("loop variable `{var}` duplicates another name"),
                span,
            ));
        }
        self.seen_loop = true;
        let outputs = match produces {
            Some(e) => {
                let v = self.const_eval(e)?;
                u32::try_from(v).ok().filter(|&v| v >= 1).ok_or_else(|| {
                    CompileError::new("`produces` must be a positive constant", span)
                })?
            }
            None => 1,
        };
        self.kernel.outputs_per_iter = outputs;

        // Carried scalars: outer vars assigned anywhere inside the loop.
        let mut assigned = Vec::new();
        collect_assigned(body, &mut assigned);
        let mut carried: Vec<(String, Vreg, CarriedInit)> = Vec::new();
        for name in assigned {
            let Some(b) = self.lookup(&name) else {
                continue; // declared inside the loop; a plain temp
            };
            if carried.iter().any(|(n, _, _)| *n == name) {
                continue;
            }
            let init = match b.sym {
                Sym::Const(v) => CarriedInit::Const(v),
                Sym::Reg(v) => CarriedInit::Preamble(v),
                Sym::Affine { .. } => unreachable!("no loop var outside the loop"),
            };
            let input = self.fresh();
            self.set(&name, Sym::Reg(input), span)?;
            carried.push((name, input, init));
        }

        self.in_loop = true;
        self.loop_var = Some(var.to_owned());
        self.scopes.push(HashMap::new());
        for st in body {
            self.stmt(st)?;
        }
        self.scopes.pop();
        self.loop_var = None;

        for (name, input, init) in carried {
            let final_sym = self.lookup(&name).expect("carried var still in scope").sym;
            let output = match final_sym {
                Sym::Reg(v) => v,
                Sym::Const(c) => {
                    let v = self.fresh();
                    self.emit(Inst::mov(v, c));
                    v
                }
                Sym::Affine { .. } => {
                    return Err(CompileError::new(
                        format!("carried variable `{name}` ends as a non-affine loop-var value"),
                        span,
                    ))
                }
            };
            // A carried output must be defined in the body (or equal the
            // input). A preamble-defined register can sneak through when
            // the loop assigns the variable back to a preamble value; copy
            // it into a body register in that case.
            let body_defs: std::collections::HashSet<Vreg> =
                self.kernel.body.iter().filter_map(Inst::def).collect();
            let output = if output == input || body_defs.contains(&output) {
                output
            } else {
                let v = self.fresh();
                self.emit(Inst::mov(v, output));
                v
            };
            self.kernel.carried.push(Carried {
                input,
                output,
                init,
            });
        }
        self.in_loop = false;
        Ok(())
    }

    fn lower_if(
        &mut self,
        cond: &Expr,
        then_body: &[Stmt],
        else_body: &[Stmt],
    ) -> Result<(), CompileError> {
        let c = self.eval(cond)?;
        if let Sym::Const(cv) = c {
            // Statically decided: lower only the taken branch.
            let taken = if cv != 0 { then_body } else { else_body };
            self.scopes.push(HashMap::new());
            for st in taken {
                self.stmt(st)?;
            }
            self.scopes.pop();
            return Ok(());
        }
        let co = self.materialize(c, cond.span())?;

        let snapshot: Vec<HashMap<String, Binding>> = self.scopes.clone();
        self.if_depth += 1;

        self.scopes.push(HashMap::new());
        for st in then_body {
            self.stmt(st)?;
        }
        self.scopes.pop();
        let then_env = self.scopes.clone();

        self.scopes = snapshot.clone();
        self.scopes.push(HashMap::new());
        for st in else_body {
            self.stmt(st)?;
        }
        self.scopes.pop();
        let else_env = std::mem::replace(&mut self.scopes, snapshot);
        self.if_depth -= 1;

        // Merge every outer binding the branches disagree on.
        for (level, scope) in then_env.iter().enumerate() {
            let names: Vec<String> = scope.keys().cloned().collect();
            for name in names {
                let t = then_env[level][&name].sym;
                let e = else_env[level][&name].sym;
                if t == e {
                    self.scopes[level].get_mut(&name).expect("same shape").sym = t;
                    continue;
                }
                let to = self.materialize(t, cond.span())?;
                let eo = self.materialize(e, cond.span())?;
                let dst = self.fresh();
                self.emit(Inst::Sel {
                    dst,
                    cond: co,
                    on_true: to,
                    on_false: eo,
                });
                self.scopes[level].get_mut(&name).expect("same shape").sym = Sym::Reg(dst);
            }
        }
        Ok(())
    }
}

fn collect_assigned(body: &[Stmt], out: &mut Vec<String>) {
    for s in body {
        match s {
            Stmt::Assign { name, .. } => out.push(name.clone()),
            Stmt::For { body, .. } | Stmt::Loop { body, .. } => collect_assigned(body, out),
            Stmt::If {
                then_body,
                else_body,
                ..
            } => {
                collect_assigned(then_body, out);
                collect_assigned(else_body, out);
            }
            Stmt::Var { .. } | Stmt::LocalArray { .. } | Stmt::Store { .. } => {}
        }
    }
}

fn pred_of(op: BinaryOp) -> Option<Pred> {
    Some(match op {
        BinaryOp::Eq => Pred::Eq,
        BinaryOp::Ne => Pred::Ne,
        BinaryOp::Lt => Pred::Lt,
        BinaryOp::Le => Pred::Le,
        BinaryOp::Gt => Pred::Gt,
        BinaryOp::Ge => Pred::Ge,
        _ => return None,
    })
}

fn fold_binary(op: BinaryOp, a: i64, b: i64) -> Option<i64> {
    use cfp_ir::BinOp;
    Some(match op {
        BinaryOp::Add => BinOp::Add.eval(a, b),
        BinaryOp::Sub => BinOp::Sub.eval(a, b),
        BinaryOp::Mul => BinOp::Mul.eval(a, b),
        BinaryOp::And => BinOp::And.eval(a, b),
        BinaryOp::Or => BinOp::Or.eval(a, b),
        BinaryOp::Xor => BinOp::Xor.eval(a, b),
        BinaryOp::Shl => BinOp::Shl.eval(a, b),
        BinaryOp::AShr => BinOp::AShr.eval(a, b),
        BinaryOp::LShr => BinOp::LShr.eval(a, b),
        BinaryOp::Eq => Pred::Eq.eval(a, b),
        BinaryOp::Ne => Pred::Ne.eval(a, b),
        BinaryOp::Lt => Pred::Lt.eval(a, b),
        BinaryOp::Le => Pred::Le.eval(a, b),
        BinaryOp::Gt => Pred::Gt.eval(a, b),
        BinaryOp::Ge => Pred::Ge.eval(a, b),
        BinaryOp::LAnd => i64::from(a != 0 && b != 0),
        BinaryOp::LOr => i64::from(a != 0 || b != 0),
    })
}

fn fold_call(func: &str, args: &[i64]) -> Option<i64> {
    match (func, args) {
        ("min", [a, b]) => Some(*a.min(b)),
        ("max", [a, b]) => Some(*a.max(b)),
        ("abs", [a]) => Some(cfp_ir::wrap32(a.wrapping_abs())),
        ("u8", [a]) => Some(Ty::U8.truncate(*a)),
        ("i8", [a]) => Some(Ty::I8.truncate(*a)),
        ("u16", [a]) => Some(Ty::U16.truncate(*a)),
        ("i16", [a]) => Some(Ty::I16.truncate(*a)),
        ("i32", [a]) => Some(Ty::I32.truncate(*a)),
        _ => None,
    }
}
