//! Compiler diagnostics with source locations.

use crate::token::Span;
use std::error::Error;
use std::fmt;

/// A front-end error: message plus the source span it refers to.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CompileError {
    message: String,
    span: Span,
}

impl CompileError {
    /// Construct an error.
    #[must_use]
    pub fn new(message: impl Into<String>, span: Span) -> Self {
        CompileError {
            message: message.into(),
            span,
        }
    }

    /// The error message (without location).
    #[must_use]
    pub fn message(&self) -> &str {
        &self.message
    }

    /// The offending span.
    #[must_use]
    pub fn span(&self) -> Span {
        self.span
    }

    /// Render with `line:col` and a caret line, given the original source.
    #[must_use]
    pub fn render(&self, src: &str) -> String {
        let (line, col) = self.span.line_col(src);
        let line_text = src.lines().nth(line - 1).unwrap_or("");
        let caret = " ".repeat(col.saturating_sub(1)) + "^";
        format!(
            "error at {line}:{col}: {}\n  {line_text}\n  {caret}",
            self.message
        )
    }
}

impl fmt::Display for CompileError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} (bytes {}..{})",
            self.message, self.span.start, self.span.end
        )
    }
}

impl Error for CompileError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn render_points_at_the_problem() {
        let src = "var x = 1;\nvar y = $;\n";
        let e = CompileError::new("unrecognized character `$`", Span::new(19, 20));
        let r = e.render(src);
        assert!(r.contains("error at 2:9"), "{r}");
        assert!(r.contains("var y = $;"), "{r}");
        assert!(r.lines().last().unwrap().trim_end().ends_with('^'), "{r}");
    }
}
