//! Recursive-descent parser with precedence climbing.

use crate::ast::{BinaryOp, Dir, Expr, KernelAst, Param, Stmt, UnaryOp};
use crate::diag::CompileError;
use crate::token::{Span, Tok, Token};
use cfp_ir::{MemSpace, Ty};

/// Parse a single kernel from a token stream (see [`crate::lexer::lex`]).
///
/// # Errors
/// Returns the first syntax error encountered.
pub fn parse(tokens: &[Token]) -> Result<KernelAst, CompileError> {
    let mut p = Parser { tokens, pos: 0 };
    let k = p.kernel()?;
    p.expect(&Tok::Eof)?;
    Ok(k)
}

struct Parser<'a> {
    tokens: &'a [Token],
    pos: usize,
}

impl Parser<'_> {
    fn peek(&self) -> &Tok {
        &self.tokens[self.pos].tok
    }

    fn peek2(&self) -> &Tok {
        &self.tokens[(self.pos + 1).min(self.tokens.len() - 1)].tok
    }

    fn span(&self) -> Span {
        self.tokens[self.pos].span
    }

    fn bump(&mut self) -> Token {
        let t = self.tokens[self.pos].clone();
        if self.pos + 1 < self.tokens.len() {
            self.pos += 1;
        }
        t
    }

    fn eat(&mut self, tok: &Tok) -> bool {
        if self.peek() == tok {
            self.bump();
            true
        } else {
            false
        }
    }

    fn expect(&mut self, tok: &Tok) -> Result<Token, CompileError> {
        if self.peek() == tok {
            Ok(self.bump())
        } else {
            Err(CompileError::new(
                format!("expected {tok}, found {}", self.peek()),
                self.span(),
            ))
        }
    }

    fn ident(&mut self) -> Result<(String, Span), CompileError> {
        let span = self.span();
        match self.bump().tok {
            Tok::Ident(s) => Ok((s, span)),
            other => Err(CompileError::new(
                format!("expected identifier, found {other}"),
                span,
            )),
        }
    }

    fn try_ty(&mut self) -> Option<Ty> {
        let ty = match self.peek() {
            Tok::U8 => Ty::U8,
            Tok::I8 => Ty::I8,
            Tok::U16 => Ty::U16,
            Tok::I16 => Ty::I16,
            Tok::I32 => Ty::I32,
            _ => return None,
        };
        self.bump();
        Some(ty)
    }

    fn ty(&mut self) -> Result<Ty, CompileError> {
        self.try_ty().ok_or_else(|| {
            CompileError::new(
                format!("expected element type, found {}", self.peek()),
                self.span(),
            )
        })
    }

    fn try_space(&mut self) -> Option<MemSpace> {
        let s = match self.peek() {
            Tok::L1 => MemSpace::L1,
            Tok::L2 => MemSpace::L2,
            _ => return None,
        };
        self.bump();
        Some(s)
    }

    fn kernel(&mut self) -> Result<KernelAst, CompileError> {
        let kw = self.expect(&Tok::Kernel)?;
        let (name, _) = self.ident()?;
        self.expect(&Tok::LParen)?;
        let mut params = Vec::new();
        if !self.eat(&Tok::RParen) {
            loop {
                params.push(self.param()?);
                if !self.eat(&Tok::Comma) {
                    self.expect(&Tok::RParen)?;
                    break;
                }
            }
        }
        let body = self.block()?;
        Ok(KernelAst {
            name,
            params,
            body,
            span: kw.span,
        })
    }

    fn param(&mut self) -> Result<Param, CompileError> {
        let span = self.span();
        if self.eat(&Tok::Const) {
            let (name, _) = self.ident()?;
            return Ok(Param::Const { name, span });
        }
        let dir = match self.bump().tok {
            Tok::In => Dir::In,
            Tok::Out => Dir::Out,
            Tok::Inout => Dir::InOut,
            other => {
                return Err(CompileError::new(
                    format!("expected `in`, `out`, `inout`, or `const`, found {other}"),
                    span,
                ))
            }
        };
        let space = self.try_space().unwrap_or(MemSpace::L2);
        let ty = self.ty()?;
        let (name, _) = self.ident()?;
        self.expect(&Tok::LBracket)?;
        self.expect(&Tok::RBracket)?;
        Ok(Param::Array {
            name,
            dir,
            space,
            ty,
            span,
        })
    }

    fn block(&mut self) -> Result<Vec<Stmt>, CompileError> {
        self.expect(&Tok::LBrace)?;
        let mut stmts = Vec::new();
        while !self.eat(&Tok::RBrace) {
            stmts.push(self.stmt()?);
        }
        Ok(stmts)
    }

    fn stmt(&mut self) -> Result<Stmt, CompileError> {
        let span = self.span();
        match self.peek().clone() {
            Tok::Var => {
                self.bump();
                let (name, _) = self.ident()?;
                let init = if self.eat(&Tok::Assign) {
                    Some(self.expr()?)
                } else {
                    None
                };
                self.expect(&Tok::Semi)?;
                Ok(Stmt::Var { name, init, span })
            }
            Tok::Local => {
                self.bump();
                let space = self.try_space().unwrap_or(MemSpace::L2);
                let ty = self.ty()?;
                let (name, _) = self.ident()?;
                self.expect(&Tok::LBracket)?;
                let len = self.expr()?;
                self.expect(&Tok::RBracket)?;
                self.expect(&Tok::Semi)?;
                Ok(Stmt::LocalArray {
                    name,
                    space,
                    ty,
                    len,
                    span,
                })
            }
            Tok::For => {
                self.bump();
                let (var, _) = self.ident()?;
                // `in` is a keyword; reuse it as the range separator.
                self.expect(&Tok::In)?;
                let start = self.expr()?;
                self.expect(&Tok::DotDot)?;
                let end = self.expr()?;
                let body = self.block()?;
                Ok(Stmt::For {
                    var,
                    start,
                    end,
                    body,
                    span,
                })
            }
            Tok::Loop => {
                self.bump();
                let (var, _) = self.ident()?;
                let produces = if self.eat(&Tok::Produces) {
                    Some(self.expr()?)
                } else {
                    None
                };
                let body = self.block()?;
                Ok(Stmt::Loop {
                    var,
                    produces,
                    body,
                    span,
                })
            }
            Tok::If => {
                self.bump();
                let cond = self.expr()?;
                let then_body = self.block()?;
                let else_body = if self.eat(&Tok::Else) {
                    if *self.peek() == Tok::If {
                        vec![self.stmt()?]
                    } else {
                        self.block()?
                    }
                } else {
                    Vec::new()
                };
                Ok(Stmt::If {
                    cond,
                    then_body,
                    else_body,
                    span,
                })
            }
            Tok::Ident(name) => {
                if *self.peek2() == Tok::LBracket {
                    self.bump();
                    self.bump();
                    let index = self.expr()?;
                    self.expect(&Tok::RBracket)?;
                    self.expect(&Tok::Assign)?;
                    let value = self.expr()?;
                    self.expect(&Tok::Semi)?;
                    Ok(Stmt::Store {
                        array: name,
                        index,
                        value,
                        span,
                    })
                } else {
                    self.bump();
                    self.expect(&Tok::Assign)?;
                    let value = self.expr()?;
                    self.expect(&Tok::Semi)?;
                    Ok(Stmt::Assign { name, value, span })
                }
            }
            other => Err(CompileError::new(
                format!("expected a statement, found {other}"),
                span,
            )),
        }
    }

    /// Entry point: ternary is the lowest-precedence expression form.
    fn expr(&mut self) -> Result<Expr, CompileError> {
        let cond = self.binary(0)?;
        if self.eat(&Tok::Question) {
            let then_expr = self.expr()?;
            self.expect(&Tok::Colon)?;
            let else_expr = self.expr()?;
            let span = cond.span().to(else_expr.span());
            Ok(Expr::Ternary {
                cond: Box::new(cond),
                then_expr: Box::new(then_expr),
                else_expr: Box::new(else_expr),
                span,
            })
        } else {
            Ok(cond)
        }
    }

    fn binary(&mut self, min_prec: u8) -> Result<Expr, CompileError> {
        let mut lhs = self.unary()?;
        while let Some((op, prec)) = binop_of(self.peek()) {
            if prec < min_prec {
                break;
            }
            self.bump();
            let rhs = self.binary(prec + 1)?;
            let span = lhs.span().to(rhs.span());
            lhs = Expr::Binary {
                op,
                lhs: Box::new(lhs),
                rhs: Box::new(rhs),
                span,
            };
        }
        Ok(lhs)
    }

    fn unary(&mut self) -> Result<Expr, CompileError> {
        let span = self.span();
        let op = match self.peek() {
            Tok::Minus => Some(UnaryOp::Neg),
            Tok::Tilde => Some(UnaryOp::Not),
            Tok::Bang => Some(UnaryOp::LNot),
            _ => None,
        };
        if let Some(op) = op {
            self.bump();
            let e = self.unary()?;
            let span = span.to(e.span());
            return Ok(Expr::Unary {
                op,
                expr: Box::new(e),
                span,
            });
        }
        self.primary()
    }

    fn primary(&mut self) -> Result<Expr, CompileError> {
        let span = self.span();
        // Cast syntax: a type keyword used as a call, e.g. `u8(x)`.
        if let Some(ty) = self.cast_ty() {
            self.expect(&Tok::LParen)?;
            let e = self.expr()?;
            let close = self.expect(&Tok::RParen)?;
            return Ok(Expr::Call {
                func: ty,
                args: vec![e],
                span: span.to(close.span),
            });
        }
        match self.bump().tok {
            Tok::Int(v) => Ok(Expr::Int(v, span)),
            Tok::LParen => {
                let e = self.expr()?;
                self.expect(&Tok::RParen)?;
                Ok(e)
            }
            Tok::Ident(name) => match self.peek() {
                Tok::LBracket => {
                    self.bump();
                    let index = self.expr()?;
                    let close = self.expect(&Tok::RBracket)?;
                    Ok(Expr::Index {
                        array: name,
                        index: Box::new(index),
                        span: span.to(close.span),
                    })
                }
                Tok::LParen => {
                    self.bump();
                    let mut args = Vec::new();
                    if *self.peek() != Tok::RParen {
                        loop {
                            args.push(self.expr()?);
                            if !self.eat(&Tok::Comma) {
                                break;
                            }
                        }
                    }
                    let close = self.expect(&Tok::RParen)?;
                    Ok(Expr::Call {
                        func: name,
                        args,
                        span: span.to(close.span),
                    })
                }
                _ => Ok(Expr::Var(name, span)),
            },
            other => Err(CompileError::new(
                format!("expected an expression, found {other}"),
                span,
            )),
        }
    }

    fn cast_ty(&mut self) -> Option<String> {
        let name = match (self.peek(), self.peek2()) {
            (Tok::U8, Tok::LParen) => "u8",
            (Tok::I8, Tok::LParen) => "i8",
            (Tok::U16, Tok::LParen) => "u16",
            (Tok::I16, Tok::LParen) => "i16",
            (Tok::I32, Tok::LParen) => "i32",
            _ => return None,
        };
        self.bump();
        Some(name.to_owned())
    }
}

/// `(operator, precedence)`; higher binds tighter. Mirrors C.
fn binop_of(tok: &Tok) -> Option<(BinaryOp, u8)> {
    Some(match tok {
        Tok::OrOr => (BinaryOp::LOr, 1),
        Tok::AndAnd => (BinaryOp::LAnd, 2),
        Tok::Pipe => (BinaryOp::Or, 3),
        Tok::Caret => (BinaryOp::Xor, 4),
        Tok::Amp => (BinaryOp::And, 5),
        Tok::EqEq => (BinaryOp::Eq, 6),
        Tok::NotEq => (BinaryOp::Ne, 6),
        Tok::Lt => (BinaryOp::Lt, 7),
        Tok::Le => (BinaryOp::Le, 7),
        Tok::Gt => (BinaryOp::Gt, 7),
        Tok::Ge => (BinaryOp::Ge, 7),
        Tok::Shl => (BinaryOp::Shl, 8),
        Tok::Shr => (BinaryOp::AShr, 8),
        Tok::Ushr => (BinaryOp::LShr, 8),
        Tok::Plus => (BinaryOp::Add, 9),
        Tok::Minus => (BinaryOp::Sub, 9),
        Tok::Star => (BinaryOp::Mul, 10),
        _ => return None,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;

    fn parse_src(src: &str) -> Result<KernelAst, CompileError> {
        parse(&lex(src)?)
    }

    #[test]
    fn parses_minimal_kernel() {
        let k = parse_src("kernel k() {}").unwrap();
        assert_eq!(k.name, "k");
        assert!(k.params.is_empty());
        assert!(k.body.is_empty());
    }

    #[test]
    fn parses_params() {
        let k = parse_src("kernel k(in l1 i16 t[], out u8 d[], const f) {}").unwrap();
        assert_eq!(k.params.len(), 3);
        assert!(matches!(
            &k.params[0],
            Param::Array {
                dir: Dir::In,
                space: MemSpace::L1,
                ty: Ty::I16,
                ..
            }
        ));
        assert!(matches!(
            &k.params[1],
            Param::Array {
                dir: Dir::Out,
                space: MemSpace::L2,
                ty: Ty::U8,
                ..
            }
        ));
        assert!(matches!(&k.params[2], Param::Const { name, .. } if name == "f"));
    }

    #[test]
    fn parses_statements() {
        let k = parse_src(
            "kernel k(in u8 s[], out u8 d[]) {
                var acc = 0;
                local i16 buf[8];
                loop i produces 3 {
                    for t in 0..3 {
                        acc = acc + s[3*i + t];
                    }
                    if acc > 100 { acc = 100; } else { acc = acc; }
                    d[i] = acc;
                }
            }",
        )
        .unwrap();
        assert_eq!(k.body.len(), 3);
        let Stmt::Loop {
            var,
            produces,
            body,
            ..
        } = &k.body[2]
        else {
            panic!("expected loop");
        };
        assert_eq!(var, "i");
        assert!(produces.is_some());
        assert_eq!(body.len(), 3);
    }

    #[test]
    fn precedence_matches_c() {
        let k = parse_src("kernel k() { var x = 1 + 2 * 3 << 1 & 7; }").unwrap();
        let Stmt::Var { init: Some(e), .. } = &k.body[0] else {
            panic!()
        };
        // ((1 + (2*3)) << 1) & 7
        let Expr::Binary {
            op: BinaryOp::And,
            lhs,
            ..
        } = e
        else {
            panic!("top is &, got {e:?}")
        };
        let Expr::Binary {
            op: BinaryOp::Shl,
            lhs: add,
            ..
        } = lhs.as_ref()
        else {
            panic!("then <<")
        };
        assert!(matches!(
            add.as_ref(),
            Expr::Binary {
                op: BinaryOp::Add,
                ..
            }
        ));
    }

    #[test]
    fn ternary_and_casts() {
        let k = parse_src("kernel k() { var x = u8(3 > 2 ? min(1, 2) : 0); }").unwrap();
        let Stmt::Var {
            init: Some(Expr::Call { func, args, .. }),
            ..
        } = &k.body[0]
        else {
            panic!()
        };
        assert_eq!(func, "u8");
        assert!(matches!(args[0], Expr::Ternary { .. }));
    }

    #[test]
    fn else_if_chains() {
        let k = parse_src(
            "kernel k() { var x = 0; if x > 1 { x = 1; } else if x > 0 { x = 2; } else { x = 3; } }",
        )
        .unwrap();
        let Stmt::If { else_body, .. } = &k.body[1] else {
            panic!()
        };
        assert_eq!(else_body.len(), 1);
        assert!(matches!(else_body[0], Stmt::If { .. }));
    }

    #[test]
    fn reports_syntax_errors() {
        assert!(parse_src("kernel k() { var ; }").is_err());
        assert!(parse_src("kernel k() { x = ; }").is_err());
        assert!(parse_src("kernel () {}").is_err());
        assert!(parse_src("kernel k() { for i in 0..3 }").is_err());
        assert!(parse_src("kernel k() {} trailing").is_err());
    }

    #[test]
    fn unary_chains() {
        let k = parse_src("kernel k() { var x = -~!3; }").unwrap();
        let Stmt::Var { init: Some(e), .. } = &k.body[0] else {
            panic!()
        };
        assert!(matches!(
            e,
            Expr::Unary {
                op: UnaryOp::Neg,
                ..
            }
        ));
    }
}
