//! # cfp-frontend — the kernel DSL
//!
//! A tiny C-like language in which the paper's image-processing kernels
//! are written (see `crates/kernels/src/dsl/`). One source file declares
//! one kernel over typed arrays in the two-level memory system, with a
//! single `loop` over output units, constant-bound `for` loops (fully
//! unrolled), `if`/ternaries (if-converted to selects), and compile-time
//! `const` parameters (kernels are specialized per configuration, as
//! embedded codesign does).
//!
//! ```
//! use cfp_frontend::compile_kernel;
//!
//! let kernel = compile_kernel(
//!     "kernel scale(in u8 src[], out u8 dst[], const k) {
//!          loop i {
//!              dst[i] = u8(min(255, src[i] * k));
//!          }
//!      }",
//!     &[("k", 3)],
//! ).unwrap();
//! assert_eq!(kernel.name, "scale");
//! assert_eq!(kernel.mul_count(), 1);
//! ```
//!
//! The full grammar:
//!
//! ```text
//! kernel   := 'kernel' IDENT '(' params? ')' block
//! param    := ('in'|'out'|'inout') ('l1'|'l2')? type IDENT '[' ']'
//!           | 'const' IDENT
//! type     := 'u8' | 'i8' | 'u16' | 'i16' | 'i32'
//! block    := '{' stmt* '}'
//! stmt     := 'var' IDENT ('=' expr)? ';'
//!           | 'local' ('l1'|'l2')? type IDENT '[' expr ']' ';'
//!           | IDENT '=' expr ';'
//!           | IDENT '[' expr ']' '=' expr ';'
//!           | 'for' IDENT 'in' expr '..' expr block
//!           | 'loop' IDENT ('produces' expr)? block
//!           | 'if' expr block ('else' (block | if-stmt))?
//! expr     := C-like expressions over i32 scalars: + - * & | ^ << >> >>>
//!             == != < <= > >= && || ?: ~ ! unary-minus, array loads
//!             `a[e]`, and builtins min/max/abs and casts u8()/i8()/u16()/
//!             i16()/i32()
//! ```
//!
//! Semantics notes: all scalars are 32-bit ints; `>>` is arithmetic and
//! `>>>` logical; `&&`/`||` do **not** short-circuit (the target is fully
//! if-converted); stores are not allowed under `if`; the `loop` variable
//! may only be used in affine index arithmetic.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod ast;
pub mod diag;
pub mod lexer;
pub mod lower;
pub mod parser;
pub mod token;

pub use diag::CompileError;
pub use token::Span;

use cfp_ir::Kernel;

/// Compile DSL source text into a verified [`Kernel`], binding each
/// `const` parameter to the supplied value.
///
/// # Errors
/// Returns the first lexical, syntactic, or semantic error, with a span
/// into `src` (use [`CompileError::render`] for a friendly message).
pub fn compile_kernel(src: &str, consts: &[(&str, i64)]) -> Result<Kernel, CompileError> {
    compile_kernel_traced(src, consts, &mut cfp_obs::UnitTrace::disabled())
}

/// [`compile_kernel`] recording `parse` and `lower` spans into `trace`.
/// With a disabled trace this is exactly `compile_kernel`.
///
/// # Errors
/// As [`compile_kernel`].
pub fn compile_kernel_traced(
    src: &str,
    consts: &[(&str, i64)],
    trace: &mut cfp_obs::UnitTrace<'_>,
) -> Result<Kernel, CompileError> {
    use cfp_obs::{Stage, Value};
    let t0 = trace.start();
    let tokens = lexer::lex(src)?;
    let ast = parser::parse(&tokens)?;
    trace.stage(
        Stage::Parse,
        t0,
        &[("tokens", Value::U64(tokens.len() as u64))],
    );
    let t0 = trace.start();
    let kernel = lower::lower(&ast, consts)?;
    trace.stage(
        Stage::Lower,
        t0,
        &[
            ("body_ops", Value::U64(kernel.body.len() as u64)),
            ("preamble_ops", Value::U64(kernel.preamble.len() as u64)),
        ],
    );
    Ok(kernel)
}

#[cfg(test)]
mod tests {
    use super::*;
    use cfp_ir::{Interpreter, MemImage};

    fn run(src: &str, consts: &[(&str, i64)], inputs: &[Vec<i64>], iters: u64) -> Vec<Vec<i64>> {
        let k = compile_kernel(src, consts).expect("compiles");
        cfp_ir::verify(&k).expect("verifies");
        let mut mem = MemImage::for_kernel(&k);
        let mut it = inputs.iter();
        for (i, a) in k.arrays.iter().enumerate() {
            if !matches!(a.kind, cfp_ir::ArrayKind::Local(_)) {
                mem.bind(
                    i,
                    it.next().expect("one binding per non-local array").clone(),
                );
            }
        }
        Interpreter::new().run(&k, &mut mem, iters).expect("runs");
        (0..k.arrays.len()).map(|i| mem.array(i).to_vec()).collect()
    }

    #[test]
    fn map_kernel_computes() {
        let out = run(
            "kernel m(in u8 s[], out u8 d[]) { loop i { d[i] = u8(s[i] * 2 + 1); } }",
            &[],
            &[vec![1, 2, 3], vec![0; 3]],
            3,
        );
        assert_eq!(out[1], vec![3, 5, 7]);
    }

    #[test]
    fn full_unrolling_of_for() {
        // 3-tap box sum per output.
        let out = run(
            "kernel box(in i32 s[], out i32 d[]) {
                loop i {
                    var acc = 0;
                    for t in 0..3 { acc = acc + s[i + t]; }
                    d[i] = acc;
                }
            }",
            &[],
            &[vec![1, 2, 3, 4, 5], vec![0; 3]],
            3,
        );
        assert_eq!(out[1], vec![6, 9, 12]);
    }

    #[test]
    fn carried_scalar_accumulates() {
        let out = run(
            "kernel acc(in i32 s[], out i32 d[]) {
                var sum = 100;
                loop i { sum = sum + s[i]; d[i] = sum; }
            }",
            &[],
            &[vec![1, 2, 3], vec![0; 3]],
            3,
        );
        assert_eq!(out[1], vec![101, 103, 106]);
    }

    #[test]
    fn if_conversion_matches_branch_semantics() {
        let out = run(
            "kernel clampdouble(in i32 s[], out i32 d[]) {
                loop i {
                    var x = s[i];
                    if x > 10 { x = 10; } else { x = x * 2; }
                    d[i] = x;
                }
            }",
            &[],
            &[vec![3, 11, 5, 100], vec![0; 4]],
            4,
        );
        assert_eq!(out[1], vec![6, 10, 10, 10]);
    }

    #[test]
    fn const_params_specialize() {
        let out = run(
            "kernel sc(in i32 s[], out i32 d[], const k) { loop i { d[i] = s[i] << k; } }",
            &[("k", 3)],
            &[vec![1, 2], vec![0; 2]],
            2,
        );
        assert_eq!(out[1], vec![8, 16]);
    }

    #[test]
    fn strided_affine_indices() {
        // RGB-style: 3 elements in, 3 out, swapped channels.
        let out = run(
            "kernel swap(in u8 s[], out u8 d[]) {
                loop i {
                    d[3*i + 0] = s[3*i + 2];
                    d[3*i + 1] = s[3*i + 1];
                    d[3*i + 2] = s[3*i + 0];
                }
            }",
            &[],
            &[vec![1, 2, 3, 4, 5, 6], vec![0; 6]],
            2,
        );
        assert_eq!(out[1], vec![3, 2, 1, 6, 5, 4]);
    }

    #[test]
    fn local_scratch_arrays_work() {
        let out = run(
            "kernel viatmp(in i32 s[], out i32 d[]) {
                local i32 tmp[2];
                loop i {
                    tmp[0] = s[i];
                    tmp[1] = tmp[0] * 3;
                    d[i] = tmp[1];
                }
            }",
            &[],
            &[vec![5, 7], vec![0; 2]],
            2,
        );
        assert_eq!(out[1], vec![15, 21]);
    }

    #[test]
    fn ternary_min_max_abs() {
        let out = run(
            "kernel t(in i32 s[], out i32 d[]) {
                loop i {
                    d[i] = abs(min(s[i], 0)) + max(s[i], 0) + (s[i] > 0 ? 1000 : 0);
                }
            }",
            &[],
            &[vec![-5, 7], vec![0; 2]],
            2,
        );
        assert_eq!(out[1], vec![5, 1007]);
    }

    #[test]
    fn loads_widen_by_array_type() {
        let out = run(
            "kernel w(in i16 s[], out i32 d[]) { loop i { d[i] = s[i]; } }",
            &[],
            &[vec![-1, 0x7fff], vec![0; 2]],
            2,
        );
        assert_eq!(out[1], vec![-1, 0x7fff]);
    }

    #[test]
    fn hoisted_table_loads_go_to_preamble() {
        let k = compile_kernel(
            "kernel h(in l1 i16 t[], in u8 s[], out i32 d[]) {
                var c0 = t[0];
                var c1 = t[1];
                loop i { d[i] = s[i] * c0 + c1; }
            }",
            &[],
        )
        .unwrap();
        assert_eq!(k.preamble.len(), 2, "two hoisted loads");
        assert_eq!(k.mem_counts(), (0, 2), "body touches only L2");
    }

    #[test]
    fn rejects_semantic_errors() {
        let cases: &[(&str, &[(&str, i64)])] = &[
            // undefined name
            ("kernel k() { var x = y; }", &[]),
            // store under if
            (
                "kernel k(in i32 s[], out u8 d[]) { loop i { if s[i] > 0 { d[i] = 1; } } }",
                &[],
            ),
            // two loops
            ("kernel k() { loop i { } loop j { } }", &[]),
            // statements after loop
            ("kernel k() { loop i { } var x = 1; }", &[]),
            // loop var escapes index context
            (
                "kernel k(out i32 d[]) { loop i { d[0] = i + 0 == 3 ? 1 : 0; } }",
                &[],
            ),
            // missing const binding
            ("kernel k(const q) {}", &[]),
            // extra const binding
            ("kernel k() {}", &[("zz", 1)]),
            // non-const for bound
            (
                "kernel k(in i32 s[], out i32 d[]) { loop i { var n = s[i]; for t in 0..n { } } }",
                &[],
            ),
            // assignment to const
            ("kernel k(const q) { q = 3; }", &[("q", 1)]),
            // shadowing
            ("kernel k() { var x = 1; var x = 2; }", &[]),
            // unknown builtin
            ("kernel k() { var x = frob(1); }", &[]),
            // store to input
            ("kernel k(in u8 s[]) { loop i { s[i] = 0; } }", &[]),
        ];
        for (src, consts) in cases {
            assert!(compile_kernel(src, consts).is_err(), "should reject: {src}");
        }
    }

    #[test]
    fn loop_var_times_itself_is_rejected_with_good_message() {
        let err =
            compile_kernel("kernel k(out i32 d[]) { loop i { d[i*i] = 0; } }", &[]).unwrap_err();
        assert!(err.message().contains("multiplied by itself"), "{err}");
    }

    #[test]
    fn shifted_loop_var_stays_affine() {
        let k = compile_kernel(
            "kernel k(in i32 s[], out i32 d[]) { loop i { d[i << 1] = s[i << 1]; } }",
            &[],
        )
        .unwrap();
        let m = k.body[0].mem().unwrap();
        assert_eq!((m.coeff, m.offset), (2, 0));
        assert!(m.is_affine());
    }

    #[test]
    fn dynamic_index_falls_back_to_register() {
        let k = compile_kernel(
            "kernel k(in i32 idx[], in i32 s[], out i32 d[]) {
                loop i { d[i] = s[idx[i] & 7]; }
            }",
            &[],
        )
        .unwrap();
        let dynamic = k
            .body
            .iter()
            .filter_map(cfp_ir::Inst::mem)
            .any(|m| !m.is_affine());
        assert!(dynamic);
    }

    #[test]
    fn logical_ops_normalize() {
        let out = run(
            "kernel l(in i32 s[], out i32 d[]) {
                loop i { d[i] = (s[i] && 4) + (s[i] || 0) * 10; }
            }",
            &[],
            &[vec![0, 9], vec![0; 2]],
            2,
        );
        assert_eq!(out[1], vec![0, 11]);
    }

    #[test]
    fn statically_false_if_lowers_nothing() {
        let k = compile_kernel(
            "kernel k(out i32 d[], const dbg) {
                var x = 0;
                loop i {
                    if dbg { x = x + 1; }
                    d[i] = x;
                }
            }",
            &[("dbg", 0)],
        )
        .unwrap();
        // x never changes: no selects in the body.
        assert_eq!(k.carried.len(), 1, "x is still assigned syntactically");
        assert!(k
            .body
            .iter()
            .all(|i| !matches!(i, cfp_ir::Inst::Sel { .. })));
    }

    #[test]
    fn error_rendering_has_location() {
        let src = "kernel k() {\n  var x = doesnotexist;\n}";
        let err = compile_kernel(src, &[]).unwrap_err();
        let rendered = err.render(src);
        assert!(rendered.contains("error at 2:"), "{rendered}");
    }
}
