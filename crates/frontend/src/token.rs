//! Tokens and source spans.

use std::fmt;

/// A byte range in the source text, for diagnostics.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct Span {
    /// Byte offset of the first character.
    pub start: usize,
    /// Byte offset one past the last character.
    pub end: usize,
}

impl Span {
    /// Construct a span.
    #[must_use]
    pub fn new(start: usize, end: usize) -> Self {
        Span { start, end }
    }

    /// The smallest span covering both.
    #[must_use]
    pub fn to(self, other: Span) -> Span {
        Span {
            start: self.start.min(other.start),
            end: self.end.max(other.end),
        }
    }

    /// 1-based (line, column) of the span start within `src`.
    #[must_use]
    pub fn line_col(&self, src: &str) -> (usize, usize) {
        let mut line = 1;
        let mut col = 1;
        for (i, ch) in src.char_indices() {
            if i >= self.start {
                break;
            }
            if ch == '\n' {
                line += 1;
                col = 1;
            } else {
                col += 1;
            }
        }
        (line, col)
    }
}

/// Lexical token kinds of the kernel DSL.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Tok {
    /// Identifier.
    Ident(String),
    /// Integer literal (decimal or `0x` hexadecimal).
    Int(i64),

    // Keywords.
    /// `kernel`
    Kernel,
    /// `in`
    In,
    /// `out`
    Out,
    /// `inout`
    Inout,
    /// `const`
    Const,
    /// `var`
    Var,
    /// `local`
    Local,
    /// `loop`
    Loop,
    /// `for`
    For,
    /// `if`
    If,
    /// `else`
    Else,
    /// `produces`
    Produces,
    /// `l1`
    L1,
    /// `l2`
    L2,
    /// `u8`
    U8,
    /// `i8`
    I8,
    /// `u16`
    U16,
    /// `i16`
    I16,
    /// `i32`
    I32,

    // Punctuation and operators.
    /// `(`
    LParen,
    /// `)`
    RParen,
    /// `{`
    LBrace,
    /// `}`
    RBrace,
    /// `[`
    LBracket,
    /// `]`
    RBracket,
    /// `,`
    Comma,
    /// `;`
    Semi,
    /// `:`
    Colon,
    /// `?`
    Question,
    /// `..`
    DotDot,
    /// `=`
    Assign,
    /// `+`
    Plus,
    /// `-`
    Minus,
    /// `*`
    Star,
    /// `&`
    Amp,
    /// `|`
    Pipe,
    /// `^`
    Caret,
    /// `~`
    Tilde,
    /// `!`
    Bang,
    /// `<<`
    Shl,
    /// `>>`
    Shr,
    /// `>>>`
    Ushr,
    /// `==`
    EqEq,
    /// `!=`
    NotEq,
    /// `<`
    Lt,
    /// `<=`
    Le,
    /// `>`
    Gt,
    /// `>=`
    Ge,
    /// `&&`
    AndAnd,
    /// `||`
    OrOr,

    /// End of input.
    Eof,
}

impl fmt::Display for Tok {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Tok::Ident(s) => write!(f, "identifier `{s}`"),
            Tok::Int(v) => write!(f, "integer `{v}`"),
            Tok::Kernel => f.write_str("`kernel`"),
            Tok::In => f.write_str("`in`"),
            Tok::Out => f.write_str("`out`"),
            Tok::Inout => f.write_str("`inout`"),
            Tok::Const => f.write_str("`const`"),
            Tok::Var => f.write_str("`var`"),
            Tok::Local => f.write_str("`local`"),
            Tok::Loop => f.write_str("`loop`"),
            Tok::For => f.write_str("`for`"),
            Tok::If => f.write_str("`if`"),
            Tok::Else => f.write_str("`else`"),
            Tok::Produces => f.write_str("`produces`"),
            Tok::L1 => f.write_str("`l1`"),
            Tok::L2 => f.write_str("`l2`"),
            Tok::U8 => f.write_str("`u8`"),
            Tok::I8 => f.write_str("`i8`"),
            Tok::U16 => f.write_str("`u16`"),
            Tok::I16 => f.write_str("`i16`"),
            Tok::I32 => f.write_str("`i32`"),
            Tok::LParen => f.write_str("`(`"),
            Tok::RParen => f.write_str("`)`"),
            Tok::LBrace => f.write_str("`{`"),
            Tok::RBrace => f.write_str("`}`"),
            Tok::LBracket => f.write_str("`[`"),
            Tok::RBracket => f.write_str("`]`"),
            Tok::Comma => f.write_str("`,`"),
            Tok::Semi => f.write_str("`;`"),
            Tok::Colon => f.write_str("`:`"),
            Tok::Question => f.write_str("`?`"),
            Tok::DotDot => f.write_str("`..`"),
            Tok::Assign => f.write_str("`=`"),
            Tok::Plus => f.write_str("`+`"),
            Tok::Minus => f.write_str("`-`"),
            Tok::Star => f.write_str("`*`"),
            Tok::Amp => f.write_str("`&`"),
            Tok::Pipe => f.write_str("`|`"),
            Tok::Caret => f.write_str("`^`"),
            Tok::Tilde => f.write_str("`~`"),
            Tok::Bang => f.write_str("`!`"),
            Tok::Shl => f.write_str("`<<`"),
            Tok::Shr => f.write_str("`>>`"),
            Tok::Ushr => f.write_str("`>>>`"),
            Tok::EqEq => f.write_str("`==`"),
            Tok::NotEq => f.write_str("`!=`"),
            Tok::Lt => f.write_str("`<`"),
            Tok::Le => f.write_str("`<=`"),
            Tok::Gt => f.write_str("`>`"),
            Tok::Ge => f.write_str("`>=`"),
            Tok::AndAnd => f.write_str("`&&`"),
            Tok::OrOr => f.write_str("`||`"),
            Tok::Eof => f.write_str("end of input"),
        }
    }
}

/// A token with its source location.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Token {
    /// Kind and payload.
    pub tok: Tok,
    /// Where it came from.
    pub span: Span,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn span_merge_and_line_col() {
        let a = Span::new(2, 5);
        let b = Span::new(8, 9);
        assert_eq!(a.to(b), Span::new(2, 9));
        let src = "ab\ncd\nef";
        assert_eq!(Span::new(0, 1).line_col(src), (1, 1));
        assert_eq!(Span::new(3, 4).line_col(src), (2, 1));
        assert_eq!(Span::new(7, 8).line_col(src), (3, 2));
    }
}
