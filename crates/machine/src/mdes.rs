//! The declarative machine description (MDES): one source of truth for
//! op latencies, unit classes, per-cluster unit counts, and reservation
//! semantics.
//!
//! In the Multiflow/HPL-PD tradition the paper's compiler descends from,
//! a *machine description* is a declarative table the whole back end is
//! generated from — the scheduler, the simulator, and the cost models
//! all read the same spec, so retargeting touches one place. [`Mdes`] is
//! that table here: derived deterministically from an
//! [`ArchSpec`], it holds
//!
//! * an **op-class table** ([`OpDesc`] per [`OpClass`]): result latency,
//!   whether issues pipeline, and which [`UnitClass`] an issue occupies;
//! * a **unit table** ([`ClusterUnits`] per cluster): how many units of
//!   each class the cluster provides, plus its register-bank capacity;
//! * a **reservation model**: an issue of class `k` occupies one unit of
//!   `ops[k].unit` for [`OpDesc::reserved_cycles`] cycles — `1` when the
//!   unit pipelines, the full latency when it does not.
//!
//! Everything downstream consumes these tables instead of matching on
//! hardcoded enums: `cfp-sched`'s lowering and issue scan, the
//! simulator's resource validation, the spill-penalty model, and the
//! scheduling signature (which hashes the MDES content so compilation
//! reuse and checkpoint fingerprints track the description, not the
//! tuple). Adding a design-space axis — e.g. pipelined Level-2 ports,
//! [`ArchSpec::with_pipelined_l2`] — therefore touches only this
//! derivation.

use crate::arch::ArchSpec;
use std::fmt::Write as _;

/// Latency of a plain ALU operation (cycles).
pub const ALU_LATENCY: u32 = 1;
/// Latency of an integer multiply (cycles, pipelined).
pub const MUL_LATENCY: u32 = 2;
/// Latency of a Level-1 memory access (cycles, non-pipelined).
pub const L1_LATENCY: u32 = 3;
/// Latency of the loop-closing branch (cycles).
pub const BRANCH_LATENCY: u32 = 1;

/// The classes of schedulable operations. The discriminants are the
/// codes of the scheduler's packed per-op side array (`meta & 0b111`),
/// so an [`Mdes`] table row and a packed word name the same class.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
#[repr(u32)]
pub enum OpClass {
    /// Plain integer ALU operation (also inter-cluster moves).
    Alu = 0,
    /// Integer multiply.
    Mul = 1,
    /// Level-1 memory access.
    MemL1 = 2,
    /// Level-2 memory access.
    MemL2 = 3,
    /// The loop-closing branch.
    Branch = 4,
}

impl OpClass {
    /// Every class, in packed-code order.
    pub const ALL: [OpClass; 5] = [
        OpClass::Alu,
        OpClass::Mul,
        OpClass::MemL1,
        OpClass::MemL2,
        OpClass::Branch,
    ];

    /// The packed side-array code of this class.
    #[must_use]
    pub fn code(self) -> u32 {
        self as u32
    }

    /// Whether this class is a memory access (either level).
    #[must_use]
    pub fn is_mem(self) -> bool {
        matches!(self, OpClass::MemL1 | OpClass::MemL2)
    }

    /// The memory class for a level index (0 = L1, 1 = L2).
    #[must_use]
    pub fn mem(level: usize) -> OpClass {
        if level == 0 {
            OpClass::MemL1
        } else {
            OpClass::MemL2
        }
    }
}

/// The classes of issue resources a cluster provides. One table row per
/// class; [`OpDesc::unit`] says which row an issue of each op class
/// draws from.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[repr(usize)]
pub enum UnitClass {
    /// ALU issue slots.
    Alu = 0,
    /// IMUL-capable issue slots.
    Mul = 1,
    /// Level-1 memory ports.
    L1Port = 2,
    /// Level-2 memory ports.
    L2Port = 3,
    /// The branch unit.
    Branch = 4,
}

impl UnitClass {
    /// Every unit class, in table order.
    pub const ALL: [UnitClass; 5] = [
        UnitClass::Alu,
        UnitClass::Mul,
        UnitClass::L1Port,
        UnitClass::L2Port,
        UnitClass::Branch,
    ];

    /// Human name, as used in resource-validation error messages.
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            UnitClass::Alu => "ALU slots",
            UnitClass::Mul => "IMUL slots",
            UnitClass::L1Port => "L1 ports",
            UnitClass::L2Port => "L2 ports",
            UnitClass::Branch => "branch unit",
        }
    }
}

/// One op-class table row: how long the result takes, whether issues
/// pipeline, and which unit an issue occupies.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct OpDesc {
    /// Result latency in cycles (consumers wait this long).
    pub latency: u32,
    /// Whether the unit accepts a new issue every cycle. A
    /// non-pipelined unit stays busy for the whole access.
    pub pipelined: bool,
    /// The unit class an issue of this op occupies.
    pub unit: UnitClass,
}

impl OpDesc {
    /// How many cycles one issue keeps its unit busy: `1` when the unit
    /// pipelines, the full latency when it does not. This is the
    /// reservation model's only knob.
    #[must_use]
    pub fn reserved_cycles(&self) -> u32 {
        if self.pipelined {
            1
        } else {
            self.latency
        }
    }
}

/// One cluster's row of the unit table.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ClusterUnits {
    /// Unit counts, indexed by [`UnitClass`] discriminant.
    pub counts: [u32; 5],
    /// Register-bank capacity (the one field the scheduler's signature
    /// ignores; only the final fits/spills verdict reads it).
    pub regs: u32,
}

impl ClusterUnits {
    /// Units of the given class on this cluster.
    #[must_use]
    pub fn count(&self, unit: UnitClass) -> u32 {
        self.counts[unit as usize]
    }

    /// Register-file ports of this cluster: `3` per ALU (two reads, one
    /// write) plus `2` per attached memory port.
    #[must_use]
    pub fn regfile_ports(&self) -> u32 {
        3 * self.count(UnitClass::Alu)
            + 2 * (self.count(UnitClass::L1Port) + self.count(UnitClass::L2Port))
    }
}

/// The machine description: op-class table plus per-cluster unit table,
/// derived deterministically from an [`ArchSpec`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Mdes {
    /// Op-class table, indexed by [`OpClass`] discriminant.
    ops: [OpDesc; 5],
    /// Unit table, one row per cluster.
    clusters: Vec<ClusterUnits>,
}

impl Mdes {
    /// Derive the description from an architecture spec. Latencies
    /// follow the paper's Table 4 (`ALU_LATENCY` and friends above);
    /// unit counts follow the spec's round-robin cluster dealing; the
    /// Level-2 reservation semantics follow
    /// [`ArchSpec::l2_pipelined`] — the extended design-space axis.
    #[must_use]
    pub fn from_spec(spec: &ArchSpec) -> Self {
        let ops = [
            OpDesc {
                latency: ALU_LATENCY,
                pipelined: true,
                unit: UnitClass::Alu,
            },
            OpDesc {
                latency: MUL_LATENCY,
                pipelined: true,
                unit: UnitClass::Mul,
            },
            OpDesc {
                latency: L1_LATENCY,
                pipelined: false,
                unit: UnitClass::L1Port,
            },
            OpDesc {
                latency: spec.l2_latency,
                pipelined: spec.l2_pipelined,
                unit: UnitClass::L2Port,
            },
            OpDesc {
                latency: BRANCH_LATENCY,
                pipelined: true,
                unit: UnitClass::Branch,
            },
        ];
        let clusters = spec
            .cluster_shapes()
            .map(|sh| ClusterUnits {
                counts: [
                    sh.alus,
                    sh.muls,
                    sh.l1_ports,
                    sh.l2_ports,
                    u32::from(sh.has_branch),
                ],
                regs: sh.regs,
            })
            .collect();
        Mdes { ops, clusters }
    }

    /// The op-class table row for `class`.
    #[must_use]
    pub fn op(&self, class: OpClass) -> &OpDesc {
        &self.ops[class as usize]
    }

    /// The whole op-class table, in packed-code order.
    #[must_use]
    pub fn ops(&self) -> &[OpDesc; 5] {
        &self.ops
    }

    /// Result latency of `class`.
    #[must_use]
    pub fn latency(&self, class: OpClass) -> u32 {
        self.op(class).latency
    }

    /// Reservation duration of one issue of `class`.
    #[must_use]
    pub fn reserved_cycles(&self, class: OpClass) -> u32 {
        self.op(class).reserved_cycles()
    }

    /// The packed issue-scan word for `class`:
    /// `(reserved_cycles << 3) | code`. The scan dispatches on the low
    /// three bits and charges the reservation duration from the rest.
    #[must_use]
    pub fn packed_meta(&self, class: OpClass) -> u32 {
        (self.op(class).reserved_cycles() << 3) | class.code()
    }

    /// The unit table.
    #[must_use]
    pub fn clusters(&self) -> &[ClusterUnits] {
        &self.clusters
    }

    /// Re-deal the register files for a new total, in place. Registers
    /// are the one axis outside the scheduling signature (and outside
    /// [`Mdes::content_hash`]), so a description memoized per signature
    /// can be retuned to a sibling spec without a rebuild. The result is
    /// exactly `Mdes::from_spec` of the sibling.
    pub fn retune_regs(&mut self, total_regs: u32) {
        let c = u32::try_from(self.clusters.len()).unwrap_or(1);
        for cl in &mut self.clusters {
            cl.regs = total_regs / c;
        }
    }

    /// Number of clusters.
    #[must_use]
    pub fn cluster_count(&self) -> usize {
        self.clusters.len()
    }

    /// Units of `unit` on cluster `c`.
    ///
    /// # Panics
    /// Panics if `c` is out of range.
    #[must_use]
    pub fn units(&self, c: usize, unit: UnitClass) -> u32 {
        self.clusters[c].count(unit)
    }

    /// Total units of `unit` across the machine.
    #[must_use]
    pub fn total_units(&self, unit: UnitClass) -> u32 {
        self.clusters.iter().map(|cl| cl.count(unit)).sum()
    }

    /// The register-file port count that limits cycle time: the
    /// per-cluster ALU slice plus the machine's total memory-access
    /// requirement (how the paper's Table 7 treats clustered machines).
    #[must_use]
    pub fn cycle_ports(&self) -> u32 {
        let alus_per_cluster = self
            .clusters
            .first()
            .map_or(0, |cl| cl.count(UnitClass::Alu));
        let mem_total = self.total_units(UnitClass::L1Port) + self.total_units(UnitClass::L2Port);
        3 * alus_per_cluster + 2 * mem_total
    }

    /// FNV-1a hash of everything the scheduler reads from this
    /// description: the full op-class table (latency, pipelining, unit
    /// binding) and the per-cluster unit counts — deliberately *not* the
    /// register capacities, which only the final fits/spills verdict
    /// consumes. Two architectures with equal hashes schedule alike, so
    /// [`crate::SchedSignature`] embeds this value and the compile memo
    /// and checkpoint fingerprints follow the description's content.
    #[must_use]
    pub fn content_hash(&self) -> u64 {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        let mut eat = |x: u32| {
            for b in x.to_le_bytes() {
                h ^= u64::from(b);
                h = h.wrapping_mul(0x0000_0100_0000_01b3);
            }
        };
        for op in &self.ops {
            eat(op.latency);
            eat(u32::from(op.pipelined));
            eat(op.unit as u32);
        }
        for cl in &self.clusters {
            for &n in &cl.counts {
                eat(n);
            }
        }
        h
    }

    /// Pretty-print the description: the op table, the unit table, and
    /// the reservation rows. This is what `exhibits --mdes-dump` shows
    /// and what the golden-file test pins.
    #[must_use]
    pub fn render(&self) -> String {
        let mut out = String::new();
        let class_name = |c: OpClass| match c {
            OpClass::Alu => "alu",
            OpClass::Mul => "imul",
            OpClass::MemL1 => "mem.l1",
            OpClass::MemL2 => "mem.l2",
            OpClass::Branch => "branch",
        };
        out.push_str("op class  latency  pipelined  reserved  unit\n");
        for class in OpClass::ALL {
            let op = self.op(class);
            let _ = writeln!(
                out,
                "{:<9} {:<8} {:<10} {:<9} {}",
                class_name(class),
                op.latency,
                if op.pipelined { "yes" } else { "no" },
                op.reserved_cycles(),
                op.unit.name(),
            );
        }
        out.push('\n');
        out.push_str("cluster  ALU  IMUL  L1  L2  BR  regs\n");
        for (j, cl) in self.clusters.iter().enumerate() {
            let _ = writeln!(
                out,
                "{:<8} {:<4} {:<5} {:<3} {:<3} {:<3} {}",
                j,
                cl.count(UnitClass::Alu),
                cl.count(UnitClass::Mul),
                cl.count(UnitClass::L1Port),
                cl.count(UnitClass::L2Port),
                cl.count(UnitClass::Branch),
                cl.regs,
            );
        }
        out.push('\n');
        out.push_str("reservation rows (one issue occupies one unit):\n");
        for class in OpClass::ALL {
            let op = self.op(class);
            let cycles = op.reserved_cycles();
            let _ = writeln!(
                out,
                "{:<9} -> {} for {} cycle{}",
                class_name(class),
                op.unit.name(),
                cycles,
                if cycles == 1 { "" } else { "s" },
            );
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn baseline_tables_match_the_paper() {
        let m = Mdes::from_spec(&ArchSpec::baseline());
        assert_eq!(m.latency(OpClass::Alu), 1);
        assert_eq!(m.latency(OpClass::Mul), 2);
        assert_eq!(m.latency(OpClass::MemL1), 3);
        assert_eq!(m.latency(OpClass::MemL2), 8);
        assert_eq!(m.latency(OpClass::Branch), 1);
        // Reservation: multiply pipelines, memory does not.
        assert_eq!(m.reserved_cycles(OpClass::Mul), 1);
        assert_eq!(m.reserved_cycles(OpClass::MemL1), 3);
        assert_eq!(m.reserved_cycles(OpClass::MemL2), 8);
        // Unit table: one of everything on the single cluster.
        assert_eq!(m.cluster_count(), 1);
        for unit in UnitClass::ALL {
            assert_eq!(m.units(0, unit), 1, "{unit:?}");
        }
        assert_eq!(m.clusters()[0].regs, 64);
        assert_eq!(m.cycle_ports(), 7);
    }

    #[test]
    fn packed_meta_encodes_reservation_over_code() {
        let m = Mdes::from_spec(&ArchSpec::baseline());
        for class in OpClass::ALL {
            let meta = m.packed_meta(class);
            assert_eq!(meta & 0b111, class.code());
            assert_eq!(meta >> 3, m.reserved_cycles(class));
        }
    }

    #[test]
    fn unit_dealing_matches_cluster_shapes() {
        let spec = ArchSpec::new(8, 2, 256, 2, 4, 4).unwrap();
        let m = Mdes::from_spec(&spec);
        for (j, sh) in spec.cluster_shapes().enumerate() {
            assert_eq!(m.units(j, UnitClass::Alu), sh.alus);
            assert_eq!(m.units(j, UnitClass::Mul), sh.muls);
            assert_eq!(m.units(j, UnitClass::L1Port), sh.l1_ports);
            assert_eq!(m.units(j, UnitClass::L2Port), sh.l2_ports);
            assert_eq!(m.units(j, UnitClass::Branch), u32::from(sh.has_branch));
            assert_eq!(m.clusters()[j].regfile_ports(), sh.regfile_ports());
        }
        assert_eq!(m.cycle_ports(), spec.cycle_ports());
    }

    #[test]
    fn pipelined_l2_changes_only_the_reservation() {
        let spec = ArchSpec::new(8, 4, 256, 2, 8, 2).unwrap();
        let base = Mdes::from_spec(&spec);
        let piped = Mdes::from_spec(&spec.with_pipelined_l2());
        assert_eq!(base.latency(OpClass::MemL2), piped.latency(OpClass::MemL2));
        assert_eq!(base.reserved_cycles(OpClass::MemL2), 8);
        assert_eq!(piped.reserved_cycles(OpClass::MemL2), 1);
        assert_eq!(base.clusters(), piped.clusters());
        assert_ne!(base.content_hash(), piped.content_hash());
    }

    #[test]
    fn content_hash_ignores_registers_and_tracks_everything_else() {
        let a = Mdes::from_spec(&ArchSpec::new(8, 4, 256, 2, 4, 4).unwrap());
        let b = Mdes::from_spec(&ArchSpec::new(8, 4, 512, 2, 4, 4).unwrap());
        assert_eq!(a.content_hash(), b.content_hash());
        for other in [
            ArchSpec::new(4, 4, 256, 2, 4, 4).unwrap(),
            ArchSpec::new(8, 2, 256, 2, 4, 4).unwrap(),
            ArchSpec::new(8, 4, 256, 1, 4, 4).unwrap(),
            ArchSpec::new(8, 4, 256, 2, 8, 4).unwrap(),
            ArchSpec::new(8, 4, 256, 2, 4, 2).unwrap(),
        ] {
            assert_ne!(
                a.content_hash(),
                Mdes::from_spec(&other).content_hash(),
                "{other}"
            );
        }
    }

    #[test]
    fn render_lists_every_class_and_cluster() {
        let m = Mdes::from_spec(&ArchSpec::new(4, 2, 256, 2, 8, 2).unwrap());
        let text = m.render();
        for needle in ["alu", "imul", "mem.l1", "mem.l2", "branch", "regs", "128"] {
            assert!(text.contains(needle), "missing {needle} in:\n{text}");
        }
        assert_eq!(text.lines().filter(|l| l.starts_with("mem.l2")).count(), 2);
    }
}
