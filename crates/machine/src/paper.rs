//! The published calibration samples: the example rows of the paper's
//! Table 6 (architecture costs) and Table 7 (cycle-speed derating).
//!
//! These are the only concrete values the paper gives for its cost and
//! cycle models; [`crate::calibrate`] fits our model constants to them.

use crate::arch::ArchSpec;

// Static tables transcribed from the paper; `tables_are_well_formed`
// exercises every row, so a bad tuple fails the test suite, not a sweep.
#[allow(clippy::expect_used)]
fn spec(
    alus: u32,
    muls: u32,
    regs: u32,
    l2_ports: u32,
    l2_latency: u32,
    clusters: u32,
) -> ArchSpec {
    ArchSpec::new(alus, muls, regs, l2_ports, l2_latency, clusters)
        .expect("paper table rows are valid specs")
}

/// Paper Table 6: `(arch, relative cost)`. All rows use one L2 port; the
/// L2 latency is immaterial to cost (we fill in 8).
#[must_use]
pub fn table6() -> Vec<(ArchSpec, f64)> {
    vec![
        (spec(1, 1, 64, 1, 8, 1), 1.0),
        (spec(2, 1, 64, 1, 8, 1), 1.7),
        (spec(4, 2, 128, 1, 8, 1), 6.5),
        (spec(4, 2, 128, 1, 8, 2), 3.6),
        (spec(8, 4, 256, 1, 8, 1), 28.7),
        (spec(8, 4, 256, 1, 8, 2), 13.1),
        (spec(8, 4, 256, 1, 8, 4), 7.4),
        (spec(16, 8, 512, 1, 8, 1), 93.4),
        (spec(16, 8, 512, 1, 8, 2), 38.4),
        (spec(16, 8, 512, 1, 8, 4), 19.0),
        (spec(16, 8, 512, 1, 8, 8), 12.2),
    ]
}

/// Paper Table 7: `(arch, relative cycle time)`. Cycle time depends only
/// on ALUs-per-cluster and memory ports; register/mul fields are filled
/// with representative values.
#[must_use]
pub fn table7() -> Vec<(ArchSpec, f64)> {
    vec![
        (spec(1, 1, 64, 1, 8, 1), 1.0),
        (spec(2, 1, 64, 1, 8, 1), 1.1),
        (spec(4, 1, 64, 1, 8, 1), 1.5),
        (spec(4, 1, 64, 1, 8, 2), 1.1),
        (spec(8, 2, 512, 1, 8, 1), 2.7),
        (spec(8, 2, 512, 1, 8, 2), 1.4),
        (spec(8, 2, 512, 1, 8, 4), 1.1),
        (spec(16, 4, 512, 1, 8, 1), 7.3),
        (spec(16, 4, 512, 1, 8, 2), 2.7),
        (spec(16, 4, 512, 1, 8, 4), 1.5),
        (spec(16, 4, 512, 1, 8, 8), 1.1),
    ]
}

/// The cost bounds the paper explores in Tables 8–10.
pub const COST_BOUNDS: [f64; 3] = [5.0, 10.0, 15.0];

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tables_are_well_formed() {
        let t6 = table6();
        assert_eq!(t6.len(), 11);
        assert_eq!(t6[0].1, 1.0, "first row is the baseline");
        let t7 = table7();
        assert_eq!(t7.len(), 11);
        assert_eq!(t7[0].1, 1.0);
        for (a, v) in t6.iter().chain(&t7) {
            assert!(a.validate().is_ok());
            assert!(*v >= 1.0);
        }
    }
}
