//! The cycle-time derating model (paper §3.4).
//!
//! The read stage of the register file is assumed to limit cycle speed,
//! with a quadratic relationship between cycle time and port count:
//! `T(p) = α + β·p²`, where `p = 3·(a/c) + 2·(1 + p2)` is the paper's
//! Table 7 port measure. Derating factors are reported relative to the
//! baseline (whose factor is exactly 1.0); see [`crate::calibrate`] for
//! the fit (within 5% of every Table 7 row).

use crate::arch::ArchSpec;
use crate::calibrate;
use std::sync::OnceLock;

/// Computes the cycle-time derating factor of an architecture.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CycleModel {
    alpha: f64,
    beta: f64,
    baseline_raw: f64,
}

impl CycleModel {
    /// Build from the quadratic's coefficients (normalization to the
    /// baseline is applied automatically).
    #[must_use]
    pub fn from_coefficients(alpha: f64, beta: f64) -> Self {
        let mut m = CycleModel {
            alpha,
            beta,
            baseline_raw: 1.0,
        };
        m.baseline_raw = m.raw_derate(&ArchSpec::baseline());
        m
    }

    /// The model calibrated against the paper's Table 7 (cached).
    #[must_use]
    pub fn paper_calibrated() -> Self {
        static CACHE: OnceLock<CycleModel> = OnceLock::new();
        *CACHE.get_or_init(calibrate::fit_cycle_model)
    }

    fn raw_derate(&self, spec: &ArchSpec) -> f64 {
        // The spec's port measure is the integer the derived machine
        // description reports as `Mdes::cycle_ports` (asserted equal in
        // the mdes tests); reading it directly keeps this call free of
        // the description's heap-allocated unit table — scoring a large
        // design space calls this once per point.
        let p = f64::from(spec.cycle_ports());
        self.alpha + self.beta * p * p
    }

    /// Cycle-time multiplier relative to the baseline: an architecture
    /// with derate 2.0 runs each cycle twice as slowly as the baseline.
    #[must_use]
    pub fn derate(&self, spec: &ArchSpec) -> f64 {
        self.raw_derate(spec) / self.baseline_raw
    }

    /// Batch scoring: the derate of every spec in `specs`, written to
    /// the matching slot of `out`. One linear pass with `α`/`β` held in
    /// locals; each slot is bit-identical to [`CycleModel::derate`] of
    /// that spec, and the loop body is three multiplies and an add over
    /// flat data — exactly the shape the autovectorizer wants.
    ///
    /// # Panics
    /// Panics if the slices disagree in length.
    pub fn derate_batch(&self, specs: &[ArchSpec], out: &mut [f64]) {
        assert_eq!(specs.len(), out.len(), "derate_batch slice lengths differ");
        let (alpha, beta, base) = (self.alpha, self.beta, self.baseline_raw);
        for (spec, slot) in specs.iter().zip(out.iter_mut()) {
            let p = f64::from(spec.cycle_ports());
            *slot = (alpha + beta * p * p) / base;
        }
    }

    /// The fitted `(α, β)` before normalization.
    #[must_use]
    pub fn coefficients(&self) -> (f64, f64) {
        (self.alpha, self.beta)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spec(a: u32, p2: u32, c: u32) -> ArchSpec {
        ArchSpec::new(a, 1, 512, p2, 8, c).unwrap()
    }

    #[test]
    fn baseline_derates_to_one() {
        let m = CycleModel::paper_calibrated();
        assert!((m.derate(&ArchSpec::baseline()) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn derate_grows_with_alus_and_ports() {
        let m = CycleModel::paper_calibrated();
        assert!(m.derate(&spec(8, 1, 1)) > m.derate(&spec(4, 1, 1)));
        assert!(m.derate(&spec(8, 2, 1)) > m.derate(&spec(8, 1, 1)));
    }

    #[test]
    fn clustering_restores_cycle_speed() {
        // Table 7's core phenomenon: a 16-ALU machine derates 7.3x as one
        // cluster but only ~1.1x as eight clusters.
        let m = CycleModel::paper_calibrated();
        let mono = m.derate(&spec(16, 1, 1));
        let eight = m.derate(&spec(16, 1, 8));
        assert!(mono > 6.5 && mono < 8.0, "mono {mono:.2}");
        assert!(eight < 1.2, "eight {eight:.2}");
    }

    #[test]
    fn batch_derates_are_bit_identical_to_scalar() {
        let m = CycleModel::paper_calibrated();
        let specs: Vec<ArchSpec> = crate::DesignSpace::extended()
            .all_arrangements()
            .into_iter()
            .step_by(13)
            .collect();
        let mut out = vec![0.0; specs.len()];
        m.derate_batch(&specs, &mut out);
        for (s, &got) in specs.iter().zip(&out) {
            assert_eq!(got.to_bits(), m.derate(s).to_bits(), "{s}");
        }
    }

    #[test]
    #[should_panic(expected = "slice lengths differ")]
    fn batch_derate_rejects_mismatched_slices() {
        let m = CycleModel::paper_calibrated();
        m.derate_batch(&[ArchSpec::baseline()], &mut []);
    }

    #[test]
    fn monotone_in_port_measure() {
        let m = CycleModel::paper_calibrated();
        let mut last = 0.0;
        for a in [1_u32, 2, 4, 8, 16] {
            let d = m.derate(&spec(a, 1, 1));
            assert!(d > last);
            last = d;
        }
    }
}
