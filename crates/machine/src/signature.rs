//! Canonical scheduling signatures: which architectures compile alike.
//!
//! The back end's phases — lowering, dependence graphs, cluster
//! assignment, list scheduling, and the register-*pressure* computation —
//! read only the machine's issue resources and latencies: per-cluster
//! ALU/IMUL slots, memory-port placement, the branch unit, the cluster
//! count, and the Level-2 latency. Register-file *size* enters the
//! pipeline only at the very end, when peak pressure is compared against
//! bank capacity. Two architectures that differ only in `r` therefore
//! produce bit-identical schedules, and the paper's `r ∈ {64, 128, 256,
//! 512}` sweep axis collapses to one compilation per signature.
//!
//! [`SchedSignature`] is the canonical key for that equivalence class.
//! It is exactly [`ArchSpec`] minus `regs`: per-cluster shapes are a
//! pure function of `(alus, muls, l2_ports, clusters)` (round-robin
//! dealing, branch on cluster 0), so the five totals determine every
//! quantity the scheduler reads.

use crate::arch::ArchSpec;

/// The schedule-relevant projection of an [`ArchSpec`].
///
/// Everything the compiler's machine-dependent phases consume, and
/// nothing more. Architectures with equal signatures get identical
/// schedules, assignments, and peak register pressure — only the
/// fits/spills verdict (capacity-dependent) may differ.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct SchedSignature {
    /// Total ALUs (`a`).
    pub alus: u32,
    /// IMUL-capable ALUs (`m`).
    pub muls: u32,
    /// Level-2 memory ports (`p2`).
    pub l2_ports: u32,
    /// Level-2 access latency (`l2`).
    pub l2_latency: u32,
    /// Cluster count (`c`).
    pub clusters: u32,
}

impl ArchSpec {
    /// The canonical scheduling signature of this architecture: the spec
    /// with the register-file size projected away.
    #[must_use]
    pub fn sched_signature(&self) -> SchedSignature {
        SchedSignature {
            alus: self.alus,
            muls: self.muls,
            l2_ports: self.l2_ports,
            l2_latency: self.l2_latency,
            clusters: self.clusters,
        }
    }
}

impl std::fmt::Display for SchedSignature {
    /// Paper tuple order with the register field elided: `(a m _ p2 l2 c)`.
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "({} {} _ {} {} {})",
            self.alus, self.muls, self.l2_ports, self.l2_latency, self.clusters
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::resources::MachineResources;

    #[test]
    fn signature_ignores_registers_only() {
        let a = ArchSpec::new(8, 4, 256, 2, 4, 4).unwrap();
        let b = ArchSpec::new(8, 4, 512, 2, 4, 4).unwrap();
        assert_eq!(a.sched_signature(), b.sched_signature());
        for other in [
            ArchSpec::new(4, 4, 256, 2, 4, 4).unwrap(),
            ArchSpec::new(8, 2, 256, 2, 4, 4).unwrap(),
            ArchSpec::new(8, 4, 256, 1, 4, 4).unwrap(),
            ArchSpec::new(8, 4, 256, 2, 8, 4).unwrap(),
            ArchSpec::new(8, 4, 256, 2, 4, 2).unwrap(),
        ] {
            assert_ne!(a.sched_signature(), other.sched_signature(), "{other}");
        }
    }

    #[test]
    fn equal_signatures_mean_equal_scheduler_inputs() {
        // The reservation tables of equal-signature machines differ only
        // in register capacity.
        let a = MachineResources::from_spec(&ArchSpec::new(8, 3, 128, 3, 4, 4).unwrap());
        let b = MachineResources::from_spec(&ArchSpec::new(8, 3, 512, 3, 4, 4).unwrap());
        assert_eq!(a.l2_latency, b.l2_latency);
        assert_eq!(a.cluster_count(), b.cluster_count());
        for (ca, cb) in a.clusters.iter().zip(&b.clusters) {
            assert_eq!(ca.alus, cb.alus);
            assert_eq!(ca.mul_capable, cb.mul_capable);
            assert_eq!(ca.l1_ports, cb.l1_ports);
            assert_eq!(ca.l2_ports, cb.l2_ports);
            assert_eq!(ca.has_branch, cb.has_branch);
            assert_ne!(ca.regs, cb.regs);
        }
    }

    #[test]
    fn display_elides_the_register_field() {
        let s = ArchSpec::new(8, 4, 256, 1, 4, 4).unwrap().sched_signature();
        assert_eq!(s.to_string(), "(8 4 _ 1 4 4)");
    }
}
