//! Canonical scheduling signatures: which architectures compile alike.
//!
//! The back end's phases — lowering, dependence graphs, cluster
//! assignment, list scheduling, and the register-*pressure* computation —
//! read only the machine description ([`crate::Mdes`]): op latencies,
//! reservation semantics, and per-cluster unit counts. Register-file
//! *size* enters the pipeline only at the very end, when peak pressure
//! is compared against bank capacity. Two architectures that differ only
//! in `r` therefore produce bit-identical schedules, and the paper's
//! `r ∈ {64, 128, 256, 512}` sweep axis collapses to one compilation per
//! signature.
//!
//! [`SchedSignature`] is the canonical key for that equivalence class.
//! It is exactly [`ArchSpec`] minus `regs`, plus a content hash of the
//! derived machine description: the tuple fields name the point in the
//! design space, and `mdes_hash` pins everything the scheduler actually
//! reads — so a future description axis that the tuple fields don't
//! capture still splits the equivalence class correctly.

use crate::arch::ArchSpec;
use crate::mdes::Mdes;

/// The schedule-relevant projection of an [`ArchSpec`].
///
/// Everything the compiler's machine-dependent phases consume, and
/// nothing more. Architectures with equal signatures get identical
/// schedules, assignments, and peak register pressure — only the
/// fits/spills verdict (capacity-dependent) may differ.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct SchedSignature {
    /// Total ALUs (`a`).
    pub alus: u32,
    /// IMUL-capable ALUs (`m`).
    pub muls: u32,
    /// Level-2 memory ports (`p2`).
    pub l2_ports: u32,
    /// Level-2 access latency (`l2`).
    pub l2_latency: u32,
    /// Cluster count (`c`).
    pub clusters: u32,
    /// Whether Level-2 ports pipeline (the extended axis).
    pub l2_pipelined: bool,
    /// FNV-1a hash of the derived [`Mdes`] content (op table + unit
    /// counts, registers excluded) — see [`Mdes::content_hash`].
    pub mdes_hash: u64,
}

impl ArchSpec {
    /// The canonical scheduling signature of this architecture: the spec
    /// with the register-file size projected away, plus the content hash
    /// of its derived machine description.
    #[must_use]
    pub fn sched_signature(&self) -> SchedSignature {
        self.sched_signature_with(&Mdes::from_spec(self))
    }

    /// [`Self::sched_signature`] reusing an already-derived description
    /// instead of building a throwaway one. `mdes` must be this spec's
    /// (registers may have been retuned — they are outside the hash), as
    /// from a memoized [`crate::MachineResources`]. Allocation-free,
    /// which is what keeps a sweep worker's warm cached-evaluation path
    /// off the heap entirely.
    #[must_use]
    pub fn sched_signature_with(&self, mdes: &Mdes) -> SchedSignature {
        SchedSignature {
            alus: self.alus,
            muls: self.muls,
            l2_ports: self.l2_ports,
            l2_latency: self.l2_latency,
            clusters: self.clusters,
            l2_pipelined: self.l2_pipelined,
            mdes_hash: mdes.content_hash(),
        }
    }
}

impl std::fmt::Display for SchedSignature {
    /// Paper tuple order with the register field elided:
    /// `(a m _ p2 l2 c)`, with `l2` carrying a `p` suffix when the
    /// Level-2 ports pipeline (matching [`ArchSpec`]'s `Display`).
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "({} {} _ {} {}{} {})",
            self.alus,
            self.muls,
            self.l2_ports,
            self.l2_latency,
            if self.l2_pipelined { "p" } else { "" },
            self.clusters
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::resources::MachineResources;

    #[test]
    fn signature_with_a_memoized_description_matches_the_fresh_one() {
        for spec in [
            ArchSpec::new(8, 4, 256, 2, 4, 4).unwrap(),
            ArchSpec::new(2, 1, 64, 1, 8, 1).unwrap(),
            ArchSpec::new(16, 8, 512, 4, 2, 4)
                .unwrap()
                .with_pipelined_l2(),
        ] {
            let machine = MachineResources::from_spec(&spec);
            assert_eq!(
                spec.sched_signature_with(&machine.mdes),
                spec.sched_signature(),
                "{spec}"
            );
            // A retuned sibling description (different register total)
            // still yields the sibling's own signature — registers are
            // outside the hash.
            let mut sib = spec;
            sib.regs = if spec.regs == 64 { 512 } else { 64 };
            assert_eq!(
                sib.sched_signature_with(&machine.mdes),
                sib.sched_signature(),
                "{sib}"
            );
        }
    }

    #[test]
    fn signature_ignores_registers_only() {
        let a = ArchSpec::new(8, 4, 256, 2, 4, 4).unwrap();
        let b = ArchSpec::new(8, 4, 512, 2, 4, 4).unwrap();
        assert_eq!(a.sched_signature(), b.sched_signature());
        for other in [
            ArchSpec::new(4, 4, 256, 2, 4, 4).unwrap(),
            ArchSpec::new(8, 2, 256, 2, 4, 4).unwrap(),
            ArchSpec::new(8, 4, 256, 1, 4, 4).unwrap(),
            ArchSpec::new(8, 4, 256, 2, 8, 4).unwrap(),
            ArchSpec::new(8, 4, 256, 2, 4, 2).unwrap(),
            ArchSpec::new(8, 4, 256, 2, 4, 4)
                .unwrap()
                .with_pipelined_l2(),
        ] {
            assert_ne!(a.sched_signature(), other.sched_signature(), "{other}");
        }
    }

    #[test]
    fn equal_signatures_mean_equal_scheduler_inputs() {
        // The reservation tables of equal-signature machines differ only
        // in register capacity.
        let a = MachineResources::from_spec(&ArchSpec::new(8, 3, 128, 3, 4, 4).unwrap());
        let b = MachineResources::from_spec(&ArchSpec::new(8, 3, 512, 3, 4, 4).unwrap());
        assert_eq!(a.l2_latency, b.l2_latency);
        assert_eq!(a.cluster_count(), b.cluster_count());
        assert_eq!(a.mdes.content_hash(), b.mdes.content_hash());
        assert_eq!(a.mdes.ops(), b.mdes.ops());
        for (ca, cb) in a.clusters.iter().zip(&b.clusters) {
            assert_eq!(ca.alus, cb.alus);
            assert_eq!(ca.mul_capable, cb.mul_capable);
            assert_eq!(ca.l1_ports, cb.l1_ports);
            assert_eq!(ca.l2_ports, cb.l2_ports);
            assert_eq!(ca.has_branch, cb.has_branch);
            assert_ne!(ca.regs, cb.regs);
        }
    }

    #[test]
    fn display_elides_the_register_field() {
        let s = ArchSpec::new(8, 4, 256, 1, 4, 4).unwrap().sched_signature();
        assert_eq!(s.to_string(), "(8 4 _ 1 4 4)");
        let p = ArchSpec::new(8, 4, 256, 1, 4, 4)
            .unwrap()
            .with_pipelined_l2()
            .sched_signature();
        assert_eq!(p.to_string(), "(8 4 _ 1 4p 4)");
    }

    #[test]
    fn signature_hash_matches_derived_description() {
        for spec in [
            ArchSpec::baseline(),
            ArchSpec::new(16, 8, 512, 4, 2, 8).unwrap(),
            ArchSpec::new(4, 2, 256, 2, 8, 2)
                .unwrap()
                .with_pipelined_l2(),
        ] {
            assert_eq!(
                spec.sched_signature().mdes_hash,
                MachineResources::from_spec(&spec).mdes.content_hash()
            );
        }
    }
}
