//! Least-squares calibration of the cost and cycle models against the
//! paper's published tables.
//!
//! The paper's `k1 … k5` "fitting parameters computed from observation of
//! existing designs" were never published; the closest observable designs
//! are the eleven Table 6 rows and eleven Table 7 rows the paper prints.
//! This module re-derives model constants from those rows:
//!
//! * the **cycle model** `T(p) = α + β·p²` fits Table 7 to within 8%
//!   (relative, after normalizing the baseline to exactly 1.0) on every
//!   row;
//! * the **cost model** is fit in *relative* terms (weighted least
//!   squares, weight `1/cost`, the baseline row pinned with extra weight
//!   so normalization barely perturbs the fit) with three physical side
//!   conditions that resolve degeneracies in the data: the per-register
//!   port-independent height `k3` is constrained non-negative (the
//!   unconstrained optimum is slightly negative, which would make cost
//!   *decrease* with register count); a multiplier is pinned at three
//!   ALU-heights (`k5 = 3·k4`) because every Table 6 row has `m = r/64`,
//!   making the two coefficients unidentifiable from the data alone; and
//!   an inter-cluster interconnect term `k6·(c−1)` is added, because the
//!   printed formula is strictly additive over clusters while the printed
//!   costs are sub-additive (the paper's template has "a set of global
//!   connections" between clusters whose area the printed formula cannot
//!   represent). Residuals stay within ~21%, consistent with the paper's
//!   own "certainly not close to exact figures" caveat; see
//!   `EXPERIMENTS.md` for the full residual table.

use crate::arch::ArchSpec;
use crate::cost::CostModel;
use crate::cycle::CycleModel;
use crate::paper;

/// Solve `min ‖W(Xk − y)‖²` by normal equations with partial-pivoting
/// Gaussian elimination. Rows are `(features, target, weight)`.
///
/// Returns `None` when the system is singular (collinear features).
#[must_use]
pub fn weighted_least_squares(rows: &[(Vec<f64>, f64, f64)]) -> Option<Vec<f64>> {
    let n = rows.first()?.0.len();
    if rows.iter().any(|(x, _, _)| x.len() != n) {
        return None;
    }
    let mut a = vec![vec![0.0; n]; n];
    let mut b = vec![0.0; n];
    for (x, y, w) in rows {
        let w2 = w * w;
        for i in 0..n {
            for j in 0..n {
                a[i][j] += w2 * x[i] * x[j];
            }
            b[i] += w2 * x[i] * y;
        }
    }
    solve(&mut a, &mut b)
}

fn solve(a: &mut [Vec<f64>], b: &mut [f64]) -> Option<Vec<f64>> {
    let n = b.len();
    for i in 0..n {
        let piv = (i..n).max_by(|&r, &s| a[r][i].abs().total_cmp(&a[s][i].abs()))?;
        if a[piv][i].abs() < 1e-12 {
            return None;
        }
        a.swap(i, piv);
        b.swap(i, piv);
        for r in i + 1..n {
            let f = a[r][i] / a[i][i];
            let (top, rest) = a.split_at_mut(i + 1);
            let row = &mut rest[r - i - 1];
            for (c, v) in row.iter_mut().enumerate().skip(i) {
                *v -= f * top[i][c];
            }
            b[r] -= f * b[i];
        }
    }
    let mut x = vec![0.0; n];
    for i in (0..n).rev() {
        let s: f64 = (i + 1..n).map(|j| a[i][j] * x[j]).sum();
        x[i] = (b[i] - s) / a[i][i];
    }
    Some(x)
}

/// The cost-model feature vector of an architecture:
/// `(Σ r'·p², Σ r'·p, Σ a'·p, Σ m'·p)` over clusters, where `p` is each
/// cluster's register-file port count. The cost model is linear in these
/// with coefficients `(k2, k3, k4, k5)` (the datapath width `k1·p` is
/// already folded into each term's factor of `p`; `k1` only sets the
/// overall scale, which normalization to the baseline removes).
#[must_use]
pub fn cost_features(spec: &ArchSpec) -> [f64; 4] {
    let mut f = [0.0; 4];
    for sh in spec.cluster_shapes() {
        let p = f64::from(sh.regfile_ports());
        let (a, m, r) = (f64::from(sh.alus), f64::from(sh.muls), f64::from(sh.regs));
        f[0] += r * p * p;
        f[1] += r * p;
        f[2] += a * p;
        f[3] += m * p;
    }
    f
}

/// Fit the cost model to Table 6. See the module docs for the side
/// conditions applied.
// The k3 grid always contains feasible points (positive k2/k4/k6 at the
// published Table 6 data); `cost_fit_matches_table6_within_25_percent`
// would fail first if the data ever changed to make the grid infeasible.
#[allow(clippy::expect_used)]
#[must_use]
pub fn fit_cost_model() -> CostModel {
    let data = paper::table6();
    // Grid over k3 with a physical floor; for each candidate fit
    // (k2, k4, k6) by weighted LS on the residual, with k5 tied to 3·k4.
    // The baseline row gets 30x weight so that post-fit normalization is
    // a tiny perturbation.
    //
    // The floor (k3 ≥ 1e-3): the unconstrained optimum drives the
    // port-independent per-register height to zero, which makes large
    // register files in small clusters almost free — Table 6's samples
    // (all with r = 64·m) cannot constrain that corner. At 1e-3 a
    // (8 2 128 1) machine in 4 clusters prices at ≈5.1, consistent with
    // the paper's low-cost selections, while the Table 6 relative rms
    // moves only from 0.104 to 0.118.
    let mut best: Option<(f64, CostModel)> = None;
    for step in 100..400 {
        let k3 = f64::from(step) * 1e-5;
        let rows: Vec<(Vec<f64>, f64, f64)> = data
            .iter()
            .map(|(spec, cost)| {
                let f = cost_features(spec);
                let w = if spec.clusters == 1 && spec.alus == 1 {
                    30.0 / cost
                } else {
                    1.0 / cost
                };
                (
                    vec![f[0], f[2] + 3.0 * f[3], f64::from(spec.clusters - 1)],
                    cost - k3 * f[1],
                    w,
                )
            })
            .collect();
        let Some(sol) = weighted_least_squares(&rows) else {
            continue;
        };
        let (k2, k4, k6) = (sol[0], sol[1], sol[2]);
        if k2 <= 0.0 || k4 <= 0.0 || k6 <= 0.0 {
            continue;
        }
        let model = CostModel::from_coefficients(k2, k3, k4, 3.0 * k4, k6);
        let rms = relative_rms(&data, &model);
        if best.as_ref().is_none_or(|(r, _)| rms < *r) {
            best = Some((rms, model));
        }
    }
    best.expect("cost fit always has a feasible point").1
}

fn relative_rms(data: &[(ArchSpec, f64)], model: &CostModel) -> f64 {
    let s: f64 = data
        .iter()
        .map(|(spec, cost)| ((model.cost(spec) - cost) / cost).powi(2))
        .sum();
    (s / data.len() as f64).sqrt()
}

/// Fit the cycle model `T(p) = α + β·p²` to Table 7, then normalize so
/// the baseline derates to exactly 1.0.
// Table 7's port measures are distinct, so the 2-parameter system is
// never singular; `cycle_fit_matches_table7_within_8_percent` guards it.
#[allow(clippy::expect_used)]
#[must_use]
pub fn fit_cycle_model() -> CycleModel {
    let rows: Vec<(Vec<f64>, f64, f64)> = paper::table7()
        .iter()
        .map(|(spec, t)| {
            let p = f64::from(spec.cycle_ports());
            (vec![1.0, p * p], *t, 1.0)
        })
        .collect();
    let sol = weighted_least_squares(&rows).expect("cycle fit is well-conditioned");
    CycleModel::from_coefficients(sol[0], sol[1])
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn least_squares_recovers_exact_solution() {
        // y = 2x0 + 3x1 exactly.
        let rows = vec![
            (vec![1.0, 0.0], 2.0, 1.0),
            (vec![0.0, 1.0], 3.0, 1.0),
            (vec![1.0, 1.0], 5.0, 1.0),
            (vec![2.0, 1.0], 7.0, 2.0),
        ];
        let sol = weighted_least_squares(&rows).unwrap();
        assert!((sol[0] - 2.0).abs() < 1e-9);
        assert!((sol[1] - 3.0).abs() < 1e-9);
    }

    #[test]
    fn least_squares_rejects_singular() {
        let rows = vec![(vec![1.0, 2.0], 1.0, 1.0), (vec![2.0, 4.0], 2.0, 1.0)];
        assert!(weighted_least_squares(&rows).is_none());
    }

    #[test]
    fn least_squares_rejects_ragged_rows() {
        let rows = vec![(vec![1.0], 1.0, 1.0), (vec![1.0, 2.0], 2.0, 1.0)];
        assert!(weighted_least_squares(&rows).is_none());
    }

    #[test]
    fn cycle_fit_matches_table7_within_8_percent() {
        let m = fit_cycle_model();
        for (spec, t) in paper::table7() {
            let pred = m.derate(&spec);
            let rel = (pred - t).abs() / t;
            assert!(rel < 0.08, "{spec}: paper {t}, model {pred:.3}");
        }
    }

    #[test]
    fn cost_fit_matches_table6_within_25_percent() {
        let m = fit_cost_model();
        for (spec, c) in paper::table6() {
            let pred = m.cost(&spec);
            let rel = (pred - c).abs() / c;
            assert!(rel < 0.25, "{spec}: paper {c}, model {pred:.2}");
        }
    }

    #[test]
    fn cost_fit_keeps_baseline_at_one() {
        let m = fit_cost_model();
        let b = crate::arch::ArchSpec::baseline();
        assert!((m.cost(&b) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn fitted_models_match_the_cached_constants() {
        // `paper_calibrated` memoizes the fit in a `OnceLock`; this pins
        // the cached models to a fresh fit.
        let fit_cost = fit_cost_model();
        let shipped_cost = CostModel::paper_calibrated();
        for (spec, _) in paper::table6() {
            assert!(
                (fit_cost.cost(&spec) - shipped_cost.cost(&spec)).abs() < 1e-6,
                "{spec}"
            );
        }
        let fit_cycle = fit_cycle_model();
        let shipped_cycle = CycleModel::paper_calibrated();
        for (spec, _) in paper::table7() {
            assert!((fit_cycle.derate(&spec) - shipped_cycle.derate(&spec)).abs() < 1e-9);
        }
    }

    #[test]
    fn cost_features_scale_with_clusters() {
        let one = ArchSpec::new(8, 4, 256, 1, 8, 1).unwrap();
        let four = ArchSpec::new(8, 4, 256, 1, 8, 4).unwrap();
        // Splitting into clusters shrinks the quadratic port term.
        assert!(cost_features(&four)[0] < cost_features(&one)[0]);
    }
}
