//! The reservation-table view of an architecture, as consumed by the
//! list scheduler in `cfp-sched`.
//!
//! Latencies follow the paper's Table 4: every integer operation takes 1
//! cycle except multiply (2 cycles, pipelined); Level-1 memory takes 3
//! cycles non-pipelined; Level-2 memory takes the architecture's `l2`
//! latency, non-pipelined. *Non-pipelined* means the memory port stays
//! busy for the entire access, so a port sustains at most one access per
//! `latency` cycles.

use crate::arch::ArchSpec;

/// Latency of a plain ALU operation (cycles).
pub const ALU_LATENCY: u32 = 1;
/// Latency of an integer multiply (cycles, pipelined).
pub const MUL_LATENCY: u32 = 2;
/// Latency of a Level-1 memory access (cycles, non-pipelined).
pub const L1_LATENCY: u32 = 3;
/// Latency of the loop-closing branch (cycles).
pub const BRANCH_LATENCY: u32 = 1;

/// Which memory level an access targets. Mirrors `cfp_ir::MemSpace`
/// without creating a dependency between the crates.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum MemLevel {
    /// Level-1 (global) memory.
    L1,
    /// Level-2 (local) memory.
    L2,
}

/// One cluster's schedulable resources.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ClusterResources {
    /// ALU issue slots per cycle.
    pub alus: u32,
    /// How many of those slots accept a multiply.
    pub mul_capable: u32,
    /// Register-bank capacity.
    pub regs: u32,
    /// Level-1 memory ports attached here.
    pub l1_ports: u32,
    /// Level-2 memory ports attached here.
    pub l2_ports: u32,
    /// Whether the (single) branch unit lives here.
    pub has_branch: bool,
}

/// A whole machine, ready for scheduling.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MachineResources {
    /// Per-cluster resources; index = cluster id.
    pub clusters: Vec<ClusterResources>,
    /// Level-2 access latency (cycles, non-pipelined).
    pub l2_latency: u32,
}

impl MachineResources {
    /// Derive the resource tables from an architecture spec.
    #[must_use]
    pub fn from_spec(spec: &ArchSpec) -> Self {
        let clusters = spec
            .cluster_shapes()
            .map(|sh| ClusterResources {
                alus: sh.alus,
                mul_capable: sh.muls,
                regs: sh.regs,
                l1_ports: sh.l1_ports,
                l2_ports: sh.l2_ports,
                has_branch: sh.has_branch,
            })
            .collect();
        MachineResources {
            clusters,
            l2_latency: spec.l2_latency,
        }
    }

    /// Number of clusters.
    #[must_use]
    pub fn cluster_count(&self) -> usize {
        self.clusters.len()
    }

    /// Latency of a memory access to the given level.
    #[must_use]
    pub fn mem_latency(&self, level: MemLevel) -> u32 {
        match level {
            MemLevel::L1 => L1_LATENCY,
            MemLevel::L2 => self.l2_latency,
        }
    }

    /// Memory ports of the given level on cluster `c`.
    ///
    /// # Panics
    /// Panics if `c` is out of range.
    #[must_use]
    pub fn mem_ports(&self, c: usize, level: MemLevel) -> u32 {
        match level {
            MemLevel::L1 => self.clusters[c].l1_ports,
            MemLevel::L2 => self.clusters[c].l2_ports,
        }
    }

    /// Total ALU slots across the machine (the VLIW issue width, minus
    /// memory and branch slots).
    #[must_use]
    pub fn total_alus(&self) -> u32 {
        self.clusters.iter().map(|c| c.alus).sum()
    }

    /// Whether *any* cluster can issue a multiply.
    #[must_use]
    pub fn can_multiply(&self) -> bool {
        self.clusters.iter().any(|c| c.mul_capable > 0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn baseline_resources() {
        let r = MachineResources::from_spec(&ArchSpec::baseline());
        assert_eq!(r.cluster_count(), 1);
        let c = &r.clusters[0];
        assert_eq!((c.alus, c.mul_capable, c.regs), (1, 1, 64));
        assert_eq!((c.l1_ports, c.l2_ports), (1, 1));
        assert!(c.has_branch);
        assert_eq!(r.mem_latency(MemLevel::L1), 3);
        assert_eq!(r.mem_latency(MemLevel::L2), 8);
        assert!(r.can_multiply());
    }

    #[test]
    fn clustered_resources_place_branch_and_ports() {
        let spec = ArchSpec::new(8, 2, 256, 1, 4, 4).unwrap();
        let r = MachineResources::from_spec(&spec);
        assert_eq!(r.cluster_count(), 4);
        assert!(r.clusters[0].has_branch);
        assert!(!r.clusters[1].has_branch);
        assert_eq!(r.mem_ports(0, MemLevel::L1), 1);
        assert_eq!(r.mem_ports(1, MemLevel::L2), 1);
        assert_eq!(r.mem_ports(2, MemLevel::L2), 0);
        assert_eq!(r.total_alus(), 8);
        assert_eq!(r.l2_latency, 4);
    }
}
