//! The reservation-table view of an architecture, as consumed by the
//! list scheduler in `cfp-sched`.
//!
//! All hardware facts — latencies, pipelining, unit counts — live in the
//! embedded machine description ([`Mdes`], see [`crate::mdes`]); this
//! module keeps the flat per-cluster view the scheduler's cluster
//! assignment and register-pressure passes index directly, plus
//! convenience accessors that read the description.

use crate::arch::ArchSpec;
use crate::mdes::{Mdes, OpClass, UnitClass};

// Latency constants are declared by the machine description (the single
// source of truth); re-exported here for back-compatibility.
pub use crate::mdes::{ALU_LATENCY, BRANCH_LATENCY, L1_LATENCY, MUL_LATENCY};

/// Which memory level an access targets. Mirrors `cfp_ir::MemSpace`
/// without creating a dependency between the crates.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum MemLevel {
    /// Level-1 (global) memory.
    L1,
    /// Level-2 (local) memory.
    L2,
}

impl MemLevel {
    /// The op class of an access to this level.
    #[must_use]
    pub fn op_class(self) -> OpClass {
        match self {
            MemLevel::L1 => OpClass::MemL1,
            MemLevel::L2 => OpClass::MemL2,
        }
    }
}

/// One cluster's schedulable resources.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ClusterResources {
    /// ALU issue slots per cycle.
    pub alus: u32,
    /// How many of those slots accept a multiply.
    pub mul_capable: u32,
    /// Register-bank capacity.
    pub regs: u32,
    /// Level-1 memory ports attached here.
    pub l1_ports: u32,
    /// Level-2 memory ports attached here.
    pub l2_ports: u32,
    /// Whether the (single) branch unit lives here.
    pub has_branch: bool,
}

/// A whole machine, ready for scheduling.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MachineResources {
    /// Per-cluster resources; index = cluster id.
    pub clusters: Vec<ClusterResources>,
    /// Level-2 access latency (cycles).
    pub l2_latency: u32,
    /// The machine description everything else is derived from.
    pub mdes: Mdes,
}

impl MachineResources {
    /// Derive the resource tables from an architecture spec.
    #[must_use]
    pub fn from_spec(spec: &ArchSpec) -> Self {
        let clusters = spec
            .cluster_shapes()
            .map(|sh| ClusterResources {
                alus: sh.alus,
                mul_capable: sh.muls,
                regs: sh.regs,
                l1_ports: sh.l1_ports,
                l2_ports: sh.l2_ports,
                has_branch: sh.has_branch,
            })
            .collect();
        MachineResources {
            clusters,
            l2_latency: spec.l2_latency,
            mdes: Mdes::from_spec(spec),
        }
    }

    /// Number of clusters.
    #[must_use]
    pub fn cluster_count(&self) -> usize {
        self.clusters.len()
    }

    /// Result latency of an op class, from the machine description.
    #[must_use]
    pub fn latency(&self, class: OpClass) -> u32 {
        self.mdes.latency(class)
    }

    /// Reservation duration of one issue of `class` (1 when the unit
    /// pipelines, the full latency when it does not).
    #[must_use]
    pub fn reserved_cycles(&self, class: OpClass) -> u32 {
        self.mdes.reserved_cycles(class)
    }

    /// Latency of a memory access to the given level.
    #[must_use]
    pub fn mem_latency(&self, level: MemLevel) -> u32 {
        self.mdes.latency(level.op_class())
    }

    /// Memory ports of the given level on cluster `c`.
    ///
    /// # Panics
    /// Panics if `c` is out of range.
    #[must_use]
    pub fn mem_ports(&self, c: usize, level: MemLevel) -> u32 {
        match level {
            MemLevel::L1 => self.mdes.units(c, UnitClass::L1Port),
            MemLevel::L2 => self.mdes.units(c, UnitClass::L2Port),
        }
    }

    /// Total ALU slots across the machine (the VLIW issue width, minus
    /// memory and branch slots).
    #[must_use]
    pub fn total_alus(&self) -> u32 {
        self.mdes.total_units(UnitClass::Alu)
    }

    /// Whether *any* cluster can issue a multiply.
    #[must_use]
    pub fn can_multiply(&self) -> bool {
        self.mdes.total_units(UnitClass::Mul) > 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn baseline_resources() {
        let r = MachineResources::from_spec(&ArchSpec::baseline());
        assert_eq!(r.cluster_count(), 1);
        let c = &r.clusters[0];
        assert_eq!((c.alus, c.mul_capable, c.regs), (1, 1, 64));
        assert_eq!((c.l1_ports, c.l2_ports), (1, 1));
        assert!(c.has_branch);
        assert_eq!(r.mem_latency(MemLevel::L1), 3);
        assert_eq!(r.mem_latency(MemLevel::L2), 8);
        assert!(r.can_multiply());
    }

    #[test]
    fn clustered_resources_place_branch_and_ports() {
        let spec = ArchSpec::new(8, 2, 256, 1, 4, 4).unwrap();
        let r = MachineResources::from_spec(&spec);
        assert_eq!(r.cluster_count(), 4);
        assert!(r.clusters[0].has_branch);
        assert!(!r.clusters[1].has_branch);
        assert_eq!(r.mem_ports(0, MemLevel::L1), 1);
        assert_eq!(r.mem_ports(1, MemLevel::L2), 1);
        assert_eq!(r.mem_ports(2, MemLevel::L2), 0);
        assert_eq!(r.total_alus(), 8);
        assert_eq!(r.l2_latency, 4);
    }

    #[test]
    fn flat_view_agrees_with_the_description() {
        let spec = ArchSpec::new(16, 8, 512, 4, 2, 8).unwrap();
        let r = MachineResources::from_spec(&spec);
        for (j, cl) in r.clusters.iter().enumerate() {
            assert_eq!(cl.alus, r.mdes.units(j, UnitClass::Alu));
            assert_eq!(cl.mul_capable, r.mdes.units(j, UnitClass::Mul));
            assert_eq!(cl.l1_ports, r.mdes.units(j, UnitClass::L1Port));
            assert_eq!(cl.l2_ports, r.mdes.units(j, UnitClass::L2Port));
            assert_eq!(u32::from(cl.has_branch), r.mdes.units(j, UnitClass::Branch));
            assert_eq!(cl.regs, r.mdes.clusters()[j].regs);
        }
        assert_eq!(r.l2_latency, r.mdes.latency(OpClass::MemL2));
    }
}
