//! Architecture specifications and derived per-cluster quantities.

use std::error::Error;
use std::fmt;

/// One candidate VLIW architecture, named by the paper's 6-tuple
/// `(a m r p2 l2 c)`.
///
/// The template (paper Figure 2) is a multi-cluster machine of nearly
/// identical clusters, each with a local register bank and a slice of the
/// functional units, sharing a single long instruction word. The single
/// branch unit lives on cluster 0. Level-1 memory always has exactly one
/// port (3-cycle, non-pipelined); Level-2 has `l2_ports` ports at
/// `l2_latency` cycles (non-pipelined). Memory ports are distributed
/// round-robin over clusters, Level-1 first.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct ArchSpec {
    /// Total ALUs across all clusters (`a`).
    pub alus: u32,
    /// Total ALUs capable of integer multiply (`m`).
    pub muls: u32,
    /// Total registers across all clusters (`r`).
    pub regs: u32,
    /// Parallel accesses to Level-2 memory (`p2`).
    pub l2_ports: u32,
    /// Latency in cycles of a Level-2 access (`l2`).
    pub l2_latency: u32,
    /// Number of clusters (`c`).
    pub clusters: u32,
    /// Whether Level-2 ports accept a new access every cycle. The
    /// paper's space is entirely non-pipelined (`false`, the default);
    /// the extended axis ([`crate::DesignSpace::extended`]) flips this.
    /// Rendered as a `p` suffix on the `l2` field, e.g.
    /// `(8 4 256 2 8p 2)`, so non-pipelined specs keep their exact
    /// historical spelling (checkpoint fingerprints hash it).
    pub l2_pipelined: bool,
}

/// Why an [`ArchSpec`] is malformed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ArchError {
    /// Some count that must be at least 1 is 0.
    ZeroResource(&'static str),
    /// More IMUL-capable ALUs than ALUs.
    MulsExceedAlus,
    /// ALUs not evenly divisible among clusters.
    AlusNotDivisible,
    /// Registers not evenly divisible among clusters.
    RegsNotDivisible,
    /// More clusters than ALUs.
    TooManyClusters,
}

impl fmt::Display for ArchError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ArchError::ZeroResource(what) => write!(f, "{what} must be at least 1"),
            ArchError::MulsExceedAlus => write!(f, "more IMUL-capable ALUs than ALUs"),
            ArchError::AlusNotDivisible => write!(f, "ALUs not evenly divisible among clusters"),
            ArchError::RegsNotDivisible => {
                write!(f, "registers not evenly divisible among clusters")
            }
            ArchError::TooManyClusters => write!(f, "more clusters than ALUs"),
        }
    }
}

impl Error for ArchError {}

/// The per-cluster slice of an architecture.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ClusterShape {
    /// ALUs in this cluster.
    pub alus: u32,
    /// IMUL-capable ALUs in this cluster.
    pub muls: u32,
    /// Registers in this cluster's bank.
    pub regs: u32,
    /// Level-1 memory ports attached to this cluster (0 or 1).
    pub l1_ports: u32,
    /// Level-2 memory ports attached to this cluster.
    pub l2_ports: u32,
    /// Whether the branch unit lives here (cluster 0 only).
    pub has_branch: bool,
}

impl ClusterShape {
    /// Register-file ports for this cluster: `3` per ALU (two reads, one
    /// write) plus `2` per attached memory port (address read, data
    /// read/write).
    #[must_use]
    pub fn regfile_ports(&self) -> u32 {
        3 * self.alus + 2 * (self.l1_ports + self.l2_ports)
    }
}

impl ArchSpec {
    /// Build and validate a spec from the paper's 6-tuple order
    /// `(a, m, r, p2, l2, c)`.
    ///
    /// # Errors
    /// Returns an [`ArchError`] when the tuple does not describe a
    /// realizable clustered machine (see the variant docs).
    pub fn new(
        alus: u32,
        muls: u32,
        regs: u32,
        l2_ports: u32,
        l2_latency: u32,
        clusters: u32,
    ) -> Result<Self, ArchError> {
        let spec = ArchSpec {
            alus,
            muls,
            regs,
            l2_ports,
            l2_latency,
            clusters,
            l2_pipelined: false,
        };
        spec.validate()?;
        Ok(spec)
    }

    /// The same datapath with pipelined Level-2 ports: each port
    /// accepts a new access every cycle instead of staying busy for the
    /// full `l2_latency`. Only the derived machine description changes
    /// ([`crate::Mdes::from_spec`] reads this flag); nothing downstream
    /// special-cases it.
    #[must_use]
    pub fn with_pipelined_l2(mut self) -> Self {
        self.l2_pipelined = true;
        self
    }

    /// The paper's baseline system (§3.2): 1 IMUL-capable ALU, 64
    /// registers, one L1 reference and one 8-cycle L2 reference, one
    /// cluster. Costs exactly 1.0 and derates exactly 1.0 by definition.
    #[must_use]
    pub fn baseline() -> Self {
        ArchSpec {
            alus: 1,
            muls: 1,
            regs: 64,
            l2_ports: 1,
            l2_latency: 8,
            clusters: 1,
            l2_pipelined: false,
        }
    }

    /// Check the structural invariants.
    ///
    /// # Errors
    /// See [`ArchError`].
    pub fn validate(&self) -> Result<(), ArchError> {
        for (v, name) in [
            (self.alus, "alus"),
            (self.muls, "muls"),
            (self.regs, "regs"),
            (self.l2_ports, "l2_ports"),
            (self.l2_latency, "l2_latency"),
            (self.clusters, "clusters"),
        ] {
            if v == 0 {
                return Err(ArchError::ZeroResource(name));
            }
        }
        if self.muls > self.alus {
            return Err(ArchError::MulsExceedAlus);
        }
        if self.clusters > self.alus {
            return Err(ArchError::TooManyClusters);
        }
        if self.alus % self.clusters != 0 {
            return Err(ArchError::AlusNotDivisible);
        }
        if self.regs % self.clusters != 0 {
            return Err(ArchError::RegsNotDivisible);
        }
        Ok(())
    }

    /// Total memory ports (the fixed L1 port plus the L2 ports).
    #[must_use]
    pub fn total_mem_ports(&self) -> u32 {
        1 + self.l2_ports
    }

    /// The shape of cluster `j` (0-based).
    ///
    /// IMUL capability and memory ports are dealt round-robin: IMULs to
    /// clusters `0, 1, …, m-1 (mod c)`, memory ports (L1 first, then each
    /// L2 port) to clusters `0, 1, … (mod c)`.
    ///
    /// # Panics
    /// Panics if `j >= self.clusters`.
    #[must_use]
    pub fn cluster(&self, j: u32) -> ClusterShape {
        assert!(j < self.clusters, "cluster index out of range");
        let c = self.clusters;
        let deal = |total: u32| total / c + u32::from(j < total % c);
        let mem_total = self.total_mem_ports();
        let l1 = u32::from(j == 0); // L1 port is dealt first, to cluster 0
        let mem_here = deal(mem_total);
        ClusterShape {
            alus: self.alus / c,
            muls: deal(self.muls),
            regs: self.regs / c,
            l1_ports: l1.min(mem_here),
            l2_ports: mem_here - l1.min(mem_here),
            has_branch: j == 0,
        }
    }

    /// Iterate over all cluster shapes.
    pub fn cluster_shapes(&self) -> impl Iterator<Item = ClusterShape> + '_ {
        (0..self.clusters).map(|j| self.cluster(j))
    }

    /// The register-file port count that limits cycle time.
    ///
    /// Matches how the paper's Table 7 treats clustered machines: the
    /// per-cluster ALU slice plus the *total* memory-access requirement,
    /// `3·(a/c) + 2·(1 + p2)`.
    #[must_use]
    pub fn cycle_ports(&self) -> u32 {
        3 * (self.alus / self.clusters) + 2 * self.total_mem_ports()
    }

    /// Parse the paper's tuple syntax, e.g. `"(8 4 256 1 4 4)"`. A `p`
    /// suffix on the `l2` field (`"(8 4 256 1 4p 4)"`) marks pipelined
    /// Level-2 ports, matching [`ArchSpec`]'s `Display`.
    ///
    /// # Errors
    /// Returns `None`-like `Err` with a message when the string is not a
    /// 6-tuple of positive integers or the tuple fails validation.
    pub fn parse(s: &str) -> Result<Self, String> {
        let inner = s
            .trim()
            .strip_prefix('(')
            .and_then(|t| t.strip_suffix(')'))
            .ok_or_else(|| format!("expected (a m r p2 l2 c), got `{s}`"))?;
        let tokens: Vec<&str> = inner.split_whitespace().collect();
        if tokens.len() != 6 {
            return Err(format!("expected 6 fields, got {}", tokens.len()));
        }
        let l2_pipelined = tokens[4].ends_with('p');
        let num = |t: &str| {
            t.parse::<u32>()
                .map_err(|e| format!("bad number `{t}`: {e}"))
        };
        let l2_tok = if l2_pipelined {
            &tokens[4][..tokens[4].len() - 1]
        } else {
            tokens[4]
        };
        let spec = ArchSpec::new(
            num(tokens[0])?,
            num(tokens[1])?,
            num(tokens[2])?,
            num(tokens[3])?,
            num(l2_tok)?,
            num(tokens[5])?,
        )
        .map_err(|e| e.to_string())?;
        Ok(if l2_pipelined {
            spec.with_pipelined_l2()
        } else {
            spec
        })
    }
}

impl fmt::Display for ArchSpec {
    /// Formats in the paper's order: `(a m r p2 l2 c)`, with a `p`
    /// suffix on `l2` when the Level-2 ports pipeline. Non-pipelined
    /// specs render exactly as before the extended axis existed —
    /// checkpoint fingerprints hash these strings.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "({} {} {} {} {}{} {})",
            self.alus,
            self.muls,
            self.regs,
            self.l2_ports,
            self.l2_latency,
            if self.l2_pipelined { "p" } else { "" },
            self.clusters
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn baseline_is_valid() {
        assert_eq!(ArchSpec::baseline().validate(), Ok(()));
    }

    #[test]
    fn rejects_degenerate_specs() {
        assert_eq!(
            ArchSpec::new(0, 1, 64, 1, 8, 1),
            Err(ArchError::ZeroResource("alus"))
        );
        assert_eq!(
            ArchSpec::new(2, 3, 64, 1, 8, 1),
            Err(ArchError::MulsExceedAlus)
        );
        assert_eq!(
            ArchSpec::new(2, 1, 64, 1, 8, 4),
            Err(ArchError::TooManyClusters)
        );
        assert_eq!(
            ArchSpec::new(6, 1, 64, 1, 8, 4),
            Err(ArchError::AlusNotDivisible)
        );
        assert_eq!(
            ArchSpec::new(8, 1, 100, 1, 8, 8),
            Err(ArchError::RegsNotDivisible)
        );
    }

    #[test]
    fn cluster_dealing_round_robin() {
        let a = ArchSpec::new(8, 2, 256, 2, 4, 4).unwrap();
        // mem ports: L1 + 2×L2 = 3 total → clusters 0,1,2 get one each.
        let c0 = a.cluster(0);
        let c1 = a.cluster(1);
        let c2 = a.cluster(2);
        let c3 = a.cluster(3);
        assert_eq!((c0.l1_ports, c0.l2_ports), (1, 0));
        assert_eq!((c1.l1_ports, c1.l2_ports), (0, 1));
        assert_eq!((c2.l1_ports, c2.l2_ports), (0, 1));
        assert_eq!((c3.l1_ports, c3.l2_ports), (0, 0));
        // muls: 2 over 4 clusters → clusters 0,1.
        assert_eq!((c0.muls, c1.muls, c2.muls, c3.muls), (1, 1, 0, 0));
        assert!(c0.has_branch && !c1.has_branch);
        assert_eq!(c0.alus, 2);
        assert_eq!(c0.regs, 64);
    }

    #[test]
    fn totals_are_conserved() {
        for spec in [
            ArchSpec::baseline(),
            ArchSpec::new(16, 8, 512, 4, 2, 8).unwrap(),
            ArchSpec::new(8, 3, 256, 3, 4, 4).unwrap(),
        ] {
            let shapes: Vec<_> = spec.cluster_shapes().collect();
            assert_eq!(shapes.iter().map(|s| s.alus).sum::<u32>(), spec.alus);
            assert_eq!(shapes.iter().map(|s| s.muls).sum::<u32>(), spec.muls);
            assert_eq!(shapes.iter().map(|s| s.regs).sum::<u32>(), spec.regs);
            assert_eq!(
                shapes.iter().map(|s| s.l1_ports + s.l2_ports).sum::<u32>(),
                spec.total_mem_ports()
            );
            assert_eq!(shapes.iter().filter(|s| s.has_branch).count(), 1);
        }
    }

    #[test]
    fn regfile_ports_formula() {
        // Baseline: 3·1 + 2·(1 L1 + 1 L2) = 7 (the paper's p for the
        // baseline in Table 7's fit).
        let b = ArchSpec::baseline();
        assert_eq!(b.cluster(0).regfile_ports(), 7);
        assert_eq!(b.cycle_ports(), 7);
        // 16 ALUs, 1 cluster: 3·16 + 2·2 = 52.
        let big = ArchSpec::new(16, 8, 512, 1, 8, 1).unwrap();
        assert_eq!(big.cycle_ports(), 52);
    }

    #[test]
    fn display_and_parse_round_trip() {
        let a = ArchSpec::new(8, 4, 256, 1, 4, 4).unwrap();
        assert_eq!(a.to_string(), "(8 4 256 1 4 4)");
        assert_eq!(ArchSpec::parse("(8 4 256 1 4 4)").unwrap(), a);
        assert!(ArchSpec::parse("8 4 256").is_err());
        assert!(ArchSpec::parse("(8 4 256 1 4)").is_err());
        assert!(ArchSpec::parse("(0 4 256 1 4 4)").is_err());
        assert!(ArchSpec::parse("(8 x 256 1 4 4)").is_err());
    }

    #[test]
    fn pipelined_l2_round_trips_with_suffix() {
        let a = ArchSpec::new(8, 4, 256, 1, 4, 4)
            .unwrap()
            .with_pipelined_l2();
        assert_eq!(a.to_string(), "(8 4 256 1 4p 4)");
        assert_eq!(ArchSpec::parse("(8 4 256 1 4p 4)").unwrap(), a);
        assert_ne!(a, ArchSpec::new(8, 4, 256, 1, 4, 4).unwrap());
        assert!(ArchSpec::parse("(8 4 256 1 p 4)").is_err());
    }
}
