//! The design space the experiment searches exhaustively (paper §2.2/§2.4).
//!
//! Base points vary the resources the paper varies:
//!
//! * ALUs `a ∈ {1, 2, 4, 8, 16}`;
//! * IMUL-capable ALUs `m ∈ {max(1, a/4), max(1, a/2)}` (the paper allows
//!   between a quarter and a half of the ALUs, always at least one);
//! * registers `r ∈ {64, 128, 256, 512}` (total across clusters);
//! * Level-2 ports `p2 ∈ {1, 2, 4}` and latency `l2 ∈ {4, 8}`.
//!
//! That is 8 × 4 × 3 × 2 = 192 base points; the paper reports 191 and
//! never spells out its enumeration, so we carry a one-point discrepancy
//! (documented in `EXPERIMENTS.md`). For each base point the cluster
//! arrangements `c ∈ {1, 2, 4, 8, 16}` with `c ≤ a`, even resource
//! division, and at least 16 registers per cluster are evaluated, and the
//! best is kept — matching the paper's "after the best cluster
//! arrangement had been selected" (Figure 3).

use crate::arch::ArchSpec;

/// The enumerated space of candidate architectures.
#[derive(Debug, Clone)]
pub struct DesignSpace {
    base_points: Vec<ArchSpec>,
}

impl DesignSpace {
    /// The paper's space (see the module docs).
    // The enumerated tuples satisfy ArchSpec::new's invariants by
    // construction (c = 1 divides everything); a panic here would mean
    // the enumeration itself is wrong, which the in-module tests catch.
    #[allow(clippy::expect_used)]
    #[must_use]
    pub fn paper() -> Self {
        let mut base_points = Vec::new();
        for a in [1_u32, 2, 4, 8, 16] {
            let quarter = (a / 4).max(1);
            let half = (a / 2).max(1);
            // Explicit equality guard rather than adjacent `dedup()`:
            // dedup is order-dependent, so a future reorder of the
            // {a/4, a/2} candidates could silently reintroduce
            // duplicate base points.
            let ms = if quarter == half {
                vec![quarter]
            } else {
                vec![quarter, half]
            };
            for m in ms {
                for r in [64_u32, 128, 256, 512] {
                    for p2 in [1_u32, 2, 4] {
                        for l2 in [4_u32, 8] {
                            base_points.push(
                                ArchSpec::new(a, m, r, p2, l2, 1)
                                    .expect("enumerated base points are valid"),
                            );
                        }
                    }
                }
            }
        }
        DesignSpace { base_points }
    }

    /// The extended space: every paper base point twice, once with the
    /// historical non-pipelined Level-2 ports and once with pipelined
    /// ports ([`ArchSpec::with_pipelined_l2`]). Off by default — the
    /// paper sweep ([`DesignSpace::paper`]) is unchanged; `exhibits
    /// --extended` runs this space to ask whether pipelining the L2
    /// ports buys performance worth their cost.
    #[must_use]
    pub fn extended() -> Self {
        let paper = Self::paper();
        let mut base_points = paper.base_points.clone();
        base_points.extend(paper.base_points.iter().map(|s| s.with_pipelined_l2()));
        DesignSpace { base_points }
    }

    /// The base points (all with `clusters = 1`).
    #[must_use]
    pub fn base_points(&self) -> &[ArchSpec] {
        &self.base_points
    }

    /// Legal cluster counts for a base point.
    #[must_use]
    pub fn cluster_options(spec: &ArchSpec) -> Vec<u32> {
        [1_u32, 2, 4, 8, 16]
            .into_iter()
            .filter(|&c| {
                c <= spec.alus && spec.alus % c == 0 && spec.regs % c == 0 && spec.regs / c >= 16
            })
            .collect()
    }

    /// Every `(base point, cluster count)` combination, as full specs.
    #[must_use]
    pub fn all_arrangements(&self) -> Vec<ArchSpec> {
        let mut out = Vec::new();
        for base in &self.base_points {
            for c in Self::cluster_options(base) {
                let mut s = *base;
                s.clusters = c;
                debug_assert!(s.validate().is_ok());
                out.push(s);
            }
        }
        out
    }

    /// Number of base points.
    #[must_use]
    pub fn len(&self) -> usize {
        self.base_points.len()
    }

    /// Whether the space is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.base_points.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_space_has_192_base_points() {
        // One more than the paper's 191 (enumeration unspecified there).
        let s = DesignSpace::paper();
        assert_eq!(s.len(), 192);
    }

    #[test]
    fn base_points_are_unique_and_valid() {
        let s = DesignSpace::paper();
        let mut seen = std::collections::HashSet::new();
        for p in s.base_points() {
            assert!(p.validate().is_ok());
            assert!(seen.insert(*p), "duplicate {p}");
            assert!(p.muls >= 1 && p.muls <= p.alus.div_ceil(2));
        }
    }

    #[test]
    fn extended_space_doubles_the_paper_space() {
        let paper = DesignSpace::paper();
        let ext = DesignSpace::extended();
        assert_eq!(ext.len(), 2 * paper.len());
        let mut seen = std::collections::HashSet::new();
        for p in ext.base_points() {
            assert!(p.validate().is_ok());
            assert!(seen.insert(*p), "duplicate {p}");
        }
        assert_eq!(
            ext.base_points().iter().filter(|p| p.l2_pipelined).count(),
            paper.len()
        );
    }

    #[test]
    fn cluster_options_respect_constraints() {
        let a = ArchSpec::new(16, 8, 64, 1, 8, 1).unwrap();
        // 64 regs: at most 4 clusters (16 regs each).
        assert_eq!(DesignSpace::cluster_options(&a), vec![1, 2, 4]);
        let b = ArchSpec::new(1, 1, 512, 1, 8, 1).unwrap();
        assert_eq!(DesignSpace::cluster_options(&b), vec![1]);
        let c = ArchSpec::new(16, 8, 512, 1, 8, 1).unwrap();
        assert_eq!(DesignSpace::cluster_options(&c), vec![1, 2, 4, 8, 16]);
    }

    #[test]
    fn arrangements_are_valid_and_cover_base_points() {
        let s = DesignSpace::paper();
        let all = s.all_arrangements();
        assert!(all.len() > s.len());
        for a in &all {
            assert!(a.validate().is_ok());
        }
        // Every base point appears with clusters = 1.
        let ones = all.iter().filter(|a| a.clusters == 1).count();
        assert_eq!(ones, s.len());
    }
}
