//! # cfp-machine — the clustered-VLIW machine model
//!
//! Everything the paper calls "the architecture" lives here:
//!
//! * [`ArchSpec`] — the 6-tuple `(a m r p2 l2 c)` the paper uses to name
//!   an architecture: total ALUs, IMUL-capable ALUs, total registers,
//!   Level-2 memory ports, Level-2 latency, and cluster count — plus the
//!   derived per-cluster quantities (register-file ports, port placement);
//! * [`CostModel`] — the datapath-area cost
//!   `COST = Σ_clusters Xdp(p)·(Yreg(r,p) + Yalu(a) + Ymul(m))`,
//!   with fitting constants calibrated against the paper's Table 6;
//! * [`CycleModel`] — the cycle-time derating factor, quadratic in the
//!   register-file ports, calibrated against the paper's Table 7;
//! * [`calibrate`] — the least-squares machinery that derives those
//!   constants from the published tables (the paper fitted its constants
//!   "from observation of existing designs"; the designs we can observe
//!   are the table rows the paper printed);
//! * [`DesignSpace`] — the exhaustive enumeration of candidate
//!   architectures searched by the experiment (the paper's 191-point
//!   space, §2.4), plus the pipelined-L2 extended space;
//! * [`Mdes`] — the declarative machine description (op-class table,
//!   unit table, reservation model) derived from an [`ArchSpec`]; the
//!   single source of truth every downstream consumer reads;
//! * [`MachineResources`] — the reservation-table view of an architecture
//!   consumed by the `cfp-sched` list scheduler, wrapping an [`Mdes`].
//!
//! ```
//! use cfp_machine::{ArchSpec, CostModel, CycleModel};
//!
//! let arch = ArchSpec::new(8, 4, 256, 1, 4, 4).unwrap();
//! let cost = CostModel::paper_calibrated();
//! let cycle = CycleModel::paper_calibrated();
//! assert!(cost.cost(&arch) > 1.0);
//! assert!(cycle.derate(&arch) >= 1.0);
//! assert_eq!(arch.to_string(), "(8 4 256 1 4 4)");
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]
// The machine model is library code for a long-running sweep: fallible
// paths must return typed errors, not panic. Justified exceptions
// (static tables validated by tests, fits over fixed grids) carry a
// local `#[allow]` with a comment.
#![cfg_attr(not(test), warn(clippy::unwrap_used, clippy::expect_used))]

pub mod arch;
pub mod calibrate;
pub mod cost;
pub mod cycle;
pub mod mdes;
pub mod paper;
pub mod resources;
pub mod signature;
pub mod space;

pub use arch::{ArchError, ArchSpec, ClusterShape};
pub use cost::CostModel;
pub use cycle::CycleModel;
pub use mdes::{ClusterUnits, Mdes, OpClass, OpDesc, UnitClass};
pub use resources::{
    ClusterResources, MachineResources, MemLevel, ALU_LATENCY, BRANCH_LATENCY, L1_LATENCY,
    MUL_LATENCY,
};
pub use signature::SchedSignature;
pub use space::DesignSpace;
