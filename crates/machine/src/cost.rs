//! The datapath-area cost model (paper §3.3).
//!
//! ```text
//! COST = Σ over clusters of  Xdp(p) · (Yreg(r', p) + Yalu(a') + Ymul(m'))
//!        + k6 · (clusters − 1)          // inter-cluster interconnect
//!
//! Xdp(p)      = k1·p          (datapath width; k1 folds into the scale)
//! Yreg(r', p) = r'·(k2·p + k3) (register-file height)
//! Yalu(a')    = k4·a'          (ALU height)
//! Ymul(m')    = k5·m'          (multiplier height)
//! p           = 3·a' + 2·l'    (register-file ports of the cluster)
//! ```
//!
//! Costs are reported relative to the baseline architecture, which costs
//! exactly 1.0. The interconnect term is our one structural addition to
//! the printed formula — see [`crate::calibrate`] for why it is needed
//! and how the constants are fit to the paper's Table 6.

use crate::arch::ArchSpec;
use crate::calibrate;
use std::sync::OnceLock;

/// Computes architecture cost in baseline-relative units.
#[derive(Debug, Clone, PartialEq)]
pub struct CostModel {
    k2: f64,
    k3: f64,
    k4: f64,
    k5: f64,
    k6: f64,
    baseline_raw: f64,
}

impl CostModel {
    /// Build a model from raw coefficients (`k1` is normalized away: the
    /// model always reports cost relative to [`ArchSpec::baseline`]).
    #[must_use]
    pub fn from_coefficients(k2: f64, k3: f64, k4: f64, k5: f64, k6: f64) -> Self {
        let mut m = CostModel {
            k2,
            k3,
            k4,
            k5,
            k6,
            baseline_raw: 1.0,
        };
        m.baseline_raw = m.raw_cost(&ArchSpec::baseline());
        m
    }

    /// The model calibrated against the paper's Table 6 (cached; the fit
    /// runs once per process).
    #[must_use]
    pub fn paper_calibrated() -> Self {
        static CACHE: OnceLock<CostModel> = OnceLock::new();
        CACHE.get_or_init(calibrate::fit_cost_model).clone()
    }

    /// The raw (un-normalized) cost, computed from the per-cluster
    /// shapes the machine description itself is derived from (the same
    /// counts the scheduler sees through [`crate::Mdes`]). Reading the
    /// shapes directly keeps this allocation-free — a
    /// [`crate::Mdes::from_spec`] materializes its unit table on the
    /// heap, and scoring a large design space calls this once per point.
    #[must_use]
    pub fn raw_cost(&self, spec: &ArchSpec) -> f64 {
        // The coefficient loads are hoisted into locals so the cluster
        // loop reads no `self` field (the batch entry point below runs
        // this same body back to back over a whole slice of specs).
        let (k2, k3, k4, k5) = (self.k2, self.k3, self.k4, self.k5);
        let mut total = 0.0;
        for sh in spec.cluster_shapes() {
            let p = f64::from(sh.regfile_ports());
            let y_reg = f64::from(sh.regs) * (k2 * p + k3);
            let y_alu = k4 * f64::from(sh.alus);
            let y_mul = k5 * f64::from(sh.muls);
            total += p * (y_reg + y_alu + y_mul);
        }
        total + self.k6 * f64::from(spec.clusters - 1)
    }

    /// Cost relative to the baseline (the unit of Tables 6 and 8–10).
    #[must_use]
    pub fn cost(&self, spec: &ArchSpec) -> f64 {
        self.raw_cost(spec) / self.baseline_raw
    }

    /// Batch scoring: the cost of every spec in `specs`, written to the
    /// matching slot of `out`. One linear pass with the coefficients
    /// resident; each slot is bit-identical to [`CostModel::cost`] of
    /// that spec (same operations in the same order — the batch form
    /// only amortizes the call overhead and keeps the loop vectorizable).
    ///
    /// # Panics
    /// Panics if the slices disagree in length.
    pub fn cost_batch(&self, specs: &[ArchSpec], out: &mut [f64]) {
        assert_eq!(specs.len(), out.len(), "cost_batch slice lengths differ");
        let base = self.baseline_raw;
        for (spec, slot) in specs.iter().zip(out.iter_mut()) {
            *slot = self.raw_cost(spec) / base;
        }
    }

    /// The fitted coefficients `(k2, k3, k4, k5, k6)`.
    #[must_use]
    pub fn coefficients(&self) -> (f64, f64, f64, f64, f64) {
        (self.k2, self.k3, self.k4, self.k5, self.k6)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spec(a: u32, m: u32, r: u32, p2: u32, c: u32) -> ArchSpec {
        ArchSpec::new(a, m, r, p2, 8, c).unwrap()
    }

    #[test]
    fn baseline_costs_one() {
        let model = CostModel::paper_calibrated();
        assert!((model.cost(&ArchSpec::baseline()) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn cost_is_monotone_in_each_resource() {
        let model = CostModel::paper_calibrated();
        let base = spec(4, 2, 128, 1, 2);
        let c0 = model.cost(&base);
        assert!(model.cost(&spec(8, 2, 128, 1, 2)) > c0, "more ALUs");
        assert!(model.cost(&spec(4, 4, 128, 1, 2)) > c0, "more MULs");
        assert!(model.cost(&spec(4, 2, 256, 1, 2)) > c0, "more registers");
        assert!(model.cost(&spec(4, 2, 128, 2, 2)) > c0, "more L2 ports");
    }

    #[test]
    fn clustering_cuts_cost_of_big_machines() {
        // The core Table 6 phenomenon: splitting a big register file into
        // clusters slashes area (ports enter quadratically).
        let model = CostModel::paper_calibrated();
        let mono = model.cost(&spec(16, 8, 512, 1, 1));
        let quad = model.cost(&spec(16, 8, 512, 1, 4));
        assert!(quad < mono / 3.0, "mono {mono:.1} vs 4-cluster {quad:.1}");
    }

    #[test]
    fn coefficients_are_physical() {
        let (k2, k3, k4, k5, k6) = CostModel::paper_calibrated().coefficients();
        assert!(k2 > 0.0);
        assert!(k3 >= 1e-3, "register height floor");
        assert!(k4 > 0.0);
        assert!((k5 - 3.0 * k4).abs() < 1e-12, "mul pinned at 3 ALU heights");
        assert!(k6 > 0.0);
    }

    #[test]
    fn batch_costs_are_bit_identical_to_scalar() {
        let model = CostModel::paper_calibrated();
        let specs: Vec<ArchSpec> = crate::DesignSpace::extended()
            .all_arrangements()
            .into_iter()
            .step_by(13)
            .collect();
        let mut out = vec![0.0; specs.len()];
        model.cost_batch(&specs, &mut out);
        for (s, &got) in specs.iter().zip(&out) {
            assert_eq!(got.to_bits(), model.cost(s).to_bits(), "{s}");
        }
    }

    #[test]
    #[should_panic(expected = "slice lengths differ")]
    fn batch_cost_rejects_mismatched_slices() {
        let model = CostModel::paper_calibrated();
        model.cost_batch(&[ArchSpec::baseline()], &mut []);
    }

    #[test]
    fn cost_range_matches_paper_claim() {
        // "The costs range from 1.0 … to about 100 for the most ambitious
        // architectures (16 ALUs, 8 MULs, 512 registers, 4 memory ports,
        // 1 cluster)."
        let model = CostModel::paper_calibrated();
        let ambitious = spec(16, 8, 512, 4, 1);
        let c = model.cost(&ambitious);
        assert!(c > 60.0 && c < 160.0, "got {c:.1}");
    }
}
