//! Property tests for the machine model: conservation, validation
//! totality, parse/display round-trips, and model sanity over the whole
//! enumerable parameter lattice (not just the curated design space).

use cfp_machine::{ArchSpec, CostModel, CycleModel, DesignSpace, MachineResources};
use cfp_testkit::{cases, Rng};

fn any_field(rng: &mut Rng) -> (u32, u32, u32, u32, u32, u32) {
    (
        rng.range_u32(1..=16), // alus (any value, not just powers of two)
        rng.range_u32(1..=16), // muls
        rng.range_u32(16..=512),
        rng.range_u32(1..=4),
        rng.range_u32(1..=8),
        rng.range_u32(1..=16),
    )
}

/// `ArchSpec::new` never panics, and accepted specs satisfy every
/// structural invariant.
#[test]
fn validation_is_total_and_sound() {
    cases(0xa2c4_0001, 256, |rng| {
        let (a, m, r, p2, l2, c) = any_field(rng);
        match ArchSpec::new(a, m, r, p2, l2, c) {
            Ok(spec) => {
                assert!(spec.muls <= spec.alus);
                assert!(spec.clusters <= spec.alus);
                assert_eq!(spec.alus % spec.clusters, 0);
                assert_eq!(spec.regs % spec.clusters, 0);

                // Conservation across cluster shapes.
                let shapes: Vec<_> = spec.cluster_shapes().collect();
                assert_eq!(shapes.iter().map(|s| s.alus).sum::<u32>(), spec.alus);
                assert_eq!(shapes.iter().map(|s| s.muls).sum::<u32>(), spec.muls);
                assert_eq!(shapes.iter().map(|s| s.regs).sum::<u32>(), spec.regs);
                assert_eq!(
                    shapes.iter().map(|s| s.l1_ports + s.l2_ports).sum::<u32>(),
                    spec.total_mem_ports()
                );
                assert_eq!(shapes.iter().filter(|s| s.has_branch).count(), 1);
                assert_eq!(shapes.iter().map(|s| s.l1_ports).sum::<u32>(), 1);

                // Round-robin dealing differs by at most one across clusters.
                let mem_counts: Vec<u32> = shapes.iter().map(|s| s.l1_ports + s.l2_ports).collect();
                let (mn, mx) = (
                    *mem_counts.iter().min().unwrap(),
                    *mem_counts.iter().max().unwrap(),
                );
                assert!(mx - mn <= 1);

                // Display/parse round trip.
                let text = spec.to_string();
                assert_eq!(ArchSpec::parse(&text).unwrap(), spec);

                // Resources mirror the shapes.
                let res = MachineResources::from_spec(&spec);
                assert_eq!(res.cluster_count(), spec.clusters as usize);
                assert_eq!(res.total_alus(), spec.alus);
                assert!(res.can_multiply());
            }
            Err(_) => {
                // Rejected specs really do break an invariant.
                let broken = m > a || c > a || a % c != 0 || r % c != 0;
                assert!(broken, "({a} {m} {r} {p2} {l2} {c}) rejected spuriously");
            }
        }
    });
}

/// Models are finite, positive, and baseline-normalized for every
/// valid spec.
#[test]
fn models_are_sane_everywhere() {
    cases(0xa2c4_0002, 256, |rng| {
        let (a, m, r, p2, l2, c) = any_field(rng);
        if let Ok(spec) = ArchSpec::new(a, m, r, p2, l2, c) {
            let cost = CostModel::paper_calibrated().cost(&spec);
            let derate = CycleModel::paper_calibrated().derate(&spec);
            assert!(cost.is_finite() && cost > 0.0);
            assert!(derate.is_finite() && derate > 0.5);
            // Nothing is cheaper than the baseline by more than rounding:
            // the baseline is the minimal machine of the space.
            if spec.alus >= 1 && spec.regs >= 64 && spec.l2_ports >= 1 {
                assert!(cost > 0.5, "{spec}: {cost}");
            }
        }
    });
}

#[test]
fn the_paper_space_is_fully_valid_and_priced() {
    let cost = CostModel::paper_calibrated();
    let cycle = CycleModel::paper_calibrated();
    let space = DesignSpace::paper();
    let all = space.all_arrangements();
    assert!(all.len() > 500, "{}", all.len());
    for spec in &all {
        assert!(spec.validate().is_ok(), "{spec}");
        let c = cost.cost(spec);
        let d = cycle.derate(spec);
        assert!((0.9..200.0).contains(&c), "{spec}: cost {c}");
        assert!((0.9..10.0).contains(&d), "{spec}: derate {d}");
    }
    // The paper's claim: costs range from 1.0 to about 100.
    let max = all
        .iter()
        .map(|s| cost.cost(s))
        .fold(f64::NEG_INFINITY, f64::max);
    assert!(max > 60.0 && max < 160.0, "max cost {max:.1}");
}
