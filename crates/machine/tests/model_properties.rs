//! Property tests for the machine model: conservation, validation
//! totality, parse/display round-trips, and model sanity over the whole
//! enumerable parameter lattice (not just the curated design space).

use cfp_machine::{ArchSpec, CostModel, CycleModel, DesignSpace, MachineResources};
use proptest::prelude::*;

fn any_field() -> impl Strategy<Value = (u32, u32, u32, u32, u32, u32)> {
    (
        1_u32..=16,  // alus (any value, not just powers of two)
        1_u32..=16,  // muls
        16_u32..=512,
        1_u32..=4,
        1_u32..=8,
        1_u32..=16,
    )
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 256, ..ProptestConfig::default() })]

    /// `ArchSpec::new` never panics, and accepted specs satisfy every
    /// structural invariant.
    #[test]
    fn validation_is_total_and_sound((a, m, r, p2, l2, c) in any_field()) {
        match ArchSpec::new(a, m, r, p2, l2, c) {
            Ok(spec) => {
                prop_assert!(spec.muls <= spec.alus);
                prop_assert!(spec.clusters <= spec.alus);
                prop_assert_eq!(spec.alus % spec.clusters, 0);
                prop_assert_eq!(spec.regs % spec.clusters, 0);

                // Conservation across cluster shapes.
                let shapes: Vec<_> = spec.cluster_shapes().collect();
                prop_assert_eq!(shapes.iter().map(|s| s.alus).sum::<u32>(), spec.alus);
                prop_assert_eq!(shapes.iter().map(|s| s.muls).sum::<u32>(), spec.muls);
                prop_assert_eq!(shapes.iter().map(|s| s.regs).sum::<u32>(), spec.regs);
                prop_assert_eq!(
                    shapes.iter().map(|s| s.l1_ports + s.l2_ports).sum::<u32>(),
                    spec.total_mem_ports()
                );
                prop_assert_eq!(shapes.iter().filter(|s| s.has_branch).count(), 1);
                prop_assert_eq!(shapes.iter().map(|s| s.l1_ports).sum::<u32>(), 1);

                // Round-robin dealing differs by at most one across clusters.
                let mem_counts: Vec<u32> =
                    shapes.iter().map(|s| s.l1_ports + s.l2_ports).collect();
                let (mn, mx) = (
                    *mem_counts.iter().min().unwrap(),
                    *mem_counts.iter().max().unwrap(),
                );
                prop_assert!(mx - mn <= 1);

                // Display/parse round trip.
                let text = spec.to_string();
                prop_assert_eq!(ArchSpec::parse(&text).unwrap(), spec);

                // Resources mirror the shapes.
                let res = MachineResources::from_spec(&spec);
                prop_assert_eq!(res.cluster_count(), spec.clusters as usize);
                prop_assert_eq!(res.total_alus(), spec.alus);
                prop_assert!(res.can_multiply());
            }
            Err(_) => {
                // Rejected specs really do break an invariant.
                let broken = m > a || c > a || a % c != 0 || r % c != 0;
                prop_assert!(broken, "({a} {m} {r} {p2} {l2} {c}) rejected spuriously");
            }
        }
    }

    /// Models are finite, positive, and baseline-normalized for every
    /// valid spec.
    #[test]
    fn models_are_sane_everywhere((a, m, r, p2, l2, c) in any_field()) {
        if let Ok(spec) = ArchSpec::new(a, m, r, p2, l2, c) {
            let cost = CostModel::paper_calibrated().cost(&spec);
            let derate = CycleModel::paper_calibrated().derate(&spec);
            prop_assert!(cost.is_finite() && cost > 0.0);
            prop_assert!(derate.is_finite() && derate > 0.5);
            // Nothing is cheaper than the baseline by more than rounding:
            // the baseline is the minimal machine of the space.
            if spec.alus >= 1 && spec.regs >= 64 && spec.l2_ports >= 1 {
                prop_assert!(cost > 0.5, "{spec}: {cost}");
            }
        }
    }
}

#[test]
fn the_paper_space_is_fully_valid_and_priced() {
    let cost = CostModel::paper_calibrated();
    let cycle = CycleModel::paper_calibrated();
    let space = DesignSpace::paper();
    let all = space.all_arrangements();
    assert!(all.len() > 500, "{}", all.len());
    for spec in &all {
        assert!(spec.validate().is_ok(), "{spec}");
        let c = cost.cost(spec);
        let d = cycle.derate(spec);
        assert!((0.9..200.0).contains(&c), "{spec}: cost {c}");
        assert!((0.9..10.0).contains(&d), "{spec}: derate {d}");
    }
    // The paper's claim: costs range from 1.0 to about 100.
    let max = all
        .iter()
        .map(|s| cost.cost(s))
        .fold(f64::NEG_INFINITY, f64::max);
    assert!(max > 60.0 && max < 160.0, "max cost {max:.1}");
}
