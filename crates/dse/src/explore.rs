//! The exhaustive exploration loop (paper §2.2/§2.4).
//!
//! "Using some search method, search for a new candidate architecture;
//! measure the cost; build a version of our compiler that generates good
//! code for that architecture; generate the code; measure the goodness of
//! the code; repeat until satisfied." The paper searched exhaustively;
//! so do we, over every `(base point, cluster arrangement)` of the
//! [`cfp_machine::DesignSpace`], in parallel worker threads, with full
//! per-cluster scheduling instead of the paper's clustering correction
//! factor.

use crate::eval::{evaluate, EvalOutcome, PlanCache, UNROLL_SWEEP};
use cfp_kernels::Benchmark;
use cfp_machine::{ArchSpec, CostModel, CycleModel, DesignSpace};
use std::time::{Duration, Instant};

/// What to explore.
#[derive(Debug, Clone)]
pub struct ExploreConfig {
    /// Candidate architectures (all cluster arrangements, clusters set).
    pub archs: Vec<ArchSpec>,
    /// Benchmarks to evaluate.
    pub benches: Vec<Benchmark>,
    /// Worker threads.
    pub threads: usize,
}

impl ExploreConfig {
    /// The paper's full experiment: every arrangement of the 192-point
    /// space, the ten table benchmarks.
    #[must_use]
    pub fn paper() -> Self {
        ExploreConfig {
            archs: DesignSpace::paper().all_arrangements(),
            benches: Benchmark::TABLE_COLUMNS.to_vec(),
            threads: std::thread::available_parallelism().map_or(1, |n| n.get()),
        }
    }

    /// A reduced configuration for tests and quick demos: a handful of
    /// representative architectures and benchmarks.
    #[must_use]
    pub fn smoke() -> Self {
        let specs = [
            (1, 1, 64, 1, 8, 1),
            (2, 1, 64, 1, 4, 1),
            (4, 2, 128, 1, 4, 1),
            (4, 2, 256, 1, 4, 4),
            (8, 2, 128, 1, 4, 4),
            (8, 4, 256, 2, 4, 2),
            (16, 4, 128, 1, 4, 8),
        ];
        ExploreConfig {
            archs: specs
                .into_iter()
                .map(|(a, m, r, p2, l2, c)| {
                    ArchSpec::new(a, m, r, p2, l2, c).expect("smoke specs are valid")
                })
                .collect(),
            benches: vec![Benchmark::A, Benchmark::D, Benchmark::F, Benchmark::H],
            threads: std::thread::available_parallelism().map_or(1, |n| n.get()),
        }
    }
}

/// Bookkeeping in the spirit of the paper's Table 3.
#[derive(Debug, Clone, Copy, Default)]
pub struct RunStats {
    /// Benchmark compilations performed (the paper ran 5730).
    pub compilations: u64,
    /// Architectures evaluated (the paper had 191 base points).
    pub architectures: usize,
    /// Wall-clock time of the exploration.
    pub wall: Duration,
}

/// One evaluated architecture.
#[derive(Debug, Clone)]
pub struct ArchEval {
    /// The architecture.
    pub spec: ArchSpec,
    /// Baseline-relative datapath cost.
    pub cost: f64,
    /// Cycle-time derating factor.
    pub derate: f64,
    /// Per-benchmark outcomes (aligned with the exploration's benches).
    pub outcomes: Vec<EvalOutcome>,
}

/// The complete result of an exploration.
#[derive(Debug, Clone)]
pub struct Exploration {
    /// Benchmarks, column order.
    pub benches: Vec<Benchmark>,
    /// All evaluated architectures.
    pub archs: Vec<ArchEval>,
    /// The baseline evaluation (speedup denominator).
    pub baseline: ArchEval,
    /// Run bookkeeping.
    pub stats: RunStats,
}

impl Exploration {
    /// Run the codesign loop.
    ///
    /// # Panics
    /// Panics if `config.archs` or `config.benches` is empty.
    #[must_use]
    pub fn run(config: &ExploreConfig) -> Self {
        assert!(!config.archs.is_empty() && !config.benches.is_empty());
        let start = Instant::now();
        let cost = CostModel::paper_calibrated();
        let cycle = CycleModel::paper_calibrated();

        let mut reg_sizes: Vec<u32> = config.archs.iter().map(|a| a.regs).collect();
        reg_sizes.push(ArchSpec::baseline().regs);
        let cache = PlanCache::build(&config.benches, &reg_sizes, &UNROLL_SWEEP);

        // Progress reporting for minutes-long sweeps, opt-in via the
        // CFP_PROGRESS environment variable (kept out of ExploreConfig so
        // existing literals stay valid).
        let progress = std::env::var_os("CFP_PROGRESS").is_some();
        let done = std::sync::atomic::AtomicUsize::new(0);
        let total = config.archs.len();
        let eval_one = |spec: &ArchSpec| -> ArchEval {
            let out = ArchEval {
                spec: *spec,
                cost: cost.cost(spec),
                derate: cycle.derate(spec),
                outcomes: config
                    .benches
                    .iter()
                    .map(|&b| evaluate(spec, b, &cache))
                    .collect(),
            };
            if progress {
                let n = done.fetch_add(1, std::sync::atomic::Ordering::Relaxed) + 1;
                if n % 50 == 0 || n == total {
                    eprintln!("  evaluated {n}/{total} architectures");
                }
            }
            out
        };

        let baseline = eval_one(&ArchSpec::baseline());
        done.store(0, std::sync::atomic::Ordering::Relaxed); // don't count the baseline

        let threads = config.threads.max(1);
        let archs: Vec<ArchEval> = if threads == 1 {
            config.archs.iter().map(eval_one).collect()
        } else {
            let mut slots: Vec<Option<ArchEval>> = vec![None; config.archs.len()];
            let next = std::sync::atomic::AtomicUsize::new(0);
            std::thread::scope(|scope| {
                let mut handles = Vec::new();
                for _ in 0..threads {
                    let next = &next;
                    let specs = &config.archs;
                    let eval_one = &eval_one;
                    handles.push(scope.spawn(move || {
                        let mut mine = Vec::new();
                        loop {
                            let i = next.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                            if i >= specs.len() {
                                return mine;
                            }
                            mine.push((i, eval_one(&specs[i])));
                        }
                    }));
                }
                for h in handles {
                    for (i, e) in h.join().expect("worker panicked") {
                        slots[i] = Some(e);
                    }
                }
            });
            slots.into_iter().map(|s| s.expect("all filled")).collect()
        };

        let compilations: u64 = archs
            .iter()
            .flat_map(|a| &a.outcomes)
            .map(|o| u64::from(o.compilations))
            .sum::<u64>()
            + baseline
                .outcomes
                .iter()
                .map(|o| u64::from(o.compilations))
                .sum::<u64>();

        Exploration {
            benches: config.benches.clone(),
            stats: RunStats {
                compilations,
                architectures: archs.len(),
                wall: start.elapsed(),
            },
            archs,
            baseline,
        }
    }

    /// Speedup of architecture `a` on benchmark column `b`: baseline time
    /// per output over this architecture's time per output (cycle-time
    /// derate included, exactly like the paper's "Speedup").
    #[must_use]
    pub fn speedup(&self, a: usize, b: usize) -> f64 {
        let base = self.baseline.outcomes[b].cycles_per_output; // derate 1.0
        let arch = &self.archs[a];
        base / (arch.outcomes[b].cycles_per_output * arch.derate)
    }

    /// All speedups of one architecture, column order.
    #[must_use]
    pub fn speedup_row(&self, a: usize) -> Vec<f64> {
        (0..self.benches.len()).map(|b| self.speedup(a, b)).collect()
    }

    /// Column index of a benchmark.
    #[must_use]
    pub fn bench_index(&self, b: Benchmark) -> Option<usize> {
        self.benches.iter().position(|&x| x == b)
    }

    /// Harmonic mean of a speedup row — the paper's `su` column, which
    /// orders architectures by total running time across the suite.
    #[must_use]
    pub fn harmonic_mean(speedups: &[f64]) -> f64 {
        let s: f64 = speedups.iter().map(|&v| 1.0 / v).sum();
        speedups.len() as f64 / s
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn smoke_exploration_is_sane() {
        let mut cfg = ExploreConfig::smoke();
        cfg.benches = vec![Benchmark::D, Benchmark::G];
        let ex = Exploration::run(&cfg);
        assert_eq!(ex.archs.len(), cfg.archs.len());
        assert!(ex.stats.compilations > 0);
        // Baseline evaluated against itself gives speedup 1.0.
        let base_idx = ex
            .archs
            .iter()
            .position(|a| a.spec == ArchSpec::baseline())
            .expect("smoke space includes the baseline");
        for b in 0..ex.benches.len() {
            let su = ex.speedup(base_idx, b);
            assert!((su - 1.0).abs() < 1e-9, "baseline speedup {su}");
        }
        // Every bigger machine is at least as fast in cycles (speedups
        // can still dip below 1 from the cycle-time derate).
        for a in 0..ex.archs.len() {
            for b in 0..ex.benches.len() {
                assert!(ex.speedup(a, b) > 0.05, "arch {a} bench {b}");
            }
        }
    }

    #[test]
    fn harmonic_mean_matches_hand_value() {
        let hm = Exploration::harmonic_mean(&[1.0, 2.0, 4.0]);
        assert!((hm - 3.0 / (1.0 + 0.5 + 0.25)).abs() < 1e-12);
    }

    #[test]
    fn deterministic_across_runs() {
        let mut cfg = ExploreConfig::smoke();
        cfg.benches = vec![Benchmark::D];
        cfg.archs.truncate(3);
        let e1 = Exploration::run(&cfg);
        let e2 = Exploration::run(&cfg);
        for a in 0..e1.archs.len() {
            assert_eq!(e1.speedup_row(a), e2.speedup_row(a));
        }
    }
}
