//! The exhaustive exploration loop (paper §2.2/§2.4).
//!
//! "Using some search method, search for a new candidate architecture;
//! measure the cost; build a version of our compiler that generates good
//! code for that architecture; generate the code; measure the goodness of
//! the code; repeat until satisfied." The paper searched exhaustively;
//! so do we, over every `(base point, cluster arrangement)` of the
//! [`cfp_machine::DesignSpace`], in parallel worker threads, with full
//! per-cluster scheduling instead of the paper's clustering correction
//! factor.
//!
//! The sweep is fault-tolerant: each `(architecture, benchmark)` unit is
//! evaluated behind a panic boundary, and a unit that panics, exhausts
//! its [`ExploreConfig::fuel`] budget, or reports a typed error is
//! quarantined as [`EvalOutcome::Failed`] while the rest of the sweep
//! completes. [`RunStats::failed_units`] reports the degraded coverage.
//! With [`ExploreConfig::checkpoint`] set, completed units are journaled
//! to disk and an interrupted run resumes bit-identically.

use crate::checkpoint::{self, Checkpoint};
use crate::error::{ExploreError, FailKind, FailReason};
use crate::eval::{
    try_evaluate_cached_traced_in, try_evaluate_traced_in, EvalOutcome, EvalScratch, PlanCache,
    PlanStore, UNROLL_SWEEP,
};
use crate::memo::CompileCache;
use cfp_kernels::Benchmark;
use cfp_machine::{ArchSpec, CostModel, CycleModel, DesignSpace};
use cfp_obs::{Recorder, Stage, UnitTrace, Value};
use cfp_testkit::FaultInjector;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{Mutex, PoisonError};
use std::time::{Duration, Instant};

/// What to explore.
#[derive(Debug, Clone)]
pub struct ExploreConfig {
    /// Candidate architectures (all cluster arrangements, clusters set).
    pub archs: Vec<ArchSpec>,
    /// Benchmarks to evaluate.
    pub benches: Vec<Benchmark>,
    /// Worker threads.
    pub threads: usize,
    /// Print coarse progress to stderr during the sweep. The
    /// `CFP_PROGRESS` environment variable also enables this, as an
    /// override for canned configurations.
    pub progress: bool,
    /// Share compile work across architectures with equal scheduling
    /// signatures (on by default; results are identical either way —
    /// disabling is only useful for measuring what the reuse saves).
    pub reuse: bool,
    /// Per-compilation scheduler step budget. A compilation over budget
    /// fails with a typed error instead of monopolizing a worker; the
    /// unit is quarantined (at unroll 1) or the unroll sweep truncated
    /// (deeper). Budgets count deterministic scheduler steps, never
    /// wall-clock, so budgeted results are identical on every platform
    /// and thread count. `None` (the default) never exhausts.
    pub fuel: Option<u64>,
    /// Journal completed units to disk as the sweep runs, and optionally
    /// resume an interrupted run. See [`Checkpoint`].
    pub checkpoint: Option<Checkpoint>,
    /// Deterministic fault injection for robustness tests: the injector
    /// panics on a seed-determined subset of unit indices, exercising
    /// the quarantine exactly where [`FaultInjector::tripped_among`]
    /// predicts. Production runs leave this `None`.
    pub fault: Option<FaultInjector>,
}

impl Default for ExploreConfig {
    /// An empty space with production defaults: all cores, reuse on, no
    /// fuel budget, no checkpoint, no fault injection. Start from this
    /// (`..ExploreConfig::default()`) so configurations keep compiling
    /// as robustness knobs are added.
    fn default() -> Self {
        ExploreConfig {
            archs: Vec::new(),
            benches: Vec::new(),
            threads: std::thread::available_parallelism().map_or(1, |n| n.get()),
            progress: false,
            reuse: true,
            fuel: None,
            checkpoint: None,
            fault: None,
        }
    }
}

impl ExploreConfig {
    /// The paper's full experiment: every arrangement of the 192-point
    /// space, the ten table benchmarks.
    #[must_use]
    pub fn paper() -> Self {
        ExploreConfig {
            archs: DesignSpace::paper().all_arrangements(),
            benches: Benchmark::TABLE_COLUMNS.to_vec(),
            ..ExploreConfig::default()
        }
    }

    /// A reduced configuration for tests and quick demos: a handful of
    /// representative architectures and benchmarks.
    #[must_use]
    // Justified expect: the spec table below is constant and covered by
    // every test that calls `smoke`; a typo fails immediately, loudly.
    #[allow(clippy::expect_used)]
    pub fn smoke() -> Self {
        let specs = [
            (1, 1, 64, 1, 8, 1),
            (2, 1, 64, 1, 4, 1),
            (4, 2, 128, 1, 4, 1),
            (4, 2, 256, 1, 4, 4),
            (8, 2, 128, 1, 4, 4),
            (8, 4, 256, 2, 4, 2),
            (16, 4, 128, 1, 4, 8),
        ];
        ExploreConfig {
            archs: specs
                .into_iter()
                .map(|(a, m, r, p2, l2, c)| {
                    ArchSpec::new(a, m, r, p2, l2, c).expect("smoke specs are valid")
                })
                .collect(),
            benches: vec![Benchmark::A, Benchmark::D, Benchmark::F, Benchmark::H],
            ..ExploreConfig::default()
        }
    }
}

/// Bookkeeping in the spirit of the paper's Table 3, extended with the
/// compile-reuse accounting: `compilations` counts *logical*
/// compilations (what the paper would have run), while the cache fields
/// say how many of those were served without scheduling anything.
#[derive(Debug, Clone, Copy, Default)]
pub struct RunStats {
    /// Logical benchmark compilations performed (the paper ran 5730).
    pub compilations: u64,
    /// Logical compilations answered from the compile cache (0 when
    /// reuse is disabled).
    pub cache_hits: u64,
    /// Distinct `(plan, scheduling signature)` schedules actually
    /// computed (0 when reuse is disabled).
    pub unique_schedules: u64,
    /// Content-distinct optimized kernels behind the plan cache.
    pub unique_plans: usize,
    /// Architectures evaluated (the paper had 191 base points).
    pub architectures: usize,
    /// `(architecture, benchmark)` units quarantined instead of measured
    /// — panics caught at the unit boundary, typed evaluation errors,
    /// and fuel exhaustion. 0 on a healthy run.
    pub failed_units: u64,
    /// The subset of `failed_units` that failed by exhausting the
    /// [`ExploreConfig::fuel`] budget.
    pub fuel_exhausted: u64,
    /// Units replayed from the checkpoint journal instead of evaluated.
    pub resumed_units: u64,
    /// Modulo-scheduler II values attempted. The exhaustive sweep
    /// list-schedules every unit (the paper's loop-barrier compiler
    /// line), so [`Exploration::try_run`] always reports 0 here;
    /// software-pipelining ablation drivers sum
    /// [`cfp_sched::ModuloSchedule::ii_attempts`] into this slot so the
    /// Table 3 exhibit can show what the II-skip search saves.
    pub ii_attempts: u64,
    /// Time spent optimizing/unrolling plans (the plan-cache build).
    pub plan_wall: Duration,
    /// Time spent in the evaluation sweep proper.
    pub eval_wall: Duration,
    /// Wall-clock time of the whole exploration.
    pub wall: Duration,
}

/// One evaluated architecture.
#[derive(Debug, Clone)]
pub struct ArchEval {
    /// The architecture.
    pub spec: ArchSpec,
    /// Baseline-relative datapath cost.
    pub cost: f64,
    /// Cycle-time derating factor.
    pub derate: f64,
    /// Per-benchmark outcomes (aligned with the exploration's benches).
    pub outcomes: Vec<EvalOutcome>,
}

/// The complete result of an exploration.
#[derive(Debug, Clone)]
pub struct Exploration {
    /// Benchmarks, column order.
    pub benches: Vec<Benchmark>,
    /// All evaluated architectures.
    pub archs: Vec<ArchEval>,
    /// The baseline evaluation (speedup denominator).
    pub baseline: ArchEval,
    /// Run bookkeeping.
    pub stats: RunStats,
}

/// Emit the `unit` summary span for one evaluated pair. The formatted
/// architecture string is built only when the trace is live, so the
/// [`cfp_obs::NullRecorder`] path stays allocation-free.
fn unit_span(
    trace: &mut UnitTrace<'_>,
    t0: u64,
    spec: &ArchSpec,
    bench: Benchmark,
    out: &EvalOutcome,
    baseline: bool,
) {
    if !trace.on() {
        return;
    }
    let arch = spec.to_string();
    match out {
        EvalOutcome::Done(m) => trace.stage(
            Stage::Unit,
            t0,
            &[
                ("arch", Value::Str(&arch)),
                ("bench", Value::Str(bench.letter())),
                ("baseline", Value::Bool(baseline)),
                ("outcome", Value::Str("done")),
                ("unroll", Value::U64(u64::from(m.unroll))),
                ("spilled", Value::Bool(m.spilled)),
                ("cpo", Value::F64(m.cycles_per_output)),
                ("compilations", Value::U64(u64::from(m.compilations))),
            ],
        ),
        EvalOutcome::Failed { reason } => trace.stage(
            Stage::Unit,
            t0,
            &[
                ("arch", Value::Str(&arch)),
                ("bench", Value::Str(bench.letter())),
                ("baseline", Value::Bool(baseline)),
                ("outcome", Value::Str("failed")),
                ("fail", Value::Str(reason.kind.token())),
            ],
        ),
    }
}

impl Exploration {
    /// Run the codesign loop.
    ///
    /// # Panics
    /// Panics where [`Self::try_run`] would return an error (empty
    /// configuration, failed baseline, unusable checkpoint journal).
    /// Individual quarantined units never panic this.
    #[must_use]
    pub fn run(config: &ExploreConfig) -> Self {
        match Self::try_run(config) {
            Ok(ex) => ex,
            Err(e) => panic!("exploration failed: {e}"),
        }
    }

    /// Run the codesign loop, with run-level failures as values.
    ///
    /// Unit-level failures do **not** end up here: a panicking,
    /// over-budget, or erroring `(architecture, benchmark)` unit is
    /// caught at the unit boundary, quarantined as
    /// [`EvalOutcome::Failed`], counted in [`RunStats::failed_units`],
    /// and the sweep keeps going. Only conditions that invalidate the
    /// whole run — nothing to explore, a baseline that cannot be
    /// measured (every speedup divides by it), a checkpoint journal
    /// that cannot be read or belongs to a different configuration —
    /// abort with an [`ExploreError`].
    ///
    /// # Errors
    /// See above.
    pub fn try_run(config: &ExploreConfig) -> Result<Self, ExploreError> {
        Self::try_run_traced(config, &cfp_obs::NULL)
    }

    /// [`Self::try_run`] emitting structured spans into `rec`: the plan
    /// build, every stage of every compilation, and one `unit` summary
    /// span per `(architecture, benchmark)` pair (and per baseline
    /// unit) carrying the outcome, chosen unroll, spill status, and —
    /// on failure — the quarantine kind. With the [`cfp_obs::NULL`]
    /// recorder this is exactly [`Self::try_run`]: same results, same
    /// fuel verdicts, same checkpoint fingerprint, and no allocation on
    /// the sweep's steady-state path.
    ///
    /// Units resumed from a checkpoint journal are replayed, not
    /// evaluated, so they emit no spans.
    ///
    /// # Errors
    /// As [`Self::try_run`].
    pub fn try_run_traced(
        config: &ExploreConfig,
        rec: &dyn Recorder,
    ) -> Result<Self, ExploreError> {
        if config.archs.is_empty() || config.benches.is_empty() {
            return Err(ExploreError::EmptyConfig);
        }
        let start = Instant::now();
        let mut reg_sizes: Vec<u32> = config.archs.iter().map(|a| a.regs).collect();
        reg_sizes.push(ArchSpec::baseline().regs);
        let cache = PlanCache::build_traced(
            &config.benches,
            &reg_sizes,
            &UNROLL_SWEEP,
            &mut UnitTrace::new(rec, cfp_obs::unit::PLAN),
        );
        let plan_wall = start.elapsed();
        let memo = config.reuse.then(CompileCache::new);
        Self::run_prepared(config, rec, &cache, memo.as_ref(), start, plan_wall)
    }

    /// [`Self::try_run_traced`] against caches that outlive the run —
    /// the exploration service's entry point. Plans come from (and new
    /// plans are added to) the shared [`PlanStore`]; compile results are
    /// shared through the caller's [`CompileCache`], so a job whose
    /// `(plan, scheduling signature)` pairs were already scheduled by an
    /// earlier job pays only the capacity checks. Results are
    /// bit-identical to [`Self::try_run_traced`] on the same config: a
    /// warm cache changes who computes, never what is computed (the
    /// fuel discipline in [`crate::eval::try_evaluate_cached`] is what
    /// makes that hold).
    ///
    /// [`RunStats::cache_hits`] and [`RunStats::unique_schedules`]
    /// report this run's delta against the shared cache's counters. The
    /// delta is exact when jobs run one at a time; concurrent jobs on
    /// one cache attribute each other's hits approximately (counters
    /// are global), which the service accepts — the numbers steer
    /// reporting, not results. With [`ExploreConfig::reuse`] off the
    /// shared cache is bypassed (plans still come from the store).
    ///
    /// # Errors
    /// As [`Self::try_run`].
    pub fn try_run_shared(
        config: &ExploreConfig,
        store: &PlanStore,
        memo: &CompileCache,
        rec: &dyn Recorder,
    ) -> Result<Self, ExploreError> {
        if config.archs.is_empty() || config.benches.is_empty() {
            return Err(ExploreError::EmptyConfig);
        }
        let start = Instant::now();
        let mut reg_sizes: Vec<u32> = config.archs.iter().map(|a| a.regs).collect();
        reg_sizes.push(ArchSpec::baseline().regs);
        let cache = store.ensure_snapshot(&config.benches, &reg_sizes, &UNROLL_SWEEP);
        let plan_wall = start.elapsed();
        Self::run_prepared(
            config,
            rec,
            &cache,
            config.reuse.then_some(memo),
            start,
            plan_wall,
        )
    }

    /// The sweep proper, over an already-built plan cache: baseline,
    /// checkpoint attach/replay, the quarantined worker loop, and stats
    /// assembly. Cache counters are reported as deltas from entry so a
    /// shared, pre-warmed `memo` yields per-run numbers.
    fn run_prepared(
        config: &ExploreConfig,
        rec: &dyn Recorder,
        cache: &PlanCache,
        memo: Option<&CompileCache>,
        start: Instant,
        plan_wall: Duration,
    ) -> Result<Self, ExploreError> {
        let cost = CostModel::paper_calibrated();
        let cycle = CycleModel::paper_calibrated();
        let hits0 = memo.map_or(0, CompileCache::core_hits);
        let cores0 = memo.map_or(0, |m| m.unique_cores() as u64);

        let progress = config.progress || std::env::var_os("CFP_PROGRESS").is_some();
        let nb = config.benches.len();
        let units = config.archs.len() * nb;
        let done = AtomicUsize::new(0);

        // The quarantine boundary: evaluate one pair, converting panics
        // and typed errors into `EvalOutcome::Failed` instead of letting
        // them take down the worker (and with it the whole sweep).
        // `AssertUnwindSafe` is sound here: the shared state crossing the
        // boundary is the plan cache (read-only), the compile memo,
        // whose shards hold only completed values (computes run outside
        // the shard locks) and recover from poisoning explicitly, and
        // the worker's own scratch arena — every scratch consumer
        // resizes and clears its buffers on entry, so a panic mid-unit
        // leaves at worst stale data the next unit overwrites.
        let quarantined = |spec: &ArchSpec,
                           bench: Benchmark,
                           fault_unit: Option<u64>,
                           sc: &mut EvalScratch,
                           trace: &mut UnitTrace<'_>| {
            let t0 = trace.start();
            let result = catch_unwind(AssertUnwindSafe(|| {
                if let (Some(injector), Some(u)) = (&config.fault, fault_unit) {
                    injector.fire(u);
                }
                match memo {
                    Some(memo) => try_evaluate_cached_traced_in(
                        spec,
                        bench,
                        cache,
                        memo,
                        config.fuel,
                        sc,
                        trace,
                    ),
                    None => try_evaluate_traced_in(spec, bench, cache, config.fuel, sc, trace),
                }
            }));
            let out = match result {
                Ok(Ok(m)) => EvalOutcome::Done(m),
                Ok(Err(e)) => EvalOutcome::Failed { reason: e.into() },
                Err(payload) => EvalOutcome::Failed {
                    reason: FailReason::from_panic(payload.as_ref()),
                },
            };
            unit_span(trace, t0, spec, bench, &out, fault_unit.is_none());
            out
        };

        // One work unit per (architecture, benchmark) pair: much finer
        // grains than whole architectures, so a few slow deep-unroll
        // evaluations cannot leave most worker threads idle at the tail
        // of the sweep. The scratch is the worker's: units on one thread
        // reuse its buffers back to back.
        let eval_unit = |i: usize, sc: &mut EvalScratch| -> EvalOutcome {
            let spec = &config.archs[i / nb];
            let bench = config.benches[i % nb];
            let mut trace = UnitTrace::new(rec, cfp_obs::unit::sweep(i));
            let out = quarantined(spec, bench, Some(i as u64), sc, &mut trace);
            if progress {
                let n = done.fetch_add(1, Ordering::Relaxed) + 1;
                if n % 200 == 0 || n == units {
                    eprintln!("  evaluated {n}/{units} (architecture, benchmark) pairs");
                }
            }
            out
        };

        // The baseline is the denominator of every speedup; fault
        // injection is keyed off unit indices and never hits it, but a
        // fuel budget small enough to starve it fails the run.
        let baseline_spec = ArchSpec::baseline();
        let mut scratch = EvalScratch::new();
        let mut baseline_outcomes = Vec::with_capacity(nb);
        for (bi, &b) in config.benches.iter().enumerate() {
            let mut trace = UnitTrace::new(rec, cfp_obs::unit::baseline(bi));
            match quarantined(&baseline_spec, b, None, &mut scratch, &mut trace) {
                EvalOutcome::Done(m) => baseline_outcomes.push(EvalOutcome::Done(m)),
                EvalOutcome::Failed { reason } => return Err(ExploreError::BaselineFailed(reason)),
            }
        }
        let baseline = ArchEval {
            spec: baseline_spec,
            cost: cost.cost(&baseline_spec),
            derate: cycle.derate(&baseline_spec),
            outcomes: baseline_outcomes,
        };

        // Checkpoint: load completed units (resume) and open the journal.
        let fingerprint = checkpoint::fingerprint(config);
        let mut slots: Vec<Option<EvalOutcome>> = vec![None; units];
        let mut resumed_units = 0_u64;
        let journal = match &config.checkpoint {
            Some(ck) => {
                let (journal, entries) = checkpoint::attach(ck, fingerprint, units)?;
                for (i, outcome) in entries {
                    slots[i] = Some(outcome);
                    resumed_units += 1;
                }
                Some(Mutex::new(journal))
            }
            None => None,
        };
        let journal_err: Mutex<Option<crate::error::CheckpointError>> = Mutex::new(None);
        // Journal one fresh unit; false tells the workers to wind down
        // (measuring on while the journal is lost would betray a resumed
        // run's bit-identity promise silently).
        let record = |i: usize, out: &EvalOutcome| -> bool {
            let Some(journal) = &journal else { return true };
            let result = journal
                .lock()
                .unwrap_or_else(PoisonError::into_inner)
                .append(i, out);
            match result {
                Ok(()) => true,
                Err(e) => {
                    journal_err
                        .lock()
                        .unwrap_or_else(PoisonError::into_inner)
                        .get_or_insert(e);
                    false
                }
            }
        };

        let eval_start = Instant::now();
        let threads = config.threads.max(1);
        if threads == 1 {
            for (i, slot) in slots.iter_mut().enumerate() {
                if slot.is_some() {
                    continue;
                }
                let out = eval_unit(i, &mut scratch);
                let ok = record(i, &out);
                *slot = Some(out);
                if !ok {
                    break;
                }
            }
        } else {
            let skip: Vec<bool> = slots.iter().map(Option::is_some).collect();
            let next = AtomicUsize::new(0);
            let stop = AtomicBool::new(false);
            let fresh = std::thread::scope(|scope| {
                let mut handles = Vec::new();
                for _ in 0..threads {
                    let (next, stop, skip) = (&next, &stop, &skip);
                    let (eval_unit, record) = (&eval_unit, &record);
                    handles.push(scope.spawn(move || {
                        let mut scratch = EvalScratch::new();
                        let mut mine = Vec::new();
                        loop {
                            if stop.load(Ordering::Relaxed) {
                                return mine;
                            }
                            let i = next.fetch_add(1, Ordering::Relaxed);
                            if i >= units {
                                return mine;
                            }
                            if skip[i] {
                                continue;
                            }
                            let out = eval_unit(i, &mut scratch);
                            let ok = record(i, &out);
                            mine.push((i, out));
                            if !ok {
                                stop.store(true, Ordering::Relaxed);
                                return mine;
                            }
                        }
                    }));
                }
                handles
                    .into_iter()
                    .map(|h| h.join().map_err(|_| ExploreError::WorkerLost))
                    .collect::<Result<Vec<_>, _>>()
            })?;
            for (i, out) in fresh.into_iter().flatten() {
                slots[i] = Some(out);
            }
        }
        if let Some(e) = journal_err
            .into_inner()
            .unwrap_or_else(PoisonError::into_inner)
        {
            return Err(e.into());
        }
        let outcomes: Vec<EvalOutcome> = slots
            .into_iter()
            .collect::<Option<Vec<_>>>()
            .ok_or(ExploreError::WorkerLost)?;
        let eval_wall = eval_start.elapsed();

        // Cost and derate are filled by the models' batch entry points —
        // two linear passes over the spec column, bit-identical to
        // per-spec `cost()`/`derate()` calls.
        let mut costs = vec![0.0; config.archs.len()];
        let mut derates = vec![0.0; config.archs.len()];
        cost.cost_batch(&config.archs, &mut costs);
        cycle.derate_batch(&config.archs, &mut derates);
        let archs: Vec<ArchEval> = config
            .archs
            .iter()
            .enumerate()
            .map(|(a, spec)| ArchEval {
                spec: *spec,
                cost: costs[a],
                derate: derates[a],
                outcomes: outcomes[a * nb..(a + 1) * nb].to_vec(),
            })
            .collect();

        let all = || archs.iter().flat_map(|a| &a.outcomes);
        let compilations: u64 = all()
            .chain(&baseline.outcomes)
            .map(|o| u64::from(o.compilations()))
            .sum();
        let failed_units = all().filter(|o| !o.is_done()).count() as u64;
        let fuel_exhausted = all()
            .filter(|o| {
                o.failure()
                    .is_some_and(|r| r.kind == FailKind::FuelExhausted)
            })
            .count() as u64;

        Ok(Exploration {
            benches: config.benches.clone(),
            stats: RunStats {
                compilations,
                cache_hits: memo.map_or(0, |m| m.core_hits().saturating_sub(hits0)),
                unique_schedules: memo
                    .map_or(0, |m| (m.unique_cores() as u64).saturating_sub(cores0)),
                unique_plans: cache.unique_kernels(),
                architectures: archs.len(),
                failed_units,
                fuel_exhausted,
                resumed_units,
                // The sweep is the paper's loop-barrier line: no modulo
                // scheduling runs here. Ablation drivers fill this in.
                ii_attempts: 0,
                plan_wall,
                eval_wall,
                wall: start.elapsed(),
            },
            archs,
            baseline,
        })
    }

    /// Speedup of architecture `a` on benchmark column `b`: baseline time
    /// per output over this architecture's time per output (cycle-time
    /// derate included, exactly like the paper's "Speedup"). NaN when
    /// the unit was quarantined — missing data stays visibly missing,
    /// and the analysis layers exclude such pairs from every ranking.
    #[must_use]
    pub fn speedup(&self, a: usize, b: usize) -> f64 {
        let base = self.baseline.outcomes[b].cycles_per_output(); // derate 1.0
        let arch = &self.archs[a];
        base / (arch.outcomes[b].cycles_per_output() * arch.derate)
    }

    /// All speedups of one architecture, column order.
    #[must_use]
    pub fn speedup_row(&self, a: usize) -> Vec<f64> {
        (0..self.benches.len())
            .map(|b| self.speedup(a, b))
            .collect()
    }

    /// Column index of a benchmark.
    #[must_use]
    pub fn bench_index(&self, b: Benchmark) -> Option<usize> {
        self.benches.iter().position(|&x| x == b)
    }

    /// Harmonic mean of a speedup row — the paper's `su` column, which
    /// orders architectures by total running time across the suite.
    /// NaN if any entry is NaN (a quarantined unit poisons the row's
    /// mean, which is what makes failed rows lose every selection).
    #[must_use]
    pub fn harmonic_mean(speedups: &[f64]) -> f64 {
        let s: f64 = speedups.iter().map(|&v| 1.0 / v).sum();
        speedups.len() as f64 / s
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn smoke_exploration_is_sane() {
        let mut cfg = ExploreConfig::smoke();
        cfg.benches = vec![Benchmark::D, Benchmark::G];
        let ex = Exploration::run(&cfg);
        assert_eq!(ex.archs.len(), cfg.archs.len());
        assert!(ex.stats.compilations > 0);
        // A healthy run quarantines nothing.
        assert_eq!(ex.stats.failed_units, 0);
        assert_eq!(ex.stats.fuel_exhausted, 0);
        assert_eq!(ex.stats.resumed_units, 0);
        // Reuse is on by default, and the smoke space repeats signatures
        // (and register sizes), so the cache must have absorbed work.
        // Every logical compilation is a hit or a compute; computes can
        // exceed the unique count only by benign duplicate races.
        assert!(ex.stats.cache_hits > 0);
        assert!(ex.stats.unique_schedules > 0);
        assert!(ex.stats.unique_plans > 0);
        assert!(ex.stats.cache_hits + ex.stats.unique_schedules <= ex.stats.compilations);
        // Baseline evaluated against itself gives speedup 1.0.
        let base_idx = ex
            .archs
            .iter()
            .position(|a| a.spec == ArchSpec::baseline())
            .expect("smoke space includes the baseline");
        for b in 0..ex.benches.len() {
            let su = ex.speedup(base_idx, b);
            assert!((su - 1.0).abs() < 1e-9, "baseline speedup {su}");
        }
        // Every bigger machine is at least as fast in cycles (speedups
        // can still dip below 1 from the cycle-time derate).
        for a in 0..ex.archs.len() {
            for b in 0..ex.benches.len() {
                assert!(ex.speedup(a, b) > 0.05, "arch {a} bench {b}");
            }
        }
    }

    #[test]
    fn harmonic_mean_matches_hand_value() {
        let hm = Exploration::harmonic_mean(&[1.0, 2.0, 4.0]);
        assert!((hm - 3.0 / (1.0 + 0.5 + 0.25)).abs() < 1e-12);
    }

    #[test]
    fn deterministic_across_runs() {
        let mut cfg = ExploreConfig::smoke();
        cfg.benches = vec![Benchmark::D];
        cfg.archs.truncate(3);
        let e1 = Exploration::run(&cfg);
        let e2 = Exploration::run(&cfg);
        for a in 0..e1.archs.len() {
            assert_eq!(e1.speedup_row(a), e2.speedup_row(a));
        }
    }

    #[test]
    fn empty_configurations_are_typed_errors() {
        let err = Exploration::try_run(&ExploreConfig::default()).expect_err("empty");
        assert!(matches!(err, ExploreError::EmptyConfig));
        let err = Exploration::try_run_shared(
            &ExploreConfig::default(),
            &PlanStore::new(),
            &CompileCache::new(),
            &cfp_obs::NULL,
        )
        .expect_err("empty");
        assert!(matches!(err, ExploreError::EmptyConfig));
    }

    #[test]
    fn shared_cache_runs_are_bit_identical_to_cold_runs() {
        // The service contract: the same job against a cold per-run
        // cache, a cold shared cache, and a warm shared cache produces
        // identical results — warmth changes accounting, never answers.
        let mut cfg = ExploreConfig::smoke();
        cfg.benches = vec![Benchmark::D, Benchmark::G];
        cfg.threads = 2;
        let cold = Exploration::run(&cfg);
        let store = PlanStore::new();
        let memo = CompileCache::new();
        let first =
            Exploration::try_run_shared(&cfg, &store, &memo, &cfp_obs::NULL).expect("shared run");
        let second = Exploration::try_run_shared(&cfg, &store, &memo, &cfp_obs::NULL)
            .expect("warm shared run");
        for ((a, b), c) in cold.archs.iter().zip(&first.archs).zip(&second.archs) {
            assert_eq!(a.outcomes, b.outcomes, "cold vs shared ({})", a.spec);
            assert_eq!(a.outcomes, c.outcomes, "cold vs warm ({})", a.spec);
            assert_eq!((a.cost, a.derate), (b.cost, b.derate));
        }
        assert_eq!(cold.baseline.outcomes, second.baseline.outcomes);
        // The warm run scheduled nothing new: every logical compilation
        // was a hit, and the run-delta of unique schedules is zero.
        assert_eq!(second.stats.unique_schedules, 0);
        assert!(second.stats.cache_hits > 0);
        assert_eq!(second.stats.compilations, first.stats.compilations);
        // The plan store served the second run's plans from memory.
        assert!(store.plan_hits() > 0);
    }

    #[test]
    fn shared_runs_stay_identical_under_an_evicting_memo() {
        // A service cache bounded far below the working set still never
        // changes an answer — eviction costs recomputes only.
        let mut cfg = ExploreConfig::smoke();
        cfg.archs.truncate(4);
        cfg.benches = vec![Benchmark::D];
        cfg.threads = 1;
        let cold = Exploration::run(&cfg);
        let store = PlanStore::new();
        let tiny = CompileCache::bounded(1);
        for round in 0..2 {
            let ex = Exploration::try_run_shared(&cfg, &store, &tiny, &cfp_obs::NULL)
                .expect("shared run");
            for (a, b) in cold.archs.iter().zip(&ex.archs) {
                assert_eq!(a.outcomes, b.outcomes, "round {round} ({})", a.spec);
            }
        }
        assert!(tiny.core_evictions() > 0, "1-slot shards must evict");
    }

    #[test]
    fn a_starving_fuel_budget_fails_the_baseline_not_the_process() {
        let mut cfg = ExploreConfig::smoke();
        cfg.archs.truncate(2);
        cfg.benches = vec![Benchmark::D];
        cfg.fuel = Some(1); // not even one scheduler scan
        let err = Exploration::try_run(&cfg).expect_err("baseline starves");
        assert!(matches!(err, ExploreError::BaselineFailed(_)), "{err}");
    }

    #[test]
    fn a_tight_fuel_budget_quarantines_units_deterministically() {
        let mut cfg = ExploreConfig::smoke();
        cfg.benches = vec![Benchmark::D, Benchmark::G];
        // Wide enough for the baseline and the small machines, too tight
        // for some deep-unroll compilations on the big ones. Chosen so
        // the run exercises both outcomes; exact coverage is asserted
        // deterministic below, not pinned to a count.
        cfg.fuel = Some(2_000);
        let e1 = Exploration::run(&cfg);
        let e2 = Exploration::run(&cfg);
        for (a1, a2) in e1.archs.iter().zip(&e2.archs) {
            assert_eq!(a1.outcomes, a2.outcomes, "budgeted runs are identical");
        }
        // And identical with reuse off: the cache charges cached cores'
        // recorded step costs, so budget verdicts cannot depend on
        // sharing or interleaving.
        let mut no_reuse = cfg.clone();
        no_reuse.reuse = false;
        let e3 = Exploration::run(&no_reuse);
        for (a1, a3) in e1.archs.iter().zip(&e3.archs) {
            assert_eq!(a1.outcomes, a3.outcomes, "reuse must not change verdicts");
        }
        // Failed units (if any at this budget) are counted and typed.
        let failed = e1
            .archs
            .iter()
            .flat_map(|a| &a.outcomes)
            .filter(|o| !o.is_done())
            .count() as u64;
        assert_eq!(e1.stats.failed_units, failed);
        assert!(e1.stats.fuel_exhausted <= e1.stats.failed_units);
    }
}
