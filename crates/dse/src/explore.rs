//! The exhaustive exploration loop (paper §2.2/§2.4).
//!
//! "Using some search method, search for a new candidate architecture;
//! measure the cost; build a version of our compiler that generates good
//! code for that architecture; generate the code; measure the goodness of
//! the code; repeat until satisfied." The paper searched exhaustively;
//! so do we, over every `(base point, cluster arrangement)` of the
//! [`cfp_machine::DesignSpace`], in parallel worker threads, with full
//! per-cluster scheduling instead of the paper's clustering correction
//! factor.

use crate::eval::{evaluate, evaluate_cached, EvalOutcome, PlanCache, UNROLL_SWEEP};
use crate::memo::CompileCache;
use cfp_kernels::Benchmark;
use cfp_machine::{ArchSpec, CostModel, CycleModel, DesignSpace};
use std::time::{Duration, Instant};

/// What to explore.
#[derive(Debug, Clone)]
pub struct ExploreConfig {
    /// Candidate architectures (all cluster arrangements, clusters set).
    pub archs: Vec<ArchSpec>,
    /// Benchmarks to evaluate.
    pub benches: Vec<Benchmark>,
    /// Worker threads.
    pub threads: usize,
    /// Print coarse progress to stderr during the sweep. The
    /// `CFP_PROGRESS` environment variable also enables this, as an
    /// override for canned configurations.
    pub progress: bool,
    /// Share compile work across architectures with equal scheduling
    /// signatures (on by default; results are identical either way —
    /// disabling is only useful for measuring what the reuse saves).
    pub reuse: bool,
}

impl ExploreConfig {
    /// The paper's full experiment: every arrangement of the 192-point
    /// space, the ten table benchmarks.
    #[must_use]
    pub fn paper() -> Self {
        ExploreConfig {
            archs: DesignSpace::paper().all_arrangements(),
            benches: Benchmark::TABLE_COLUMNS.to_vec(),
            threads: std::thread::available_parallelism().map_or(1, |n| n.get()),
            progress: false,
            reuse: true,
        }
    }

    /// A reduced configuration for tests and quick demos: a handful of
    /// representative architectures and benchmarks.
    #[must_use]
    pub fn smoke() -> Self {
        let specs = [
            (1, 1, 64, 1, 8, 1),
            (2, 1, 64, 1, 4, 1),
            (4, 2, 128, 1, 4, 1),
            (4, 2, 256, 1, 4, 4),
            (8, 2, 128, 1, 4, 4),
            (8, 4, 256, 2, 4, 2),
            (16, 4, 128, 1, 4, 8),
        ];
        ExploreConfig {
            archs: specs
                .into_iter()
                .map(|(a, m, r, p2, l2, c)| {
                    ArchSpec::new(a, m, r, p2, l2, c).expect("smoke specs are valid")
                })
                .collect(),
            benches: vec![Benchmark::A, Benchmark::D, Benchmark::F, Benchmark::H],
            threads: std::thread::available_parallelism().map_or(1, |n| n.get()),
            progress: false,
            reuse: true,
        }
    }
}

/// Bookkeeping in the spirit of the paper's Table 3, extended with the
/// compile-reuse accounting: `compilations` counts *logical*
/// compilations (what the paper would have run), while the cache fields
/// say how many of those were served without scheduling anything.
#[derive(Debug, Clone, Copy, Default)]
pub struct RunStats {
    /// Logical benchmark compilations performed (the paper ran 5730).
    pub compilations: u64,
    /// Logical compilations answered from the compile cache (0 when
    /// reuse is disabled).
    pub cache_hits: u64,
    /// Distinct `(plan, scheduling signature)` schedules actually
    /// computed (0 when reuse is disabled).
    pub unique_schedules: u64,
    /// Content-distinct optimized kernels behind the plan cache.
    pub unique_plans: usize,
    /// Architectures evaluated (the paper had 191 base points).
    pub architectures: usize,
    /// Time spent optimizing/unrolling plans (the plan-cache build).
    pub plan_wall: Duration,
    /// Time spent in the evaluation sweep proper.
    pub eval_wall: Duration,
    /// Wall-clock time of the whole exploration.
    pub wall: Duration,
}

/// One evaluated architecture.
#[derive(Debug, Clone)]
pub struct ArchEval {
    /// The architecture.
    pub spec: ArchSpec,
    /// Baseline-relative datapath cost.
    pub cost: f64,
    /// Cycle-time derating factor.
    pub derate: f64,
    /// Per-benchmark outcomes (aligned with the exploration's benches).
    pub outcomes: Vec<EvalOutcome>,
}

/// The complete result of an exploration.
#[derive(Debug, Clone)]
pub struct Exploration {
    /// Benchmarks, column order.
    pub benches: Vec<Benchmark>,
    /// All evaluated architectures.
    pub archs: Vec<ArchEval>,
    /// The baseline evaluation (speedup denominator).
    pub baseline: ArchEval,
    /// Run bookkeeping.
    pub stats: RunStats,
}

impl Exploration {
    /// Run the codesign loop.
    ///
    /// # Panics
    /// Panics if `config.archs` or `config.benches` is empty.
    #[must_use]
    pub fn run(config: &ExploreConfig) -> Self {
        assert!(!config.archs.is_empty() && !config.benches.is_empty());
        let start = Instant::now();
        let cost = CostModel::paper_calibrated();
        let cycle = CycleModel::paper_calibrated();

        let mut reg_sizes: Vec<u32> = config.archs.iter().map(|a| a.regs).collect();
        reg_sizes.push(ArchSpec::baseline().regs);
        let cache = PlanCache::build(&config.benches, &reg_sizes, &UNROLL_SWEEP);
        let plan_wall = start.elapsed();
        let memo = config.reuse.then(CompileCache::new);

        let progress = config.progress || std::env::var_os("CFP_PROGRESS").is_some();
        let nb = config.benches.len();
        let units = config.archs.len() * nb;
        let done = std::sync::atomic::AtomicUsize::new(0);
        // One work unit per (architecture, benchmark) pair: much finer
        // grains than whole architectures, so a few slow deep-unroll
        // evaluations cannot leave most worker threads idle at the tail
        // of the sweep.
        let eval_unit = |i: usize| -> EvalOutcome {
            let spec = &config.archs[i / nb];
            let bench = config.benches[i % nb];
            let out = match &memo {
                Some(memo) => evaluate_cached(spec, bench, &cache, memo),
                None => evaluate(spec, bench, &cache),
            };
            if progress {
                let n = done.fetch_add(1, std::sync::atomic::Ordering::Relaxed) + 1;
                if n % 200 == 0 || n == units {
                    eprintln!("  evaluated {n}/{units} (architecture, benchmark) pairs");
                }
            }
            out
        };

        let baseline_spec = ArchSpec::baseline();
        let baseline = ArchEval {
            spec: baseline_spec,
            cost: cost.cost(&baseline_spec),
            derate: cycle.derate(&baseline_spec),
            outcomes: config
                .benches
                .iter()
                .map(|&b| match &memo {
                    Some(memo) => evaluate_cached(&baseline_spec, b, &cache, memo),
                    None => evaluate(&baseline_spec, b, &cache),
                })
                .collect(),
        };

        let eval_start = Instant::now();
        let threads = config.threads.max(1);
        let outcomes: Vec<EvalOutcome> = if threads == 1 {
            (0..units).map(eval_unit).collect()
        } else {
            let mut slots: Vec<Option<EvalOutcome>> = vec![None; units];
            let next = std::sync::atomic::AtomicUsize::new(0);
            std::thread::scope(|scope| {
                let mut handles = Vec::new();
                for _ in 0..threads {
                    let next = &next;
                    let eval_unit = &eval_unit;
                    handles.push(scope.spawn(move || {
                        let mut mine = Vec::new();
                        loop {
                            let i = next.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                            if i >= units {
                                return mine;
                            }
                            mine.push((i, eval_unit(i)));
                        }
                    }));
                }
                for h in handles {
                    for (i, e) in h.join().expect("worker panicked") {
                        slots[i] = Some(e);
                    }
                }
            });
            slots.into_iter().map(|s| s.expect("all filled")).collect()
        };
        let eval_wall = eval_start.elapsed();

        let archs: Vec<ArchEval> = config
            .archs
            .iter()
            .enumerate()
            .map(|(a, spec)| ArchEval {
                spec: *spec,
                cost: cost.cost(spec),
                derate: cycle.derate(spec),
                outcomes: outcomes[a * nb..(a + 1) * nb].to_vec(),
            })
            .collect();

        let compilations: u64 = archs
            .iter()
            .flat_map(|a| &a.outcomes)
            .map(|o| u64::from(o.compilations))
            .sum::<u64>()
            + baseline
                .outcomes
                .iter()
                .map(|o| u64::from(o.compilations))
                .sum::<u64>();

        Exploration {
            benches: config.benches.clone(),
            stats: RunStats {
                compilations,
                cache_hits: memo.as_ref().map_or(0, CompileCache::core_hits),
                unique_schedules: memo.as_ref().map_or(0, |m| m.unique_cores() as u64),
                unique_plans: cache.unique_kernels(),
                architectures: archs.len(),
                plan_wall,
                eval_wall,
                wall: start.elapsed(),
            },
            archs,
            baseline,
        }
    }

    /// Speedup of architecture `a` on benchmark column `b`: baseline time
    /// per output over this architecture's time per output (cycle-time
    /// derate included, exactly like the paper's "Speedup").
    #[must_use]
    pub fn speedup(&self, a: usize, b: usize) -> f64 {
        let base = self.baseline.outcomes[b].cycles_per_output; // derate 1.0
        let arch = &self.archs[a];
        base / (arch.outcomes[b].cycles_per_output * arch.derate)
    }

    /// All speedups of one architecture, column order.
    #[must_use]
    pub fn speedup_row(&self, a: usize) -> Vec<f64> {
        (0..self.benches.len())
            .map(|b| self.speedup(a, b))
            .collect()
    }

    /// Column index of a benchmark.
    #[must_use]
    pub fn bench_index(&self, b: Benchmark) -> Option<usize> {
        self.benches.iter().position(|&x| x == b)
    }

    /// Harmonic mean of a speedup row — the paper's `su` column, which
    /// orders architectures by total running time across the suite.
    #[must_use]
    pub fn harmonic_mean(speedups: &[f64]) -> f64 {
        let s: f64 = speedups.iter().map(|&v| 1.0 / v).sum();
        speedups.len() as f64 / s
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn smoke_exploration_is_sane() {
        let mut cfg = ExploreConfig::smoke();
        cfg.benches = vec![Benchmark::D, Benchmark::G];
        let ex = Exploration::run(&cfg);
        assert_eq!(ex.archs.len(), cfg.archs.len());
        assert!(ex.stats.compilations > 0);
        // Reuse is on by default, and the smoke space repeats signatures
        // (and register sizes), so the cache must have absorbed work.
        // Every logical compilation is a hit or a compute; computes can
        // exceed the unique count only by benign duplicate races.
        assert!(ex.stats.cache_hits > 0);
        assert!(ex.stats.unique_schedules > 0);
        assert!(ex.stats.unique_plans > 0);
        assert!(ex.stats.cache_hits + ex.stats.unique_schedules <= ex.stats.compilations);
        // Baseline evaluated against itself gives speedup 1.0.
        let base_idx = ex
            .archs
            .iter()
            .position(|a| a.spec == ArchSpec::baseline())
            .expect("smoke space includes the baseline");
        for b in 0..ex.benches.len() {
            let su = ex.speedup(base_idx, b);
            assert!((su - 1.0).abs() < 1e-9, "baseline speedup {su}");
        }
        // Every bigger machine is at least as fast in cycles (speedups
        // can still dip below 1 from the cycle-time derate).
        for a in 0..ex.archs.len() {
            for b in 0..ex.benches.len() {
                assert!(ex.speedup(a, b) > 0.05, "arch {a} bench {b}");
            }
        }
    }

    #[test]
    fn harmonic_mean_matches_hand_value() {
        let hm = Exploration::harmonic_mean(&[1.0, 2.0, 4.0]);
        assert!((hm - 3.0 / (1.0 + 0.5 + 0.25)).abs() < 1e-12);
    }

    #[test]
    fn deterministic_across_runs() {
        let mut cfg = ExploreConfig::smoke();
        cfg.benches = vec![Benchmark::D];
        cfg.archs.truncate(3);
        let e1 = Exploration::run(&cfg);
        let e2 = Exploration::run(&cfg);
        for a in 0..e1.archs.len() {
            assert_eq!(e1.speedup_row(a), e2.speedup_row(a));
        }
    }
}
