//! Cost/speedup scatter data and best-alternative frontiers
//! (paper Figures 3 and 4).

use crate::explore::Exploration;
use cfp_machine::ArchSpec;

/// One point of a scatter diagram.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ScatterPoint {
    /// The architecture (best cluster arrangement for this benchmark).
    pub spec: ArchSpec,
    /// Baseline-relative cost.
    pub cost: f64,
    /// Speedup on the benchmark.
    pub speedup: f64,
}

/// The scatter for one benchmark: one point per *base point* of the
/// space, "after the best cluster arrangement had been selected"
/// (Figure 3's caption) — the arrangement with the highest speedup,
/// cheaper on ties.
#[must_use]
pub fn scatter(exploration: &Exploration, bench: usize) -> Vec<ScatterPoint> {
    use std::collections::HashMap;
    let mut best: HashMap<(u32, u32, u32, u32, u32), ScatterPoint> = HashMap::new();
    for (i, arch) in exploration.archs.iter().enumerate() {
        let s = arch.spec;
        let key = (s.alus, s.muls, s.regs, s.l2_ports, s.l2_latency);
        let p = ScatterPoint {
            spec: s,
            cost: arch.cost,
            speedup: exploration.speedup(i, bench),
        };
        // A quarantined unit has no speedup (NaN); it cannot be "the
        // best arrangement" of its base point, and letting it into the
        // map would block finite arrangements (NaN comparisons are all
        // false), so it is skipped outright.
        if !p.speedup.is_finite() {
            continue;
        }
        best.entry(key)
            .and_modify(|cur| {
                let better = p.speedup > cur.speedup + 1e-12
                    || ((p.speedup - cur.speedup).abs() <= 1e-12 && p.cost < cur.cost);
                if better {
                    *cur = p;
                }
            })
            .or_insert(p);
    }
    let mut points: Vec<ScatterPoint> = best.into_values().collect();
    points.sort_by(|a, b| a.cost.total_cmp(&b.cost).then(a.spec.cmp(&b.spec)));
    points
}

/// Indices of the best cost/performance alternatives: the staircase of
/// points whose speedup strictly exceeds every cheaper point's (the line
/// the paper draws through each scatter diagram).
#[must_use]
pub fn frontier(points: &[ScatterPoint]) -> Vec<usize> {
    let mut out = Vec::new();
    let mut best = f64::NEG_INFINITY;
    for (i, p) in points.iter().enumerate() {
        if p.speedup > best + 1e-12 {
            best = p.speedup;
            out.push(i);
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::explore::ExploreConfig;
    use cfp_kernels::Benchmark;

    #[test]
    fn scatter_has_one_point_per_base_and_frontier_is_monotone() {
        let mut cfg = ExploreConfig::smoke();
        cfg.benches = vec![Benchmark::D];
        let ex = Exploration::run(&cfg);
        let pts = scatter(&ex, 0);
        // The smoke space has 7 distinct base configurations.
        assert_eq!(pts.len(), 7);
        let f = frontier(&pts);
        assert!(!f.is_empty());
        let mut last_cost = f64::NEG_INFINITY;
        let mut last_su = f64::NEG_INFINITY;
        for &i in &f {
            assert!(pts[i].cost >= last_cost);
            assert!(pts[i].speedup > last_su);
            last_cost = pts[i].cost;
            last_su = pts[i].speedup;
        }
        // The frontier contains the global best point.
        let best = pts
            .iter()
            .map(|p| p.speedup)
            .fold(f64::NEG_INFINITY, f64::max);
        assert!((pts[*f.last().unwrap()].speedup - best).abs() < 1e-12);
    }
}
