//! Cost/speedup scatter data and best-alternative frontiers
//! (paper Figures 3 and 4).
//!
//! Both constructions come in two forms that share one core:
//! * the original [`Exploration`]-walking entry points ([`scatter`],
//!   [`frontier`]), kept for callers holding the pointer-rich result;
//! * flat slice-in ("SoA") cores ([`scatter_soa`], [`frontier_soa`])
//!   consumed by [`crate::batch::EvalBatch`] and the `bench_score`
//!   microbenchmark, which run as sort-then-sweep passes over parallel
//!   columns instead of hash-map folds and per-point struct walks.
//!
//! The two forms are bit-identical — same points, same order, same
//! `f64` bits — which `tests/batch_equivalence.rs` pins on the full
//! paper and extended spaces.

use crate::explore::Exploration;
use cfp_machine::ArchSpec;

/// One point of a scatter diagram.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ScatterPoint {
    /// The architecture (best cluster arrangement for this benchmark).
    pub spec: ArchSpec,
    /// Baseline-relative cost.
    pub cost: f64,
    /// Speedup on the benchmark.
    pub speedup: f64,
}

/// The *base point* of a spec: the five axes of Table 5. Cluster count
/// and Level-2 pipelining are arrangement freedom, not a new base point
/// — arrangements compete inside one scatter slot.
fn base_key(s: &ArchSpec) -> (u32, u32, u32, u32, u32) {
    (s.alus, s.muls, s.regs, s.l2_ports, s.l2_latency)
}

/// The scatter for one benchmark: one point per *base point* of the
/// space, "after the best cluster arrangement had been selected"
/// (Figure 3's caption) — the arrangement with the highest speedup,
/// cheaper on ties.
#[must_use]
pub fn scatter(exploration: &Exploration, bench: usize) -> Vec<ScatterPoint> {
    let specs: Vec<ArchSpec> = exploration.archs.iter().map(|a| a.spec).collect();
    let cost: Vec<f64> = exploration.archs.iter().map(|a| a.cost).collect();
    let speedup: Vec<f64> = (0..specs.len())
        .map(|a| exploration.speedup(a, bench))
        .collect();
    scatter_soa(&specs, &cost, &speedup)
}

/// SoA form of [`scatter`]: three parallel columns in, one column per
/// architecture, `speedup` holding that architecture's speedup on the
/// benchmark being plotted (NaN for a quarantined unit).
///
/// Quarantined (non-finite) entries are dropped before grouping: a unit
/// with no measurement cannot be "the best arrangement" of its base
/// point, and must not block finite siblings either. Arrangements of one
/// base point are folded in architecture-index order with the same
/// epsilon rule the per-point fold always used, so the output is
/// bit-identical to the historical hash-map construction.
///
/// # Panics
/// Panics if the columns disagree in length.
#[must_use]
pub fn scatter_soa(specs: &[ArchSpec], cost: &[f64], speedup: &[f64]) -> Vec<ScatterPoint> {
    assert_eq!(specs.len(), cost.len(), "scatter_soa columns differ");
    assert_eq!(specs.len(), speedup.len(), "scatter_soa columns differ");
    // Finite units only, grouped by base point. The sort is stable, so
    // within one base point the architecture-index encounter order — the
    // order the fold below depends on — is preserved.
    let mut order: Vec<u32> = (0..specs.len() as u32)
        .filter(|&i| speedup[i as usize].is_finite())
        .collect();
    order.sort_by_key(|&i| base_key(&specs[i as usize]));

    let point = |i: u32| ScatterPoint {
        spec: specs[i as usize],
        cost: cost[i as usize],
        speedup: speedup[i as usize],
    };
    let mut points: Vec<ScatterPoint> = Vec::new();
    let mut at = 0;
    while at < order.len() {
        let key = base_key(&specs[order[at] as usize]);
        let mut cur = point(order[at]);
        at += 1;
        while at < order.len() && base_key(&specs[order[at] as usize]) == key {
            let p = point(order[at]);
            let better = p.speedup > cur.speedup + 1e-12
                || ((p.speedup - cur.speedup).abs() <= 1e-12 && p.cost < cur.cost);
            if better {
                cur = p;
            }
            at += 1;
        }
        points.push(cur);
    }
    points.sort_by(|a, b| a.cost.total_cmp(&b.cost).then(a.spec.cmp(&b.spec)));
    points
}

/// Indices of the best cost/performance alternatives: the staircase of
/// points whose speedup strictly exceeds every cheaper point's (the line
/// the paper draws through each scatter diagram).
///
/// [`scatter`] output is already cost-sorted, so for it this is a single
/// sweep; unsorted input is handled by the cost sort inside
/// [`frontier_soa`] (indices still come back ascending by cost).
#[must_use]
pub fn frontier(points: &[ScatterPoint]) -> Vec<usize> {
    let cost: Vec<f64> = points.iter().map(|p| p.cost).collect();
    let speedup: Vec<f64> = points.iter().map(|p| p.speedup).collect();
    frontier_soa(&cost, &speedup)
}

/// SoA form of [`frontier`]: sort-then-sweep over two parallel columns.
///
/// Points are visited cheapest-first (ties keep index order — the sort
/// is stable, so already-sorted input is visited exactly in index
/// order), and a point joins the frontier when its speedup beats the
/// best pushed so far by more than the `1e-12` epsilon. One `O(n log n)`
/// sort and one linear sweep; on cost-sorted input the output is
/// index-identical to the historical in-order scan.
///
/// # Panics
/// Panics if the columns disagree in length.
#[must_use]
pub fn frontier_soa(cost: &[f64], speedup: &[f64]) -> Vec<usize> {
    assert_eq!(cost.len(), speedup.len(), "frontier_soa columns differ");
    let mut order: Vec<u32> = (0..cost.len() as u32).collect();
    order.sort_by(|&a, &b| cost[a as usize].total_cmp(&cost[b as usize]));
    let mut out = Vec::new();
    let mut best = f64::NEG_INFINITY;
    for &i in &order {
        if speedup[i as usize] > best + 1e-12 {
            best = speedup[i as usize];
            out.push(i as usize);
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::explore::ExploreConfig;
    use cfp_kernels::Benchmark;

    #[test]
    fn scatter_has_one_point_per_base_and_frontier_is_monotone() {
        let mut cfg = ExploreConfig::smoke();
        cfg.benches = vec![Benchmark::D];
        let ex = Exploration::run(&cfg);
        let pts = scatter(&ex, 0);
        // The smoke space has 7 distinct base configurations.
        assert_eq!(pts.len(), 7);
        let f = frontier(&pts);
        assert!(!f.is_empty());
        let mut last_cost = f64::NEG_INFINITY;
        let mut last_su = f64::NEG_INFINITY;
        for &i in &f {
            assert!(pts[i].cost >= last_cost);
            assert!(pts[i].speedup > last_su);
            last_cost = pts[i].cost;
            last_su = pts[i].speedup;
        }
        // The frontier contains the global best point.
        let best = pts
            .iter()
            .map(|p| p.speedup)
            .fold(f64::NEG_INFINITY, f64::max);
        assert!((pts[*f.last().unwrap()].speedup - best).abs() < 1e-12);
    }

    /// Transcription of the pre-SoA frontier: the in-order scan over
    /// already-cost-sorted points. The sweep must reproduce it exactly
    /// on sorted input — including the epsilon subtlety that `best`
    /// tracks only *pushed* members, not the running maximum.
    fn frontier_by_scan(points: &[ScatterPoint]) -> Vec<usize> {
        let mut out = Vec::new();
        let mut best = f64::NEG_INFINITY;
        for (i, p) in points.iter().enumerate() {
            if p.speedup > best + 1e-12 {
                best = p.speedup;
                out.push(i);
            }
        }
        out
    }

    #[test]
    fn sweep_matches_the_historical_scan_on_random_clouds() {
        cfp_testkit::cases(0xF05A_11CE, 256, |rng| {
            let n = 1 + rng.index(40);
            let spec = ArchSpec::baseline();
            let mut pts: Vec<ScatterPoint> = (0..n)
                .map(|_| ScatterPoint {
                    spec,
                    // Coarse grids on purpose: exact cost ties and
                    // epsilon-close speedups are common, exercising the
                    // tie rules rather than the generic path.
                    cost: 1.0 + rng.below(30) as f64 / 4.0,
                    speedup: match rng.below(10) {
                        0 => 2.0 + 1e-13 * rng.below(40) as f64,
                        _ => 0.5 + rng.below(40) as f64 / 8.0,
                    },
                })
                .collect();
            // Callers hold scatter output: cost-sorted.
            pts.sort_by(|a, b| a.cost.total_cmp(&b.cost));
            assert_eq!(frontier(&pts), frontier_by_scan(&pts));
        });
    }

    #[test]
    fn sweep_handles_unsorted_input_by_cost_order() {
        let spec = ArchSpec::baseline();
        let p = |cost: f64, speedup: f64| ScatterPoint {
            spec,
            cost,
            speedup,
        };
        // Expensive-but-fast first: the scan would keep index 0 and then
        // reject the cheap point; the sweep visits cheapest-first and
        // keeps both, cheap one first.
        let pts = [p(9.0, 5.0), p(1.0, 2.0)];
        assert_eq!(frontier(&pts), vec![1, 0]);
    }
}
