//! Per-architecture evaluation: the inner step of the codesign loop.
//!
//! For one candidate architecture and one benchmark this reproduces the
//! paper's §2.4 discipline: compile at increasing unroll factors, stop as
//! soon as register spilling appears, and keep the fastest non-spilling
//! schedule (per *output unit*, so different unroll factors compare
//! fairly). A kernel that spills even without unrolling is compiled with
//! spill traffic and pays for it — the paper's "pathological" case.
//!
//! Optimization is machine-aware only through a *residency budget*
//! (how many loop constants LICM may pin in registers — half the
//! register file). Budgets take four distinct values across the whole
//! space, so optimized/unrolled kernels are precomputed once per
//! `(benchmark, budget, unroll)` in a [`PlanCache`] and shared by all
//! architectures.

use crate::memo::CompileCache;
use cfp_kernels::Benchmark;
use cfp_machine::{ArchSpec, MachineResources};
use cfp_sched::{compile, compile_core, prepare, spill_penalty_cycles};
use std::collections::HashMap;

/// Unroll factors the experiment sweeps, ascending.
pub const UNROLL_SWEEP: [u32; 5] = [1, 2, 4, 8, 16];

/// Bodies larger than this are not attempted (compile-time guard; the
/// affected points are reported as using the largest feasible unroll).
pub const MAX_BODY_OPS: usize = 24_000;

/// The residency budget LICM gets for a machine with `regs` registers.
#[must_use]
pub fn residency_budget(regs: u32) -> usize {
    (regs / 2) as usize
}

/// Stable identity of one optimized + unrolled kernel in a [`PlanCache`].
///
/// Plans are interned by content: two `(benchmark, budget, unroll)`
/// triples whose optimized kernels come out identical (common — LICM
/// budgets above a kernel's constant count are indistinguishable) share
/// one id. The id is the key compile memoization is sharded on, so the
/// dedup collapses the register axis even before scheduling starts.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct PlanId(u32);

impl PlanId {
    /// Dense index for per-plan tables.
    #[must_use]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// Precomputed optimized + unrolled kernels, interned by content.
#[derive(Debug, Default)]
pub struct PlanCache {
    kernels: Vec<cfp_ir::Kernel>,
    plans: HashMap<(Benchmark, usize, u32), PlanId>,
}

impl PlanCache {
    /// Build the cache for the given benchmarks and register sizes.
    #[must_use]
    pub fn build(benches: &[Benchmark], reg_sizes: &[u32], unrolls: &[u32]) -> Self {
        let mut budgets: Vec<usize> = reg_sizes.iter().map(|&r| residency_budget(r)).collect();
        budgets.sort_unstable();
        budgets.dedup();
        let mut cache = PlanCache::default();
        for &b in benches {
            let base = b.kernel();
            for &budget in &budgets {
                let mut opt = base.clone();
                cfp_opt::optimize_budgeted(&mut opt, budget);
                for &u in unrolls {
                    if opt.body.len() * (u as usize) > MAX_BODY_OPS {
                        continue;
                    }
                    let mut unrolled = cfp_opt::unroll::unroll(&opt, u);
                    // Re-optimize across the unrolled copies: this is
                    // where CSE turns a stencil's overlapping loads into
                    // a register window — the paper's central
                    // registers-for-bandwidth trade.
                    cfp_opt::optimize_budgeted(&mut unrolled, budget);
                    let id = cache.intern(unrolled);
                    cache.plans.insert((b, budget, u), id);
                }
            }
        }
        cache
    }

    fn intern(&mut self, kernel: cfp_ir::Kernel) -> PlanId {
        if let Some(i) = self.kernels.iter().position(|k| *k == kernel) {
            return PlanId(u32::try_from(i).expect("small"));
        }
        self.kernels.push(kernel);
        PlanId(u32::try_from(self.kernels.len() - 1).expect("small"))
    }

    /// Look up a plan.
    #[must_use]
    pub fn get(&self, bench: Benchmark, budget: usize, unroll: u32) -> Option<&cfp_ir::Kernel> {
        self.id(bench, budget, unroll).map(|id| self.kernel(id))
    }

    /// Look up a plan's interned identity.
    #[must_use]
    pub fn id(&self, bench: Benchmark, budget: usize, unroll: u32) -> Option<PlanId> {
        self.plans.get(&(bench, budget, unroll)).copied()
    }

    /// The kernel behind an id.
    ///
    /// # Panics
    /// Panics if `id` came from a different cache.
    #[must_use]
    pub fn kernel(&self, id: PlanId) -> &cfp_ir::Kernel {
        &self.kernels[id.index()]
    }

    /// Number of cached plans (distinct `(benchmark, budget, unroll)`
    /// triples; several may share an interned kernel).
    #[must_use]
    pub fn len(&self) -> usize {
        self.plans.len()
    }

    /// Number of content-distinct kernels behind those plans.
    #[must_use]
    pub fn unique_kernels(&self) -> usize {
        self.kernels.len()
    }

    /// Whether the cache is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.plans.is_empty()
    }
}

/// The evaluation of one `(architecture, benchmark)` pair.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EvalOutcome {
    /// Cycles per output unit at the chosen unroll factor, including any
    /// spill penalty (architecture cycles — multiply by the derate for
    /// time).
    pub cycles_per_output: f64,
    /// The chosen unroll factor.
    pub unroll: u32,
    /// Whether even the un-unrolled kernel spilled (penalty applied).
    pub spilled: bool,
    /// Compilations performed for this pair (Table 3 accounting).
    pub compilations: u32,
}

/// The unroll sweep shared by the direct and memoized evaluation paths.
/// `compile_one` returns `(fits, cycles_per_iter)` for one plan; how it
/// gets them — fresh compile or cache lookup — is the caller's business.
fn unroll_sweep(
    bench: Benchmark,
    budget: usize,
    plans: &PlanCache,
    mut compile_one: impl FnMut(PlanId) -> (bool, u32),
) -> EvalOutcome {
    let mut best: Option<EvalOutcome> = None;
    let mut compilations = 0;

    for &u in &UNROLL_SWEEP {
        let Some(id) = plans.id(bench, budget, u) else {
            break; // body cap reached; larger unrolls only grow
        };
        let (fits, cycles) = compile_one(id);
        compilations += 1;
        if !fits && u > 1 {
            break; // the paper's rule: spilling stops the sweep
        }
        let cpo = f64::from(cycles) / f64::from(plans.kernel(id).outputs_per_iter);
        if best.as_ref().is_none_or(|b| cpo < b.cycles_per_output) {
            best = Some(EvalOutcome {
                cycles_per_output: cpo,
                unroll: u,
                spilled: !fits,
                compilations: 0, // filled once the sweep's total is known
            });
        }
        if !fits {
            break; // u == 1 spilled: keep the penalized result, stop
        }
    }
    let mut out = best.expect("unroll sweep always evaluates u = 1");
    out.compilations = compilations;
    out
}

/// Evaluate one benchmark on one architecture.
///
/// # Panics
/// Panics if the cache is missing the un-unrolled plan for the
/// benchmark (build the cache with the same benchmarks and register
/// sizes as the space being explored).
#[must_use]
pub fn evaluate(spec: &ArchSpec, bench: Benchmark, cache: &PlanCache) -> EvalOutcome {
    let machine = MachineResources::from_spec(spec);
    unroll_sweep(bench, residency_budget(spec.regs), cache, |id| {
        let result = compile(cache.kernel(id), &machine);
        (result.fits(), result.cycles_per_iter())
    })
}

/// Evaluate one benchmark on one architecture, sharing compile work
/// through `memo` with every architecture that schedules alike.
///
/// Behaviourally identical to [`evaluate`] — same outcome, same logical
/// compilation count — but each `(plan, scheduling signature)` pair is
/// scheduled once per exploration instead of once per architecture.
/// Only the register-capacity verdict and the spill penalty, which do
/// depend on the register-file size, are recomputed here per machine.
///
/// # Panics
/// Panics as [`evaluate`] does on a mismatched plan cache.
#[must_use]
pub fn evaluate_cached(
    spec: &ArchSpec,
    bench: Benchmark,
    cache: &PlanCache,
    memo: &CompileCache,
) -> EvalOutcome {
    let machine = MachineResources::from_spec(spec);
    let sig = spec.sched_signature();
    unroll_sweep(bench, residency_budget(spec.regs), cache, |id| {
        let core = memo.core(id, sig, || {
            let prepared = memo.prepared(id, machine.l2_latency, || {
                prepare(cache.kernel(id), &machine)
            });
            compile_core(&prepared, &machine)
        });
        let excess: u32 = core
            .peak
            .iter()
            .zip(&machine.clusters)
            .map(|(&p, c)| p.saturating_sub(c.regs))
            .sum();
        (
            excess == 0,
            core.length + spill_penalty_cycles(excess, &machine),
        )
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_cache() -> PlanCache {
        PlanCache::build(&[Benchmark::D, Benchmark::A], &[64, 256], &[1, 2, 4])
    }

    #[test]
    fn cache_holds_each_budget_and_unroll() {
        let c = small_cache();
        assert!(c.get(Benchmark::D, residency_budget(64), 1).is_some());
        assert!(c.get(Benchmark::D, residency_budget(256), 4).is_some());
        assert!(c.get(Benchmark::D, residency_budget(128), 1).is_none());
        assert_eq!(c.len(), 2 * 2 * 3);
    }

    #[test]
    fn baseline_evaluates_every_benchmark() {
        let cache = PlanCache::build(&Benchmark::ALL, &[64], &[1, 2]);
        for b in Benchmark::ALL {
            let out = evaluate(&ArchSpec::baseline(), b, &cache);
            assert!(out.cycles_per_output > 1.0, "{b}: {out:?}");
            assert!(out.compilations >= 1);
        }
    }

    #[test]
    fn richer_machine_is_faster_per_output() {
        let cache = PlanCache::build(&[Benchmark::D], &[64, 256], &[1, 2, 4]);
        let base = evaluate(&ArchSpec::baseline(), Benchmark::D, &cache);
        let big = evaluate(
            &ArchSpec::new(8, 4, 256, 2, 4, 1).unwrap(),
            Benchmark::D,
            &cache,
        );
        assert!(big.cycles_per_output < base.cycles_per_output);
    }

    #[test]
    fn unrolling_is_chosen_when_it_helps() {
        let cache = PlanCache::build(&[Benchmark::G], &[256], &[1, 2, 4]);
        let out = evaluate(
            &ArchSpec::new(8, 4, 256, 4, 2, 1).unwrap(),
            Benchmark::G,
            &cache,
        );
        assert!(out.unroll > 1, "{out:?}");
    }

    #[test]
    fn a_is_stuck_at_unroll_one_on_tiny_register_files() {
        // The paper's pathology: benchmark A's unrolled 7x7 window does
        // not fit 8 clusters x 16 registers, so the machine chosen for H
        // cannot unroll A at all — while the same datapath with 512
        // registers unrolls deeply and runs several times faster.
        let cache = PlanCache::build(&[Benchmark::A], &[128, 512], &[1, 2, 4, 8]);
        let starved = evaluate(
            &ArchSpec::new(16, 4, 128, 1, 4, 8).unwrap(),
            Benchmark::A,
            &cache,
        );
        let roomy = evaluate(
            &ArchSpec::new(16, 4, 512, 1, 4, 8).unwrap(),
            Benchmark::A,
            &cache,
        );
        assert_eq!(starved.unroll, 1, "{starved:?}");
        assert!(roomy.unroll >= 4, "{roomy:?}");
        assert!(roomy.cycles_per_output * 2.0 < starved.cycles_per_output);
    }
}
