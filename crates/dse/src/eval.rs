//! Per-architecture evaluation: the inner step of the codesign loop.
//!
//! For one candidate architecture and one benchmark this reproduces the
//! paper's §2.4 discipline: compile at increasing unroll factors, stop as
//! soon as register spilling appears, and keep the fastest non-spilling
//! schedule (per *output unit*, so different unroll factors compare
//! fairly). A kernel that spills even without unrolling is compiled with
//! spill traffic and pays for it — the paper's "pathological" case.
//!
//! Optimization is machine-aware only through a *residency budget*
//! (how many loop constants LICM may pin in registers — half the
//! register file). Budgets take four distinct values across the whole
//! space, so optimized/unrolled kernels are precomputed once per
//! `(benchmark, budget, unroll)` in a [`PlanCache`] and shared by all
//! architectures.

use crate::error::{EvalError, FailReason};
use crate::memo::CompileCache;
use cfp_kernels::Benchmark;
use cfp_machine::{ArchSpec, MachineResources};
use cfp_obs::{Stage, UnitTrace, Value};
use cfp_sched::{
    finish, prepare_traced, spill_penalty_cycles, try_compile_core_traced_in, Fuel, SchedError,
    SchedScratch,
};
use std::collections::HashMap;

/// Unroll factors the experiment sweeps, ascending.
pub const UNROLL_SWEEP: [u32; 5] = [1, 2, 4, 8, 16];

/// Bodies larger than this are not attempted (compile-time guard; the
/// affected points are reported as using the largest feasible unroll).
pub const MAX_BODY_OPS: usize = 24_000;

/// The residency budget LICM gets for a machine with `regs` registers.
#[must_use]
pub fn residency_budget(regs: u32) -> usize {
    (regs / 2) as usize
}

/// Stable identity of one optimized + unrolled kernel in a [`PlanCache`].
///
/// Plans are interned by content: two `(benchmark, budget, unroll)`
/// triples whose optimized kernels come out identical (common — LICM
/// budgets above a kernel's constant count are indistinguishable) share
/// one id. The id is the key compile memoization is sharded on, so the
/// dedup collapses the register axis even before scheduling starts.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct PlanId(u32);

impl PlanId {
    /// Dense index for per-plan tables.
    #[must_use]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// Precomputed optimized + unrolled kernels, interned by content.
///
/// Kernels are held in `Arc`s so a [`PlanStore`] snapshot — a
/// `PlanCache` view over the store's interned kernels — is a handful of
/// pointer clones rather than a deep copy of every kernel body.
#[derive(Debug, Default)]
pub struct PlanCache {
    kernels: Vec<std::sync::Arc<cfp_ir::Kernel>>,
    plans: HashMap<(Benchmark, usize, u32), PlanId>,
}

impl PlanCache {
    /// Build the cache for the given benchmarks and register sizes.
    #[must_use]
    pub fn build(benches: &[Benchmark], reg_sizes: &[u32], unrolls: &[u32]) -> Self {
        Self::build_traced(benches, reg_sizes, unrolls, &mut UnitTrace::disabled())
    }

    /// [`PlanCache::build`] recording the optimizer's per-pass `opt`
    /// spans and one `plan_build` summary span (plan and unique-kernel
    /// counts). With a disabled trace this is exactly
    /// [`PlanCache::build`].
    #[must_use]
    pub fn build_traced(
        benches: &[Benchmark],
        reg_sizes: &[u32],
        unrolls: &[u32],
        trace: &mut UnitTrace<'_>,
    ) -> Self {
        let t0 = trace.start();
        let mut budgets: Vec<usize> = reg_sizes.iter().map(|&r| residency_budget(r)).collect();
        budgets.sort_unstable();
        budgets.dedup();
        let mut cache = PlanCache::default();
        for &b in benches {
            let base = b.kernel();
            for &budget in &budgets {
                let mut opt = base.clone();
                cfp_opt::optimize_budgeted_traced(&mut opt, budget, trace);
                for &u in unrolls {
                    if opt.body.len() * (u as usize) > MAX_BODY_OPS {
                        continue;
                    }
                    let mut unrolled = cfp_opt::unroll::unroll(&opt, u);
                    // Re-optimize across the unrolled copies: this is
                    // where CSE turns a stencil's overlapping loads into
                    // a register window — the paper's central
                    // registers-for-bandwidth trade.
                    cfp_opt::optimize_budgeted_traced(&mut unrolled, budget, trace);
                    let id = cache.intern(unrolled);
                    cache.plans.insert((b, budget, u), id);
                }
            }
        }
        trace.stage(
            Stage::PlanBuild,
            t0,
            &[
                ("plans", Value::U64(cache.len() as u64)),
                ("unique_kernels", Value::U64(cache.unique_kernels() as u64)),
            ],
        );
        cache
    }

    fn intern(&mut self, kernel: cfp_ir::Kernel) -> PlanId {
        // Plan counts are benches × budgets × unrolls — a few hundred at
        // most, so the index always fits; saturating keeps the cast
        // panic-free without inventing an unreachable error path.
        if let Some(i) = self.kernels.iter().position(|k| **k == kernel) {
            return PlanId(u32::try_from(i).unwrap_or(u32::MAX));
        }
        self.kernels.push(std::sync::Arc::new(kernel));
        PlanId(u32::try_from(self.kernels.len() - 1).unwrap_or(u32::MAX))
    }

    /// Look up a plan.
    #[must_use]
    pub fn get(&self, bench: Benchmark, budget: usize, unroll: u32) -> Option<&cfp_ir::Kernel> {
        self.id(bench, budget, unroll).map(|id| self.kernel(id))
    }

    /// Look up a plan's interned identity.
    #[must_use]
    pub fn id(&self, bench: Benchmark, budget: usize, unroll: u32) -> Option<PlanId> {
        self.plans.get(&(bench, budget, unroll)).copied()
    }

    /// The kernel behind an id.
    ///
    /// # Panics
    /// Panics if `id` came from a different cache.
    #[must_use]
    pub fn kernel(&self, id: PlanId) -> &cfp_ir::Kernel {
        &self.kernels[id.index()]
    }

    /// Number of cached plans (distinct `(benchmark, budget, unroll)`
    /// triples; several may share an interned kernel).
    #[must_use]
    pub fn len(&self) -> usize {
        self.plans.len()
    }

    /// Number of content-distinct kernels behind those plans.
    #[must_use]
    pub fn unique_kernels(&self) -> usize {
        self.kernels.len()
    }

    /// Whether the cache is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.plans.is_empty()
    }
}

/// One plan-map entry in a [`PlanStore`]: the interned id (or `None`
/// for a triple whose unrolled body exceeds [`MAX_BODY_OPS`] — the cap
/// is a property of the triple, so its absence must survive in the map
/// and not be confused with "never computed") plus segmented-LRU
/// bookkeeping.
#[derive(Debug, Clone, Copy)]
struct PlanEntry {
    id: Option<PlanId>,
    stamp: u64,
    protected: bool,
}

#[derive(Debug, Default)]
struct PlanStoreInner {
    /// Append-only content-interned kernels. Ids index this vector, so
    /// a [`PlanId`] handed out once stays valid for the store's
    /// lifetime — which is what lets a shared [`crate::CompileCache`]
    /// key on them across jobs.
    kernels: Vec<std::sync::Arc<cfp_ir::Kernel>>,
    /// `(benchmark, budget, unroll)` → interned id, bounded by
    /// segmented LRU (see [`PlanStore::bounded`]).
    plans: HashMap<(Benchmark, usize, u32), PlanEntry>,
    clock: u64,
}

impl PlanStoreInner {
    fn intern(&mut self, kernel: cfp_ir::Kernel) -> PlanId {
        if let Some(i) = self.kernels.iter().position(|k| **k == kernel) {
            return PlanId(u32::try_from(i).unwrap_or(u32::MAX));
        }
        self.kernels.push(std::sync::Arc::new(kernel));
        PlanId(u32::try_from(self.kernels.len() - 1).unwrap_or(u32::MAX))
    }
}

/// A cross-run plan cache for the exploration service: the persistent
/// analogue of building a fresh [`PlanCache`] per sweep.
///
/// Two properties make cross-job cache sharing sound, and both live
/// here:
///
/// * **Globally consistent ids.** The kernel store is append-only and
///   interned by content, so a [`PlanId`] means the same kernel in
///   every job that ever runs against this store — which is exactly the
///   contract the shared `CompileCache`'s `(PlanId, signature)` keys
///   need.
/// * **Safe plan-map eviction.** The `(benchmark, budget, unroll)` →
///   id map *is* bounded (segmented LRU, same policy as
///   [`crate::memo::ShardedMap::bounded`]): optimization is
///   deterministic, so recomputing an evicted triple re-produces a
///   bit-identical kernel, and interning that kernel returns the *same*
///   id it had before. Eviction costs a re-optimization, never changes
///   an answer.
///
/// [`PlanStore::ensure_snapshot`] materializes the plans one job needs
/// (computing only the missing ones) as an ordinary [`PlanCache`] whose
/// kernel vector is a prefix snapshot of the store — pointer clones,
/// not kernel copies — so the whole single-run evaluation pipeline runs
/// against it unchanged.
#[derive(Debug)]
pub struct PlanStore {
    inner: std::sync::Mutex<PlanStoreInner>,
    /// Plan-map entry budget; `None` = unbounded.
    plan_cap: Option<usize>,
    hits: std::sync::atomic::AtomicU64,
    misses: std::sync::atomic::AtomicU64,
    evictions: std::sync::atomic::AtomicU64,
}

impl Default for PlanStore {
    fn default() -> Self {
        Self::new()
    }
}

impl PlanStore {
    /// An empty, unbounded store.
    #[must_use]
    pub fn new() -> Self {
        PlanStore {
            inner: std::sync::Mutex::new(PlanStoreInner::default()),
            plan_cap: None,
            hits: std::sync::atomic::AtomicU64::new(0),
            misses: std::sync::atomic::AtomicU64::new(0),
            evictions: std::sync::atomic::AtomicU64::new(0),
        }
    }

    /// A store whose plan map is bounded to `plan_cap` entries by
    /// segmented-LRU eviction. The kernel vector itself stays
    /// append-only (id stability is the point); its population is
    /// bounded by content diversity — unrolled kernels dedup heavily —
    /// not by this cap.
    #[must_use]
    pub fn bounded(plan_cap: usize) -> Self {
        PlanStore {
            plan_cap: Some(plan_cap.max(1)),
            ..Self::new()
        }
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, PlanStoreInner> {
        // Plan computation runs while holding the lock, but every
        // mutation (intern push, map insert) is complete before the
        // next fallible step, so a poisoned inner is still coherent.
        self.inner
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
    }

    /// A [`PlanCache`] holding every `(benchmark, budget, unroll)`
    /// triple the given sweep needs, computing the missing ones.
    /// Budgets derive from `reg_sizes` exactly as [`PlanCache::build`]
    /// derives them, and the optimization pipeline is the same, so the
    /// returned cache is bit-identical to a cold
    /// `PlanCache::build(benches, reg_sizes, unrolls)` — modulo
    /// [`PlanId`] *numbering*, which here is globally consistent across
    /// every snapshot this store ever produced.
    #[must_use]
    pub fn ensure_snapshot(
        &self,
        benches: &[Benchmark],
        reg_sizes: &[u32],
        unrolls: &[u32],
    ) -> PlanCache {
        let mut budgets: Vec<usize> = reg_sizes.iter().map(|&r| residency_budget(r)).collect();
        budgets.sort_unstable();
        budgets.dedup();
        let mut inner = self.lock();
        let mut hits = 0u64;
        let mut misses = 0u64;
        let mut snapshot = PlanCache::default();
        for &b in benches {
            for &budget in &budgets {
                // Optimize the base once per (bench, budget) round, and
                // only if some unroll in this round actually misses.
                let mut opt: Option<cfp_ir::Kernel> = None;
                for &u in unrolls {
                    let key = (b, budget, u);
                    inner.clock += 1;
                    let tick = inner.clock;
                    let id = if let Some(entry) = inner.plans.get_mut(&key) {
                        entry.stamp = tick;
                        entry.protected = true;
                        hits += 1;
                        entry.id
                    } else {
                        misses += 1;
                        let base = opt.get_or_insert_with(|| {
                            let mut k = b.kernel().clone();
                            cfp_opt::optimize_budgeted(&mut k, budget);
                            k
                        });
                        let id = if base.body.len() * (u as usize) > MAX_BODY_OPS {
                            None
                        } else {
                            let mut unrolled = cfp_opt::unroll::unroll(base, u);
                            cfp_opt::optimize_budgeted(&mut unrolled, budget);
                            Some(inner.intern(unrolled))
                        };
                        inner.plans.insert(
                            key,
                            PlanEntry {
                                id,
                                stamp: tick,
                                protected: false,
                            },
                        );
                        if let Some(cap) = self.plan_cap {
                            self.evict_plans(&mut inner, cap, &key);
                        }
                        id
                    };
                    if let Some(id) = id {
                        snapshot.plans.insert(key, id);
                    }
                }
            }
        }
        // Ids index the store's kernel vector, so the snapshot's vector
        // must be a prefix of it: clone every Arc up to the store's
        // current length (cheap — pointer per kernel).
        snapshot.kernels = inner.kernels.clone();
        drop(inner);
        self.hits
            .fetch_add(hits, std::sync::atomic::Ordering::Relaxed);
        self.misses
            .fetch_add(misses, std::sync::atomic::Ordering::Relaxed);
        snapshot
    }

    fn evict_plans(&self, inner: &mut PlanStoreInner, cap: usize, keep: &(Benchmark, usize, u32)) {
        let mut evicted = 0u64;
        while inner.plans.len() > cap {
            let victim = inner
                .plans
                .iter()
                .filter(|(k, _)| *k != keep)
                .min_by_key(|(_, e)| (e.protected, e.stamp))
                .map(|(k, _)| *k);
            let Some(victim) = victim else { break };
            inner.plans.remove(&victim);
            evicted += 1;
        }
        if evicted > 0 {
            self.evictions
                .fetch_add(evicted, std::sync::atomic::Ordering::Relaxed);
        }
    }

    /// Plan-map lookups served without re-optimizing.
    #[must_use]
    pub fn plan_hits(&self) -> u64 {
        self.hits.load(std::sync::atomic::Ordering::Relaxed)
    }

    /// Plan-map lookups that re-optimized (cold or evicted triples).
    #[must_use]
    pub fn plan_misses(&self) -> u64 {
        self.misses.load(std::sync::atomic::Ordering::Relaxed)
    }

    /// Plan-map entries evicted by the bound (0 when unbounded).
    #[must_use]
    pub fn plan_evictions(&self) -> u64 {
        self.evictions.load(std::sync::atomic::Ordering::Relaxed)
    }

    /// Content-distinct kernels interned so far.
    #[must_use]
    pub fn unique_kernels(&self) -> usize {
        self.lock().kernels.len()
    }
}

/// Per-worker reusable state for the evaluation loop: the scheduler's
/// scratch arena plus the most recent machine lowering. One of these per
/// worker thread makes the sweep's steady state allocation-free —
/// consecutive units on a worker reuse every scheduling buffer, and the
/// lowered machine description ([`MachineResources`] with its embedded
/// [`cfp_machine::Mdes`], per-cluster `Vec`s both) is memoized at the
/// *scheduling-signature* level: a spec that differs from the previous
/// unit only in register-file size — the exploration's row-major unit
/// order walks the register axis innermost, so this is the common
/// transition — re-deals the register fields in place instead of
/// rebuilding the lowering.
#[derive(Debug, Default)]
pub struct EvalScratch {
    machine: Option<(ArchSpec, MachineResources)>,
    sched: SchedScratch,
}

impl EvalScratch {
    /// A fresh scratch; buffers grow on first use and are reused after.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// The lowered machine for `spec`, memoized against the previous
    /// call. Returned alongside the scheduler scratch so callers can
    /// hold both borrows at once.
    fn machine_and_sched(&mut self, spec: &ArchSpec) -> (&MachineResources, &mut SchedScratch) {
        let EvalScratch { machine, sched } = self;
        match machine {
            Some((s, _)) if s == spec => {}
            // Registers are the one axis outside the scheduling
            // signature: same datapath, different bank size. Patch the
            // dealt register fields (flat view and description agree on
            // `regs / clusters`) — the result is exactly `from_spec`.
            Some((s, m))
                if {
                    let mut sib = *s;
                    sib.regs = spec.regs;
                    sib == *spec
                } =>
            {
                let per_cluster = spec.regs / spec.clusters;
                for cl in &mut m.clusters {
                    cl.regs = per_cluster;
                }
                m.mdes.retune_regs(spec.regs);
                *s = *spec;
            }
            _ => *machine = Some((*spec, MachineResources::from_spec(spec))),
        }
        let m = &machine
            .get_or_insert_with(|| (*spec, MachineResources::from_spec(spec)))
            .1;
        (m, sched)
    }
}

/// One successful `(architecture, benchmark)` measurement.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Measurement {
    /// Cycles per output unit at the chosen unroll factor, including any
    /// spill penalty (architecture cycles — multiply by the derate for
    /// time).
    pub cycles_per_output: f64,
    /// The chosen unroll factor.
    pub unroll: u32,
    /// Whether even the un-unrolled kernel spilled (penalty applied).
    pub spilled: bool,
    /// Compilations performed for this pair (Table 3 accounting).
    pub compilations: u32,
}

/// The evaluation of one `(architecture, benchmark)` pair: either a
/// [`Measurement`], or a quarantine record explaining why this unit
/// produced none. Failed units never abort a sweep — they ride along so
/// the exploration can report degraded coverage honestly.
#[derive(Debug, Clone, PartialEq)]
pub enum EvalOutcome {
    /// The evaluation completed.
    Done(Measurement),
    /// The evaluation was quarantined.
    Failed {
        /// Why (caught panic, exhausted fuel budget, or a typed error).
        reason: FailReason,
    },
}

impl EvalOutcome {
    /// The measurement, if the unit completed.
    #[must_use]
    pub fn measurement(&self) -> Option<&Measurement> {
        match self {
            EvalOutcome::Done(m) => Some(m),
            EvalOutcome::Failed { .. } => None,
        }
    }

    /// The quarantine record, if the unit failed.
    #[must_use]
    pub fn failure(&self) -> Option<&FailReason> {
        match self {
            EvalOutcome::Done(_) => None,
            EvalOutcome::Failed { reason } => Some(reason),
        }
    }

    /// Whether the unit completed.
    #[must_use]
    pub fn is_done(&self) -> bool {
        matches!(self, EvalOutcome::Done(_))
    }

    /// Cycles per output, or NaN for a quarantined unit. NaN is the
    /// honest missing-data value here: it propagates through speedups
    /// and means the analysis layers must (and do) treat the pair as
    /// incomparable rather than silently ranking it.
    #[must_use]
    pub fn cycles_per_output(&self) -> f64 {
        self.measurement().map_or(f64::NAN, |m| m.cycles_per_output)
    }

    /// Compilations this unit performed (0 for a quarantined unit).
    #[must_use]
    pub fn compilations(&self) -> u32 {
        self.measurement().map_or(0, |m| m.compilations)
    }
}

/// The unroll sweep shared by the direct and memoized evaluation paths.
/// `compile_one` returns `(fits, cycles_per_iter)` for one plan under
/// the given fuel (the unroll factor rides along so a traced caller can
/// label the attempt); how — fresh compile or cache lookup — is the
/// caller's business. Each unroll factor gets a fresh budget of
/// `fuel_budget` steps. A compile error at `u = 1` fails the whole unit;
/// at deeper unrolls it stops the sweep and keeps the best result so
/// far, exactly like the paper's spill rule — deeper unrolling is an
/// optimization, and an optimization that goes over budget is simply not
/// taken.
fn unroll_sweep(
    bench: Benchmark,
    budget: usize,
    plans: &PlanCache,
    fuel_budget: Option<u64>,
    mut compile_one: impl FnMut(PlanId, u32, &mut Fuel) -> Result<(bool, u32), SchedError>,
) -> Result<Measurement, EvalError> {
    let mut best: Option<Measurement> = None;
    let mut compilations = 0;

    for &u in &UNROLL_SWEEP {
        let Some(id) = plans.id(bench, budget, u) else {
            break; // body cap reached; larger unrolls only grow
        };
        let mut fuel = Fuel::from_budget(fuel_budget);
        let (fits, cycles) = match compile_one(id, u, &mut fuel) {
            Ok(r) => r,
            Err(_) if best.is_some() => break,
            Err(source) => {
                return Err(EvalError::Sched {
                    bench,
                    unroll: u,
                    source,
                })
            }
        };
        compilations += 1;
        if !fits && u > 1 {
            break; // the paper's rule: spilling stops the sweep
        }
        let cpo = f64::from(cycles) / f64::from(plans.kernel(id).outputs_per_iter);
        if best.as_ref().is_none_or(|b| cpo < b.cycles_per_output) {
            best = Some(Measurement {
                cycles_per_output: cpo,
                unroll: u,
                spilled: !fits,
                compilations: 0, // filled once the sweep's total is known
            });
        }
        if !fits {
            break; // u == 1 spilled: keep the penalized result, stop
        }
    }
    let Some(mut out) = best else {
        return Err(EvalError::MissingPlan { bench, budget });
    };
    out.compilations = compilations;
    Ok(out)
}

/// Evaluate one benchmark on one architecture.
///
/// # Panics
/// Panics if the cache is missing the un-unrolled plan for the
/// benchmark (build the cache with the same benchmarks and register
/// sizes as the space being explored). Sweeps over untrusted candidates
/// should call [`try_evaluate`].
#[must_use]
pub fn evaluate(spec: &ArchSpec, bench: Benchmark, cache: &PlanCache) -> Measurement {
    match try_evaluate(spec, bench, cache, None) {
        Ok(m) => m,
        Err(e) => panic!("evaluation failed without a fuel budget: {e}"),
    }
}

/// [`evaluate`] with failures as values and an optional per-compilation
/// step budget.
///
/// # Errors
/// [`EvalError::MissingPlan`] on a mismatched plan cache;
/// [`EvalError::Sched`] when the un-unrolled compilation itself goes
/// over budget (deeper unrolls going over merely stop the sweep).
pub fn try_evaluate(
    spec: &ArchSpec,
    bench: Benchmark,
    cache: &PlanCache,
    fuel_budget: Option<u64>,
) -> Result<Measurement, EvalError> {
    try_evaluate_in(spec, bench, cache, fuel_budget, &mut EvalScratch::new())
}

/// [`try_evaluate`] with caller-provided scratch, the sweep's hot path.
/// Results are bit-identical to a fresh scratch; reuse only removes
/// allocation.
///
/// # Errors
/// As [`try_evaluate`].
pub fn try_evaluate_in(
    spec: &ArchSpec,
    bench: Benchmark,
    cache: &PlanCache,
    fuel_budget: Option<u64>,
    scratch: &mut EvalScratch,
) -> Result<Measurement, EvalError> {
    try_evaluate_traced_in(
        spec,
        bench,
        cache,
        fuel_budget,
        scratch,
        &mut UnitTrace::disabled(),
    )
}

/// [`try_evaluate_in`] recording the full per-unroll span pipeline: the
/// scheduler's `prepare`/`assign`/`ddg`/`list`/`regalloc` spans plus one
/// `compile` span per attempted unroll factor (fuel spent, capacity
/// verdict, cycles). With a disabled trace this is exactly
/// [`try_evaluate_in`].
///
/// # Errors
/// As [`try_evaluate`].
pub fn try_evaluate_traced_in(
    spec: &ArchSpec,
    bench: Benchmark,
    cache: &PlanCache,
    fuel_budget: Option<u64>,
    scratch: &mut EvalScratch,
    trace: &mut UnitTrace<'_>,
) -> Result<Measurement, EvalError> {
    let (machine, sched) = scratch.machine_and_sched(spec);
    unroll_sweep(
        bench,
        residency_budget(spec.regs),
        cache,
        fuel_budget,
        |id, u, fuel| {
            let t0 = trace.start();
            let before = fuel.spent();
            let out = (|| -> Result<(bool, u32), SchedError> {
                let prepared = prepare_traced(cache.kernel(id), machine, trace);
                let core = try_compile_core_traced_in(&prepared, machine, fuel, sched, trace)?;
                let result = finish(&core, machine);
                Ok((result.fits(), result.cycles_per_iter()))
            })();
            let steps = fuel.spent() - before;
            match &out {
                Ok((fits, cycles)) => trace.stage(
                    Stage::Compile,
                    t0,
                    &[
                        ("unroll", Value::U64(u64::from(u))),
                        ("cache", Value::Str("off")),
                        ("steps", Value::U64(steps)),
                        ("fits", Value::Bool(*fits)),
                        ("cycles", Value::U64(u64::from(*cycles))),
                    ],
                ),
                Err(e) => trace.stage(
                    Stage::Compile,
                    t0,
                    &[
                        ("unroll", Value::U64(u64::from(u))),
                        ("cache", Value::Str("off")),
                        ("steps", Value::U64(steps)),
                        ("error", Value::Str(e.token())),
                    ],
                ),
            }
            out
        },
    )
}

/// Evaluate one benchmark on one architecture, sharing compile work
/// through `memo` with every architecture that schedules alike.
///
/// Behaviourally identical to [`evaluate`] — same outcome, same logical
/// compilation count — but each `(plan, scheduling signature)` pair is
/// scheduled once per exploration instead of once per architecture.
/// Only the register-capacity verdict and the spill penalty, which do
/// depend on the register-file size, are recomputed here per machine.
///
/// # Panics
/// Panics as [`evaluate`] does on a mismatched plan cache.
#[must_use]
pub fn evaluate_cached(
    spec: &ArchSpec,
    bench: Benchmark,
    cache: &PlanCache,
    memo: &CompileCache,
) -> Measurement {
    match try_evaluate_cached(spec, bench, cache, memo, None) {
        Ok(m) => m,
        Err(e) => panic!("evaluation failed without a fuel budget: {e}"),
    }
}

/// [`try_evaluate`] through the compile cache.
///
/// Budget verdicts stay deterministic under memoization: cores are
/// computed under unlimited fuel and record the steps they cost
/// ([`cfp_sched::SchedCore::steps`]); every lookup — hit or miss —
/// charges that price against this unit's own fuel. A compilation
/// therefore passes or fails the budget identically whether it was
/// scheduled here or served from another architecture's work, on any
/// thread interleaving.
///
/// # Errors
/// As [`try_evaluate`].
pub fn try_evaluate_cached(
    spec: &ArchSpec,
    bench: Benchmark,
    cache: &PlanCache,
    memo: &CompileCache,
    fuel_budget: Option<u64>,
) -> Result<Measurement, EvalError> {
    try_evaluate_cached_in(
        spec,
        bench,
        cache,
        memo,
        fuel_budget,
        &mut EvalScratch::new(),
    )
}

/// [`try_evaluate_cached`] with caller-provided scratch. On a cache hit
/// the scratch is untouched; on a miss the compile runs entirely inside
/// it, so a worker thread's steady state allocates nothing either way.
///
/// # Errors
/// As [`try_evaluate`].
pub fn try_evaluate_cached_in(
    spec: &ArchSpec,
    bench: Benchmark,
    cache: &PlanCache,
    memo: &CompileCache,
    fuel_budget: Option<u64>,
    scratch: &mut EvalScratch,
) -> Result<Measurement, EvalError> {
    try_evaluate_cached_traced_in(
        spec,
        bench,
        cache,
        memo,
        fuel_budget,
        scratch,
        &mut UnitTrace::disabled(),
    )
}

/// [`try_evaluate_cached_in`] recording one `compile` span per attempted
/// unroll factor, labelled `cache: "hit"` when the core was served from
/// another unit's work and `"miss"` when this unit scheduled it (the
/// miss additionally records the scheduler's inner spans). Which unit
/// of a sharing set sees the miss depends on thread interleaving; the
/// steps charged and the verdicts do not. With a disabled trace this is
/// exactly [`try_evaluate_cached_in`].
///
/// # Errors
/// As [`try_evaluate`].
pub fn try_evaluate_cached_traced_in(
    spec: &ArchSpec,
    bench: Benchmark,
    cache: &PlanCache,
    memo: &CompileCache,
    fuel_budget: Option<u64>,
    scratch: &mut EvalScratch,
    trace: &mut UnitTrace<'_>,
) -> Result<Measurement, EvalError> {
    let (machine, sched) = scratch.machine_and_sched(spec);
    // Derive the memo key from the memoized description rather than a
    // throwaway `Mdes`: this keeps the warm path allocation-free (see
    // `tests/trace_equivalence.rs`).
    let sig = spec.sched_signature_with(&machine.mdes);
    unroll_sweep(
        bench,
        residency_budget(spec.regs),
        cache,
        fuel_budget,
        |id, u, fuel| {
            let t0 = trace.start();
            let mut computed = false;
            let out = (|| -> Result<(bool, u32, u64, u32), SchedError> {
                let core = memo.try_core(id, sig, || {
                    computed = true;
                    let prepared = memo.prepared(id, machine.l2_latency, || {
                        prepare_traced(cache.kernel(id), machine, trace)
                    });
                    try_compile_core_traced_in(
                        &prepared,
                        machine,
                        &mut Fuel::unlimited(),
                        sched,
                        trace,
                    )
                })?;
                fuel.spend(core.steps)?;
                let excess: u32 = core
                    .peak
                    .iter()
                    .zip(&machine.clusters)
                    .map(|(&p, c)| p.saturating_sub(c.regs))
                    .sum();
                Ok((
                    excess == 0,
                    core.length + spill_penalty_cycles(excess, machine),
                    core.steps,
                    excess,
                ))
            })();
            let served = if computed { "miss" } else { "hit" };
            match &out {
                Ok((fits, cycles, steps, excess)) => trace.stage(
                    Stage::Compile,
                    t0,
                    &[
                        ("unroll", Value::U64(u64::from(u))),
                        ("cache", Value::Str(served)),
                        ("steps", Value::U64(*steps)),
                        ("fits", Value::Bool(*fits)),
                        ("cycles", Value::U64(u64::from(*cycles))),
                        ("spill_excess", Value::U64(u64::from(*excess))),
                    ],
                ),
                Err(e) => trace.stage(
                    Stage::Compile,
                    t0,
                    &[
                        ("unroll", Value::U64(u64::from(u))),
                        ("cache", Value::Str(served)),
                        ("error", Value::Str(e.token())),
                    ],
                ),
            }
            out.map(|(fits, cycles, _, _)| (fits, cycles))
        },
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_cache() -> PlanCache {
        PlanCache::build(&[Benchmark::D, Benchmark::A], &[64, 256], &[1, 2, 4])
    }

    #[test]
    fn cache_holds_each_budget_and_unroll() {
        let c = small_cache();
        assert!(c.get(Benchmark::D, residency_budget(64), 1).is_some());
        assert!(c.get(Benchmark::D, residency_budget(256), 4).is_some());
        assert!(c.get(Benchmark::D, residency_budget(128), 1).is_none());
        assert_eq!(c.len(), 2 * 2 * 3);
    }

    #[test]
    fn baseline_evaluates_every_benchmark() {
        let cache = PlanCache::build(&Benchmark::ALL, &[64], &[1, 2]);
        for b in Benchmark::ALL {
            let out = evaluate(&ArchSpec::baseline(), b, &cache);
            assert!(out.cycles_per_output > 1.0, "{b}: {out:?}");
            assert!(out.compilations >= 1);
        }
    }

    #[test]
    fn richer_machine_is_faster_per_output() {
        let cache = PlanCache::build(&[Benchmark::D], &[64, 256], &[1, 2, 4]);
        let base = evaluate(&ArchSpec::baseline(), Benchmark::D, &cache);
        let big = evaluate(
            &ArchSpec::new(8, 4, 256, 2, 4, 1).unwrap(),
            Benchmark::D,
            &cache,
        );
        assert!(big.cycles_per_output < base.cycles_per_output);
    }

    #[test]
    fn unrolling_is_chosen_when_it_helps() {
        let cache = PlanCache::build(&[Benchmark::G], &[256], &[1, 2, 4]);
        let out = evaluate(
            &ArchSpec::new(8, 4, 256, 4, 2, 1).unwrap(),
            Benchmark::G,
            &cache,
        );
        assert!(out.unroll > 1, "{out:?}");
    }

    #[test]
    fn regs_only_siblings_patch_the_lowering_exactly() {
        // The signature-level memo's in-place register re-deal must be
        // indistinguishable from a fresh lowering.
        let mut scratch = EvalScratch::new();
        let a = ArchSpec::new(8, 4, 128, 2, 4, 4).unwrap();
        let b = ArchSpec::new(8, 4, 512, 2, 4, 4).unwrap();
        scratch.machine_and_sched(&a);
        let (m, _) = scratch.machine_and_sched(&b);
        assert_eq!(*m, MachineResources::from_spec(&b));
        // A non-sibling (different cluster count) rebuilds, also exactly.
        let c = ArchSpec::new(8, 4, 512, 2, 4, 2).unwrap();
        let (m, _) = scratch.machine_and_sched(&c);
        assert_eq!(*m, MachineResources::from_spec(&c));
    }

    #[test]
    fn a_reused_eval_scratch_changes_no_measurement() {
        // One scratch across architectures and benchmarks (including a
        // machine switch, which re-lowers the memoized resources) must
        // reproduce the fresh-scratch measurements bit for bit.
        let cache = small_cache();
        let specs = [
            ArchSpec::baseline(),
            ArchSpec::new(8, 4, 256, 2, 4, 2).unwrap(),
            ArchSpec::new(2, 1, 64, 1, 4, 1).unwrap(),
        ];
        let memo = CompileCache::new();
        let mut scratch = EvalScratch::new();
        for spec in &specs {
            for b in [Benchmark::D, Benchmark::A] {
                let fresh = try_evaluate(spec, b, &cache, None).unwrap();
                let reused = try_evaluate_in(spec, b, &cache, None, &mut scratch).unwrap();
                assert_eq!(fresh, reused, "{spec} {b}");
                let cached =
                    try_evaluate_cached_in(spec, b, &cache, &memo, None, &mut scratch).unwrap();
                assert_eq!(fresh, cached, "{spec} {b} (cached)");
            }
        }
    }

    #[test]
    fn plan_store_snapshots_match_a_cold_build_and_keep_ids_stable() {
        let benches = [Benchmark::D, Benchmark::A];
        let store = PlanStore::new();
        let snap = store.ensure_snapshot(&benches, &[64, 256], &[1, 2, 4]);
        let cold = PlanCache::build(&benches, &[64, 256], &[1, 2, 4]);
        assert_eq!(snap.len(), cold.len());
        assert_eq!(snap.unique_kernels(), cold.unique_kernels());
        // Same measurements through either cache.
        let spec = ArchSpec::new(8, 4, 256, 2, 4, 2).unwrap();
        for b in benches {
            assert_eq!(evaluate(&spec, b, &snap), evaluate(&spec, b, &cold), "{b}");
        }
        // A second, overlapping snapshot hits the plan map and reuses
        // the same ids for shared triples — the cross-job contract.
        let again = store.ensure_snapshot(&[Benchmark::D], &[256], &[1, 2, 4]);
        assert!(store.plan_hits() > 0);
        let budget = residency_budget(256);
        for u in [1, 2, 4] {
            assert_eq!(
                snap.id(Benchmark::D, budget, u),
                again.id(Benchmark::D, budget, u),
                "unroll {u}"
            );
        }
    }

    #[test]
    fn a_bounded_plan_store_reinterns_evicted_plans_to_the_same_id() {
        // Cap 2 forces every round to evict; ids must come back
        // identical because interning is by content.
        let store = PlanStore::bounded(2);
        let first = store.ensure_snapshot(&[Benchmark::D, Benchmark::A], &[64, 256], &[1, 2]);
        let evictions_after_first = store.plan_evictions();
        assert!(evictions_after_first > 0, "cap 2 over 8 triples must evict");
        let second = store.ensure_snapshot(&[Benchmark::D, Benchmark::A], &[64, 256], &[1, 2]);
        for b in [Benchmark::D, Benchmark::A] {
            for &r in &[64u32, 256] {
                for u in [1, 2] {
                    let budget = residency_budget(r);
                    assert_eq!(
                        first.id(b, budget, u),
                        second.id(b, budget, u),
                        "{b} budget {budget} unroll {u}"
                    );
                }
            }
        }
        // The kernel store never shrank or re-numbered: recomputing the
        // evicted triples re-interned to existing ids.
        assert_eq!(first.unique_kernels(), store.unique_kernels());
    }

    #[test]
    fn a_is_stuck_at_unroll_one_on_tiny_register_files() {
        // The paper's pathology: benchmark A's unrolled 7x7 window does
        // not fit 8 clusters x 16 registers, so the machine chosen for H
        // cannot unroll A at all — while the same datapath with 512
        // registers unrolls deeply and runs several times faster.
        let cache = PlanCache::build(&[Benchmark::A], &[128, 512], &[1, 2, 4, 8]);
        let starved = evaluate(
            &ArchSpec::new(16, 4, 128, 1, 4, 8).unwrap(),
            Benchmark::A,
            &cache,
        );
        let roomy = evaluate(
            &ArchSpec::new(16, 4, 512, 1, 4, 8).unwrap(),
            Benchmark::A,
            &cache,
        );
        assert_eq!(starved.unroll, 1, "{starved:?}");
        assert!(roomy.unroll >= 4, "{roomy:?}");
        assert!(roomy.cycles_per_output * 2.0 < starved.cycles_per_output);
    }
}
