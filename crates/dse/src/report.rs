//! Plain-text and CSV rendering of exploration results.

use crate::explore::RunStats;
use crate::pareto::ScatterPoint;

/// A simple aligned text table.
#[derive(Debug, Clone, Default)]
pub struct TextTable {
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl TextTable {
    /// Start a table with the given column headers.
    #[must_use]
    pub fn new<S: Into<String>>(header: impl IntoIterator<Item = S>) -> Self {
        TextTable {
            header: header.into_iter().map(Into::into).collect(),
            rows: Vec::new(),
        }
    }

    /// Append a row (padded or truncated to the header width).
    pub fn row<S: Into<String>>(&mut self, cells: impl IntoIterator<Item = S>) -> &mut Self {
        let mut r: Vec<String> = cells.into_iter().map(Into::into).collect();
        r.resize(self.header.len(), String::new());
        self.rows.push(r);
        self
    }

    /// Render as CSV (no quoting — cells are plain identifiers/numbers).
    #[must_use]
    pub fn to_csv(&self) -> String {
        let mut out = self.header.join(",");
        out.push('\n');
        for r in &self.rows {
            out.push_str(&r.join(","));
            out.push('\n');
        }
        out
    }
}

impl std::fmt::Display for TextTable {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let ncols = self.header.len();
        let mut width = vec![0_usize; ncols];
        for row in std::iter::once(&self.header).chain(&self.rows) {
            for (i, c) in row.iter().enumerate() {
                width[i] = width[i].max(c.chars().count());
            }
        }
        let line = |row: &[String], f: &mut std::fmt::Formatter<'_>| {
            for (i, c) in row.iter().enumerate() {
                if i > 0 {
                    write!(f, "  ")?;
                }
                write!(f, "{c:>w$}", w = width[i])?;
            }
            writeln!(f)
        };
        line(&self.header, f)?;
        let total: usize = width.iter().sum::<usize>() + 2 * (ncols - 1);
        writeln!(f, "{}", "-".repeat(total))?;
        for r in &self.rows {
            line(r, f)?;
        }
        Ok(())
    }
}

/// Render the run's accounting counters as a two-column table: the
/// paper's Table 3 quantities plus the reuse, robustness, and scheduler
/// counters this reproduction adds (`ii_attempts` is nonzero only for
/// software-pipelining ablation runs — the exhaustive sweep
/// list-schedules every unit).
#[must_use]
pub fn run_stats_table(stats: &RunStats) -> TextTable {
    let mut t = TextTable::new(["counter", "value"]);
    t.row([
        "compilations (logical)".to_owned(),
        stats.compilations.to_string(),
    ])
    .row([
        "  of which cache hits".to_owned(),
        stats.cache_hits.to_string(),
    ])
    .row([
        "unique schedules".to_owned(),
        stats.unique_schedules.to_string(),
    ])
    .row(["unique plans".to_owned(), stats.unique_plans.to_string()])
    .row(["architectures".to_owned(), stats.architectures.to_string()])
    .row([
        "modulo II attempts".to_owned(),
        stats.ii_attempts.to_string(),
    ])
    .row([
        "quarantined units".to_owned(),
        stats.failed_units.to_string(),
    ])
    .row([
        "  of which fuel-exhausted".to_owned(),
        stats.fuel_exhausted.to_string(),
    ])
    .row([
        "resumed from checkpoint".to_owned(),
        stats.resumed_units.to_string(),
    ])
    .row([
        "planning wall".to_owned(),
        format!("{:.3}s", stats.plan_wall.as_secs_f64()),
    ])
    .row([
        "evaluation wall".to_owned(),
        format!("{:.3}s", stats.eval_wall.as_secs_f64()),
    ])
    .row([
        "total wall".to_owned(),
        format!("{:.3}s", stats.wall.as_secs_f64()),
    ]);
    t
}

/// Render a cost/speedup scatter as ASCII art (cost on x, speedup on y),
/// with frontier points drawn as `#` and the rest as `*`.
#[must_use]
pub fn ascii_scatter(
    points: &[ScatterPoint],
    frontier: &[usize],
    width: usize,
    height: usize,
) -> String {
    if points.is_empty() {
        return String::from("(no points)\n");
    }
    let max_cost = points.iter().map(|p| p.cost).fold(1.0_f64, f64::max);
    let max_su = points.iter().map(|p| p.speedup).fold(1.0_f64, f64::max);
    let mut grid = vec![vec![' '; width]; height];
    let on_frontier: std::collections::HashSet<usize> = frontier.iter().copied().collect();
    for (i, p) in points.iter().enumerate() {
        let x = ((p.cost / max_cost) * (width as f64 - 1.0)).round() as usize;
        let y = ((p.speedup / max_su) * (height as f64 - 1.0)).round() as usize;
        let row = height - 1 - y.min(height - 1);
        let col = x.min(width - 1);
        let mark = if on_frontier.contains(&i) { '#' } else { '*' };
        // Frontier marks win over plain ones.
        if grid[row][col] != '#' {
            grid[row][col] = mark;
        }
    }
    let mut out = String::new();
    out.push_str(&format!("speedup (max {max_su:.2})\n"));
    for row in grid {
        out.push('|');
        out.extend(row);
        out.push('\n');
    }
    out.push('+');
    out.push_str(&"-".repeat(width));
    out.push_str(&format!("> cost (max {max_cost:.1})\n"));
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use cfp_machine::ArchSpec;

    #[test]
    fn table_alignment_and_csv() {
        let mut t = TextTable::new(["name", "value"]);
        t.row(["a", "1"]).row(["long-name", "22"]);
        let s = t.to_string();
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[0].contains("name") && lines[0].contains("value"));
        assert!(lines[2].ends_with('1'));
        assert_eq!(t.to_csv(), "name,value\na,1\nlong-name,22\n");
    }

    #[test]
    fn run_stats_table_lists_every_counter() {
        let stats = RunStats {
            compilations: 120,
            ii_attempts: 7,
            ..RunStats::default()
        };
        let s = run_stats_table(&stats).to_string();
        assert!(s.contains("compilations (logical)") && s.contains("120"));
        assert!(s.contains("modulo II attempts") && s.contains('7'));
        assert!(s.contains("total wall"));
    }

    #[test]
    fn scatter_renders_marks() {
        let p = |cost: f64, su: f64| ScatterPoint {
            spec: ArchSpec::baseline(),
            cost,
            speedup: su,
        };
        let pts = vec![p(1.0, 1.0), p(5.0, 3.0), p(10.0, 2.0)];
        let art = ascii_scatter(&pts, &[0, 1], 20, 10);
        assert!(art.contains('#'));
        assert!(art.contains('*'));
        assert!(art.contains("max 3.00"));
    }
}
