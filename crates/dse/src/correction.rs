//! The paper's clustering "correction value" approximation, as an
//! ablation.
//!
//! To avoid an exponential explosion of runtime, the paper did **not**
//! compile for every cluster arrangement: it computed "a 'correction
//! value' as a function of the number of clusters, by running a set of
//! separate experiments for a few significant architecture data points"
//! (§2.4), and asserted "this approximation is enough to account for the
//! effects of clustering".
//!
//! Our reproduction schedules every arrangement for real, which lets us
//! *test* that assertion: derive per-cluster-count correction factors
//! from a few sample base points exactly as the paper did, predict every
//! other clustered result from its single-cluster sibling, and measure
//! the prediction error against the fully-scheduled truth.

use crate::explore::Exploration;
use cfp_machine::ArchSpec;
use std::collections::HashMap;

/// Per-benchmark correction factors: `factor[bench][clusters]` ≈
/// `cycles(c clusters) / cycles(1 cluster)` at the sample points.
#[derive(Debug, Clone)]
pub struct CorrectionModel {
    factors: Vec<HashMap<u32, f64>>,
}

/// The key of a base point (everything but the cluster count).
fn base_key(s: &ArchSpec) -> (u32, u32, u32, u32, u32) {
    (s.alus, s.muls, s.regs, s.l2_ports, s.l2_latency)
}

impl CorrectionModel {
    /// Fit correction factors from up to `samples` base points that have
    /// both single-cluster and multi-cluster evaluations.
    #[must_use]
    pub fn fit(ex: &Exploration, samples: usize) -> Self {
        // Group arch indices by base point.
        let mut groups: HashMap<(u32, u32, u32, u32, u32), Vec<usize>> = HashMap::new();
        for (i, a) in ex.archs.iter().enumerate() {
            groups.entry(base_key(&a.spec)).or_default().push(i);
        }
        let mut sample_groups: Vec<&Vec<usize>> = groups
            .values()
            .filter(|g| g.len() > 1 && g.iter().any(|&i| ex.archs[i].spec.clusters == 1))
            .collect();
        // Deterministic sample choice: spread across the space.
        sample_groups.sort_by_key(|g| ex.archs[g[0]].spec);
        let stride = (sample_groups.len() / samples.max(1)).max(1);
        let chosen: Vec<&Vec<usize>> = sample_groups.iter().step_by(stride).copied().collect();

        let mut factors = vec![HashMap::<u32, (f64, f64)>::new(); ex.benches.len()];
        for g in chosen {
            // The groups were filtered to contain a single-cluster member,
            // but stay total if that invariant ever breaks.
            let Some(mono) = g.iter().find(|&&i| ex.archs[i].spec.clusters == 1).copied() else {
                continue;
            };
            for &i in g {
                let c = ex.archs[i].spec.clusters;
                for (b, acc) in factors.iter_mut().enumerate() {
                    let ratio = ex.archs[i].outcomes[b].cycles_per_output()
                        / ex.archs[mono].outcomes[b].cycles_per_output();
                    // A quarantined unit has no measurement (NaN); it
                    // cannot contribute a sample to the fit.
                    if !ratio.is_finite() {
                        continue;
                    }
                    let e = acc.entry(c).or_insert((0.0, 0.0));
                    e.0 += ratio;
                    e.1 += 1.0;
                }
            }
        }
        CorrectionModel {
            factors: factors
                .into_iter()
                .map(|m| m.into_iter().map(|(c, (s, n))| (c, s / n)).collect())
                .collect(),
        }
    }

    /// Predicted cycles-per-output of arch `i` on bench column `b`,
    /// given only the single-cluster sibling's measurement.
    #[must_use]
    pub fn predict(&self, ex: &Exploration, i: usize, b: usize) -> Option<f64> {
        let spec = ex.archs[i].spec;
        let mono_cpo = ex
            .archs
            .iter()
            .position(|a| a.spec.clusters == 1 && base_key(&a.spec) == base_key(&spec))
            .map(|m| ex.archs[m].outcomes[b].cycles_per_output())
            .filter(|c| c.is_finite())?;
        let f = *self.factors[b].get(&spec.clusters)?;
        Some(mono_cpo * f)
    }
}

/// Error statistics of the approximation over the whole exploration.
#[derive(Debug, Clone, Copy, Default)]
pub struct AblationReport {
    /// Predictions compared.
    pub points: usize,
    /// Mean |relative error| of predicted cycles.
    pub mean_abs_err: f64,
    /// Maximum |relative error|.
    pub max_abs_err: f64,
    /// Fraction of (benchmark, cost-bound) design decisions that come
    /// out identical under the approximation (best-arch agreement at
    /// cost bounds 5/10/15).
    pub decision_agreement: f64,
}

/// Evaluate the paper's approximation against full clustered scheduling.
#[must_use]
pub fn ablation(ex: &Exploration, samples: usize) -> AblationReport {
    let model = CorrectionModel::fit(ex, samples);
    let mut points = 0_usize;
    let mut sum = 0.0;
    let mut max = 0.0_f64;
    for (i, arch) in ex.archs.iter().enumerate() {
        if arch.spec.clusters == 1 {
            continue;
        }
        for b in 0..ex.benches.len() {
            let Some(pred) = model.predict(ex, i, b) else {
                continue;
            };
            let truth = arch.outcomes[b].cycles_per_output();
            if !truth.is_finite() {
                continue; // a quarantined unit has no truth to score against
            }
            let rel = ((pred - truth) / truth).abs();
            points += 1;
            sum += rel;
            max = max.max(rel);
        }
    }

    // Decision agreement: does argmax-speedup-under-cost change?
    let mut decisions = 0_usize;
    let mut agree = 0_usize;
    for bound in [5.0, 10.0, 15.0] {
        for b in 0..ex.benches.len() {
            // NaN speedups (quarantined units) are excluded from both
            // argmaxes; total_cmp keeps the comparison total regardless.
            let truth_best = (0..ex.archs.len())
                .filter(|&i| ex.archs[i].cost <= bound && ex.speedup(i, b).is_finite())
                .max_by(|&x, &y| ex.speedup(x, b).total_cmp(&ex.speedup(y, b)));
            let approx_value = |i: usize| -> f64 {
                let cpo = if ex.archs[i].spec.clusters == 1 {
                    Some(ex.archs[i].outcomes[b].cycles_per_output())
                } else {
                    model.predict(ex, i, b)
                };
                let v = cpo.map_or(f64::NEG_INFINITY, |c| {
                    ex.baseline.outcomes[b].cycles_per_output() / (c * ex.archs[i].derate)
                });
                if v.is_nan() {
                    f64::NEG_INFINITY
                } else {
                    v
                }
            };
            let approx_best = (0..ex.archs.len())
                .filter(|&i| ex.archs[i].cost <= bound)
                .max_by(|&x, &y| approx_value(x).total_cmp(&approx_value(y)));
            if let (Some(t), Some(a)) = (truth_best, approx_best) {
                decisions += 1;
                // Agreement up to near-ties: the approximate winner's true
                // speedup within 5% of the true winner's.
                let within = ex.speedup(a, b) >= 0.95 * ex.speedup(t, b);
                agree += usize::from(within);
            }
        }
    }

    AblationReport {
        points,
        mean_abs_err: if points > 0 { sum / points as f64 } else { 0.0 },
        max_abs_err: max,
        decision_agreement: if decisions > 0 {
            agree as f64 / decisions as f64
        } else {
            1.0
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::explore::ExploreConfig;
    use cfp_kernels::Benchmark;

    fn ex() -> Exploration {
        // Base points that expand to several cluster counts.
        let mut archs = Vec::new();
        for (a, m, r) in [(4_u32, 2_u32, 256_u32), (8, 4, 256), (8, 2, 512)] {
            for c in [1_u32, 2, 4] {
                archs.push(ArchSpec::new(a, m, r, 1, 4, c).expect("valid"));
            }
        }
        Exploration::run(&ExploreConfig {
            archs,
            benches: vec![Benchmark::D, Benchmark::H],
            threads: 1,
            ..ExploreConfig::default()
        })
    }

    #[test]
    fn correction_predicts_within_reason_and_reports() {
        let ex = ex();
        let report = ablation(&ex, 2);
        assert!(report.points > 0);
        assert!(report.mean_abs_err >= 0.0);
        assert!(report.max_abs_err >= report.mean_abs_err);
        assert!(report.decision_agreement > 0.0 && report.decision_agreement <= 1.0);
    }

    #[test]
    fn fitting_on_everything_is_self_consistent_at_samples() {
        let ex = ex();
        let model = CorrectionModel::fit(&ex, usize::MAX);
        // With every group sampled, predictions at the sampled points are
        // group-averaged, so errors stay bounded by in-group spread.
        for i in 0..ex.archs.len() {
            for b in 0..ex.benches.len() {
                if ex.archs[i].spec.clusters > 1 {
                    let p = model.predict(&ex, i, b).expect("covered");
                    assert!(p > 0.0);
                }
            }
        }
    }
}
