//! Concurrent compile-result memoization for the exploration sweep.
//!
//! The sweep compiles each plan for hundreds of architectures, but the
//! back end cannot tell most of them apart: scheduling reads the
//! machine's [`SchedSignature`] (the spec minus its register-file size),
//! and lowering reads only the Level-2 latency. [`CompileCache`] memoizes
//! both phases behind those exact keys, so the exploration does the
//! work once per *distinguishable* machine and the register axis — a 4×
//! multiplier in the paper's space — costs only a capacity check.
//!
//! The map is std-only: a fixed array of `Mutex<HashMap>` shards indexed
//! by key hash. Under a miss the shard lock is *released* while the
//! value is computed, so a long compile never blocks unrelated keys in
//! the same shard; two threads racing on one key may both compute it,
//! and the first insert wins. That race is benign — every value here is
//! a pure function of its key (given one plan cache), so the discarded
//! duplicate is bit-identical to the winner and determinism survives any
//! interleaving.

use crate::eval::PlanId;
use cfp_machine::SchedSignature;
use cfp_sched::{Prepared, SchedCore};
use std::collections::HashMap;
use std::hash::{BuildHasher, Hash, RandomState};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, MutexGuard, PoisonError};

/// Shard count: enough that the paper-scale sweep (≲ a few hundred
/// distinct keys, ≲ dozens of threads) rarely collides, small enough to
/// stay cheap to create. Power of two only for the modulo's sake.
const SHARDS: usize = 64;

/// A sharded concurrent memo table. Values are handed out in `Arc`s so a
/// hit is one clone of a pointer, never of a schedule.
#[derive(Debug)]
pub struct ShardedMap<K, V> {
    shards: Vec<Mutex<HashMap<K, Arc<V>>>>,
    hasher: RandomState,
    hits: AtomicU64,
    misses: AtomicU64,
}

impl<K: Eq + Hash, V> Default for ShardedMap<K, V> {
    fn default() -> Self {
        ShardedMap {
            shards: (0..SHARDS).map(|_| Mutex::new(HashMap::new())).collect(),
            hasher: RandomState::new(),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
        }
    }
}

/// Lock a memo shard, recovering from poisoning. A panic in *another*
/// thread can only have happened outside `f` (compute runs with the lock
/// released), so the map itself is never mid-mutation when poisoned;
/// every stored value is a completed, pure function of its key. Throwing
/// the data away over a dead neighbor would be strictly worse.
fn lock_shard<K, V>(shard: &Mutex<HashMap<K, Arc<V>>>) -> MutexGuard<'_, HashMap<K, Arc<V>>> {
    shard.lock().unwrap_or_else(PoisonError::into_inner)
}

impl<K: Eq + Hash + Clone, V> ShardedMap<K, V> {
    fn shard(&self, key: &K) -> &Mutex<HashMap<K, Arc<V>>> {
        let h = self.hasher.hash_one(key) as usize;
        &self.shards[h % SHARDS]
    }

    /// The value for `key`, computing it with `f` on a miss. `f` runs
    /// outside the shard lock; see the module docs for the (benign)
    /// duplicate-compute race this allows.
    pub fn get_or_insert_with(&self, key: &K, f: impl FnOnce() -> V) -> Arc<V> {
        match self.try_get_or_insert_with(key, || Ok::<V, std::convert::Infallible>(f())) {
            Ok(v) => v,
            Err(never) => match never {},
        }
    }

    /// [`Self::get_or_insert_with`] for fallible computations: an `Err`
    /// from `f` is returned to the caller and nothing is cached, so a
    /// failed compilation is re-attempted (and fails identically — every
    /// computation here is deterministic) rather than poisoning the map.
    pub fn try_get_or_insert_with<E>(
        &self,
        key: &K,
        f: impl FnOnce() -> Result<V, E>,
    ) -> Result<Arc<V>, E> {
        let shard = self.shard(key);
        if let Some(v) = lock_shard(shard).get(key) {
            self.hits.fetch_add(1, Ordering::Relaxed);
            return Ok(Arc::clone(v));
        }
        self.misses.fetch_add(1, Ordering::Relaxed);
        let value = Arc::new(f()?);
        Ok(Arc::clone(
            lock_shard(shard).entry(key.clone()).or_insert(value),
        ))
    }

    /// Lookups that found an entry.
    pub fn hits(&self) -> u64 {
        self.hits.load(Ordering::Relaxed)
    }

    /// Lookups that computed (or raced to compute) an entry.
    pub fn misses(&self) -> u64 {
        self.misses.load(Ordering::Relaxed)
    }

    /// Distinct keys stored.
    pub fn len(&self) -> usize {
        self.shards.iter().map(|s| lock_shard(s).len()).sum()
    }

    /// Whether nothing has been memoized.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// Both memo layers of the compile pipeline, shared by all worker
/// threads of one exploration:
///
/// * `prepared` — the machine-independent phase, keyed by the plan and
///   the only machine parameter it reads (the Level-2 latency);
/// * `cores` — assignment + scheduling + peak pressure, keyed by the
///   plan and the full scheduling signature.
#[derive(Debug, Default)]
pub struct CompileCache {
    prepared: ShardedMap<(PlanId, u32), Prepared>,
    cores: ShardedMap<(PlanId, SchedSignature), SchedCore>,
}

impl CompileCache {
    /// A fresh, empty cache.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// The prepared (lowered + dependence-analysed) form of a plan for
    /// machines with the given Level-2 latency.
    pub fn prepared(
        &self,
        id: PlanId,
        l2_latency: u32,
        f: impl FnOnce() -> Prepared,
    ) -> Arc<Prepared> {
        self.prepared.get_or_insert_with(&(id, l2_latency), f)
    }

    /// The scheduled core of a plan for machines with the given
    /// scheduling signature.
    pub fn core(
        &self,
        id: PlanId,
        sig: SchedSignature,
        f: impl FnOnce() -> SchedCore,
    ) -> Arc<SchedCore> {
        self.cores.get_or_insert_with(&(id, sig), f)
    }

    /// [`Self::core`] for fallible compilations: only successful cores
    /// are cached, and an `Err` from `f` comes straight back.
    pub fn try_core<E>(
        &self,
        id: PlanId,
        sig: SchedSignature,
        f: impl FnOnce() -> Result<SchedCore, E>,
    ) -> Result<Arc<SchedCore>, E> {
        self.cores.try_get_or_insert_with(&(id, sig), f)
    }

    /// Schedule lookups served from the cache.
    #[must_use]
    pub fn core_hits(&self) -> u64 {
        self.cores.hits()
    }

    /// Schedule lookups that had to compile.
    #[must_use]
    pub fn core_misses(&self) -> u64 {
        self.cores.misses()
    }

    /// Distinct `(plan, signature)` schedules actually computed.
    #[must_use]
    pub fn unique_cores(&self) -> usize {
        self.cores.len()
    }

    /// Distinct `(plan, latency)` lowerings actually computed.
    #[must_use]
    pub fn unique_prepared(&self) -> usize {
        self.prepared.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicUsize;

    #[test]
    fn second_lookup_hits_and_reuses_the_value() {
        let map: ShardedMap<u32, String> = ShardedMap::default();
        let a = map.get_or_insert_with(&7, || "seven".to_string());
        let b = map.get_or_insert_with(&7, || unreachable!("must hit"));
        assert!(Arc::ptr_eq(&a, &b));
        assert_eq!((map.hits(), map.misses(), map.len()), (1, 1, 1));
    }

    #[test]
    fn distinct_keys_do_not_collide() {
        let map: ShardedMap<u32, u32> = ShardedMap::default();
        for k in 0..500 {
            assert_eq!(*map.get_or_insert_with(&k, || k * 3), k * 3);
        }
        for k in 0..500 {
            assert_eq!(*map.get_or_insert_with(&k, || unreachable!()), k * 3);
        }
        assert_eq!(map.len(), 500);
        assert_eq!((map.hits(), map.misses()), (500, 500));
    }

    #[test]
    fn concurrent_hammering_computes_each_key_and_stays_consistent() {
        let map: ShardedMap<u32, u32> = ShardedMap::default();
        let computed = AtomicUsize::new(0);
        std::thread::scope(|scope| {
            for t in 0..8 {
                scope.spawn(|| {
                    let _ = t;
                    for round in 0..100 {
                        let k = round % 10;
                        let v = map.get_or_insert_with(&k, || {
                            computed.fetch_add(1, Ordering::Relaxed);
                            k + 1000
                        });
                        assert_eq!(*v, k + 1000);
                    }
                });
            }
        });
        assert_eq!(map.len(), 10);
        // Racing threads may duplicate a computation, but every duplicate
        // produces the same value and only one copy is kept.
        assert!(computed.load(Ordering::Relaxed) >= 10);
        assert_eq!(map.hits() + map.misses(), 800);
    }

    #[test]
    fn failed_computations_are_not_cached() {
        let map: ShardedMap<u32, u32> = ShardedMap::default();
        let e = map.try_get_or_insert_with(&1, || Err::<u32, &str>("nope"));
        assert_eq!(e, Err("nope"));
        assert!(map.is_empty());
        // A later success on the same key computes and caches normally.
        let v = map.try_get_or_insert_with(&1, || Ok::<u32, &str>(11));
        assert_eq!(*v.expect("succeeds"), 11);
        assert_eq!(map.len(), 1);
    }

    #[test]
    fn a_poisoned_shard_keeps_serving_its_values() {
        let map = Arc::new(ShardedMap::<u32, u32>::default());
        for k in 0..50 {
            map.get_or_insert_with(&k, || k * 2);
        }
        // Poison every shard: panic while holding each lock in turn.
        for shard in &map.shards {
            let _ = std::thread::scope(|s| {
                s.spawn(move || {
                    let _guard = shard.lock().unwrap_or_else(PoisonError::into_inner);
                    panic!("poison the shard");
                })
                .join()
            });
        }
        assert!(map.shards.iter().any(|s| s.lock().is_err()), "poisoned");
        // Reads and writes still work on the recovered data.
        for k in 0..50 {
            assert_eq!(*map.get_or_insert_with(&k, || unreachable!()), k * 2);
        }
        assert_eq!(*map.get_or_insert_with(&100, || 7), 7);
    }
}
