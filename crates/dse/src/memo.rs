//! Concurrent compile-result memoization for the exploration sweep.
//!
//! The sweep compiles each plan for hundreds of architectures, but the
//! back end cannot tell most of them apart: scheduling reads the
//! machine's [`SchedSignature`] (the spec minus its register-file size),
//! and lowering reads only the Level-2 latency. [`CompileCache`] memoizes
//! both phases behind those exact keys, so the exploration does the
//! work once per *distinguishable* machine and the register axis — a 4×
//! multiplier in the paper's space — costs only a capacity check.
//!
//! The map is std-only: a fixed array of `Mutex<HashMap>` shards indexed
//! by key hash. Under a miss the shard lock is *released* while the
//! value is computed, so a long compile never blocks unrelated keys in
//! the same shard; two threads racing on one key may both compute it,
//! and the first insert wins. That race is benign — every value here is
//! a pure function of its key (given one plan cache), so the discarded
//! duplicate is bit-identical to the winner and determinism survives any
//! interleaving.
//!
//! ## Bounded caches (the service's eviction policy)
//!
//! A one-shot sweep can let the cache grow with the space, but the
//! long-running exploration service (DESIGN.md §15) shares one
//! [`CompileCache`] across every job it will ever run, so the cache must
//! be boundable. [`ShardedMap::bounded`] adds a **segmented-LRU**
//! eviction policy over each shard's slots: entries that have only been
//! inserted (probationary) are evicted before entries that have been hit
//! again (protected), oldest-touch first within each segment. Eviction
//! never compromises correctness — every value is a pure function of its
//! key, so a post-eviction recompute is bit-identical to the evicted
//! original (proven by `post_eviction_recompute_is_bit_identical`
//! below); the only cost is the recompute itself.

use crate::eval::PlanId;
use cfp_machine::SchedSignature;
use cfp_sched::{Prepared, SchedCore};
use std::collections::HashMap;
use std::hash::{BuildHasher, Hash, RandomState};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, MutexGuard, PoisonError};

/// Shard count: enough that the paper-scale sweep (≲ a few hundred
/// distinct keys, ≲ dozens of threads) rarely collides, small enough to
/// stay cheap to create. Power of two only for the modulo's sake.
const SHARDS: usize = 64;

/// One cached entry plus its segmented-LRU bookkeeping: the shard-local
/// touch stamp and whether the entry has graduated out of probation
/// (been hit at least once after insertion).
#[derive(Debug)]
struct Slot<V> {
    value: Arc<V>,
    stamp: u64,
    protected: bool,
}

/// One shard: the key → slot map plus the shard-local LRU clock.
#[derive(Debug)]
struct Shard<K, V> {
    map: HashMap<K, Slot<V>>,
    clock: u64,
}

impl<K, V> Default for Shard<K, V> {
    fn default() -> Self {
        Shard {
            map: HashMap::new(),
            clock: 0,
        }
    }
}

impl<K: Eq + Hash + Clone, V> Shard<K, V> {
    fn tick(&mut self) -> u64 {
        self.clock += 1;
        self.clock
    }

    /// Evict slots until the shard holds at most `cap` entries, never
    /// evicting `keep` (the entry the current caller just inserted —
    /// evicting it immediately would make a unit-capacity shard
    /// useless). Victim order is the segmented-LRU rule: oldest
    /// probationary slot first, oldest protected slot only when no
    /// probationary slot remains.
    fn enforce(&mut self, cap: usize, keep: &K) -> u64 {
        let mut evicted = 0;
        while self.map.len() > cap {
            let victim = self
                .map
                .iter()
                .filter(|(k, _)| *k != keep)
                .min_by_key(|(_, s)| (s.protected, s.stamp))
                .map(|(k, _)| k.clone());
            let Some(victim) = victim else { break };
            self.map.remove(&victim);
            evicted += 1;
        }
        evicted
    }
}

/// A sharded concurrent memo table, optionally bounded by a
/// segmented-LRU eviction policy (see the module docs). Values are
/// handed out in `Arc`s so a hit is one clone of a pointer, never of a
/// schedule — and an evicted value stays alive for as long as any
/// caller still holds its `Arc`.
#[derive(Debug)]
pub struct ShardedMap<K, V> {
    shards: Vec<Mutex<Shard<K, V>>>,
    hasher: RandomState,
    /// Per-shard slot budget; `None` means unbounded.
    shard_cap: Option<usize>,
    hits: AtomicU64,
    misses: AtomicU64,
    evictions: AtomicU64,
}

impl<K: Eq + Hash, V> Default for ShardedMap<K, V> {
    fn default() -> Self {
        Self::with_cap(None)
    }
}

/// Lock a memo shard, recovering from poisoning. A panic in *another*
/// thread can only have happened outside `f` (compute runs with the lock
/// released), so the map itself is never mid-mutation when poisoned;
/// every stored value is a completed, pure function of its key. Throwing
/// the data away over a dead neighbor would be strictly worse.
fn lock_shard<K, V>(shard: &Mutex<Shard<K, V>>) -> MutexGuard<'_, Shard<K, V>> {
    shard.lock().unwrap_or_else(PoisonError::into_inner)
}

impl<K: Eq + Hash, V> ShardedMap<K, V> {
    fn with_cap(shard_cap: Option<usize>) -> Self {
        ShardedMap {
            shards: (0..SHARDS).map(|_| Mutex::new(Shard::default())).collect(),
            hasher: RandomState::new(),
            shard_cap,
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            evictions: AtomicU64::new(0),
        }
    }

    /// A map bounded to roughly `cap` entries overall: each of the
    /// [`SHARDS`] shards gets a slot budget of `cap.div_ceil(SHARDS)`
    /// (at least 1), enforced by segmented-LRU eviction at insert time.
    /// Keys hash-scatter across shards, so the realized size tracks
    /// `cap` loosely, never exceeding `SHARDS * cap.div_ceil(SHARDS)`.
    #[must_use]
    pub fn bounded(cap: usize) -> Self {
        Self::with_cap(Some(cap.div_ceil(SHARDS).max(1)))
    }
}

impl<K: Eq + Hash + Clone, V> ShardedMap<K, V> {
    fn shard(&self, key: &K) -> &Mutex<Shard<K, V>> {
        let h = self.hasher.hash_one(key) as usize;
        &self.shards[h % SHARDS]
    }

    /// The value for `key`, computing it with `f` on a miss. `f` runs
    /// outside the shard lock; see the module docs for the (benign)
    /// duplicate-compute race this allows.
    pub fn get_or_insert_with(&self, key: &K, f: impl FnOnce() -> V) -> Arc<V> {
        match self.try_get_or_insert_with(key, || Ok::<V, std::convert::Infallible>(f())) {
            Ok(v) => v,
            Err(never) => match never {},
        }
    }

    /// [`Self::get_or_insert_with`] for fallible computations: an `Err`
    /// from `f` is returned to the caller and nothing is cached, so a
    /// failed compilation is re-attempted (and fails identically — every
    /// computation here is deterministic) rather than poisoning the map.
    pub fn try_get_or_insert_with<E>(
        &self,
        key: &K,
        f: impl FnOnce() -> Result<V, E>,
    ) -> Result<Arc<V>, E> {
        let shard = self.shard(key);
        {
            let mut guard = lock_shard(shard);
            let tick = guard.tick();
            if let Some(slot) = guard.map.get_mut(key) {
                // A hit graduates the slot out of probation: it has
                // proven reuse, so the eviction policy protects it over
                // entries that were only ever inserted.
                slot.stamp = tick;
                slot.protected = true;
                self.hits.fetch_add(1, Ordering::Relaxed);
                return Ok(Arc::clone(&slot.value));
            }
        }
        self.misses.fetch_add(1, Ordering::Relaxed);
        let value = Arc::new(f()?);
        let mut guard = lock_shard(shard);
        let tick = guard.tick();
        let out = Arc::clone(
            &guard
                .map
                .entry(key.clone())
                .or_insert(Slot {
                    value,
                    stamp: tick,
                    protected: false,
                })
                .value,
        );
        if let Some(cap) = self.shard_cap {
            let evicted = guard.enforce(cap, key);
            if evicted > 0 {
                self.evictions.fetch_add(evicted, Ordering::Relaxed);
            }
        }
        Ok(out)
    }

    /// Lookups that found an entry.
    pub fn hits(&self) -> u64 {
        self.hits.load(Ordering::Relaxed)
    }

    /// Lookups that computed (or raced to compute) an entry.
    pub fn misses(&self) -> u64 {
        self.misses.load(Ordering::Relaxed)
    }

    /// Entries evicted by the bound (0 for an unbounded map).
    pub fn evictions(&self) -> u64 {
        self.evictions.load(Ordering::Relaxed)
    }

    /// Distinct keys stored.
    pub fn len(&self) -> usize {
        self.shards.iter().map(|s| lock_shard(s).map.len()).sum()
    }

    /// Whether nothing has been memoized.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// Both memo layers of the compile pipeline, shared by all worker
/// threads of one exploration (or, in the exploration service, by every
/// job the daemon ever runs):
///
/// * `prepared` — the machine-independent phase, keyed by the plan and
///   the only machine parameter it reads (the Level-2 latency);
/// * `cores` — assignment + scheduling + peak pressure, keyed by the
///   plan and the full scheduling signature.
#[derive(Debug, Default)]
pub struct CompileCache {
    prepared: ShardedMap<(PlanId, u32), Prepared>,
    cores: ShardedMap<(PlanId, SchedSignature), SchedCore>,
}

impl CompileCache {
    /// A fresh, empty, unbounded cache.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// A cache whose `cores` layer (the large values — whole scheduled
    /// cores) is bounded to roughly `core_cap` entries by segmented-LRU
    /// eviction; see [`ShardedMap::bounded`]. The `prepared` layer stays
    /// unbounded: its population is `unique plans × distinct L2
    /// latencies`, small by construction. Eviction only ever costs a
    /// recompute — the recomputed core is bit-identical to the evicted
    /// one.
    #[must_use]
    pub fn bounded(core_cap: usize) -> Self {
        CompileCache {
            prepared: ShardedMap::default(),
            cores: ShardedMap::bounded(core_cap),
        }
    }

    /// The prepared (lowered + dependence-analysed) form of a plan for
    /// machines with the given Level-2 latency.
    pub fn prepared(
        &self,
        id: PlanId,
        l2_latency: u32,
        f: impl FnOnce() -> Prepared,
    ) -> Arc<Prepared> {
        self.prepared.get_or_insert_with(&(id, l2_latency), f)
    }

    /// The scheduled core of a plan for machines with the given
    /// scheduling signature.
    pub fn core(
        &self,
        id: PlanId,
        sig: SchedSignature,
        f: impl FnOnce() -> SchedCore,
    ) -> Arc<SchedCore> {
        self.cores.get_or_insert_with(&(id, sig), f)
    }

    /// [`Self::core`] for fallible compilations: only successful cores
    /// are cached, and an `Err` from `f` comes straight back.
    pub fn try_core<E>(
        &self,
        id: PlanId,
        sig: SchedSignature,
        f: impl FnOnce() -> Result<SchedCore, E>,
    ) -> Result<Arc<SchedCore>, E> {
        self.cores.try_get_or_insert_with(&(id, sig), f)
    }

    /// Schedule lookups served from the cache.
    #[must_use]
    pub fn core_hits(&self) -> u64 {
        self.cores.hits()
    }

    /// Schedule lookups that had to compile.
    #[must_use]
    pub fn core_misses(&self) -> u64 {
        self.cores.misses()
    }

    /// Scheduled cores evicted by the bound (0 when unbounded).
    #[must_use]
    pub fn core_evictions(&self) -> u64 {
        self.cores.evictions()
    }

    /// Distinct `(plan, signature)` schedules currently resident.
    #[must_use]
    pub fn unique_cores(&self) -> usize {
        self.cores.len()
    }

    /// Distinct `(plan, latency)` lowerings actually computed.
    #[must_use]
    pub fn unique_prepared(&self) -> usize {
        self.prepared.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicUsize;

    #[test]
    fn second_lookup_hits_and_reuses_the_value() {
        let map: ShardedMap<u32, String> = ShardedMap::default();
        let a = map.get_or_insert_with(&7, || "seven".to_string());
        let b = map.get_or_insert_with(&7, || unreachable!("must hit"));
        assert!(Arc::ptr_eq(&a, &b));
        assert_eq!((map.hits(), map.misses(), map.len()), (1, 1, 1));
        assert_eq!(map.evictions(), 0);
    }

    #[test]
    fn distinct_keys_do_not_collide() {
        let map: ShardedMap<u32, u32> = ShardedMap::default();
        for k in 0..500 {
            assert_eq!(*map.get_or_insert_with(&k, || k * 3), k * 3);
        }
        for k in 0..500 {
            assert_eq!(*map.get_or_insert_with(&k, || unreachable!()), k * 3);
        }
        assert_eq!(map.len(), 500);
        assert_eq!((map.hits(), map.misses()), (500, 500));
    }

    #[test]
    fn concurrent_hammering_computes_each_key_and_stays_consistent() {
        let map: ShardedMap<u32, u32> = ShardedMap::default();
        let computed = AtomicUsize::new(0);
        std::thread::scope(|scope| {
            for t in 0..8 {
                scope.spawn(|| {
                    let _ = t;
                    for round in 0..100 {
                        let k = round % 10;
                        let v = map.get_or_insert_with(&k, || {
                            computed.fetch_add(1, Ordering::Relaxed);
                            k + 1000
                        });
                        assert_eq!(*v, k + 1000);
                    }
                });
            }
        });
        assert_eq!(map.len(), 10);
        // Racing threads may duplicate a computation, but every duplicate
        // produces the same value and only one copy is kept.
        assert!(computed.load(Ordering::Relaxed) >= 10);
        assert_eq!(map.hits() + map.misses(), 800);
    }

    #[test]
    fn failed_computations_are_not_cached() {
        let map: ShardedMap<u32, u32> = ShardedMap::default();
        let e = map.try_get_or_insert_with(&1, || Err::<u32, &str>("nope"));
        assert_eq!(e, Err("nope"));
        assert!(map.is_empty());
        // A later success on the same key computes and caches normally.
        let v = map.try_get_or_insert_with(&1, || Ok::<u32, &str>(11));
        assert_eq!(*v.expect("succeeds"), 11);
        assert_eq!(map.len(), 1);
    }

    #[test]
    fn a_poisoned_shard_keeps_serving_its_values() {
        let map = Arc::new(ShardedMap::<u32, u32>::default());
        for k in 0..50 {
            map.get_or_insert_with(&k, || k * 2);
        }
        // Poison every shard: panic while holding each lock in turn.
        for shard in &map.shards {
            let _ = std::thread::scope(|s| {
                s.spawn(move || {
                    let _guard = shard.lock().unwrap_or_else(PoisonError::into_inner);
                    panic!("poison the shard");
                })
                .join()
            });
        }
        assert!(map.shards.iter().any(|s| s.lock().is_err()), "poisoned");
        // Reads and writes still work on the recovered data.
        for k in 0..50 {
            assert_eq!(*map.get_or_insert_with(&k, || unreachable!()), k * 2);
        }
        assert_eq!(*map.get_or_insert_with(&100, || 7), 7);
    }

    #[test]
    fn a_bounded_map_evicts_and_recomputes_identically() {
        // Cap below the insertion count forces evictions; every evicted
        // key must recompute to a value equal to the original.
        let map: ShardedMap<u32, Vec<u64>> = ShardedMap::bounded(16);
        let value = |k: u32| -> Vec<u64> { (0..8).map(|i| u64::from(k) * 1_000 + i).collect() };
        let originals: Vec<Vec<u64>> = (0..600)
            .map(|k| (*map.get_or_insert_with(&k, || value(k))).clone())
            .collect();
        assert!(map.evictions() > 0, "cap 16 over 600 inserts must evict");
        assert!(
            map.len() <= SHARDS,
            "cap 16 -> 1 slot per shard, so at most {SHARDS} survive ({})",
            map.len()
        );
        // Recompute everything; an entry either hits (survivor) or is
        // recomputed, and both paths must reproduce the original bits.
        for (k, original) in originals.iter().enumerate() {
            let k = u32::try_from(k).unwrap();
            let again = map.get_or_insert_with(&k, || value(k));
            assert_eq!(*again, *original, "key {k}");
        }
    }

    #[test]
    fn segmented_lru_protects_reused_entries_over_one_shot_ones() {
        // One shard (cap 1 per shard makes per-shard behavior visible):
        // hammer a single shard by using keys that collide... keys
        // scatter by RandomState, so instead drive the policy directly
        // through a Shard.
        let mut shard: Shard<u32, u32> = Shard::default();
        fn put(shard: &mut Shard<u32, u32>, k: u32, protected: bool) {
            let tick = shard.tick();
            shard.map.insert(
                k,
                Slot {
                    value: Arc::new(k),
                    stamp: tick,
                    protected,
                },
            );
        }
        put(&mut shard, 1, true); // protected, oldest
        put(&mut shard, 2, false); // probationary, older
        put(&mut shard, 3, false); // probationary, newer (just inserted)
        let evicted = shard.enforce(2, &3);
        assert_eq!(evicted, 1);
        // The probationary entry went first even though the protected
        // one is older.
        assert!(shard.map.contains_key(&1) && shard.map.contains_key(&3));
        // With only protected entries left, the oldest protected goes.
        let tick = shard.tick();
        if let Some(s) = shard.map.get_mut(&3) {
            s.protected = true;
            s.stamp = tick;
        }
        put(&mut shard, 4, false);
        let evicted = shard.enforce(2, &4);
        assert_eq!(evicted, 1);
        assert!(!shard.map.contains_key(&1), "oldest protected evicted");
        assert!(shard.map.contains_key(&3) && shard.map.contains_key(&4));
    }

    #[test]
    fn post_eviction_recompute_is_bit_identical() {
        // The real thing: evaluate through a CompileCache bounded to a
        // single core slot per shard, forcing every (plan, signature)
        // to be evicted and rescheduled, and require bit-identical
        // measurements against an unbounded cache.
        use crate::eval::{try_evaluate_cached, PlanCache};
        use cfp_kernels::Benchmark;
        use cfp_machine::ArchSpec;

        let benches = [Benchmark::D, Benchmark::G];
        let cache = PlanCache::build(&benches, &[64, 256], &[1, 2, 4]);
        let specs = [
            ArchSpec::baseline(),
            ArchSpec::new(4, 2, 256, 1, 4, 1).expect("valid"),
            ArchSpec::new(8, 2, 64, 1, 4, 2).expect("valid"),
        ];
        let unbounded = CompileCache::new();
        let tiny = CompileCache::bounded(1);
        let mut rounds = Vec::new();
        for round in 0..3 {
            for spec in &specs {
                for b in benches {
                    let full =
                        try_evaluate_cached(spec, b, &cache, &unbounded, None).expect("evaluates");
                    let evicted =
                        try_evaluate_cached(spec, b, &cache, &tiny, None).expect("evaluates");
                    assert_eq!(full, evicted, "round {round}: {spec} {b}");
                    rounds.push(evicted);
                }
            }
        }
        assert!(
            tiny.core_evictions() > 0,
            "a 1-slot-per-shard cache over {} cores must evict",
            unbounded.unique_cores()
        );
        assert_eq!(unbounded.core_evictions(), 0);
        // Later rounds reproduce the first bit for bit even though the
        // tiny cache recomputed (not replayed) most lookups.
        let per_round = rounds.len() / 3;
        assert_eq!(rounds[..per_round], rounds[per_round..2 * per_round]);
    }
}
