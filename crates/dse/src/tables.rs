//! Reconstruction of the paper's Tables 8–10.

use crate::explore::Exploration;
use crate::report::TextTable;
use crate::select::{select, Range, Selection};

/// One RANGE section of a speedup table.
#[derive(Debug, Clone)]
pub struct TableSection {
    /// The RANGE used.
    pub range: Range,
    /// `(target label, selection)` rows; the `Infinite` section has a
    /// single `"all"` row.
    pub rows: Vec<(String, Selection)>,
}

/// A full Tables-8/9/10-style result.
#[derive(Debug, Clone)]
pub struct SpeedupTable {
    /// The cost bound (5.0 / 10.0 / 15.0 in the paper).
    pub cost_bound: f64,
    /// Sections in RANGE order.
    pub sections: Vec<TableSection>,
}

/// The ranges each paper table explores at its cost bound.
#[must_use]
pub fn paper_ranges(cost_bound: f64) -> Vec<Range> {
    if (cost_bound - 10.0).abs() < 1e-9 {
        // The medium-cost table adds the instructive 50% row.
        vec![
            Range::Fraction(0.0),
            Range::Fraction(0.10),
            Range::Fraction(0.50),
            Range::Infinite,
        ]
    } else {
        vec![Range::Fraction(0.0), Range::Fraction(0.10), Range::Infinite]
    }
}

/// Build the table for one cost bound.
#[must_use]
pub fn speedup_table(exploration: &Exploration, cost_bound: f64, ranges: &[Range]) -> SpeedupTable {
    let sections = ranges
        .iter()
        .map(|&range| {
            let rows = match range {
                Range::Infinite => select(exploration, 0, cost_bound, range)
                    .map(|sel| vec![("all".to_owned(), sel)])
                    .unwrap_or_default(),
                Range::Fraction(_) => (0..exploration.benches.len())
                    .filter_map(|t| {
                        select(exploration, t, cost_bound, range)
                            .map(|sel| (exploration.benches[t].to_string(), sel))
                    })
                    .collect(),
            };
            TableSection { range, rows }
        })
        .collect();
    SpeedupTable {
        cost_bound,
        sections,
    }
}

/// Render in the paper's layout: one block per RANGE, rows
/// `target(arch) (su, c)` followed by the per-benchmark speedups.
#[must_use]
pub fn render(table: &SpeedupTable, exploration: &Exploration) -> String {
    let mut out = String::new();
    for section in &table.sections {
        out.push_str(&format!(
            "Cost={:.1} Range={}\n",
            table.cost_bound, section.range
        ));
        let mut header = vec!["Arch Desc".to_owned(), "(su c)".to_owned()];
        header.extend(exploration.benches.iter().map(|b| format!("{b}.c")));
        let mut t = TextTable::new(header);
        for (label, sel) in &section.rows {
            let mut cells = vec![
                format!("{label}{}", sel.spec),
                format!("({:.1} {:.1})", sel.su, sel.cost),
            ];
            cells.extend(sel.speedups.iter().map(|s| format!("{s:.2}")));
            t.row(cells);
        }
        out.push_str(&t.to_string());
        out.push('\n');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::explore::ExploreConfig;
    use cfp_kernels::Benchmark;

    #[test]
    fn table_builds_and_renders() {
        let mut cfg = ExploreConfig::smoke();
        cfg.benches = vec![Benchmark::A, Benchmark::H];
        let ex = Exploration::run(&cfg);
        let table = speedup_table(&ex, 10.0, &paper_ranges(10.0));
        assert_eq!(table.sections.len(), 4);
        assert_eq!(table.sections[0].rows.len(), 2, "one row per target");
        assert_eq!(table.sections[3].rows.len(), 1, "single `all` row");
        let text = render(&table, &ex);
        assert!(text.contains("Cost=10.0 Range=0%"));
        assert!(text.contains("Cost=10.0 Range=inf"));
        assert!(text.contains("A("));
        assert!(text.contains("all("));
    }

    #[test]
    fn paper_ranges_differ_by_cost() {
        assert_eq!(paper_ranges(5.0).len(), 3);
        assert_eq!(paper_ranges(10.0).len(), 4);
        assert_eq!(paper_ranges(15.0).len(), 3);
    }
}
