//! # cfp-dse — the custom-fit design-space exploration
//!
//! The paper's primary contribution, assembled from the substrates: an
//! exhaustive hardware/software codesign loop that, given an application
//! (or a suite), finds the clustered-VLIW architecture that runs it best
//! under a cost budget.
//!
//! * [`eval`] — one `(architecture, benchmark)` evaluation: optimize
//!   with a machine-derived residency budget, sweep unroll factors until
//!   spilling, keep the best cycles-per-output;
//! * [`memo`] — sharded concurrent memoization of compile results, keyed
//!   by interned plan and scheduling signature, so the sweep never
//!   redoes work two architectures share (the register axis collapses
//!   entirely);
//! * [`explore`] — the exhaustive parallel sweep over the design space
//!   in `(architecture, benchmark)` work units, with the cost and
//!   cycle-time models attached and Table 3-style run statistics
//!   (logical compilations, cache hits, unique schedules, quarantined
//!   units, per-stage timings);
//! * [`error`] — the typed failure taxonomy: per-unit [`EvalError`]s,
//!   quarantine [`FailReason`]s, and run-level [`ExploreError`]s, so a
//!   pathological candidate is a reported value, never a lost sweep;
//! * [`checkpoint`] — crash-consistent journaling of completed units and
//!   bit-identical resume of interrupted sweeps;
//! * [`batch`] — the structure-of-arrays view of a finished
//!   exploration (DESIGN.md §14): flat cost/derate/speedup/fail columns
//!   filled in linear passes, feeding the batch scatter/frontier/select
//!   consumers bit-identically to the scalar walkers;
//! * [`mod@select`] — COST/RANGE architecture selection (Tables 8–10);
//! * [`pareto`] — scatter points and best-alternative frontiers
//!   (Figures 3–4);
//! * [`search`] — non-exhaustive search strategies over the space,
//!   answering the paper's open question about search effectiveness;
//! * [`correction`] — the paper's clustering correction-factor
//!   approximation, as an ablation against our full clustered
//!   scheduling;
//! * [`report`], [`tables`] — plain-text/CSV renderings in the paper's
//!   layouts.
//!
//! ```no_run
//! use cfp_dse::{explore::{ExploreConfig, Exploration}, select::{select, Range}};
//!
//! let ex = Exploration::run(&ExploreConfig::paper());
//! // The architecture custom-fit to benchmark A under cost 10:
//! let sel = select(&ex, 0, 10.0, Range::Fraction(0.0)).unwrap();
//! println!("A's machine: {} at cost {:.1}", sel.spec, sel.cost);
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]
// The exploration stack promises its failures are typed values; an
// unwrap/expect in non-test code needs a written justification (a
// sibling `#[allow]` with a comment) or a Result path instead. CI runs
// clippy with `-D warnings`, so this gate is enforced.
#![cfg_attr(not(test), warn(clippy::unwrap_used, clippy::expect_used))]

pub mod batch;
pub mod checkpoint;
pub mod correction;
pub mod error;
pub mod eval;
pub mod explore;
pub mod io;
pub mod memo;
pub mod pareto;
pub mod report;
pub mod search;
pub mod select;
pub mod tables;

pub use batch::{spec_fingerprint, EvalBatch};
pub use checkpoint::Checkpoint;
pub use error::{CheckpointError, EvalError, ExploreError, FailKind, FailReason};
pub use eval::{
    evaluate, evaluate_cached, try_evaluate, try_evaluate_cached, try_evaluate_cached_in,
    try_evaluate_cached_traced_in, try_evaluate_in, try_evaluate_traced_in, EvalOutcome,
    EvalScratch, Measurement, PlanCache, PlanId, PlanStore,
};
pub use explore::{ArchEval, Exploration, ExploreConfig, RunStats};
pub use io::{from_csv, to_csv};
pub use memo::{CompileCache, ShardedMap};
pub use pareto::{frontier, frontier_soa, scatter, scatter_soa, ScatterPoint};
pub use search::{SearchReport, Strategy};
pub use select::{select, select_batch, Range, Selection};
pub use tables::{paper_ranges, render, speedup_table, SpeedupTable};
