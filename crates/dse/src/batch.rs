//! Structure-of-arrays view of an exploration: the batch evaluation
//! core (DESIGN.md §14).
//!
//! The sweep produces one pointer-rich [`crate::explore::ArchEval`] per
//! architecture — convenient for inspection, hostile to bulk scoring:
//! every cost/speedup/selection pass chases `Vec<EvalOutcome>` pointers
//! and re-derives per-unit quantities. [`EvalBatch`] flattens the whole
//! result into parallel columns keyed by architecture index (and
//! `arch × bench` unit index for the per-benchmark planes), filled in a
//! handful of linear passes. Everything downstream of the scheduler —
//! scatter, frontier, selection, digesting, CSV export — can then run as
//! tight loops over flat `f64`/`u64` slices: autovectorizable, and
//! shardable across worker threads by splitting slices, not by
//! dispatching per unit.
//!
//! Invariants (tested by `tests/batch_equivalence.rs`):
//! * every column is **bit-identical** to the scalar accessor it
//!   mirrors ([`Exploration::speedup`], [`Exploration::harmonic_mean`],
//!   the `ArchEval` cost/derate fields);
//! * quarantined units carry NaN speedups and a nonzero fail code, and
//!   the batch consumers exclude them exactly where the scalar path
//!   does (scatter skips them, selection drops poisoned rows);
//! * batch [`EvalBatch::scatter`]/[`crate::select::select_batch`]
//!   reproduce the scalar [`crate::pareto::scatter`]/
//!   [`crate::select::select`] outputs index for index.

use crate::error::FailKind;
use crate::explore::Exploration;
use crate::pareto::{scatter_soa, ScatterPoint};
use cfp_machine::ArchSpec;

/// Flat, column-major view of a completed exploration.
///
/// Columns of length `len()` (one slot per architecture):
/// [`specs`](Self::specs), [`fingerprints`](Self::fingerprints),
/// [`costs`](Self::costs), [`derates`](Self::derates),
/// [`sus`](Self::sus). Planes of length `len() × benches()` in
/// arch-major order: [`speedups`](Self::speedups),
/// [`fails`](Self::fails).
#[derive(Debug, Clone, PartialEq)]
pub struct EvalBatch {
    specs: Vec<ArchSpec>,
    fingerprint: Vec<u64>,
    cost: Vec<f64>,
    derate: Vec<f64>,
    su: Vec<f64>,
    speedup: Vec<f64>,
    fail: Vec<u8>,
    nb: usize,
}

/// FNV-1a over one architecture's seven axes — the batch's stable
/// per-spec identity (distinct specs hash apart with overwhelming
/// probability; digests and journals use it, grouping never does).
#[must_use]
pub fn spec_fingerprint(spec: &ArchSpec) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    let mut eat = |x: u32| {
        for b in x.to_le_bytes() {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
    };
    eat(spec.alus);
    eat(spec.muls);
    eat(spec.regs);
    eat(spec.l2_ports);
    eat(spec.l2_latency);
    eat(u32::from(spec.l2_pipelined));
    eat(spec.clusters);
    h
}

impl EvalBatch {
    /// Flatten `ex` into columns. Four linear passes — specs/costs/
    /// derates/fingerprints, per-unit speedups and fail codes, then
    /// per-arch harmonic means — each reading its inputs exactly once.
    #[must_use]
    pub fn from_exploration(ex: &Exploration) -> Self {
        let na = ex.archs.len();
        let nb = ex.benches.len();

        let mut specs = Vec::with_capacity(na);
        let mut fingerprint = Vec::with_capacity(na);
        let mut cost = Vec::with_capacity(na);
        let mut derate = Vec::with_capacity(na);
        for arch in &ex.archs {
            specs.push(arch.spec);
            fingerprint.push(spec_fingerprint(&arch.spec));
            cost.push(arch.cost);
            derate.push(arch.derate);
        }

        // Baseline cycles-per-output per column: the speedup numerators.
        let base: Vec<f64> = ex
            .baseline
            .outcomes
            .iter()
            .map(super::eval::EvalOutcome::cycles_per_output)
            .collect();

        let mut speedup = Vec::with_capacity(na * nb);
        let mut fail = Vec::with_capacity(na * nb);
        for (a, arch) in ex.archs.iter().enumerate() {
            let d = derate[a];
            for (b, out) in arch.outcomes.iter().enumerate() {
                // Same expression as `Exploration::speedup`, term for
                // term — the column is bit-identical to the accessor.
                speedup.push(base[b] / (out.cycles_per_output() * d));
                fail.push(out.failure().map_or(0, |r| fail_code(r.kind)));
            }
        }

        let su = (0..na)
            .map(|a| Exploration::harmonic_mean(&speedup[a * nb..(a + 1) * nb]))
            .collect();

        EvalBatch {
            specs,
            fingerprint,
            cost,
            derate,
            su,
            speedup,
            fail,
            nb,
        }
    }

    /// Number of architectures (rows).
    #[must_use]
    pub fn len(&self) -> usize {
        self.specs.len()
    }

    /// Whether the batch is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.specs.is_empty()
    }

    /// Number of benchmark columns.
    #[must_use]
    pub fn benches(&self) -> usize {
        self.nb
    }

    /// The architecture column.
    #[must_use]
    pub fn specs(&self) -> &[ArchSpec] {
        &self.specs
    }

    /// Per-spec FNV fingerprints (see [`spec_fingerprint`]).
    #[must_use]
    pub fn fingerprints(&self) -> &[u64] {
        &self.fingerprint
    }

    /// Baseline-relative costs, one per architecture.
    #[must_use]
    pub fn costs(&self) -> &[f64] {
        &self.cost
    }

    /// Cycle-time derating factors, one per architecture.
    #[must_use]
    pub fn derates(&self) -> &[f64] {
        &self.derate
    }

    /// Harmonic-mean speedups (the paper's `su`), one per architecture;
    /// NaN where any unit of the row was quarantined.
    #[must_use]
    pub fn sus(&self) -> &[f64] {
        &self.su
    }

    /// The full speedup plane, arch-major (`a * benches() + b`). NaN
    /// marks a quarantined unit.
    #[must_use]
    pub fn speedups(&self) -> &[f64] {
        &self.speedup
    }

    /// Per-unit fail codes, arch-major: `0` for a measured unit,
    /// otherwise the [`FailKind`] (see [`EvalBatch::fail`]).
    #[must_use]
    pub fn fails(&self) -> &[u8] {
        &self.fail
    }

    /// One architecture's speedup row.
    ///
    /// # Panics
    /// Panics if `a` is out of range.
    #[must_use]
    pub fn speedup_row(&self, a: usize) -> &[f64] {
        &self.speedup[a * self.nb..(a + 1) * self.nb]
    }

    /// The quarantine kind of unit `(a, b)`, `None` when it measured.
    ///
    /// # Panics
    /// Panics if `a` or `b` is out of range.
    #[must_use]
    pub fn fail(&self, a: usize, b: usize) -> Option<FailKind> {
        assert!(b < self.nb, "bench column out of range");
        fail_kind(self.fail[a * self.nb + b])
    }

    /// The scatter of one benchmark column (paper Figure 3), computed
    /// from the flat columns: gather the column, group by base point,
    /// keep the best arrangement. Identical output — points, order,
    /// every bit — to [`crate::pareto::scatter`] on the exploration
    /// this batch was built from.
    ///
    /// # Panics
    /// Panics if `bench` is out of range.
    #[must_use]
    pub fn scatter(&self, bench: usize) -> Vec<ScatterPoint> {
        assert!(bench < self.nb, "bench column out of range");
        let col: Vec<f64> = (0..self.len())
            .map(|a| self.speedup[a * self.nb + bench])
            .collect();
        scatter_soa(&self.specs, &self.cost, &col)
    }
}

/// Stable one-byte encoding of a [`FailKind`] for the fail plane.
fn fail_code(kind: FailKind) -> u8 {
    match kind {
        FailKind::Panic => 1,
        FailKind::FuelExhausted => 2,
        FailKind::Error => 3,
    }
}

/// Inverse of [`fail_code`]; `0` means the unit measured.
fn fail_kind(code: u8) -> Option<FailKind> {
    match code {
        1 => Some(FailKind::Panic),
        2 => Some(FailKind::FuelExhausted),
        _ => (code == 3).then_some(FailKind::Error),
    }
}

impl Exploration {
    /// The structure-of-arrays view of this exploration. Built in a few
    /// linear passes; callers that score, select, or export in bulk
    /// should build it once and loop over the flat columns instead of
    /// walking the per-arch structs.
    #[must_use]
    pub fn batch(&self) -> EvalBatch {
        EvalBatch::from_exploration(self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::explore::ExploreConfig;
    use cfp_kernels::Benchmark;

    #[test]
    fn columns_mirror_the_scalar_accessors_bit_for_bit() {
        let mut cfg = ExploreConfig::smoke();
        cfg.benches = vec![Benchmark::A, Benchmark::D];
        let ex = Exploration::run(&cfg);
        let batch = ex.batch();
        assert_eq!(batch.len(), ex.archs.len());
        assert_eq!(batch.benches(), ex.benches.len());
        for a in 0..ex.archs.len() {
            assert_eq!(batch.specs()[a], ex.archs[a].spec);
            assert_eq!(batch.costs()[a].to_bits(), ex.archs[a].cost.to_bits());
            assert_eq!(batch.derates()[a].to_bits(), ex.archs[a].derate.to_bits());
            let row = ex.speedup_row(a);
            assert_eq!(
                batch.sus()[a].to_bits(),
                Exploration::harmonic_mean(&row).to_bits()
            );
            for b in 0..ex.benches.len() {
                assert_eq!(
                    batch.speedup_row(a)[b].to_bits(),
                    ex.speedup(a, b).to_bits(),
                    "unit ({a}, {b})"
                );
                assert_eq!(batch.fail(a, b), None);
            }
        }
    }

    #[test]
    fn fingerprints_separate_every_axis() {
        let spec = cfp_machine::ArchSpec::new(8, 4, 256, 2, 4, 2).unwrap();
        let variants = [
            cfp_machine::ArchSpec::new(16, 4, 256, 2, 4, 2).unwrap(),
            cfp_machine::ArchSpec::new(8, 2, 256, 2, 4, 2).unwrap(),
            cfp_machine::ArchSpec::new(8, 4, 512, 2, 4, 2).unwrap(),
            cfp_machine::ArchSpec::new(8, 4, 256, 1, 4, 2).unwrap(),
            cfp_machine::ArchSpec::new(8, 4, 256, 2, 8, 2).unwrap(),
            cfp_machine::ArchSpec::new(8, 4, 256, 2, 4, 4).unwrap(),
            spec.with_pipelined_l2(),
        ];
        let base = spec_fingerprint(&spec);
        for v in variants {
            assert_ne!(base, spec_fingerprint(&v), "{v}");
        }
    }

    #[test]
    fn fail_codes_round_trip() {
        for kind in [FailKind::Panic, FailKind::FuelExhausted, FailKind::Error] {
            assert_eq!(fail_kind(fail_code(kind)), Some(kind));
        }
        assert_eq!(fail_kind(0), None);
        assert_eq!(fail_kind(9), None);
    }
}
