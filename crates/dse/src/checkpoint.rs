//! Checkpoint/resume journaling for the exploration sweep.
//!
//! The full sweep is minutes of compute; an interrupted run (ctrl-C, a
//! batch-queue eviction, a crash) should not forfeit the units it
//! finished. When [`crate::explore::ExploreConfig::checkpoint`] is set,
//! every completed `(architecture, benchmark)` unit is journaled to disk
//! as it lands, and a resumed run replays the journal instead of
//! re-evaluating — with *bit-identical* results, because measurements
//! are stored as exact `f64` bit patterns, and the evaluation of every
//! unit is already deterministic and independent of the others.
//!
//! Journal writes are crash-consistent: the whole journal is rewritten
//! to a sibling temp file and atomically renamed over the old one, so a
//! crash at any instant leaves either the previous journal or the new
//! one, never a torn line.
//!
//! The journal is keyed by a fingerprint of everything that determines
//! unit results (architectures, benchmarks, fuel budget, fault
//! injection — not thread counts or reuse, which cannot change results).
//! Resuming under a different configuration is refused rather than
//! silently mixing incompatible measurements.

use crate::error::{CheckpointError, FailKind, FailReason};
use crate::eval::{EvalOutcome, Measurement};
use crate::explore::ExploreConfig;
use std::fs;
use std::path::PathBuf;

/// First journal line: `cfp-checkpoint,v1,<fingerprint>,<units>`.
const MAGIC: &str = "cfp-checkpoint";
const VERSION: &str = "v1";

/// Where the sweep journals completed units, and whether an existing
/// journal may be loaded.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Checkpoint {
    /// The journal file.
    pub path: PathBuf,
    /// Load completed units from an existing journal (a mid-run journal
    /// resumes the sweep; a missing file just starts fresh). Without
    /// this, an existing journal is an error — never silently clobbered.
    pub resume: bool,
}

impl Checkpoint {
    /// Journal to `path`; refuse to start if a journal already exists.
    pub fn new(path: impl Into<PathBuf>) -> Self {
        Checkpoint {
            path: path.into(),
            resume: false,
        }
    }

    /// Journal to `path`, resuming from it if it exists.
    pub fn resume(path: impl Into<PathBuf>) -> Self {
        Checkpoint {
            path: path.into(),
            resume: true,
        }
    }
}

/// FNV-1a over everything that determines unit results. Deliberately
/// hand-rolled: `DefaultHasher`/`RandomState` are seeded per process and
/// would make every journal unresumable.
#[must_use]
pub fn fingerprint(config: &ExploreConfig) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    let mut eat = |bytes: &[u8]| {
        for &b in bytes {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
        // Field separator, so ["ab","c"] and ["a","bc"] differ.
        h ^= 0xff;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    };
    eat(MAGIC.as_bytes());
    eat(VERSION.as_bytes());
    for a in &config.archs {
        eat(a.to_string().as_bytes());
    }
    for b in &config.benches {
        eat(b.letter().as_bytes());
    }
    match config.fuel {
        None => eat(b"fuel:none"),
        Some(n) => eat(format!("fuel:{n}").as_bytes()),
    }
    match &config.fault {
        None => eat(b"fault:none"),
        // Panicking injectors keep the pre-FaultKind encoding so old
        // journals stay resumable; the newer kinds fold in their token
        // (and a stall's length, which changes nothing but is honest).
        Some(f) => match f.kind() {
            cfp_testkit::FaultKind::Panic => {
                eat(format!("fault:{}:{}", f.seed(), f.denominator()).as_bytes());
            }
            kind => {
                eat(format!("fault:{}:{}:{}", kind.token(), f.seed(), f.denominator()).as_bytes())
            }
        },
    }
    h
}

/// Percent-escape a failure message for one comma-separated field (also
/// reused by the CSV persistence, which has the same delimiter rules).
pub(crate) fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '%' => out.push_str("%25"),
            ',' => out.push_str("%2c"),
            '\n' => out.push_str("%0a"),
            '\r' => out.push_str("%0d"),
            _ => out.push(c),
        }
    }
    out
}

pub(crate) fn unescape(s: &str) -> Option<String> {
    let mut out = String::with_capacity(s.len());
    let mut chars = s.chars();
    while let Some(c) = chars.next() {
        if c != '%' {
            out.push(c);
            continue;
        }
        let hex: String = chars.by_ref().take(2).collect();
        match hex.as_str() {
            "25" => out.push('%'),
            "2c" => out.push(','),
            "0a" => out.push('\n'),
            "0d" => out.push('\r'),
            _ => return None,
        }
    }
    Some(out)
}

/// One journal line for a completed unit. The measurement's `f64` is
/// stored as its exact bit pattern so resume is bit-identical.
fn encode_entry(unit: usize, outcome: &EvalOutcome) -> String {
    match outcome {
        EvalOutcome::Done(m) => format!(
            "{unit},done,{:016x},{},{},{}",
            m.cycles_per_output.to_bits(),
            m.unroll,
            u8::from(m.spilled),
            m.compilations,
        ),
        EvalOutcome::Failed { reason } => format!(
            "{unit},failed,{},{}",
            reason.kind.token(),
            escape(&reason.message)
        ),
    }
}

fn parse_entry(line: &str, lineno: usize) -> Result<(usize, EvalOutcome), CheckpointError> {
    let corrupt = |message: String| CheckpointError::Corrupt {
        line: lineno,
        message,
    };
    let fields: Vec<&str> = line.split(',').collect();
    let unit: usize = fields[0]
        .parse()
        .map_err(|e| corrupt(format!("bad unit index `{}`: {e}", fields[0])))?;
    match (fields.get(1).copied(), fields.len()) {
        (Some("done"), 6) => {
            let bits = u64::from_str_radix(fields[2], 16)
                .map_err(|e| corrupt(format!("bad cycle bits `{}`: {e}", fields[2])))?;
            let num = |s: &str| -> Result<u32, CheckpointError> {
                s.parse()
                    .map_err(|e| corrupt(format!("bad number `{s}`: {e}")))
            };
            Ok((
                unit,
                EvalOutcome::Done(Measurement {
                    cycles_per_output: f64::from_bits(bits),
                    unroll: num(fields[3])?,
                    spilled: fields[4] == "1",
                    compilations: num(fields[5])?,
                }),
            ))
        }
        (Some("failed"), n) if n >= 4 => {
            let kind = FailKind::from_token(fields[2])
                .ok_or_else(|| corrupt(format!("unknown failure kind `{}`", fields[2])))?;
            let message = unescape(&fields[3..].join(","))
                .ok_or_else(|| corrupt("bad escape in failure message".to_owned()))?;
            Ok((
                unit,
                EvalOutcome::Failed {
                    reason: FailReason { kind, message },
                },
            ))
        }
        (tag, n) => Err(corrupt(format!(
            "unrecognized entry (tag {tag:?}, {n} fields)"
        ))),
    }
}

/// An open journal: the lines already on disk plus the machinery to
/// append more, one atomic rewrite per appended unit.
#[derive(Debug)]
pub(crate) struct Journal {
    path: PathBuf,
    lines: Vec<String>,
}

impl Journal {
    /// Append one completed unit and persist.
    pub(crate) fn append(&mut self, unit: usize, outcome: &EvalOutcome) -> CheckpointResult<()> {
        self.lines.push(encode_entry(unit, outcome));
        self.persist()
    }

    /// Write all lines to a temp sibling, then rename over the journal.
    fn persist(&self) -> CheckpointResult<()> {
        let io = |source: std::io::Error| CheckpointError::Io {
            path: self.path.clone(),
            source,
        };
        let mut tmp = self.path.clone().into_os_string();
        tmp.push(".tmp");
        let tmp = PathBuf::from(tmp);
        let mut text = self.lines.join("\n");
        text.push('\n');
        fs::write(&tmp, text).map_err(io)?;
        fs::rename(&tmp, &self.path).map_err(io)
    }
}

type CheckpointResult<T> = Result<T, CheckpointError>;

/// Open the journal described by `ck` for a run with this `fingerprint`
/// and `units` work units. Returns the journal plus the outcomes already
/// recorded (empty unless resuming an existing file).
pub(crate) fn attach(
    ck: &Checkpoint,
    fingerprint: u64,
    units: usize,
) -> CheckpointResult<(Journal, Vec<(usize, EvalOutcome)>)> {
    let header = format!("{MAGIC},{VERSION},{fingerprint:016x},{units}");
    if !ck.path.exists() {
        let journal = Journal {
            path: ck.path.clone(),
            lines: vec![header],
        };
        journal.persist()?;
        return Ok((journal, Vec::new()));
    }
    if !ck.resume {
        return Err(CheckpointError::Exists(ck.path.clone()));
    }
    let text = fs::read_to_string(&ck.path).map_err(|source| CheckpointError::Io {
        path: ck.path.clone(),
        source,
    })?;
    let entries = parse(&text, fingerprint, units)?;
    let journal = Journal {
        path: ck.path.clone(),
        lines: text.lines().map(str::to_owned).collect(),
    };
    Ok((journal, entries))
}

fn parse(
    text: &str,
    expected_fp: u64,
    units: usize,
) -> CheckpointResult<Vec<(usize, EvalOutcome)>> {
    let corrupt = |line: usize, message: String| CheckpointError::Corrupt { line, message };
    let mut lines = text.lines().enumerate();
    let Some((_, header)) = lines.next() else {
        return Err(corrupt(1, "empty journal".to_owned()));
    };
    let h: Vec<&str> = header.split(',').collect();
    if h.len() != 4 || h[0] != MAGIC || h[1] != VERSION {
        return Err(corrupt(1, format!("bad header `{header}`")));
    }
    let found = u64::from_str_radix(h[2], 16)
        .map_err(|e| corrupt(1, format!("bad fingerprint `{}`: {e}", h[2])))?;
    if found != expected_fp {
        return Err(CheckpointError::Mismatch {
            expected: expected_fp,
            found,
        });
    }
    let recorded_units: usize = h[3]
        .parse()
        .map_err(|e| corrupt(1, format!("bad unit count `{}`: {e}", h[3])))?;
    if recorded_units != units {
        return Err(corrupt(
            1,
            format!("journal is for {recorded_units} units, this run has {units}"),
        ));
    }

    let mut seen = vec![false; units];
    let mut entries = Vec::new();
    for (idx, line) in lines {
        let lineno = idx + 1;
        if line.trim().is_empty() {
            continue;
        }
        let (unit, outcome) = parse_entry(line, lineno)?;
        if unit >= units {
            return Err(corrupt(
                lineno,
                format!("unit {unit} out of range (run has {units})"),
            ));
        }
        if seen[unit] {
            return Err(corrupt(lineno, format!("unit {unit} recorded twice")));
        }
        seen[unit] = true;
        entries.push((unit, outcome));
    }
    Ok(entries)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn done(cpo: f64) -> EvalOutcome {
        EvalOutcome::Done(Measurement {
            cycles_per_output: cpo,
            unroll: 4,
            spilled: false,
            compilations: 3,
        })
    }

    #[test]
    fn entries_round_trip_bit_exactly() {
        // A value with no finite decimal representation, plus edge bits.
        for cpo in [0.1 + 0.2, f64::MIN_POSITIVE, 1.0 / 3.0, 12345.678] {
            let line = encode_entry(9, &done(cpo));
            let (unit, back) = parse_entry(&line, 2).expect("parses");
            assert_eq!(unit, 9);
            let m = back.measurement().expect("done");
            assert_eq!(m.cycles_per_output.to_bits(), cpo.to_bits());
            assert_eq!((m.unroll, m.spilled, m.compilations), (4, false, 3));
        }
    }

    #[test]
    fn failed_entries_keep_their_messy_messages() {
        let nasty = "panic: index 3,7 out of bounds\n(100%: a,b,c)";
        let out = EvalOutcome::Failed {
            reason: FailReason {
                kind: FailKind::Panic,
                message: nasty.to_owned(),
            },
        };
        let line = encode_entry(0, &out);
        assert!(!line.contains('\n'), "journal lines stay single lines");
        let (_, back) = parse_entry(&line, 2).expect("parses");
        assert_eq!(back, out);
    }

    #[test]
    fn escape_round_trips_and_rejects_garbage() {
        for s in ["plain", "a,b", "100%", "x\ny\r", "%2c literal"] {
            assert_eq!(unescape(&escape(s)).as_deref(), Some(s));
        }
        assert_eq!(unescape("bad %zz escape"), None);
    }

    #[test]
    fn parse_rejects_wrong_runs_and_corruption() {
        let fp = 0xabcd_u64;
        let header = format!("{MAGIC},{VERSION},{fp:016x},10");
        let good = format!("{header}\n{}\n", encode_entry(3, &done(2.5)));
        assert_eq!(parse(&good, fp, 10).expect("parses").len(), 1);
        // Wrong fingerprint.
        assert!(matches!(
            parse(&good, fp + 1, 10),
            Err(CheckpointError::Mismatch { .. })
        ));
        // Wrong unit count.
        assert!(parse(&good, fp, 11).is_err());
        // Out-of-range and duplicate units.
        let bad = format!("{header}\n{}\n", encode_entry(10, &done(2.5)));
        assert!(parse(&bad, fp, 10).is_err());
        let dup = format!(
            "{header}\n{}\n{}\n",
            encode_entry(3, &done(2.5)),
            encode_entry(3, &done(2.5))
        );
        assert!(parse(&dup, fp, 10).is_err());
        // Truncated entry line.
        assert!(parse(&format!("{header}\n3,done,xyz\n"), fp, 10).is_err());
        assert!(parse("", fp, 10).is_err());
    }
}
