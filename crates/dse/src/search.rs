//! Search strategies over the design space.
//!
//! The paper searched exhaustively and noted: "we are confident that any
//! good search technique could cut down significantly on our processing
//! time without greatly affecting the results" (§2.2) — and lists "how
//! effective are search methods?" among its open questions (§1.1). This
//! module answers that question empirically: several classic strategies
//! run against a completed [`Exploration`] used as an oracle, counting
//! how many candidate evaluations each needs to get within a given
//! fraction of the exhaustive optimum.
//!
//! The objective is the paper's design task: maximize the target
//! benchmark's speedup subject to a cost bound.

use crate::explore::Exploration;
use cfp_machine::ArchSpec;
use std::collections::{HashMap, HashSet};

/// A deterministic, dependency-free PRNG (SplitMix64).
#[derive(Debug, Clone)]
pub struct SplitMix64(u64);

impl SplitMix64 {
    /// Seeded constructor.
    #[must_use]
    pub fn new(seed: u64) -> Self {
        SplitMix64(seed)
    }

    /// Next raw value.
    pub fn next_u64(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// Uniform index in `0..n`.
    ///
    /// # Panics
    /// Panics if `n == 0`.
    pub fn below(&mut self, n: usize) -> usize {
        assert!(n > 0);
        // The remainder is < n, which already fits in usize.
        (self.next_u64() % (n as u64)) as usize
    }

    /// Uniform float in `[0, 1)`.
    pub fn unit(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / (1_u64 << 53) as f64
    }
}

/// A search strategy.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Strategy {
    /// Evaluate everything (the paper's method).
    Exhaustive,
    /// Evaluate `n` uniformly random candidates.
    RandomSample {
        /// Sample size.
        n: usize,
    },
    /// Greedy hill climbing in the parameter lattice, with restarts.
    HillClimb {
        /// Number of random restarts.
        restarts: usize,
    },
    /// Simulated annealing with a geometric cooling schedule.
    Anneal {
        /// Total proposal steps.
        steps: usize,
    },
}

impl std::fmt::Display for Strategy {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Strategy::Exhaustive => f.write_str("exhaustive"),
            Strategy::RandomSample { n } => write!(f, "random({n})"),
            Strategy::HillClimb { restarts } => write!(f, "hill-climb({restarts})"),
            Strategy::Anneal { steps } => write!(f, "anneal({steps})"),
        }
    }
}

/// The outcome of one search run.
#[derive(Debug, Clone)]
pub struct SearchReport {
    /// The strategy used.
    pub strategy: Strategy,
    /// Distinct candidates evaluated (the cost the paper wanted to cut).
    pub evaluations: usize,
    /// The best architecture found (cost within the bound).
    pub best: Option<ArchSpec>,
    /// Its target speedup.
    pub best_speedup: f64,
    /// `best_speedup / exhaustive_best_speedup` — 1.0 means the search
    /// found the true optimum.
    pub quality: f64,
}

/// The oracle: target speedups and costs precomputed by an exploration.
struct Oracle<'a> {
    ex: &'a Exploration,
    target: usize,
    cost_bound: f64,
    index_of: HashMap<ArchSpec, usize>,
    queried: HashSet<usize>,
}

impl<'a> Oracle<'a> {
    fn new(ex: &'a Exploration, target: usize, cost_bound: f64) -> Self {
        Oracle {
            ex,
            target,
            cost_bound,
            index_of: ex
                .archs
                .iter()
                .enumerate()
                .map(|(i, a)| (a.spec, i))
                .collect(),
            queried: HashSet::new(),
        }
    }

    /// Objective value: target speedup, or -inf when over budget or
    /// outside the space.
    fn eval(&mut self, spec: &ArchSpec) -> f64 {
        let Some(&i) = self.index_of.get(spec) else {
            return f64::NEG_INFINITY;
        };
        self.queried.insert(i);
        if self.ex.archs[i].cost > self.cost_bound {
            return f64::NEG_INFINITY;
        }
        self.ex.speedup(i, self.target)
    }

    fn specs(&self) -> Vec<ArchSpec> {
        self.ex.archs.iter().map(|a| a.spec).collect()
    }
}

/// Lattice neighbors of a spec: one parameter moved one step along its
/// enumerated values, keeping the spec valid.
#[must_use]
pub fn neighbors(spec: &ArchSpec) -> Vec<ArchSpec> {
    let alus = [1_u32, 2, 4, 8, 16];
    let regs = [64_u32, 128, 256, 512];
    let ports = [1_u32, 2, 4];
    let lats = [4_u32, 8];
    let clusters = [1_u32, 2, 4, 8, 16];

    let mut out = Vec::new();
    let mut push = |s: ArchSpec| {
        if s.validate().is_ok() && &s != spec {
            out.push(s);
        }
    };
    let step = |vals: &[u32], cur: u32| -> Vec<u32> {
        vals.iter()
            .position(|&v| v == cur)
            .map(|i| {
                let mut v = Vec::new();
                if i > 0 {
                    v.push(vals[i - 1]);
                }
                if i + 1 < vals.len() {
                    v.push(vals[i + 1]);
                }
                v
            })
            .unwrap_or_default()
    };

    for a in step(&alus, spec.alus) {
        // Keep the IMUL fraction legal for the new ALU count.
        let m = spec.muls.clamp((a / 4).max(1), (a / 2).max(1));
        push(ArchSpec {
            alus: a,
            muls: m,
            ..*spec
        });
    }
    // Toggle between the two legal IMUL fractions.
    for m in [(spec.alus / 4).max(1), (spec.alus / 2).max(1)] {
        push(ArchSpec { muls: m, ..*spec });
    }
    for r in step(&regs, spec.regs) {
        push(ArchSpec { regs: r, ..*spec });
    }
    for p in step(&ports, spec.l2_ports) {
        push(ArchSpec {
            l2_ports: p,
            ..*spec
        });
    }
    for l in step(&lats, spec.l2_latency) {
        push(ArchSpec {
            l2_latency: l,
            ..*spec
        });
    }
    for c in step(&clusters, spec.clusters) {
        push(ArchSpec {
            clusters: c,
            ..*spec
        });
    }
    out.sort();
    out.dedup();
    out
}

/// Run one strategy against the exploration oracle.
#[must_use]
pub fn run(
    ex: &Exploration,
    target: usize,
    cost_bound: f64,
    strategy: Strategy,
    seed: u64,
) -> SearchReport {
    let mut oracle = Oracle::new(ex, target, cost_bound);
    let specs = oracle.specs();
    let mut rng = SplitMix64::new(seed ^ 0x5eed);

    let mut best: Option<(f64, ArchSpec)> = None;
    let consider = |v: f64, s: ArchSpec, best: &mut Option<(f64, ArchSpec)>| {
        if v.is_finite() && best.as_ref().is_none_or(|(b, _)| v > *b) {
            *best = Some((v, s));
        }
    };

    match strategy {
        Strategy::Exhaustive => {
            for s in &specs {
                let v = oracle.eval(s);
                consider(v, *s, &mut best);
            }
        }
        Strategy::RandomSample { n } => {
            for _ in 0..n {
                let s = specs[rng.below(specs.len())];
                let v = oracle.eval(&s);
                consider(v, s, &mut best);
            }
        }
        Strategy::HillClimb { restarts } => {
            for _ in 0..restarts.max(1) {
                let mut cur = specs[rng.below(specs.len())];
                let mut cur_v = oracle.eval(&cur);
                consider(cur_v, cur, &mut best);
                loop {
                    let mut improved = false;
                    for n in neighbors(&cur) {
                        let v = oracle.eval(&n);
                        consider(v, n, &mut best);
                        if v > cur_v {
                            cur = n;
                            cur_v = v;
                            improved = true;
                        }
                    }
                    if !improved {
                        break;
                    }
                }
            }
        }
        Strategy::Anneal { steps } => {
            let mut cur = specs[rng.below(specs.len())];
            let mut cur_v = oracle.eval(&cur);
            consider(cur_v, cur, &mut best);
            let t0 = 2.0_f64;
            for step in 0..steps {
                let temp = t0 * 0.98_f64.powi(i32::try_from(step).unwrap_or(i32::MAX));
                let ns = neighbors(&cur);
                if ns.is_empty() {
                    break;
                }
                let cand = ns[rng.below(ns.len())];
                let v = oracle.eval(&cand);
                consider(v, cand, &mut best);
                let accept = v > cur_v
                    || (v.is_finite() && rng.unit() < ((v - cur_v) / temp.max(1e-6)).exp());
                if accept {
                    cur = cand;
                    cur_v = v;
                }
            }
        }
    }

    let exhaustive_best = (0..ex.archs.len())
        .filter(|&i| ex.archs[i].cost <= cost_bound)
        .map(|i| ex.speedup(i, target))
        .fold(f64::NEG_INFINITY, f64::max);
    let (best_speedup, best_spec) = match best {
        Some((v, s)) => (v, Some(s)),
        None => (f64::NEG_INFINITY, None),
    };
    SearchReport {
        strategy,
        evaluations: oracle.queried.len(),
        best: best_spec,
        best_speedup,
        quality: if exhaustive_best > 0.0 && best_speedup.is_finite() {
            best_speedup / exhaustive_best
        } else {
            0.0
        },
    }
}

/// The study: every strategy on every benchmark column, averaged over
/// seeds. Returns `(strategy, mean evaluations, mean quality)` rows.
#[must_use]
pub fn study(ex: &Exploration, cost_bound: f64, seeds: &[u64]) -> Vec<(Strategy, f64, f64)> {
    let strategies = [
        Strategy::Exhaustive,
        Strategy::RandomSample {
            n: (ex.archs.len() / 4).max(1),
        },
        Strategy::RandomSample {
            n: (ex.archs.len() / 16).max(1),
        },
        Strategy::HillClimb { restarts: 3 },
        Strategy::Anneal { steps: 60 },
    ];
    strategies
        .into_iter()
        .map(|st| {
            let mut evals = 0.0;
            let mut quality = 0.0;
            let mut n = 0.0;
            for t in 0..ex.benches.len() {
                for &seed in seeds {
                    let r = run(ex, t, cost_bound, st, seed);
                    evals += r.evaluations as f64;
                    quality += r.quality;
                    n += 1.0;
                }
            }
            (st, evals / n, quality / n)
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::explore::ExploreConfig;
    use cfp_kernels::Benchmark;

    fn ex() -> Exploration {
        let mut cfg = ExploreConfig::smoke();
        cfg.benches = vec![Benchmark::D, Benchmark::H];
        Exploration::run(&cfg)
    }

    #[test]
    fn exhaustive_finds_the_optimum_by_definition() {
        let ex = ex();
        let r = run(&ex, 0, 10.0, Strategy::Exhaustive, 1);
        assert!((r.quality - 1.0).abs() < 1e-12, "{r:?}");
        assert_eq!(r.evaluations, ex.archs.len());
    }

    #[test]
    fn sampling_evaluates_fewer_and_never_exceeds_exhaustive() {
        let ex = ex();
        for seed in [1_u64, 2, 3] {
            let r = run(&ex, 0, 10.0, Strategy::RandomSample { n: 3 }, seed);
            assert!(r.evaluations <= 3);
            assert!(r.quality <= 1.0 + 1e-12);
        }
    }

    #[test]
    fn searches_are_deterministic_in_the_seed() {
        let ex = ex();
        let a = run(&ex, 1, 10.0, Strategy::Anneal { steps: 30 }, 42);
        let b = run(&ex, 1, 10.0, Strategy::Anneal { steps: 30 }, 42);
        assert_eq!(a.best, b.best);
        assert_eq!(a.evaluations, b.evaluations);
    }

    #[test]
    fn neighbors_step_one_parameter_and_stay_valid() {
        let s = ArchSpec::new(8, 4, 256, 2, 4, 2).unwrap();
        let ns = neighbors(&s);
        assert!(!ns.is_empty());
        for n in &ns {
            assert!(n.validate().is_ok());
            let diffs = usize::from(n.alus != s.alus)
                + usize::from(n.regs != s.regs)
                + usize::from(n.l2_ports != s.l2_ports)
                + usize::from(n.l2_latency != s.l2_latency)
                + usize::from(n.clusters != s.clusters);
            // muls may co-move with alus to stay legal.
            assert!(diffs <= 1 || (diffs == 1 && n.muls != s.muls), "{n}");
        }
        // Extremes have fewer neighbors but still some.
        assert!(!neighbors(&ArchSpec::baseline()).is_empty());
    }

    #[test]
    fn study_reports_every_strategy() {
        let ex = ex();
        let rows = study(&ex, 10.0, &[1, 2]);
        assert_eq!(rows.len(), 5);
        // Exhaustive always has quality 1.
        assert!((rows[0].2 - 1.0).abs() < 1e-12);
        for (_, evals, quality) in &rows {
            assert!(*evals >= 1.0);
            assert!(*quality >= 0.0 && *quality <= 1.0 + 1e-12);
        }
    }
}
