//! The typed error layer of the exploration stack.
//!
//! The sweep's promise is that *one pathological candidate never takes
//! down a run*: every way an `(architecture, benchmark)` unit can go
//! wrong is a value here, so `explore` can quarantine the unit, record
//! why, and keep going. The taxonomy converges the per-crate errors
//! ([`cfp_sched::SchedError`], checkpoint I/O, caught panics) into:
//!
//! * [`EvalError`] — one evaluation refusing to produce a measurement;
//! * [`FailReason`] — the quarantine record kept for a failed unit
//!   (serializable, comparable, and honest about its [`FailKind`]);
//! * [`CheckpointError`] — the resume journal being unusable;
//! * [`ExploreError`] — a whole run being unable to proceed.

use cfp_kernels::Benchmark;
use cfp_sched::SchedError;
use std::error::Error;
use std::fmt;
use std::path::PathBuf;

/// Why one `(architecture, benchmark)` evaluation produced no
/// measurement.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum EvalError {
    /// The plan cache has no un-unrolled plan for this benchmark and
    /// residency budget — the cache was built for a different space.
    MissingPlan {
        /// The benchmark whose plan is missing.
        bench: Benchmark,
        /// The residency budget looked up.
        budget: usize,
    },
    /// The back end refused a compilation.
    Sched {
        /// The benchmark being evaluated.
        bench: Benchmark,
        /// The unroll factor being compiled when the error struck.
        unroll: u32,
        /// The scheduler's verdict.
        source: SchedError,
    },
}

impl fmt::Display for EvalError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EvalError::MissingPlan { bench, budget } => write!(
                f,
                "plan cache has no unroll-1 plan for benchmark {bench} at budget {budget}"
            ),
            EvalError::Sched {
                bench,
                unroll,
                source,
            } => write!(f, "compiling {bench} at unroll {unroll}: {source}"),
        }
    }
}

impl Error for EvalError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            EvalError::MissingPlan { .. } => None,
            EvalError::Sched { source, .. } => Some(source),
        }
    }
}

/// The class of a quarantined unit's failure — coarse on purpose, so it
/// survives serialization and drives the Table 3 counters.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FailKind {
    /// The evaluation panicked and was caught at the unit boundary.
    Panic,
    /// The compile fuel budget ran out before any measurement existed.
    FuelExhausted,
    /// A typed evaluation error (anything in [`EvalError`] that is not
    /// fuel exhaustion).
    Error,
}

impl FailKind {
    /// Stable one-word token used by the CSV and journal formats.
    #[must_use]
    pub fn token(self) -> &'static str {
        match self {
            FailKind::Panic => "panic",
            FailKind::FuelExhausted => "fuel",
            FailKind::Error => "error",
        }
    }

    /// Parse a [`FailKind::token`].
    #[must_use]
    pub fn from_token(s: &str) -> Option<Self> {
        match s {
            "panic" => Some(FailKind::Panic),
            "fuel" => Some(FailKind::FuelExhausted),
            "error" => Some(FailKind::Error),
            _ => None,
        }
    }
}

impl fmt::Display for FailKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.token())
    }
}

/// The quarantine record of one failed `(architecture, benchmark)` unit.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FailReason {
    /// The failure class.
    pub kind: FailKind,
    /// Human-readable detail (panic message or error rendering).
    pub message: String,
}

impl FailReason {
    /// Build a reason from a caught panic payload.
    #[must_use]
    pub fn from_panic(payload: &(dyn std::any::Any + Send)) -> Self {
        let message = payload
            .downcast_ref::<String>()
            .map(String::as_str)
            .or_else(|| payload.downcast_ref::<&str>().copied())
            .unwrap_or("<non-string panic payload>")
            .to_owned();
        FailReason {
            kind: FailKind::Panic,
            message,
        }
    }
}

impl From<EvalError> for FailReason {
    fn from(e: EvalError) -> Self {
        let kind = match &e {
            EvalError::Sched {
                source: SchedError::FuelExhausted { .. },
                ..
            } => FailKind::FuelExhausted,
            _ => FailKind::Error,
        };
        FailReason {
            kind,
            message: e.to_string(),
        }
    }
}

impl fmt::Display for FailReason {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}: {}", self.kind, self.message)
    }
}

/// The checkpoint journal being unusable (see `crate::checkpoint`).
#[derive(Debug)]
pub enum CheckpointError {
    /// Reading or writing the journal failed.
    Io {
        /// The journal path.
        path: PathBuf,
        /// The underlying I/O error.
        source: std::io::Error,
    },
    /// The journal exists but does not parse.
    Corrupt {
        /// 1-based line number of the first bad line.
        line: usize,
        /// What went wrong.
        message: String,
    },
    /// The journal was written by a different exploration configuration.
    Mismatch {
        /// Fingerprint of the configuration being run.
        expected: u64,
        /// Fingerprint recorded in the journal.
        found: u64,
    },
    /// A journal already exists and resuming was not requested.
    Exists(PathBuf),
}

impl fmt::Display for CheckpointError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CheckpointError::Io { path, source } => {
                write!(f, "checkpoint journal {}: {source}", path.display())
            }
            CheckpointError::Corrupt { line, message } => {
                write!(f, "checkpoint journal line {line}: {message}")
            }
            CheckpointError::Mismatch { expected, found } => write!(
                f,
                "checkpoint journal was written by a different configuration \
                 (fingerprint {found:016x}, this run is {expected:016x})"
            ),
            CheckpointError::Exists(path) => write!(
                f,
                "checkpoint journal {} already exists; resume it or remove it",
                path.display()
            ),
        }
    }
}

impl Error for CheckpointError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            CheckpointError::Io { source, .. } => Some(source),
            _ => None,
        }
    }
}

/// A whole exploration run being unable to proceed (as opposed to one
/// quarantined unit, which the run absorbs and reports).
#[derive(Debug)]
pub enum ExploreError {
    /// The configuration has no architectures or no benchmarks.
    EmptyConfig,
    /// The baseline architecture failed to evaluate; every speedup is a
    /// ratio against it, so there is nothing meaningful to report.
    BaselineFailed(FailReason),
    /// A worker thread died outside the quarantine boundary — a harness
    /// bug, not a candidate failure.
    WorkerLost,
    /// The checkpoint journal could not be used.
    Checkpoint(CheckpointError),
}

impl fmt::Display for ExploreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ExploreError::EmptyConfig => {
                f.write_str("exploration needs at least one architecture and one benchmark")
            }
            ExploreError::BaselineFailed(r) => write!(f, "baseline evaluation failed: {r}"),
            ExploreError::WorkerLost => {
                f.write_str("a worker thread panicked outside the unit quarantine")
            }
            ExploreError::Checkpoint(e) => write!(f, "{e}"),
        }
    }
}

impl Error for ExploreError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            ExploreError::Checkpoint(e) => Some(e),
            _ => None,
        }
    }
}

impl From<CheckpointError> for ExploreError {
    fn from(e: CheckpointError) -> Self {
        ExploreError::Checkpoint(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fail_kind_tokens_round_trip() {
        for kind in [FailKind::Panic, FailKind::FuelExhausted, FailKind::Error] {
            assert_eq!(FailKind::from_token(kind.token()), Some(kind));
        }
        assert_eq!(FailKind::from_token("weird"), None);
    }

    #[test]
    fn fuel_exhaustion_maps_to_its_own_kind() {
        let fuel: FailReason = EvalError::Sched {
            bench: Benchmark::A,
            unroll: 1,
            source: SchedError::FuelExhausted { budget: 9 },
        }
        .into();
        assert_eq!(fuel.kind, FailKind::FuelExhausted);
        let cap: FailReason = EvalError::Sched {
            bench: Benchmark::A,
            unroll: 1,
            source: SchedError::CycleCapExceeded { cap: 4 },
        }
        .into();
        assert_eq!(cap.kind, FailKind::Error);
    }

    #[test]
    fn panic_payloads_are_extracted() {
        let r = FailReason::from_panic(&"boom".to_string());
        assert_eq!(r.kind, FailKind::Panic);
        assert_eq!(r.message, "boom");
        let s: &(dyn std::any::Any + Send) = &"static boom";
        assert_eq!(FailReason::from_panic(s).message, "static boom");
    }

    #[test]
    fn errors_display_usefully() {
        let e = ExploreError::Checkpoint(CheckpointError::Mismatch {
            expected: 1,
            found: 2,
        });
        assert!(e.to_string().contains("different configuration"));
        assert!(EvalError::MissingPlan {
            bench: Benchmark::A,
            budget: 32
        }
        .to_string()
        .contains("budget 32"));
    }
}
