//! Architecture selection under a cost budget with a RANGE back-off
//! (paper §4.2, Tables 8–10).
//!
//! For each target benchmark the designer picks the architecture that is
//! best for that benchmark without exceeding COST. With RANGE > 0 the
//! designer is willing to give up up to `RANGE` of the target's best
//! achievable speedup in order to improve the whole suite: among
//! candidates within range of the best, the one with the highest overall
//! `su` (harmonic-mean speedup — total running time) wins. RANGE = ∞
//! ignores the target entirely, answering "which architecture minimizes
//! the total running time of all the applications at this cost".
//!
//! Two entry points, one rule: [`select`] walks an [`Exploration`],
//! [`select_batch`] reads the precomputed columns of an
//! [`EvalBatch`](crate::batch::EvalBatch). Both lower onto the same
//! column-driven core, so they agree bit for bit; the batch form skips
//! the per-architecture harmonic-mean recomputation entirely (the `su`
//! column was filled once when the batch was built).

use crate::batch::EvalBatch;
use crate::explore::Exploration;
use cfp_machine::ArchSpec;

/// The back-off parameter. `Fraction(0.10)` is the paper's "10%".
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Range {
    /// Give up at most this fraction of the target's best speedup.
    Fraction(f64),
    /// Ignore the target: optimize the whole suite.
    Infinite,
}

impl std::fmt::Display for Range {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Range::Fraction(x) => write!(f, "{:.0}%", x * 100.0),
            Range::Infinite => f.write_str("inf"),
        }
    }
}

/// One selected architecture and its full evaluation row.
#[derive(Debug, Clone)]
pub struct Selection {
    /// Index into the exploration's architectures.
    pub arch_index: usize,
    /// The chosen architecture.
    pub spec: ArchSpec,
    /// Its cost.
    pub cost: f64,
    /// Harmonic-mean speedup over all columns (the paper's `su`).
    pub su: f64,
    /// Per-benchmark speedups, column order.
    pub speedups: Vec<f64>,
}

/// The selection rule over parallel columns: `cost`/`su` per
/// architecture plus the target benchmark's speedup column. Returns the
/// winning architecture index.
fn select_core(
    specs: &[ArchSpec],
    cost: &[f64],
    su: &[f64],
    target_su: &[f64],
    cost_bound: f64,
    range: Range,
) -> Option<usize> {
    // Quarantined units surface as NaN speedups, which poison the row's
    // harmonic mean; a designer cannot pick an architecture with missing
    // measurements, so such rows are out of the running entirely.
    let affordable: Vec<usize> = (0..specs.len())
        .filter(|&a| cost[a] <= cost_bound && su[a].is_finite())
        .collect();
    if affordable.is_empty() {
        return None;
    }

    let candidates: Vec<usize> = match range {
        Range::Infinite => affordable,
        Range::Fraction(f) => {
            let best = affordable
                .iter()
                .map(|&a| target_su[a])
                .fold(f64::NEG_INFINITY, f64::max);
            affordable
                .into_iter()
                .filter(|&a| target_su[a] >= best * (1.0 - f) - 1e-12)
                .collect()
        }
    };

    // Among candidates, the best overall suite performance; ties go to
    // the cheaper architecture, then to the lexically smaller spec so
    // results are deterministic.
    candidates.into_iter().min_by(|&x, &y| {
        su[y]
            .total_cmp(&su[x])
            .then(cost[x].total_cmp(&cost[y]))
            .then(specs[x].cmp(&specs[y]))
    })
}

/// Select for `target` under `cost_bound` and `range`.
///
/// Returns `None` when no architecture fits the cost bound.
#[must_use]
pub fn select(
    exploration: &Exploration,
    target: usize,
    cost_bound: f64,
    range: Range,
) -> Option<Selection> {
    // Three linear passes build the columns once; the historical code
    // recomputed the harmonic mean inside the winner comparator, once
    // per comparison.
    let na = exploration.archs.len();
    let specs: Vec<ArchSpec> = exploration.archs.iter().map(|a| a.spec).collect();
    let cost: Vec<f64> = exploration.archs.iter().map(|a| a.cost).collect();
    let mut su = Vec::with_capacity(na);
    let mut target_su = Vec::with_capacity(na);
    for a in 0..na {
        su.push(Exploration::harmonic_mean(&exploration.speedup_row(a)));
        target_su.push(exploration.speedup(a, target));
    }

    let winner = select_core(&specs, &cost, &su, &target_su, cost_bound, range)?;
    let speedups = exploration.speedup_row(winner);
    Some(Selection {
        arch_index: winner,
        spec: specs[winner],
        cost: cost[winner],
        su: su[winner],
        speedups,
    })
}

/// [`select`] over a prebuilt [`EvalBatch`]: identical rule, identical
/// winner (bit for bit), but every column is already resident — the call
/// is two linear passes (the target-column gather and the core) with no
/// per-architecture recomputation.
///
/// # Panics
/// Panics if `target` is not a benchmark column of the batch.
#[must_use]
pub fn select_batch(
    batch: &EvalBatch,
    target: usize,
    cost_bound: f64,
    range: Range,
) -> Option<Selection> {
    assert!(target < batch.benches(), "target column out of range");
    let target_su: Vec<f64> = (0..batch.len())
        .map(|a| batch.speedup_row(a)[target])
        .collect();
    let winner = select_core(
        batch.specs(),
        batch.costs(),
        batch.sus(),
        &target_su,
        cost_bound,
        range,
    )?;
    Some(Selection {
        arch_index: winner,
        spec: batch.specs()[winner],
        cost: batch.costs()[winner],
        su: batch.sus()[winner],
        speedups: batch.speedup_row(winner).to_vec(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::explore::ExploreConfig;
    use cfp_kernels::Benchmark;

    fn small_exploration() -> Exploration {
        let mut cfg = ExploreConfig::smoke();
        cfg.benches = vec![Benchmark::A, Benchmark::H];
        Exploration::run(&cfg)
    }

    #[test]
    fn selection_respects_the_cost_bound() {
        let ex = small_exploration();
        for bound in [2.0, 5.0, 10.0] {
            for t in 0..ex.benches.len() {
                if let Some(sel) = select(&ex, t, bound, Range::Fraction(0.0)) {
                    assert!(sel.cost <= bound, "{} > {bound}", sel.cost);
                }
            }
        }
    }

    #[test]
    fn range_zero_maximizes_the_target() {
        let ex = small_exploration();
        let t = 0;
        let sel = select(&ex, t, 10.0, Range::Fraction(0.0)).unwrap();
        for a in 0..ex.archs.len() {
            if ex.archs[a].cost <= 10.0 {
                assert!(
                    ex.speedup(a, t) <= sel.speedups[t] + 1e-9,
                    "arch {a} beats the selection on its own target"
                );
            }
        }
    }

    #[test]
    fn infinite_range_is_target_independent() {
        let ex = small_exploration();
        let s0 = select(&ex, 0, 10.0, Range::Infinite).unwrap();
        let s1 = select(&ex, 1, 10.0, Range::Infinite).unwrap();
        assert_eq!(s0.spec, s1.spec, "the `all` row is a single architecture");
    }

    #[test]
    fn widening_the_range_never_hurts_the_suite() {
        let ex = small_exploration();
        for t in 0..ex.benches.len() {
            let s0 = select(&ex, t, 10.0, Range::Fraction(0.0)).unwrap();
            let s10 = select(&ex, t, 10.0, Range::Fraction(0.10)).unwrap();
            let sinf = select(&ex, t, 10.0, Range::Infinite).unwrap();
            assert!(s10.su >= s0.su - 1e-9);
            assert!(sinf.su >= s10.su - 1e-9);
        }
    }

    #[test]
    fn impossible_budget_returns_none() {
        let ex = small_exploration();
        assert!(select(&ex, 0, 0.1, Range::Fraction(0.0)).is_none());
    }

    #[test]
    fn batch_selection_agrees_with_the_scalar_rule() {
        let ex = small_exploration();
        let batch = ex.batch();
        for t in 0..ex.benches.len() {
            for bound in [0.1, 2.0, 5.0, 10.0, f64::INFINITY] {
                for range in [Range::Fraction(0.0), Range::Fraction(0.1), Range::Infinite] {
                    let scalar = select(&ex, t, bound, range);
                    let batched = select_batch(&batch, t, bound, range);
                    match (scalar, batched) {
                        (None, None) => {}
                        (Some(s), Some(b)) => {
                            assert_eq!(s.arch_index, b.arch_index, "t {t} bound {bound} {range}");
                            assert_eq!(s.spec, b.spec);
                            assert_eq!(s.cost.to_bits(), b.cost.to_bits());
                            assert_eq!(s.su.to_bits(), b.su.to_bits());
                            let sb: Vec<u64> = s.speedups.iter().map(|x| x.to_bits()).collect();
                            let bb: Vec<u64> = b.speedups.iter().map(|x| x.to_bits()).collect();
                            assert_eq!(sb, bb);
                        }
                        (s, b) => panic!("scalar {:?} vs batch {:?}", s.is_some(), b.is_some()),
                    }
                }
            }
        }
    }
}
