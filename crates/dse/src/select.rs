//! Architecture selection under a cost budget with a RANGE back-off
//! (paper §4.2, Tables 8–10).
//!
//! For each target benchmark the designer picks the architecture that is
//! best for that benchmark without exceeding COST. With RANGE > 0 the
//! designer is willing to give up up to `RANGE` of the target's best
//! achievable speedup in order to improve the whole suite: among
//! candidates within range of the best, the one with the highest overall
//! `su` (harmonic-mean speedup — total running time) wins. RANGE = ∞
//! ignores the target entirely, answering "which architecture minimizes
//! the total running time of all the applications at this cost".

use crate::explore::Exploration;
use cfp_machine::ArchSpec;

/// The back-off parameter. `Fraction(0.10)` is the paper's "10%".
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Range {
    /// Give up at most this fraction of the target's best speedup.
    Fraction(f64),
    /// Ignore the target: optimize the whole suite.
    Infinite,
}

impl std::fmt::Display for Range {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Range::Fraction(x) => write!(f, "{:.0}%", x * 100.0),
            Range::Infinite => f.write_str("inf"),
        }
    }
}

/// One selected architecture and its full evaluation row.
#[derive(Debug, Clone)]
pub struct Selection {
    /// Index into the exploration's architectures.
    pub arch_index: usize,
    /// The chosen architecture.
    pub spec: ArchSpec,
    /// Its cost.
    pub cost: f64,
    /// Harmonic-mean speedup over all columns (the paper's `su`).
    pub su: f64,
    /// Per-benchmark speedups, column order.
    pub speedups: Vec<f64>,
}

/// Select for `target` under `cost_bound` and `range`.
///
/// Returns `None` when no architecture fits the cost bound.
#[must_use]
pub fn select(
    exploration: &Exploration,
    target: usize,
    cost_bound: f64,
    range: Range,
) -> Option<Selection> {
    let target_su = |a: usize| exploration.speedup(a, target);
    let overall = |a: usize| Exploration::harmonic_mean(&exploration.speedup_row(a));
    // Quarantined units surface as NaN speedups, which poison the row's
    // harmonic mean; a designer cannot pick an architecture with missing
    // measurements, so such rows are out of the running entirely.
    let affordable: Vec<usize> = (0..exploration.archs.len())
        .filter(|&a| exploration.archs[a].cost <= cost_bound && overall(a).is_finite())
        .collect();
    if affordable.is_empty() {
        return None;
    }

    let candidates: Vec<usize> = match range {
        Range::Infinite => affordable.clone(),
        Range::Fraction(f) => {
            let best = affordable
                .iter()
                .map(|&a| target_su(a))
                .fold(f64::NEG_INFINITY, f64::max);
            affordable
                .iter()
                .copied()
                .filter(|&a| target_su(a) >= best * (1.0 - f) - 1e-12)
                .collect()
        }
    };

    // Among candidates, the best overall suite performance; ties go to
    // the cheaper architecture, then to the lexically smaller spec so
    // results are deterministic.
    let winner = candidates.into_iter().min_by(|&x, &y| {
        overall(y)
            .total_cmp(&overall(x))
            .then(
                exploration.archs[x]
                    .cost
                    .total_cmp(&exploration.archs[y].cost),
            )
            .then(exploration.archs[x].spec.cmp(&exploration.archs[y].spec))
    })?;

    let speedups = exploration.speedup_row(winner);
    Some(Selection {
        arch_index: winner,
        spec: exploration.archs[winner].spec,
        cost: exploration.archs[winner].cost,
        su: Exploration::harmonic_mean(&speedups),
        speedups,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::explore::ExploreConfig;
    use cfp_kernels::Benchmark;

    fn small_exploration() -> Exploration {
        let mut cfg = ExploreConfig::smoke();
        cfg.benches = vec![Benchmark::A, Benchmark::H];
        Exploration::run(&cfg)
    }

    #[test]
    fn selection_respects_the_cost_bound() {
        let ex = small_exploration();
        for bound in [2.0, 5.0, 10.0] {
            for t in 0..ex.benches.len() {
                if let Some(sel) = select(&ex, t, bound, Range::Fraction(0.0)) {
                    assert!(sel.cost <= bound, "{} > {bound}", sel.cost);
                }
            }
        }
    }

    #[test]
    fn range_zero_maximizes_the_target() {
        let ex = small_exploration();
        let t = 0;
        let sel = select(&ex, t, 10.0, Range::Fraction(0.0)).unwrap();
        for a in 0..ex.archs.len() {
            if ex.archs[a].cost <= 10.0 {
                assert!(
                    ex.speedup(a, t) <= sel.speedups[t] + 1e-9,
                    "arch {a} beats the selection on its own target"
                );
            }
        }
    }

    #[test]
    fn infinite_range_is_target_independent() {
        let ex = small_exploration();
        let s0 = select(&ex, 0, 10.0, Range::Infinite).unwrap();
        let s1 = select(&ex, 1, 10.0, Range::Infinite).unwrap();
        assert_eq!(s0.spec, s1.spec, "the `all` row is a single architecture");
    }

    #[test]
    fn widening_the_range_never_hurts_the_suite() {
        let ex = small_exploration();
        for t in 0..ex.benches.len() {
            let s0 = select(&ex, t, 10.0, Range::Fraction(0.0)).unwrap();
            let s10 = select(&ex, t, 10.0, Range::Fraction(0.10)).unwrap();
            let sinf = select(&ex, t, 10.0, Range::Infinite).unwrap();
            assert!(s10.su >= s0.su - 1e-9);
            assert!(sinf.su >= s10.su - 1e-9);
        }
    }

    #[test]
    fn impossible_budget_returns_none() {
        let ex = small_exploration();
        assert!(select(&ex, 0, 0.1, Range::Fraction(0.0)).is_none());
    }
}
