//! Persistence: save a completed exploration as CSV and load it back.
//!
//! The full 192-point experiment takes minutes; the selection tables,
//! frontiers, and studies are instant. Persisting the exploration lets
//! the analysis layers (and external plotting) re-run without
//! recompiling anything — the same role the paper's collected
//! measurement logs played. The format is a plain CSV, one row per
//! `(architecture, benchmark)`, self-describing and diff-friendly.

use crate::eval::EvalOutcome;
use crate::explore::{ArchEval, Exploration, RunStats};
use cfp_kernels::Benchmark;
use cfp_machine::ArchSpec;
use std::collections::BTreeMap;
use std::error::Error;
use std::fmt;

/// Header of the exploration CSV.
pub const HEADER: &str =
    "arch,bench,cost,derate,cycles_per_output,unroll,spilled,compilations,is_baseline";

/// A malformed exploration CSV.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    /// 1-based line number.
    pub line: usize,
    /// What went wrong.
    pub message: String,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "line {}: {}", self.line, self.message)
    }
}

impl Error for ParseError {}

/// Serialize an exploration (lossless for everything the analysis layers
/// read; run statistics are reduced to the compilation count).
#[must_use]
pub fn to_csv(ex: &Exploration) -> String {
    let mut out = String::from(HEADER);
    out.push('\n');
    let row = |arch: &ArchEval, is_baseline: bool, out: &mut String| {
        for (b, o) in ex.benches.iter().zip(&arch.outcomes) {
            out.push_str(&format!(
                "{},{},{},{},{},{},{},{},{}\n",
                arch.spec.to_string().replace(' ', "/"),
                b,
                arch.cost,
                arch.derate,
                o.cycles_per_output,
                o.unroll,
                u8::from(o.spilled),
                o.compilations,
                u8::from(is_baseline),
            ));
        }
    };
    row(&ex.baseline, true, &mut out);
    for a in &ex.archs {
        row(a, false, &mut out);
    }
    out
}

/// Parse an exploration back from [`to_csv`] output.
///
/// # Errors
/// Returns a [`ParseError`] naming the first malformed line.
pub fn from_csv(text: &str) -> Result<Exploration, ParseError> {
    let mut lines = text.lines().enumerate();
    match lines.next() {
        Some((_, h)) if h.trim() == HEADER => {}
        other => {
            return Err(ParseError {
                line: 1,
                message: format!("bad header: {other:?}"),
            })
        }
    }

    let mut benches: Vec<Benchmark> = Vec::new();
    // Keyed by (is_baseline, spec) preserving first-seen order via index.
    let mut order: Vec<(bool, ArchSpec)> = Vec::new();
    let mut rows: BTreeMap<(bool, ArchSpec), (f64, f64, Vec<EvalOutcome>)> = BTreeMap::new();

    for (idx, line) in lines {
        let lineno = idx + 1;
        if line.trim().is_empty() {
            continue;
        }
        let err = |message: String| ParseError {
            line: lineno,
            message,
        };
        let f: Vec<&str> = line.split(',').collect();
        if f.len() != 9 {
            return Err(err(format!("expected 9 fields, got {}", f.len())));
        }
        let spec = ArchSpec::parse(&f[0].replace('/', " ")).map_err(&err)?;
        let bench = Benchmark::ALL
            .into_iter()
            .find(|b| b.letter() == f[1])
            .ok_or_else(|| err(format!("unknown benchmark `{}`", f[1])))?;
        let num = |s: &str| -> Result<f64, ParseError> {
            s.parse().map_err(|e| err(format!("bad number `{s}`: {e}")))
        };
        let cost = num(f[2])?;
        let derate = num(f[3])?;
        let outcome = EvalOutcome {
            cycles_per_output: num(f[4])?,
            unroll: num(f[5])? as u32,
            spilled: f[6] == "1",
            compilations: num(f[7])? as u32,
        };
        let is_baseline = f[8] == "1";

        if !benches.contains(&bench) {
            benches.push(bench);
        }
        let key = (is_baseline, spec);
        if !rows.contains_key(&key) {
            order.push(key);
        }
        rows.entry(key)
            .or_insert_with(|| (cost, derate, Vec::new()))
            .2
            .push(outcome);
    }

    let mut baseline: Option<ArchEval> = None;
    let mut archs = Vec::new();
    for key in order {
        let (cost, derate, outcomes) = rows.remove(&key).expect("keyed above");
        if outcomes.len() != benches.len() {
            return Err(ParseError {
                line: 0,
                message: format!(
                    "architecture {} has {} outcomes for {} benchmarks",
                    key.1,
                    outcomes.len(),
                    benches.len()
                ),
            });
        }
        let eval = ArchEval {
            spec: key.1,
            cost,
            derate,
            outcomes,
        };
        if key.0 {
            baseline = Some(eval);
        } else {
            archs.push(eval);
        }
    }
    let baseline = baseline.ok_or(ParseError {
        line: 0,
        message: "no baseline row".to_owned(),
    })?;
    let compilations = archs
        .iter()
        .chain(std::iter::once(&baseline))
        .flat_map(|a| &a.outcomes)
        .map(|o| u64::from(o.compilations))
        .sum();
    Ok(Exploration {
        benches,
        stats: RunStats {
            compilations,
            architectures: archs.len(),
            // Timings and cache accounting are run-time facts the CSV
            // deliberately does not persist.
            ..RunStats::default()
        },
        archs,
        baseline,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::explore::ExploreConfig;

    fn small() -> Exploration {
        let mut cfg = ExploreConfig::smoke();
        cfg.archs.truncate(4);
        cfg.benches = vec![Benchmark::D, Benchmark::G];
        Exploration::run(&cfg)
    }

    #[test]
    fn round_trip_preserves_the_analysis_view() {
        let ex = small();
        let csv = to_csv(&ex);
        let back = from_csv(&csv).expect("parses");
        assert_eq!(back.benches, ex.benches);
        assert_eq!(back.archs.len(), ex.archs.len());
        for a in 0..ex.archs.len() {
            assert_eq!(back.archs[a].spec, ex.archs[a].spec);
            for b in 0..ex.benches.len() {
                assert_eq!(back.speedup(a, b), ex.speedup(a, b), "({a},{b})");
            }
        }
        // Analysis layers agree end to end.
        let s1 = crate::select::select(&ex, 0, 10.0, crate::select::Range::Fraction(0.1));
        let s2 = crate::select::select(&back, 0, 10.0, crate::select::Range::Fraction(0.1));
        assert_eq!(s1.map(|s| s.spec), s2.map(|s| s.spec));
    }

    #[test]
    fn rejects_malformed_input() {
        assert!(from_csv("").is_err());
        assert!(from_csv("not,the,header\n").is_err());
        let ex = small();
        let csv = to_csv(&ex);
        // Chop a field off some row.
        let broken: String = csv
            .lines()
            .enumerate()
            .map(|(i, l)| {
                if i == 2 {
                    l.rsplit_once(',').map(|(a, _)| a.to_owned()).unwrap()
                } else {
                    l.to_owned()
                }
            })
            .collect::<Vec<_>>()
            .join("\n");
        assert!(from_csv(&broken).is_err());
    }

    #[test]
    fn csv_is_plain_and_headed() {
        let csv = to_csv(&small());
        assert!(csv.starts_with(HEADER));
        assert!(!csv.contains(' '), "specs use `/` separators in CSV");
    }
}
