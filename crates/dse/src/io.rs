//! Persistence: save a completed exploration as CSV and load it back.
//!
//! The full 192-point experiment takes minutes; the selection tables,
//! frontiers, and studies are instant. Persisting the exploration lets
//! the analysis layers (and external plotting) re-run without
//! recompiling anything — the same role the paper's collected
//! measurement logs played. The format is a plain CSV, one row per
//! `(architecture, benchmark)`, self-describing and diff-friendly.
//!
//! Quarantined units survive the round trip: a failed unit's row carries
//! `failed:<kind>:<escaped message>` in the `cycles_per_output` column
//! (zeros elsewhere), so a degraded run's CSV is honest about exactly
//! which pairs have no measurement and why.

use crate::checkpoint::{escape, unescape};
use crate::error::{FailKind, FailReason};
use crate::eval::{EvalOutcome, Measurement};
use crate::explore::{ArchEval, Exploration, RunStats};
use cfp_kernels::Benchmark;
use cfp_machine::ArchSpec;
use std::collections::BTreeMap;
use std::error::Error;
use std::fmt;

/// Header of the exploration CSV.
pub const HEADER: &str =
    "arch,bench,cost,derate,cycles_per_output,unroll,spilled,compilations,is_baseline";

/// A malformed exploration CSV.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    /// 1-based line number.
    pub line: usize,
    /// What went wrong.
    pub message: String,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "line {}: {}", self.line, self.message)
    }
}

impl Error for ParseError {}

/// Serialize an exploration (lossless for everything the analysis layers
/// read; run statistics are reduced to the compilation count).
#[must_use]
pub fn to_csv(ex: &Exploration) -> String {
    let mut out = String::from(HEADER);
    out.push('\n');
    let row = |arch: &ArchEval, is_baseline: bool, out: &mut String| {
        for (b, o) in ex.benches.iter().zip(&arch.outcomes) {
            let (cycles, unroll, spilled, compilations) = match o {
                EvalOutcome::Done(m) => (
                    m.cycles_per_output.to_string(),
                    m.unroll,
                    u8::from(m.spilled),
                    m.compilations,
                ),
                EvalOutcome::Failed { reason } => (
                    format!("failed:{}:{}", reason.kind.token(), escape(&reason.message)),
                    0,
                    0,
                    0,
                ),
            };
            out.push_str(&format!(
                "{},{},{},{},{cycles},{unroll},{spilled},{compilations},{}\n",
                arch.spec.to_string().replace(' ', "/"),
                b,
                arch.cost,
                arch.derate,
                u8::from(is_baseline),
            ));
        }
    };
    row(&ex.baseline, true, &mut out);
    for a in &ex.archs {
        row(a, false, &mut out);
    }
    out
}

/// Parse an exploration back from [`to_csv`] output.
///
/// # Errors
/// Returns a [`ParseError`] naming the first malformed line.
pub fn from_csv(text: &str) -> Result<Exploration, ParseError> {
    let mut lines = text.lines().enumerate();
    match lines.next() {
        Some((_, h)) if h.trim() == HEADER => {}
        other => {
            return Err(ParseError {
                line: 1,
                message: format!("bad header: {other:?}"),
            })
        }
    }

    let mut benches: Vec<Benchmark> = Vec::new();
    // Keyed by (is_baseline, spec) preserving first-seen order via index.
    let mut order: Vec<(bool, ArchSpec)> = Vec::new();
    let mut rows: BTreeMap<(bool, ArchSpec), (f64, f64, Vec<EvalOutcome>)> = BTreeMap::new();

    for (idx, line) in lines {
        let lineno = idx + 1;
        if line.trim().is_empty() {
            continue;
        }
        let err = |message: String| ParseError {
            line: lineno,
            message,
        };
        let f: Vec<&str> = line.split(',').collect();
        if f.len() != 9 {
            return Err(err(format!("expected 9 fields, got {}", f.len())));
        }
        let spec = ArchSpec::parse(&f[0].replace('/', " ")).map_err(&err)?;
        let bench = Benchmark::ALL
            .into_iter()
            .find(|b| b.letter() == f[1])
            .ok_or_else(|| err(format!("unknown benchmark `{}`", f[1])))?;
        let num = |s: &str| -> Result<f64, ParseError> {
            s.parse().map_err(|e| err(format!("bad number `{s}`: {e}")))
        };
        let int = |s: &str| -> Result<u32, ParseError> {
            s.parse().map_err(|e| err(format!("bad count `{s}`: {e}")))
        };
        let cost = num(f[2])?;
        let derate = num(f[3])?;
        let outcome = if let Some(rest) = f[4].strip_prefix("failed:") {
            let (token, message) = rest
                .split_once(':')
                .ok_or_else(|| err(format!("bad failure field `{}`", f[4])))?;
            let kind = FailKind::from_token(token)
                .ok_or_else(|| err(format!("unknown failure kind `{token}`")))?;
            let message =
                unescape(message).ok_or_else(|| err("bad escape in failure message".to_owned()))?;
            EvalOutcome::Failed {
                reason: FailReason { kind, message },
            }
        } else {
            EvalOutcome::Done(Measurement {
                cycles_per_output: num(f[4])?,
                unroll: int(f[5])?,
                spilled: f[6] == "1",
                compilations: int(f[7])?,
            })
        };
        let is_baseline = f[8] == "1";

        if !benches.contains(&bench) {
            benches.push(bench);
        }
        let key = (is_baseline, spec);
        if !rows.contains_key(&key) {
            order.push(key);
        }
        rows.entry(key)
            .or_insert_with(|| (cost, derate, Vec::new()))
            .2
            .push(outcome);
    }

    let mut baseline: Option<ArchEval> = None;
    let mut archs = Vec::new();
    for key in order {
        // Every key in `order` was inserted into `rows` above, so a miss
        // cannot happen; skipping (rather than unwrapping) keeps the
        // parser total.
        let Some((cost, derate, outcomes)) = rows.remove(&key) else {
            continue;
        };
        if outcomes.len() != benches.len() {
            return Err(ParseError {
                line: 0,
                message: format!(
                    "architecture {} has {} outcomes for {} benchmarks",
                    key.1,
                    outcomes.len(),
                    benches.len()
                ),
            });
        }
        let eval = ArchEval {
            spec: key.1,
            cost,
            derate,
            outcomes,
        };
        if key.0 {
            baseline = Some(eval);
        } else {
            archs.push(eval);
        }
    }
    let baseline = baseline.ok_or(ParseError {
        line: 0,
        message: "no baseline row".to_owned(),
    })?;
    let compilations = archs
        .iter()
        .chain(std::iter::once(&baseline))
        .flat_map(|a| &a.outcomes)
        .map(|o| u64::from(o.compilations()))
        .sum();
    let failed_units = archs
        .iter()
        .flat_map(|a| &a.outcomes)
        .filter(|o| !o.is_done())
        .count() as u64;
    let fuel_exhausted = archs
        .iter()
        .flat_map(|a| &a.outcomes)
        .filter(|o| {
            o.failure()
                .is_some_and(|r| r.kind == FailKind::FuelExhausted)
        })
        .count() as u64;
    Ok(Exploration {
        benches,
        stats: RunStats {
            compilations,
            architectures: archs.len(),
            failed_units,
            fuel_exhausted,
            // Timings and cache accounting are run-time facts the CSV
            // deliberately does not persist.
            ..RunStats::default()
        },
        archs,
        baseline,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::explore::ExploreConfig;

    fn small() -> Exploration {
        let mut cfg = ExploreConfig::smoke();
        cfg.archs.truncate(4);
        cfg.benches = vec![Benchmark::D, Benchmark::G];
        Exploration::run(&cfg)
    }

    #[test]
    fn round_trip_preserves_the_analysis_view() {
        let ex = small();
        let csv = to_csv(&ex);
        let back = from_csv(&csv).expect("parses");
        assert_eq!(back.benches, ex.benches);
        assert_eq!(back.archs.len(), ex.archs.len());
        for a in 0..ex.archs.len() {
            assert_eq!(back.archs[a].spec, ex.archs[a].spec);
            for b in 0..ex.benches.len() {
                assert_eq!(back.speedup(a, b), ex.speedup(a, b), "({a},{b})");
            }
        }
        // Analysis layers agree end to end.
        let s1 = crate::select::select(&ex, 0, 10.0, crate::select::Range::Fraction(0.1));
        let s2 = crate::select::select(&back, 0, 10.0, crate::select::Range::Fraction(0.1));
        assert_eq!(s1.map(|s| s.spec), s2.map(|s| s.spec));
    }

    #[test]
    fn failed_units_round_trip_with_their_reasons() {
        let mut ex = small();
        ex.archs[1].outcomes[0] = EvalOutcome::Failed {
            reason: FailReason {
                kind: FailKind::Panic,
                message: "index 3,7 out of bounds\nat eval".to_owned(),
            },
        };
        ex.archs[2].outcomes[1] = EvalOutcome::Failed {
            reason: FailReason {
                kind: FailKind::FuelExhausted,
                message: "fuel budget 100 exhausted".to_owned(),
            },
        };
        let csv = to_csv(&ex);
        assert!(!csv.contains('\r'), "messages are escaped into one line");
        let back = from_csv(&csv).expect("parses");
        assert_eq!(back.archs[1].outcomes[0], ex.archs[1].outcomes[0]);
        assert_eq!(back.archs[2].outcomes[1], ex.archs[2].outcomes[1]);
        assert_eq!(back.stats.failed_units, 2);
        assert_eq!(back.stats.fuel_exhausted, 1);
        // The failed pairs stay visibly unmeasured after the round trip.
        assert!(back.speedup(1, 0).is_nan());
        assert!(back.speedup(2, 1).is_nan());
    }

    #[test]
    fn rejects_malformed_input() {
        assert!(from_csv("").is_err());
        assert!(from_csv("not,the,header\n").is_err());
        let ex = small();
        let csv = to_csv(&ex);
        // Chop a field off some row; a line with no comma at all is left
        // as-is (and the parser rejects its field count anyway).
        let broken: String = csv
            .lines()
            .enumerate()
            .map(|(i, l)| {
                if i == 2 {
                    l.rsplit_once(',')
                        .map_or_else(String::new, |(a, _)| a.to_owned())
                } else {
                    l.to_owned()
                }
            })
            .collect::<Vec<_>>()
            .join("\n");
        let err = from_csv(&broken).expect_err("malformed");
        assert_eq!(err.line, 3, "error names the broken line");
        // Garbage failure fields are named, not panicked over.
        let mut lines: Vec<String> = csv.lines().map(str::to_owned).collect();
        let f: Vec<&str> = lines[1].split(',').collect();
        lines[1] = format!(
            "{},{},{},{},failed:weird:msg,0,0,0,{}",
            f[0], f[1], f[2], f[3], f[8]
        );
        let err = from_csv(&lines.join("\n")).expect_err("unknown kind");
        assert!(err.message.contains("weird"), "{err}");
    }

    #[test]
    fn csv_is_plain_and_headed() {
        let csv = to_csv(&small());
        assert!(csv.starts_with(HEADER));
        assert!(!csv.contains(' '), "specs use `/` separators in CSV");
    }
}
