//! The retargetable back end: kernel + machine → scheduled loop.
//!
//! This is the paper's "build a version of our compiler that generates
//! good code for that architecture" step, minus the 50-second relink: the
//! machine description is a runtime value.

use crate::cluster::{assign, Assignment};
use crate::ddg::Ddg;
use crate::list::{self, Schedule};
use crate::loopcode::LoopCode;
use crate::regalloc::{pressure, PressureReport};
use cfp_ir::Kernel;
use cfp_machine::MachineResources;

/// Everything the middle end and the design-space exploration need to
/// know about one compilation.
#[derive(Debug, Clone)]
pub struct CompileResult {
    /// The scheduled iteration.
    pub schedule: Schedule,
    /// The assigned loop code (moves included).
    pub assignment: Assignment,
    /// Register pressure versus capacity.
    pub pressure: PressureReport,
    /// Schedule length in cycles (no spill traffic).
    pub length: u32,
    /// Extra cycles per iteration paid for spill traffic (0 when the
    /// kernel fits).
    pub spill_penalty: u32,
    /// Inter-cluster moves inserted.
    pub move_count: usize,
    /// The dependence-graph lower bound on the iteration.
    pub critical_path: u32,
}

impl CompileResult {
    /// Whether the kernel fit in the register files.
    #[must_use]
    pub fn fits(&self) -> bool {
        self.pressure.fits()
    }

    /// Effective cycles per iteration, including spill traffic.
    #[must_use]
    pub fn cycles_per_iter(&self) -> u32 {
        self.length + self.spill_penalty
    }
}

/// Compile one kernel for one machine.
#[must_use]
pub fn compile(kernel: &Kernel, machine: &MachineResources) -> CompileResult {
    let code = LoopCode::build(kernel, machine);
    let pre_ddg = Ddg::build(&code);
    let assignment = assign(&code, &pre_ddg, machine);
    let ddg = Ddg::build(&assignment.code);
    let schedule = list::schedule(&assignment, &ddg, machine);
    let pressure = pressure(&assignment, &schedule, machine);
    let spill_penalty = spill_penalty_cycles(pressure.spill_excess(), machine);
    CompileResult {
        length: schedule.length,
        critical_path: ddg.critical_path(),
        move_count: assignment.move_count,
        schedule,
        assignment,
        pressure,
        spill_penalty,
    }
}

/// Cycles of spill traffic per iteration when `excess` values do not fit.
///
/// Each excess value costs one store and one reload per iteration. The
/// traffic flows through the Level-2 ports (non-pipelined, so each access
/// holds a port for the full latency), and the reload's latency lands on
/// the critical path once. This deliberately simple model reproduces the
/// qualitative cliff the paper describes — "the compiler gets greedy and
/// gets into trouble" — without re-running the scheduler on spill code.
#[must_use]
pub fn spill_penalty_cycles(excess: u32, machine: &MachineResources) -> u32 {
    if excess == 0 {
        return 0;
    }
    let l2_ports: u32 = machine
        .clusters
        .iter()
        .map(|c| c.l2_ports)
        .sum::<u32>()
        .max(1);
    let traffic = (2 * excess * machine.l2_latency).div_ceil(l2_ports);
    traffic + machine.l2_latency
}

#[cfg(test)]
mod tests {
    use super::*;
    use cfp_frontend::compile_kernel;
    use cfp_machine::ArchSpec;

    fn res(src: &str, spec: &ArchSpec) -> CompileResult {
        let k = compile_kernel(src, &[]).unwrap();
        compile(&k, &MachineResources::from_spec(spec))
    }

    const STENCIL: &str = "kernel st(in u8 s[], out i32 d[]) {
        loop i {
            var acc = 0;
            for t in 0..7 { acc = acc + s[i + t] * (2*t + 1); }
            d[i] = acc;
        }
    }";

    #[test]
    fn richer_machines_run_faster() {
        let small = res(STENCIL, &ArchSpec::baseline());
        let big = res(STENCIL, &ArchSpec::new(8, 4, 256, 4, 4, 1).unwrap());
        assert!(big.cycles_per_iter() < small.cycles_per_iter());
        assert!(big.fits() && small.fits());
    }

    #[test]
    fn length_never_beats_the_critical_path() {
        for spec in [
            ArchSpec::baseline(),
            ArchSpec::new(16, 8, 512, 4, 2, 1).unwrap(),
            ArchSpec::new(16, 8, 512, 4, 2, 4).unwrap(),
        ] {
            let r = res(STENCIL, &spec);
            assert!(
                r.length >= r.critical_path,
                "{spec}: {} < {}",
                r.length,
                r.critical_path
            );
        }
    }

    #[test]
    fn spill_penalty_scales_with_excess() {
        let m = MachineResources::from_spec(&ArchSpec::baseline());
        assert_eq!(spill_penalty_cycles(0, &m), 0);
        let one = spill_penalty_cycles(1, &m);
        let ten = spill_penalty_cycles(10, &m);
        assert!(one > 0 && ten > one);
    }

    #[test]
    fn clustered_compile_is_consistent() {
        let r = res(STENCIL, &ArchSpec::new(8, 4, 256, 2, 4, 4).unwrap());
        assert_eq!(r.assignment.cluster_of_op.len(), r.assignment.code.ops.len());
        assert_eq!(r.schedule.placements.len(), r.assignment.code.ops.len());
        assert!(r.fits());
    }
}
