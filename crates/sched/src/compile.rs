//! The retargetable back end: kernel + machine → scheduled loop.
//!
//! This is the paper's "build a version of our compiler that generates
//! good code for that architecture" step, minus the 50-second relink: the
//! machine description is a runtime value.

use crate::cluster::{assign_in, Assignment};
use crate::ddg::Ddg;
use crate::error::{Fuel, SchedError};
use crate::list::{self, Schedule};
use crate::loopcode::{FuClass, LoopCode};
use crate::regalloc::{peak_pressure_in, PressureReport};
use crate::scratch::SchedScratch;
use cfp_ir::Kernel;
use cfp_machine::{MachineResources, UnitClass};

/// Everything the middle end and the design-space exploration need to
/// know about one compilation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CompileResult {
    /// The scheduled iteration.
    pub schedule: Schedule,
    /// The assigned loop code (moves included).
    pub assignment: Assignment,
    /// Register pressure versus capacity.
    pub pressure: PressureReport,
    /// Schedule length in cycles (no spill traffic).
    pub length: u32,
    /// Extra cycles per iteration paid for spill traffic (0 when the
    /// kernel fits).
    pub spill_penalty: u32,
    /// Inter-cluster moves inserted.
    pub move_count: usize,
    /// The dependence-graph lower bound on the iteration.
    pub critical_path: u32,
}

impl CompileResult {
    /// Whether the kernel fit in the register files.
    #[must_use]
    pub fn fits(&self) -> bool {
        self.pressure.fits()
    }

    /// Effective cycles per iteration, including spill traffic.
    #[must_use]
    pub fn cycles_per_iter(&self) -> u32 {
        self.length + self.spill_penalty
    }
}

/// The machine-independent prefix of a compilation: lowered loop code
/// plus its pre-assignment dependence graph.
///
/// Of the whole machine description, this phase reads only the memory
/// latencies (Level-1 is a model constant; Level-2 is the spec's `l2`
/// field), so one `Prepared` serves every architecture sharing an
/// `l2_latency`. The design-space exploration builds it once per plan
/// and reuses it across the sweep.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Prepared {
    /// The lowered, schedulable loop body.
    pub code: LoopCode,
    /// Dependence graph over `code` (pre cluster assignment).
    pub ddg: Ddg,
}

/// Run the machine-independent phase: lower `kernel` and build its
/// dependence graph.
#[must_use]
pub fn prepare(kernel: &Kernel, machine: &MachineResources) -> Prepared {
    prepare_traced(kernel, machine, &mut cfp_obs::UnitTrace::disabled())
}

/// [`prepare`] recording a `prepare` span (lowered op count and the
/// pre-assignment critical path) into `trace`.
#[must_use]
pub fn prepare_traced(
    kernel: &Kernel,
    machine: &MachineResources,
    trace: &mut cfp_obs::UnitTrace<'_>,
) -> Prepared {
    use cfp_obs::{Stage, Value};
    let t0 = trace.start();
    let code = LoopCode::build(kernel, machine);
    let ddg = Ddg::build(&code);
    trace.stage(
        Stage::Prepare,
        t0,
        &[
            ("ops", Value::U64(code.ops.len() as u64)),
            ("critical_path", Value::U64(u64::from(ddg.critical_path()))),
        ],
    );
    Prepared { code, ddg }
}

/// The register-capacity-free core of a compilation: everything
/// determined by the plan and the machine's scheduling signature
/// ([`cfp_machine::SchedSignature`] — the spec minus its register-file
/// size). Two machines differing only in registers share one `SchedCore`
/// bit for bit; only the fits/spills verdict, computed by [`finish`],
/// can differ between them.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SchedCore {
    /// The scheduled iteration.
    pub schedule: Schedule,
    /// The assigned loop code (moves included).
    pub assignment: Assignment,
    /// Maximum simultaneous live values per cluster.
    pub peak: Vec<u32>,
    /// Schedule length in cycles (no spill traffic).
    pub length: u32,
    /// Inter-cluster moves inserted.
    pub move_count: usize,
    /// The dependence-graph lower bound on the iteration.
    pub critical_path: u32,
    /// Scheduler steps this compilation cost (deterministic — loop
    /// trips, not time). A memoizing caller charges this against its own
    /// [`Fuel`] on a cache hit, so budget verdicts come out identical
    /// whether a compilation was computed or reused.
    pub steps: u64,
}

/// Run the machine-dependent phase on a prepared plan: cluster
/// assignment, list scheduling, and peak register pressure.
///
/// # Panics
/// Panics if the scheduler hits its internal cycle cap; sweeps over
/// untrusted candidates should call [`try_compile_core`].
#[must_use]
pub fn compile_core(prepared: &Prepared, machine: &MachineResources) -> SchedCore {
    match try_compile_core(prepared, machine, &mut Fuel::unlimited()) {
        Ok(core) => core,
        Err(e) => panic!("compilation failed under unlimited fuel: {e}"),
    }
}

/// [`compile_core`] with failures as values: the scheduler runs under
/// `fuel`, and a candidate that cannot be scheduled within the budget
/// (or within the cycle cap) returns a [`SchedError`] instead of
/// aborting or hanging the calling worker.
///
/// # Errors
/// Whatever [`list::try_schedule`] reports.
pub fn try_compile_core(
    prepared: &Prepared,
    machine: &MachineResources,
    fuel: &mut Fuel,
) -> Result<SchedCore, SchedError> {
    try_compile_core_in(prepared, machine, fuel, &mut SchedScratch::new())
}

/// [`try_compile_core`] with working memory from `scratch`: cluster
/// assignment, the post-assignment dependence graph, list scheduling, and
/// the pressure analysis all draw their buffers from one reused arena, so
/// a sweep's steady-state compilations allocate only their results.
///
/// # Errors
/// Whatever [`list::try_schedule`] reports.
pub fn try_compile_core_in(
    prepared: &Prepared,
    machine: &MachineResources,
    fuel: &mut Fuel,
    scratch: &mut SchedScratch,
) -> Result<SchedCore, SchedError> {
    try_compile_core_traced_in(
        prepared,
        machine,
        fuel,
        scratch,
        &mut cfp_obs::UnitTrace::disabled(),
    )
}

/// [`try_compile_core_in`] recording one span per phase — `assign`,
/// `ddg`, `list` (with the deterministic step count), `regalloc` — into
/// `trace`. With a disabled trace this is exactly `try_compile_core_in`:
/// the guards cost one predicted branch per phase, allocate nothing, and
/// never touch the fuel accounting, so schedules, steps, and budget
/// verdicts are bit-identical with tracing on or off.
///
/// # Errors
/// Whatever [`list::try_schedule`] reports (the failure is recorded as
/// an `error` field on the `list` span before it propagates).
pub fn try_compile_core_traced_in(
    prepared: &Prepared,
    machine: &MachineResources,
    fuel: &mut Fuel,
    scratch: &mut SchedScratch,
    trace: &mut cfp_obs::UnitTrace<'_>,
) -> Result<SchedCore, SchedError> {
    use cfp_obs::{Stage, Value};
    let before = fuel.spent();
    let t0 = trace.start();
    let assignment = assign_in(&prepared.code, &prepared.ddg, machine, scratch);
    trace.stage(
        Stage::Assign,
        t0,
        &[
            ("ops", Value::U64(assignment.code.ops.len() as u64)),
            ("moves", Value::U64(assignment.move_count as u64)),
        ],
    );
    let t0 = trace.start();
    let ddg = Ddg::build_in(&assignment.code, scratch);
    trace.stage(
        Stage::Ddg,
        t0,
        &[("critical_path", Value::U64(u64::from(ddg.critical_path())))],
    );
    let t0 = trace.start();
    let schedule = match list::try_schedule_in(&assignment, &ddg, machine, fuel, scratch) {
        Ok(s) => s,
        Err(e) => {
            trace.stage(
                Stage::List,
                t0,
                &[
                    ("error", Value::Str(e.token())),
                    ("steps", Value::U64(fuel.spent() - before)),
                ],
            );
            return Err(e);
        }
    };
    trace.stage(
        Stage::List,
        t0,
        &[
            ("length", Value::U64(u64::from(schedule.length))),
            ("steps", Value::U64(fuel.spent() - before)),
        ],
    );
    let t0 = trace.start();
    let peak = peak_pressure_in(&assignment, &schedule, machine.cluster_count(), scratch);
    trace.stage(
        Stage::Regalloc,
        t0,
        &[("peak", Value::U64(peak.iter().map(|&p| u64::from(p)).sum()))],
    );
    Ok(SchedCore {
        length: schedule.length,
        critical_path: ddg.critical_path(),
        move_count: assignment.move_count,
        steps: fuel.spent() - before,
        schedule,
        assignment,
        peak,
    })
}

/// Judge a scheduled core against a concrete machine's register files:
/// attach capacities and price the spill traffic. This is the only step
/// that reads the register-file size, and it is cheap — the exploration
/// runs it once per register configuration while sharing the core.
#[must_use]
pub fn finish(core: &SchedCore, machine: &MachineResources) -> CompileResult {
    let pressure = PressureReport {
        peak: core.peak.clone(),
        capacity: machine.clusters.iter().map(|cl| cl.regs).collect(),
    };
    let spill_penalty = spill_penalty_cycles(pressure.spill_excess(), machine);
    CompileResult {
        schedule: core.schedule.clone(),
        assignment: core.assignment.clone(),
        pressure,
        length: core.length,
        spill_penalty,
        move_count: core.move_count,
        critical_path: core.critical_path,
    }
}

/// Compile one kernel for one machine.
///
/// Equivalent to [`prepare`] → [`compile_core`] → [`finish`]; the phases
/// are public so callers that sweep many machines can cache the first
/// two (see `cfp-dse`).
///
/// # Panics
/// As [`compile_core`]; use [`try_compile`] to get failures as values.
#[must_use]
pub fn compile(kernel: &Kernel, machine: &MachineResources) -> CompileResult {
    finish(&compile_core(&prepare(kernel, machine), machine), machine)
}

/// [`compile`] under a step budget, with failures as values.
///
/// # Errors
/// Whatever [`try_compile_core`] reports.
pub fn try_compile(
    kernel: &Kernel,
    machine: &MachineResources,
    fuel: &mut Fuel,
) -> Result<CompileResult, SchedError> {
    Ok(finish(
        &try_compile_core(&prepare(kernel, machine), machine, fuel)?,
        machine,
    ))
}

/// Cycles of spill traffic per iteration when `excess` values do not fit.
///
/// Each excess value costs one store and one reload per iteration. The
/// traffic flows through the Level-2 ports (non-pipelined, so each access
/// holds a port for the full latency), and the reload's latency lands on
/// the critical path once. This deliberately simple model reproduces the
/// qualitative cliff the paper describes — "the compiler gets greedy and
/// gets into trouble" — without re-running the scheduler on spill code.
#[must_use]
pub fn spill_penalty_cycles(excess: u32, machine: &MachineResources) -> u32 {
    if excess == 0 {
        return 0;
    }
    let l2_ports = machine.mdes.total_units(UnitClass::L2Port).max(1);
    // Each access occupies a port for its reservation window (the full
    // latency when the ports do not pipeline), and the reload's result
    // latency lands on the critical path once.
    let traffic = (2 * excess * machine.reserved_cycles(FuClass::MemL2)).div_ceil(l2_ports);
    traffic + machine.latency(FuClass::MemL2)
}

#[cfg(test)]
mod tests {
    use super::*;
    use cfp_frontend::compile_kernel;
    use cfp_machine::ArchSpec;

    fn res(src: &str, spec: &ArchSpec) -> CompileResult {
        let k = compile_kernel(src, &[]).unwrap();
        compile(&k, &MachineResources::from_spec(spec))
    }

    const STENCIL: &str = "kernel st(in u8 s[], out i32 d[]) {
        loop i {
            var acc = 0;
            for t in 0..7 { acc = acc + s[i + t] * (2*t + 1); }
            d[i] = acc;
        }
    }";

    #[test]
    fn richer_machines_run_faster() {
        let small = res(STENCIL, &ArchSpec::baseline());
        let big = res(STENCIL, &ArchSpec::new(8, 4, 256, 4, 4, 1).unwrap());
        assert!(big.cycles_per_iter() < small.cycles_per_iter());
        assert!(big.fits() && small.fits());
    }

    #[test]
    fn length_never_beats_the_critical_path() {
        for spec in [
            ArchSpec::baseline(),
            ArchSpec::new(16, 8, 512, 4, 2, 1).unwrap(),
            ArchSpec::new(16, 8, 512, 4, 2, 4).unwrap(),
        ] {
            let r = res(STENCIL, &spec);
            assert!(
                r.length >= r.critical_path,
                "{spec}: {} < {}",
                r.length,
                r.critical_path
            );
        }
    }

    #[test]
    fn spill_penalty_scales_with_excess() {
        let m = MachineResources::from_spec(&ArchSpec::baseline());
        assert_eq!(spill_penalty_cycles(0, &m), 0);
        let one = spill_penalty_cycles(1, &m);
        let ten = spill_penalty_cycles(10, &m);
        assert!(one > 0 && ten > one);
    }

    #[test]
    fn phased_compile_matches_the_one_shot_path() {
        let k = compile_kernel(STENCIL, &[]).unwrap();
        for spec in [
            ArchSpec::baseline(),
            ArchSpec::new(8, 4, 256, 2, 4, 4).unwrap(),
            ArchSpec::new(16, 8, 128, 4, 2, 2).unwrap(),
        ] {
            let m = MachineResources::from_spec(&spec);
            let phased = finish(&compile_core(&prepare(&k, &m), &m), &m);
            assert_eq!(phased, compile(&k, &m), "{spec}");
        }
    }

    #[test]
    fn the_core_ignores_register_file_size() {
        let k = compile_kernel(STENCIL, &[]).unwrap();
        let small = MachineResources::from_spec(&ArchSpec::new(8, 4, 64, 2, 4, 4).unwrap());
        let large = MachineResources::from_spec(&ArchSpec::new(8, 4, 512, 2, 4, 4).unwrap());
        let prepared = prepare(&k, &small);
        assert_eq!(prepared, prepare(&k, &large));
        let core = compile_core(&prepared, &small);
        assert_eq!(core, compile_core(&prepared, &large));
        // Only the capacity verdict may differ between the two machines.
        let (a, b) = (finish(&core, &small), finish(&core, &large));
        assert_eq!(a.pressure.peak, b.pressure.peak);
        assert_ne!(a.pressure.capacity, b.pressure.capacity);
    }

    #[test]
    fn clustered_compile_is_consistent() {
        let r = res(STENCIL, &ArchSpec::new(8, 4, 256, 2, 4, 4).unwrap());
        assert_eq!(
            r.assignment.cluster_of_op.len(),
            r.assignment.code.ops.len()
        );
        assert_eq!(r.schedule.placements.len(), r.assignment.code.ops.len());
        assert!(r.fits());
    }
}
