//! Resource-constrained list scheduling.
//!
//! A classic cycle-driven list scheduler with critical-path priority:
//!
//! * each cluster issues at most `alus` ALU-class ops per cycle, of which
//!   at most `mul_capable` may be multiplies;
//! * each memory port is *non-pipelined*: once an access issues the port
//!   stays busy for the full latency;
//! * the single branch unit lives on cluster 0, and the loop-closing
//!   branch is placed in the last instruction word;
//! * the loop is a barrier: the next iteration starts once every result
//!   of this one is complete (no software pipelining — matching the
//!   unroll-and-list-schedule discipline of the Multiflow line).

use crate::cluster::Assignment;
use crate::ddg::Ddg;
use crate::error::{Fuel, SchedError};
use crate::loopcode::{FuClass, OpOrigin};
use cfp_machine::MachineResources;

/// Where one op landed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Placement {
    /// Issue cycle.
    pub cycle: u32,
    /// Cluster.
    pub cluster: u32,
}

/// A complete schedule of one loop iteration.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Schedule {
    /// Placement of each op (indexed like the assigned loop code).
    pub placements: Vec<Placement>,
    /// Iteration length in cycles (the initiation interval of the
    /// non-overlapped loop).
    pub length: u32,
}

impl Schedule {
    /// Ops grouped by cycle, for display and the simulator.
    #[must_use]
    pub fn by_cycle(&self) -> Vec<Vec<usize>> {
        let mut words = vec![Vec::new(); self.length as usize];
        for (i, p) in self.placements.iter().enumerate() {
            words[p.cycle as usize].push(i);
        }
        words
    }
}

/// Hard cap so a scheduler bug cannot spin forever.
const MAX_CYCLES: u32 = 1 << 20;

/// Ready-list priority function — an ablation knob. Critical-path
/// priority is the classic choice (and this back end's default); source
/// order is the naive baseline that quantifies what the heuristic buys.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Priority {
    /// Longest dependence chain below the op (default).
    #[default]
    CriticalPath,
    /// Original program order.
    SourceOrder,
}

/// Schedule assigned loop code on the machine: a two-heuristic
/// portfolio. Critical-path priority wins on latency-bound code; source
/// order often wins on non-pipelined-port-bound code (it interleaves
/// accesses with their consumers instead of front-loading the longest
/// chains). The shorter schedule is kept — see the `priority` exhibit
/// for per-benchmark numbers.
///
/// # Panics
/// Panics if the schedule exceeds an internal cycle cap (indicates a
/// resource the code needs but the machine lacks entirely — prevented by
/// `ArchSpec` validation and cluster assignment). Sweeps over untrusted
/// machine candidates should call [`try_schedule`] instead.
#[must_use]
pub fn schedule(assignment: &Assignment, ddg: &Ddg, machine: &MachineResources) -> Schedule {
    match try_schedule(assignment, ddg, machine, &mut Fuel::unlimited()) {
        Ok(s) => s,
        Err(e) => panic!("list scheduling failed under unlimited fuel: {e}"),
    }
}

/// [`schedule`], but failures are values: the portfolio stops with a
/// [`SchedError`] when `fuel` runs out or the cycle cap is hit, so one
/// pathological candidate cannot hang or abort a design-space sweep.
///
/// # Errors
/// [`SchedError::FuelExhausted`] when `fuel` runs dry;
/// [`SchedError::CycleCapExceeded`] past the internal cycle cap.
pub fn try_schedule(
    assignment: &Assignment,
    ddg: &Ddg,
    machine: &MachineResources,
    fuel: &mut Fuel,
) -> Result<Schedule, SchedError> {
    let cp = schedule_with_fuel(assignment, ddg, machine, Priority::CriticalPath, fuel)?;
    let so = schedule_with_fuel(assignment, ddg, machine, Priority::SourceOrder, fuel)?;
    Ok(if so.length < cp.length { so } else { cp })
}

/// [`schedule`] with an explicit priority function.
///
/// # Panics
/// As [`schedule`].
#[must_use]
pub fn schedule_with(
    assignment: &Assignment,
    ddg: &Ddg,
    machine: &MachineResources,
    priority: Priority,
) -> Schedule {
    match schedule_with_fuel(assignment, ddg, machine, priority, &mut Fuel::unlimited()) {
        Ok(s) => s,
        Err(e) => panic!("list scheduling failed under unlimited fuel: {e}"),
    }
}

/// The scheduler proper: one priority function, an explicit step budget.
/// Fuel is spent once per issue scan, proportionally to the number of
/// ready ops examined, so the budget bounds real work — not just cycles.
///
/// # Errors
/// As [`try_schedule`].
pub fn schedule_with_fuel(
    assignment: &Assignment,
    ddg: &Ddg,
    machine: &MachineResources,
    priority: Priority,
    fuel: &mut Fuel,
) -> Result<Schedule, SchedError> {
    let code = &assignment.code;
    let n = code.ops.len();
    let branch = code.branch_index();

    // Dependence bookkeeping.
    let mut pending = vec![0_usize; n];
    for (i, preds) in ddg.preds.iter().enumerate() {
        pending[i] = preds.len();
    }
    let mut earliest = vec![0_u32; n];
    let mut issue = vec![u32::MAX; n];

    // Per-cluster resource state.
    let nc = machine.cluster_count();
    let mut l1_ports: Vec<Vec<u32>> = (0..nc)
        .map(|c| vec![0; machine.clusters[c].l1_ports as usize])
        .collect();
    let mut l2_ports: Vec<Vec<u32>> = (0..nc)
        .map(|c| vec![0; machine.clusters[c].l2_ports as usize])
        .collect();

    let mut ready: Vec<usize> = (0..n).filter(|&i| pending[i] == 0 && i != branch).collect();
    let mut scheduled = 0_usize;
    let total_non_branch = n - 1;

    let mut t = 0_u32;
    while scheduled < total_non_branch {
        if t >= MAX_CYCLES {
            return Err(SchedError::CycleCapExceeded { cap: MAX_CYCLES });
        }
        // Ops that can legally issue this cycle, best priority first.
        match priority {
            Priority::CriticalPath => {
                ready.sort_by(|&a, &b| ddg.height[b].cmp(&ddg.height[a]).then(a.cmp(&b)));
            }
            Priority::SourceOrder => ready.sort_unstable(),
        }
        let mut alu_used = vec![0_u32; nc];
        let mut mul_used = vec![0_u32; nc];
        let mut issued_any = true;
        while issued_any {
            issued_any = false;
            fuel.spend(1 + ready.len() as u64)?;
            let mut next_ready = Vec::with_capacity(ready.len());
            for &i in &ready {
                if issue[i] != u32::MAX {
                    continue;
                }
                if earliest[i] > t {
                    next_ready.push(i);
                    continue;
                }
                let c = assignment.cluster_of_op[i] as usize;
                let ok = match code.ops[i].class {
                    FuClass::Alu => {
                        if alu_used[c] < machine.clusters[c].alus {
                            alu_used[c] += 1;
                            true
                        } else {
                            false
                        }
                    }
                    FuClass::Mul => {
                        if alu_used[c] < machine.clusters[c].alus
                            && mul_used[c] < machine.clusters[c].mul_capable
                        {
                            alu_used[c] += 1;
                            mul_used[c] += 1;
                            true
                        } else {
                            false
                        }
                    }
                    FuClass::Mem(level) => {
                        let ports = match level {
                            cfp_machine::MemLevel::L1 => &mut l1_ports[c],
                            cfp_machine::MemLevel::L2 => &mut l2_ports[c],
                        };
                        match ports.iter_mut().find(|free_at| **free_at <= t) {
                            Some(slot) => {
                                *slot = t + code.ops[i].latency;
                                true
                            }
                            None => false,
                        }
                    }
                    FuClass::Branch => false, // placed separately
                };
                if ok {
                    issue[i] = t;
                    scheduled += 1;
                    issued_any = true;
                    for d in &ddg.succs[i] {
                        pending[d.to] -= 1;
                        earliest[d.to] = earliest[d.to].max(t + d.lat);
                        if pending[d.to] == 0 && d.to != branch {
                            next_ready.push(d.to);
                        }
                    }
                } else {
                    next_ready.push(i);
                }
            }
            ready = next_ready;
        }
        t += 1;
    }

    // Branch in the last word (or later if its own operand is not ready).
    let last_issue = issue
        .iter()
        .enumerate()
        .filter(|&(i, _)| i != branch)
        .map(|(_, &v)| v)
        .max()
        .unwrap_or(0);
    issue[branch] = last_issue.max(earliest[branch]);

    let mut length = issue[branch] + 1;
    for (i, op) in code.ops.iter().enumerate() {
        length = length.max(issue[i] + op.latency.max(1));
    }

    let placements = (0..n)
        .map(|i| Placement {
            cycle: issue[i],
            cluster: assignment.cluster_of_op[i],
        })
        .collect();
    Ok(Schedule { placements, length })
}

/// Pretty-print a schedule as one line per cycle (used by examples and
/// the quickstart).
#[must_use]
pub fn render(schedule: &Schedule, assignment: &Assignment) -> String {
    use std::fmt::Write as _;
    let mut out = String::new();
    for (t, word) in schedule.by_cycle().iter().enumerate() {
        let _ = write!(out, "{t:4}: ");
        if word.is_empty() {
            out.push_str("(stall)");
        }
        for &i in word {
            let op = &assignment.code.ops[i];
            let desc = match (&op.inst, op.origin) {
                (Some(inst), _) => inst.to_string(),
                (None, OpOrigin::Move { src, to }) => format!("mov.x {src}->cl{to}"),
                (None, OpOrigin::StreamBump(a)) => format!("bump {a}"),
                (None, OpOrigin::Induction) => "i += U".to_owned(),
                (None, OpOrigin::LoopTest) => "cmp i, n".to_owned(),
                (None, OpOrigin::LoopBranch) => "br loop".to_owned(),
                (None, OpOrigin::Body(_)) => unreachable!("body ops carry insts"),
            };
            let _ = write!(out, "[c{} {desc}]  ", assignment.cluster_of_op[i]);
        }
        out.push('\n');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cluster::assign;
    use crate::loopcode::LoopCode;
    use cfp_frontend::compile_kernel;
    use cfp_machine::ArchSpec;

    fn sched_for(src: &str, spec: &ArchSpec) -> (Schedule, Assignment, Ddg, MachineResources) {
        let k = compile_kernel(src, &[]).unwrap();
        let m = MachineResources::from_spec(spec);
        let code = LoopCode::build(&k, &m);
        let pre = Ddg::build(&code);
        let a = assign(&code, &pre, &m);
        let ddg = Ddg::build(&a.code);
        let s = schedule(&a, &ddg, &m);
        (s, a, ddg, m)
    }

    const WIDE: &str = "kernel w(in u8 s[], out i32 d[]) {
        loop i {
            var a = s[4*i] * 3;
            var b = s[4*i+1] * 5;
            var c = s[4*i+2] * 7;
            var e = s[4*i+3] * 9;
            d[i] = (a + b) + (c + e);
        }
    }";

    #[test]
    fn every_op_is_placed_and_deps_hold() {
        let (s, _a, ddg, _) = sched_for(WIDE, &ArchSpec::new(4, 2, 128, 2, 4, 1).unwrap());
        for (i, p) in s.placements.iter().enumerate() {
            assert!(p.cycle < s.length, "op {i}");
        }
        for (to, preds) in ddg.preds.iter().enumerate() {
            for d in preds {
                assert!(
                    s.placements[d.to].cycle >= s.placements[d.from].cycle + d.lat,
                    "dep {} -> {} violated",
                    d.from,
                    to
                );
            }
        }
    }

    #[test]
    fn schedule_respects_alu_and_mul_limits() {
        let spec = ArchSpec::new(2, 1, 64, 2, 4, 1).unwrap();
        let (s, a, _, m) = sched_for(WIDE, &spec);
        for word in s.by_cycle() {
            let mut alu = 0;
            let mut mul = 0;
            for i in word {
                match a.code.ops[i].class {
                    FuClass::Alu => alu += 1,
                    FuClass::Mul => {
                        alu += 1;
                        mul += 1;
                    }
                    _ => {}
                }
            }
            assert!(alu <= m.clusters[0].alus, "alu oversubscribed");
            assert!(mul <= m.clusters[0].mul_capable, "mul oversubscribed");
        }
    }

    #[test]
    fn non_pipelined_ports_throttle_memory() {
        // 5 loads/iter, 1 L2 port, latency 4 → at least 5·4 cycles.
        let (s, _, _, _) = sched_for(WIDE, &ArchSpec::new(4, 2, 128, 1, 4, 1).unwrap());
        assert!(s.length >= 20, "length {}", s.length);
        // Same code, 4 ports: much shorter.
        let (s4, _, _, _) = sched_for(WIDE, &ArchSpec::new(4, 2, 128, 4, 4, 1).unwrap());
        assert!(s4.length < s.length, "{} !< {}", s4.length, s.length);
    }

    #[test]
    fn more_alus_shorten_wide_code() {
        let (s1, ..) = sched_for(WIDE, &ArchSpec::new(1, 1, 64, 4, 4, 1).unwrap());
        let (s8, ..) = sched_for(WIDE, &ArchSpec::new(8, 4, 64, 4, 4, 1).unwrap());
        assert!(s8.length < s1.length, "{} !< {}", s8.length, s1.length);
    }

    #[test]
    fn branch_is_in_the_last_word() {
        let (s, a, ..) = sched_for(WIDE, &ArchSpec::new(4, 2, 128, 2, 4, 1).unwrap());
        let bi = a.code.branch_index();
        let last_issue = s
            .placements
            .iter()
            .enumerate()
            .filter(|&(i, _)| i != bi)
            .map(|(_, p)| p.cycle)
            .max()
            .unwrap();
        assert!(s.placements[bi].cycle >= last_issue);
    }

    #[test]
    fn length_covers_all_latencies() {
        let (s, a, ..) = sched_for(WIDE, &ArchSpec::new(4, 2, 128, 2, 8, 1).unwrap());
        for (i, p) in s.placements.iter().enumerate() {
            assert!(p.cycle + a.code.ops[i].latency <= s.length);
        }
    }

    #[test]
    fn portfolio_takes_the_best_of_both_priorities() {
        for spec in [
            ArchSpec::new(2, 1, 64, 1, 8, 1).unwrap(),
            ArchSpec::new(4, 2, 128, 1, 4, 1).unwrap(),
            ArchSpec::new(8, 4, 256, 2, 4, 2).unwrap(),
        ] {
            let k = cfp_frontend::compile_kernel(WIDE, &[]).unwrap();
            let m = MachineResources::from_spec(&spec);
            let code = crate::loopcode::LoopCode::build(&k, &m);
            let pre = Ddg::build(&code);
            let a = assign(&code, &pre, &m);
            let ddg = Ddg::build(&a.code);
            let cp = schedule_with(&a, &ddg, &m, Priority::CriticalPath);
            let so = schedule_with(&a, &ddg, &m, Priority::SourceOrder);
            let best = schedule(&a, &ddg, &m);
            assert_eq!(best.length, cp.length.min(so.length), "{spec}");
        }
    }

    #[test]
    fn tiny_fuel_stops_the_scheduler_with_a_typed_error() {
        let k = compile_kernel(WIDE, &[]).unwrap();
        let m = MachineResources::from_spec(&ArchSpec::new(4, 2, 128, 2, 4, 1).unwrap());
        let code = LoopCode::build(&k, &m);
        let pre = Ddg::build(&code);
        let a = assign(&code, &pre, &m);
        let ddg = Ddg::build(&a.code);
        let mut fuel = Fuel::limited(1);
        let err = try_schedule(&a, &ddg, &m, &mut fuel).expect_err("one step cannot be enough");
        assert_eq!(err, SchedError::FuelExhausted { budget: 1 });
    }

    #[test]
    fn ample_fuel_reproduces_the_unlimited_schedule() {
        let k = compile_kernel(WIDE, &[]).unwrap();
        let m = MachineResources::from_spec(&ArchSpec::new(4, 2, 128, 2, 4, 1).unwrap());
        let code = LoopCode::build(&k, &m);
        let pre = Ddg::build(&code);
        let a = assign(&code, &pre, &m);
        let ddg = Ddg::build(&a.code);
        let mut fuel = Fuel::limited(1 << 20);
        let budgeted = try_schedule(&a, &ddg, &m, &mut fuel).expect("plenty of fuel");
        assert_eq!(budgeted, schedule(&a, &ddg, &m));
        // Fuel spending is deterministic, so the leftover is too.
        let mut again = Fuel::limited(1 << 20);
        let _ = try_schedule(&a, &ddg, &m, &mut again).expect("plenty of fuel");
        assert_eq!(fuel.remaining(), again.remaining());
    }

    #[test]
    fn render_mentions_every_cycle() {
        let (s, a, ..) = sched_for(WIDE, &ArchSpec::new(2, 1, 64, 1, 4, 1).unwrap());
        let text = render(&s, &a);
        assert_eq!(text.lines().count(), s.length as usize);
        assert!(text.contains("br loop"));
    }
}
