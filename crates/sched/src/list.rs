//! Resource-constrained list scheduling.
//!
//! A classic cycle-driven list scheduler with critical-path priority:
//!
//! * each cluster issues at most `alus` ALU-class ops per cycle, of which
//!   at most `mul_capable` may be multiplies;
//! * each memory port reserves per the machine description
//!   ([`cfp_machine::Mdes`]): a non-pipelined port stays busy for the
//!   full access latency, a pipelined one accepts a new access every
//!   cycle;
//! * the single branch unit lives on cluster 0, and the loop-closing
//!   branch is placed in the last instruction word;
//! * the loop is a barrier: the next iteration starts once every result
//!   of this one is complete (no software pipelining — matching the
//!   unroll-and-list-schedule discipline of the Multiflow line).
//!
//! Engineering (see DESIGN.md §11): the ready list is a `Vec` of packed
//! `(priority, index)` keys kept in descending order — newly eligible
//! ops wait in a calendar ring bucketed by earliest legal cycle (O(1)
//! per op; dependence latencies bound how far ahead a cycle can be),
//! graduate as one batch sorted and merged in a single linear pass, so
//! the per-cycle issue scan walks the ready ops in place and a failed
//! attempt costs a word read. Issue slots are `u64` bitmask rows, port
//! busy masks refresh once per cycle, op class and latency are read
//! from a packed side array, and every buffer lives in a caller-provided
//! [`SchedScratch`]. Schedules, fuel verdicts, and
//! [`crate::error::Fuel::spent`] step counts are bit-identical to the
//! straightforward implementation — fuel still prices semantic scan
//! events, not data-structure operations (`tests/sched_equivalence.rs`
//! pins all three).

use crate::cluster::Assignment;
use crate::ddg::Ddg;
use crate::error::{Fuel, SchedError};
use crate::loopcode::OpOrigin;
use crate::scratch::{row_has_room, row_take, SchedScratch};
use cfp_machine::MachineResources;

/// Where one op landed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Placement {
    /// Issue cycle.
    pub cycle: u32,
    /// Cluster.
    pub cluster: u32,
}

/// A complete schedule of one loop iteration.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Schedule {
    /// Placement of each op (indexed like the assigned loop code).
    pub placements: Vec<Placement>,
    /// Iteration length in cycles (the initiation interval of the
    /// non-overlapped loop).
    pub length: u32,
}

impl Schedule {
    /// Ops grouped by cycle, for display and the simulator. Buckets are
    /// sized by a counting pass first, so each is allocated exactly once.
    #[must_use]
    pub fn by_cycle(&self) -> Vec<Vec<usize>> {
        let mut counts = vec![0_usize; self.length as usize];
        for p in &self.placements {
            counts[p.cycle as usize] += 1;
        }
        let mut words: Vec<Vec<usize>> = counts.iter().map(|&c| Vec::with_capacity(c)).collect();
        for (i, p) in self.placements.iter().enumerate() {
            words[p.cycle as usize].push(i);
        }
        words
    }
}

/// Hard cap so a scheduler bug cannot spin forever.
const MAX_CYCLES: u32 = 1 << 20;

/// Ready-list priority function — an ablation knob. Critical-path
/// priority is the classic choice (and this back end's default); source
/// order is the naive baseline that quantifies what the heuristic buys.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Priority {
    /// Longest dependence chain below the op (default).
    #[default]
    CriticalPath,
    /// Original program order.
    SourceOrder,
}

/// Schedule assigned loop code on the machine: a two-heuristic
/// portfolio. Critical-path priority wins on latency-bound code; source
/// order often wins on non-pipelined-port-bound code (it interleaves
/// accesses with their consumers instead of front-loading the longest
/// chains). The shorter schedule is kept — see the `priority` exhibit
/// for per-benchmark numbers.
///
/// # Panics
/// Panics if the schedule exceeds an internal cycle cap (indicates a
/// resource the code needs but the machine lacks entirely — prevented by
/// `ArchSpec` validation and cluster assignment). Sweeps over untrusted
/// machine candidates should call [`try_schedule`] instead.
#[must_use]
pub fn schedule(assignment: &Assignment, ddg: &Ddg, machine: &MachineResources) -> Schedule {
    match try_schedule(assignment, ddg, machine, &mut Fuel::unlimited()) {
        Ok(s) => s,
        Err(e) => panic!("list scheduling failed under unlimited fuel: {e}"),
    }
}

/// [`schedule`], but failures are values: the portfolio stops with a
/// [`SchedError`] when `fuel` runs out or the cycle cap is hit, so one
/// pathological candidate cannot hang or abort a design-space sweep.
///
/// # Errors
/// [`SchedError::FuelExhausted`] when `fuel` runs dry;
/// [`SchedError::CycleCapExceeded`] past the internal cycle cap.
pub fn try_schedule(
    assignment: &Assignment,
    ddg: &Ddg,
    machine: &MachineResources,
    fuel: &mut Fuel,
) -> Result<Schedule, SchedError> {
    try_schedule_in(assignment, ddg, machine, fuel, &mut SchedScratch::new())
}

/// [`try_schedule`] with working memory from `scratch`. A worker thread
/// sweeping many candidates passes the same arena every time and the
/// steady state allocates nothing but the returned schedules.
///
/// # Errors
/// As [`try_schedule`].
pub fn try_schedule_in(
    assignment: &Assignment,
    ddg: &Ddg,
    machine: &MachineResources,
    fuel: &mut Fuel,
    scratch: &mut SchedScratch,
) -> Result<Schedule, SchedError> {
    let cp = schedule_with_fuel_in(
        assignment,
        ddg,
        machine,
        Priority::CriticalPath,
        fuel,
        scratch,
    )?;
    let so = schedule_with_fuel_in(
        assignment,
        ddg,
        machine,
        Priority::SourceOrder,
        fuel,
        scratch,
    )?;
    Ok(if so.length < cp.length { so } else { cp })
}

/// [`schedule`] with an explicit priority function.
///
/// # Panics
/// As [`schedule`].
#[must_use]
pub fn schedule_with(
    assignment: &Assignment,
    ddg: &Ddg,
    machine: &MachineResources,
    priority: Priority,
) -> Schedule {
    match schedule_with_fuel(assignment, ddg, machine, priority, &mut Fuel::unlimited()) {
        Ok(s) => s,
        Err(e) => panic!("list scheduling failed under unlimited fuel: {e}"),
    }
}

/// The scheduler proper: one priority function, an explicit step budget.
/// Fuel is spent once per issue scan, proportionally to the number of
/// ready ops examined, so the budget bounds real work — not just cycles.
///
/// # Errors
/// As [`try_schedule`].
pub fn schedule_with_fuel(
    assignment: &Assignment,
    ddg: &Ddg,
    machine: &MachineResources,
    priority: Priority,
    fuel: &mut Fuel,
) -> Result<Schedule, SchedError> {
    schedule_with_fuel_in(
        assignment,
        ddg,
        machine,
        priority,
        fuel,
        &mut SchedScratch::new(),
    )
}

/// Pack a ready-list key: priority in the high half, bit-inverted index
/// in the low half, so descending key order is highest priority first
/// and lowest index on ties — the exact order a sorted ready list
/// produces. Indices are unique, so the order is total and no valid key
/// is ever 0 (that would need op index `u32::MAX`), which frees 0 as the
/// issued-op sentinel during a scan.
#[inline]
fn ready_key(pri: u32, i: usize) -> u64 {
    (u64::from(pri) << 32) | u64::from(u32::MAX - i as u32)
}

#[inline]
fn key_index(key: u64) -> usize {
    (u32::MAX - (key as u32)) as usize
}

/// [`schedule_with_fuel`] with working memory from `scratch`.
///
/// # Errors
/// As [`try_schedule`].
#[allow(clippy::too_many_lines)] // the single hot loop of the back end
pub fn schedule_with_fuel_in(
    assignment: &Assignment,
    ddg: &Ddg,
    machine: &MachineResources,
    priority: Priority,
    fuel: &mut Fuel,
    scratch: &mut SchedScratch,
) -> Result<Schedule, SchedError> {
    let code = &assignment.code;
    let n = code.ops.len();
    let branch = code.branch_index();
    let nc = machine.cluster_count();

    let SchedScratch {
        pending,
        earliest,
        issue,
        ready,
        cal,
        stash,
        op_meta,
        port_base,
        port_free,
        port_busy,
        slot_rows,
        ..
    } = scratch;

    // Dependence bookkeeping.
    pending.clear();
    pending.extend((0..n).map(|i| ddg.pred_count(i)));
    earliest.clear();
    earliest.resize(n, 0);
    issue.clear();
    issue.resize(n, u32::MAX);

    // Per-(cluster, level) memory-port state: `port_free` holds each
    // port's free-at cycle in one flat array (`port_base[2c + level]` is
    // the slice start), `port_busy` mirrors it as a possibly-stale busy
    // bitmask refreshed lazily when a port is requested.
    port_base.clear();
    port_base.push(0);
    for c in 0..nc {
        let prev = *port_base.last().expect("seeded");
        port_base.push(prev + machine.clusters[c].l1_ports);
        let prev = *port_base.last().expect("seeded");
        port_base.push(prev + machine.clusters[c].l2_ports);
    }
    let total_ports = *port_base.last().expect("seeded") as usize;
    port_free.clear();
    port_free.resize(total_ports, 0);
    port_busy.clear();
    port_busy.resize(2 * nc, 0);

    // Per-cycle issue-slot rows: one ALU row and one IMUL row per
    // cluster, re-zeroed each cycle.
    slot_rows.clear();
    slot_rows.resize(2 * nc, 0);

    // Dense per-op descriptor `(reserved_cycles << 3) | class code`,
    // straight from the machine description's reservation model, so the
    // hot issue scan reads one packed word instead of chasing the full
    // `SOp` structs (whose inline `Vec`s make the stride cache-hostile).
    op_meta.clear();
    op_meta.extend(code.ops.iter().map(|op| machine.mdes.packed_meta(op.class)));

    let pri_of = |i: usize| match priority {
        Priority::CriticalPath => ddg.height[i],
        Priority::SourceOrder => 0,
    };

    // Enabled-but-unissued ops live in one of two structures: `ready`
    // (operands available this cycle; a `Vec` of packed keys kept in
    // descending order, scanned in place each cycle) or `cal` (operands
    // still in flight; a calendar ring of buckets indexed by earliest
    // legal cycle mod the ring width). An op enabled at cycle `t` has
    // its earliest cycle in `(t, t + max edge latency]`, so a ring of
    // `max edge latency + 1` buckets never aliases two distinct cycles
    // and both enqueue and graduation are O(1) per op. `in_play` counts
    // both structures — the population the old single ready list held,
    // which is what fuel is priced on.
    let w = 1 + ddg.edges().iter().map(|d| d.lat).max().unwrap_or(0) as usize;
    for bucket in cal.iter_mut() {
        bucket.clear(); // stale entries from an errored prior run
    }
    if cal.len() < w {
        cal.resize_with(w, Vec::new);
    }
    ready.clear();
    stash.clear();
    let mut in_play = 0_u64;
    for (i, &p) in pending.iter().enumerate() {
        if p == 0 && i != branch {
            cal[0].push(i as u32);
            in_play += 1;
        }
    }

    let mut scheduled = 0_usize;
    let total_non_branch = n - 1;

    let mut t = 0_u32;
    while scheduled < total_non_branch {
        if t >= MAX_CYCLES {
            return Err(SchedError::CycleCapExceeded { cap: MAX_CYCLES });
        }
        // Ops whose operands arrive at `t` graduate into the ready list:
        // drain this cycle's calendar bucket, sort the batch descending,
        // and merge it with the (already descending) survivors of
        // earlier cycles in one backward pass. Failed attempts below
        // never move, so a cycle with no graduates reuses the array
        // untouched.
        stash.clear();
        let bucket = &mut cal[t as usize % w];
        for &i in bucket.iter() {
            let i = i as usize;
            stash.push(ready_key(pri_of(i), i));
        }
        bucket.clear();
        if !stash.is_empty() {
            stash.sort_unstable_by(|a, b| b.cmp(a));
            let r = ready.len();
            let b = stash.len();
            ready.resize(r + b, 0);
            let (mut i, mut j, mut k) = (r, b, r + b);
            while j > 0 {
                if i > 0 && ready[i - 1] < stash[j - 1] {
                    ready[k - 1] = ready[i - 1];
                    i -= 1;
                } else {
                    ready[k - 1] = stash[j - 1];
                    j -= 1;
                }
                k -= 1;
            }
        }
        // One fuel charge per issue scan, priced by the ops in play —
        // identical to the sorted-list scheduler's accounting.
        fuel.spend(1 + in_play)?;
        for row in slot_rows.iter_mut() {
            *row = 0;
        }
        // Port busy masks go stale between cycles; refresh each
        // (cluster, level) at most once per cycle (ports taken this
        // cycle stay busy, so one refresh at first use is exact).
        let mut refreshed = 0_u64;
        let mut issued_any = false;
        for slot in ready.iter_mut() {
            let i = key_index(*slot);
            let c = assignment.cluster_of_op[i] as usize;
            let cl = &machine.clusters[c];
            let meta = op_meta[i];
            let ok = match meta & 0b111 {
                0 => {
                    // ALU
                    let row = &mut slot_rows[2 * c];
                    if row_has_room(*row, cl.alus) {
                        row_take(row, cl.alus);
                        true
                    } else {
                        false
                    }
                }
                // IMUL (also consumes an ALU issue slot)
                1 if row_has_room(slot_rows[2 * c], cl.alus)
                    && row_has_room(slot_rows[2 * c + 1], cl.mul_capable) =>
                {
                    row_take(&mut slot_rows[2 * c], cl.alus);
                    row_take(&mut slot_rows[2 * c + 1], cl.mul_capable);
                    true
                }
                code @ (2 | 3) => {
                    // Mem, Level 1 or 2: take a port for the reservation
                    // duration the description prescribes.
                    let reserved = meta >> 3;
                    let li = 2 * c + (code as usize - 2);
                    let base = port_base[li] as usize;
                    let cnt = (port_base[li + 1] - port_base[li]) as usize;
                    let free = &mut port_free[base..base + cnt];
                    if cnt <= 64 {
                        if li >= 64 || refreshed & (1_u64 << li) == 0 {
                            if li < 64 {
                                refreshed |= 1_u64 << li;
                            }
                            // Drop ports whose access completed by `t`.
                            let mut busy = port_busy[li];
                            let mut scan = busy;
                            while scan != 0 {
                                let p = scan.trailing_zeros();
                                if free[p as usize] <= t {
                                    busy &= !(1_u64 << p);
                                }
                                scan &= scan - 1;
                            }
                            port_busy[li] = busy;
                        }
                        let mask = if cnt == 64 {
                            u64::MAX
                        } else {
                            (1_u64 << cnt) - 1
                        };
                        let avail = !port_busy[li] & mask;
                        if avail == 0 {
                            false
                        } else {
                            let p = avail.trailing_zeros();
                            free[p as usize] = t + reserved;
                            port_busy[li] |= 1_u64 << p;
                            true
                        }
                    } else {
                        // Graceful fallback for machines wider than the
                        // mask: first-free linear scan, mask unused.
                        match free.iter_mut().find(|free_at| **free_at <= t) {
                            Some(free_slot) => {
                                *free_slot = t + reserved;
                                true
                            }
                            None => false,
                        }
                    }
                }
                _ => false, // branch: placed separately
            };
            if ok {
                *slot = 0; // issued: sentinel, compacted below
                issue[i] = t;
                scheduled += 1;
                issued_any = true;
                in_play -= 1;
                for d in ddg.succs(i) {
                    let to = d.to as usize;
                    pending[to] -= 1;
                    earliest[to] = earliest[to].max(t + d.lat);
                    if pending[to] == 0 && to != branch {
                        // Every dependence carries latency ≥ 1, so a
                        // newly enabled op is never eligible this cycle
                        // and the ready list is stable during the scan.
                        cal[earliest[to] as usize % w].push(to as u32);
                        in_play += 1;
                    }
                }
            }
        }
        if issued_any {
            ready.retain(|&key| key != 0);
            // The old scheduler re-scanned after a productive pass and
            // found nothing (monotone resources, latencies ≥ 1); charge
            // that scan.
            fuel.spend(1 + in_play)?;
        }
        t += 1;
    }

    // Branch in the last word (or later if its own operand is not ready).
    let last_issue = issue
        .iter()
        .enumerate()
        .filter(|&(i, _)| i != branch)
        .map(|(_, &v)| v)
        .max()
        .unwrap_or(0);
    issue[branch] = last_issue.max(earliest[branch]);

    let mut length = issue[branch] + 1;
    for (i, op) in code.ops.iter().enumerate() {
        length = length.max(issue[i] + op.latency.max(1));
    }

    let placements = (0..n)
        .map(|i| Placement {
            cycle: issue[i],
            cluster: assignment.cluster_of_op[i],
        })
        .collect();
    Ok(Schedule { placements, length })
}

/// Pretty-print a schedule as one line per cycle (used by examples and
/// the quickstart). Allocation happens only here, at print time: the
/// cycle walk uses a sorted index cursor, not per-cycle bucket vectors.
#[must_use]
pub fn render(schedule: &Schedule, assignment: &Assignment) -> String {
    use std::fmt::Write as _;
    let mut order: Vec<usize> = (0..schedule.placements.len()).collect();
    order.sort_unstable_by_key(|&i| (schedule.placements[i].cycle, i));
    let mut out = String::with_capacity(order.len() * 24 + schedule.length as usize * 8);
    let mut cursor = 0_usize;
    for t in 0..schedule.length {
        let _ = write!(out, "{t:4}: ");
        let start = cursor;
        while cursor < order.len() && schedule.placements[order[cursor]].cycle == t {
            let i = order[cursor];
            cursor += 1;
            let op = &assignment.code.ops[i];
            let desc = match (&op.inst, op.origin) {
                (Some(inst), _) => inst.to_string(),
                (None, OpOrigin::Move { src, to }) => format!("mov.x {src}->cl{to}"),
                (None, OpOrigin::StreamBump(a)) => format!("bump {a}"),
                (None, OpOrigin::Induction) => "i += U".to_owned(),
                (None, OpOrigin::LoopTest) => "cmp i, n".to_owned(),
                (None, OpOrigin::LoopBranch) => "br loop".to_owned(),
                (None, OpOrigin::Body(_)) => unreachable!("body ops carry insts"),
            };
            let _ = write!(out, "[c{} {desc}]  ", assignment.cluster_of_op[i]);
        }
        if cursor == start {
            out.push_str("(stall)");
        }
        out.push('\n');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cluster::assign;
    use crate::loopcode::{FuClass, LoopCode};
    use cfp_frontend::compile_kernel;
    use cfp_machine::ArchSpec;

    fn sched_for(src: &str, spec: &ArchSpec) -> (Schedule, Assignment, Ddg, MachineResources) {
        let k = compile_kernel(src, &[]).unwrap();
        let m = MachineResources::from_spec(spec);
        let code = LoopCode::build(&k, &m);
        let pre = Ddg::build(&code);
        let a = assign(&code, &pre, &m);
        let ddg = Ddg::build(&a.code);
        let s = schedule(&a, &ddg, &m);
        (s, a, ddg, m)
    }

    const WIDE: &str = "kernel w(in u8 s[], out i32 d[]) {
        loop i {
            var a = s[4*i] * 3;
            var b = s[4*i+1] * 5;
            var c = s[4*i+2] * 7;
            var e = s[4*i+3] * 9;
            d[i] = (a + b) + (c + e);
        }
    }";

    #[test]
    fn every_op_is_placed_and_deps_hold() {
        let (s, _a, ddg, _) = sched_for(WIDE, &ArchSpec::new(4, 2, 128, 2, 4, 1).unwrap());
        for (i, p) in s.placements.iter().enumerate() {
            assert!(p.cycle < s.length, "op {i}");
        }
        for d in ddg.edges() {
            assert!(
                s.placements[d.to as usize].cycle >= s.placements[d.from as usize].cycle + d.lat,
                "dep {} -> {} violated",
                d.from,
                d.to
            );
        }
    }

    #[test]
    fn schedule_respects_alu_and_mul_limits() {
        let spec = ArchSpec::new(2, 1, 64, 2, 4, 1).unwrap();
        let (s, a, _, m) = sched_for(WIDE, &spec);
        for word in s.by_cycle() {
            let mut alu = 0;
            let mut mul = 0;
            for i in word {
                match a.code.ops[i].class {
                    FuClass::Alu => alu += 1,
                    FuClass::Mul => {
                        alu += 1;
                        mul += 1;
                    }
                    _ => {}
                }
            }
            assert!(alu <= m.clusters[0].alus, "alu oversubscribed");
            assert!(mul <= m.clusters[0].mul_capable, "mul oversubscribed");
        }
    }

    #[test]
    fn by_cycle_buckets_cover_every_op_exactly_once() {
        let (s, ..) = sched_for(WIDE, &ArchSpec::new(4, 2, 128, 2, 4, 1).unwrap());
        let words = s.by_cycle();
        assert_eq!(words.len(), s.length as usize);
        let mut seen = vec![false; s.placements.len()];
        for (t, word) in words.iter().enumerate() {
            for &i in word {
                assert_eq!(s.placements[i].cycle as usize, t);
                assert!(!seen[i], "op {i} appears twice");
                seen[i] = true;
            }
        }
        assert!(seen.iter().all(|&b| b));
    }

    #[test]
    fn non_pipelined_ports_throttle_memory() {
        // 5 loads/iter, 1 L2 port, latency 4 → at least 5·4 cycles.
        let (s, _, _, _) = sched_for(WIDE, &ArchSpec::new(4, 2, 128, 1, 4, 1).unwrap());
        assert!(s.length >= 20, "length {}", s.length);
        // Same code, 4 ports: much shorter.
        let (s4, _, _, _) = sched_for(WIDE, &ArchSpec::new(4, 2, 128, 4, 4, 1).unwrap());
        assert!(s4.length < s.length, "{} !< {}", s4.length, s.length);
    }

    #[test]
    fn more_alus_shorten_wide_code() {
        let (s1, ..) = sched_for(WIDE, &ArchSpec::new(1, 1, 64, 4, 4, 1).unwrap());
        let (s8, ..) = sched_for(WIDE, &ArchSpec::new(8, 4, 64, 4, 4, 1).unwrap());
        assert!(s8.length < s1.length, "{} !< {}", s8.length, s1.length);
    }

    #[test]
    fn branch_is_in_the_last_word() {
        let (s, a, ..) = sched_for(WIDE, &ArchSpec::new(4, 2, 128, 2, 4, 1).unwrap());
        let bi = a.code.branch_index();
        let last_issue = s
            .placements
            .iter()
            .enumerate()
            .filter(|&(i, _)| i != bi)
            .map(|(_, p)| p.cycle)
            .max()
            .unwrap();
        assert!(s.placements[bi].cycle >= last_issue);
    }

    #[test]
    fn length_covers_all_latencies() {
        let (s, a, ..) = sched_for(WIDE, &ArchSpec::new(4, 2, 128, 2, 8, 1).unwrap());
        for (i, p) in s.placements.iter().enumerate() {
            assert!(p.cycle + a.code.ops[i].latency <= s.length);
        }
    }

    #[test]
    fn portfolio_takes_the_best_of_both_priorities() {
        for spec in [
            ArchSpec::new(2, 1, 64, 1, 8, 1).unwrap(),
            ArchSpec::new(4, 2, 128, 1, 4, 1).unwrap(),
            ArchSpec::new(8, 4, 256, 2, 4, 2).unwrap(),
        ] {
            let k = cfp_frontend::compile_kernel(WIDE, &[]).unwrap();
            let m = MachineResources::from_spec(&spec);
            let code = crate::loopcode::LoopCode::build(&k, &m);
            let pre = Ddg::build(&code);
            let a = assign(&code, &pre, &m);
            let ddg = Ddg::build(&a.code);
            let cp = schedule_with(&a, &ddg, &m, Priority::CriticalPath);
            let so = schedule_with(&a, &ddg, &m, Priority::SourceOrder);
            let best = schedule(&a, &ddg, &m);
            assert_eq!(best.length, cp.length.min(so.length), "{spec}");
        }
    }

    #[test]
    fn tiny_fuel_stops_the_scheduler_with_a_typed_error() {
        let k = compile_kernel(WIDE, &[]).unwrap();
        let m = MachineResources::from_spec(&ArchSpec::new(4, 2, 128, 2, 4, 1).unwrap());
        let code = LoopCode::build(&k, &m);
        let pre = Ddg::build(&code);
        let a = assign(&code, &pre, &m);
        let ddg = Ddg::build(&a.code);
        let mut fuel = Fuel::limited(1);
        let err = try_schedule(&a, &ddg, &m, &mut fuel).expect_err("one step cannot be enough");
        assert_eq!(err, SchedError::FuelExhausted { budget: 1 });
    }

    #[test]
    fn ample_fuel_reproduces_the_unlimited_schedule() {
        let k = compile_kernel(WIDE, &[]).unwrap();
        let m = MachineResources::from_spec(&ArchSpec::new(4, 2, 128, 2, 4, 1).unwrap());
        let code = LoopCode::build(&k, &m);
        let pre = Ddg::build(&code);
        let a = assign(&code, &pre, &m);
        let ddg = Ddg::build(&a.code);
        let mut fuel = Fuel::limited(1 << 20);
        let budgeted = try_schedule(&a, &ddg, &m, &mut fuel).expect("plenty of fuel");
        assert_eq!(budgeted, schedule(&a, &ddg, &m));
        // Fuel spending is deterministic, so the leftover is too.
        let mut again = Fuel::limited(1 << 20);
        let _ = try_schedule(&a, &ddg, &m, &mut again).expect("plenty of fuel");
        assert_eq!(fuel.remaining(), again.remaining());
    }

    #[test]
    fn a_reused_scratch_changes_nothing() {
        let mut scratch = SchedScratch::new();
        for spec in [
            ArchSpec::new(4, 2, 128, 2, 4, 1).unwrap(),
            ArchSpec::new(2, 1, 64, 1, 8, 1).unwrap(),
            ArchSpec::new(8, 4, 256, 2, 4, 2).unwrap(),
        ] {
            let k = compile_kernel(WIDE, &[]).unwrap();
            let m = MachineResources::from_spec(&spec);
            let code = LoopCode::build(&k, &m);
            let pre = Ddg::build(&code);
            let a = assign(&code, &pre, &m);
            let ddg = Ddg::build(&a.code);
            let mut fresh_fuel = Fuel::limited(1 << 20);
            let fresh = try_schedule(&a, &ddg, &m, &mut fresh_fuel).expect("fuel");
            let mut reused_fuel = Fuel::limited(1 << 20);
            let reused =
                try_schedule_in(&a, &ddg, &m, &mut reused_fuel, &mut scratch).expect("fuel");
            assert_eq!(fresh, reused, "{spec}");
            assert_eq!(fresh_fuel.remaining(), reused_fuel.remaining(), "{spec}");
        }
    }

    #[test]
    fn render_mentions_every_cycle() {
        let (s, a, ..) = sched_for(WIDE, &ArchSpec::new(2, 1, 64, 1, 4, 1).unwrap());
        let text = render(&s, &a);
        assert_eq!(text.lines().count(), s.length as usize);
        assert!(text.contains("br loop"));
    }
}
